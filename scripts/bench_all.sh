#!/usr/bin/env bash
# Run every BENCH_*.json emitter in release mode and fold the results into
# one combined artefact: pulse_overhead runs last with --combine, which
# embeds each sibling report under the "benches" key of BENCH_pulse.json.
# All emitters share the bench::report writer, so every file has the same
# schema (bench, seed, min_of, runs[{nodes, rounds, ..., machine}]).
#
#   scripts/bench_all.sh             # default seeds
#   scripts/bench_all.sh --seed 7    # forwarded to every emitter
set -euo pipefail
cd "$(dirname "$0")/.."

for bench in fleet_scale scope_overhead blackbox_overhead \
             turbo_speedup elision_speedup tower_overhead helm_overhead; do
    echo "== $bench"
    cargo run -q --release -p harbor-bench --bin "$bench" -- "$@"
    echo
done

echo "== pulse_overhead --combine"
cargo run -q --release -p harbor-bench --bin pulse_overhead -- --combine "$@"

echo
echo "combined report: BENCH_pulse.json"
