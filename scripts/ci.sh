#!/usr/bin/env bash
# The full local gate: formatting, lints (warnings are errors), tests.
# Everything resolves inside the workspace (no network), so this runs the
# same everywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test -q"
cargo test --workspace -q

echo "== cargo test -q (HARBOR_TURBO=1 matrix leg)"
# Same systems, stepped through the harbor-turbo fast path: every identity
# and kernel test must pass with the engine substituted in.
HARBOR_TURBO=1 cargo test -q -p mini-sos -p harbor-sfi -p harbor-fleet -p harbor-repro

echo "== cargo test -q (HARBOR_PROVE=1 matrix leg)"
# Same systems with certified-store elision substituted in: UMPU elision is
# byte-identical, so every kernel and identity test must still pass.
HARBOR_PROVE=1 cargo test -q -p mini-sos -p harbor-sfi -p harbor-fleet -p harbor-repro

echo "== cargo test -q (HARBOR_TURBO=1 HARBOR_PROVE=1 combined leg, tower attached)"
# Both substitutions at once, exercised through the tower pipeline: the
# fleet_tower suite attaches the aggregator to turbo+prove fleets and
# reconciles every rolled-up counter against raw telemetry.
HARBOR_TURBO=1 HARBOR_PROVE=1 cargo test -q -p harbor-repro --test fleet_tower

echo "== turbo_speedup --check"
# Gate: reference cycles pinned to the golden value (the turbo subsystem,
# when disabled, must not perturb reference execution), and turbo
# byte-identical to reference on the same fleet.
cargo run -q -p harbor-bench --bin turbo_speedup -- --check

echo "== harbor_prove --check"
# Gate: store certificates are deterministic, per-module elision rates
# stay above their pinned floors, and an 8-node fleet reports identical
# telemetry with elision on and off.
cargo run -q -p harbor-bench --bin harbor_prove -- --check

echo "== harbor-flow lint-modules -D"
cargo run -q -p harbor-flow --bin lint-modules -- -D

echo "== harbor-trace --check"
cargo run -q -p mini-sos --bin harbor-trace -- --check

echo "== harbor-postmortem --check"
cargo run -q -p harbor-fleet --bin harbor-postmortem -- --check

echo "== harbor-tower --check"
# Gate: rollup bytes identical across serial/parallel stepping and shard
# counts, exact reconciliation against raw NodeTelemetry (including the
# turbo and prove legs), and a seeded 512-node crash-loop campaign that
# must flag exactly the faulted cohort as unhealthy.
cargo run -q --release -p harbor-fleet --bin harbor-tower -- --check

echo "== harbor-pulse --check"
# Gate: phase timers reconcile (Σ phases ≤ wall, per-worker busy ≤ span ≤
# finish ≤ step), the idle-work ledger exactly matches a host-side census
# and the post-quiescence radio delta, and pulse-enabled runs keep fleet
# telemetry byte-identical to pulse-off runs across serial and parallel
# stepping.
cargo run -q --release -p harbor-fleet --bin harbor-pulse -- --check

echo "== harbor-pulse --check (HARBOR_TURBO=1 HARBOR_PROVE=1 combined leg)"
# Same gate with both execution substitutions active: profiling must stay
# observational no matter which engine steps the nodes.
HARBOR_TURBO=1 HARBOR_PROVE=1 cargo run -q --release -p harbor-fleet --bin harbor-pulse -- --check

echo "== harbor-helm --check"
# Gate: on a 512-node 8-cohort fleet a healthy image promotes through the
# full canary ladder, a crash-looping image auto-rolls-back with every
# canary node restored to its exact pre-rollout flash generation (and no
# other node ever flashed), decision logs are byte-identical across
# serial/parallel stepping, shard counts, turbo and prove, and a fleet
# with an idle controller attached reports byte-identical telemetry.
cargo run -q --release -p harbor-helm --bin harbor-helm -- --check

echo "== harbor-helm --check (HARBOR_TURBO=1 HARBOR_PROVE=1 combined leg)"
# Same gate with both execution substitutions active: the control plane
# must reach the same decisions no matter which engine steps the nodes.
HARBOR_TURBO=1 HARBOR_PROVE=1 cargo run -q --release -p harbor-helm --bin harbor-helm -- --check

echo "== ci: all green"
