#!/usr/bin/env bash
# The full local gate: formatting, lints (warnings are errors), tests.
# Everything resolves inside the workspace (no network), so this runs the
# same everywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test -q"
cargo test --workspace -q

echo "== harbor-flow lint-modules -D"
cargo run -q -p harbor-flow --bin lint-modules -- -D

echo "== harbor-trace --check"
cargo run -q -p mini-sos --bin harbor-trace -- --check

echo "== harbor-postmortem --check"
cargo run -q -p harbor-fleet --bin harbor-postmortem -- --check

echo "== ci: all green"
