//! Differential tests: the kernel's AVR-assembly allocator, running on the
//! simulator under UMPU and SFI, must leave the RAM-resident memory map
//! byte-for-byte identical to a host-level reference allocator driving the
//! golden-model [`harbor::MemoryMap`] through the same operation sequence.

use avr_core::isa::Reg;
use harbor::{DomainId, MemMapConfig, MemoryMap};
use mini_sos::{JtEntry, Protection, SosLayout, SosSystem};
use proptest::prelude::*;

/// Scratch where the driver app records malloc results (8 pointer slots).
const OUT: u16 = 0x01ee;

#[derive(Debug, Clone, Copy)]
enum Op {
    Malloc { size: u8, owner: u8 },
    Free { slot: usize },
    ChangeOwn { slot: usize, new_owner: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u8..100, 1u8..7).prop_map(|(size, owner)| Op::Malloc { size, owner }),
        (0usize..8).prop_map(|slot| Op::Free { slot }),
        (0usize..8, 1u8..7).prop_map(|(slot, new_owner)| Op::ChangeOwn { slot, new_owner }),
    ]
}

/// Host-level mirror of the kernel's allocator: same first-fit bitmap, same
/// 2-byte headers, same memory-map updates via the golden model.
struct ReferenceAllocator {
    layout: SosLayout,
    bitmap: Vec<bool>,
    map: MemoryMap,
    /// ptr → blocks, for replaying frees.
    live: std::collections::BTreeMap<u16, u16>,
}

impl ReferenceAllocator {
    fn new(layout: SosLayout) -> ReferenceAllocator {
        let cfg = MemMapConfig::multi_domain(layout.prot.prot_bottom, layout.prot.prot_top)
            .expect("layout aligned");
        ReferenceAllocator {
            layout,
            bitmap: vec![false; layout.alloc_blocks as usize],
            map: MemoryMap::new(cfg),
            live: std::collections::BTreeMap::new(),
        }
    }

    fn malloc(&mut self, size: u8, owner: u8) -> u16 {
        let blocks = (size as u16 + 2).div_ceil(8);
        let mut run = 0usize;
        let mut start = 0usize;
        let mut found = None;
        for i in 0..self.bitmap.len() {
            if self.bitmap[i] {
                run = 0;
            } else {
                if run == 0 {
                    start = i;
                }
                run += 1;
                if run == blocks as usize {
                    found = Some(start);
                    break;
                }
            }
        }
        let Some(start) = found else { return 0 };
        for b in start..start + blocks as usize {
            self.bitmap[b] = true;
        }
        let addr = self.layout.heap_base() + start as u16 * 8;
        self.map.set_segment(DomainId::num(owner), addr, blocks * 8).expect("reference segment");
        self.live.insert(addr + 2, blocks);
        addr + 2
    }

    fn free(&mut self, ptr: u16) {
        // The kernel is the requester here (trusted), so the free succeeds
        // whenever the pointer is a live allocation.
        let Some(blocks) = self.live.remove(&ptr) else { return };
        let start = ((ptr - 2 - self.layout.heap_base()) / 8) as usize;
        for b in start..start + blocks as usize {
            self.bitmap[b] = false;
        }
        self.map.free_segment(DomainId::TRUSTED, ptr - 2).expect("reference free");
    }

    fn change_own(&mut self, ptr: u16, new_owner: u8) {
        if !self.live.contains_key(&ptr) {
            return;
        }
        self.map
            .change_own(DomainId::TRUSTED, ptr - 2, DomainId::num(new_owner))
            .expect("reference change_own");
    }
}

/// Runs the op sequence on a simulated kernel and returns the final
/// RAM-resident memory-map bytes plus the recorded pointers.
fn run_simulated(p: Protection, ops: &[Op]) -> (Vec<u8>, Vec<u16>) {
    let ops = ops.to_vec();
    let mut sys = SosSystem::build(p, &[], move |a, api| {
        let mut slot_count = 0usize;
        for op in &ops {
            match *op {
                Op::Malloc { size, owner } => {
                    if slot_count >= 8 {
                        continue;
                    }
                    a.ldi(Reg::R24, size);
                    a.ldi(Reg::R22, owner);
                    api.call_kernel(a, JtEntry::Malloc);
                    a.sts(OUT + slot_count as u16 * 2, Reg::R24);
                    a.sts(OUT + slot_count as u16 * 2 + 1, Reg::R25);
                    slot_count += 1;
                }
                Op::Free { slot } => {
                    if slot >= slot_count {
                        continue;
                    }
                    a.lds(Reg::R24, OUT + slot as u16 * 2);
                    a.lds(Reg::R25, OUT + slot as u16 * 2 + 1);
                    api.call_kernel(a, JtEntry::Free);
                }
                Op::ChangeOwn { slot, new_owner } => {
                    if slot >= slot_count {
                        continue;
                    }
                    a.lds(Reg::R24, OUT + slot as u16 * 2);
                    a.lds(Reg::R25, OUT + slot as u16 * 2 + 1);
                    a.ldi(Reg::R22, new_owner);
                    api.call_kernel(a, JtEntry::ChangeOwn);
                }
            }
        }
        a.brk();
    })
    .expect("system builds");
    sys.boot().expect("boot");
    sys.run_to_break(50_000_000).expect("ops run");

    let l = sys.layout;
    let cfg = MemMapConfig::multi_domain(l.prot.prot_bottom, l.prot.prot_top).unwrap();
    let map_bytes: Vec<u8> =
        (0..cfg.map_size_bytes()).map(|i| sys.sram(l.prot.mem_map_base + i)).collect();
    let ptrs: Vec<u16> = (0..8).map(|i| sys.sram16(OUT + i * 2)).collect();
    (map_bytes, ptrs)
}

/// Replays the ops through the reference allocator, mirroring the driver's
/// slot bookkeeping, and returns (map bytes, pointers).
fn run_reference(ops: &[Op]) -> (Vec<u8>, Vec<u16>) {
    let layout = SosLayout::default_layout();
    let mut r = ReferenceAllocator::new(layout);
    let mut slots: Vec<u16> = Vec::new();
    for op in ops {
        match *op {
            Op::Malloc { size, owner } => {
                if slots.len() >= 8 {
                    continue;
                }
                let ptr = r.malloc(size, owner);
                slots.push(ptr);
            }
            Op::Free { slot } => {
                if let Some(&ptr) = slots.get(slot) {
                    r.free(ptr);
                }
            }
            Op::ChangeOwn { slot, new_owner } => {
                if let Some(&ptr) = slots.get(slot) {
                    r.change_own(ptr, new_owner);
                }
            }
        }
    }
    let mut ptrs = vec![0u16; 8];
    for (i, p) in slots.iter().enumerate() {
        ptrs[i] = *p;
    }
    (r.map.as_bytes().to_vec(), ptrs)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        .. ProptestConfig::default()
    })]

    /// The simulated UMPU kernel agrees byte-for-byte with the reference.
    #[test]
    fn umpu_kernel_matches_reference(ops in proptest::collection::vec(op_strategy(), 1..10)) {
        let (sim_map, sim_ptrs) = run_simulated(Protection::Umpu, &ops);
        let (ref_map, ref_ptrs) = run_reference(&ops);
        prop_assert_eq!(sim_ptrs, ref_ptrs, "allocation placement");
        prop_assert_eq!(sim_map, ref_map, "memory-map contents");
    }

    /// The SFI build makes identical allocation decisions and map updates.
    #[test]
    fn sfi_kernel_matches_reference(ops in proptest::collection::vec(op_strategy(), 1..8)) {
        let (sim_map, sim_ptrs) = run_simulated(Protection::Sfi, &ops);
        let (ref_map, ref_ptrs) = run_reference(&ops);
        prop_assert_eq!(sim_ptrs, ref_ptrs, "allocation placement");
        prop_assert_eq!(sim_map, ref_map, "memory-map contents");
    }
}

#[test]
fn deterministic_sequence_sanity() {
    let ops = [
        Op::Malloc { size: 10, owner: 1 },
        Op::Malloc { size: 30, owner: 2 },
        Op::Free { slot: 0 },
        Op::Malloc { size: 5, owner: 3 }, // reuses slot 0's blocks
        Op::ChangeOwn { slot: 1, new_owner: 5 },
    ];
    let (umpu_map, umpu_ptrs) = run_simulated(Protection::Umpu, &ops);
    let (ref_map, ref_ptrs) = run_reference(&ops);
    assert_eq!(umpu_ptrs, ref_ptrs);
    assert_eq!(umpu_map, ref_map);
    // First-fit reuse: the third allocation went where the first had been.
    assert_eq!(umpu_ptrs[2], umpu_ptrs[0]);
}
