//! Fault-injection matrix: a module performs one wild write into each
//! region class of the address space; UMPU and SFI must both block it and
//! report the same fault class. Benign variants must pass everywhere.
//!
//! The randomized sweep is reproducible from a single u64 seed: set
//! `HARBOR_SEED=n cargo test --test fault_injection` to replay a run
//! (the default seed is fixed, so plain `cargo test` is deterministic too).

use avr_core::isa::Reg;
use avr_core::Fault;
use harbor::{fault_code, DomainId};
use mini_sos::kernel::MSG_TIMER;
use mini_sos::{ModuleSource, Protection, SosSystem};
use rand::{Rng, SeedableRng, StdRng};

const DOM: u8 = 2;

/// Explicit sweep seed: `HARBOR_SEED` if set, a fixed default otherwise —
/// never ambient entropy.
fn seed() -> u64 {
    match std::env::var("HARBOR_SEED") {
        Ok(v) => v.parse().expect("HARBOR_SEED must be a u64"),
        Err(_) => 0x5eed,
    }
}

/// Builds a module whose timer handler stores 0xEE at `target`.
fn wild_writer(target: u16) -> ModuleSource {
    ModuleSource {
        name: "wild_writer",
        domain: DomainId::num(DOM),
        entries: vec!["ww_handler"],
        build: Box::new(move |a, _ctx| {
            let done = a.label("ww_done");
            a.here("ww_handler");
            a.cpi(Reg::R24, MSG_TIMER);
            a.brne(done);
            a.ldi(Reg::R16, 0xee);
            a.sts(target, Reg::R16);
            a.bind(done);
            a.ret();
        }),
    }
}

/// Runs the wild writer under `p`; returns the fault code (None = clean).
fn outcome(p: Protection, target: u16) -> Option<u16> {
    let mut sys = SosSystem::build(p, &[wild_writer(target)], |a, api| {
        api.run_scheduler(a);
        a.brk();
    })
    .expect("builds");
    sys.boot().expect("boot");
    sys.post(DomainId::num(DOM), MSG_TIMER);
    match sys.run_to_break(10_000_000) {
        Ok(_) => None,
        Err(Fault::Env(e)) => Some(e.code),
        Err(other) => panic!("{p:?}: unexpected failure: {other}"),
    }
}

#[test]
fn wild_write_matrix() {
    let layout = mini_sos::SosLayout::default_layout();
    // (description, target, expected fault code; the module's own state
    // segment is the one benign row).
    let cases: &[(&str, u16, Option<u16>)] = &[
        ("own state segment", layout.state_addr(DOM), None),
        ("kernel globals (cur_dom)", 0x0062, Some(fault_code::KERNEL_SPACE)),
        ("memory-map table itself", layout.prot.mem_map_base, Some(fault_code::KERNEL_SPACE)),
        ("foreign heap block", layout.heap_base() + 0x80, Some(fault_code::MEM_MAP)),
        ("another module's state", layout.state_addr(5), Some(fault_code::MEM_MAP)),
        ("safe stack", layout.prot.safe_stack_base + 4, Some(fault_code::MEM_MAP)),
        ("caller's stack frames", avr_core::mem::RAMEND, Some(fault_code::STACK_BOUND)),
    ];
    for p in [Protection::Umpu, Protection::Sfi] {
        for (what, target, expect) in cases {
            let got = outcome(p, *target);
            assert_eq!(
                got, *expect,
                "{p:?}: wild write to {what} ({target:#06x}): got {got:?}, expected {expect:?}"
            );
        }
    }
}

#[test]
fn unprotected_build_lets_every_wild_write_through() {
    let layout = mini_sos::SosLayout::default_layout();
    for target in [layout.heap_base() + 0x80, layout.state_addr(5), layout.prot.safe_stack_base + 4]
    {
        let mut sys = SosSystem::build(Protection::None, &[wild_writer(target)], |a, api| {
            api.run_scheduler(a);
            a.brk();
        })
        .unwrap();
        sys.boot().unwrap();
        sys.post(DomainId::num(DOM), MSG_TIMER);
        sys.run_to_break(10_000_000).unwrap();
        assert_eq!(sys.sram(target), 0xee, "stock AVR: the write landed at {target:#06x}");
    }
}

#[test]
fn umpu_and_sfi_agree_on_every_case() {
    // Protection equivalence: the two implementations enforce the same
    // policy (the matrix above asserts this pairwise; this test makes the
    // property explicit over a denser target sweep).
    let layout = mini_sos::SosLayout::default_layout();
    for target in (0x0062..0x0fff).step_by(251) {
        let u = outcome(Protection::Umpu, target);
        let s = outcome(Protection::Sfi, target);
        assert_eq!(u, s, "divergence at {target:#06x}: UMPU {u:?} vs SFI {s:?}");
    }
    let _ = layout;
}

#[test]
fn umpu_and_sfi_agree_on_seeded_random_targets() {
    // The dense sweep above uses a fixed stride; this one draws targets
    // from the seeded generator so CI can widen coverage over time by
    // varying HARBOR_SEED while any failure stays reproducible.
    let seed = seed();
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..24 {
        let target = rng.gen_range(0x0062u16..0x0fff);
        let u = outcome(Protection::Umpu, target);
        let s = outcome(Protection::Sfi, target);
        assert_eq!(u, s, "seed {seed}: divergence at {target:#06x}: UMPU {u:?} vs SFI {s:?}");
    }
}
