//! Fleet-level harbor-pulse integration: the pipeline profiler is
//! strictly observational (telemetry byte-identical with pulse off/on,
//! serial/parallel), its timer and ledger invariants reconcile on a real
//! dissemination run, and the idle-work ledger exactly matches a
//! host-side census of pending work taken independently of the recorder.

use harbor::DomainId;
use harbor_fleet::{Fleet, FleetConfig, ModuleImage, NetConfig};
use mini_sos::kernel::MSG_TIMER;
use mini_sos::{modules, Protection};

const NODES: usize = 24;
const ROUNDS: u64 = 20;

fn seed() -> u64 {
    match std::env::var("HARBOR_SEED") {
        Ok(v) => v.parse().expect("HARBOR_SEED must be a u64"),
        Err(_) => 0x9a15e,
    }
}

/// Blink everywhere with a mid-run Tree Routing dissemination: radio
/// traffic, OTA reassembly and kernel timers all land in the ledger.
fn run(pulse: bool, threads: usize) -> Fleet {
    let cfg = FleetConfig {
        nodes: NODES,
        protection: Protection::Umpu,
        seed: seed(),
        net: NetConfig { loss: 0.1, ..NetConfig::default() },
        threads,
        pulse,
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::new(&cfg, &[modules::blink(0)]).expect("fleet builds");
    for round in 0..ROUNDS {
        if round % 4 == 0 {
            fleet.post_all(DomainId::num(0), MSG_TIMER);
        }
        if round == 4 {
            let image =
                ModuleImage::assemble(&modules::tree_routing(3), &fleet.layout(), cfg.protection)
                    .expect("image assembles");
            fleet.disseminate(&image);
        }
        fleet.step_round();
    }
    fleet
}

#[test]
fn pulse_is_observational() {
    let baseline = run(false, 1).telemetry().comparable_json();
    for (pulse, threads) in [(true, 1), (true, 4), (false, 4)] {
        let mut fleet = run(pulse, threads);
        assert_eq!(
            fleet.telemetry().comparable_json(),
            baseline,
            "pulse={pulse} threads={threads} perturbed the machines"
        );
    }
}

#[test]
fn report_reconciles_and_accounts_every_node_step() {
    for threads in [1, 4] {
        let fleet = run(true, threads);
        let report = fleet.pulse_report().expect("pulse enabled");
        assert_eq!(report.rounds, ROUNDS);
        assert_eq!(report.ledger.stepped, NODES as u64 * ROUNDS);
        let bad = report.reconcile();
        assert!(bad.is_empty(), "threads={threads}: {bad:?}");
        assert_eq!(report.timeline.len(), ROUNDS as usize, "all rounds retained");
    }
}

#[test]
fn ledger_matches_independent_census() {
    // Count pending work by hand before every round, serial so the
    // census and the recorder see the same pre-step state; the ledger
    // must agree exactly — it is a pure function of node state.
    let cfg = FleetConfig {
        nodes: NODES,
        protection: Protection::Umpu,
        seed: seed(),
        net: NetConfig { loss: 0.0, ..NetConfig::default() },
        threads: 1,
        pulse: true,
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::new(&cfg, &[modules::blink(0)]).expect("fleet builds");
    let mut census = Vec::new();
    for round in 0..8u64 {
        if round % 3 == 0 {
            fleet.post_all(DomainId::num(0), MSG_TIMER);
        }
        let busy =
            (0..NODES).filter(|&i| fleet.with_node(i, |n| n.pending_work().any())).count() as u64;
        census.push(busy);
        fleet.step_round();
    }
    let report = fleet.pulse_report().expect("pulse enabled");
    for (r, &expect) in report.timeline.iter().zip(&census) {
        assert_eq!(r.ledger.busy, expect, "round {}", r.round);
        assert_eq!(r.ledger.stepped, NODES as u64, "round {}", r.round);
    }
}

#[test]
fn serial_and_parallel_ledgers_are_byte_identical() {
    let serial = run(true, 1).pulse_report().expect("pulse enabled");
    let parallel = run(true, 4).pulse_report().expect("pulse enabled");
    assert_eq!(serial.ledger_json(), parallel.ledger_json());
    for (s, p) in serial.timeline.iter().zip(&parallel.timeline) {
        assert_eq!(s.ledger, p.ledger, "round {}", s.round);
        assert_eq!(s.cycles_delta, p.cycles_delta, "round {}", s.round);
    }
}

#[test]
fn disabled_pulse_has_no_report() {
    assert!(run(false, 1).pulse_report().is_none());
}
