//! Fleet-level harbor-tower integration: the telemetry rollup must be
//! byte-identical across serial and parallel stepping and across shard
//! counts — as a property over random seeds, loss rates and schedules —
//! and every rollup counter must reconcile *exactly* against the raw
//! per-node telemetry, including under the turbo engine and certified
//! store elision.

use harbor::DomainId;
use harbor_fleet::{
    BlackboxConfig, Fleet, FleetConfig, ModuleImage, NetConfig, NodeTelemetry, TowerConfig,
};
use mini_sos::kernel::MSG_TIMER;
use mini_sos::{modules, Protection};
use proptest::prelude::*;

const NODES: usize = 12;
const ROUNDS: u64 = 24;
const COHORTS: u32 = 4;

/// Test seed, overridable for reproduction: `HARBOR_SEED=n cargo test`.
fn seed() -> u64 {
    match std::env::var("HARBOR_SEED") {
        Ok(v) => v.parse().expect("HARBOR_SEED must be a u64"),
        Err(_) => 0x70_3e_12,
    }
}

/// `HARBOR_PROVE=1` enables elision at build time even when the config
/// leaves `prove` off, so the elision-count expectations must follow it.
fn env_prove() -> bool {
    std::env::var_os("HARBOR_PROVE").is_some_and(|v| v == "1")
}

/// A cohorted fleet with the blackbox and tower attached: Blink ticks
/// everywhere, cohort 2 gets the faulting Surge timer in two rounds, and
/// Tree Routing goes out over the radio mid-run (into an unrelated domain,
/// so Surge keeps faulting) to exercise the install counters.
fn run(seed: u64, loss: f64, threads: usize, shards: u32, turbo: bool, prove: bool) -> Fleet {
    let cfg = FleetConfig {
        nodes: NODES,
        protection: Protection::Umpu,
        seed,
        net: NetConfig { loss, ..NetConfig::default() },
        threads,
        blackbox: Some(BlackboxConfig::default()),
        turbo,
        prove,
        cohorts: COHORTS,
        tower: Some(TowerConfig { shards, ..TowerConfig::default() }),
        ..FleetConfig::default()
    };
    let mut fleet =
        Fleet::new(&cfg, &[modules::blink(0), modules::surge(3, 2)]).expect("fleet builds");
    for round in 0..ROUNDS {
        fleet.post_all(DomainId::num(0), MSG_TIMER);
        if round == 8 || round == 16 {
            for victim in (2..NODES).step_by(COHORTS as usize) {
                fleet.post(victim, DomainId::num(3), MSG_TIMER);
            }
        }
        if round == 4 {
            let image =
                ModuleImage::assemble(&modules::tree_routing(5), &fleet.layout(), cfg.protection)
                    .expect("image assembles");
            fleet.disseminate(&image);
        }
        fleet.step_round();
    }
    fleet
}

fn rollup_json(seed: u64, loss: f64, threads: usize, shards: u32) -> String {
    run(seed, loss, threads, shards, false, false).tower_rollup().expect("tower attached").to_json()
}

/// The headline invariant: same seed → same rollup bytes, no matter how
/// many worker threads stepped the fleet or how many shards aggregated it.
#[test]
fn rollup_is_schedule_and_shard_independent() {
    let reference = rollup_json(seed(), 0.1, 1, 4);
    assert!(reference.contains("\"schema\":\"harbor-tower-rollup-v1\""));
    assert_eq!(reference, rollup_json(seed(), 0.1, 4, 4), "parallel stepping diverged");
    assert_eq!(reference, rollup_json(seed(), 0.1, 8, 4), "worker count leaked");
    for shards in [1u32, 3, 7] {
        assert_eq!(reference, rollup_json(seed(), 0.1, 4, shards), "{shards} shards diverged");
    }
}

/// Every rollup counter reconciles exactly against the raw per-node
/// telemetry — no sampling, no loss — and the per-cohort fold invariant
/// (`totals == folded + Σ windows`) holds end to end. Turbo and prove runs
/// must reconcile the same way, and prove's elision counter must agree
/// with the per-node metrics registry it was sampled from.
#[test]
fn rollup_reconciles_exactly_under_turbo_and_prove() {
    for (turbo, prove) in [(false, false), (true, false), (false, true), (true, true)] {
        let mut fleet = run(seed(), 0.1, 4, 4, turbo, prove);
        let rollup = fleet.tower_rollup().expect("tower attached");
        let telemetry = fleet.telemetry();
        let totals = rollup.totals();
        let tag = format!("turbo={turbo} prove={prove}");
        assert_eq!(totals.samples, NODES as u64 * ROUNDS, "{tag}: samples");
        assert_eq!(totals.cycles, telemetry.total(|n| n.cycles), "{tag}: cycles");
        assert_eq!(totals.instructions, telemetry.total(|n| n.instructions), "{tag}: instr");
        assert_eq!(totals.rx, telemetry.total(|n| n.rx), "{tag}: rx");
        assert_eq!(totals.tx, telemetry.total(|n| n.tx), "{tag}: tx");
        assert_eq!(totals.messages, telemetry.total(|n| n.messages), "{tag}: messages");
        assert_eq!(totals.chunks, telemetry.total(|n| n.chunks), "{tag}: chunks");
        assert_eq!(totals.retransmits, telemetry.total(|n| n.requests), "{tag}: retransmits");
        assert_eq!(totals.faults, telemetry.total(NodeTelemetry::faults), "{tag}: faults");
        assert_eq!(totals.contained, telemetry.total(NodeTelemetry::contained), "{tag}: contained");
        assert_eq!(totals.alerts, telemetry.total(|n| n.alerts), "{tag}: alerts");
        assert_eq!(totals.ring_dropped, telemetry.total(|n| n.ring_dropped), "{tag}: ring");
        assert_eq!(totals.dumps, fleet.dumps().len() as u64, "{tag}: dumps");
        assert!(totals.faults > 0, "{tag}: the scenario faults");
        let elided_metric = telemetry.merged_metrics().counter("umpu.stores_elided");
        assert_eq!(totals.stores_elided, elided_metric, "{tag}: stores_elided vs metrics");
        if prove || env_prove() {
            assert!(totals.stores_elided > 0, "{tag}: elision fired under prove");
        } else {
            assert_eq!(totals.stores_elided, 0, "{tag}: no elision without prove");
        }
        for c in &rollup.cohorts {
            let mut sum = c.folded;
            for w in &c.windows {
                sum.add(&w.counters);
            }
            assert_eq!(sum, c.totals, "{tag}: cohort {} fold invariant", c.cohort);
        }
    }
}

/// Turbo and prove leave every schedule-independent aggregate untouched:
/// the prove rollup may differ from the reference only in `stores_elided`.
#[test]
fn prove_rollup_differs_only_in_elision_counter() {
    let reference = run(seed(), 0.1, 1, 4, false, false).tower_rollup().unwrap();
    let turbo = run(seed(), 0.1, 4, 4, true, false).tower_rollup().unwrap();
    assert_eq!(reference.to_json(), turbo.to_json(), "turbo rollup diverged");
    let prove = run(seed(), 0.1, 4, 4, false, true).tower_rollup().unwrap();
    let (r, p) = (reference.totals(), prove.totals());
    for (name, (rv, pv)) in
        harbor_tower::CounterSet::FIELDS.iter().zip(r.values().into_iter().zip(p.values()))
    {
        if *name == "stores_elided" && !env_prove() {
            assert!(pv > rv, "elision fired under prove");
        } else {
            assert_eq!(rv, pv, "{name} diverged under prove");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        .. ProptestConfig::default()
    })]

    /// Partition independence as a property: for any seed, loss rate,
    /// worker count and shard count, the rollup bytes equal the serial
    /// single-shard run's. `salt` folds in `HARBOR_SEED` so the campaign
    /// moves with the repo-wide seed while staying reproducible.
    #[test]
    fn rollup_bytes_are_partition_independent(
        salt in 0u64..1_000_000,
        loss_pct in 0u32..40,
        threads in 2usize..6,
        shards in 2u32..9,
    ) {
        let s = seed() ^ salt;
        let loss = f64::from(loss_pct) / 100.0;
        let reference = rollup_json(s, loss, 1, 1);
        prop_assert_eq!(&reference, &rollup_json(s, loss, threads, shards));
    }
}
