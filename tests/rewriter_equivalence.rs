//! Rewriter semantic-equivalence property: for random *benign* modules
//! (programs that only touch their own memory), the sandboxed binary must
//! compute exactly the same result as the original — same registers, same
//! flags, same memory — despite every store going through a check routine,
//! every branch being relaid, and every skip being rebuilt.

use avr_asm::Asm;
use avr_core::exec::Cpu;
use avr_core::isa::{Ptr, PtrMode, Reg};
use avr_core::mem::PlainEnv;
use harbor::DomainId;
use harbor_sfi::{rewrite, verify, SfiLayout, SfiRuntime, VerifierConfig};
use proptest::prelude::*;

const ORIGIN: u32 = 0x1000;
const SEG: u16 = 0x0300;
const SEG_LEN: u16 = 32;

/// One step of a generated program. Only benign operations: arithmetic on
/// r16..r25, stores into the module's own segment, skips and short forward
/// branches.
#[derive(Debug, Clone, Copy)]
enum GenOp {
    Ldi {
        r: u8,
        k: u8,
    },
    Mov {
        d: u8,
        s: u8,
    },
    Add {
        d: u8,
        s: u8,
    },
    Sub {
        d: u8,
        s: u8,
    },
    And {
        d: u8,
        s: u8,
    },
    Or {
        d: u8,
        s: u8,
    },
    Eor {
        d: u8,
        s: u8,
    },
    Inc {
        r: u8,
    },
    Dec {
        r: u8,
    },
    Lsr {
        r: u8,
    },
    Swap {
        r: u8,
    },
    StXInc {
        r: u8,
    },
    Sts {
        off: u8,
        r: u8,
    },
    Lds {
        r: u8,
        off: u8,
    },
    /// Skip the following op if bit `b` of `r` is clear/set.
    Skip {
        r: u8,
        b: u8,
        if_set: bool,
    },
    /// Branch forward `dist` ops if Z is set/clear.
    Branch {
        on_zero: bool,
        dist: u8,
    },
    Cp {
        d: u8,
        s: u8,
    },
}

fn reg(n: u8) -> Reg {
    Reg::num(16 + (n % 10))
}

fn op_strategy() -> impl Strategy<Value = GenOp> {
    let r = 0u8..10;
    prop_oneof![
        (r.clone(), any::<u8>()).prop_map(|(r, k)| GenOp::Ldi { r, k }),
        (r.clone(), r.clone()).prop_map(|(d, s)| GenOp::Mov { d, s }),
        (r.clone(), r.clone()).prop_map(|(d, s)| GenOp::Add { d, s }),
        (r.clone(), r.clone()).prop_map(|(d, s)| GenOp::Sub { d, s }),
        (r.clone(), r.clone()).prop_map(|(d, s)| GenOp::And { d, s }),
        (r.clone(), r.clone()).prop_map(|(d, s)| GenOp::Or { d, s }),
        (r.clone(), r.clone()).prop_map(|(d, s)| GenOp::Eor { d, s }),
        r.clone().prop_map(|r| GenOp::Inc { r }),
        r.clone().prop_map(|r| GenOp::Dec { r }),
        r.clone().prop_map(|r| GenOp::Lsr { r }),
        r.clone().prop_map(|r| GenOp::Swap { r }),
        r.clone().prop_map(|r| GenOp::StXInc { r }),
        (0u8..SEG_LEN as u8, r.clone()).prop_map(|(off, r)| GenOp::Sts { off, r }),
        (r.clone(), 0u8..SEG_LEN as u8).prop_map(|(r, off)| GenOp::Lds { r, off }),
        (r.clone(), 0u8..8, any::<bool>()).prop_map(|(r, b, if_set)| GenOp::Skip { r, b, if_set }),
        (any::<bool>(), 1u8..6).prop_map(|(on_zero, dist)| GenOp::Branch { on_zero, dist }),
        (r.clone(), r).prop_map(|(d, s)| GenOp::Cp { d, s }),
    ]
}

/// Emits the program. Branch targets are labels planted at op boundaries;
/// a `Skip` always has a following op (we append a final `nop`).
fn emit(ops: &[GenOp]) -> Asm {
    let mut a = Asm::new();
    let labels: Vec<_> = (0..=ops.len()).map(|i| a.label(&format!("op{i}"))).collect();
    for (i, op) in ops.iter().enumerate() {
        a.bind(labels[i]);
        match *op {
            GenOp::Ldi { r, k } => a.ldi(reg(r), k),
            GenOp::Mov { d, s } => a.mov(reg(d), reg(s)),
            GenOp::Add { d, s } => a.add(reg(d), reg(s)),
            GenOp::Sub { d, s } => a.sub(reg(d), reg(s)),
            GenOp::And { d, s } => a.and(reg(d), reg(s)),
            GenOp::Or { d, s } => a.or(reg(d), reg(s)),
            GenOp::Eor { d, s } => a.eor(reg(d), reg(s)),
            GenOp::Inc { r } => a.inc(reg(r)),
            GenOp::Dec { r } => a.dec(reg(r)),
            GenOp::Lsr { r } => a.lsr(reg(r)),
            GenOp::Swap { r } => a.swap(reg(r)),
            GenOp::StXInc { r } => a.st(Ptr::X, PtrMode::PostInc, reg(r)),
            GenOp::Sts { off, r } => a.sts(SEG + off as u16, reg(r)),
            GenOp::Lds { r, off } => a.lds(reg(r), SEG + off as u16),
            GenOp::Skip { r, b, if_set } => {
                if if_set {
                    a.sbrs(reg(r), b);
                } else {
                    a.sbrc(reg(r), b);
                }
                // The skipped instruction is the next generated op (or the
                // trailing nop) — nothing to emit here.
            }
            GenOp::Branch { on_zero, dist } => {
                let target = labels[(i + dist as usize).min(ops.len())];
                if on_zero {
                    a.breq(target);
                } else {
                    a.brne(target);
                }
            }
            GenOp::Cp { d, s } => a.cp(reg(d), reg(s)),
        }
    }
    a.bind(labels[ops.len()]);
    a.nop(); // skip fodder
    a.brk();
    a
}

/// Runs `words` at `ORIGIN` on a machine, with X preset into the segment;
/// returns (r16..r25, SREG, X, segment bytes).
fn run(words: &[u16], sfi: Option<&SfiRuntime>) -> (Vec<u8>, u8, u16, Vec<u8>) {
    let mut env = PlainEnv::new();
    if let Some(rt) = sfi {
        rt.install(&mut env.flash, &mut env.data);
        rt.host_set_segment(&mut env.data, DomainId::num(2), SEG, SEG_LEN).unwrap();
        rt.set_current_domain(&mut env.data, DomainId::num(2));
    }
    env.flash.load_words(ORIGIN, words);
    let mut cpu = Cpu::new(env);
    // X starts at the segment; stores via X+ stay inside it (op count < 32).
    cpu.set_reg16(Reg::XL, SEG);
    cpu.pc = ORIGIN;
    cpu.run_to_break(1_000_000).expect("benign program completes");
    let regs: Vec<u8> = (16..26).map(|i| cpu.regs[i]).collect();
    let seg: Vec<u8> = (0..SEG_LEN).map(|i| cpu.env.sram_byte(SEG + i)).collect();
    (regs, cpu.sreg, cpu.reg16(Reg::XL), seg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn sandboxing_preserves_program_semantics(
        ops in proptest::collection::vec(op_strategy(), 1..24)
    ) {
        // Cap the number of X-post-increment stores so X stays in-segment.
        let st_count = ops.iter().filter(|o| matches!(o, GenOp::StXInc { .. })).count();
        prop_assume!(st_count < SEG_LEN as usize);

        let original = emit(&ops).assemble(ORIGIN).unwrap();
        let rt = SfiRuntime::build(SfiLayout::default_layout(), 0x0040);
        let rewritten = rewrite(original.words(), ORIGIN, &[], ORIGIN, &rt)
            .expect("benign module rewrites");
        verify(rewritten.object.words(), ORIGIN, &VerifierConfig::for_runtime(&rt))
            .expect("rewriter output verifies");

        let plain = run(original.words(), None);
        let sandboxed = run(rewritten.object.words(), Some(&rt));
        prop_assert_eq!(&plain.0, &sandboxed.0, "registers r16..r25");
        prop_assert_eq!(plain.1, sandboxed.1, "SREG");
        prop_assert_eq!(plain.2, sandboxed.2, "X pointer");
        prop_assert_eq!(&plain.3, &sandboxed.3, "segment contents");
    }
}
