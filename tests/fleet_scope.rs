//! Fleet-level harbor-scope integration: per-node ring sinks must not
//! perturb any node's simulation, the scope aggregate must appear in the
//! telemetry JSON exactly when sinks are attached, and a serial and a
//! parallel run of the same seed must still agree byte-for-byte.

use harbor::DomainId;
use harbor_fleet::{Fleet, FleetConfig, NetConfig};
use harbor_scope::{EventKind, SinkSpec};
use mini_sos::kernel::MSG_TIMER;
use mini_sos::{modules, Protection};

const NODES: usize = 8;
const ROUNDS: u64 = 24;

fn seed() -> u64 {
    match std::env::var("HARBOR_SEED") {
        Ok(v) => v.parse().expect("HARBOR_SEED must be a u64"),
        Err(_) => 0x5c09e,
    }
}

fn run(scope: Option<SinkSpec>, threads: usize) -> harbor_fleet::FleetTelemetry {
    let cfg = FleetConfig {
        nodes: NODES,
        protection: Protection::Umpu,
        seed: seed(),
        net: NetConfig { loss: 0.1, ..NetConfig::default() },
        threads,
        scope,
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::new(&cfg, &[modules::blink(0)]).expect("fleet builds");
    for _ in 0..ROUNDS {
        fleet.post_all(DomainId::num(0), MSG_TIMER);
        fleet.step_round();
    }
    fleet.telemetry()
}

#[test]
fn per_node_sinks_do_not_perturb_the_fleet() {
    let bare = run(None, 1);
    let traced = run(Some(SinkSpec::Ring(64)), 1);
    // Every machine-level counter agrees; only the sink's own bookkeeping
    // (the scope reduction and the per-node ring-drop mirror) differs.
    let mut traced_wiped = traced.clone();
    traced_wiped.scope = None;
    for n in &mut traced_wiped.per_node {
        n.metrics = harbor_scope::MetricsRegistry::new();
        n.ring_dropped = 0;
    }
    let mut bare_wiped = bare.clone();
    for n in &mut bare_wiped.per_node {
        n.metrics = harbor_scope::MetricsRegistry::new();
    }
    assert_eq!(bare_wiped, traced_wiped, "sinks changed fleet behaviour");
    assert_eq!(bare.comparable_json(), {
        let mut t = traced.clone();
        t.scope = None;
        for n in &mut t.per_node {
            n.ring_dropped = 0;
        }
        t.comparable_json()
    });
}

#[test]
fn scope_aggregate_appears_only_when_sinks_attached() {
    let bare = run(None, 1);
    assert!(bare.scope.is_none());
    assert!(!bare.to_json().contains("\"scope\""));

    let traced = run(Some(SinkSpec::Ring(64)), 1);
    let agg = traced.scope.as_ref().expect("aggregate present");
    assert!(agg.recorded > 0, "nodes recorded events");
    assert!(agg.max_recorded <= agg.recorded);
    assert!(agg.p99_recorded <= agg.max_recorded);
    // Identical nodes on an identical workload: per-kind sums divide evenly.
    let calls = agg.kinds[EventKind::CrossDomainCall.index()];
    assert!(
        calls > 0 && calls.is_multiple_of(NODES as u64),
        "uniform workload, uniform counts: {calls}"
    );
    assert!(traced.to_json().contains("\"scope\":{\"recorded\":"));
}

#[test]
fn serial_and_parallel_scoped_runs_are_byte_identical() {
    let serial = run(Some(SinkSpec::Ring(64)), 1);
    let parallel = run(Some(SinkSpec::Ring(64)), 4);
    assert_eq!(serial.comparable_json(), parallel.comparable_json());
    assert_eq!(serial.scope, parallel.scope);
}
