//! Fleet-level harbor-blackbox integration: postmortem dumps must be
//! byte-identical between serial and parallel runs, faults and dumps must
//! pair one-to-one, and — as a property over random seeds, loss rates and
//! fault patterns — Lamport stamps must strictly increase along every
//! happens-before edge of the fleet's causal DAG.

use harbor::DomainId;
use harbor_blackbox::{build_edges, check_monotone, Postmortem};
use harbor_fleet::{BlackboxConfig, Fleet, FleetConfig, ModuleImage, NetConfig};
use mini_sos::kernel::MSG_TIMER;
use mini_sos::{modules, Protection};
use proptest::prelude::*;

const NODES: usize = 8;
const ROUNDS: u64 = 24;

fn seed() -> u64 {
    match std::env::var("HARBOR_SEED") {
        Ok(v) => v.parse().expect("HARBOR_SEED must be a u64"),
        Err(_) => 0x5c09e,
    }
}

/// A fleet under the full blackbox, with Blink everywhere, the faulting
/// Surge on every node, and an OTA dissemination mid-run so the causal
/// logs carry real radio traffic.
fn run(seed: u64, loss: f64, threads: usize, fault_rounds: &[u64]) -> Fleet {
    let cfg = FleetConfig {
        nodes: NODES,
        protection: Protection::Umpu,
        seed,
        net: NetConfig { loss, ..NetConfig::default() },
        threads,
        blackbox: Some(BlackboxConfig::default()),
        ..FleetConfig::default()
    };
    let mut fleet =
        Fleet::new(&cfg, &[modules::blink(0), modules::surge(3, 2)]).expect("fleet builds");
    for round in 0..ROUNDS {
        fleet.post_all(DomainId::num(0), MSG_TIMER);
        if fault_rounds.contains(&round) {
            for victim in (0..NODES).step_by(2) {
                fleet.post(victim, DomainId::num(3), MSG_TIMER);
            }
        }
        // The patch goes out only after the faults have fired: installing
        // Tree Routing gives Surge's lookup a real target and cures it.
        if round == 18 {
            let image =
                ModuleImage::assemble(&modules::tree_routing(2), &fleet.layout(), cfg.protection)
                    .expect("image assembles");
            fleet.disseminate(&image);
        }
        fleet.step_round();
    }
    fleet
}

#[test]
fn every_fault_freezes_exactly_one_dump() {
    let mut fleet = run(seed(), 0.1, 1, &[8, 16]);
    let telemetry = fleet.telemetry();
    let faults = telemetry.total(harbor_fleet::NodeTelemetry::faults);
    let dumps = fleet.dumps();
    assert!(faults > 0, "the scenario faults");
    assert_eq!(faults, dumps.len() as u64, "one dump per fault");
    for dump in &dumps {
        assert_eq!(dump.protection, "umpu");
        assert!(!dump.events.is_empty(), "the ring captured the lead-up");
        let back = Postmortem::from_json(&dump.to_json()).expect("round-trips");
        assert_eq!(&back, dump, "dump JSON is lossless");
    }
}

#[test]
fn watchdog_fires_exactly_twice_across_two_bursts() {
    // End-to-end re-arm regression under the *default* watchdog budgets
    // (8-round window, 2 faults): node 0 crash-bursts for three rounds,
    // goes quiet long enough for the window to drain, then bursts again.
    // The rising-edge detector must raise exactly two FaultRate alerts —
    // one per burst — and nothing else (loss is 0, so no retransmits).
    const BURSTS: [std::ops::RangeInclusive<u64>; 2] = [0..=2, 11..=13];
    let cfg = FleetConfig {
        nodes: 4,
        protection: Protection::Umpu,
        seed: seed(),
        net: NetConfig { loss: 0.0, ..NetConfig::default() },
        threads: 1,
        blackbox: Some(BlackboxConfig::default()),
        ..FleetConfig::default()
    };
    let mut fleet =
        Fleet::new(&cfg, &[modules::blink(0), modules::surge(3, 2)]).expect("fleet builds");
    for round in 0..20 {
        fleet.post_all(DomainId::num(0), MSG_TIMER);
        if BURSTS.iter().any(|b| b.contains(&round)) {
            fleet.post(0, DomainId::num(3), MSG_TIMER);
        }
        fleet.step_round();
    }
    let alerts = fleet.alerts();
    let fault_alerts: Vec<_> =
        alerts.iter().filter(|a| a.kind == harbor_blackbox::AlertKind::FaultRate).collect();
    assert_eq!(fault_alerts.len(), 2, "one alert per burst: {fault_alerts:?}");
    for (alert, burst) in fault_alerts.iter().zip(&BURSTS) {
        assert_eq!(alert.node, 0);
        // The edge is the third fault of the burst: 3 > the budget of 2.
        assert_eq!(alert.round, *burst.end());
        assert_eq!(alert.value, 3);
        assert_eq!(alert.limit, 2);
    }
    assert!(
        !alerts.iter().any(|a| a.kind == harbor_blackbox::AlertKind::RetransmitRate),
        "a lossless radio never retransmits"
    );
}

#[test]
fn serial_and_parallel_dumps_are_byte_identical() {
    let s = seed();
    let serial: Vec<String> =
        run(s, 0.1, 1, &[8, 16]).dumps().iter().map(Postmortem::to_json).collect();
    let parallel: Vec<String> =
        run(s, 0.1, 4, &[8, 16]).dumps().iter().map(Postmortem::to_json).collect();
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel, "dump bytes must not depend on the schedule");
}

#[test]
fn causal_trace_is_deterministic_and_has_message_edges() {
    let s = seed();
    let serial = run(s, 0.1, 1, &[8]).causal_trace();
    let parallel = run(s, 0.1, 4, &[8]).causal_trace();
    assert_eq!(serial, parallel, "chrome trace must not depend on the schedule");
    assert!(serial.contains("\"ph\":\"s\""), "flow arrows present");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// The Lamport invariant holds along every happens-before edge — for
    /// any seed, any loss rate, any fault pattern, serial or parallel.
    #[test]
    fn lamport_monotone_along_every_edge(
        s in 0u64..1_000_000,
        loss_pct in 0u32..50,
        fault_round in 0u64..18,
        threads in 1usize..5,
    ) {
        let mut fleet = run(s, f64::from(loss_pct) / 100.0, threads, &[fault_round]);
        let logs = fleet.causal_logs();
        let edges = build_edges(&logs);
        prop_assert!(edges.iter().any(|e| e.message), "radio traffic produced message edges");
        prop_assert!(check_monotone(&logs).is_ok(), "{:?}", check_monotone(&logs));
    }
}
