//! Over-the-air dissemination must be indistinguishable from a local load:
//! a module shipped in chunks through a lossy radio and reassembled on N
//! nodes yields bit-identical flash, jump-table and memory-map state to the
//! same module loaded directly via `SosSystem::load_module`.

use harbor::DomainId;
use harbor_fleet::{Fleet, FleetConfig, ModuleImage, NetConfig};
use mini_sos::kernel::MSG_TIMER;
use mini_sos::{modules, Protection, SosSystem};

const NODES: usize = 5;
const TREE_DOM: u8 = 3;

/// Test seed, overridable for reproduction: `HARBOR_SEED=n cargo test`.
fn seed() -> u64 {
    match std::env::var("HARBOR_SEED") {
        Ok(v) => v.parse().expect("HARBOR_SEED must be a u64"),
        Err(_) => 0x5eed,
    }
}

/// A directly-loaded reference system with the same module set and the same
/// amount of scheduling as a converged fleet node.
fn reference(protection: Protection) -> SosSystem {
    let mut sys = SosSystem::build(protection, &[modules::surge(1, TREE_DOM)], |a, api| {
        api.run_scheduler(a);
        a.brk();
    })
    .expect("reference builds");
    sys.boot().expect("reference boots");
    sys.run_slice(1_000_000).expect("surge init");
    sys.load_module(&modules::tree_routing(TREE_DOM)).expect("direct load");
    sys.run_slice(1_000_000).expect("tree init");
    sys
}

#[test]
fn disseminated_module_is_bit_identical_to_direct_load() {
    for protection in [Protection::None, Protection::Umpu, Protection::Sfi] {
        let cfg = FleetConfig {
            nodes: NODES,
            protection,
            seed: seed(),
            net: NetConfig { loss: 0.25, ..NetConfig::default() },
            threads: 4, // exercise the real parallel step path
            ..FleetConfig::default()
        };
        let mut fleet = Fleet::new(&cfg, &[modules::surge(1, TREE_DOM)]).expect("fleet builds");
        let layout = fleet.layout();
        let image = ModuleImage::assemble(&modules::tree_routing(TREE_DOM), &layout, protection)
            .expect("image assembles");
        fleet.disseminate(&image);
        fleet.run_until_converged(400).expect("converges under 25% loss");
        // Two more rounds so every node processes the post-install init
        // message (the reference ran its scheduler after loading too).
        fleet.run_rounds(2);

        let slot = layout.slot_for(TREE_DOM);
        let words = image.words.len() as u32;
        let reference = reference(protection);
        let ref_flash = reference.flash_words(slot, words);
        let ref_jt = reference.jt_page_words(TREE_DOM);
        let ref_map = reference.memory_map_bytes();
        let tree_state = layout.state_addr(TREE_DOM);

        for v in 0..NODES {
            fleet.with_node(v, |node| {
                assert!(node.has_installed(1), "{protection:?}: node {v} installed");
                assert_eq!(
                    node.sys.flash_words(slot, words),
                    ref_flash,
                    "{protection:?}: node {v} flash slot"
                );
                assert_eq!(
                    node.sys.jt_page_words(TREE_DOM),
                    ref_jt,
                    "{protection:?}: node {v} jump table"
                );
                assert_eq!(
                    node.sys.memory_map_bytes(),
                    ref_map,
                    "{protection:?}: node {v} memory map"
                );
                // And the module actually ran: init marked the state.
                assert_eq!(node.sys.sram(tree_state), reference.sram(tree_state));
                assert_eq!(node.sys.sram(tree_state + 1), 1, "{protection:?}: node {v} init ran");
            });
        }
    }
}

#[test]
fn load_policy_quarantines_over_budget_module_on_every_node() {
    // A 6-byte allotment admits nothing (the inbound cross-domain frame
    // alone is 5 bytes and every entry adds a 2-byte save-ret frame): the
    // disseminated image must complete reassembly on every node and then
    // be quarantined by the admission gate — never burned into flash.
    let cfg = FleetConfig {
        nodes: NODES,
        protection: Protection::Sfi,
        seed: seed(),
        threads: 4,
        load_policy: Some(mini_sos::LoadPolicy::with_allotment(6)),
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::new(&cfg, &[modules::surge(1, TREE_DOM)]).expect("fleet builds");
    let layout = fleet.layout();
    let image = ModuleImage::assemble(&modules::tree_routing(TREE_DOM), &layout, Protection::Sfi)
        .expect("image assembles");
    let id = fleet.disseminate(&image);
    fleet.run_rounds(200);

    assert!(!fleet.converged(), "a quarantined image never converges");
    let slot = layout.slot_for(TREE_DOM);
    for v in 0..NODES {
        fleet.with_node(v, |node| {
            assert!(node.has_quarantined(id), "node {v} quarantined the image");
            assert!(!node.has_installed(id), "node {v} must not install it");
            assert_eq!(node.telemetry.quarantined(), 1, "node {v} counted one quarantine");
            assert!(
                node.sys.modules.iter().all(|m| m.domain != DomainId::num(TREE_DOM)),
                "node {v}: nothing occupies the target domain"
            );
            // The flash slot was never written (still erased).
            assert!(
                node.sys.flash_words(slot, image.words.len() as u32).iter().all(|&w| w == 0xffff),
                "node {v}: flash slot untouched"
            );
        });
    }

    // The same image under a generous policy converges normally — the gate
    // itself does not disturb dissemination.
    let cfg = FleetConfig {
        nodes: NODES,
        protection: Protection::Sfi,
        seed: seed(),
        threads: 4,
        load_policy: Some(mini_sos::LoadPolicy::with_allotment(128)),
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::new(&cfg, &[modules::surge(1, TREE_DOM)]).expect("fleet builds");
    let image =
        ModuleImage::assemble(&modules::tree_routing(TREE_DOM), &fleet.layout(), Protection::Sfi)
            .expect("image assembles");
    let id = fleet.disseminate(&image);
    fleet.run_until_converged(400).expect("gated fleet still converges");
    for v in 0..NODES {
        fleet.with_node(v, |node| {
            assert!(node.has_installed(id), "node {v} installed under the roomy policy");
            assert_eq!(node.telemetry.quarantined(), 0, "node {v}: no quarantines");
        });
    }
}

#[test]
fn fleet_runs_are_reproducible_from_the_seed_across_schedules() {
    let run = |threads: usize| {
        let cfg = FleetConfig {
            nodes: 12,
            protection: Protection::Umpu,
            seed: seed(),
            net: NetConfig { loss: 0.3, latency_min: 1, latency_max: 3 },
            threads,
            ..FleetConfig::default()
        };
        let mut fleet = Fleet::new(&cfg, &[modules::blink(0)]).expect("fleet builds");
        let image = ModuleImage::assemble(
            &modules::tree_routing(TREE_DOM),
            &fleet.layout(),
            cfg.protection,
        )
        .expect("image assembles");
        fleet.disseminate(&image);
        for _ in 0..30 {
            fleet.post_all(DomainId::num(0), MSG_TIMER);
            fleet.step_round();
        }
        fleet.telemetry().comparable_json()
    };
    let serial = run(1);
    assert_eq!(serial, run(1), "same seed, same schedule");
    assert_eq!(serial, run(4), "serial and parallel runs must be byte-identical");
    assert_eq!(serial, run(8), "worker count must not leak into results");
}
