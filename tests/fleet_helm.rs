//! Fleet-level harbor-helm integration: the closed-loop rollout
//! controller's decision log must be byte-identical across serial and
//! parallel stepping and across tower shard counts — as a property over
//! random seeds, loss rates and schedules — and a condemned image's
//! rollback must restore every canary node's exact pre-rollout flash
//! generation while never touching a non-canary node. Turbo and prove
//! engines must drive the controller to the same decisions.

use harbor::DomainId;
use harbor_fleet::{BlackboxConfig, Fleet, FleetConfig, ModuleImage, NetConfig, TowerConfig};
use harbor_helm::{Helm, HelmRun, PlanConfig, RolloutState};
use mini_sos::kernel::MSG_TIMER;
use mini_sos::{modules, Protection};
use proptest::prelude::*;

const NODES: usize = 16;
const COHORTS: u32 = 4;
const GOOD_DOM: u8 = 3;
const BAD_DOM: u8 = 4;
const WARMUP: u64 = 4;
const MAX_CAMPAIGN_ROUNDS: u64 = 240;

/// Test seed, overridable for reproduction: `HARBOR_SEED=n cargo test`.
fn seed() -> u64 {
    match std::env::var("HARBOR_SEED") {
        Ok(v) => v.parse().expect("HARBOR_SEED must be a u64"),
        Err(_) => 0x70_3e_12,
    }
}

fn build(seed: u64, loss: f64, threads: usize, shards: u32, turbo: bool, prove: bool) -> Fleet {
    let cfg = FleetConfig {
        nodes: NODES,
        protection: Protection::Umpu,
        seed,
        net: NetConfig { loss, ..NetConfig::default() },
        threads,
        blackbox: Some(BlackboxConfig::default()),
        turbo,
        prove,
        cohorts: COHORTS,
        tower: Some(TowerConfig { shards, ..TowerConfig::default() }),
        ..FleetConfig::default()
    };
    Fleet::new(&cfg, &[modules::blink(0), modules::tree_routing(1)]).expect("fleet builds")
}

/// One workload round: Blink ticks everywhere; nodes that installed a
/// campaign image tick it too (the bad Surge then faults).
fn tick(run: &mut HelmRun, good: Option<u16>, bad: Option<u16>) {
    let fleet = run.fleet_mut();
    fleet.post_all(DomainId::num(0), MSG_TIMER);
    for i in 0..fleet.len() {
        let (g, b) = fleet.with_node(i, |n| {
            (good.is_some_and(|id| n.has_installed(id)), bad.is_some_and(|id| n.has_installed(id)))
        });
        if g {
            fleet.post(i, DomainId::num(GOOD_DOM), MSG_TIMER);
        }
        if b {
            fleet.post(i, DomainId::num(BAD_DOM), MSG_TIMER);
        }
    }
}

fn drive(run: &mut HelmRun, good: Option<u16>, bad: Option<u16>) -> RolloutState {
    for _ in 0..MAX_CAMPAIGN_ROUNDS {
        tick(run, good, bad);
        run.step_round();
        if let Some(h) = run.helm() {
            if h.state().terminal() {
                return h.state();
            }
        }
    }
    run.helm().map_or(RolloutState::Admitting, Helm::state)
}

struct Campaigns {
    run: HelmRun,
    good_id: u16,
    good_state: RolloutState,
    good_log: String,
    bad_id: u16,
    bad_state: RolloutState,
    /// Flash generations per node, snapshotted just before the bad
    /// campaign was admitted.
    pre_flash: Vec<u64>,
}

/// The canonical two-campaign scenario: warm up, promote a healthy Surge
/// through the 1 → 1 → 2 cohort ladder, then let a crash-looping Surge
/// get condemned by the controller.
fn campaigns(
    seed: u64,
    loss: f64,
    threads: usize,
    shards: u32,
    turbo: bool,
    prove: bool,
) -> Campaigns {
    let mut run = HelmRun::new(build(seed, loss, threads, shards, turbo, prove));
    for _ in 0..WARMUP {
        tick(&mut run, None, None);
        run.step_round();
    }
    let layout = run.fleet().layout();
    let prot = run.fleet().protection();

    let good = ModuleImage::assemble(&modules::surge_fixed(GOOD_DOM, 1), &layout, prot)
        .expect("good image assembles");
    let good_id = run.admit(&good, PlanConfig::ladder(COHORTS)).expect("good image admits");
    let good_state = drive(&mut run, Some(good_id), None);
    let good_log = run.helm().expect("campaign ran").log_json();

    let pre_flash: Vec<u64> = {
        let fleet = run.fleet_mut();
        (0..fleet.len()).map(|i| fleet.with_node(i, |n| n.sys.flash_generation())).collect()
    };
    let bad = ModuleImage::assemble(&modules::surge(BAD_DOM, 2), &layout, prot)
        .expect("bad image assembles");
    let bad_id = run.admit(&bad, PlanConfig::ladder(COHORTS)).expect("bad image admits");
    let bad_state = drive(&mut run, Some(good_id), Some(bad_id));

    Campaigns { run, good_id, good_state, good_log, bad_id, bad_state, pre_flash }
}

fn decision_logs(
    seed: u64,
    loss: f64,
    threads: usize,
    shards: u32,
    turbo: bool,
    prove: bool,
) -> String {
    let c = campaigns(seed, loss, threads, shards, turbo, prove);
    format!("{}\n{}", c.good_log, c.run.helm().expect("bad campaign ran").log_json())
}

/// The headline invariant: the controller's full decision history is
/// byte-identical no matter how many worker threads stepped the fleet or
/// how many shards aggregated the rollup it observed.
#[test]
fn decision_logs_are_schedule_and_shard_independent() {
    let reference = decision_logs(seed(), 0.1, 1, 4, false, false);
    assert!(reference.contains("\"decision\":\"roll-back\""), "bad campaign rolled back");
    assert_eq!(
        reference,
        decision_logs(seed(), 0.1, 4, 4, false, false),
        "parallel stepping diverged"
    );
    for shards in [1u32, 3, 7] {
        assert_eq!(
            reference,
            decision_logs(seed(), 0.1, 4, shards, false, false),
            "{shards} shards diverged"
        );
    }
}

/// The turbo fast-path engine and prove-mode store elision change how
/// nodes execute, not what they do: the controller sees the same rollups
/// and writes the same decision log.
#[test]
fn turbo_and_prove_reach_identical_decisions() {
    let reference = decision_logs(seed(), 0.1, 4, 4, false, false);
    assert_eq!(reference, decision_logs(seed(), 0.1, 4, 4, true, false), "turbo diverged");
    assert_eq!(reference, decision_logs(seed(), 0.1, 4, 4, false, true), "prove diverged");
}

/// A condemned image leaves no trace: every canary node is back on its
/// exact pre-rollout flash generation (checkpoint restore), no node still
/// reports the bad image, and no non-canary node was ever flashed — the
/// rollout gate kept the blast radius to the canary cohort.
#[test]
fn rollback_restores_pre_rollout_flash_state() {
    let mut c = campaigns(seed(), 0.1, 4, 4, false, false);
    assert_eq!(c.good_state, RolloutState::Done, "good campaign promoted");
    assert_eq!(c.bad_state, RolloutState::RolledBack, "bad campaign condemned");
    assert_eq!(c.run.fleet().known_good(), Some(c.good_id), "known-good preserved");

    let bad_id = c.bad_id;
    let fleet = c.run.fleet_mut();
    let canary_cohort = 0u32;
    let mut restores = 0u64;
    for i in 0..fleet.len() {
        let (generation, installed, cohort, restored) = fleet.with_node(i, |n| {
            (
                n.sys.flash_generation(),
                n.has_installed(bad_id),
                n.cohort,
                n.telemetry.metrics.counter("helm.rollbacks"),
            )
        });
        assert_eq!(generation, c.pre_flash[i], "node {i} flash generation restored");
        assert!(!installed, "node {i} still has the bad image");
        if cohort == canary_cohort {
            restores += restored;
        } else {
            assert_eq!(restored, 0, "non-canary node {i} restored a checkpoint");
        }
    }
    assert!(restores > 0, "at least one canary flashed and restored");

    let verdict = c.run.helm().and_then(Helm::verdict).cloned().expect("verdict recorded");
    assert_eq!(verdict.outcome, "rolled-back");
    let evidence = verdict.evidence.as_ref().expect("rollback carries evidence");
    assert_eq!(evidence.cohort, canary_cohort, "the canary cohort regressed");
    let rollup = c.run.fleet_mut().tower_rollup().expect("tower attached");
    for id in &evidence.dumps {
        assert!(rollup.find_dump(id).is_some(), "evidence dump {id} resolves");
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        .. ProptestConfig::default()
    })]

    /// Decision determinism as a property: for any seed, loss rate,
    /// worker count and shard count, the campaign decision logs equal the
    /// serial single-shard run's, byte for byte. `salt` folds in
    /// `HARBOR_SEED` so the campaign moves with the repo-wide seed while
    /// staying reproducible.
    #[test]
    fn decision_logs_are_partition_independent(
        salt in 0u64..1_000_000,
        loss_pct in 0u32..30,
        threads in 2usize..6,
        shards in 2u32..9,
    ) {
        let s = seed() ^ salt;
        let loss = f64::from(loss_pct) / 100.0;
        let reference = decision_logs(s, loss, 1, 1, false, false);
        prop_assert_eq!(&reference, &decision_logs(s, loss, threads, shards, false, false));
    }
}
