//! Randomized differential campaigns for the turbo engine, reproducible
//! from a single seed: `HARBOR_SEED=n cargo test --test turbo_lockstep_random`
//! replays any run. Three layers:
//!
//! 1. raw-flash fuzzing — machines filled with random opcode words, stepped
//!    in instruction-by-instruction lockstep (registers, SRAM, cycles and
//!    fault verdicts must agree at every step, including illegal encodings);
//! 2. seeded wild-write fault injection on full mini-SOS systems — the
//!    turbo run must reach the same verdict in the same number of cycles;
//! 3. a proptest harness mixing module-shape variants with random fault
//!    targets, shrinkable on failure.

use avr_core::exec::{Cpu, Step};
use avr_core::isa::Reg;
use avr_core::mem::PlainEnv;
use harbor::DomainId;
use harbor_turbo::TurboEngine;
use mini_sos::kernel::MSG_TIMER;
use mini_sos::{ModuleSource, Protection, SosSystem};
use proptest::prelude::*;
use rand::{Rng, SeedableRng, StdRng};

const DOM: u8 = 2;

/// Explicit campaign seed: `HARBOR_SEED` if set, a fixed default otherwise.
fn seed() -> u64 {
    match std::env::var("HARBOR_SEED") {
        Ok(v) => v.parse().expect("HARBOR_SEED must be a u64"),
        Err(_) => 0x5eed,
    }
}

fn assert_same_state(a: &Cpu<PlainEnv>, b: &Cpu<PlainEnv>, what: &str) {
    assert_eq!(a.pc, b.pc, "{what}: pc");
    assert_eq!(a.sp, b.sp, "{what}: sp");
    assert_eq!(a.sreg, b.sreg, "{what}: sreg");
    assert_eq!(a.regs, b.regs, "{what}: register file");
    assert_eq!(a.cycles(), b.cycles(), "{what}: cycles");
    assert_eq!(a.instructions(), b.instructions(), "{what}: instructions");
    assert_eq!(a.env.data.sram(), b.env.data.sram(), "{what}: sram");
}

/// Layer 1: machines whose flash is random words — every decodable and
/// reserved encoding the generator stumbles into must behave identically,
/// step by step, through the cached and fallback paths alike.
#[test]
fn random_flash_images_run_in_lockstep() {
    let campaign = seed();
    for image in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(campaign ^ (image << 32));
        let mut env = PlainEnv::new();
        for w in 0..512u32 {
            env.flash.set_word(w, rng.gen::<u16>());
        }
        let env_b = env.clone();
        let mut reference = Cpu::new(env);
        let mut turbo_cpu = Cpu::new(env_b);
        let mut turbo = TurboEngine::new();
        for n in 0..3_000 {
            let r = reference.step();
            let t = turbo.step(&mut turbo_cpu, 0);
            assert_eq!(r, t, "seed {campaign} image {image} step {n}: outcome diverged");
            assert_same_state(
                &reference,
                &turbo_cpu,
                &format!("seed {campaign} image {image} step {n}"),
            );
            if !matches!(r, Ok(Step::Continue)) {
                break;
            }
        }
    }
}

/// Builds a module whose timer handler does `variant`-shaped busywork and
/// then stores 0xEE at `target` — the fault-injection wild writer crossed
/// with the flow suite's module-shape battery.
fn variant_writer(variant: u8, target: u16) -> ModuleSource {
    ModuleSource {
        name: "variant_writer",
        domain: DomainId::num(DOM),
        entries: vec!["vw_handler"],
        build: Box::new(move |a, ctx| {
            let done = a.label("vw_done");
            a.here("vw_handler");
            a.cpi(Reg::R24, MSG_TIMER);
            a.brne(done);
            match variant % 4 {
                0 => {}
                1 => {
                    // A counting loop (branch taken and not taken).
                    let l = a.label("vw_loop");
                    a.ldi(Reg::R16, 5);
                    a.bind(l);
                    a.dec(Reg::R16);
                    a.brne(l);
                }
                2 => {
                    // A store into the module's own state first (benign).
                    a.ldi(Reg::R16, 1);
                    a.sts(ctx.state_addr, Reg::R16);
                }
                _ => {
                    // Skips over one- and two-word instructions.
                    a.ldi(Reg::R16, 1);
                    a.sbrs(Reg::R16, 0);
                    a.sts(ctx.state_addr, Reg::R16);
                    a.sbrc(Reg::R16, 1);
                    a.inc(Reg::R16);
                }
            }
            a.ldi(Reg::R17, 0xee);
            a.sts(target, Reg::R17);
            a.bind(done);
            a.ret();
        }),
    }
}

/// Runs a variant writer to completion; returns (outcome, cycles,
/// instructions, byte at target). The outcome is the full result rendered
/// to a string, so *any* ending — clean break, protection fault, or a
/// wild-jump crash into erased flash — must match exactly.
fn run_one(p: Protection, variant: u8, target: u16, turbo: bool) -> (String, u64, u64, u8) {
    let mut sys = SosSystem::build(p, &[variant_writer(variant, target)], |a, api| {
        api.run_scheduler(a);
        a.brk();
    })
    .expect("builds");
    sys.set_turbo(turbo);
    sys.boot().expect("boot");
    sys.post(DomainId::num(DOM), MSG_TIMER);
    let verdict = format!("{:?}", sys.run_to_break(10_000_000));
    (verdict, sys.cycles(), sys.instructions(), sys.sram(target))
}

/// Layer 2: the seeded wild-write campaign across all three protection
/// builds — turbo and reference must agree on the verdict, the exact cycle
/// count, and whether the poison byte landed.
#[test]
fn seeded_fault_injection_is_identical_under_turbo() {
    let campaign = seed();
    let mut rng = StdRng::seed_from_u64(campaign ^ 0x7475_7262); // "turb"
    for p in [Protection::None, Protection::Umpu, Protection::Sfi] {
        for round in 0..8 {
            let variant = rng.gen_range(0u8..4);
            let target = rng.gen_range(0x0062u16..0x0fff);
            let reference = run_one(p, variant, target, false);
            let turbo = run_one(p, variant, target, true);
            assert_eq!(
                reference, turbo,
                "seed {campaign} {p:?} round {round}: variant {variant} target {target:#06x}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Layer 3: shrinkable equivalence over the full (variant × target ×
    /// protection) space. `salt` folds in `HARBOR_SEED` so the campaign
    /// moves with the repo-wide seed while staying reproducible.
    #[test]
    fn turbo_matches_reference_on_random_modules(
        variant in 0u8..4,
        target in 0x0062u16..0x0fff,
        prot in 0u8..3,
        salt in any::<u64>(),
    ) {
        let p = [Protection::None, Protection::Umpu, Protection::Sfi][prot as usize];
        let target = (target ^ (seed() as u16 & 0x03ff) ^ (salt as u16 & 0x01ff)).clamp(0x0062, 0x0ffe);
        let reference = run_one(p, variant, target, false);
        let turbo = run_one(p, variant, target, true);
        prop_assert_eq!(reference, turbo, "{:?} variant {} target {:#06x}", p, variant, target);
    }
}
