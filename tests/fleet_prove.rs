//! Fleet-level elision identity: a fleet stepped with `harbor-prove`
//! store-check elision must produce byte-identical telemetry to the
//! reference run — across serial and parallel schedules, stacked with the
//! turbo fast path, through OTA dissemination, and through a full
//! fault-injection campaign. The SFI build's *cycle-changing* elision
//! (`LoadPolicy::with_elision`) is checked at the system level in
//! `crates/sos/tests/prove_soundness.rs`; here the `prove` flag must be a
//! strict no-op for the SFI protection build.

use harbor::DomainId;
use harbor_fleet::{run_campaign, CampaignConfig, Fleet, FleetConfig, ModuleImage, NetConfig};
use mini_sos::kernel::MSG_TIMER;
use mini_sos::{modules, Protection};

const TREE_DOM: u8 = 3;

/// Test seed, overridable for reproduction: `HARBOR_SEED=n cargo test`.
fn seed() -> u64 {
    match std::env::var("HARBOR_SEED") {
        Ok(v) => v.parse().expect("HARBOR_SEED must be a u64"),
        Err(_) => 0x5eed,
    }
}

/// Boots a 12-node UMPU fleet, disseminates Tree Routing through a lossy
/// radio while Blink ticks, and returns the comparable telemetry JSON.
fn dissemination_run(threads: usize, prove: bool, turbo: bool) -> String {
    let cfg = FleetConfig {
        nodes: 12,
        protection: Protection::Umpu,
        seed: seed(),
        net: NetConfig { loss: 0.3, latency_min: 1, latency_max: 3 },
        threads,
        prove,
        turbo,
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::new(&cfg, &[modules::blink(0)]).expect("fleet builds");
    let image =
        ModuleImage::assemble(&modules::tree_routing(TREE_DOM), &fleet.layout(), cfg.protection)
            .expect("image assembles");
    fleet.disseminate(&image);
    for _ in 0..30 {
        fleet.post_all(DomainId::num(0), MSG_TIMER);
        fleet.step_round();
    }
    fleet.telemetry().comparable_json()
}

/// The headline elision invariant: prove × {serial, parallel, turbo}
/// telemetry is byte-identical to the reference run — same cycles, same
/// radio traffic, same installs, same everything the JSON carries. The
/// dissemination in the middle exercises the invalidation path: every
/// install re-derives the certificates and republishes the elision map.
#[test]
fn prove_fleet_telemetry_is_byte_identical_to_reference() {
    let reference = dissemination_run(1, false, false);
    assert_eq!(reference, dissemination_run(1, true, false), "prove serial diverged");
    assert_eq!(reference, dissemination_run(4, true, false), "prove parallel diverged");
    assert_eq!(reference, dissemination_run(4, true, true), "prove + turbo diverged");
}

/// A full randomized fault campaign (rogue wild-writer injected into
/// victims, watchdogs and flight recorders armed) reports identically with
/// elision on: same faults raised, same containment, same postmortem dumps.
/// The rogue's own store targets *another* domain's state, so it is never
/// certified — elision must not weaken the trap.
#[test]
fn prove_fault_campaign_reports_identically() {
    let campaign = |prove: bool| CampaignConfig {
        fleet: FleetConfig { nodes: 10, seed: seed(), threads: 4, prove, ..FleetConfig::default() },
        victims: 4,
        warmup_rounds: 6,
        after_rounds: 6,
    };
    for protection in [Protection::Umpu, Protection::Sfi] {
        let reference = run_campaign(protection, &campaign(false));
        let prove = run_campaign(protection, &campaign(true));
        assert_eq!(
            reference.to_json(),
            prove.to_json(),
            "{protection:?}: campaign reports diverged under prove"
        );
        assert!(reference.faults_raised > 0, "{protection:?}: campaign exercised faults");
    }
}
