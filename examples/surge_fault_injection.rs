//! The paper's war story, end to end (Section 1.2):
//!
//! > "In the Surge data collection module, under certain conditions, the
//! > invalid result of a failed function call to the Tree routing module
//! > was being used to determine an offset into a buffer."
//!
//! ```sh
//! cargo run --example surge_fault_injection
//! ```
//!
//! Loads Surge *without* Tree Routing (the rare load order that triggers
//! the bug) and runs one sampling tick under all three builds. On a stock
//! AVR the sample lands 255 bytes out of bounds, silently; under UMPU and
//! SFI the store is blocked and reported.

use avr_core::Fault;
use harbor::DomainId;
use mini_sos::kernel::MSG_TIMER;
use mini_sos::{modules, Protection, SosSystem};

fn run_one(p: Protection) {
    println!("\n─── {p:?} ───");
    let mut sys = SosSystem::build(p, &[modules::surge(1, 3)], |a, api| {
        api.run_scheduler(a);
        a.brk();
    })
    .expect("system builds");
    sys.boot().expect("boot");
    sys.post(DomainId::num(1), MSG_TIMER); // one sampling tick
    match sys.run_to_break(10_000_000) {
        Ok(_) => {
            let state = sys.layout.state_addr(1);
            let buf = sys.sram16(state);
            let wild = buf + 0xff;
            println!("  run completed — no error reported.");
            println!(
                "  but buffer is {buf:#06x}..{:#06x} and byte {wild:#06x} = {} —",
                buf + 16,
                sys.sram(wild)
            );
            println!("  SILENT corruption 255 bytes past the buffer.");
        }
        Err(Fault::Env(e)) => {
            match sys.last_protection_fault() {
                Some(f) => println!("  protection fault: {f}"),
                None => println!(
                    "  protection fault code {} at {:#06x} (reported via the panic port)",
                    e.code, e.addr
                ),
            }
            let state = sys.layout.state_addr(1);
            let buf = sys.sram16(state);
            println!(
                "  the wild byte at {:#06x} is still {} — corruption prevented.",
                buf + 0xff,
                sys.sram(buf + 0xff)
            );
        }
        Err(other) => println!("  unexpected failure: {other}"),
    }
}

fn main() {
    println!("Surge loaded before Tree Routing: the cross-domain call fails,");
    println!("returns the 0xff error code, and Surge uses it as a buffer offset.");
    for p in [Protection::None, Protection::Umpu, Protection::Sfi] {
        run_one(p);
    }
    println!("\nWith Tree Routing loaded (or the bounds check added — see");
    println!("modules::surge_fixed), every build runs the workload cleanly.");
}
