//! The assembler toolchain end to end: write AVR source as *text*,
//! assemble it, disassemble the result, export it as Intel HEX (the format
//! real AVR flashing tools speak), re-import it, and run it cycle-accurately.
//!
//! ```sh
//! cargo run --example assembler_playground
//! ```

use avr_asm::{ihex, listing, text};
use avr_core::exec::Cpu;
use avr_core::isa::Reg;
use avr_core::mem::PlainEnv;

const SRC: &str = r"
    ; 8-bit multiply by repeated addition: r18 = r16 * r17
    .equ RESULT = 0x0100
    start:
        ldi  r16, 7
        ldi  r17, 6
        clr  r18
    loop:
        tst  r17
        breq done
        add  r18, r16
        dec  r17
        rjmp loop
    done:
        sts  RESULT, r18
        break
";

fn main() {
    // Text → object.
    let obj = text::assemble_str(SRC, 0x0000).expect("assembles");
    println!(
        "assembled {} words; `loop` at {:#06x}\n",
        obj.words().len(),
        obj.symbol("loop").unwrap()
    );

    // Object → disassembly listing.
    println!("disassembly:\n{}", listing(obj.origin(), obj.words()));

    // Object → Intel HEX → flash (the path a real flasher takes).
    let hex = obj.to_ihex();
    println!("Intel HEX image:\n{hex}");
    let mut env = PlainEnv::new();
    ihex::load_into_flash(&hex, &mut env.flash).expect("valid hex");

    // Run it.
    let mut cpu = Cpu::new(env);
    cpu.run_to_break(10_000).expect("runs");
    println!(
        "7 × 6 = {} in {} cycles ({} instructions)",
        cpu.env.sram_byte(0x0100),
        cpu.cycles(),
        cpu.instructions()
    );
    assert_eq!(cpu.env.sram_byte(0x0100), 42);
    assert_eq!(cpu.reg(Reg::R18), 42);
}
