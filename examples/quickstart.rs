//! Quickstart: the Harbor protection primitives as a host-level library.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Walks through the paper's core mechanisms with the golden-model crate:
//! a memory map with per-block ownership, the write-permission rule, and
//! cross-domain call tracking with stack bounds — no simulator involved.

use harbor::{
    DomainId, DomainTracker, JumpTableLayout, MemMapConfig, MemoryLayout, MemoryMap,
    ProtectionModel, SafeStack,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4 KiB mote address space: protect 0x0200..0x0e00 with 8-byte blocks.
    let cfg = MemMapConfig::multi_domain(0x0200, 0x0e00)?;
    println!(
        "memory map: {} blocks of {}, table costs {} bytes of RAM",
        cfg.num_blocks(),
        cfg.block_size(),
        cfg.map_size_bytes()
    );

    let mut map = MemoryMap::new(cfg);
    let surge = DomainId::new(1)?;
    let tree = DomainId::new(3)?;

    // The kernel allocates a 64-byte segment to Surge and 32 to Tree.
    map.set_segment(surge, 0x0200, 64)?;
    map.set_segment(tree, 0x0240, 32)?;
    println!("0x0210 is owned by {}", map.owner_of(0x0210)?);
    println!("0x0250 is owned by {}", map.owner_of(0x0250)?);

    // The memory-map checker's rule: only the owner (or the kernel) writes.
    assert!(map.check_write(surge, 0x0210).is_ok());
    let denied = map.check_write(surge, 0x0250).unwrap_err();
    println!("surge writing tree's block: {denied}");

    // Ownership transfer and free are owner-only operations.
    let denied = map.free_segment(surge, 0x0240).unwrap_err();
    println!("surge freeing tree's segment: {denied}");
    map.change_own(tree, 0x0240, surge)?;
    println!("after change_own, 0x0250 is owned by {}", map.owner_of(0x0250)?);

    // The full store rule also covers the shared run-time stack, via stack
    // bounds latched on every cross-domain call.
    let jt = JumpTableLayout::new(0x0800, 8);
    let tracker = DomainTracker::new(jt, SafeStack::new(0x0d00, 256), 0x0fff);
    let layout = MemoryLayout {
        sram_base: 0x0060,
        prot_bottom: 0x0200,
        prot_top: 0x0e00,
        stack_top: 0x0fff,
    };
    let mut model = ProtectionModel::new(map, tracker, layout);

    // The kernel (trusted) calls Surge's jump-table entry with SP=0x0f80.
    model.tracker_mut().on_call(jt.entry_addr(surge, 0), 0x0042, 0x0f80)?;
    println!(
        "after the cross-domain call: active domain = {}, stack bound = {:#06x}",
        model.tracker().current_domain(),
        model.tracker().stack_bound()
    );
    assert!(model.check_store(0x0f40).is_ok(), "own frames are writable");
    let denied = model.check_store(0x0fa0).unwrap_err();
    println!("surge writing the caller's stack frame: {denied}");

    // Returning restores the caller's context from the safe-stack frame.
    let ret = model.tracker_mut().on_ret()?;
    println!(
        "returned to {:#06x}; active domain = {} again",
        ret.target,
        model.tracker().current_domain()
    );
    Ok(())
}
