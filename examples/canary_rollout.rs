//! The closed OTA loop, end to end: a 64-node cohorted fleet promotes a
//! healthy Surge image through a staged canary ladder (1 cohort → 1 → 2 →
//! 4), then a crash-looping Surge build is rolled out the same way — the
//! canary cohort regresses within a few rounds, harbor-helm condemns the
//! image with typed evidence (cohort, health score, postmortem dump ids),
//! quarantines it fleet-wide, and every canary node restores its
//! pre-rollout checkpoint. Nobody outside the canary cohort ever flashes
//! the bad build.
//!
//! ```sh
//! cargo run --release --example canary_rollout
//! ```
//!
//! Writes Perfetto timelines of both campaigns under `target/helm/`
//! (open in ui.perfetto.dev).

use harbor::DomainId;
use harbor_fleet::{BlackboxConfig, Fleet, FleetConfig, ModuleImage, NetConfig, TowerConfig};
use harbor_helm::{chrome_trace, query, HelmRun, PlanConfig, RolloutState};
use mini_sos::kernel::MSG_TIMER;
use mini_sos::{modules, Protection};

const NODES: usize = 64;
const COHORTS: u32 = 8;
const GOOD_DOM: u8 = 3;
const BAD_DOM: u8 = 4;

/// One workload round: Blink ticks everywhere, and any node that has
/// installed a rollout image ticks it too — so the healthy build just
/// runs and the broken one crash-loops.
fn tick(run: &mut HelmRun, good: Option<u16>, bad: Option<u16>) {
    let fleet = run.fleet_mut();
    fleet.post_all(DomainId::num(0), MSG_TIMER);
    for i in 0..fleet.len() {
        let (g, b) = fleet.with_node(i, |n| {
            (good.is_some_and(|id| n.has_installed(id)), bad.is_some_and(|id| n.has_installed(id)))
        });
        if g {
            fleet.post(i, DomainId::num(GOOD_DOM), MSG_TIMER);
        }
        if b {
            fleet.post(i, DomainId::num(BAD_DOM), MSG_TIMER);
        }
    }
}

fn drive(run: &mut HelmRun, good: Option<u16>, bad: Option<u16>) -> RolloutState {
    loop {
        tick(run, good, bad);
        run.step_round();
        let state = run.helm().expect("campaign admitted").state();
        if state.terminal() {
            return state;
        }
        assert!(run.fleet().round() < 400, "campaign did not converge");
    }
}

fn main() {
    let cfg = FleetConfig {
        nodes: NODES,
        protection: Protection::Umpu,
        seed: 0x70_3e_12,
        net: NetConfig { loss: 0.1, ..NetConfig::default() },
        threads: 4,
        blackbox: Some(BlackboxConfig::default()),
        cohorts: COHORTS,
        tower: Some(TowerConfig::default()),
        ..FleetConfig::default()
    };
    let fleet =
        Fleet::new(&cfg, &[modules::blink(0), modules::tree_routing(1)]).expect("fleet builds");
    let mut run = HelmRun::new(fleet);

    // Warm up so the tower baseline includes the boot installs.
    for _ in 0..4 {
        tick(&mut run, None, None);
        run.step_round();
    }
    let layout = run.fleet().layout();

    // ── Campaign 1: the fixed Surge build climbs the full ladder. ──
    let good_image =
        ModuleImage::assemble(&modules::surge_fixed(GOOD_DOM, 1), &layout, Protection::Umpu)
            .expect("image assembles");
    let good_id = run.admit(&good_image, PlanConfig::ladder(COHORTS)).expect("admits");
    println!("─── campaign 1: surge_fixed (image {good_id}) ───");
    let state = drive(&mut run, Some(good_id), None);
    assert_eq!(state, RolloutState::Done, "healthy image promotes");
    {
        let helm = run.helm().unwrap();
        print!("{}", query::decision_table(helm));
        print!("{}", query::status(helm));
        std::fs::create_dir_all("target/helm").expect("mkdir");
        std::fs::write("target/helm/canary_good.json", chrome_trace(helm)).expect("write");
    }

    // ── Campaign 2: the crash-looping build meets the canary gate. ──
    let pre_flash: Vec<u64> = {
        let fleet = run.fleet_mut();
        (0..fleet.len()).map(|i| fleet.with_node(i, |n| n.sys.flash_generation())).collect()
    };
    let bad_image = ModuleImage::assemble(&modules::surge(BAD_DOM, 2), &layout, Protection::Umpu)
        .expect("image assembles");
    let bad_id = run.admit(&bad_image, PlanConfig::ladder(COHORTS)).expect("admits");
    println!("\n─── campaign 2: surge, pointed at an empty domain (image {bad_id}) ───");
    let state = drive(&mut run, Some(good_id), Some(bad_id));
    assert_eq!(state, RolloutState::RolledBack, "broken image is condemned");
    {
        let helm = run.helm().unwrap();
        print!("{}", query::decision_table(helm));
        print!("{}", query::status(helm));
        std::fs::write("target/helm/canary_bad.json", chrome_trace(helm)).expect("write");
    }

    // The rollback left no trace: every node is back on its pre-rollout
    // flash generation and the bad image is quarantined everywhere.
    let fleet = run.fleet_mut();
    let mut flashed_outside_canary = 0usize;
    for (i, &expected) in pre_flash.iter().enumerate() {
        let (generation, installed) =
            fleet.with_node(i, |n| (n.sys.flash_generation(), n.has_installed(bad_id)));
        assert_eq!(generation, expected, "node {i} restored");
        if installed {
            flashed_outside_canary += 1;
        }
    }
    assert_eq!(flashed_outside_canary, 0, "bad image gone everywhere");
    println!(
        "\nall {NODES} nodes back on their pre-rollout flash generation; \
         known-good is image {:?}; Perfetto timelines under target/helm/",
        fleet.known_good().expect("known-good preserved")
    );
}
