//! The full deployment story, live: Surge ships without Tree Routing, the
//! protection catches the wild write, the stable kernel recovers, the
//! missing module is hot-loaded over the air, and sampling resumes — plus
//! an unload that reclaims every byte the module owned.
//!
//! ```sh
//! cargo run --example hot_loading
//! ```

use harbor::DomainId;
use mini_sos::kernel::MSG_TIMER;
use mini_sos::{modules, Protection, SosSystem};

fn drain(sys: &mut SosSystem) -> Result<(), avr_core::Fault> {
    sys.steer(sys.symbol("ker_boot_done") + 1);
    sys.run_to_break(10_000_000).map(|_| ())
}

fn main() {
    let mut sys = SosSystem::build(Protection::Umpu, &[modules::surge(1, 3)], |a, api| {
        api.run_scheduler(a);
        a.brk();
    })
    .expect("builds");
    sys.boot().expect("boot");
    sys.run_to_break(10_000_000).expect("init");
    println!("deployed: Surge in dom1; Tree Routing NOT loaded (the rare load order).");

    sys.post(DomainId::num(1), MSG_TIMER);
    match drain(&mut sys) {
        Err(_) => {
            let f = sys.last_protection_fault().expect("rich fault record");
            println!("tick 1 → {f}");
        }
        Ok(_) => unreachable!("the bug must fire"),
    }

    sys.recover_from_fault();
    println!("kernel exception handler: clean trusted context restored.");

    sys.load_module(&modules::tree_routing(3)).expect("hot-load");
    println!("hot-loaded Tree Routing into dom3 (jump table relinked).");

    sys.post(DomainId::num(1), MSG_TIMER);
    drain(&mut sys).expect("sampling works now");
    let buf = sys.sram16(sys.layout.state_addr(1));
    println!("tick 2 → sample {} stored at buffer[2] — the network is healthy.", sys.sram(buf + 2));

    // And the reverse: unloading reclaims everything the module owned.
    sys.unload_module(DomainId::num(3));
    println!("unloaded Tree Routing; its jump-table entries now return 0xff,");
    sys.post(DomainId::num(1), MSG_TIMER);
    match drain(&mut sys) {
        Err(_) => println!(
            "and the very next tick is caught again: {}",
            sys.last_protection_fault().unwrap()
        ),
        Ok(_) => unreachable!(),
    }
}
