//! Instruction-level trace of a cross-domain call under UMPU — watch the
//! domain switch, the 5-cycle frame push and the safe-stack bookkeeping
//! happen instruction by instruction.
//!
//! ```sh
//! cargo run --example trace_cross_domain
//! ```

use avr_asm::Asm;
use avr_core::exec::Cpu;
use avr_core::isa::Reg;
use harbor::DomainId;
use umpu::{UmpuConfig, UmpuEnv};

fn main() {
    let cfg = UmpuConfig::default_layout();
    let mut env = UmpuEnv::new();
    env.configure(&cfg);

    // Module in domain 3 at word 0x0d00: load a value, return.
    let mut m = Asm::new();
    m.ldi(Reg::R24, 0x2a);
    m.ret();
    let module = m.assemble(0x0d00).unwrap();
    module.load_into(&mut env.flash);
    env.set_code_region(DomainId::num(3), 0x0d00, module.end() as u16);

    // Jump-table entry 0 of domain 3.
    let jt_entry = cfg.jt_base as u32 + 3 * 128;
    let mut jt = Asm::new();
    let t = jt.constant("module", 0x0d00);
    jt.rjmp(t);
    jt.assemble(jt_entry).unwrap().load_into(&mut env.flash);

    // Kernel: call the entry, then break.
    let mut k = Asm::new();
    let e = k.constant("entry", jt_entry);
    k.call(e);
    k.brk();
    k.assemble(0).unwrap().load_into(&mut env.flash);

    let mut cpu = Cpu::new(env);
    let mut trace = Vec::new();
    let mut last_cycles = 0u64;
    println!(
        "{:<8} {:>6} {:>7}  {:<18} {:>9}  safe stack",
        "pc", "cycles", "Δcycles", "instruction", "domain"
    );
    loop {
        let (step, entry) = cpu.step_traced().expect("runs");
        trace.push(entry);
        let region = match entry.pc {
            p if p < 0x0200 => "kernel",
            p if (cfg.jt_base as u32..cfg.jt_base as u32 + 1024).contains(&p) => "jump tbl",
            _ => "module",
        };
        println!(
            "{:#06x}   {:>6} {:>7}  {:<18} {:>5} {:>3}  {} bytes",
            entry.pc,
            entry.cycles_after,
            entry.cycles_after - last_cycles,
            entry.instr.to_string(),
            region,
            cpu.env.tracker.current.to_string(),
            cpu.env.safe_stack.used_bytes(),
        );
        last_cycles = entry.cycles_after;
        if step != avr_core::exec::Step::Continue {
            break;
        }
    }
    println!("\nr24 = {:#04x} returned across the domain boundary.", cpu.reg(Reg::R24));
    println!("Note the call costing 4+5 cycles (frame push) and the ret 4+5 (frame pop),");
    println!("with the domain column flipping trusted → dom3 → trusted.");
}
