//! Interrupt-driven sampling: a hardware timer preempts whatever is
//! running, the kernel ISR posts a message, and the scheduler dispatches it
//! to the Blink module — under all three protection builds.
//!
//! Under UMPU the interrupt entry is itself a protected domain switch: if
//! the timer preempts a user module, a cross-domain frame is pushed and the
//! handler runs trusted; `RETI` restores the interrupted domain and its
//! stack bound to the cycle.
//!
//! ```sh
//! cargo run --example interrupt_timer
//! ```

use avr_core::isa::Reg;
use harbor::DomainId;
use mini_sos::{modules, Protection, SosSystem};

fn main() {
    for p in [Protection::None, Protection::Umpu, Protection::Sfi] {
        // Tickless idle: the driver SLEEPs between timer interrupts — the
        // duty-cycled main loop of a real sensor node.
        let mut sys = SosSystem::build(p, &[modules::blink(0)], |a, api| {
            let state = api.layout.state_addr(0);
            let idle = a.label("idle");
            a.sei();
            a.bind(idle);
            a.sleep(); // wake on the next timer interrupt
            api.run_scheduler(a);
            a.lds(Reg::R16, state);
            a.cpi(Reg::R16, 10);
            a.brlo(idle);
            a.cli();
            a.brk();
        })
        .expect("system builds");
        sys.boot().expect("boot");
        sys.enable_timer(4000, DomainId::num(0));
        let start = sys.cycles();
        sys.run_to_break(50_000_000).expect("workload runs");
        let took = sys.cycles() - start;
        let idle = sys.idle_cycles();
        println!(
            "{p:?}: 10 timer wakes → 10 blink ticks in {took} cycles, \
             {idle} idle ({:.1} % duty cycle)",
            (took - idle) as f64 / took as f64 * 100.0
        );
    }
    println!("\nThe ISR posts to the message queue; the scheduler cross-domain-calls");
    println!("the module handler. Preemption of user domains is itself protected,");
    println!("and SLEEP idles the core between ticks — the protection overhead is");
    println!("visible as the duty-cycle delta between builds.");
}
