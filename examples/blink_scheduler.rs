//! Boot mini-SOS with the Blink module and drive it through the message
//! scheduler — the "hello world" of the reproduced operating system.
//!
//! ```sh
//! cargo run --example blink_scheduler
//! ```

use harbor::DomainId;
use mini_sos::kernel::MSG_TIMER;
use mini_sos::{modules, Protection, SosSystem};

fn main() {
    for p in [Protection::None, Protection::Umpu, Protection::Sfi] {
        let mut sys = SosSystem::build(p, &[modules::blink(0)], |a, api| {
            api.run_scheduler(a);
            a.brk();
        })
        .expect("system builds");
        sys.boot().expect("boot");
        let boot_cycles = sys.cycles();

        // Ten timer ticks.
        for _ in 0..10 {
            sys.post(DomainId::num(0), MSG_TIMER);
        }
        sys.run_to_break(10_000_000).expect("workload runs");

        let count = sys.sram(sys.layout.state_addr(0));
        println!(
            "{p:?}: booted in {boot_cycles} cycles, 10 ticks in {} cycles, blink counter = {count}",
            sys.cycles() - boot_cycles
        );
        assert_eq!(count, 10);
    }
    println!("\nSame module binary semantics under all three protection builds.");
}
