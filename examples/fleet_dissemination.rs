//! The paper's war story at fleet scale: Tree Routing is disseminated over
//! a 20 % lossy radio to a 64-node fleet that already runs the buggy Surge
//! module, and 8 unlucky nodes take a sampling tick *before* Tree Routing
//! arrives — the rare load order that corrupted the real deployment.
//!
//! Under `Protection::None` those 8 nodes silently write 255 bytes past
//! their sample buffer and keep going; under UMPU and SFI the wild store is
//! trapped, the kernel restores a clean trusted context, and once the
//! module arrives the same nodes sample correctly.
//!
//! ```sh
//! cargo run --release --example fleet_dissemination [-- --seed N]
//! ```

use harbor::DomainId;
use harbor_fleet::{Fleet, FleetConfig, ModuleImage, NetConfig};
use mini_sos::kernel::MSG_TIMER;
use mini_sos::{modules, Protection};

const NODES: usize = 64;
const VICTIMS: usize = 8;
const SURGE_DOM: u8 = 1;
const TREE_DOM: u8 = 3;

fn run_one(protection: Protection, seed: u64) {
    println!("\n─── {protection:?} ───");
    let cfg = FleetConfig {
        nodes: NODES,
        protection,
        seed,
        net: NetConfig { loss: 0.2, ..NetConfig::default() },
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::new(&cfg, &[modules::surge(SURGE_DOM, TREE_DOM)]).expect("fleet builds");
    let layout = fleet.layout();
    let image = ModuleImage::assemble(&modules::tree_routing(TREE_DOM), &layout, protection)
        .expect("image assembles");
    fleet.disseminate(&image);

    // One round so every Surge instance runs its init (mallocs the sample
    // buffer) — the image is still chunks in the air at this point.
    fleet.step_round();

    // The unlucky ticks: 8 nodes sample before Tree Routing has arrived,
    // so the cross-domain call yields the 0xff error stub return and Surge
    // uses it as a buffer offset.
    for v in 0..VICTIMS {
        fleet.post(v, DomainId::num(SURGE_DOM), MSG_TIMER);
    }
    fleet.step_round();

    let round = fleet.run_until_converged(400).expect("dissemination converges under 20% loss");
    println!("  dissemination converged on all {NODES} nodes by round {round}");

    // After convergence every node can sample correctly.
    fleet.post_all(DomainId::num(SURGE_DOM), MSG_TIMER);
    fleet.step_round();

    let surge_state = layout.state_addr(SURGE_DOM);
    let mut corrupted = 0;
    let mut clean_samples = 0;
    for v in 0..NODES {
        let (wild, counter) = fleet.with_node(v, |node| {
            let buf = node.sys.sram16(surge_state);
            (node.sys.sram(buf.wrapping_add(0xff)), node.sys.sram(surge_state + 2))
        });
        if wild != 0 {
            corrupted += 1;
        }
        if counter > 0 {
            clean_samples += 1;
        }
    }
    let t = fleet.telemetry();
    let faults = t.total(harbor_fleet::NodeTelemetry::faults);
    let contained = t.total(harbor_fleet::NodeTelemetry::contained);
    let recoveries = t.total(harbor_fleet::NodeTelemetry::recoveries);
    println!("  faults raised: {faults}  contained: {contained}  recoveries: {recoveries}");
    println!("  nodes with a wild byte 255 past the buffer: {corrupted}/{NODES}");
    println!("  nodes sampling correctly after convergence: {clean_samples}/{NODES}");
    match protection {
        Protection::None => {
            assert_eq!(corrupted, VICTIMS, "every early tick corrupts silently");
            println!("  → {VICTIMS} nodes SILENTLY corrupted; nothing was reported.");
        }
        _ => {
            assert_eq!(corrupted, 0, "protection contains every early tick");
            assert!(contained >= VICTIMS as u64);
            println!("  → every early tick trapped and recovered; fleet state intact.");
        }
    }
}

fn seed_from_args() -> u64 {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--seed" {
            let v = args.next().expect("--seed needs a value");
            return v.parse().expect("--seed must be a u64");
        }
    }
    42
}

fn main() {
    let seed = seed_from_args();
    println!("Disseminating Tree Routing to {NODES} nodes through 20% packet loss");
    println!("while {VICTIMS} of them hit the Surge bug mid-dissemination (seed {seed}).");
    for p in [Protection::None, Protection::Umpu, Protection::Sfi] {
        run_one(p, seed);
    }
}
