//! Flight-recorder postmortem, end to end: a 64-node fleet runs Blink
//! everywhere plus the buggy Surge (built without its Tree Routing
//! dependency, so its timer handler dereferences the 0xff error return);
//! 8 victim nodes get the Surge timer, fault, and each freezes a crash
//! dump. The example then plays the field-debugging session: per-node
//! postmortem reports with the reconstructed cross-domain timeline, the
//! watchdog's fault-rate alerts, and the fleet-wide happens-before trace
//! stitched from every node's Lamport-stamped causal log.
//!
//! ```sh
//! cargo run --example blackbox_postmortem
//! ```

use harbor::DomainId;
use harbor_blackbox::{build_edges, reconstruct, CausalKind};
use harbor_fleet::{BlackboxConfig, Fleet, FleetConfig, ModuleImage, NetConfig};
use mini_sos::kernel::MSG_TIMER;
use mini_sos::{modules, Protection};

const NODES: usize = 64;
const VICTIMS: usize = 8;
const ROUNDS: u64 = 32;

/// The victims' Surge timer fires on each of these rounds, so every victim
/// faults three times inside one watchdog window — a crash loop, which is
/// what trips the fault-rate detector (a single recovered fault does not).
const FAULT_ROUNDS: [u64; 3] = [12, 13, 14];

fn main() {
    let cfg = FleetConfig {
        nodes: NODES,
        protection: Protection::Umpu,
        seed: 0xb1ac,
        net: NetConfig { loss: 0.1, ..NetConfig::default() },
        threads: 4,
        blackbox: Some(BlackboxConfig::default()),
        ..FleetConfig::default()
    };
    // Surge in domain 3, deliberately without Tree Routing in domain 2:
    // its handler trusts the kernel's module lookup and stores through the
    // 0xff error return — the paper's motivating wild-pointer bug.
    let mut fleet =
        Fleet::new(&cfg, &[modules::blink(0), modules::surge(3, 2)]).expect("fleet builds");

    println!("{NODES}-node fleet, Blink everywhere; Surge timer hits {VICTIMS} victims\n");
    for round in 0..ROUNDS {
        fleet.post_all(DomainId::num(0), MSG_TIMER);
        if FAULT_ROUNDS.contains(&round) {
            for victim in (0..NODES).step_by(NODES / VICTIMS) {
                fleet.post(victim, DomainId::num(3), MSG_TIMER);
            }
        }
        if round == FAULT_ROUNDS[2] + 2 {
            // The operator's response: flood the patched Tree Routing over
            // the radio, giving Surge's lookup a real target. Every chunk,
            // advert and NACK is Lamport-stamped into the causal trace.
            let image =
                ModuleImage::assemble(&modules::tree_routing(2), &fleet.layout(), cfg.protection)
                    .expect("image assembles");
            fleet.disseminate(&image);
        }
        fleet.step_round();
    }

    // Every victim faulted three times and froze a dump each time.
    let dumps = fleet.dumps();
    println!("{} crash dumps frozen; the first two in full:\n", dumps.len());
    for dump in dumps.iter().take(2) {
        println!("── node {} · round {} · lamport {} ──", dump.node, dump.round, dump.lamport);
        println!(
            "   fault code {} at {:#06x}, pc={:#x}, domain {}",
            dump.fault.code, dump.fault.addr, dump.at_fault.pc, dump.at_fault.domain
        );
        let timeline = reconstruct(dump);
        for step in timeline.steps.iter().rev().take(4).rev() {
            println!("   {}", step.what);
        }
        println!();
    }

    // The watchdog saw the same story online, without any dump in hand.
    for alert in fleet.alerts() {
        println!(
            "alert: node {} round {} {:?} ({} > {})",
            alert.node, alert.round, alert.kind, alert.value, alert.limit
        );
    }

    // Fleet-wide causality: stitch every node's Lamport-stamped log into
    // the happens-before DAG and find what each victim observed last.
    let logs = fleet.causal_logs();
    let edges = build_edges(&logs);
    let records: usize = logs.iter().map(|l| l.records.len()).sum();
    println!("\ncausal DAG: {} records, {} happens-before edges", records, edges.len());
    let faults: Vec<_> = logs
        .iter()
        .flat_map(|l| l.records.iter().filter(|r| r.kind == CausalKind::Local))
        .collect();
    for f in faults.iter().take(3) {
        println!("  node {} fault at lamport {} (round {})", f.from, f.lamport, f.round);
    }

    // The Perfetto-loadable trace (one track per node, flow arrows along
    // every radio edge) — open in https://ui.perfetto.dev.
    let trace = fleet.causal_trace();
    std::fs::create_dir_all("target/blackbox").expect("create target/blackbox");
    std::fs::write("target/blackbox/example_trace.json", &trace).expect("write trace");
    println!("\nwrote target/blackbox/example_trace.json ({} bytes)", trace.len());
}
