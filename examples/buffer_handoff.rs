//! SOS-style buffer handoff: `change_own` moves a buffer between protection
//! domains along with the data flow.
//!
//! ```sh
//! cargo run --example buffer_handoff
//! ```
//!
//! A producer module mallocs a sample buffer, fills it, transfers ownership
//! to the consumer and posts it a message; the consumer processes the
//! sample in place and frees the buffer. Crucially, *after* the transfer
//! the producer is locked out of its old buffer — protection follows the
//! data, the property the paper's `change_own` (Table 4) pays for.

use avr_core::isa::{Ptr, PtrMode, Reg};
use harbor::DomainId;
use mini_sos::kernel::MSG_TIMER;
use mini_sos::{JtEntry, ModuleSource, Protection, SosSystem};

fn main() {
    for (poison, label) in
        [(false, "correct handoff"), (true, "buggy producer writes after the handoff")]
    {
        println!("\n═══ {label} ═══");
        for p in [Protection::None, Protection::Umpu, Protection::Sfi] {
            let layout = mini_sos::SosLayout::default_layout();
            let mods = [producer(poison), consumer(layout.state_addr(1))];
            let mut sys = SosSystem::build(p, &mods, |a, api| {
                api.run_scheduler(a);
                a.brk();
            })
            .expect("builds");
            sys.boot().expect("boot");
            sys.post(DomainId::num(1), MSG_TIMER);
            match sys.run_to_break(10_000_000) {
                Ok(_) => {
                    let sample = sys.sram(sys.layout.state_addr(4));
                    println!("  {p:?}: consumer processed sample {sample:#04x}");
                }
                Err(_) => {
                    let f = sys
                        .last_protection_fault()
                        .map(|f| f.to_string())
                        .unwrap_or_else(|| "protection fault".into());
                    println!("  {p:?}: CAUGHT — {f}");
                }
            }
        }
    }
    println!("\n0x5a doubled = 0xb4 is the clean result; 0x7a downstream means the");
    println!("stale producer write silently corrupted the consumer's input.");
}

fn producer(poison: bool) -> ModuleSource {
    ModuleSource {
        name: "producer",
        domain: DomainId::num(1),
        entries: vec!["prod_handler"],
        build: Box::new(move |a, ctx| {
            let state = ctx.state_addr;
            let done = a.label("prod_done");
            a.here("prod_handler");
            a.cpi(Reg::R24, MSG_TIMER);
            a.brne(done);
            a.ldi(Reg::R24, 8);
            a.ldi(Reg::R22, 1);
            ctx.call_kernel(a, JtEntry::Malloc);
            a.sts(state, Reg::R24);
            a.sts(state + 1, Reg::R25);
            a.mov(Reg::R26, Reg::R24);
            a.mov(Reg::R27, Reg::R25);
            a.ldi(Reg::R16, 0x5a);
            a.st(Ptr::X, PtrMode::Plain, Reg::R16);
            a.lds(Reg::R24, state);
            a.lds(Reg::R25, state + 1);
            a.ldi(Reg::R22, 4);
            ctx.call_kernel(a, JtEntry::ChangeOwn);
            if poison {
                a.lds(Reg::R26, state);
                a.lds(Reg::R27, state + 1);
                a.ldi(Reg::R16, 0xbd);
                a.st(Ptr::X, PtrMode::Plain, Reg::R16);
            }
            a.ldi(Reg::R24, 4);
            a.ldi(Reg::R22, MSG_TIMER);
            ctx.call_kernel(a, JtEntry::Post);
            a.bind(done);
            a.ret();
        }),
    }
}

fn consumer(producer_state: u16) -> ModuleSource {
    ModuleSource {
        name: "consumer",
        domain: DomainId::num(4),
        entries: vec!["cons_handler"],
        build: Box::new(move |a, ctx| {
            let state = ctx.state_addr;
            let done = a.label("cons_done");
            a.here("cons_handler");
            a.cpi(Reg::R24, MSG_TIMER);
            a.brne(done);
            a.lds(Reg::R26, producer_state);
            a.lds(Reg::R27, producer_state + 1);
            a.ld(Reg::R16, Ptr::X, PtrMode::Plain);
            a.lsl(Reg::R16);
            a.st(Ptr::X, PtrMode::Plain, Reg::R16);
            a.sts(state, Reg::R16);
            a.lds(Reg::R24, producer_state);
            a.lds(Reg::R25, producer_state + 1);
            ctx.call_kernel(a, JtEntry::Free);
            a.bind(done);
            a.ret();
        }),
    }
}
