//! Software vs hardware fault isolation on the same module.
//!
//! ```sh
//! cargo run --example sfi_vs_umpu
//! ```
//!
//! Shows the binary rewriter's transformation (disassembly before/after),
//! runs the verifier over the result, and then times the identical store
//! under the UMPU hardware checker and the SFI software checker — the two
//! columns of the paper's Table 3, live.

use avr_asm::{disasm, Asm, DisasmItem};
use avr_core::exec::Cpu;
use avr_core::isa::{Ptr, PtrMode, Reg};
use avr_core::mem::PlainEnv;
use harbor::DomainId;
use harbor_sfi::{rewrite, verify, SfiLayout, SfiRuntime, VerifierConfig};
use umpu::{UmpuConfig, UmpuEnv};

const ORIGIN: u32 = 0x1000;
const SEG: u16 = 0x0300;

fn print_listing(title: &str, words: &[u16], origin: u32) {
    println!("\n{title}");
    for item in disasm(origin, words) {
        match item {
            DisasmItem::Instr { addr, instr } => println!("  {addr:#06x}: {instr}"),
            DisasmItem::Raw { addr, word } => println!("  {addr:#06x}: .word {word:#06x}"),
        }
    }
}

fn main() {
    // A module function, as a compiler would emit it.
    let mut a = Asm::new();
    a.ldi(Reg::R16, 0x42);
    a.ldi(Reg::R26, (SEG & 0xff) as u8);
    a.ldi(Reg::R27, (SEG >> 8) as u8);
    a.st(Ptr::X, PtrMode::Plain, Reg::R16);
    a.ret();
    let original = a.assemble(ORIGIN).unwrap();
    print_listing("Original module:", original.words(), ORIGIN);

    // Sandbox it.
    let rt = SfiRuntime::build(SfiLayout::default_layout(), 0x0040);
    let rewritten = rewrite(original.words(), ORIGIN, &[ORIGIN], ORIGIN, &rt).unwrap();
    print_listing("Rewritten (sandboxed) module:", rewritten.object.words(), ORIGIN);
    verify(rewritten.object.words(), ORIGIN, &VerifierConfig::for_runtime(&rt)).unwrap();
    println!(
        "\nverifier: ACCEPTED ({} → {} words)",
        original.words().len(),
        rewritten.object.words().len()
    );

    // Time the store under SFI.
    let mut env = PlainEnv::new();
    rt.install(&mut env.flash, &mut env.data);
    rt.host_set_segment(&mut env.data, DomainId::num(2), SEG, 32).unwrap();
    rt.set_current_domain(&mut env.data, DomainId::num(2));
    rewritten.object.load_into(&mut env.flash);
    let mut cpu = Cpu::new(env);
    cpu.set_reg16(Reg::XL, SEG);
    cpu.set_reg(Reg::R16, 0x42);
    let st_at = rewritten.translated(ORIGIN + 3); // the original st's address
    let after = rewritten.translated(ORIGIN + 4);
    cpu.pc = st_at;
    let c0 = cpu.cycles();
    cpu.run_to_pc(after, 10_000).unwrap();
    let sfi_cycles = cpu.cycles() - c0;

    // Time the same store under UMPU.
    let cfg = UmpuConfig::default_layout();
    let mut env = UmpuEnv::new();
    env.configure(&cfg);
    env.host_set_segment(DomainId::num(2), SEG, 32).unwrap();
    env.set_code_region(DomainId::num(2), ORIGIN as u16, ORIGIN as u16 + 16);
    env.set_current_domain(DomainId::num(2));
    original.load_into(&mut env.flash);
    let mut cpu = Cpu::new(env);
    cpu.set_reg16(Reg::XL, SEG);
    cpu.set_reg(Reg::R16, 0x42);
    cpu.pc = ORIGIN + 3;
    let c0 = cpu.cycles();
    cpu.run_to_pc(ORIGIN + 4, 10_000).unwrap();
    let umpu_cycles = cpu.cycles() - c0;

    println!("\nchecked store, cycle cost (plain st = 2):");
    println!("  UMPU hardware checker: {umpu_cycles:>3} cycles (overhead {})", umpu_cycles - 2);
    println!("  SFI software checker:  {sfi_cycles:>3} cycles (overhead {})", sfi_cycles - 2);
    println!("\n(paper, Table 3: hardware 1 cycle vs software 65 cycles)");
}
