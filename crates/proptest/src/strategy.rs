//! Value-generation strategies: the [`Strategy`] trait and its built-in
//! implementations (integer ranges, tuples, [`Just`], [`any`], mapping,
//! unions).

use crate::test_runner::TestRng;
use rand::{Fill, Rng};

/// A recipe for generating random values of one type.
///
/// Unlike the real proptest there is no value tree and no shrinking: a
/// strategy simply draws a concrete value from the test RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type (used by `prop_oneof!` to mix arms).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn pick(&self, rng: &mut TestRng) -> T {
        (**self).pick(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn pick(&self, rng: &mut TestRng) -> S::Value {
        (**self).pick(rng)
    }
}

/// The `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn pick(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.pick(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn pick(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws a uniformly random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Fill> Arbitrary for T {
    fn arbitrary(rng: &mut TestRng) -> T {
        rng.gen()
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Uniformly random values of `T` (small primitive types).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn pick(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn pick(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn pick(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if hi == <$t>::MAX {
                    if lo == <$t>::MIN {
                        return rng.gen();
                    }
                    // Shift down one so the half-open draw covers `hi`.
                    return rng.gen_range(lo - 1..hi) + 1;
                }
                rng.gen_range(lo..hi + 1)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.pick(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// A uniform choice between type-erased arms (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn pick(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].pick(rng)
    }
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
