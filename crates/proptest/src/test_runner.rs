//! The case-running machinery behind the [`proptest!`](crate::proptest)
//! macro: configuration, the per-test RNG, and the assertion/rejection
//! plumbing.

use rand::SeedableRng;
pub use rand::StdRng as TestRng;

/// Runner configuration (the `cases` knob; other fields of the real crate
/// are accepted via `..ProptestConfig::default()` and ignored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
    /// Cap on `prop_assume!` rejections before the test errors out.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

/// How a single generated case ended (other than by succeeding).
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; draw a fresh case.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError::Fail(msg)
    }
}

/// The deterministic per-test RNG: seeded from a hash of the test name, or
/// from `PROPTEST_SEED` when set (for re-running a sweep under a different
/// seed).
pub fn test_rng(test_name: &str) -> TestRng {
    let seed = match std::env::var("PROPTEST_SEED") {
        Ok(s) => s.parse::<u64>().unwrap_or_else(|_| fnv1a(s.as_bytes())),
        Err(_) => fnv1a(test_name.as_bytes()),
    };
    TestRng::seed_from_u64(seed)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Defines deterministic random tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(512))]
///
///     #[test]
///     fn my_property(x in 0u8..16, v in proptest::collection::vec(any::<u16>(), 0..8)) {
///         prop_assert!(x < 16);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::test_rng(stringify!($name));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                $(let $arg = $crate::strategy::Strategy::pick(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.max_global_rejects,
                            "{}: prop_assume! rejected {} cases",
                            stringify!($name),
                            rejected,
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("{} failed after {} cases: {}", stringify!($name), passed, msg);
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: `{:?}` != `{:?}`", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: `{:?}` == `{:?}`", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Rejects the current case (a fresh one is drawn in its place).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
