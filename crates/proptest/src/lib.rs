//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This workspace member implements the subset the
//! repository's tests use: the [`Strategy`] abstraction (ranges, tuples,
//! [`Just`], [`any`], `prop_map`, `prop_oneof!`, `collection::vec`) and the
//! [`proptest!`] / `prop_assert*!` / `prop_assume!` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports the assertion message only;
//! * **deterministic seeding** — each test's RNG is seeded from a hash of
//!   the test name (override with the `PROPTEST_SEED` environment variable),
//!   so a failure always reproduces;
//! * `proptest-regressions` files are ignored.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// The accepted size arguments of [`vec`]: an exact count or a range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            if self.start >= self.end {
                self.start
            } else {
                rng.gen_range(self.start..self.end)
            }
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(*self.start()..self.end().saturating_add(1))
        }
    }

    /// A strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `vec(element, len)`: a vector whose length is drawn from `len` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.pick(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};
    pub use crate::{prop_oneof, proptest};

    /// `prop::collection::…` paths, as re-exported by the real prelude.
    pub mod prop {
        pub use crate::collection;
    }
}
