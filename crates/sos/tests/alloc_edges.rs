//! Edge cases of the kernel allocator and message queue: exhaustion,
//! double free, bad pointers, queue wrap-around and overflow.

use avr_core::isa::Reg;
use mini_sos::kernel::MSG_TIMER;
use mini_sos::{modules, JtEntry, Protection, SosSystem};

const OUT: u16 = 0x01ee;
const ALL: [Protection; 3] = [Protection::None, Protection::Umpu, Protection::Sfi];

#[test]
fn malloc_exhaustion_returns_null() {
    // 248 allocatable blocks; a 200-byte request takes 26 blocks, so the
    // 10th must fail (9 × 26 = 234, 240 > 248 − nothing? 248−234 = 14 < 26).
    for p in ALL {
        let mut sys = SosSystem::build(p, &[], |a, api| {
            let lp = a.label("fill");
            // Counters in call-saved low registers (the kernel ABI clobbers
            // r18..r27).
            a.ldi(Reg::R16, 10);
            a.mov(Reg::R8, Reg::R16); // attempts
            a.clr(Reg::R9); // successes
            a.bind(lp);
            a.ldi(Reg::R24, 200);
            a.ldi(Reg::R22, 2);
            api.call_kernel(a, JtEntry::Malloc);
            // null?
            a.mov(Reg::R16, Reg::R24);
            a.or(Reg::R16, Reg::R25);
            let skip = a.label("skip_count");
            a.breq(skip);
            a.inc(Reg::R9);
            a.bind(skip);
            a.dec(Reg::R8);
            a.brne(lp);
            a.sts(OUT, Reg::R9);
            // Record the final (failing) pointer too.
            a.sts(OUT + 1, Reg::R24);
            a.sts(OUT + 2, Reg::R25);
            a.brk();
        })
        .unwrap();
        sys.boot().unwrap();
        sys.run_to_break(10_000_000).unwrap();
        assert_eq!(sys.sram(OUT), 9, "{p:?}: exactly 9 of 10 allocations fit");
        assert_eq!(sys.sram16(OUT + 1), 0, "{p:?}: exhausted malloc returns null");
    }
}

#[test]
fn double_free_and_wild_pointers_are_rejected() {
    for p in ALL {
        let mut sys = SosSystem::build(p, &[], |a, api| {
            // a = malloc(8, 2); free(a) -> 0; free(a) again -> 0xff;
            // free(0x0500 wild) -> 0xff; free(heap-2 out of range) -> 0xff.
            a.ldi(Reg::R24, 8);
            a.ldi(Reg::R22, 2);
            api.call_kernel(a, JtEntry::Malloc);
            a.sts(OUT, Reg::R24);
            a.sts(OUT + 1, Reg::R25);
            a.lds(Reg::R24, OUT);
            a.lds(Reg::R25, OUT + 1);
            api.call_kernel(a, JtEntry::Free);
            a.sts(OUT + 2, Reg::R24); // 0
            a.lds(Reg::R24, OUT);
            a.lds(Reg::R25, OUT + 1);
            api.call_kernel(a, JtEntry::Free);
            a.sts(OUT + 3, Reg::R24); // 0xff (double free)
            a.ldi(Reg::R24, 0x00);
            a.ldi(Reg::R25, 0x05); // 0x0500: in-heap but never allocated
            api.call_kernel(a, JtEntry::Free);
            a.sts(OUT + 4, Reg::R24); // 0xff
            a.ldi(Reg::R24, 0x10);
            a.ldi(Reg::R25, 0x00); // 0x0010: far below the heap
            api.call_kernel(a, JtEntry::Free);
            a.sts(OUT + 5, Reg::R24); // 0xff
            a.brk();
        })
        .unwrap();
        sys.boot().unwrap();
        sys.run_to_break(10_000_000).unwrap();
        assert_eq!(sys.sram(OUT + 2), 0x00, "{p:?}: first free succeeds");
        assert_eq!(sys.sram(OUT + 3), 0xff, "{p:?}: double free rejected");
        assert_eq!(sys.sram(OUT + 4), 0xff, "{p:?}: never-allocated pointer rejected");
        assert_eq!(sys.sram(OUT + 5), 0xff, "{p:?}: out-of-heap pointer rejected");
    }
}

#[test]
fn change_own_of_freed_memory_is_rejected() {
    // The use-after-free resurrection found by the differential property:
    // change_own on a freed pointer must fail, even for the kernel.
    for p in [Protection::Umpu, Protection::Sfi] {
        let mut sys = SosSystem::build(p, &[], |a, api| {
            a.ldi(Reg::R24, 8);
            a.ldi(Reg::R22, 1);
            api.call_kernel(a, JtEntry::Malloc);
            a.sts(OUT, Reg::R24);
            a.sts(OUT + 1, Reg::R25);
            a.lds(Reg::R24, OUT);
            a.lds(Reg::R25, OUT + 1);
            api.call_kernel(a, JtEntry::Free);
            a.lds(Reg::R24, OUT);
            a.lds(Reg::R25, OUT + 1);
            a.ldi(Reg::R22, 3);
            api.call_kernel(a, JtEntry::ChangeOwn);
            a.sts(OUT + 2, Reg::R24);
            a.brk();
        })
        .unwrap();
        sys.boot().unwrap();
        sys.run_to_break(10_000_000).unwrap();
        assert_eq!(sys.sram(OUT + 2), 0xff, "{p:?}: stale change_own rejected");
        // And the memory map still shows the block as free.
        let base = sys.layout.prot.mem_map_base;
        assert_eq!(sys.sram(base) & 0x0f, 0x0f, "{p:?}: first block reads free");
    }
}

#[test]
fn message_queue_wraps_and_reports_overflow() {
    // Fill the 15 usable entries from inside the machine, confirm the 16th
    // post reports full, then drain and go around the ring again.
    let mut sys = SosSystem::build(Protection::Umpu, &[modules::blink(0)], |a, api| {
        let lp = a.label("post_loop");
        a.ldi(Reg::R18, 15); // the queue holds capacity-1 = 15
        a.bind(lp);
        a.ldi(Reg::R24, 0);
        a.ldi(Reg::R22, MSG_TIMER);
        api.call_kernel(a, JtEntry::Post);
        a.dec(Reg::R18);
        a.brne(lp);
        // One more must report full.
        a.ldi(Reg::R24, 0);
        a.ldi(Reg::R22, MSG_TIMER);
        api.call_kernel(a, JtEntry::Post);
        a.sts(OUT, Reg::R24);
        // Drain everything, then post/drain once more (wrap-around).
        api.run_scheduler(a);
        a.ldi(Reg::R24, 0);
        a.ldi(Reg::R22, MSG_TIMER);
        api.call_kernel(a, JtEntry::Post);
        a.sts(OUT + 1, Reg::R24);
        api.run_scheduler(a);
        a.brk();
    })
    .unwrap();
    sys.boot().unwrap();
    // Consume the boot-time init message capacity: drain it first by hand.
    // (boot posted 1 init message; the app then posts 15 → 16 total would
    // overflow, so pre-drain via the scheduler by steering.)
    // Simpler: pop the init message off host-side.
    let head = sys.sram(sys.layout.q_head);
    sys.write_sram(sys.layout.q_head, (head + 1) & 0x0f);
    sys.run_to_break(10_000_000).unwrap();
    assert_eq!(sys.sram(OUT), 0xff, "16th post reports queue full");
    assert_eq!(sys.sram(OUT + 1), 0, "post after drain succeeds (wrapped)");
    // 15 + 1 timer messages were delivered in total.
    assert_eq!(sys.sram(sys.layout.state_addr(0)), 16);
}
