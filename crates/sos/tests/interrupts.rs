//! Timer-interrupt tests: the hardware timer drives the blink module
//! through the ISR → message queue → scheduler pipeline, under all three
//! protection builds. Under UMPU, an interrupt that preempts a *user*
//! domain is a hardware domain switch: the handler runs trusted and `RETI`
//! restores the interrupted domain and stack bound exactly.

use avr_core::isa::Reg;
use harbor::DomainId;
use mini_sos::{modules, ModuleSource, Protection, SosSystem};

/// Driver app: enable interrupts and pump the scheduler until blink has
/// counted `target` ticks, then break.
fn pump_until(target: u8) -> impl FnOnce(&mut avr_asm::Asm, &mini_sos::KernelApi) {
    move |a, api| {
        let state = api.layout.state_addr(0);
        let idle = a.label("idle");
        a.sei();
        a.bind(idle);
        api.run_scheduler(a);
        a.lds(Reg::R16, state);
        a.cpi(Reg::R16, target);
        a.brlo(idle);
        a.cli();
        a.brk();
    }
}

#[test]
fn timer_interrupt_drives_blink_in_all_builds() {
    for p in [Protection::None, Protection::Umpu, Protection::Sfi] {
        let mut sys = SosSystem::build(p, &[modules::blink(0)], pump_until(5)).unwrap();
        sys.boot().unwrap();
        sys.enable_timer(500, DomainId::num(0));
        sys.run_to_break(2_000_000).unwrap_or_else(|e| panic!("{p:?}: {e}"));
        let count = sys.sram(sys.layout.state_addr(0));
        assert!(count >= 5, "{p:?}: blink saw {count} ticks");
    }
}

#[test]
fn interrupt_preempting_a_user_domain_restores_it_exactly() {
    // A module that runs a long busy loop; the timer preempts it mid-loop.
    // The loop's register state must survive the interrupt, and the
    // module's final store must still pass the protection checks (i.e. the
    // active domain and stack bound were restored by RETI).
    fn spinner(dom: u8) -> ModuleSource {
        ModuleSource {
            name: "spinner",
            domain: DomainId::num(dom),
            entries: vec!["spin_handler"],
            build: Box::new(|a, ctx| {
                let state = ctx.state_addr;
                let done = a.label("spin_done");
                let lp = a.label("spin_loop");
                a.here("spin_handler");
                a.cpi(Reg::R24, mini_sos::MSG_INIT);
                a.breq(done);
                // ~3000 cycles of spinning: several timer fires land here.
                a.ldi(Reg::R18, 0);
                a.ldi(Reg::R19, 0);
                a.bind(lp);
                a.inc(Reg::R18);
                a.brne(lp);
                a.inc(Reg::R19);
                a.cpi(Reg::R19, 4);
                a.brne(lp);
                // The registers must have survived every preemption.
                a.sts(state, Reg::R19); // = 4
                a.sts(state + 1, Reg::R18); // = 0
                a.bind(done);
                a.ret();
            }),
        }
    }

    for p in [Protection::Umpu, Protection::Sfi] {
        let mods = [modules::blink(0), spinner(2)];
        let mut sys = SosSystem::build(p, &mods, |a, api| {
            a.sei();
            api.run_scheduler(a);
            a.cli();
            a.brk();
        })
        .unwrap();
        sys.boot().unwrap();
        sys.enable_timer(700, DomainId::num(0));
        sys.post(DomainId::num(2), mini_sos::kernel::MSG_TIMER); // start the spinner
        sys.run_to_break(10_000_000).unwrap_or_else(|e| panic!("{p:?}: {e}"));

        let spin_state = sys.layout.state_addr(2);
        assert_eq!(sys.sram(spin_state), 4, "{p:?}: spinner finished its loop intact");
        assert_eq!(sys.sram(spin_state + 1), 0, "{p:?}: inner counter wrapped cleanly");
        let blink = sys.sram(sys.layout.state_addr(0));
        assert!(blink >= 3, "{p:?}: the timer really preempted (blink = {blink})");
    }
}

#[test]
fn umpu_interrupt_frames_balance() {
    // After the workload, the UMPU safe stack must be empty and the
    // tracker back in the trusted domain — every interrupt frame popped.
    let mut sys = SosSystem::build(Protection::Umpu, &[modules::blink(0)], pump_until(8)).unwrap();
    sys.boot().unwrap();
    sys.enable_timer(300, DomainId::num(0));
    sys.run_to_break(5_000_000).unwrap();
    let env = sys.umpu_env().unwrap();
    assert_eq!(env.safe_stack.used_bytes(), 0, "all frames popped");
    assert!(env.tracker.current.is_trusted());
}

#[test]
fn tickless_sleep_duty_cycle_ordering() {
    // SLEEP between timer wakes: protection overhead shows up as a larger
    // duty cycle for the same workload, with None < UMPU < SFI.
    let mut duty = Vec::new();
    for p in [Protection::None, Protection::Umpu, Protection::Sfi] {
        let mut sys = SosSystem::build(p, &[modules::blink(0)], |a, api| {
            let state = api.layout.state_addr(0);
            let idle = a.label("idle");
            a.sei();
            a.bind(idle);
            a.sleep();
            api.run_scheduler(a);
            a.lds(Reg::R16, state);
            a.cpi(Reg::R16, 8);
            a.brlo(idle);
            a.cli();
            a.brk();
        })
        .unwrap();
        sys.boot().unwrap();
        sys.enable_timer(4000, DomainId::num(0));
        sys.run_to_break(50_000_000).unwrap_or_else(|e| panic!("{p:?}: {e}"));
        let total = sys.cycles();
        let active = total - sys.idle_cycles();
        duty.push((p, active as f64 / total as f64));
        assert!(sys.idle_cycles() > total / 2, "{p:?}: mostly asleep");
    }
    assert!(duty[0].1 < duty[1].1, "UMPU duty > unprotected: {duty:?}");
    assert!(duty[1].1 < duty[2].1, "SFI duty > UMPU: {duty:?}");
}
