//! The loader's admission gate: a module whose *certified* worst-case
//! stack demand exceeds the policy's safe-stack allotment is rejected at
//! load time with a typed error — before a single instruction of it runs —
//! instead of faulting at some arbitrary call depth in the field.

use harbor::DomainId;
use harbor_flow::CfgVerifier;
use mini_sos::kernel::MSG_TIMER;
use mini_sos::loader::load_module_with_policy;
use mini_sos::{modules, LoadError, LoadPolicy, Protection, SosLayout, SosSystem};

fn scheduler_app(a: &mut avr_asm::Asm, api: &mini_sos::KernelApi) {
    api.run_scheduler(a);
    a.brk();
}

#[test]
fn module_exceeding_allotment_is_rejected_with_typed_error() {
    let mut sys = SosSystem::build(Protection::Sfi, &[], scheduler_app).unwrap();
    sys.boot().unwrap();
    // Every SFI module needs at least its 5-byte inbound cross-domain
    // frame plus a 2-byte save-ret frame: a 6-byte allotment admits nothing.
    sys.set_load_policy(Some(LoadPolicy::with_allotment(6)));

    let err = sys.load_module(&modules::blink(0)).unwrap_err();
    match err {
        LoadError::StackBound { name, certified, allotment } => {
            assert_eq!(name, "blink");
            assert_eq!(allotment, 6);
            assert!(certified > 6, "certified bound {certified} must exceed the allotment");
        }
        other => panic!("expected StackBound, got: {other}"),
    }
    assert!(sys.modules.is_empty(), "rejected module must not be installed");
}

#[test]
fn generous_allotment_admits_and_module_runs() {
    let mut sys = SosSystem::build(Protection::Sfi, &[], scheduler_app).unwrap();
    sys.boot().unwrap();
    sys.set_load_policy(Some(LoadPolicy::with_allotment(64)));

    sys.load_module(&modules::blink(0)).expect("blink fits a 64-byte allotment");
    assert_eq!(sys.modules.len(), 1);

    // The admitted module actually runs: deliver init + one timer tick.
    sys.steer(sys.symbol("ker_boot_done") + 1);
    sys.run_to_break(10_000_000).unwrap();
    sys.post(DomainId::num(0), MSG_TIMER);
    sys.steer(sys.symbol("ker_boot_done") + 1);
    sys.run_to_break(10_000_000).unwrap();
    let state = sys.layout.state_addr(0);
    assert!(sys.sram(state) > 0, "blink counted at least one tick");
}

#[test]
fn policy_is_inert_outside_sfi() {
    for p in [Protection::None, Protection::Umpu] {
        let mut sys = SosSystem::build(p, &[], scheduler_app).unwrap();
        sys.boot().unwrap();
        sys.set_load_policy(Some(LoadPolicy::with_allotment(1)));
        sys.load_module(&modules::blink(0))
            .unwrap_or_else(|e| panic!("{p:?}: gate must not apply: {e}"));
    }
}

#[test]
fn build_time_loader_honors_the_policy_too() {
    let layout = SosLayout::default_layout();
    let rt = harbor_sfi::SfiRuntime::build(layout.prot, layout.runtime_origin);
    let tiny = LoadPolicy::with_allotment(6);
    let err = load_module_with_policy(
        &modules::blink(0),
        &layout,
        Protection::Sfi,
        Some(&rt),
        Some(&tiny),
    )
    .unwrap_err();
    assert!(matches!(err, LoadError::StackBound { .. }));

    let roomy = LoadPolicy::with_allotment(128);
    load_module_with_policy(&modules::blink(0), &layout, Protection::Sfi, Some(&rt), Some(&roomy))
        .expect("blink admits under a roomy policy");
}

/// Every in-tree module, rewritten for SFI, passes the deep verifier and
/// lints clean with a finite certificate — the in-tree complement of the
/// `lint-modules` binary's corpus (this crate can reach the real loader;
/// the binary cannot depend on it without a cycle).
#[test]
fn in_tree_modules_deep_verify_and_lint_clean() {
    let layout = SosLayout::default_layout();
    let rt = harbor_sfi::SfiRuntime::build(layout.prot, layout.runtime_origin);
    let verifier = CfgVerifier::for_runtime(&rt);

    let sources = [
        modules::blink(0),
        modules::tree_routing(3),
        modules::surge(1, 3),
        modules::surge_fixed(1, 3),
        modules::producer(2, 4),
        modules::consumer(4, 2),
    ];
    for src in &sources {
        let loaded =
            load_module_with_policy(src, &layout, Protection::Sfi, Some(&rt), None).unwrap();
        let analysis = verifier
            .analyze(loaded.object.words(), loaded.object.origin(), &loaded.entry_addrs)
            .unwrap_or_else(|e| panic!("{}: deep verify failed: {e}", loaded.name));
        assert!(
            analysis.lints.is_empty(),
            "{}: unexpected lints: {:?}",
            loaded.name,
            analysis.lints
        );
        let cert = analysis.certificate;
        assert!(!cert.saturated, "{}: certificate must be finite", loaded.name);
        assert!(
            cert.safe_stack_bytes <= verifier.safe_stack_capacity(),
            "{}: certified demand {}B exceeds the safe-stack region",
            loaded.name,
            cert.safe_stack_bytes
        );
    }
}
