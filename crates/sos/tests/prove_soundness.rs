//! Soundness of certified-store elision, end to end.
//!
//! **UMPU** (`SosSystem::set_prove`): elision must be *invisible*. For
//! seeded, generated modules mixing certifiable and uncertifiable store
//! shapes, a proving system and a reference system driven identically must
//! agree on every observable — cycle count, fault history, and memory.
//! Every elided store is additionally re-checked against the dynamic MMC
//! inside `UmpuEnv::sram_write_at` (a `debug_assert`, active in these
//! tests), so a single unsound certificate aborts the run loudly instead
//! of skewing state.
//!
//! **SFI** (`LoadPolicy::with_elision`): elision is *visible* in cycles —
//! that is the paper's point — so the contract is different: fewer cycles,
//! identical memory and faults, and a store the certificate cannot cover
//! still trapped dynamically.
//!
//! Reproduce a run with `HARBOR_SEED=n cargo test --test prove_soundness`
//! (the default seed is fixed, so plain `cargo test` is deterministic).

use harbor::DomainId;
use mini_sos::kernel::{MSG_INIT, MSG_TIMER};
use mini_sos::loader::ModuleCtx;
use mini_sos::{modules, LoadPolicy, ModuleSource, Protection, SosSystem};
use rand::{Rng, SeedableRng, StdRng};

const R18: avr_core::isa::Reg = avr_core::isa::Reg::R18;
const R20: avr_core::isa::Reg = avr_core::isa::Reg::R20;

fn seed() -> u64 {
    match std::env::var("HARBOR_SEED") {
        Ok(v) => v.parse().expect("HARBOR_SEED must be a u64"),
        Err(_) => 0x5eed,
    }
}

fn scheduler_app(a: &mut avr_asm::Asm, api: &mini_sos::KernelApi) {
    api.run_scheduler(a);
    a.brk();
}

/// One store shape in a generated handler body. Offsets are pre-clamped to
/// the module's 32-byte state segment, so every shape is *dynamically*
/// legal — but only some are *statically* certifiable (constant `sts`,
/// immediate-pair pointers), which is exactly the mix that exercises both
/// the elided and the checked path in one run.
#[derive(Clone)]
enum Op {
    /// `ldi` + `sts state+off` — the certifiable workhorse.
    StsImm { off: u16, val: u8 },
    /// X loaded from immediates, then a plain `st X`.
    StX { off: u16 },
    /// Y loaded from immediates, then a displaced `std Y+disp`.
    StdY { base: u16, disp: u8 },
    /// X loaded from immediates, then a post-increment burst.
    Burst { off: u16, n: u8 },
    /// A counted `sts` loop (back edge, constant target).
    Loop { off: u16, count: u8 },
}

fn generate(rng: &mut StdRng, len: u16) -> Vec<Op> {
    (0..rng.gen_range(2usize..8))
        .map(|_| match rng.gen_range(0u8..5) {
            0 => Op::StsImm { off: rng.gen_range(0..len), val: rng.gen_range(0u8..255) },
            1 => Op::StX { off: rng.gen_range(0..len) },
            2 => {
                let disp = rng.gen_range(0u8..8);
                Op::StdY { base: rng.gen_range(0..len - disp as u16), disp }
            }
            3 => {
                let n = rng.gen_range(1u8..5);
                Op::Burst { off: rng.gen_range(0..len - n as u16), n }
            }
            _ => Op::Loop { off: rng.gen_range(0..len), count: rng.gen_range(1u8..4) },
        })
        .collect()
}

/// Wraps a recipe in a standard message handler: init clears the segment
/// head, the timer path replays the recipe.
fn fuzz_module(dom: u8, recipe: Vec<Op>) -> ModuleSource {
    ModuleSource {
        name: "fuzz",
        domain: DomainId::num(dom),
        entries: vec!["fuzz_handler"],
        build: Box::new(move |a, ctx| emit(a, ctx, &recipe)),
    }
}

fn emit(a: &mut avr_asm::Asm, ctx: &ModuleCtx, recipe: &[Op]) {
    use avr_core::isa::{Ptr, PtrMode, Reg};
    let state = ctx.state_addr;
    let timer = a.label("fuzz_timer");
    a.here("fuzz_handler");
    a.cpi(Reg::R24, MSG_INIT);
    a.brne(timer);
    a.clr(R18);
    a.sts(state, R18);
    a.ret();
    a.bind(timer);
    a.ldi(R18, 0x5a);
    for (i, op) in recipe.iter().enumerate() {
        match *op {
            Op::StsImm { off, val } => {
                a.ldi(R18, val);
                a.sts(state + off, R18);
            }
            Op::StX { off } => {
                let p = state + off;
                a.ldi(Reg::R26, (p & 0xff) as u8);
                a.ldi(Reg::R27, (p >> 8) as u8);
                a.st(Ptr::X, PtrMode::Plain, R18);
            }
            Op::StdY { base, disp } => {
                let p = state + base;
                a.ldi(Reg::R28, (p & 0xff) as u8);
                a.ldi(Reg::R29, (p >> 8) as u8);
                a.std(Ptr::Y, disp, R18);
            }
            Op::Burst { off, n } => {
                let p = state + off;
                a.ldi(Reg::R26, (p & 0xff) as u8);
                a.ldi(Reg::R27, (p >> 8) as u8);
                for _ in 0..n {
                    a.st(Ptr::X, PtrMode::PostInc, R18);
                }
            }
            Op::Loop { off, count } => {
                let l = a.label(&format!("fuzz_loop_{i}"));
                a.ldi(R20, count);
                a.bind(l);
                a.sts(state + off, R18);
                a.dec(R20);
                a.brne(l);
            }
        }
    }
    a.ret();
}

/// Builds an UMPU system over `src`, optionally proving, and drives three
/// timer ticks. Returns the observables the twin runs must agree on, plus
/// how many stores the certificate covered.
fn drive_umpu(src: ModuleSource, prove: bool) -> (u64, Vec<u8>, String, usize) {
    let mut sys = SosSystem::build(Protection::Umpu, &[src], scheduler_app).unwrap();
    if prove {
        sys.set_prove(true);
    }
    let certified: usize =
        sys.store_certificates().0.iter().map(|(_, c)| c.certified_pcs().len()).sum();
    sys.boot().unwrap();
    for _ in 0..3 {
        sys.post(DomainId::num(2), MSG_TIMER);
    }
    sys.run_to_break(4_000_000).unwrap();
    let state = sys.layout.state_addr(2);
    let seg: Vec<u8> = (0..sys.layout.state_len()).map(|i| sys.sram(state + i)).collect();
    (sys.cycles(), seg, format!("{:?}", sys.fault_history()), certified)
}

/// The twin-run soundness sweep: for each generated module, a proving
/// system and a reference system are byte-for-byte indistinguishable.
#[test]
fn random_modules_run_byte_identically_under_elision() {
    let mut rng = StdRng::seed_from_u64(seed());
    let len = mini_sos::SosLayout::default_layout().state_len();
    let mut total_certified = 0usize;
    for case in 0..12 {
        let recipe = generate(&mut rng, len);
        let (ref_cycles, ref_seg, ref_faults, _) =
            drive_umpu(fuzz_module(2, recipe.clone()), false);
        let (cycles, seg, faults, certified) = drive_umpu(fuzz_module(2, recipe), true);
        assert_eq!(cycles, ref_cycles, "case {case}: cycle divergence under elision");
        assert_eq!(seg, ref_seg, "case {case}: state divergence under elision");
        assert_eq!(faults, ref_faults, "case {case}: fault divergence under elision");
        total_certified += certified;
    }
    // The sweep must actually exercise the elided path, or the agreement
    // above is vacuous.
    assert!(total_certified > 0, "no generated store was ever certified");
}

/// A module that mixes certified own-segment stores with a wild store into
/// another domain's segment: the wild store is never certified, so it hits
/// the dynamic MMC on both systems and the recorded faults are identical.
#[test]
fn wild_store_faults_identically_under_elision() {
    let wild = |dom: u8| -> ModuleSource {
        ModuleSource {
            name: "fuzz",
            domain: DomainId::num(dom),
            entries: vec!["wild_handler"],
            build: Box::new(|a, ctx| {
                use avr_core::isa::Reg;
                let state = ctx.state_addr;
                let foreign = ctx.layout.state_addr(5);
                let timer = a.label("wild_timer");
                a.here("wild_handler");
                a.cpi(Reg::R24, MSG_INIT);
                a.brne(timer);
                a.clr(R18);
                a.sts(state, R18);
                a.ret();
                a.bind(timer);
                a.ldi(R18, 0x77);
                a.sts(state, R18); // certified: own segment
                a.sts(foreign, R18); // never certified: cross-domain
                a.ret();
            }),
        }
    };
    let run = |prove: bool| {
        let mut sys = SosSystem::build(Protection::Umpu, &[wild(2)], scheduler_app).unwrap();
        if prove {
            sys.set_prove(true);
        }
        sys.boot().unwrap();
        sys.post(DomainId::num(2), MSG_TIMER);
        let err = sys.run_to_break(4_000_000).unwrap_err();
        let foreign = sys.layout.state_addr(5);
        (format!("{err:?}"), format!("{:?}", sys.fault_history()), sys.cycles(), sys.sram(foreign))
    };
    let (ref_err, ref_faults, ref_cycles, ref_foreign) = run(false);
    let (err, faults, cycles, foreign) = run(true);
    assert_eq!(err, ref_err, "fault divergence under elision");
    assert_eq!(faults, ref_faults, "fault-history divergence under elision");
    assert_eq!(cycles, ref_cycles, "cycle divergence under elision");
    assert_eq!(foreign, ref_foreign, "foreign-byte divergence under elision");
    assert_eq!(foreign, 0, "the wild store must never land");
}

/// Boots an SFI system, hot-loads `stress_store` under `policy`, delivers
/// its init, then measures one timer tick. Returns (tick cycles, tick
/// count byte, fault count).
fn sfi_tick(policy: LoadPolicy) -> (u64, u8, usize) {
    let mut sys = SosSystem::build(Protection::Sfi, &[], scheduler_app).unwrap();
    sys.boot().unwrap();
    sys.set_load_policy(Some(policy));
    sys.load_module(&modules::stress_store(2)).expect("stress_store admitted");
    sys.steer(sys.symbol("ker_boot_done") + 1);
    sys.run_to_break(10_000_000).unwrap(); // deliver MSG_INIT
    let before = sys.cycles();
    sys.post(DomainId::num(2), MSG_TIMER);
    sys.steer(sys.symbol("ker_boot_done") + 1);
    sys.run_to_break(10_000_000).unwrap();
    let state = sys.layout.state_addr(2);
    (sys.cycles() - before, sys.sram(state), sys.fault_history().len())
}

/// Under SFI, elision is allowed to change cycles — that is the win — but
/// nothing else: the elided build runs the same 256 stores per tick
/// measurably faster, with identical state and no faults.
#[test]
fn sfi_elision_is_faster_and_state_identical() {
    let (checked_cycles, checked_state, checked_faults) =
        sfi_tick(LoadPolicy::with_allotment(u16::MAX));
    let (elided_cycles, elided_state, elided_faults) =
        sfi_tick(LoadPolicy::with_allotment(u16::MAX).with_elision());
    assert_eq!(elided_state, checked_state, "state divergence under SFI elision");
    assert_eq!(elided_state, 1, "stress_store counted its tick");
    assert_eq!((checked_faults, elided_faults), (0, 0), "no faults on the legal workload");
    assert!(
        elided_cycles < checked_cycles,
        "elision must shed store-check cycles ({elided_cycles} >= {checked_cycles})"
    );
}

/// The SFI negative: a store the certificate cannot cover keeps its
/// dynamic check even under an eliding policy, and that check still traps
/// a cross-domain write.
#[test]
fn sfi_elision_still_traps_uncertified_wild_store() {
    let wild = ModuleSource {
        name: "fuzz",
        domain: DomainId::num(2),
        entries: vec!["sfi_wild_handler"],
        build: Box::new(|a, ctx| {
            use avr_core::isa::Reg;
            let state = ctx.state_addr;
            let foreign = ctx.layout.state_addr(5);
            let timer = a.label("sfi_wild_timer");
            a.here("sfi_wild_handler");
            a.cpi(Reg::R24, MSG_INIT);
            a.brne(timer);
            a.clr(R18);
            a.sts(state, R18);
            a.ret();
            a.bind(timer);
            a.ldi(R18, 0x99);
            a.sts(state, R18);
            a.sts(foreign, R18);
            a.ret();
        }),
    };
    let mut sys = SosSystem::build(Protection::Sfi, &[], scheduler_app).unwrap();
    sys.boot().unwrap();
    sys.set_load_policy(Some(LoadPolicy::with_allotment(u16::MAX).with_elision()));
    sys.load_module(&wild).expect("the wild module itself is admissible");
    sys.steer(sys.symbol("ker_boot_done") + 1);
    sys.run_to_break(10_000_000).unwrap(); // init: own-segment store only
    sys.post(DomainId::num(2), MSG_TIMER);
    sys.steer(sys.symbol("ker_boot_done") + 1);
    let r = sys.run_to_break(10_000_000);
    assert!(
        r.is_err() || !sys.fault_history().is_empty(),
        "the uncertified wild store must trap dynamically"
    );
    let foreign = sys.layout.state_addr(5);
    assert_eq!(sys.sram(foreign), 0, "the wild store must never land");
}
