//! The turbo engine's contract at system level: enabling `harbor-turbo` on
//! a full mini-SOS machine changes *nothing observable* — cycles,
//! instructions, debug output, SRAM, fault codes and the complete
//! protection-event stream are byte-identical to the reference interpreter,
//! across every protection build and through hot-load/unload flash churn.

use avr_core::Fault;
use harbor::{fault_code, DomainId};
use harbor_scope::ScopeSink;
use mini_sos::modules::{blink, consumer, producer, surge, tree_routing};
use mini_sos::{Protection, SosSystem, MSG_TIMER};

const BUILDS: [Protection; 3] = [Protection::None, Protection::Sfi, Protection::Umpu];

fn pipeline(p: Protection, turbo: bool) -> SosSystem {
    let mods = [blink(0), producer(1, 2), consumer(2, 1)];
    let mut sys = SosSystem::build(p, &mods, |a, api| {
        api.run_scheduler(a);
        a.brk();
    })
    .unwrap();
    sys.set_turbo(turbo);
    sys.boot().unwrap();
    sys
}

fn drive(sys: &mut SosSystem, rounds: usize) {
    for _ in 0..rounds {
        sys.post(DomainId::num(0), MSG_TIMER);
        sys.post(DomainId::num(1), MSG_TIMER);
        sys.run_slice(1_000_000).unwrap();
    }
}

/// The headline invariant: for every protection build, the turbo run of the
/// message pipeline retires the same instructions in the same cycles with
/// the same output, SRAM state and trace events as the reference run.
#[test]
fn turbo_is_cycle_and_event_identical_across_builds() {
    for p in BUILDS {
        let mut reference = pipeline(p, false);
        let mut turbo = pipeline(p, true);
        assert!(!reference.turbo_enabled() && turbo.turbo_enabled());
        reference.attach_scope(ScopeSink::stream());
        turbo.attach_scope(ScopeSink::stream());
        drive(&mut reference, 6);
        drive(&mut turbo, 6);
        assert_eq!(reference.cycles(), turbo.cycles(), "{p:?}: cycles diverged");
        assert_eq!(reference.instructions(), turbo.instructions(), "{p:?}: instructions");
        assert_eq!(reference.debug_out(), turbo.debug_out(), "{p:?}: output diverged");
        for dom in 0..3 {
            let at = reference.layout.state_addr(dom);
            assert_eq!(reference.sram(at), turbo.sram(at), "{p:?}: dom{dom} state");
        }
        assert_eq!(
            reference.take_scope().unwrap().events(),
            turbo.take_scope().unwrap().events(),
            "{p:?}: protection-event streams diverged"
        );
        // ...and the fast path actually ran (not everything fell back).
        let stats = turbo.turbo_stats().unwrap();
        assert!(stats.blocks_built > 0, "{p:?}: no blocks decoded");
        assert!(stats.cached > stats.fallback, "{p:?}: cache barely used");
    }
}

/// The war-story fault path (Surge calling an absent Tree Routing) must
/// fault, recover and refault identically under turbo: same fault codes at
/// the same cycle stamps, in the history and in the trace.
#[test]
fn turbo_fault_recover_refault_is_identical() {
    for p in [Protection::Sfi, Protection::Umpu] {
        let mk = |turbo: bool| {
            let mut sys = SosSystem::build(p, &[surge(3, 2)], |a, api| {
                api.run_scheduler(a);
                a.brk();
            })
            .unwrap();
            sys.set_turbo(turbo);
            sys.boot().unwrap();
            sys.attach_scope(ScopeSink::stream());
            for _ in 0..2 {
                sys.post(DomainId::num(3), MSG_TIMER);
                sys.run_slice(1_000_000).expect_err("surge must fault");
                sys.recover_from_fault();
            }
            sys
        };
        let mut reference = mk(false);
        let mut turbo = mk(true);
        assert_eq!(reference.cycles(), turbo.cycles(), "{p:?}: cycles diverged");
        let rh = reference.fault_history().to_vec();
        let th = turbo.fault_history().to_vec();
        assert_eq!(rh.len(), 2, "{p:?}: both faults recorded");
        assert_eq!(rh, th, "{p:?}: fault histories diverged");
        assert_eq!(rh[0].code, fault_code::MEM_MAP, "{p:?}");
        assert_eq!(
            reference.take_scope().unwrap().events(),
            turbo.take_scope().unwrap().events(),
            "{p:?}: event streams diverged across fault + recovery"
        );
    }
}

/// Hot-loading and unloading modules rewrites flash at runtime; each write
/// must bump the generation counter, invalidate the turbo cache, and leave
/// the turbo run indistinguishable from the reference run.
#[test]
fn hot_load_unload_invalidates_and_stays_identical() {
    for p in [Protection::Sfi, Protection::Umpu] {
        let scenario = |turbo: bool| -> SosSystem {
            let mut sys = SosSystem::build(p, &[surge(1, 3)], |a, api| {
                api.run_scheduler(a);
                a.brk();
            })
            .unwrap();
            sys.set_turbo(turbo);
            sys.boot().unwrap();
            sys.run_to_break(10_000_000).unwrap();
            // Fault (no Tree Routing), recover, hot-load it, sample again,
            // then unload and take the error-stub fault once more.
            sys.post(DomainId::num(1), MSG_TIMER);
            sys.steer(sys.symbol("ker_boot_done") + 1);
            let err = sys.run_to_break(10_000_000).unwrap_err();
            assert!(matches!(err, Fault::Env(e) if e.code == fault_code::MEM_MAP), "{p:?}");
            sys.recover_from_fault();
            sys.load_module(&tree_routing(3)).unwrap();
            sys.post(DomainId::num(1), MSG_TIMER);
            sys.steer(sys.symbol("ker_boot_done") + 1);
            sys.run_to_break(10_000_000).unwrap();
            sys.unload_module(DomainId::num(3));
            sys.post(DomainId::num(1), MSG_TIMER);
            sys.steer(sys.symbol("ker_boot_done") + 1);
            sys.run_to_break(10_000_000).unwrap_err();
            sys.recover_from_fault();
            sys
        };
        let reference = scenario(false);
        let turbo = scenario(true);
        assert_eq!(reference.cycles(), turbo.cycles(), "{p:?}: cycles diverged");
        assert_eq!(reference.instructions(), turbo.instructions(), "{p:?}");
        assert_eq!(reference.fault_history().to_vec(), turbo.fault_history().to_vec(), "{p:?}");
        let state = reference.layout.state_addr(1);
        let (rbuf, tbuf) = (reference.sram16(state), turbo.sram16(state));
        assert_eq!(rbuf, tbuf, "{p:?}: surge state diverged");
        assert_eq!(reference.sram(rbuf + 2), turbo.sram(tbuf + 2), "{p:?}: sample diverged");
        // Every flash write (module burn + jump-table relink) bumped the
        // generation, and the engine invalidated on each change it saw.
        assert!(turbo.flash_generation() >= 4, "{p:?}: load + unload churn counted");
        assert_eq!(reference.flash_generation(), turbo.flash_generation(), "{p:?}");
        let stats = turbo.turbo_stats().unwrap();
        assert!(stats.invalidations >= 2, "{p:?}: hot-load churn must invalidate");
    }
}

/// `run_profiled` intentionally stays on the reference interpreter (it
/// observes per-instruction PC), so a turbo system still profiles exactly.
#[test]
fn profiled_runs_agree_with_turbo_runs() {
    let mut turbo = pipeline(Protection::Umpu, true);
    let mut reference = pipeline(Protection::Umpu, false);
    drive(&mut turbo, 3);
    drive(&mut reference, 3);
    assert_eq!(reference.cycles(), turbo.cycles());
}
