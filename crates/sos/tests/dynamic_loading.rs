//! Runtime module loading and unloading — SOS's signature capability, and
//! the exact deployment scenario of the paper's war story: "the
//! cross-domain function call fails under the rare condition when the
//! Surge module is loaded on a node before the Tree routing module".

use avr_core::Fault;
use harbor::{fault_code, DomainId};
use mini_sos::kernel::MSG_TIMER;
use mini_sos::{modules, Protection, SosSystem};

const ALL: [Protection; 3] = [Protection::None, Protection::Umpu, Protection::Sfi];
const PROTECTED: [Protection; 2] = [Protection::Umpu, Protection::Sfi];

fn scheduler_app(a: &mut avr_asm::Asm, api: &mini_sos::KernelApi) {
    api.run_scheduler(a);
    a.brk();
}

/// Re-enters the driver loop and drains the queue.
fn drain(sys: &mut SosSystem) -> Result<(), Fault> {
    sys.steer(sys.symbol("ker_boot_done") + 1);
    sys.run_to_break(10_000_000).map(|_| ())
}

#[test]
fn late_loading_tree_routing_resolves_the_war_story() {
    // Surge alone: under protection, sampling faults. Then Tree Routing is
    // hot-loaded — exactly what the deployment should have done — and the
    // next sample succeeds.
    for p in PROTECTED {
        let mut sys = SosSystem::build(p, &[modules::surge(1, 3)], scheduler_app).unwrap();
        sys.boot().unwrap();
        sys.run_to_break(10_000_000).unwrap(); // deliver init

        // Tick 1: caught.
        sys.post(DomainId::num(1), MSG_TIMER);
        let err = drain(&mut sys).unwrap_err();
        match err {
            Fault::Env(e) => assert_eq!(e.code, fault_code::MEM_MAP, "{p:?}"),
            other => panic!("{p:?}: {other:?}"),
        }

        // The kernel's exception handler restores a clean trusted context.
        sys.recover_from_fault();

        // Hot-load Tree Routing; its init message runs first, then tick 2
        // samples successfully.
        sys.load_module(&modules::tree_routing(3)).unwrap();
        sys.post(DomainId::num(1), MSG_TIMER);
        drain(&mut sys).unwrap_or_else(|e| panic!("{p:?} after load: {e}"));

        let state = sys.layout.state_addr(1);
        let buf = sys.sram16(state);
        assert_eq!(sys.sram(buf + 2), 2, "{p:?}: post-load sample stored at offset 2");
    }
}

#[test]
fn runtime_load_works_on_a_bare_system() {
    for p in ALL {
        let mut sys = SosSystem::build(p, &[], scheduler_app).unwrap();
        sys.boot().unwrap();
        sys.load_module(&modules::blink(0)).unwrap();
        sys.post(DomainId::num(0), MSG_TIMER);
        sys.post(DomainId::num(0), MSG_TIMER);
        drain(&mut sys).unwrap_or_else(|e| panic!("{p:?}: {e}"));
        assert_eq!(sys.sram(sys.layout.state_addr(0)), 2, "{p:?}");
    }
}

#[test]
fn unload_redirects_calls_to_the_error_stub() {
    // Surge + Tree running fine; unload Tree; the next sample takes the
    // 0xff error path — caught under protection, silent corruption without.
    for p in PROTECTED {
        let mods = [modules::tree_routing(3), modules::surge(1, 3)];
        let mut sys = SosSystem::build(p, &mods, scheduler_app).unwrap();
        sys.boot().unwrap();
        sys.run_to_break(10_000_000).unwrap();
        sys.post(DomainId::num(1), MSG_TIMER);
        drain(&mut sys).unwrap();

        sys.unload_module(DomainId::num(3));
        sys.post(DomainId::num(1), MSG_TIMER);
        let err = drain(&mut sys).unwrap_err();
        match err {
            Fault::Env(e) => assert_eq!(e.code, fault_code::MEM_MAP, "{p:?}"),
            other => panic!("{p:?}: {other:?}"),
        }
    }
}

#[test]
fn unload_reclaims_every_owned_block() {
    // The producer owns heap buffers and its state segment; unloading must
    // return them all to the free pool — the memory map makes that
    // possible.
    for p in PROTECTED {
        // A producer with no consumer: its buffers accumulate.
        let mods = [modules::producer(1, 4)];
        let mut sys = SosSystem::build(p, &mods, scheduler_app).unwrap();
        sys.boot().unwrap();
        sys.run_to_break(10_000_000).unwrap();
        for _ in 0..3 {
            sys.post(DomainId::num(1), MSG_TIMER);
            drain(&mut sys).unwrap();
        }

        let owned_blocks = |sys: &SosSystem| -> usize {
            let cfg = harbor::MemMapConfig::new(
                harbor::DomainMode::Multi,
                harbor::BlockSize::new(sys.layout.block_bytes()).unwrap(),
                sys.layout.prot.prot_bottom,
                sys.layout.prot.prot_top,
            )
            .unwrap();
            let base = sys.layout.prot.mem_map_base;
            let bytes: Vec<u8> = (0..cfg.map_size_bytes()).map(|i| sys.sram(base + i)).collect();
            let map = harbor::MemoryMap::from_raw(cfg, bytes);
            (0..cfg.num_blocks()).filter(|&b| map.record(b).owner == DomainId::num(1)).count()
        };
        assert!(owned_blocks(&sys) >= 4, "{p:?}: buffers + state accumulated");

        sys.unload_module(DomainId::num(1));
        assert_eq!(owned_blocks(&sys), 0, "{p:?}: everything reclaimed");

        // The freed blocks are allocatable again: load a fresh module into
        // the same domain and let it malloc.
        sys.load_module(&modules::surge(1, 3)).unwrap();
        drain(&mut sys).unwrap();
        let buf = sys.sram16(sys.layout.state_addr(1));
        assert_ne!(buf, 0, "{p:?}: reloaded module allocated from the reclaimed pool");
    }
}

#[test]
fn unprotected_unload_leaks_by_construction() {
    // Without the memory map there is no record of what the module owned:
    // its buffers stay marked used in the allocator bitmap forever.
    let mods = [modules::producer(1, 4)];
    let mut sys = SosSystem::build(Protection::None, &mods, scheduler_app).unwrap();
    sys.boot().unwrap();
    sys.run_to_break(10_000_000).unwrap();
    sys.post(DomainId::num(1), MSG_TIMER);
    drain(&mut sys).unwrap();

    let used_bits = |sys: &SosSystem| -> u32 {
        (0..31u16).map(|i| sys.sram(sys.layout.alloc_bitmap + i).count_ones()).sum()
    };
    let before = used_bits(&sys);
    assert!(before > 0);
    sys.unload_module(DomainId::num(1));
    assert_eq!(used_bits(&sys), before, "the unprotected build cannot reclaim");
}
