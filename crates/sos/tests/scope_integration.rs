//! Integration of harbor-scope with the full mini-SOS system: attaching a
//! sink must never perturb the simulated machine, faults must land in the
//! trace and the fault history across recoveries, and the per-domain cycle
//! profiler must attribute exactly what the workload did.

use harbor::DomainId;
use harbor_scope::{DomainProfiler, Event, EventKind, Mechanism, ScopeSink};
use mini_sos::modules::{blink, consumer, producer, surge};
use mini_sos::{modules, Protection, SosSystem, MSG_TIMER};

const BUILDS: [Protection; 3] = [Protection::None, Protection::Sfi, Protection::Umpu];

fn pipeline(p: Protection) -> SosSystem {
    let mods = [blink(0), producer(1, 2), consumer(2, 1)];
    let mut sys = SosSystem::build(p, &mods, |a, api| {
        api.run_scheduler(a);
        a.brk();
    })
    .unwrap();
    sys.boot().unwrap();
    sys
}

fn drive(sys: &mut SosSystem, rounds: usize) {
    for _ in 0..rounds {
        sys.post(DomainId::num(0), MSG_TIMER);
        sys.post(DomainId::num(1), MSG_TIMER);
        sys.run_slice(1_000_000).unwrap();
    }
}

/// The tentpole's zero-cost guarantee: for every protection build, the same
/// workload with a sink attached retires the same instructions in the same
/// number of cycles with the same output as a bare run.
#[test]
fn attaching_a_sink_is_cycle_identical() {
    for p in BUILDS {
        let mut bare = pipeline(p);
        let mut traced = pipeline(p);
        traced.attach_scope(ScopeSink::stream());
        drive(&mut bare, 6);
        drive(&mut traced, 6);
        assert_eq!(bare.cycles(), traced.cycles(), "{p:?}: cycles diverged");
        assert_eq!(bare.instructions(), traced.instructions(), "{p:?}: instructions diverged");
        assert_eq!(bare.debug_out(), traced.debug_out(), "{p:?}: output diverged");
        assert_eq!(bare.sram(bare.layout.state_addr(0)), traced.sram(traced.layout.state_addr(0)));
        // ...and the traced run actually observed something.
        assert!(traced.scope().unwrap().recorded() > 0, "{p:?}: no events recorded");
    }
}

/// A ring sink under pressure drops old event bodies but must not perturb
/// the machine either, and its per-kind counts stay exact.
#[test]
fn ring_sink_under_pressure_is_also_identical() {
    let mut bare = pipeline(Protection::Umpu);
    let mut ring = pipeline(Protection::Umpu);
    ring.attach_scope(ScopeSink::ring(16));
    drive(&mut bare, 6);
    drive(&mut ring, 6);
    assert_eq!(bare.cycles(), ring.cycles());
    let sink = ring.take_scope().unwrap();
    assert!(sink.dropped() > 0, "16 slots must overflow on this workload");
    let counted: u64 = sink.kind_counts().as_array().iter().sum();
    assert_eq!(counted, sink.recorded(), "kind counts survive drops");
}

/// The war-story fault (Surge using the unchecked 0xff error return as a
/// buffer offset) must appear in both the fault history and the trace, and
/// recovery must leave the system able to fault cleanly again.
#[test]
fn fault_recover_refault_history_and_trace() {
    for p in [Protection::Sfi, Protection::Umpu] {
        // No tree-routing module installed: the cross-domain call lands on
        // the jump table's error stub.
        let mods = [surge(3, 2)];
        let mut sys = SosSystem::build(p, &mods, |a, api| {
            api.run_scheduler(a);
            a.brk();
        })
        .unwrap();
        sys.boot().unwrap();
        sys.attach_scope(ScopeSink::stream());
        assert!(sys.fault_history().is_empty());

        sys.post(DomainId::num(3), MSG_TIMER);
        sys.run_slice(1_000_000).expect_err("surge must fault");
        assert_eq!(sys.fault_history().len(), 1, "{p:?}: first fault recorded");
        sys.recover_from_fault();

        sys.post(DomainId::num(3), MSG_TIMER);
        sys.run_slice(1_000_000).expect_err("surge must refault after recovery");
        assert_eq!(sys.fault_history().len(), 2, "{p:?}: refault recorded");
        sys.recover_from_fault();

        let first = sys.fault_history()[0];
        let second = sys.fault_history()[1];
        assert_eq!(first.code, second.code, "{p:?}: same bug, same fault code");
        assert!(second.cycles > first.cycles);

        let events = sys.take_scope().unwrap().events();
        let faults = events.iter().filter(|e| matches!(e, Event::Fault { .. })).count();
        let recoveries = events.iter().filter(|e| matches!(e, Event::Recovery { .. })).count();
        assert!(faults >= 2, "{p:?}: trace shows both faults");
        assert_eq!(recoveries, 2, "{p:?}: trace shows both recoveries");
    }
}

/// Under UMPU the fixed workload has a known cross-domain call count: one
/// init dispatch plus one per timer message, each matched by a return.
#[test]
fn umpu_cross_domain_edges_count_the_workload() {
    let rounds = 5u64;
    let mut sys = SosSystem::build(Protection::Umpu, &[modules::blink(0)], |a, api| {
        api.run_scheduler(a);
        a.brk();
    })
    .unwrap();
    sys.boot().unwrap();
    sys.attach_scope(ScopeSink::stream());
    for _ in 0..rounds {
        sys.post(DomainId::num(0), MSG_TIMER);
        sys.run_slice(1_000_000).unwrap();
    }
    let sink = sys.take_scope().unwrap();
    let counts = sink.kind_counts();
    assert_eq!(counts.get(EventKind::CrossDomainCall), rounds + 1, "init + one per timer");
    assert_eq!(counts.get(EventKind::CrossDomainRet), rounds + 1);
    assert_eq!(counts.get(EventKind::JumpTableDispatch), rounds + 1);
    // Blink's handler stores to its state block each delivery: the memory
    // map arbitrated at least that many stores.
    assert!(counts.get(EventKind::MemMapCheck) >= rounds);
}

/// Profiler attribution: totals reconcile exactly with the cycle counter,
/// every module domain shows app cycles, and under UMPU the crossing total
/// books exactly 10 stall cycles per dispatched call (5 call + 5 ret) plus
/// the jump-table instructions themselves.
#[test]
fn profiler_attributes_every_cycle() {
    for p in BUILDS {
        let mut sys = pipeline(p);
        sys.attach_scope(ScopeSink::stream());
        let mut prof = DomainProfiler::new(sys.scope_region_map(), sys.cycles());
        let start = sys.cycles();
        for _ in 0..4 {
            sys.post(DomainId::num(0), MSG_TIMER);
            sys.post(DomainId::num(1), MSG_TIMER);
            sys.run_slice_profiled(&mut prof, 1_000_000).unwrap();
        }
        let report = prof.report();
        assert_eq!(report.total, sys.cycles() - start, "{p:?}: unattributed cycles");
        assert_eq!(
            report.rows.iter().map(|r| r.cycles).sum::<u64>(),
            report.total,
            "{p:?}: rows sum to total"
        );
        for dom in [0u8, 1, 2] {
            assert!(report.cycles(dom, Mechanism::App) > 0, "{p:?}: dom{dom} ran app code");
        }
        assert!(
            report.cycles(DomainId::TRUSTED.index(), Mechanism::Kernel) > 0,
            "{p:?}: kernel cycles attributed"
        );
        match p {
            // Stock AVR burns no cycles on checks.
            Protection::None => assert_eq!(report.mechanism_total(Mechanism::Check), 0),
            // SFI's rewriting spends real instructions in check stubs.
            Protection::Sfi => assert!(report.mechanism_total(Mechanism::Check) > 0),
            // UMPU's hardware stalls every protected store one cycle.
            Protection::Umpu => assert!(report.mechanism_total(Mechanism::Check) > 0),
        }
        assert!(report.mechanism_total(Mechanism::Crossing) > 0, "{p:?}: crossings attributed");
    }
}

/// Under UMPU the stall cycles booked to crossings scale linearly with the
/// number of cross-domain calls: each extra timer round adds exactly one
/// call + return (10 stall cycles) along the same jump-table path.
#[test]
fn umpu_crossing_stalls_scale_with_call_count() {
    let crossing_for = |rounds: usize| {
        let mut sys = SosSystem::build(Protection::Umpu, &[modules::blink(0)], |a, api| {
            api.run_scheduler(a);
            a.brk();
        })
        .unwrap();
        sys.boot().unwrap();
        sys.attach_scope(ScopeSink::stream());
        let mut prof = DomainProfiler::new(sys.scope_region_map(), sys.cycles());
        for _ in 0..rounds {
            sys.post(DomainId::num(0), MSG_TIMER);
            sys.run_slice_profiled(&mut prof, 1_000_000).unwrap();
        }
        let calls = sys.scope().unwrap().kind_counts().get(EventKind::CrossDomainCall);
        (calls, prof.report().cycles(0, Mechanism::Crossing))
    };
    let (calls3, cross3) = crossing_for(3);
    let (calls5, cross5) = crossing_for(5);
    assert_eq!(calls5 - calls3, 2);
    let per_call = (cross5 - cross3) / 2;
    assert_eq!(cross5 - cross3, per_call * 2, "per-call crossing cost is constant");
    // Each call costs at least the 10 hardware stall cycles.
    assert!(per_call >= 10, "per-call crossing cost {per_call} < hardware stalls");
}
