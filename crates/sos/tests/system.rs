//! Full-system tests: boot mini-SOS under all three protection builds, run
//! module workloads through the scheduler, and reproduce the paper's
//! Surge / Tree-Routing memory-corruption war story.

use avr_core::Fault;
use harbor::{fault_code, DomainId};
use mini_sos::kernel::MSG_TIMER;
use mini_sos::modules;
use mini_sos::{JtEntry, Protection, SosSystem};

const ALL: [Protection; 3] = [Protection::None, Protection::Umpu, Protection::Sfi];
const PROTECTED: [Protection; 2] = [Protection::Umpu, Protection::Sfi];

/// Scratch where driver apps deposit results (kernel spare RAM).
const OUT: u16 = 0x01ee;

fn run_scheduler_app(a: &mut avr_asm::Asm, api: &mini_sos::KernelApi) {
    api.run_scheduler(a);
    a.brk();
}

#[test]
fn boot_and_blink_under_all_builds() {
    for p in ALL {
        let mut sys = SosSystem::build(p, &[modules::blink(0)], run_scheduler_app)
            .unwrap_or_else(|e| panic!("{p:?}: {e}"));
        sys.boot().unwrap_or_else(|e| panic!("{p:?} boot: {e}"));
        // Three timer ticks on top of the init message.
        for _ in 0..3 {
            sys.post(DomainId::num(0), MSG_TIMER);
        }
        sys.run_to_break(2_000_000).unwrap_or_else(|e| panic!("{p:?} run: {e}"));
        let state = sys.layout.state_addr(0);
        assert_eq!(sys.sram(state), 3, "{p:?}: blink counted its ticks");
    }
}

#[test]
fn kernel_malloc_updates_the_memory_map() {
    for p in PROTECTED {
        let mut sys = SosSystem::build(p, &[], |a, api| {
            use avr_core::isa::Reg;
            // a = malloc(10, dom1)
            a.ldi(Reg::R24, 10);
            a.ldi(Reg::R22, 1);
            api.call_kernel(a, JtEntry::Malloc);
            a.sts(OUT, Reg::R24);
            a.sts(OUT + 1, Reg::R25);
            // b = malloc(20, dom2)
            a.ldi(Reg::R24, 20);
            a.ldi(Reg::R22, 2);
            api.call_kernel(a, JtEntry::Malloc);
            a.sts(OUT + 2, Reg::R24);
            a.sts(OUT + 3, Reg::R25);
            // free(a)  (trusted may free anything)
            a.lds(Reg::R24, OUT);
            a.lds(Reg::R25, OUT + 1);
            api.call_kernel(a, JtEntry::Free);
            a.sts(OUT + 4, Reg::R24); // status
            a.brk();
        })
        .unwrap();
        sys.boot().unwrap();
        sys.run_to_break(2_000_000).unwrap_or_else(|e| panic!("{p:?}: {e}"));

        let a_ptr = sys.sram16(OUT);
        let b_ptr = sys.sram16(OUT + 2);
        assert_ne!(a_ptr, 0, "{p:?}: first malloc succeeded");
        assert_ne!(b_ptr, 0, "{p:?}: second malloc succeeded");
        assert_eq!(sys.sram(OUT + 4), 0, "{p:?}: free succeeded");
        assert!(b_ptr > a_ptr, "{p:?}: first-fit placement");

        // The RAM-resident memory map must agree with the golden model run
        // through the same operations.
        let view = match p {
            Protection::Umpu => sys.umpu_env().unwrap().memory_map_view(),
            Protection::Sfi => {
                let rt = sys.runtime.as_ref().unwrap();
                // Read through the public accessor into a golden view.
                let cfg = rt.memmap_config();
                let base = sys.layout.prot.mem_map_base;
                let bytes: Vec<u8> =
                    (0..cfg.map_size_bytes()).map(|i| sys.sram(base + i)).collect();
                harbor::MemoryMap::from_raw(cfg, bytes)
            }
            Protection::None => unreachable!(),
        };
        // a was freed: its header block is free again.
        assert_eq!(view.owner_of(a_ptr - 2).unwrap(), DomainId::TRUSTED, "{p:?}");
        // b belongs to dom2, with a start flag on its header block.
        assert_eq!(view.owner_of(b_ptr - 2).unwrap(), DomainId::num(2), "{p:?}");
        assert!(view.is_segment_start(b_ptr - 2).unwrap(), "{p:?}");
        // 20 B + 2 header = 3 blocks.
        assert_eq!(view.segment_blocks(b_ptr - 2).unwrap(), 3, "{p:?}");
    }
}

#[test]
fn surge_with_tree_routing_collects_samples_everywhere() {
    for p in ALL {
        let mods = [modules::tree_routing(3), modules::surge(1, 3)];
        let mut sys = SosSystem::build(p, &mods, run_scheduler_app).unwrap();
        sys.boot().unwrap();
        sys.post(DomainId::num(1), MSG_TIMER);
        sys.post(DomainId::num(1), MSG_TIMER);
        sys.run_to_break(4_000_000).unwrap_or_else(|e| panic!("{p:?}: {e}"));

        let state = sys.layout.state_addr(1);
        let buf = sys.sram16(state);
        assert_ne!(buf, 0, "{p:?}: surge allocated its buffer");
        assert_eq!(sys.sram(state + 2), 2, "{p:?}: two samples taken");
        // Samples land at buffer[parent offset = 2].
        assert_eq!(sys.sram(buf + 2), 2, "{p:?}: latest sample stored");
    }
}

#[test]
fn surge_without_tree_corrupts_silently_on_stock_avr() {
    // The paper's war story, unprotected: the failed cross-domain call
    // returns 0xff, and Surge writes the sample 255 bytes past its buffer.
    let mut sys =
        SosSystem::build(Protection::None, &[modules::surge(1, 3)], run_scheduler_app).unwrap();
    sys.boot().unwrap();
    sys.post(DomainId::num(1), MSG_TIMER);
    sys.run_to_break(4_000_000).unwrap();

    let state = sys.layout.state_addr(1);
    let buf = sys.sram16(state);
    let wild = buf + 0xff;
    assert_eq!(sys.sram(wild), 1, "the sample landed 255 bytes out of bounds");
}

#[test]
fn surge_without_tree_is_caught_by_protection() {
    // The same fault under UMPU and SFI: detected and blocked.
    for p in PROTECTED {
        let mut sys = SosSystem::build(p, &[modules::surge(1, 3)], run_scheduler_app).unwrap();
        sys.boot().unwrap();
        sys.post(DomainId::num(1), MSG_TIMER);
        let err = sys.run_to_break(4_000_000).unwrap_err();
        match err {
            Fault::Env(e) => assert_eq!(e.code, fault_code::MEM_MAP, "{p:?}"),
            other => panic!("{p:?}: expected protection fault, got {other:?}"),
        }
        // And the wild byte was never written.
        let state = sys.layout.state_addr(1);
        let buf = sys.sram16(state);
        assert_eq!(sys.sram(buf + 0xff), 0, "{p:?}: store blocked");
    }
}

#[test]
fn surge_fixed_survives_missing_tree_everywhere() {
    for p in ALL {
        let mut sys =
            SosSystem::build(p, &[modules::surge_fixed(1, 3)], run_scheduler_app).unwrap();
        sys.boot().unwrap();
        sys.post(DomainId::num(1), MSG_TIMER);
        sys.run_to_break(4_000_000).unwrap_or_else(|e| panic!("{p:?}: {e}"));
        let state = sys.layout.state_addr(1);
        assert_eq!(sys.sram(state + 2), 0, "{p:?}: sample dropped, no corruption");
    }
}

#[test]
fn free_by_non_owner_is_refused_under_protection() {
    // dom2 mallocs on init; dom4 (the thief) tries to free dom2's buffer on
    // its timer message and records the kernel's answer.
    fn owner_module(dom: u8) -> mini_sos::ModuleSource {
        mini_sos::ModuleSource {
            name: "owner",
            domain: DomainId::num(dom),
            entries: vec!["own_handler"],
            build: Box::new(move |a, ctx| {
                use avr_core::isa::Reg;
                let done = a.label("own_done");
                a.here("own_handler");
                a.cpi(Reg::R24, mini_sos::MSG_INIT);
                a.brne(done);
                a.ldi(Reg::R24, 8);
                a.ldi(Reg::R22, ctx.domain.index());
                ctx.call_kernel(a, JtEntry::Malloc);
                a.sts(ctx.state_addr, Reg::R24);
                a.sts(ctx.state_addr + 1, Reg::R25);
                a.bind(done);
                a.ret();
            }),
        }
    }
    fn thief_module(dom: u8, victim_state: u16) -> mini_sos::ModuleSource {
        mini_sos::ModuleSource {
            name: "thief",
            domain: DomainId::num(dom),
            entries: vec!["thief_handler"],
            build: Box::new(move |a, ctx| {
                use avr_core::isa::Reg;
                let done = a.label("thief_done");
                a.here("thief_handler");
                a.cpi(Reg::R24, MSG_TIMER);
                a.brne(done);
                a.lds(Reg::R24, victim_state); // reads are unrestricted
                a.lds(Reg::R25, victim_state + 1);
                ctx.call_kernel(a, JtEntry::Free);
                a.sts(ctx.state_addr, Reg::R24); // record the status
                a.bind(done);
                a.ret();
            }),
        }
    }

    for p in PROTECTED {
        let layout = mini_sos::SosLayout::default_layout();
        let mods = [owner_module(2), thief_module(4, layout.state_addr(2))];
        let mut sys = SosSystem::build(p, &mods, run_scheduler_app).unwrap();
        sys.boot().unwrap();
        sys.post(DomainId::num(4), MSG_TIMER);
        sys.run_to_break(4_000_000).unwrap_or_else(|e| panic!("{p:?}: {e}"));

        let thief_state = sys.layout.state_addr(4);
        assert_eq!(sys.sram(thief_state), 0xff, "{p:?}: kernel refused the rogue free");
        // The victim's buffer is still owned by dom2.
        let victim_buf = sys.sram16(sys.layout.state_addr(2));
        let owner = match p {
            Protection::Umpu => {
                sys.umpu_env().unwrap().memory_map_view().owner_of(victim_buf - 2).unwrap()
            }
            Protection::Sfi => {
                let rt = sys.runtime.as_ref().unwrap();
                let cfg = rt.memmap_config();
                let base = sys.layout.prot.mem_map_base;
                let bytes: Vec<u8> =
                    (0..cfg.map_size_bytes()).map(|i| sys.sram(base + i)).collect();
                harbor::MemoryMap::from_raw(cfg, bytes).owner_of(victim_buf - 2).unwrap()
            }
            Protection::None => unreachable!(),
        };
        assert_eq!(owner, DomainId::num(2), "{p:?}: segment ownership intact");
    }
}

#[test]
fn protection_overhead_ordering_on_the_blink_workload() {
    // The macro shape: UMPU costs a little more than no protection; SFI
    // costs much more than UMPU.
    let mut cycles = Vec::new();
    for p in ALL {
        let mut sys = SosSystem::build(p, &[modules::blink(0)], run_scheduler_app).unwrap();
        sys.boot().unwrap();
        let booted = sys.cycles();
        for _ in 0..8 {
            sys.post(DomainId::num(0), MSG_TIMER);
        }
        sys.run_to_break(4_000_000).unwrap();
        cycles.push((p, sys.cycles() - booted));
    }
    let (none, umpu, sfi) = (cycles[0].1, cycles[1].1, cycles[2].1);
    assert!(umpu > none, "UMPU adds overhead: {none} vs {umpu}");
    assert!(sfi > umpu, "SFI costs more than UMPU: {umpu} vs {sfi}");
    let umpu_ovh = umpu as f64 / none as f64;
    let sfi_ovh = sfi as f64 / none as f64;
    assert!(umpu_ovh < 1.35, "UMPU overhead is small ({umpu_ovh:.2}x)");
    assert!(sfi_ovh > 1.25, "SFI overhead is substantial ({sfi_ovh:.2}x)");
}

#[test]
fn snapshots_replay_deterministically() {
    // The machine is a value: cloning it forks the entire state, and the
    // simulator is deterministic, so both forks evolve identically.
    let mut sys =
        SosSystem::build(Protection::Umpu, &[modules::blink(0)], run_scheduler_app).unwrap();
    sys.boot().unwrap();
    for _ in 0..2 {
        sys.post(DomainId::num(0), MSG_TIMER);
    }
    let snapshot = sys.clone();

    sys.run_to_break(2_000_000).unwrap();
    let mut replay = snapshot;
    replay.run_to_break(2_000_000).unwrap();

    assert_eq!(sys.cycles(), replay.cycles());
    assert_eq!(sys.pc(), replay.pc());
    assert_eq!(sys.sram(sys.layout.state_addr(0)), replay.sram(replay.layout.state_addr(0)));
}
