//! SOS's buffer-handoff pattern — the workload `change_own` exists for:
//! a producer allocates and fills a buffer, transfers ownership to the
//! consumer, and posts it a message. After the transfer the *producer* is
//! the one locked out: protection domains follow the data.

use avr_core::isa::{Ptr, PtrMode, Reg};
use avr_core::Fault;
use harbor::{fault_code, DomainId};
use mini_sos::kernel::MSG_TIMER;
use mini_sos::{JtEntry, ModuleSource, Protection, SosSystem};

const PRODUCER: u8 = 1;
const CONSUMER: u8 = 4;

/// Producer (dom 1): on its timer message, malloc(8) → fill → change_own to
/// the consumer → publish the pointer in its state → post the consumer.
/// With `poison_after_handoff`, it then writes the buffer once more — which
/// must fault under protection.
fn producer(poison_after_handoff: bool) -> ModuleSource {
    ModuleSource {
        name: "producer",
        domain: DomainId::num(PRODUCER),
        entries: vec!["prod_handler"],
        build: Box::new(move |a, ctx| {
            let state = ctx.state_addr; // [0..2] published buffer ptr
            let done = a.label("prod_done");
            a.here("prod_handler");
            a.cpi(Reg::R24, MSG_TIMER);
            a.brne(done);
            // buf = malloc(8, self)
            a.ldi(Reg::R24, 8);
            a.ldi(Reg::R22, PRODUCER);
            ctx.call_kernel(a, JtEntry::Malloc);
            a.sts(state, Reg::R24);
            a.sts(state + 1, Reg::R25);
            // *buf = 0x5a (we own it — allowed)
            a.mov(Reg::R26, Reg::R24);
            a.mov(Reg::R27, Reg::R25);
            a.ldi(Reg::R16, 0x5a);
            a.st(Ptr::X, PtrMode::Plain, Reg::R16);
            // change_own(buf, consumer)
            a.lds(Reg::R24, state);
            a.lds(Reg::R25, state + 1);
            a.ldi(Reg::R22, CONSUMER);
            ctx.call_kernel(a, JtEntry::ChangeOwn);
            if poison_after_handoff {
                // The bug under test: writing after the handoff.
                a.lds(Reg::R26, state);
                a.lds(Reg::R27, state + 1);
                a.ldi(Reg::R16, 0xbd);
                a.st(Ptr::X, PtrMode::Plain, Reg::R16);
            }
            // post(consumer, TIMER)
            a.ldi(Reg::R24, CONSUMER);
            a.ldi(Reg::R22, MSG_TIMER);
            ctx.call_kernel(a, JtEntry::Post);
            a.bind(done);
            a.ret();
        }),
    }
}

/// Consumer (dom 4): reads the published pointer from the producer's state
/// (reads are unrestricted), doubles the sample *in place* (it owns the
/// buffer now), records it, and frees the buffer (it is the owner).
fn consumer(producer_state: u16) -> ModuleSource {
    ModuleSource {
        name: "consumer",
        domain: DomainId::num(CONSUMER),
        entries: vec!["cons_handler"],
        build: Box::new(move |a, ctx| {
            let state = ctx.state_addr; // [0] sample, [1] free status
            let done = a.label("cons_done");
            a.here("cons_handler");
            a.cpi(Reg::R24, MSG_TIMER);
            a.brne(done);
            a.lds(Reg::R26, producer_state);
            a.lds(Reg::R27, producer_state + 1);
            a.ld(Reg::R16, Ptr::X, PtrMode::Plain);
            a.lsl(Reg::R16);
            a.st(Ptr::X, PtrMode::Plain, Reg::R16); // we own it now
            a.sts(state, Reg::R16);
            // free(buf) — we are the owner after the handoff.
            a.lds(Reg::R24, producer_state);
            a.lds(Reg::R25, producer_state + 1);
            ctx.call_kernel(a, JtEntry::Free);
            a.sts(state + 1, Reg::R24);
            a.bind(done);
            a.ret();
        }),
    }
}

fn build(p: Protection, poison: bool) -> SosSystem {
    let layout = mini_sos::SosLayout::default_layout();
    let mods = [producer(poison), consumer(layout.state_addr(PRODUCER))];
    let mut sys = SosSystem::build(p, &mods, |a, api| {
        api.run_scheduler(a);
        a.brk();
    })
    .expect("builds");
    sys.boot().expect("boot");
    sys.post(DomainId::num(PRODUCER), MSG_TIMER);
    sys
}

#[test]
fn handoff_works_under_every_build() {
    for p in [Protection::None, Protection::Umpu, Protection::Sfi] {
        let mut sys = build(p, false);
        sys.run_to_break(10_000_000).unwrap_or_else(|e| panic!("{p:?}: {e}"));
        let cons_state = sys.layout.state_addr(CONSUMER);
        assert_eq!(sys.sram(cons_state), 0xb4, "{p:?}: consumer doubled 0x5a in place");
        assert_eq!(sys.sram(cons_state + 1), 0, "{p:?}: consumer's free accepted");
    }
}

#[test]
fn producer_writing_after_handoff_is_caught() {
    for p in [Protection::Umpu, Protection::Sfi] {
        let mut sys = build(p, true);
        let err = sys.run_to_break(10_000_000).unwrap_err();
        match err {
            Fault::Env(e) => assert_eq!(e.code, fault_code::MEM_MAP, "{p:?}"),
            other => panic!("{p:?}: expected protection fault, got {other:?}"),
        }
        // The poison byte never landed.
        let buf = sys.sram16(sys.layout.state_addr(PRODUCER));
        assert_eq!(sys.sram(buf), 0x5a, "{p:?}: buffer contents intact");
    }
    // On the stock AVR, the stale write lands silently.
    let mut sys = build(Protection::None, true);
    sys.run_to_break(10_000_000).unwrap();
    let cons_state = sys.layout.state_addr(CONSUMER);
    // The consumer read the *poisoned* value: 0xbd doubled = 0x7a (mod 256).
    assert_eq!(sys.sram(cons_state), 0x7a, "silent corruption propagated downstream");
}
