//! `harbor-trace`: run a mini-SOS workload under each protection build with
//! a trace sink attached, and dump the protection-event trace (Perfetto
//! JSON), the per-domain cycle profile (the paper's Table-5-style
//! breakdown) and the metrics snapshot.
//!
//! ```sh
//! cargo run -p mini-sos --bin harbor-trace          # report + trace files
//! cargo run -p mini-sos --bin harbor-trace -- --json    # machine-readable
//! cargo run -p mini-sos --bin harbor-trace -- --check   # CI invariants
//! ```
//!
//! `--check` validates, per build: (1) attaching a sink leaves the
//! simulation byte-identical (cycles, instructions, debug output); (2)
//! cross-domain call/return edges balance and cycle stamps are monotone;
//! (3) profile totals reconcile exactly with the CPU cycle counter; (4)
//! faults land in the trace and the fault history, and recovery allows a
//! clean refault. Exits non-zero on any violation.

// The shared CLI helper lives with the other harbor-* binaries in the
// fleet crate; mini-sos sits below harbor-fleet in the dependency graph,
// so it includes the module by path instead of through a crate edge.
#[path = "../../../fleet/src/bin/cli.rs"]
mod cli;

use harbor::DomainId;
use harbor_scope::{export, DomainProfiler, Event, MetricsRegistry, ScopeSink};
use mini_sos::modules::{blink, consumer, producer, surge};
use mini_sos::{Protection, SosSystem, MSG_TIMER};
use std::process::ExitCode;

const ROUNDS: usize = 8;
const SLICE_BUDGET: u64 = 1_000_000;

const BUILDS: [Protection; 3] = [Protection::None, Protection::Sfi, Protection::Umpu];

fn prot_name(p: Protection) -> &'static str {
    match p {
        Protection::None => "none",
        Protection::Sfi => "sfi",
        Protection::Umpu => "umpu",
    }
}

/// The steady-state workload: a blinker plus a producer→consumer pipeline
/// that mallocs, hands buffers across domains and frees them — every
/// protection mechanism gets exercised each round.
fn build_workload(p: Protection) -> SosSystem {
    let mods = [blink(0), producer(1, 2), consumer(2, 1)];
    let mut sys = SosSystem::build(p, &mods, |a, api| {
        api.run_scheduler(a);
        a.brk();
    })
    .expect("workload builds");
    sys.boot().expect("workload boots");
    sys
}

/// One scheduling round: timer messages to the blinker and the producer
/// (who posts onward to the consumer), then a scheduler slice.
fn drive_round(sys: &mut SosSystem, profiler: Option<&mut DomainProfiler>) {
    sys.post(DomainId::num(0), MSG_TIMER);
    sys.post(DomainId::num(1), MSG_TIMER);
    let step = match profiler {
        Some(prof) => sys.run_slice_profiled(prof, SLICE_BUDGET),
        None => sys.run_slice(SLICE_BUDGET),
    };
    step.expect("steady-state round faults");
}

fn main() -> ExitCode {
    let cli = cli::Cli::parse();
    if cli.flag("--check") {
        run_checks()
    } else {
        run_report(cli.flag("--json"))
    }
}

/// One traced steady-state run per build: the profiled system, its event
/// stream and the metrics folded from it.
fn trace_build(p: Protection) -> (DomainProfiler, Vec<Event>, MetricsRegistry) {
    let mut sys = build_workload(p);
    sys.attach_scope(ScopeSink::stream());
    let mut profiler = DomainProfiler::new(sys.scope_region_map(), sys.cycles());
    for _ in 0..ROUNDS {
        drive_round(&mut sys, Some(&mut profiler));
    }
    let events = sys.take_scope().expect("sink attached").events();
    let mut metrics = MetricsRegistry::new();
    for ev in &events {
        metrics.record_event(ev);
    }
    (profiler, events, metrics)
}

fn run_report(json: bool) -> ExitCode {
    if json {
        // Machine-readable form (like `harbor-tower --json`): one object
        // per build with the profile and metrics, no files written.
        let mut out = String::from("{");
        for (i, p) in BUILDS.iter().enumerate() {
            let (profiler, events, metrics) = trace_build(*p);
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"events\":{},\"profile\":{},\"metrics\":{}}}",
                prot_name(*p),
                events.len(),
                profiler.report().to_json(),
                metrics.to_json()
            ));
        }
        out.push('}');
        println!("{out}");
        return ExitCode::SUCCESS;
    }
    let out_dir = std::path::Path::new("target").join("scope");
    std::fs::create_dir_all(&out_dir).expect("create target/scope");
    for p in BUILDS {
        let (profiler, events, metrics) = trace_build(p);
        let trace_path = out_dir.join(format!("trace_{}.json", prot_name(p)));
        std::fs::write(&trace_path, export::chrome_trace(&events)).expect("write trace");
        println!("═══ {} ═══", prot_name(p));
        println!("trace: {} ({} events)", trace_path.display(), events.len());
        println!("{}", profiler.report().render_table());
        println!("metrics: {}\n", metrics.to_json());
    }
    ExitCode::SUCCESS
}

/// Trace-stream invariants: monotone cycle stamps; call/return edges obey
/// stack discipline (a recovery legitimately unwinds everything).
fn check_stream(events: &[Event]) -> Result<(), String> {
    let mut last = 0u64;
    let mut depth = 0i64;
    for ev in events {
        let c = ev.cycles();
        if c < last {
            return Err(format!("cycle stamps not monotone: {c} after {last}"));
        }
        last = c;
        match ev {
            Event::CrossDomainCall { .. } | Event::InterruptEntry { .. } => depth += 1,
            Event::CrossDomainRet { .. } => {
                depth -= 1;
                if depth < 0 {
                    return Err(format!("return edge without a call at cycle {c}"));
                }
            }
            Event::Recovery { .. } => depth = 0,
            _ => {}
        }
    }
    Ok(())
}

fn run_checks() -> ExitCode {
    let mut failures = 0u32;
    let mut fail = |msg: String| {
        eprintln!("FAIL: {msg}");
        failures += 1;
    };

    for p in BUILDS {
        let name = prot_name(p);

        // (1) Zero-sink identity: the same workload with and without a
        // sink must agree on every observable of the simulated machine.
        let mut bare = build_workload(p);
        let mut traced = build_workload(p);
        traced.attach_scope(ScopeSink::stream());
        let mut profiler = DomainProfiler::new(traced.scope_region_map(), traced.cycles());
        let profile_start = traced.cycles();
        for _ in 0..ROUNDS {
            drive_round(&mut bare, None);
            drive_round(&mut traced, Some(&mut profiler));
        }
        if bare.cycles() != traced.cycles() {
            fail(format!("{name}: sink changed cycles ({} vs {})", bare.cycles(), traced.cycles()));
        }
        if bare.instructions() != traced.instructions() {
            fail(format!("{name}: sink changed instruction count"));
        }
        if bare.debug_out() != traced.debug_out() {
            fail(format!("{name}: sink changed debug output"));
        }

        // (2) Profile totals reconcile exactly with the cycle counter.
        let report = profiler.report();
        let elapsed = traced.cycles() - profile_start;
        if report.total != elapsed {
            fail(format!("{name}: profile total {} != cycles elapsed {elapsed}", report.total));
        }
        if report.rows.iter().map(|r| r.cycles).sum::<u64>() != report.total {
            fail(format!("{name}: profile rows do not sum to total"));
        }

        // (3) Stream invariants.
        let events = traced.take_scope().expect("sink attached").events();
        if events.is_empty() {
            fail(format!("{name}: traced run recorded no events"));
        }
        if let Err(e) = check_stream(&events) {
            fail(format!("{name}: {e}"));
        }

        // The protected builds must show the pipeline's cross-domain
        // activity: the trace is useless if the edges are missing.
        if p == Protection::Umpu {
            let calls =
                events.iter().filter(|e| matches!(e, Event::CrossDomainCall { .. })).count();
            let rets = events.iter().filter(|e| matches!(e, Event::CrossDomainRet { .. })).count();
            if calls == 0 || calls != rets {
                fail(format!("{name}: unbalanced cross-domain edges ({calls} calls, {rets} rets)"));
            }
        }
    }

    // (4) Fault lifecycle: Surge without Tree Routing dereferences the
    // 0xff error return — the protected builds must fault, recover and
    // refault, and the whole story must appear in trace + history.
    for p in [Protection::Sfi, Protection::Umpu] {
        let name = prot_name(p);
        let mods = [surge(3, 2)];
        let mut sys = SosSystem::build(p, &mods, |a, api| {
            api.run_scheduler(a);
            a.brk();
        })
        .expect("fault workload builds");
        sys.boot().expect("fault workload boots");
        sys.attach_scope(ScopeSink::stream());
        for round in 0..2 {
            sys.post(DomainId::num(3), MSG_TIMER);
            match sys.run_slice(SLICE_BUDGET) {
                Ok(_) => fail(format!("{name}: fault round {round} did not fault")),
                Err(_) => sys.recover_from_fault(),
            }
        }
        if sys.fault_history().len() != 2 {
            fail(format!(
                "{name}: fault history has {} records, expected 2",
                sys.fault_history().len()
            ));
        }
        let events = sys.take_scope().expect("sink attached").events();
        let faults = events.iter().filter(|e| matches!(e, Event::Fault { .. })).count();
        let recoveries = events.iter().filter(|e| matches!(e, Event::Recovery { .. })).count();
        if faults < 2 {
            fail(format!("{name}: trace has {faults} fault events, expected >= 2"));
        }
        if recoveries != 2 {
            fail(format!("{name}: trace has {recoveries} recovery events, expected 2"));
        }
        if let Err(e) = check_stream(&events) {
            fail(format!("{name}: fault trace: {e}"));
        }
    }

    if failures == 0 {
        println!("harbor-trace --check: all invariants hold");
        ExitCode::SUCCESS
    } else {
        eprintln!("harbor-trace --check: {failures} failure(s)");
        ExitCode::FAILURE
    }
}
