//! The mini-SOS kernel, generated as AVR machine code.
//!
//! The kernel provides the paper's software library (Section 2.4): dynamic
//! memory with memory-map maintenance (`malloc`/`free`/`change_own`,
//! Table 4), message posting, and the dispatch scheduler that drives
//! modules through cross-domain calls.
//!
//! All inter-domain calls — including modules invoking the kernel API — go
//! through the jump tables, in every protection build. Under
//! [`Protection::None`] the tables are plain `rjmp` redirections with no
//! enforcement; under UMPU the hardware tracks the calls; under SFI the
//! rewriter routes them through the cross-domain stub.
//!
//! # Kernel ABI
//!
//! | function      | JT entry | in                              | out |
//! |---------------|----------|---------------------------------|-----|
//! | `ker_malloc`  | 7/0      | r24 = size, r22 = owner domain  | r25:r24 = ptr or 0 |
//! | `ker_free`    | 7/1      | r25:r24 = ptr                   | r24 = 0 ok / 0xff err |
//! | `ker_change_own` | 7/2   | r25:r24 = ptr, r22 = new owner  | r24 = 0 ok / 0xff err |
//! | `ker_post`    | 7/3      | r24 = dst domain, r22 = msg     | r24 = 0 ok / 0xff full |
//!
//! `r0`, `r1`, `r18`–`r27`, `r30`, `r31` are call-clobbered. In the
//! protected builds `free`/`change_own` read the requesting domain from the
//! cross-domain frame on top of the safe stack and refuse non-owners — the
//! paper's ownership-enforcement rule.

use crate::layout::SosLayout;
use crate::system::Protection;
use avr_asm::{Asm, Label, Object};
use avr_core::isa::{IwPair, Ptr, PtrMode, Reg};
use avr_core::mem::RAMEND;
use harbor::DomainId;

const R0: Reg = Reg::R0;
const R16: Reg = Reg::R16;
const R18: Reg = Reg::R18;
const R19: Reg = Reg::R19;
const R20: Reg = Reg::R20;
const R21: Reg = Reg::R21;
const R22: Reg = Reg::R22;
const R23: Reg = Reg::R23;
const R24: Reg = Reg::R24;
const R25: Reg = Reg::R25;
const R26: Reg = Reg::R26;
const R27: Reg = Reg::R27;
const R30: Reg = Reg::R30;
const R31: Reg = Reg::R31;
const SPL: u8 = 0x3d;
const SPH: u8 = 0x3e;

/// The init message every module receives after loading.
pub const MSG_INIT: u8 = 0;
/// A timer-tick style message used by the demo workloads.
pub const MSG_TIMER: u8 = 1;

/// Kernel API jump-table entries (trusted domain's page).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JtEntry {
    /// `ker_malloc`.
    Malloc = 0,
    /// `ker_free`.
    Free = 1,
    /// `ker_change_own`.
    ChangeOwn = 2,
    /// `ker_post`.
    Post = 3,
}

/// Facilities available to application/driver code emitted into the kernel
/// image (the code that runs after boot).
#[derive(Debug, Clone, Copy)]
pub struct KernelApi {
    /// Which protection build this kernel is.
    pub protection: Protection,
    /// The system layout.
    pub layout: SosLayout,
    /// Label of the scheduler loop (drain the message queue, then return).
    pub ker_run: Label,
    /// Word address of `harbor_xdom_call` (SFI builds; the inline-operand
    /// form used by trusted straight-line code).
    pub xdom_call: Option<u32>,
}

impl KernelApi {
    /// Emits a call to jump-table `entry` of `dom`, in whatever form this
    /// protection build requires.
    pub fn call_entry(&self, a: &mut Asm, dom: DomainId, entry: u16) {
        let target = self.layout.jt_entry(dom.index(), entry) as u32;
        match self.protection {
            Protection::None | Protection::Umpu => a.call_abs(target),
            Protection::Sfi => {
                a.call_abs(self.xdom_call.expect("SFI build has the stub"));
                a.words(&[target as u16]);
            }
        }
    }

    /// Emits a call to a kernel API function.
    pub fn call_kernel(&self, a: &mut Asm, f: JtEntry) {
        self.call_entry(a, DomainId::TRUSTED, f as u16);
    }

    /// Emits a call to the scheduler (drains the message queue).
    pub fn run_scheduler(&self, a: &mut Asm) {
        a.call(self.ker_run);
    }
}

/// The assembled kernel: reset vector, boot + scheduler + application code,
/// and the jump-table-reachable API section.
#[derive(Debug, Clone)]
pub struct KernelImage {
    /// The reset vector at word 0.
    pub vector: Object,
    /// Boot, scheduler and application code (at `layout.kernel_origin`).
    pub kernel: Object,
    /// The API functions (at `layout.api_origin`).
    pub api: Object,
    /// The protection build.
    pub protection: Protection,
    /// The layout.
    pub layout: SosLayout,
}

impl KernelImage {
    /// Builds the kernel. `xdom_call_stubs` supplies
    /// (`harbor_xdom_call`, `harbor_xdom_call_z`) for SFI builds. The `app`
    /// closure emits the driver code that runs after boot (and typically
    /// calls the scheduler, then `break`s).
    ///
    /// # Panics
    ///
    /// Panics if the generated assembly fails to resolve — a builder bug.
    pub fn build(
        protection: Protection,
        layout: SosLayout,
        xdom_call_stubs: Option<(u32, u32)>,
        app: impl FnOnce(&mut Asm, &KernelApi),
    ) -> KernelImage {
        let api = build_api(protection, &layout);

        let mut a = Asm::new();
        let ker_run = a.label("ker_run");
        emit_reset(&mut a, protection, &layout);
        let api_handle =
            KernelApi { protection, layout, ker_run, xdom_call: xdom_call_stubs.map(|(xc, _)| xc) };
        app(&mut a, &api_handle);
        // Safety net: if the app falls through, halt.
        a.brk();
        emit_ker_run(&mut a, ker_run, protection, &layout, xdom_call_stubs.map(|(_, z)| z));
        emit_timer_isr(&mut a, &layout, api.require("ker_post"));
        let kernel = a.assemble(layout.kernel_origin).expect("kernel assembles");
        assert!(
            kernel.end() <= layout.runtime_origin,
            "kernel section overflowed into the runtime"
        );

        let mut v = Asm::new();
        let reset = v.constant("ker_reset", layout.kernel_origin);
        let isr = v.constant("ker_timer_isr_vec", kernel.require("ker_timer_isr"));
        v.jmp(reset); // words 0..=1: reset vector
        v.jmp(isr); // words 2..=3: timer vector
        let vector = v.assemble(0).expect("vector assembles");

        KernelImage { vector, kernel, api, protection, layout }
    }

    /// Word address of a kernel symbol (searches all sections).
    ///
    /// # Panics
    ///
    /// Panics if the symbol does not exist.
    pub fn symbol(&self, name: &str) -> u32 {
        self.kernel
            .symbol(name)
            .or_else(|| self.api.symbol(name))
            .unwrap_or_else(|| panic!("kernel symbol `{name}` not found"))
    }

    /// Loads all sections into flash.
    pub fn load_into(&self, flash: &mut avr_core::mem::Flash) {
        self.vector.load_into(flash);
        self.kernel.load_into(flash);
        self.api.load_into(flash);
    }

    /// The kernel's total FLASH footprint in bytes (vector + kernel + API),
    /// for the Table 5 resource accounting.
    pub fn flash_bytes(&self) -> u32 {
        self.vector.size_bytes() + self.kernel.size_bytes() + self.api.size_bytes()
    }
}

/// Boot: stack pointer, zeroed kernel RAM, protection state, hardware
/// configuration, then `break` (the host loader takes over before the app
/// code runs).
fn emit_reset(a: &mut Asm, protection: Protection, l: &SosLayout) {
    // SP ← RAMEND.
    a.ldi(R16, (RAMEND & 0xff) as u8);
    a.out(SPL, R16);
    a.ldi(R16, (RAMEND >> 8) as u8);
    a.out(SPH, R16);

    // Zero kernel RAM 0x0060..heap_base.
    let zero_len = l.heap_base() - 0x0060;
    a.ldi(R26, 0x60);
    a.clr(R27);
    a.clr(R16);
    a.ldi(R24, (zero_len & 0xff) as u8);
    a.ldi(R25, (zero_len >> 8) as u8);
    let zl = a.here("boot_zero");
    a.st(Ptr::X, PtrMode::PostInc, R16);
    a.sbiw(IwPair::W, 1);
    a.brne(zl);

    if protection != Protection::None {
        // Memory map ← all free (0xff).
        let map_bytes = harbor::MemMapConfig::new(
            harbor::DomainMode::Multi,
            harbor::BlockSize::new(1 << l.block_log2()).expect("valid block size"),
            l.prot.prot_bottom,
            l.prot.prot_top,
        )
        .expect("layout is block aligned")
        .map_size_bytes();
        a.ldi(R26, (l.prot.mem_map_base & 0xff) as u8);
        a.ldi(R27, (l.prot.mem_map_base >> 8) as u8);
        a.ser(R16);
        a.ldi(R24, (map_bytes & 0xff) as u8);
        a.ldi(R25, (map_bytes >> 8) as u8);
        let ml = a.here("boot_map");
        a.st(Ptr::X, PtrMode::PostInc, R16);
        a.sbiw(IwPair::W, 1);
        a.brne(ml);
    }

    match protection {
        Protection::None => {}
        Protection::Sfi => {
            // Software protection state.
            a.ldi(R16, DomainId::TRUSTED.index());
            a.sts(l.prot.cur_dom, R16);
            a.ldi(R16, (RAMEND & 0xff) as u8);
            a.sts(l.prot.stack_bound, R16);
            a.ldi(R16, (RAMEND >> 8) as u8);
            a.sts(l.prot.stack_bound + 1, R16);
            a.ldi(R16, (l.prot.safe_stack_base & 0xff) as u8);
            a.sts(l.prot.safe_stack_ptr, R16);
            a.ldi(R16, (l.prot.safe_stack_base >> 8) as u8);
            a.sts(l.prot.safe_stack_ptr + 1, R16);
        }
        Protection::Umpu => {
            use umpu::regs::*;
            let out8 = |a: &mut Asm, port: u8, v: u8| {
                a.ldi(R16, v);
                a.out(port, R16);
            };
            out8(a, PORT_MEM_MAP_BASE_LO, (l.prot.mem_map_base & 0xff) as u8);
            out8(a, PORT_MEM_MAP_BASE_HI, (l.prot.mem_map_base >> 8) as u8);
            out8(a, PORT_MEM_PROT_BOT_LO, (l.prot.prot_bottom & 0xff) as u8);
            out8(a, PORT_MEM_PROT_BOT_HI, (l.prot.prot_bottom >> 8) as u8);
            out8(a, PORT_MEM_PROT_TOP_LO, (l.prot.prot_top & 0xff) as u8);
            out8(a, PORT_MEM_PROT_TOP_HI, (l.prot.prot_top >> 8) as u8);
            out8(a, PORT_SAFE_STACK_PTR_LO, (l.prot.safe_stack_base & 0xff) as u8);
            out8(a, PORT_SAFE_STACK_PTR_HI, (l.prot.safe_stack_base >> 8) as u8);
            out8(a, PORT_SAFE_STACK_LIMIT_LO, (l.prot.safe_stack_limit & 0xff) as u8);
            out8(a, PORT_SAFE_STACK_LIMIT_HI, (l.prot.safe_stack_limit >> 8) as u8);
            out8(a, PORT_JT_BASE_LO, (l.prot.jt_base & 0xff) as u8);
            out8(a, PORT_JT_BASE_HI, (l.prot.jt_base >> 8) as u8);
            out8(a, PORT_JT_DOMAINS, l.prot.jt_domains);
            // Block size from the layout, multi-domain, enable.
            out8(a, PORT_MEM_MAP_CONFIG, l.block_log2() | CONFIG_ENABLE);
        }
    }

    // Boot complete: hand control to the host loader. Execution resumes at
    // the app code that follows.
    let done = a.here("ker_boot_done");
    let _ = done;
    a.brk();
}

/// The scheduler: drain the message queue, dispatching each message to its
/// destination domain's handler (jump-table entry 0, message type in r24).
fn emit_ker_run(
    a: &mut Asm,
    ker_run: Label,
    protection: Protection,
    l: &SosLayout,
    xdom_call_z: Option<u32>,
) {
    let done = a.label("kr_done");
    a.bind(ker_run);
    a.lds(R24, l.q_head);
    a.lds(R25, l.q_tail);
    a.cp(R24, R25);
    a.breq(done);
    // Dequeue: dom → r18, type → r22.
    a.mov(R26, R24);
    a.lsl(R26);
    a.clr(R27);
    let neg_buf = 0u16.wrapping_sub(l.q_buf);
    a.subi(R26, (neg_buf & 0xff) as u8);
    a.sbci(R27, (neg_buf >> 8) as u8);
    a.ld(R18, Ptr::X, PtrMode::PostInc);
    a.ld(R22, Ptr::X, PtrMode::Plain);
    a.inc(R24);
    a.andi(R24, 0x0f);
    a.sts(l.q_head, R24);
    // Z ← jump-table handler entry: jt_base + dom * 128.
    a.mov(R31, R18);
    a.lsr(R31);
    a.clr(R30);
    a.ror(R30); // Z = dom << 7
    let neg_jt = 0u16.wrapping_sub(l.prot.jt_base);
    a.subi(R30, (neg_jt & 0xff) as u8);
    a.sbci(R31, (neg_jt >> 8) as u8);
    a.mov(R24, R22); // handler argument: message type
    match protection {
        Protection::None | Protection::Umpu => a.icall(),
        Protection::Sfi => {
            a.call_abs(xdom_call_z.expect("SFI build supplies xdom_call_z"));
        }
    }
    a.rjmp(ker_run);
    a.bind(done);
    a.ret();
}

/// The timer ISR: posts [`MSG_TIMER`] to the domain in the `timer_dom`
/// variable. Preserves every register it (and `ker_post`) touches — it can
/// interrupt any code, including sandboxed modules.
fn emit_timer_isr(a: &mut Asm, l: &SosLayout, ker_post: u32) {
    a.here("ker_timer_isr");
    a.push(R16);
    a.in_(R16, 0x3f); // SREG
    a.push(R16);
    for r in [R22, R23, R24, R25, R26, R27] {
        a.push(r);
    }
    a.lds(R24, l.timer_dom);
    a.ldi(R22, MSG_TIMER);
    a.call_abs(ker_post); // trusted-internal call; queue-full result ignored
    for r in [R27, R26, R25, R24, R23, R22] {
        a.pop(r);
    }
    a.pop(R16);
    a.out(0x3f, R16);
    a.pop(R16);
    a.reti();
}

/// Builds the API section: `ker_malloc`, `ker_free`, `ker_change_own`,
/// `ker_post` and their helpers.
fn build_api(protection: Protection, l: &SosLayout) -> Object {
    let mut asm = Asm::new();
    let a = &mut asm;
    let protected = protection != Protection::None;

    // Helper labels.
    let bit_get = a.label("bit_get");
    let bit_set = a.label("bit_set");
    let bit_clr = a.label("bit_clr");
    let mm_write_nibble = a.label("mm_write_nibble");
    let mm_set_segment = a.label("mm_set_segment");
    let mm_record = a.label("mm_record");
    let mm_owner = a.label("mm_owner");
    let mm_seg_len = a.label("mm_seg_len");
    let get_caller = a.label("get_caller");
    let blk_from_ptr = a.label("blk_from_ptr");

    let neg_bitmap = 0u16.wrapping_sub(l.alloc_bitmap);
    let neg_heap = 0u16.wrapping_sub(l.heap_base());
    let neg_map = 0u16.wrapping_sub(l.prot.mem_map_base);

    // ── ker_malloc ──────────────────────────────────────────────────────
    // in: r24 = size, r22 = owner; out: r25:r24 = ptr or 0.
    let ker_malloc = a.here("ker_malloc");
    let _ = ker_malloc;
    {
        let scan = a.label("m_scan");
        let used = a.label("m_used");
        let cont = a.label("m_cont");
        let found = a.label("m_found");
        let fail = a.label("m_fail");
        let setl = a.label("m_set");
        // blocks needed = (size + 2 + block-1) >> log2  (2-byte header)
        let bs = 1u16 << l.block_log2();
        a.mov(R18, R24);
        a.subi(R18, 0u8.wrapping_sub((bs + 1) as u8)); // r18 += 2 + (bs-1)
        for _ in 0..l.block_log2() {
            a.lsr(R18);
        }
        a.clr(R19); // block index
        a.clr(R20); // run length
        a.clr(R21); // run start
        a.bind(scan);
        a.cpi(R19, l.alloc_blocks as u8);
        a.brsh(fail);
        a.rcall(bit_get); // r25 = bitmap[r19]
        a.tst(R25);
        a.brne(used);
        a.tst(R20);
        a.brne(cont);
        a.mov(R21, R19); // run starts here
        a.bind(cont);
        a.inc(R20);
        a.cp(R20, R18);
        a.breq(found);
        a.inc(R19);
        a.rjmp(scan);
        a.bind(used);
        a.clr(R20);
        a.inc(R19);
        a.rjmp(scan);
        a.bind(fail);
        a.clr(R24);
        a.clr(R25);
        a.ret();
        a.bind(found);
        // Mark blocks r21 .. r21+r18-1 used.
        a.mov(R19, R21);
        a.mov(R20, R18);
        a.bind(setl);
        a.rcall(bit_set);
        a.inc(R19);
        a.dec(R20);
        a.brne(setl);
        // X ← heap_base + start*block; write the [len, owner] header via Z.
        a.mov(R26, R21);
        a.clr(R27);
        for _ in 0..l.block_log2() {
            a.lsl(R26);
            a.rol(R27);
        }
        a.subi(R26, (neg_heap & 0xff) as u8);
        a.sbci(R27, (neg_heap >> 8) as u8);
        a.movw(R30, R26);
        a.st(Ptr::Z, PtrMode::PostInc, R18); // header: length in blocks
        a.st(Ptr::Z, PtrMode::PostInc, R22); // header: owner
        if protected {
            // Record the segment in the memory map (r21 start, r18 count,
            // r22 owner). Clobbers X — recompute the address afterwards.
            a.rcall(mm_set_segment);
            a.mov(R26, R21);
            a.clr(R27);
            for _ in 0..l.block_log2() {
                a.lsl(R26);
                a.rol(R27);
            }
            a.subi(R26, (neg_heap & 0xff) as u8);
            a.sbci(R27, (neg_heap >> 8) as u8);
        }
        a.adiw(IwPair::X, 2); // data pointer past the header
        a.mov(R24, R26);
        a.mov(R25, R27);
        a.ret();
    }

    // ── ker_free ────────────────────────────────────────────────────────
    // in: r25:r24 = ptr; out: r24 = 0 ok / 0xff error.
    let ker_free = a.here("ker_free");
    let _ = ker_free;
    {
        let err = a.label("f_err");
        let clrl = a.label("f_clr");
        let own_ok = a.label("f_own_ok");
        let freel = a.label("f_freel");
        a.rcall(blk_from_ptr); // r19 = block, Z = header, r18 = len; C set on error
        a.brcs(err);
        if protected {
            // Ownership rule: only the owner (or trusted) may free.
            a.rcall(mm_owner); // r25 = map owner of block r19
            a.rcall(get_caller); // r23 = requesting domain
            a.cpi(R23, DomainId::TRUSTED.index());
            a.breq(own_ok);
            a.cp(R23, R25);
            a.brne(err);
            a.bind(own_ok);
            // The authoritative segment length comes from the memory map
            // (start/continuation records), not the module-writable header.
            a.rcall(mm_seg_len); // r18 = length in blocks
            a.brcs(err);
        } else {
            // Keep the label bound in all builds.
            a.bind(own_ok);
        }
        // Clear the allocation bits.
        a.mov(R20, R18);
        a.bind(clrl);
        a.rcall(bit_clr);
        a.inc(R19);
        a.dec(R20);
        a.brne(clrl);
        if protected {
            // Mark the blocks free (record 0b1111 each).
            a.sub(R19, R18); // back to the first block
            a.mov(R20, R18);
            a.ldi(R25, 0x0f);
            a.bind(freel);
            a.rcall(mm_write_nibble);
            a.inc(R19);
            a.dec(R20);
            a.brne(freel);
        } else {
            a.bind(freel);
        }
        a.clr(R24);
        a.ret();
        a.bind(err);
        a.ldi(R24, 0xff);
        a.ret();
    }

    // ── ker_change_own ──────────────────────────────────────────────────
    // in: r25:r24 = ptr, r22 = new owner; out: r24 = 0 ok / 0xff error.
    let ker_chown = a.here("ker_change_own");
    let _ = ker_chown;
    {
        let err = a.label("c_err");
        let own_ok = a.label("c_own_ok");
        a.rcall(blk_from_ptr); // r19 = block, Z = header, r18 = len
        a.brcs(err);
        if protected {
            a.rcall(mm_owner);
            a.rcall(get_caller);
            a.cpi(R23, DomainId::TRUSTED.index());
            a.breq(own_ok);
            a.cp(R23, R25);
            a.brne(err);
            a.bind(own_ok);
            a.rcall(mm_seg_len); // authoritative length from the map
            a.brcs(err);
        } else {
            a.bind(own_ok);
        }
        // Header owner byte (Z points at the header from blk_from_ptr).
        a.std(Ptr::Z, 1, R22);
        if protected {
            // Rewrite the map records with the new owner (start flag
            // pattern identical to allocation).
            a.mov(R21, R19);
            a.rcall(mm_set_segment);
        }
        a.clr(R24);
        a.ret();
        a.bind(err);
        a.ldi(R24, 0xff);
        a.ret();
    }

    // ── ker_post ────────────────────────────────────────────────────────
    // in: r24 = dst domain, r22 = message type; out: r24 = 0 / 0xff full.
    let ker_post = a.here("ker_post");
    let _ = ker_post;
    {
        let full = a.label("p_full");
        a.lds(R25, l.q_tail);
        a.lds(R26, l.q_head);
        a.mov(R23, R25);
        a.inc(R23);
        a.andi(R23, 0x0f);
        a.cp(R23, R26);
        a.breq(full);
        a.mov(R26, R25);
        a.lsl(R26);
        a.clr(R27);
        let neg_buf = 0u16.wrapping_sub(l.q_buf);
        a.subi(R26, (neg_buf & 0xff) as u8);
        a.sbci(R27, (neg_buf >> 8) as u8);
        a.st(Ptr::X, PtrMode::PostInc, R24);
        a.st(Ptr::X, PtrMode::Plain, R22);
        a.sts(l.q_tail, R23);
        a.clr(R24);
        a.ret();
        a.bind(full);
        a.ldi(R24, 0xff);
        a.ret();
    }

    // ── helpers ─────────────────────────────────────────────────────────

    // blk_from_ptr: r25:r24 = data ptr → r19 = block index, Z = header
    // address, r18 = length in blocks. Sets C on a bad pointer, including
    // a pointer whose block is not currently allocated (the bitmap is the
    // authority — stale headers in freed memory must not resurrect
    // segments).
    {
        let err = a.label("bp_err");
        let ok = a.label("bp_ok");
        a.bind(blk_from_ptr);
        a.movw(R26, R24);
        a.sbiw(IwPair::X, 2); // header address
                              // Bounds: header must lie in [heap_base, heap_base + blocks*8).
        let lo = l.heap_base();
        let hi = l.heap_base() + (l.alloc_blocks << l.block_log2());
        a.cpi(R26, (lo & 0xff) as u8);
        a.ldi(R23, (lo >> 8) as u8);
        a.cpc(R27, R23);
        a.brlo(err);
        a.cpi(R26, (hi & 0xff) as u8);
        a.ldi(R23, (hi >> 8) as u8);
        a.cpc(R27, R23);
        a.brsh(err);
        a.movw(R30, R26); // Z = header
                          // block = (header - heap_base) >> log2(block size)
        a.subi(R26, (neg_heap.wrapping_neg() & 0xff) as u8); // subtract heap base
        a.sbci(R27, (neg_heap.wrapping_neg() >> 8) as u8);
        for _ in 0..l.block_log2() {
            a.lsr(R27);
            a.ror(R26);
        }
        a.mov(R19, R26);
        // The start block must be live in the allocation bitmap.
        a.rcall(bit_get); // r25 = bitmap[r19]
        a.tst(R25);
        a.breq(err);
        a.ld(R18, Ptr::Z, PtrMode::Plain); // length
                                           // Sanity: the header length is non-zero.
        a.tst(R18);
        a.breq(err);
        a.clc();
        a.rjmp(ok);
        a.bind(err);
        a.sec();
        a.bind(ok);
        a.ret();
    }

    // bit_get: r19 = block → r25 = 0/1. Clobbers r23, r26, r27.
    {
        let sh = a.label("bg_sh");
        let done = a.label("bg_done");
        a.bind(bit_get);
        a.mov(R26, R19);
        a.lsr(R26);
        a.lsr(R26);
        a.lsr(R26);
        a.clr(R27);
        a.subi(R26, (neg_bitmap & 0xff) as u8);
        a.sbci(R27, (neg_bitmap >> 8) as u8);
        a.ld(R25, Ptr::X, PtrMode::Plain);
        a.mov(R23, R19);
        a.andi(R23, 7);
        a.bind(sh);
        a.tst(R23);
        a.breq(done);
        a.lsr(R25);
        a.dec(R23);
        a.rjmp(sh);
        a.bind(done);
        a.andi(R25, 1);
        a.ret();
    }

    // bit_set / bit_clr: r19 = block. Clobber r23, r25, r26, r27, r0.
    for (label, set) in [(bit_set, true), (bit_clr, false)] {
        let sh = a.label(if set { "bs_sh" } else { "bc_sh" });
        let done = a.label(if set { "bs_done" } else { "bc_done" });
        a.bind(label);
        a.mov(R23, R19);
        a.andi(R23, 7);
        a.ldi(R25, 1);
        a.bind(sh);
        a.tst(R23);
        a.breq(done);
        a.lsl(R25);
        a.dec(R23);
        a.rjmp(sh);
        a.bind(done);
        a.mov(R26, R19);
        a.lsr(R26);
        a.lsr(R26);
        a.lsr(R26);
        a.clr(R27);
        a.subi(R26, (neg_bitmap & 0xff) as u8);
        a.sbci(R27, (neg_bitmap >> 8) as u8);
        a.ld(R0, Ptr::X, PtrMode::Plain);
        if set {
            a.or(R0, R25);
        } else {
            a.com(R25);
            a.and(R0, R25);
        }
        a.st(Ptr::X, PtrMode::Plain, R0);
        a.ret();
    }

    if protected {
        // mm_set_segment: r21 = start block, r18 = count, r22 = owner.
        // Clobbers r19, r20, r25 (+ mm_write_nibble's scratch).
        {
            let lp = a.label("mms_loop");
            let done = a.label("mms_done");
            a.bind(mm_set_segment);
            a.mov(R19, R21);
            a.mov(R20, R18);
            a.mov(R25, R22);
            a.lsl(R25);
            a.ori(R25, 1); // start record
            a.rcall(mm_write_nibble);
            a.dec(R20);
            a.breq(done);
            a.mov(R25, R22);
            a.lsl(R25); // continuation record
            a.bind(lp);
            a.inc(R19);
            a.rcall(mm_write_nibble);
            a.dec(R20);
            a.brne(lp);
            a.bind(done);
            a.ret();
        }

        // mm_write_nibble: writes record r25 for block r19 into the map.
        // Preserves r25. Clobbers r23, r26, r27, r30, r31, r0.
        {
            let hi = a.label("wn_hi");
            let store = a.label("wn_store");
            a.bind(mm_write_nibble);
            a.mov(R26, R19);
            a.lsr(R26);
            a.clr(R27);
            a.subi(R26, (neg_map & 0xff) as u8);
            a.sbci(R27, (neg_map >> 8) as u8);
            a.ld(R0, Ptr::X, PtrMode::Plain);
            a.mov(R23, R25);
            a.sbrc(R19, 0);
            a.rjmp(hi);
            // Even block → low nibble.
            a.ldi(R31, 0xf0);
            a.and(R0, R31);
            a.or(R0, R23);
            a.rjmp(store);
            a.bind(hi);
            a.swap(R23);
            a.ldi(R31, 0x0f);
            a.and(R0, R31);
            a.or(R0, R23);
            a.bind(store);
            a.st(Ptr::X, PtrMode::Plain, R0);
            a.ret();
        }

        // mm_record: r19 = block → r25 = 4-bit record. Clobbers r26, r27.
        {
            a.bind(mm_record);
            a.mov(R26, R19);
            a.lsr(R26);
            a.clr(R27);
            a.subi(R26, (neg_map & 0xff) as u8);
            a.sbci(R27, (neg_map >> 8) as u8);
            a.ld(R25, Ptr::X, PtrMode::Plain);
            a.sbrc(R19, 0);
            a.swap(R25);
            a.andi(R25, 0x0f);
            a.ret();
        }

        // mm_owner: r19 = block → r25 = owner.
        {
            a.bind(mm_owner);
            a.rcall(mm_record);
            a.lsr(R25);
            a.ret();
        }

        // mm_seg_len: r19 = segment start block → r18 = length in blocks
        // (walking continuation records, the authoritative layout). Sets C
        // if r19 is not a segment start. Preserves r19; clobbers r21, r25,
        // r26, r27.
        {
            let lp = a.label("msl_loop");
            let done = a.label("msl_done");
            let errl = a.label("msl_err");
            a.bind(mm_seg_len);
            a.rcall(mm_record);
            a.sbrs(R25, 0);
            a.rjmp(errl);
            a.mov(R21, R25);
            a.andi(R21, 0x0e); // expected continuation record
            a.ldi(R18, 1);
            a.bind(lp);
            a.inc(R19);
            a.cpi(R19, l.alloc_blocks as u8);
            a.brsh(done);
            a.rcall(mm_record);
            a.cp(R25, R21);
            a.brne(done);
            a.inc(R18);
            a.rjmp(lp);
            a.bind(done);
            a.sub(R19, R18); // restore the start block
            a.clc();
            a.ret();
            a.bind(errl);
            a.sec();
            a.ret();
        }

        // get_caller: r23 = requesting domain, read from the cross-domain
        // frame on top of the safe stack (the kernel API is always entered
        // through the jump table, so the frame's top byte is the caller).
        {
            a.bind(get_caller);
            match protection {
                Protection::Umpu => {
                    // Under UMPU even this helper's own return address was
                    // redirected to the safe stack (2 bytes above the
                    // frame), so the caller-domain byte sits at ssp-3.
                    a.in_(R26, umpu::regs::PORT_SAFE_STACK_PTR_LO);
                    a.in_(R27, umpu::regs::PORT_SAFE_STACK_PTR_HI);
                    a.sbiw(IwPair::X, 2);
                }
                Protection::Sfi => {
                    // The SFI kernel is trusted (not rewritten): its rcalls
                    // use the run-time stack, so the frame is still on top.
                    a.lds(R26, l.prot.safe_stack_ptr);
                    a.lds(R27, l.prot.safe_stack_ptr + 1);
                }
                Protection::None => unreachable!("get_caller only in protected builds"),
            }
            a.ld(R23, Ptr::X, PtrMode::PreDec);
            a.ret();
        }
    }

    asm.assemble(l.api_origin).expect("API section assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builds_assemble_and_fit() {
        let l = SosLayout::default_layout();
        for p in [Protection::None, Protection::Umpu, Protection::Sfi] {
            let stubs = if p == Protection::Sfi { Some((0x0210, 0x0220)) } else { None };
            let k = KernelImage::build(p, l, stubs, |a, api| {
                api.run_scheduler(a);
                a.brk();
            });
            assert!(k.kernel.end() <= l.runtime_origin, "{p:?}: kernel section fits");
            assert!(k.api.end() <= l.prot.jt_base as u32, "{p:?}: API fits below the tables");
            // The API functions are all within rjmp reach of the trusted
            // jump-table page.
            for sym in ["ker_malloc", "ker_free", "ker_change_own", "ker_post"] {
                let at = k.symbol(sym);
                let entry = l.jt_entry(7, 0) as i64;
                assert!(entry + 1 - (at as i64) <= 2048, "{p:?}: {sym} reachable");
            }
        }
    }
}
