//! mini-SOS: a miniature SOS-like operating system for the simulated
//! ATmega103, the application substrate of the Harbor/UMPU evaluation.
//!
//! SOS (Han et al., 2005) runs a statically-installed trusted kernel plus
//! dynamically loaded binary modules that communicate by message passing and
//! cross-domain function calls. This crate reproduces the parts the paper's
//! evaluation exercises:
//!
//! * a **kernel written in AVR machine code** (via `avr-asm`) providing the
//!   memory-map-aware dynamic memory API of Table 4 — `malloc`, `free`,
//!   `change_own` — plus message posting and a dispatch scheduler;
//! * a **module ABI and loader**: per-domain flash slots, jump-table pages
//!   with `rjmp` entries (empty entries redirect to an in-jump-table error
//!   stub returning `0xff`, modelling SOS's failed dynamic linking), code
//!   regions, and — under SFI — rewriting + verification at load time;
//! * **three protection builds** of the same system:
//!   [`Protection::None`] (stock AVR), [`Protection::Umpu`] (hardware
//!   extensions) and [`Protection::Sfi`] (binary rewriting), so benchmarks
//!   can compare them on identical workloads;
//! * the paper's **Surge / Tree-Routing** war-story modules: Surge uses the
//!   unchecked error return of a cross-domain call as a buffer offset — the
//!   memory-corruption bug Harbor caught in deployment.
//!
//! # Example
//!
//! Boot the protected system, deliver three timer messages to the Blink
//! module through the scheduler, and read its counter back:
//!
//! ```
//! use harbor::DomainId;
//! use mini_sos::{modules, Protection, SosSystem, MSG_TIMER};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sys = SosSystem::build(Protection::Umpu, &[modules::blink(0)], |a, api| {
//!     api.run_scheduler(a);
//!     a.brk();
//! })?;
//! sys.boot()?;
//! for _ in 0..3 {
//!     sys.post(DomainId::new(0)?, MSG_TIMER);
//! }
//! sys.run_to_break(1_000_000)?;
//! assert_eq!(sys.sram(sys.layout.state_addr(0)), 3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod kernel;
pub mod layout;
pub mod loader;
pub mod modules;
pub mod system;

pub use kernel::{JtEntry, KernelApi, KernelImage, MSG_INIT, MSG_TIMER};
pub use layout::SosLayout;
pub use loader::{LoadError, LoadPolicy, ModuleSource};
pub use system::{FaultRecord, Protection, SosSystem};
