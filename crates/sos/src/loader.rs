//! The module loader and cross-domain linker: assembles module sources into
//! their flash slots, builds the per-domain jump tables, and — under SFI —
//! rewrites and verifies each binary before accepting it.

use crate::kernel::JtEntry;
use crate::layout::SosLayout;
use crate::system::Protection;
use avr_asm::{Asm, Object};
use avr_core::isa::{self, Instr};
use harbor::DomainId;
use harbor_flow::CfgVerifier;
use harbor_sfi::{rewrite_with_elision, verify, SfiRuntime, VerifierConfig};
use std::fmt;

/// Build-time context handed to module source code.
///
/// Modules are written once and run unmodified under all three protection
/// builds: inter-domain calls always target jump-table entries (plain
/// redirections under `None`, hardware-tracked under UMPU, rewritten into
/// the cross-domain stub under SFI).
#[derive(Debug, Clone, Copy)]
pub struct ModuleCtx {
    /// The system layout.
    pub layout: SosLayout,
    /// This module's domain.
    pub domain: DomainId,
    /// This module's static 32-byte state segment.
    pub state_addr: u16,
}

impl ModuleCtx {
    /// Emits a call to a kernel API function (through the trusted domain's
    /// jump table).
    pub fn call_kernel(&self, a: &mut Asm, f: JtEntry) {
        a.call_abs(self.layout.jt_entry(7, f as u16) as u32);
    }

    /// Emits a call to another module's exported function.
    pub fn call_module(&self, a: &mut Asm, dom: DomainId, entry: u16) {
        a.call_abs(self.layout.jt_entry(dom.index(), entry) as u32);
    }
}

/// A module body generator.
pub type ModuleBuilder = Box<dyn Fn(&mut Asm, &ModuleCtx)>;

/// A module's source: its domain, exported entry labels (jump-table entries
/// 0, 1, …) and a code generator.
pub struct ModuleSource {
    /// Human-readable name.
    pub name: &'static str,
    /// The domain the module is loaded into (0..=6).
    pub domain: DomainId,
    /// Label names of the exported functions, in jump-table-entry order.
    /// Entry 0 is the message handler (called with the message type in
    /// `r24`).
    pub entries: Vec<&'static str>,
    /// Emits the module body.
    pub build: ModuleBuilder,
}

impl fmt::Debug for ModuleSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModuleSource")
            .field("name", &self.name)
            .field("domain", &self.domain)
            .field("entries", &self.entries)
            .finish()
    }
}

/// A module ready to burn into flash.
#[derive(Debug, Clone)]
pub struct LoadedModule {
    /// Name, from the source.
    pub name: &'static str,
    /// Domain.
    pub domain: DomainId,
    /// Final machine code (rewritten under SFI).
    pub object: Object,
    /// Absolute word addresses of the exported entries (post-rewrite).
    pub entry_addrs: Vec<u32>,
}

/// Admission policy the loader applies to SFI modules *before* they are
/// burned into flash.
///
/// The certified stack bound comes from `harbor-flow`'s abstract
/// interpretation, so a module that would eventually overflow the shared
/// safe-stack region is rejected at load time with a typed error instead
/// of faulting at an arbitrary call depth at run time. Only the SFI build
/// is gated (the other builds have no safe stack to protect).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadPolicy {
    /// Most certified safe-stack bytes a single module may demand
    /// (inbound cross-domain frame included). A saturated certificate —
    /// recursion, prologue re-entry, computed transfers — always exceeds
    /// this.
    pub safe_stack_allotment: u16,
    /// Also run the flow-sensitive deep verifier (`CfgVerifier`), not just
    /// the linear scan, before accepting the module.
    pub deep_verify: bool,
    /// Leave stores *raw* (no store-check stub) when the dataflow pass
    /// (`harbor-flow`'s `StoreCertificate`) proves they land inside the
    /// module's own state segment. The admission gate independently
    /// re-derives the certificate on the rewritten image and rejects any
    /// raw store it cannot prove — elision never widens what a module can
    /// write, it only removes checks on stores that could never fault.
    pub elide_certified: bool,
}

impl LoadPolicy {
    /// A policy with the given allotment, deep verification on, and store
    /// elision off.
    pub const fn with_allotment(safe_stack_allotment: u16) -> LoadPolicy {
        LoadPolicy { safe_stack_allotment, deep_verify: true, elide_certified: false }
    }

    /// The same policy with certified-store elision enabled.
    pub const fn with_elision(mut self) -> LoadPolicy {
        self.elide_certified = true;
        self
    }
}

/// Loading failed.
#[derive(Debug)]
pub enum LoadError {
    /// The module does not fit its flash slot.
    SlotOverflow {
        /// Module name.
        name: &'static str,
        /// Size in words after (any) rewriting.
        words: u32,
        /// Slot capacity in words.
        capacity: u32,
    },
    /// The SFI rewriter rejected the module.
    Rewrite(harbor_sfi::RewriteError),
    /// The SFI verifier rejected the (rewritten) module.
    Verify(harbor_sfi::VerifyError),
    /// The module's certified worst-case stack demand exceeds the load
    /// policy's safe-stack allotment (`certified == u16::MAX` means the
    /// analysis found no finite bound at all).
    StackBound {
        /// Module name.
        name: &'static str,
        /// Certified safe-stack bytes.
        certified: u16,
        /// The policy's allotment.
        allotment: u16,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::SlotOverflow { name, words, capacity } => {
                write!(f, "module `{name}`: {words} words exceed the {capacity}-word slot")
            }
            LoadError::Rewrite(e) => write!(f, "rewriter rejected module: {e}"),
            LoadError::Verify(e) => write!(f, "verifier rejected module: {e}"),
            LoadError::StackBound { name, certified, allotment } => {
                write!(
                    f,
                    "module `{name}`: certified safe-stack demand {certified}B \
                     exceeds the {allotment}B allotment"
                )
            }
        }
    }
}

impl std::error::Error for LoadError {}

/// Applies `policy` to an already-verified SFI module image: optionally
/// the deep verifier, always the certified-stack-bound gate, and — when
/// the image contains raw stores — the claimed-⊆-derived store gate. This
/// is the single admission point — the local loader and `harbor-fleet`'s
/// dissemination install path both call it, so a module rejected here
/// never reaches flash by either route.
///
/// `state_seg` is `(base, len)` of the module's own state segment: the
/// only region a raw store may be statically certified against. Any raw
/// store the *re-derived* certificate does not cover — or any raw store at
/// all when the policy has elision off — is rejected as
/// [`harbor_sfi::VerifyError::RawStore`], so correctness never depends on
/// whoever produced (or rewrote) the image.
///
/// # Errors
///
/// [`LoadError::Verify`] from the deep verifier or the store gate, or
/// [`LoadError::StackBound`] when the certificate exceeds the allotment
/// (or is saturated).
pub fn check_policy(
    policy: &LoadPolicy,
    name: &'static str,
    words: &[u16],
    origin: u32,
    entries: &[u32],
    rt: &SfiRuntime,
    state_seg: (u16, u16),
) -> Result<(), LoadError> {
    let mut verifier = CfgVerifier::for_runtime(rt);
    let raw = harbor_sfi::raw_stores(words, origin, verifier.config());
    if !raw.is_empty() {
        if !policy.elide_certified {
            return Err(LoadError::Verify(harbor_sfi::VerifyError::RawStore { addr: raw[0] }));
        }
        let derived = verifier
            .certify_stores(words, origin, entries, state_seg.0, state_seg.1)
            .map_err(LoadError::Verify)?;
        for &addr in &raw {
            if !derived.certified(addr) {
                return Err(LoadError::Verify(harbor_sfi::VerifyError::RawStore { addr }));
            }
        }
        verifier = verifier.allowing_raw_stores(raw.into_iter().collect());
    }
    if policy.deep_verify {
        verifier.verify(words, origin, entries).map_err(LoadError::Verify)?;
    }
    let cert = verifier.certify(words, origin, entries).map_err(LoadError::Verify)?;
    if cert.saturated || cert.safe_stack_bytes > policy.safe_stack_allotment {
        return Err(LoadError::StackBound {
            name,
            certified: cert.safe_stack_bytes,
            allotment: policy.safe_stack_allotment,
        });
    }
    Ok(())
}

/// Assembles (and, under SFI, sandboxes) a module into its slot.
///
/// # Errors
///
/// See [`LoadError`].
pub fn load_module(
    src: &ModuleSource,
    layout: &SosLayout,
    protection: Protection,
    runtime: Option<&SfiRuntime>,
) -> Result<LoadedModule, LoadError> {
    load_module_with_policy(src, layout, protection, runtime, None)
}

/// [`load_module`] with an optional admission policy. The policy only
/// applies to the SFI build (the gate reasons about the safe stack, which
/// the other builds do not have).
///
/// # Errors
///
/// See [`LoadError`].
pub fn load_module_with_policy(
    src: &ModuleSource,
    layout: &SosLayout,
    protection: Protection,
    runtime: Option<&SfiRuntime>,
    policy: Option<&LoadPolicy>,
) -> Result<LoadedModule, LoadError> {
    let origin = layout.slot_for(src.domain.index());
    let ctx = ModuleCtx {
        layout: *layout,
        domain: src.domain,
        state_addr: layout.state_addr(src.domain.index()),
    };
    let mut a = Asm::new();
    (src.build)(&mut a, &ctx);
    let original = a.assemble(origin).expect("module source assembles");

    let (object, entry_addrs) = match protection {
        Protection::Sfi => {
            let rt = runtime.expect("SFI build has a runtime");
            let entry_points: Vec<u32> = src.entries.iter().map(|e| original.require(e)).collect();
            let state_seg = (ctx.state_addr, layout.state_len());
            // Stores certified against the module's own state segment stay
            // raw under an eliding policy; the admission gate re-derives
            // the certificate on the *rewritten* image below, so this
            // pre-rewrite pass is an optimisation hint, not a trust root.
            let elide: std::collections::BTreeSet<u32> = match policy {
                Some(p) if p.elide_certified => harbor_flow::certify_module_stores(
                    original.words(),
                    origin,
                    &entry_points,
                    state_seg.0,
                    state_seg.1,
                )
                .map(|c| c.certified_pcs().into_iter().collect())
                .unwrap_or_default(),
                _ => std::collections::BTreeSet::new(),
            };
            let rewritten =
                rewrite_with_elision(original.words(), origin, &entry_points, origin, rt, &elide)
                    .map_err(LoadError::Rewrite)?;
            let mut vcfg = VerifierConfig::for_runtime(rt);
            vcfg.certified_raw_stores = elide.iter().map(|&a| rewritten.translated(a)).collect();
            verify(rewritten.object.words(), origin, &vcfg).map_err(LoadError::Verify)?;
            let addrs: Vec<u32> = entry_points.iter().map(|&e| rewritten.translated(e)).collect();
            if let Some(p) = policy {
                check_policy(p, src.name, rewritten.object.words(), origin, &addrs, rt, state_seg)?;
            }
            (rewritten.object, addrs)
        }
        _ => {
            let addrs = src.entries.iter().map(|e| original.require(e)).collect();
            (original, addrs)
        }
    };

    let words = object.words().len() as u32;
    if words > layout.slot_words {
        return Err(LoadError::SlotOverflow { name: src.name, words, capacity: layout.slot_words });
    }
    Ok(LoadedModule { name: src.name, domain: src.domain, object, entry_addrs })
}

/// Builds all eight jump-table pages plus the in-table error stub.
///
/// * kernel API entries fill the trusted page (domain 7);
/// * loaded modules fill their pages;
/// * everything else redirects to the error stub (`ldi r24, 0xff ; ret`) —
///   the paper's "empty entries are filled with a jump to an exception
///   routine", which in SOS's dynamic-linking failure mode surfaces as an
///   error return code.
///
/// Returns `(base_word_addr, words)` covering the whole table region.
pub fn build_jump_tables(
    layout: &SosLayout,
    kernel_api: &[(JtEntry, u32)],
    modules: &[LoadedModule],
) -> (u32, Vec<u16>) {
    let base = layout.prot.jt_base as u32;
    let total = layout.prot.jt_domains as usize * 128;
    let stub_at = layout.jt_error_stub() as u32;

    let rjmp_to = |from: u32, target: u32| -> u16 {
        let k = target as i64 - (from as i64 + 1);
        assert!((-2048..=2047).contains(&k), "jump-table rjmp out of reach");
        isa::encode(Instr::Rjmp { k: k as i16 }).expect("valid rjmp").word0()
    };

    // Default: every entry redirects to the error stub.
    let mut words: Vec<u16> = (0..total as u32).map(|i| rjmp_to(base + i, stub_at)).collect();

    // The error stub itself occupies the last two words.
    let stub_idx = (stub_at - base) as usize;
    words[stub_idx] = isa::encode(Instr::Ldi { d: isa::Reg::R24, k: 0xff }).expect("ldi").word0();
    words[stub_idx + 1] = isa::encode(Instr::Ret).expect("ret").word0();

    // Kernel API entries.
    for &(entry, target) in kernel_api {
        let at = layout.jt_entry(7, entry as u16) as u32;
        words[(at - base) as usize] = rjmp_to(at, target);
    }

    // Module entries.
    for m in modules {
        for (i, &target) in m.entry_addrs.iter().enumerate() {
            let at = layout.jt_entry(m.domain.index(), i as u16) as u32;
            words[(at - base) as usize] = rjmp_to(at, target);
        }
    }

    (base, words)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_module(dom: u8) -> ModuleSource {
        ModuleSource {
            name: "trivial",
            domain: DomainId::num(dom),
            entries: vec!["handler"],
            build: Box::new(|a, _ctx| {
                a.here("handler");
                a.ret();
            }),
        }
    }

    #[test]
    fn load_plain_module() {
        let l = SosLayout::default_layout();
        let m = load_module(&trivial_module(2), &l, Protection::None, None).unwrap();
        assert_eq!(m.object.origin(), l.slot_for(2));
        assert_eq!(m.entry_addrs, vec![l.slot_for(2)]);
    }

    #[test]
    fn load_sfi_module_rewrites() {
        let l = SosLayout::default_layout();
        let rt = SfiRuntime::build(l.prot, l.runtime_origin);
        let m = load_module(&trivial_module(2), &l, Protection::Sfi, Some(&rt)).unwrap();
        // The handler gained a save-ret prologue and a restore-ret exit:
        // strictly more words than the single-ret original.
        assert!(m.object.words().len() > 1);
    }

    #[test]
    fn jump_tables_cover_all_domains() {
        let l = SosLayout::default_layout();
        let m = load_module(&trivial_module(0), &l, Protection::None, None).unwrap();
        let (base, words) = build_jump_tables(
            &l,
            &[(JtEntry::Malloc, l.api_origin), (JtEntry::Post, l.api_origin + 8)],
            &[m],
        );
        assert_eq!(base, l.prot.jt_base as u32);
        assert_eq!(words.len(), 1024);
        // Module entry 0 decodes to an rjmp landing on the module slot.
        let at = (l.jt_entry(0, 0) as u32 - base) as usize;
        let instr = isa::decode(words[at], None).unwrap();
        let Instr::Rjmp { k } = instr else { panic!("not an rjmp") };
        assert_eq!((l.jt_entry(0, 0) as i64 + 1 + k as i64) as u32, l.slot_for(0));
        // An unused entry redirects to the error stub.
        let unused = (l.jt_entry(4, 50) as u32 - base) as usize;
        let Instr::Rjmp { k } = isa::decode(words[unused], None).unwrap() else {
            panic!("not an rjmp")
        };
        assert_eq!((l.jt_entry(4, 50) as i64 + 1 + k as i64) as u16, l.jt_error_stub());
    }
}
