//! The system memory map: where the kernel, run-time, jump tables, module
//! slots and kernel data structures live. One concrete instance of the
//! paper's flexible layout, shared by all three protection builds.

use harbor_sfi::SfiLayout;

/// Flash and RAM layout constants for the mini-SOS system.
///
/// ```text
/// flash (word addresses)                 RAM (byte addresses)
/// 0x0000  reset vector                   0x0060  kernel scratch
/// 0x0040  kernel boot + scheduler        0x0062  cur_dom (SFI)
/// 0x0200  SFI run-time (SFI build only)  0x0063  stack_bound (SFI)
/// 0x0400  kernel API (jump-table         0x0065  safe_stack_ptr (SFI)
///         reachable: malloc/free/…)      0x0070  memory-map table (192 B)
/// 0x0800  jump tables (8 × 128 rjmp)     0x0170  code-bounds table (SFI)
/// 0x0c00  module slots, 256 words per    0x0190  heap alloc bitmap (31 B)
///         user domain (dom 0..=6)        0x01bc  message queue
///                                        0x01de  dispatch table (None build)
///                                        0x0200  heap (protected)
///                                        0x0d00  safe stack (protected)
///                                        0x0e00  run-time stack
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SosLayout {
    /// The protection-state layout (shared with the SFI run-time and
    /// matching `umpu::UmpuConfig::default_layout`).
    pub prot: SfiLayout,
    /// Kernel boot/scheduler code origin (word address).
    pub kernel_origin: u32,
    /// SFI run-time origin (word address; SFI build only).
    pub runtime_origin: u32,
    /// Kernel API functions origin — must be within `rjmp` reach of the
    /// trusted domain's jump-table page.
    pub api_origin: u32,
    /// First module slot (word address).
    pub module_slots: u32,
    /// Module slot size in words.
    pub slot_words: u32,
    /// Heap alloc bitmap address (one bit per heap block).
    pub alloc_bitmap: u16,
    /// Number of allocatable heap blocks (8-byte blocks from the heap base;
    /// capped at 248 so block indices fit in a byte).
    pub alloc_blocks: u16,
    /// Message-queue head index address.
    pub q_head: u16,
    /// Message-queue tail index address.
    pub q_tail: u16,
    /// Message-queue buffer address (16 × 2-byte entries).
    pub q_buf: u16,
    /// Dispatch table for the unprotected build (8 × 2-byte module entry
    /// word addresses). Reserved; the current kernel dispatches through the
    /// jump tables in every build.
    pub dispatch_table: u16,
    /// Destination domain of timer-interrupt messages (1 byte).
    pub timer_dom: u16,
}

impl SosLayout {
    /// The reference layout.
    pub const fn default_layout() -> SosLayout {
        SosLayout {
            prot: SfiLayout::default_layout(),
            kernel_origin: 0x0040,
            runtime_origin: 0x0200,
            api_origin: 0x0400,
            module_slots: 0x0c00,
            slot_words: 0x0100,
            alloc_bitmap: 0x0190,
            alloc_blocks: 1984 >> 3, // 248 blocks of 8 bytes
            q_head: 0x01bc,
            q_tail: 0x01bd,
            q_buf: 0x01be,
            dispatch_table: 0x01de,
            timer_dom: 0x01fd,
        }
    }

    /// Word address of the timer-interrupt vector (a `jmp` right after the
    /// two-word reset vector).
    pub const fn timer_vector(&self) -> u32 {
        2
    }

    /// Heap base (equals the protected range's bottom).
    pub const fn heap_base(&self) -> u16 {
        self.prot.prot_bottom
    }

    /// Word address of a domain's module slot.
    pub const fn slot_for(&self, dom: u8) -> u32 {
        self.module_slots + dom as u32 * self.slot_words
    }

    /// Word address of a domain's jump-table page.
    pub const fn jt_page(&self, dom: u8) -> u16 {
        self.prot.jt_base + dom as u16 * 128
    }

    /// Word address of jump-table `entry` of `dom`.
    pub const fn jt_entry(&self, dom: u8, entry: u16) -> u16 {
        self.jt_page(dom) + entry
    }

    /// Word address of the in-jump-table error stub (SOS's "failed dynamic
    /// link" target): the last two entries of the trusted domain's page.
    pub const fn jt_error_stub(&self) -> u16 {
        self.prot.jt_base + 8 * 128 - 2
    }

    /// Message-queue capacity (entries).
    pub const fn queue_capacity(&self) -> u8 {
        16
    }

    /// The reference layout with a different protection block size (the
    /// allocatable byte span stays fixed; the block count scales).
    ///
    /// # Panics
    ///
    /// Panics for block sizes outside 8..=32 bytes: finer blocks overflow
    /// the kernel's 8-bit block indices, coarser ones break the 32-byte
    /// alignment of the per-module state segments.
    pub const fn with_block_log2(block_log2: u8) -> SosLayout {
        assert!(block_log2 >= 3 && block_log2 <= 5, "supported block sizes: 8..=32");
        let mut l = SosLayout::default_layout();
        l.prot.block_log2 = block_log2;
        l.alloc_blocks = 1984 >> block_log2;
        l
    }

    /// log2 of the protection block size.
    pub const fn block_log2(&self) -> u8 {
        self.prot.block_log2
    }

    /// The protection block size in bytes.
    pub const fn block_bytes(&self) -> u16 {
        1 << self.prot.block_log2
    }

    /// Static per-module state segment (32 bytes), granted by the loader in
    /// the heap area above the dynamically allocatable blocks — SOS's
    /// load-time module state, simplified.
    pub const fn state_addr(&self, dom: u8) -> u16 {
        self.heap_base() + (self.alloc_blocks << self.prot.block_log2) + dom as u16 * 32
    }

    /// Size of a static state segment in bytes.
    pub const fn state_len(&self) -> u16 {
        32
    }
}

impl Default for SosLayout {
    fn default() -> Self {
        SosLayout::default_layout()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let l = SosLayout::default_layout();
        // Flash ordering.
        assert!(l.kernel_origin < l.runtime_origin);
        assert!(l.runtime_origin < l.api_origin);
        assert!(l.api_origin < l.prot.jt_base as u32);
        assert!((l.prot.jt_end() as u32) <= l.module_slots);
        // RAM ordering: bitmap/queue/dispatch fit below the heap.
        assert!(l.prot.code_bounds + 32 <= l.alloc_bitmap);
        assert!(l.alloc_bitmap + 31 <= l.q_head);
        assert!(l.q_buf + 32 <= l.dispatch_table);
        assert!(l.dispatch_table + 16 <= l.heap_base());
        // Alloc region fits inside the heap.
        assert!(l.heap_base() + (l.alloc_blocks << l.block_log2()) <= l.prot.safe_stack_base);
    }

    #[test]
    fn jump_table_entries_reach_their_targets() {
        let l = SosLayout::default_layout();
        // Every module slot must be within rjmp reach of its page.
        for dom in 0..7u8 {
            let entry = l.jt_entry(dom, 127) as i64;
            let slot_end = (l.slot_for(dom) + l.slot_words) as i64;
            assert!(slot_end - (entry + 1) <= 2047, "dom {dom} slot out of rjmp reach");
        }
        // Kernel API functions (trusted page) must be reachable backwards.
        let trusted_entry = l.jt_entry(7, 0) as i64;
        assert!(trusted_entry + 1 - (l.api_origin as i64) <= 2048);
        // Error stub sits inside the jump-table region.
        assert!((l.jt_error_stub() as u32) < l.prot.jt_end() as u32);
        assert!(l.jt_error_stub() >= l.jt_page(7));
    }
}
