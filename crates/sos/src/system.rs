//! [`SosSystem`]: a complete bootable machine — kernel, run-time, jump
//! tables and modules — under any of the three protection builds.

use crate::kernel::{JtEntry, KernelApi, KernelImage, MSG_INIT};
use crate::layout::SosLayout;
use crate::loader::{
    build_jump_tables, check_policy, load_module, load_module_with_policy, LoadError, LoadPolicy,
    LoadedModule, ModuleSource,
};
use avr_asm::Asm;
use avr_core::exec::{Cpu, Step};
use avr_core::mem::{Flash, PlainEnv};
use avr_core::{Fault, WordAddr};
use harbor::DomainId;
use harbor_scope::{
    ArchSnapshot, DomainProfiler, Event, Mechanism, RegionMap, ScopeSink, TraceSink,
};
use harbor_sfi::SfiRuntime;
use harbor_turbo::{TurboEngine, TurboStats};
use umpu::UmpuEnv;

/// One protection fault the system observed, in the uniform
/// code/operand vocabulary shared by the UMPU hardware and the SFI
/// run-time's panic port (see `avr_core::EnvFault`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Cycle counter when the fault surfaced.
    pub cycles: u64,
    /// Protection fault code.
    pub code: u16,
    /// Faulting address (code-specific operand).
    pub addr: u16,
    /// Second code-specific operand.
    pub info: u16,
}

/// Which protection implementation the system is built with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protection {
    /// Stock AVR: no protection (the evaluation baseline).
    None,
    /// UMPU hardware extensions.
    Umpu,
    /// Software fault isolation (binary rewriting).
    Sfi,
}

// One per system and stepped once per simulated instruction — boxing the
// large variant would trade a few hundred inline bytes for a pointer chase
// in the hot loop.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum Mach {
    Plain(Cpu<PlainEnv>),
    Umpu(Cpu<UmpuEnv>),
}

/// A complete mini-SOS machine.
///
/// The whole machine state is a plain value: `Clone` gives deterministic
/// snapshot/restore (used by benches to replay identical runs).
#[derive(Debug, Clone)]
pub struct SosSystem {
    /// The protection build.
    pub protection: Protection,
    /// The layout.
    pub layout: SosLayout,
    /// The kernel image (for symbol lookups).
    pub kernel: KernelImage,
    /// The SFI run-time (SFI builds).
    pub runtime: Option<SfiRuntime>,
    /// The loaded modules.
    pub modules: Vec<LoadedModule>,
    mach: Mach,
    booted: bool,
    load_policy: Option<LoadPolicy>,
    // Trace sink for the Plain builds (the UMPU build keeps its sink inside
    // the env so the hardware units can report directly).
    scope: Option<ScopeSink>,
    // Every protection fault observed, in order.
    faults: Vec<FaultRecord>,
    // Monotonic count of host-side flash mutations (module install/unload,
    // OTA reassembly) — the single invalidation signal for any cache keyed
    // on flash contents. Bumped by `write_flash_object`/`write_jt_entry`,
    // the two choke points every flash write goes through.
    flash_generation: u64,
    // The opt-in fast path; `None` (the default) runs the reference
    // interpreter. Cycle-identical either way — see `DESIGN.md` §6.
    turbo: Option<TurboEngine>,
    // Opt-in store-check elision (the UMPU build): when set, admission
    // derives a `StoreCertificate` per module and publishes the union
    // elision map to the env. Cycle-, event- and state-identical either
    // way — see `DESIGN.md` §7.
    prove: bool,
    // Cached per-domain store certificates, re-derived (with the elision
    // map) at every rebuild point; `certs_generation` records the flash
    // generation they were derived under, mirroring the turbo pages'
    // invalidation discipline.
    store_certs: Vec<(DomainId, harbor_flow::StoreCertificate)>,
    certs_generation: u64,
    // Lifecycle counts for post-boot dynamic loads — boot-time module
    // registration is not counted. Observability only (fleet rollups
    // attribute OTA churn per cohort from these).
    modules_installed: u64,
    modules_unloaded: u64,
}

impl SosSystem {
    /// Builds the system: kernel + (SFI) run-time + modules + jump tables,
    /// all burned into flash. Call [`SosSystem::boot`] next.
    ///
    /// The `app` closure emits the driver program that runs after boot
    /// (typically: run the scheduler, do work, `break`).
    ///
    /// # Errors
    ///
    /// [`LoadError`] if a module cannot be sandboxed or does not fit.
    pub fn build(
        protection: Protection,
        sources: &[ModuleSource],
        app: impl FnOnce(&mut Asm, &KernelApi),
    ) -> Result<SosSystem, LoadError> {
        SosSystem::build_with_layout(protection, SosLayout::default_layout(), sources, app)
    }

    /// [`SosSystem::build`] with a custom layout (e.g. a different
    /// protection block size from [`SosLayout::with_block_log2`]).
    ///
    /// # Errors
    ///
    /// [`LoadError`] if a module cannot be sandboxed or does not fit.
    pub fn build_with_layout(
        protection: Protection,
        layout: SosLayout,
        sources: &[ModuleSource],
        app: impl FnOnce(&mut Asm, &KernelApi),
    ) -> Result<SosSystem, LoadError> {
        let runtime = match protection {
            Protection::Sfi => Some(SfiRuntime::build(layout.prot, layout.runtime_origin)),
            _ => None,
        };
        let stubs =
            runtime.as_ref().map(|rt| (rt.stub("harbor_xdom_call"), rt.stub("harbor_xdom_call_z")));

        let kernel = KernelImage::build(protection, layout, stubs, app);

        let modules: Vec<LoadedModule> = sources
            .iter()
            .map(|s| load_module(s, &layout, protection, runtime.as_ref()))
            .collect::<Result<_, _>>()?;

        let kernel_api = [
            (JtEntry::Malloc, kernel.symbol("ker_malloc")),
            (JtEntry::Free, kernel.symbol("ker_free")),
            (JtEntry::ChangeOwn, kernel.symbol("ker_change_own")),
            (JtEntry::Post, kernel.symbol("ker_post")),
        ];
        let (jt_base, jt_words) = build_jump_tables(&layout, &kernel_api, &modules);

        let mut flash = Flash::new();
        kernel.load_into(&mut flash);
        if let Some(rt) = &runtime {
            rt.object().load_into(&mut flash);
        }
        flash.load_words(jt_base, &jt_words);
        for m in &modules {
            m.object.load_into(&mut flash);
        }

        let mach = match protection {
            Protection::Umpu => {
                let mut env = UmpuEnv::new();
                env.flash = flash;
                Mach::Umpu(Cpu::new(env))
            }
            _ => {
                let mut env = PlainEnv::new();
                env.flash = flash;
                Mach::Plain(Cpu::new(env))
            }
        };

        let mut sys = SosSystem {
            protection,
            layout,
            kernel,
            runtime,
            modules,
            mach,
            booted: false,
            load_policy: None,
            scope: None,
            faults: Vec::new(),
            flash_generation: 0,
            turbo: None,
            prove: false,
            store_certs: Vec::new(),
            certs_generation: 0,
            modules_installed: 0,
            modules_unloaded: 0,
        };
        if prove_env_default() {
            sys.set_prove(true);
        }
        if turbo_env_default() {
            sys.set_turbo(true);
        }
        Ok(sys)
    }

    /// Enables or disables store-check elision (`harbor-prove`). Under the
    /// UMPU build, admission derives a `harbor-flow` [`StoreCertificate`]
    /// for every loaded module against its own state segment and publishes
    /// the union as the env's elision map: certified stores skip the MMC
    /// walk (and re-run it under `debug_assert!` parity). Execution is
    /// cycle-, event- and state-identical either way. The default follows
    /// the `HARBOR_PROVE` environment variable (`1` = on), so the whole
    /// test suite can run as an elision matrix leg without code changes.
    /// A no-op outside UMPU (the SFI build elides through [`LoadPolicy`]'s
    /// `elide_certified`, which *does* change cycle counts).
    pub fn set_prove(&mut self, on: bool) {
        self.prove = on;
        self.rebuild_elision();
        if self.turbo.is_some() {
            // Re-prime so the shared decoded image carries elision bits
            // consistent with the new map.
            self.set_turbo(true);
        }
    }

    /// Whether store-check elision is active.
    pub fn prove_enabled(&self) -> bool {
        self.prove
    }

    /// The cached per-domain store certificates (empty unless
    /// [`SosSystem::set_prove`] is on under UMPU), and the flash generation
    /// they were derived under.
    pub fn store_certificates(&self) -> (&[(DomainId, harbor_flow::StoreCertificate)], u64) {
        (&self.store_certs, self.certs_generation)
    }

    /// Re-derives every module's store certificate and publishes the union
    /// elision map — called at each point the set of loaded modules (or
    /// their flash) changes: build, install, unload. Always bumps the
    /// flash generation so decoded fast-path pages (which bake the elision
    /// bit per slot) can never outlive the map they were built against.
    fn rebuild_elision(&mut self) {
        self.store_certs.clear();
        let map = if self.prove && self.protection == Protection::Umpu {
            let mut map = umpu::ElisionMap::new();
            for m in &self.modules {
                let seg = self.layout.state_addr(m.domain.index());
                let len = self.layout.state_len();
                if let Ok(cert) = harbor_flow::certify_module_stores(
                    m.object.words(),
                    m.object.origin(),
                    &m.entry_addrs,
                    seg,
                    len,
                ) {
                    for pc in cert.certified_pcs() {
                        map.set(pc);
                    }
                    self.store_certs.push((m.domain, cert));
                }
            }
            (!map.is_empty()).then(|| std::sync::Arc::new(map))
        } else {
            None
        };
        self.flash_generation += 1;
        self.certs_generation = self.flash_generation;
        if let Mach::Umpu(c) = &mut self.mach {
            c.env.set_elision_map(map);
        }
    }

    /// Enables or disables the turbo fast-path engine (`harbor-turbo`).
    /// Execution is cycle-, event- and state-identical either way; turbo
    /// only removes per-instruction fetch/decode work. The default follows
    /// the `HARBOR_TURBO` environment variable (`1` = on), so the whole
    /// test suite can run as a turbo matrix leg without code changes.
    pub fn set_turbo(&mut self, on: bool) {
        self.turbo = if on {
            // Prime eagerly: the decoded image is shared (`Arc`) by every
            // clone of this system, so a fleet built from one prototype
            // reads a single cache-hot image across all its nodes.
            let mut t = TurboEngine::new();
            match &self.mach {
                Mach::Plain(c) => t.prime(&c.env, self.flash_generation),
                Mach::Umpu(c) => t.prime(&c.env, self.flash_generation),
            }
            Some(t)
        } else {
            None
        };
    }

    /// Whether the turbo fast path is active.
    pub fn turbo_enabled(&self) -> bool {
        self.turbo.is_some()
    }

    /// The turbo engine's cache counters, if turbo is enabled.
    pub fn turbo_stats(&self) -> Option<TurboStats> {
        self.turbo.as_ref().map(TurboEngine::stats)
    }

    /// Monotonic count of host-side flash mutations. Every path that burns
    /// flash on a booted system — [`SosSystem::install_module`],
    /// [`SosSystem::unload_module`], OTA reassembly through `harbor-fleet` —
    /// funnels through the two flash-write choke points, each of which bumps
    /// this counter; observers caching anything derived from flash contents
    /// (the turbo engine's decoded blocks) use it as their single
    /// invalidation point.
    pub fn flash_generation(&self) -> u64 {
        self.flash_generation
    }

    /// Run-time count of stores that took the certified elided path
    /// (`harbor-prove` under the UMPU build; always 0 otherwise).
    pub fn stores_elided(&self) -> u64 {
        match &self.mach {
            Mach::Umpu(c) => c.env.stores_elided(),
            Mach::Plain(_) => 0,
        }
    }

    /// Modules dynamically installed since boot (boot-time registration
    /// is not counted).
    pub fn modules_installed(&self) -> u64 {
        self.modules_installed
    }

    /// Modules unloaded since boot.
    pub fn modules_unloaded(&self) -> u64 {
        self.modules_unloaded
    }

    /// Attaches a trace sink: from here on, every protection decision,
    /// cross-domain edge, fault and kernel lifecycle event is recorded.
    /// Purely observational — attaching a sink never changes simulated
    /// cycle counts (regression-tested in `tests/scope_integration.rs`).
    pub fn attach_scope(&mut self, sink: ScopeSink) {
        match &mut self.mach {
            Mach::Umpu(c) => c.env.scope = Some(sink),
            Mach::Plain(_) => self.scope = Some(sink),
        }
    }

    /// The attached trace sink, if any.
    #[inline]
    pub fn scope(&self) -> Option<&ScopeSink> {
        match &self.mach {
            Mach::Umpu(c) => c.env.scope.as_ref(),
            Mach::Plain(_) => self.scope.as_ref(),
        }
    }

    /// Detaches and returns the trace sink.
    pub fn take_scope(&mut self) -> Option<ScopeSink> {
        match &mut self.mach {
            Mach::Umpu(c) => c.env.scope.take(),
            Mach::Plain(_) => self.scope.take(),
        }
    }

    /// Every protection fault observed so far, oldest first. Uniform across
    /// builds: UMPU faults come from the hardware units' rich records, SFI
    /// faults from the run-time's panic port.
    pub fn fault_history(&self) -> &[FaultRecord] {
        &self.faults
    }

    fn emit(&mut self, ev: Event) {
        let sink = match &mut self.mach {
            Mach::Umpu(c) => c.env.scope.as_mut(),
            Mach::Plain(_) => self.scope.as_mut(),
        };
        if let Some(sink) = sink {
            sink.record(&ev);
        }
    }

    fn note_result(&mut self, r: &Result<Step, Fault>) {
        if let Err(Fault::Env(e)) = r {
            let record =
                FaultRecord { cycles: self.cycles(), code: e.code, addr: e.addr, info: e.info };
            self.faults.push(record);
            // The UMPU env already reported the fault event when its units
            // raised it; the Plain builds surface faults only here.
            if matches!(self.mach, Mach::Plain(_)) {
                self.emit(Event::Fault {
                    cycles: record.cycles,
                    code: record.code,
                    addr: record.addr,
                    info: record.info,
                });
            }
        }
    }

    /// Boots the system: runs the kernel's reset/init code to its boot
    /// break, then performs the loader's registration work (code regions,
    /// static state grants) and posts each module its init message. The
    /// init messages are *delivered* when the app first runs the scheduler.
    ///
    /// # Errors
    ///
    /// Any [`Fault`] during the kernel's boot code.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn boot(&mut self) -> Result<(), Fault> {
        assert!(!self.booted, "boot may only run once");
        match self.run_to_break(1_000_000)? {
            Step::Break => {}
            other => panic!("boot ended unexpectedly: {other:?}"),
        }
        self.booted = true;

        // Loader registration.
        let mods: Vec<(DomainId, u32, u32)> =
            self.modules.iter().map(|m| (m.domain, m.object.origin(), m.object.end())).collect();
        for (dom, start, end) in &mods {
            match (&mut self.mach, self.protection) {
                (Mach::Umpu(cpu), _) => {
                    cpu.env.set_code_region(*dom, *start as u16, *end as u16);
                }
                (Mach::Plain(cpu), Protection::Sfi) => {
                    let rt = self.runtime.as_ref().expect("SFI runtime");
                    rt.set_code_bounds(&mut cpu.env.data, *dom, *start as u16, *end as u16);
                }
                _ => {}
            }
            // Static state segment grant.
            let state = self.layout.state_addr(dom.index());
            let len = self.layout.state_len();
            match &mut self.mach {
                Mach::Umpu(cpu) => {
                    cpu.env.host_set_segment(*dom, state, len).expect("state grant");
                }
                Mach::Plain(cpu) => {
                    if self.protection == Protection::Sfi {
                        let rt = self.runtime.as_ref().expect("SFI runtime");
                        rt.host_set_segment(&mut cpu.env.data, *dom, state, len)
                            .expect("state grant");
                    }
                }
            }
        }

        // Init messages, oldest module first.
        for (dom, ..) in &mods {
            self.post(*dom, MSG_INIT);
        }
        Ok(())
    }

    /// The kernel's exception handler, host-modelled: after a protection
    /// fault aborts a module mid-handler, restore a clean trusted context
    /// (active domain, stack bound, safe stack, SP) so the kernel can
    /// continue scheduling — the paper's "a stable kernel can always ensure
    /// a clean re-start of user modules when corruption is detected".
    /// Memory, the memory map and the message queue are untouched.
    pub fn recover_from_fault(&mut self) {
        match &mut self.mach {
            Mach::Umpu(cpu) => {
                cpu.env.recover_to_trusted();
                cpu.sp = avr_core::mem::RAMEND;
            }
            Mach::Plain(cpu) => {
                if let Some(rt) = self.runtime.as_ref() {
                    let l = rt.layout();
                    rt.set_current_domain(&mut cpu.env.data, DomainId::TRUSTED);
                    let ramend = avr_core::mem::RAMEND;
                    cpu.env.data.write(l.stack_bound, (ramend & 0xff) as u8).unwrap();
                    cpu.env.data.write(l.stack_bound + 1, (ramend >> 8) as u8).unwrap();
                    cpu.env.data.write(l.safe_stack_ptr, (l.safe_stack_base & 0xff) as u8).unwrap();
                    cpu.env
                        .data
                        .write(l.safe_stack_ptr + 1, (l.safe_stack_base >> 8) as u8)
                        .unwrap();
                }
                cpu.sp = avr_core::mem::RAMEND;
            }
        }
        // The UMPU env reports its own recovery; the Plain builds report
        // here so every build's trace shows the same lifecycle.
        if matches!(self.mach, Mach::Plain(_)) {
            let cycles = self.cycles();
            self.emit(Event::Recovery { cycles });
        }
    }

    /// Dynamically loads a module into a **booted** system — SOS's
    /// signature capability, and the operation whose ordering triggers the
    /// paper's Surge bug. Performs everything the build-time loader does:
    /// assemble (rewrite + verify under SFI), burn the flash slot, link the
    /// jump-table entries, register the code region, grant the state
    /// segment, and post the init message.
    ///
    /// # Errors
    ///
    /// [`LoadError`] if the module cannot be sandboxed or does not fit.
    ///
    /// # Panics
    ///
    /// Panics if called before [`SosSystem::boot`] or if the domain is
    /// already occupied.
    pub fn load_module(&mut self, src: &ModuleSource) -> Result<(), LoadError> {
        let loaded = load_module_with_policy(
            src,
            &self.layout,
            self.protection,
            self.runtime.as_ref(),
            self.load_policy.as_ref(),
        )?;
        self.install_module(loaded);
        Ok(())
    }

    /// Sets (or clears) the admission policy applied by
    /// [`SosSystem::load_module`] and [`SosSystem::admit_module`]. Only the
    /// SFI build gates; the policy is inert under `None`/`Umpu`.
    pub fn set_load_policy(&mut self, policy: Option<LoadPolicy>) {
        self.load_policy = policy;
    }

    /// The current admission policy.
    pub fn load_policy(&self) -> Option<LoadPolicy> {
        self.load_policy
    }

    /// Checks a **pre-assembled** module (e.g. one that arrived over a
    /// transport) against the admission policy without installing it. With
    /// no policy set, or outside the SFI build, every module is admitted.
    ///
    /// # Errors
    ///
    /// See [`check_policy`].
    pub fn admit_module(&self, loaded: &LoadedModule) -> Result<(), LoadError> {
        match (&self.load_policy, self.protection, self.runtime.as_ref()) {
            (Some(policy), Protection::Sfi, Some(rt)) => check_policy(
                policy,
                loaded.name,
                loaded.object.words(),
                loaded.object.origin(),
                &loaded.entry_addrs,
                rt,
                (self.layout.state_addr(loaded.domain.index()), self.layout.state_len()),
            ),
            _ => Ok(()),
        }
    }

    /// Installs a **pre-assembled** module into a booted system — the tail
    /// half of [`SosSystem::load_module`], split out so a module image that
    /// arrived over a transport (e.g. radio dissemination in `harbor-fleet`)
    /// takes exactly the same path as a locally assembled one: burn the
    /// flash slot, link the jump-table entries, register the code region,
    /// grant the state segment, and post the init message.
    ///
    /// # Panics
    ///
    /// Panics if called before [`SosSystem::boot`], if the domain is already
    /// occupied, or if the object was assembled for a different slot.
    pub fn install_module(&mut self, loaded: LoadedModule) {
        assert!(self.booted, "install_module requires a booted system");
        assert!(
            !self.modules.iter().any(|m| m.domain == loaded.domain),
            "domain {} already occupied",
            loaded.domain
        );
        assert_eq!(
            loaded.object.origin(),
            self.layout.slot_for(loaded.domain.index()),
            "module `{}` was assembled for a different slot",
            loaded.name
        );

        // Burn the module and its jump-table entries.
        self.write_flash_object(&loaded.object);
        for (i, &target) in loaded.entry_addrs.iter().enumerate() {
            let at = self.layout.jt_entry(loaded.domain.index(), i as u16) as u32;
            self.write_jt_entry(at, target);
        }

        // Code region + state grant (as boot-time registration does).
        let (start, end) = (loaded.object.origin(), loaded.object.end());
        let state = self.layout.state_addr(loaded.domain.index());
        let len = self.layout.state_len();
        match &mut self.mach {
            Mach::Umpu(cpu) => {
                cpu.env.set_code_region(loaded.domain, start as u16, end as u16);
                cpu.env.host_set_segment(loaded.domain, state, len).expect("state grant");
            }
            Mach::Plain(cpu) => {
                if let Some(rt) = self.runtime.as_ref() {
                    rt.set_code_bounds(&mut cpu.env.data, loaded.domain, start as u16, end as u16);
                    rt.host_set_segment(&mut cpu.env.data, loaded.domain, state, len)
                        .expect("state grant");
                }
            }
        }

        let dom = loaded.domain;
        self.modules.push(loaded);
        self.rebuild_elision();
        self.modules_installed += 1;
        let cycles = self.cycles();
        self.emit(Event::ModuleInstall { cycles, domain: dom.index() });
        self.post(dom, MSG_INIT);
    }

    /// Unloads a module: points its jump-table entries back at the error
    /// stub (subsequent cross-domain calls to it fail with `0xff`, the
    /// paper's failed-linking behaviour), revokes its code region, and —
    /// in the protected builds — reclaims every block of memory the module
    /// owned (the memory map knows exactly what that is; the unprotected
    /// build has no such record and leaks, which is rather the point).
    ///
    /// # Panics
    ///
    /// Panics if no module occupies `dom`.
    pub fn unload_module(&mut self, dom: DomainId) {
        let idx = self.modules.iter().position(|m| m.domain == dom).expect("domain is occupied");
        let loaded = self.modules.remove(idx);

        // Jump-table entries → error stub.
        let stub = self.layout.jt_error_stub() as u32;
        for i in 0..loaded.entry_addrs.len() {
            let at = self.layout.jt_entry(dom.index(), i as u16) as u32;
            self.write_jt_entry(at, stub);
        }

        // Revoke the code region and reclaim owned memory.
        match &mut self.mach {
            Mach::Umpu(cpu) => {
                cpu.env.clear_code_region(dom);
                let mut map = cpu.env.memory_map_view();
                let reclaimed = map.free_all_owned(dom);
                let base = cpu.env.mmc.mem_map_base;
                for (i, &b) in map.as_bytes().iter().enumerate() {
                    cpu.env.data.write(base + i as u16, b).expect("map in RAM");
                }
                Self::reclaim_bitmap(&self.layout, &mut cpu.env.data, &reclaimed);
            }
            Mach::Plain(cpu) => {
                if let Some(rt) = self.runtime.as_ref() {
                    rt.set_code_bounds(&mut cpu.env.data, dom, 0, 0);
                    let mut map = rt.memory_map_view(&cpu.env.data);
                    let reclaimed = map.free_all_owned(dom);
                    let base = rt.layout().mem_map_base;
                    for (i, &b) in map.as_bytes().iter().enumerate() {
                        cpu.env.data.write(base + i as u16, b).expect("map in RAM");
                    }
                    Self::reclaim_bitmap(&self.layout, &mut cpu.env.data, &reclaimed);
                }
                // Unprotected build: no ownership records exist, so the
                // module's heap memory cannot be identified — it leaks.
            }
        }
        self.rebuild_elision();
        self.modules_unloaded += 1;
        let cycles = self.cycles();
        self.emit(Event::ModuleUnload { cycles, domain: dom.index() });
    }

    /// Clears allocator-bitmap bits for reclaimed segments that lie in the
    /// dynamically allocatable region.
    fn reclaim_bitmap(
        layout: &SosLayout,
        data: &mut avr_core::mem::DataMem,
        reclaimed: &[(u16, u16)],
    ) {
        let log2 = layout.block_log2();
        let alloc_end = layout.heap_base() + (layout.alloc_blocks << log2);
        for &(addr, blocks) in reclaimed {
            if addr < layout.heap_base() || addr >= alloc_end {
                continue; // static grants (state segments) have no bitmap bits
            }
            let first = (addr - layout.heap_base()) >> log2;
            for b in first..first + blocks {
                let byte_at = layout.alloc_bitmap + b / 8;
                let v = data.read(byte_at).expect("bitmap in RAM");
                data.write(byte_at, v & !(1 << (b % 8))).expect("bitmap in RAM");
            }
        }
    }

    fn write_flash_object(&mut self, obj: &avr_asm::Object) {
        self.flash_generation += 1;
        match &mut self.mach {
            Mach::Plain(c) => obj.load_into(&mut c.env.flash),
            Mach::Umpu(c) => obj.load_into(&mut c.env.flash),
        }
    }

    fn write_jt_entry(&mut self, at: u32, target: u32) {
        let k = target as i64 - (at as i64 + 1);
        assert!((-2048..=2047).contains(&k), "jump-table rjmp out of reach");
        let word = avr_core::isa::encode(avr_core::isa::Instr::Rjmp { k: k as i16 })
            .expect("valid rjmp")
            .word0();
        self.flash_generation += 1;
        match &mut self.mach {
            Mach::Plain(c) => c.env.flash.set_word(at, word),
            Mach::Umpu(c) => c.env.flash.set_word(at, word),
        }
    }

    /// Host-side message post (what a radio/timer interrupt would do).
    ///
    /// # Panics
    ///
    /// Panics if the queue is full.
    pub fn post(&mut self, dom: DomainId, msg: u8) {
        assert!(self.try_post(dom, msg), "message queue full");
    }

    /// Host-side message post that reports back-pressure instead of
    /// panicking: returns `false` (dropping the message) when the kernel
    /// queue is full — what a real radio stack does under overload.
    pub fn try_post(&mut self, dom: DomainId, msg: u8) -> bool {
        let l = self.layout;
        let tail = self.sram(l.q_tail);
        let head = self.sram(l.q_head);
        let next = (tail + 1) & 0x0f;
        let cycles = self.cycles();
        if next == head {
            self.emit(Event::MessagePost { cycles, domain: dom.index(), msg, accepted: false });
            return false;
        }
        self.write_sram(l.q_buf + tail as u16 * 2, dom.index());
        self.write_sram(l.q_buf + tail as u16 * 2 + 1, msg);
        self.write_sram(l.q_tail, next);
        self.emit(Event::MessagePost { cycles, domain: dom.index(), msg, accepted: true });
        true
    }

    /// Number of messages waiting in the kernel queue.
    pub fn queue_len(&self) -> u8 {
        let l = self.layout;
        let head = self.sram(l.q_head);
        let tail = self.sram(l.q_tail);
        tail.wrapping_sub(head) & 0x0f
    }

    /// Word address where the application/driver code resumes after the
    /// boot break — steering here re-enters the app's scheduler loop (the
    /// recurring-timer idiom of the examples, exposed for fleet stepping).
    pub fn scheduler_entry(&self) -> WordAddr {
        self.symbol("ker_boot_done") + 1
    }

    /// Re-enters the app code and runs one bounded scheduling slice: the
    /// round-based stepping hook used by `harbor-fleet`. Equivalent to
    /// [`SosSystem::steer`]\(entry\) + [`SosSystem::run_to_break`].
    ///
    /// # Errors
    ///
    /// Any [`Fault`], including protection faults as [`Fault::Env`].
    pub fn run_slice(&mut self, max_cycles: u64) -> Result<Step, Fault> {
        let entry = self.scheduler_entry();
        self.steer(entry);
        let cycles = self.cycles();
        let queued = self.queue_len();
        self.emit(Event::SchedulerSlice { cycles, queued });
        self.run_to_break(max_cycles)
    }

    /// Runs until `BREAK`/`SLEEP`.
    ///
    /// # Errors
    ///
    /// Any [`Fault`], including protection faults as [`Fault::Env`].
    pub fn run_to_break(&mut self, max_cycles: u64) -> Result<Step, Fault> {
        let generation = self.flash_generation;
        let r = match (&mut self.mach, &mut self.turbo) {
            (Mach::Plain(c), Some(t)) => t.run_to_break(c, generation, max_cycles),
            (Mach::Umpu(c), Some(t)) => t.run_to_break(c, generation, max_cycles),
            (Mach::Plain(c), None) => c.run_to_break(max_cycles),
            (Mach::Umpu(c), None) => c.run_to_break(max_cycles),
        };
        self.note_result(&r);
        r
    }

    /// Runs until the PC reaches `pc` (for cycle-accurate span timing).
    ///
    /// # Errors
    ///
    /// Any [`Fault`].
    pub fn run_to_pc(&mut self, pc: WordAddr, max_cycles: u64) -> Result<Step, Fault> {
        let generation = self.flash_generation;
        let r = match (&mut self.mach, &mut self.turbo) {
            (Mach::Plain(c), Some(t)) => t.run_to_pc(c, generation, pc, max_cycles),
            (Mach::Umpu(c), Some(t)) => t.run_to_pc(c, generation, pc, max_cycles),
            (Mach::Plain(c), None) => c.run_to_pc(pc, max_cycles),
            (Mach::Umpu(c), None) => c.run_to_pc(pc, max_cycles),
        };
        self.note_result(&r);
        r
    }

    /// Total cycles executed.
    #[inline]
    pub fn cycles(&self) -> u64 {
        match &self.mach {
            Mach::Plain(c) => c.cycles(),
            Mach::Umpu(c) => c.cycles(),
        }
    }

    /// Cycles spent asleep waiting for interrupts (see
    /// [`Cpu::idle_cycles`](avr_core::exec::Cpu::idle_cycles)).
    pub fn idle_cycles(&self) -> u64 {
        match &self.mach {
            Mach::Plain(c) => c.idle_cycles(),
            Mach::Umpu(c) => c.idle_cycles(),
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> WordAddr {
        match &self.mach {
            Mach::Plain(c) => c.pc,
            Mach::Umpu(c) => c.pc,
        }
    }

    /// Forces the program counter (harness privilege — e.g. re-entering the
    /// driver loop to model a recurring timer).
    pub fn steer(&mut self, pc: WordAddr) {
        match &mut self.mach {
            Mach::Plain(c) => c.pc = pc,
            Mach::Umpu(c) => c.pc = pc,
        }
    }

    /// Arms the periodic timer interrupt: every `period` cycles, the ISR
    /// posts [`MSG_TIMER`](crate::kernel::MSG_TIMER) to `dom`. Call after
    /// [`SosSystem::boot`]; the app must `sei` for interrupts to fire.
    pub fn enable_timer(&mut self, period: u64, dom: DomainId) {
        let timer = avr_core::mem::Timer::new(period, self.layout.timer_vector());
        match &mut self.mach {
            Mach::Plain(c) => c.env.timer = Some(timer),
            Mach::Umpu(c) => c.env.timer = Some(timer),
        }
        self.write_sram(self.layout.timer_dom, dom.index());
    }

    /// Reads a data-memory byte.
    ///
    /// # Panics
    ///
    /// Panics outside SRAM.
    pub fn sram(&self, addr: u16) -> u8 {
        match &self.mach {
            Mach::Plain(c) => c.env.data.read(addr).expect("in SRAM"),
            Mach::Umpu(c) => c.env.data.read(addr).expect("in SRAM"),
        }
    }

    /// Reads a little-endian word from data memory.
    pub fn sram16(&self, addr: u16) -> u16 {
        self.sram(addr) as u16 | ((self.sram(addr + 1) as u16) << 8)
    }

    /// Writes a data-memory byte (host/loader privilege).
    ///
    /// # Panics
    ///
    /// Panics outside SRAM.
    pub fn write_sram(&mut self, addr: u16, v: u8) {
        match &mut self.mach {
            Mach::Plain(c) => c.env.data.write(addr, v).expect("in SRAM"),
            Mach::Umpu(c) => c.env.data.write(addr, v).expect("in SRAM"),
        }
    }

    /// Kernel symbol lookup.
    ///
    /// # Panics
    ///
    /// Panics on unknown symbols.
    pub fn symbol(&self, name: &str) -> u32 {
        self.kernel.symbol(name)
    }

    /// Bytes written to the simulator debug port so far.
    pub fn debug_out(&self) -> &[u8] {
        match &self.mach {
            Mach::Plain(c) => &c.env.debug_out,
            Mach::Umpu(c) => &c.env.debug_out,
        }
    }

    /// Total instructions retired.
    pub fn instructions(&self) -> u64 {
        match &self.mach {
            Mach::Plain(c) => c.instructions(),
            Mach::Umpu(c) => c.instructions(),
        }
    }

    /// Copies `len` flash words starting at word address `start` (state
    /// comparison hook: module slots, jump-table pages).
    pub fn flash_words(&self, start: u32, len: u32) -> Vec<u16> {
        let flash = match &self.mach {
            Mach::Plain(c) => &c.env.flash,
            Mach::Umpu(c) => &c.env.flash,
        };
        (start..start + len).map(|a| flash.word(a)).collect()
    }

    /// The 128-word jump-table page of `dom`.
    pub fn jt_page_words(&self, dom: u8) -> Vec<u16> {
        self.flash_words(self.layout.jt_page(dom) as u32, 128)
    }

    /// The in-RAM memory-map table of the protected builds (`None` build:
    /// no map exists).
    pub fn memory_map_bytes(&self) -> Option<Vec<u8>> {
        match (&self.mach, self.protection) {
            (Mach::Umpu(cpu), _) => Some(cpu.env.memory_map_view().as_bytes().to_vec()),
            (Mach::Plain(cpu), Protection::Sfi) => {
                let rt = self.runtime.as_ref().expect("SFI runtime");
                Some(rt.memory_map_view(&cpu.env.data).as_bytes().to_vec())
            }
            _ => None,
        }
    }

    /// The UMPU environment, for hardware-state inspection (UMPU builds).
    pub fn umpu_env(&self) -> Option<&UmpuEnv> {
        match &self.mach {
            Mach::Umpu(c) => Some(&c.env),
            Mach::Plain(_) => None,
        }
    }

    /// Current run-time stack pointer.
    pub fn sp(&self) -> u16 {
        match &self.mach {
            Mach::Plain(c) => c.sp,
            Mach::Umpu(c) => c.sp,
        }
    }

    /// The active protection domain's raw index (7 = trusted): the UMPU
    /// domain tracker's register, the SFI run-time's `cur_dom` RAM cell, or
    /// always-trusted for the unprotected build (which has no domains).
    pub fn active_domain(&self) -> u8 {
        match (&self.mach, self.protection) {
            (Mach::Umpu(c), _) => c.env.tracker.current.index(),
            (Mach::Plain(c), Protection::Sfi) => {
                let rt = self.runtime.as_ref().expect("SFI runtime");
                rt.current_domain(&c.env.data).index()
            }
            _ => DomainId::TRUSTED.index(),
        }
    }

    /// One architectural state capture at this instant — the uniform
    /// register vocabulary the `harbor-blackbox` flight recorder rings and
    /// freezes into postmortem dumps. UMPU builds read the hardware units'
    /// registers, SFI builds the run-time's RAM cells, and the unprotected
    /// build reports zeros for the protection registers it does not have.
    pub fn arch_snapshot(&self) -> ArchSnapshot {
        let mut s = match (&self.mach, self.protection) {
            (Mach::Umpu(c), _) => c.env.regs_snapshot(),
            (Mach::Plain(c), Protection::Sfi) => {
                let rt = self.runtime.as_ref().expect("SFI runtime");
                let l = *rt.layout();
                ArchSnapshot {
                    domain: rt.current_domain(&c.env.data).index(),
                    mem_map_base: l.mem_map_base,
                    prot_bottom: l.prot_bottom,
                    prot_top: l.prot_top,
                    block_log2: l.block_log2,
                    stack_bound: self.sram16(l.stack_bound),
                    safe_stack_ptr: self.sram16(l.safe_stack_ptr),
                    safe_stack_base: l.safe_stack_base,
                    safe_stack_limit: l.safe_stack_limit,
                    ..ArchSnapshot::default()
                }
            }
            _ => ArchSnapshot { domain: DomainId::TRUSTED.index(), ..ArchSnapshot::default() },
        };
        s.cycles = self.cycles();
        s.pc = self.pc();
        s.sp = self.sp();
        s
    }

    /// The occupied bytes of the safe (control) stack, `base..ptr` — the
    /// return-address and crossing-frame record a postmortem dump preserves
    /// so the fatal call chain can be reconstructed. Empty for the
    /// unprotected build (no safe stack exists).
    pub fn safe_stack_bytes(&self) -> Vec<u8> {
        let (base, ptr) = match (&self.mach, self.protection) {
            (Mach::Umpu(c), _) => (c.env.safe_stack.base, c.env.safe_stack.ptr),
            (Mach::Plain(_), Protection::Sfi) => {
                let l = *self.runtime.as_ref().expect("SFI runtime").layout();
                (l.safe_stack_base, self.sram16(l.safe_stack_ptr))
            }
            _ => return Vec::new(),
        };
        (base..ptr.max(base)).map(|a| self.sram(a)).collect()
    }

    /// Per-domain ownership census of the memory-map table: element `d` is
    /// the number of protection blocks domain `d` currently owns, with
    /// element 7 counting trusted/free blocks. All zeros for the `None`
    /// build (no map exists).
    pub fn ownership_summary(&self) -> [u16; 8] {
        let mut owned = [0u16; 8];
        let map = match (&self.mach, self.protection) {
            (Mach::Umpu(c), _) => c.env.memory_map_view(),
            (Mach::Plain(c), Protection::Sfi) => {
                self.runtime.as_ref().expect("SFI runtime").memory_map_view(&c.env.data)
            }
            _ => return owned,
        };
        for block in 0..map.config().num_blocks() {
            owned[map.record(block).owner.index() as usize & 7] += 1;
        }
        owned
    }

    /// The rich fault record of the most recent protection fault, where the
    /// build keeps one (UMPU).
    pub fn last_protection_fault(&self) -> Option<harbor::ProtectionFault> {
        match &self.mach {
            Mach::Umpu(c) => c.env.last_fault,
            Mach::Plain(_) => None,
        }
    }

    /// The flash-region classification the per-domain cycle profiler uses:
    /// jump-table pages count as each domain's crossing machinery, module
    /// slots as its application code, the SFI run-time's stubs as trusted
    /// check/crossing code, and everything else (kernel, API, driver) as
    /// trusted kernel work.
    pub fn scope_region_map(&self) -> RegionMap {
        let mut m = RegionMap::new(DomainId::TRUSTED.index(), Mechanism::Kernel);
        for dom in 0..8u8 {
            let base = self.layout.jt_page(dom) as u32;
            m.add(base, base + 128, dom, Mechanism::Crossing);
        }
        for dom in 0..7u8 {
            let slot = self.layout.slot_for(dom);
            m.add(slot, slot + self.layout.slot_words, dom, Mechanism::App);
        }
        if let Some(rt) = &self.runtime {
            for (start, end, mech) in rt.scope_regions() {
                m.add(start, end, DomainId::TRUSTED.index(), mech);
            }
        }
        m
    }

    /// Runs like [`SosSystem::run_to_break`] but steps one instruction at a
    /// time, attributing every elapsed cycle to a (domain, mechanism) pair:
    /// UMPU stall cycles reported by the attached sink are booked to their
    /// mechanism, the remainder to the retired PC's flash region. Totals
    /// reconcile exactly with [`SosSystem::cycles`] — every delta is booked.
    ///
    /// Works with or without a sink (without one, UMPU stalls are folded
    /// into the instruction's region — attach one for the exact Table-5
    /// split). With a [`RingSink`](harbor_scope::RingSink), size it to hold
    /// at least one instruction's events (a handful).
    ///
    /// # Errors
    ///
    /// Any [`Fault`], including [`Fault::CycleLimit`] past `max_cycles`.
    /// The faulting instruction's elapsed cycles are still attributed.
    pub fn run_profiled(
        &mut self,
        profiler: &mut DomainProfiler,
        max_cycles: u64,
    ) -> Result<Step, Fault> {
        let limit = self.cycles().saturating_add(max_cycles);
        profiler.resync(self.cycles());
        loop {
            let before = self.scope().map_or(0, ScopeSink::recorded);
            let pc = self.pc();
            let stepped = match &mut self.mach {
                Mach::Plain(c) => c.step_traced(),
                Mach::Umpu(c) => c.step_traced(),
            };
            match stepped {
                Ok((step, entry)) => {
                    let stalls = self.stalls_since(before);
                    profiler.record_instruction(entry.pc, entry.cycles_after, &stalls);
                    match step {
                        Step::Continue => {}
                        s => return Ok(s),
                    }
                    if self.cycles() > limit {
                        return Err(Fault::CycleLimit { cycles: self.cycles() });
                    }
                }
                Err(f) => {
                    // The instruction did not retire; whatever the attempt
                    // cost still belongs to its region.
                    let stalls = self.stalls_since(before);
                    profiler.record_instruction(pc, self.cycles(), &stalls);
                    let r = Err(f);
                    self.note_result(&r);
                    return r;
                }
            }
        }
    }

    /// [`SosSystem::run_slice`] under the profiler: re-enters the app's
    /// scheduler loop and attributes the whole slice.
    ///
    /// # Errors
    ///
    /// As [`SosSystem::run_profiled`].
    pub fn run_slice_profiled(
        &mut self,
        profiler: &mut DomainProfiler,
        max_cycles: u64,
    ) -> Result<Step, Fault> {
        let entry = self.scheduler_entry();
        self.steer(entry);
        let cycles = self.cycles();
        let queued = self.queue_len();
        self.emit(Event::SchedulerSlice { cycles, queued });
        self.run_profiled(profiler, max_cycles)
    }

    // Stall attributions from events the last instruction recorded:
    // (domain, mechanism, stall cycles) for every stall-charging event.
    fn stalls_since(&self, before: u64) -> Vec<(u8, Mechanism, u64)> {
        let Some(sink) = self.scope() else {
            return Vec::new();
        };
        let newly = (sink.recorded() - before) as usize;
        if newly == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        for ev in sink.tail(newly) {
            match ev {
                Event::MemMapCheck { granted: true, stall, domain, .. } if stall > 0 => {
                    out.push((domain, Mechanism::Check, stall as u64));
                }
                Event::CrossDomainCall { callee, stall, .. } => {
                    out.push((callee, Mechanism::Crossing, stall as u64));
                }
                Event::CrossDomainRet { from, stall, .. } => {
                    out.push((from, Mechanism::Crossing, stall as u64));
                }
                Event::InterruptEntry { stall, .. } => {
                    out.push((DomainId::TRUSTED.index(), Mechanism::Crossing, stall as u64));
                }
                _ => {}
            }
        }
        out
    }
}

/// Initial turbo state for freshly built systems: on when `HARBOR_TURBO=1`
/// is set, so CI can run the entire suite as a turbo matrix leg.
fn turbo_env_default() -> bool {
    std::env::var_os("HARBOR_TURBO").is_some_and(|v| v == "1")
}

/// Initial elision state for freshly built systems: on when
/// `HARBOR_PROVE=1` is set, so CI can run the entire suite as an elision
/// matrix leg (byte-identical under UMPU, a no-op elsewhere).
fn prove_env_default() -> bool {
    std::env::var_os("HARBOR_PROVE").is_some_and(|v| v == "1")
}
