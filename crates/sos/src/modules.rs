//! The demo modules: Blink, Tree Routing and Surge — including the paper's
//! war-story bug (Surge uses an unchecked cross-domain error return as a
//! buffer offset).

use crate::kernel::{JtEntry, MSG_INIT};
use crate::loader::ModuleSource;
use avr_core::isa::{Ptr, PtrMode, Reg};
use harbor::DomainId;

const R18: Reg = Reg::R18;
const R19: Reg = Reg::R19;
const R20: Reg = Reg::R20;
const R22: Reg = Reg::R22;
const R24: Reg = Reg::R24;
const R25: Reg = Reg::R25;
const R26: Reg = Reg::R26;
const R27: Reg = Reg::R27;

/// "LED" port the blink module toggles (outside the UMPU register file).
pub const LED_PORT: u8 = 0x18;

/// Blink: the hello-world module. Keeps a counter in its static state and
/// mirrors it to the LED port on every timer message.
pub fn blink(dom: u8) -> ModuleSource {
    ModuleSource {
        name: "blink",
        domain: DomainId::num(dom),
        entries: vec!["blink_handler"],
        build: Box::new(|a, ctx| {
            let state = ctx.state_addr;
            let timer = a.label("blink_timer");
            a.here("blink_handler");
            a.cpi(R24, MSG_INIT);
            a.brne(timer);
            a.clr(R18);
            a.sts(state, R18);
            a.ret();
            a.bind(timer);
            a.lds(R18, state);
            a.inc(R18);
            a.sts(state, R18);
            a.out(LED_PORT, R18);
            a.ret();
        }),
    }
}

/// Tree Routing: exports `get_parent` (entry 1). Until its init message
/// arrives it reports failure (`0xff`) — and when the module is absent
/// entirely, the jump-table error stub produces the same `0xff`, modelling
/// SOS's failed dynamic linking.
pub fn tree_routing(dom: u8) -> ModuleSource {
    ModuleSource {
        name: "tree_routing",
        domain: DomainId::num(dom),
        entries: vec!["tree_handler", "tree_get_parent"],
        build: Box::new(|a, ctx| {
            let state = ctx.state_addr; // [0] parent, [1] initialised
            let done = a.label("tree_done");
            let not_init = a.label("tree_ni");
            a.here("tree_handler");
            a.cpi(R24, MSG_INIT);
            a.brne(done);
            a.ldi(R18, 2); // parent offset in the sample buffer
            a.sts(state, R18);
            a.ldi(R18, 1);
            a.sts(state + 1, R18);
            a.bind(done);
            a.ret();

            a.here("tree_get_parent");
            a.lds(R24, state + 1);
            a.tst(R24);
            a.breq(not_init);
            a.lds(R24, state);
            a.ret();
            a.bind(not_init);
            a.ldi(R24, 0xff);
            a.ret();
        }),
    }
}

/// Surge: the data-collection module with the deployment bug Harbor caught.
///
/// On init it mallocs a 16-byte sample buffer. On every timer message it
/// asks Tree Routing for the parent offset and stores the new sample at
/// `buffer[offset]` — **without checking the error return**. When Tree
/// Routing is missing (loaded after Surge, or not at all), the cross-domain
/// call yields `0xff` and the store lands ~255 bytes past the buffer:
/// silent memory corruption on a stock AVR, a protection fault under
/// Harbor.
pub fn surge(dom: u8, tree_dom: u8) -> ModuleSource {
    ModuleSource {
        name: "surge",
        domain: DomainId::num(dom),
        entries: vec!["surge_handler"],
        build: Box::new(move |a, ctx| {
            let state = ctx.state_addr; // [0..2] buffer ptr, [2] counter
            let own_dom = ctx.domain.index();
            let timer = a.label("surge_timer");
            a.here("surge_handler");
            a.cpi(R24, MSG_INIT);
            a.brne(timer);
            // buffer = ker_malloc(16, own domain)
            a.ldi(R24, 16);
            a.ldi(R22, own_dom);
            ctx.call_kernel(a, JtEntry::Malloc);
            a.sts(state, R24);
            a.sts(state + 1, R25);
            a.clr(R18);
            a.sts(state + 2, R18);
            a.ret();

            a.bind(timer);
            // offset = tree_get_parent()   ← THE BUG: r24 may be the error
            // code 0xff, and nothing checks it.
            ctx.call_module(a, DomainId::num(tree_dom), 1);
            a.mov(R20, R24);
            // counter++
            a.lds(R18, state + 2);
            a.inc(R18);
            a.sts(state + 2, R18);
            // buffer[offset] = counter
            a.lds(R26, state);
            a.lds(R27, state + 1);
            a.add(R26, R20);
            a.clr(R19);
            a.adc(R27, R19);
            a.st(Ptr::X, PtrMode::Plain, R18);
            a.ret();
        }),
    }
}

/// A *fixed* Surge that checks the error return — used by the ablation
/// bench and as the repaired version of the war story.
pub fn surge_fixed(dom: u8, tree_dom: u8) -> ModuleSource {
    ModuleSource {
        name: "surge_fixed",
        domain: DomainId::num(dom),
        entries: vec!["surge_handler"],
        build: Box::new(move |a, ctx| {
            let state = ctx.state_addr;
            let own_dom = ctx.domain.index();
            let timer = a.label("surge_timer");
            let drop = a.label("surge_drop");
            a.here("surge_handler");
            a.cpi(R24, MSG_INIT);
            a.brne(timer);
            a.ldi(R24, 16);
            a.ldi(R22, own_dom);
            ctx.call_kernel(a, JtEntry::Malloc);
            a.sts(state, R24);
            a.sts(state + 1, R25);
            a.clr(R18);
            a.sts(state + 2, R18);
            a.ret();
            a.bind(timer);
            ctx.call_module(a, DomainId::num(tree_dom), 1);
            a.cpi(R24, 16);
            a.brsh(drop); // offset out of range: drop the sample
            a.mov(R20, R24);
            a.lds(R18, state + 2);
            a.inc(R18);
            a.sts(state + 2, R18);
            a.lds(R26, state);
            a.lds(R27, state + 1);
            a.add(R26, R20);
            a.clr(R19);
            a.adc(R27, R19);
            a.st(Ptr::X, PtrMode::Plain, R18);
            a.bind(drop);
            a.ret();
        }),
    }
}

/// Store-stress: a module whose timer handler hammers the first half of its
/// static state segment with direct `sts` writes — 16 unrolled stores per
/// pass (the unroll is capped by the backward-branch range), 16 passes per
/// message. Every store targets a constant address inside the module's own
/// segment, so the `harbor-flow` dataflow pass certifies all of them — the
/// store-dominated workload the `elision_speedup` bench uses to expose the
/// memory-map-check elision win.
pub fn stress_store(dom: u8) -> ModuleSource {
    ModuleSource {
        name: "stress_store",
        domain: DomainId::num(dom),
        entries: vec!["stress_handler"],
        build: Box::new(|a, ctx| {
            let state = ctx.state_addr;
            let unroll = ctx.layout.state_len().min(16);
            let timer = a.label("stress_timer");
            let pass = a.label("stress_pass");
            a.here("stress_handler");
            a.cpi(R24, MSG_INIT);
            a.brne(timer);
            a.clr(R18);
            a.sts(state, R18);
            a.ret();
            a.bind(timer);
            a.lds(R18, state);
            a.inc(R18);
            a.ldi(R19, 16);
            a.bind(pass);
            for i in 0..unroll {
                a.sts(state + i, R18);
            }
            a.dec(R19);
            a.brne(pass);
            a.ret();
        }),
    }
}

/// Producer half of the SOS buffer-handoff pipeline: on each timer message
/// it mallocs an 8-byte buffer, writes a sample, transfers ownership to
/// `consumer_dom` via `change_own`, publishes the pointer in its state and
/// posts the consumer.
pub fn producer(dom: u8, consumer_dom: u8) -> ModuleSource {
    ModuleSource {
        name: "producer",
        domain: DomainId::num(dom),
        entries: vec!["producer_handler"],
        build: Box::new(move |a, ctx| {
            let state = ctx.state_addr; // [0..2] published ptr, [2] seq
            let own = ctx.domain.index();
            let done = a.label("producer_done");
            a.here("producer_handler");
            a.cpi(R24, MSG_INIT);
            a.breq(done);
            // buf = malloc(8, self)
            a.ldi(R24, 8);
            a.ldi(R22, own);
            ctx.call_kernel(a, JtEntry::Malloc);
            a.sts(state, R24);
            a.sts(state + 1, R25);
            // *buf = ++seq
            a.lds(R18, state + 2);
            a.inc(R18);
            a.sts(state + 2, R18);
            a.mov(R26, R24);
            a.mov(R27, R25);
            a.st(avr_core::isa::Ptr::X, PtrMode::Plain, R18);
            // change_own(buf, consumer); post(consumer, TIMER)
            a.lds(R24, state);
            a.lds(R25, state + 1);
            a.ldi(R22, consumer_dom);
            ctx.call_kernel(a, JtEntry::ChangeOwn);
            a.ldi(R24, consumer_dom);
            a.ldi(R22, crate::kernel::MSG_TIMER);
            ctx.call_kernel(a, JtEntry::Post);
            a.bind(done);
            a.ret();
        }),
    }
}

/// Consumer half of the pipeline: reads the published pointer from the
/// producer's state, accumulates the sample, and frees the buffer it now
/// owns.
pub fn consumer(dom: u8, producer_dom: u8) -> ModuleSource {
    ModuleSource {
        name: "consumer",
        domain: DomainId::num(dom),
        entries: vec!["consumer_handler"],
        build: Box::new(move |a, ctx| {
            let state = ctx.state_addr; // [0] acc, [1] count, [2] last free status
            let producer_state = ctx.layout.state_addr(producer_dom);
            let done = a.label("consumer_done");
            a.here("consumer_handler");
            a.cpi(R24, MSG_INIT);
            a.breq(done);
            a.lds(R26, producer_state);
            a.lds(R27, producer_state + 1);
            a.ld(R18, avr_core::isa::Ptr::X, PtrMode::Plain);
            a.lds(R19, state);
            a.add(R19, R18);
            a.sts(state, R19);
            a.lds(R19, state + 1);
            a.inc(R19);
            a.sts(state + 1, R19);
            // free(buf) — we own it after the handoff.
            a.lds(R24, producer_state);
            a.lds(R25, producer_state + 1);
            ctx.call_kernel(a, JtEntry::Free);
            a.sts(state + 2, R24);
            a.bind(done);
            a.ret();
        }),
    }
}
