//! Instruction-by-instruction lockstep of the turbo engine against the
//! reference interpreter on the plain (protection-free) machine: identical
//! registers, PC, SP, SREG, SRAM, cycle counts and fault behaviour.

use avr_core::exec::{Cpu, Step};
use avr_core::isa::{Instr, Ptr, PtrMode, Reg};
use avr_core::mem::{PlainEnv, Timer};
use avr_core::Fault;
use harbor_turbo::TurboEngine;

fn machine(prog: &[Instr]) -> Cpu<PlainEnv> {
    let mut env = PlainEnv::new();
    env.load_program(0, prog);
    Cpu::new(env)
}

fn assert_same_state(a: &Cpu<PlainEnv>, b: &Cpu<PlainEnv>, what: &str) {
    assert_eq!(a.pc, b.pc, "{what}: pc");
    assert_eq!(a.sp, b.sp, "{what}: sp");
    assert_eq!(a.sreg, b.sreg, "{what}: sreg");
    assert_eq!(a.regs, b.regs, "{what}: register file");
    assert_eq!(a.cycles(), b.cycles(), "{what}: cycles");
    assert_eq!(a.instructions(), b.instructions(), "{what}: instructions");
    assert_eq!(a.idle_cycles(), b.idle_cycles(), "{what}: idle cycles");
    assert_eq!(a.env.data.sram(), b.env.data.sram(), "{what}: sram");
    assert_eq!(a.env.debug_out, b.env.debug_out, "{what}: debug out");
}

/// Steps both machines to completion in lockstep, comparing after every
/// instruction, and returns the terminal outcome (which must also agree).
fn lockstep(prog: &[Instr], max_steps: usize) -> Result<Step, Fault> {
    let mut reference = machine(prog);
    let mut turbo_cpu = machine(prog);
    let mut turbo = TurboEngine::new();
    for n in 0..max_steps {
        let r = reference.step();
        let t = turbo.step(&mut turbo_cpu, 0);
        assert_eq!(r, t, "step {n}: outcome diverged");
        assert_same_state(&reference, &turbo_cpu, &format!("step {n}"));
        match r {
            Ok(Step::Continue) => {}
            other => return other,
        }
    }
    panic!("program did not terminate in {max_steps} steps");
}

#[test]
fn arithmetic_loop_is_lockstep_identical() {
    // A counting loop exercising ALU flags, a conditional branch taken and
    // not taken, and stores through the MMC-free bus.
    let prog = [
        Instr::Ldi { d: Reg::R16, k: 0 },
        Instr::Ldi { d: Reg::R17, k: 10 },
        // loop:
        Instr::Inc { d: Reg::R16 },
        Instr::Sts { k: 0x0100, r: Reg::R16 },
        Instr::Cp { d: Reg::R16, r: Reg::R17 },
        Instr::Brbc { s: 1, k: -5 }, // brne loop (Z clear)
        Instr::Break,
    ];
    let out = lockstep(&prog, 200);
    assert_eq!(out, Ok(Step::Break));
}

#[test]
fn calls_returns_and_stack_are_lockstep_identical() {
    let prog = [
        Instr::Ldi { d: Reg::R24, k: 7 },
        Instr::Rcall { k: 1 }, // -> subroutine at word 3
        Instr::Break,
        // subroutine:
        Instr::Push { r: Reg::R24 },
        Instr::Inc { d: Reg::R24 },
        Instr::Pop { d: Reg::R25 },
        Instr::Ret,
    ];
    let out = lockstep(&prog, 100);
    assert_eq!(out, Ok(Step::Break));
}

#[test]
fn two_word_instructions_are_lockstep_identical() {
    let prog = [
        Instr::Ldi { d: Reg::R20, k: 0x5a },
        Instr::Sts { k: 0x0200, r: Reg::R20 },
        Instr::Lds { d: Reg::R21, k: 0x0200 },
        Instr::Jmp { k: 9 },   // words 5-6 -> the CALL at word 9
        Instr::Nop,            // word 7: skipped by the jump
        Instr::Nop,            // word 8
        Instr::Call { k: 12 }, // words 9-10 -> the RET at word 12
        Instr::Break,          // word 11
        Instr::Ret,            // word 12
    ];
    let out = lockstep(&prog, 100);
    assert_eq!(out, Ok(Step::Break));
}

#[test]
fn skips_over_two_word_instructions_are_lockstep_identical() {
    let prog = [
        Instr::Ldi { d: Reg::R16, k: 1 },
        Instr::Sbrs { r: Reg::R16, b: 0 }, // bit set: skip the 2-word STS
        Instr::Sts { k: 0x0100, r: Reg::R16 },
        Instr::Sbrc { r: Reg::R16, b: 1 }, // bit clear: skip the 1-word INC
        Instr::Inc { d: Reg::R16 },
        Instr::Cpse { d: Reg::R16, r: Reg::R16 }, // equal: skip
        Instr::Ldi { d: Reg::R16, k: 0xff },
        Instr::Break,
    ];
    let out = lockstep(&prog, 100);
    assert_eq!(out, Ok(Step::Break));
}

#[test]
fn indirect_memory_modes_are_lockstep_identical() {
    let prog = [
        Instr::Ldi { d: Reg::R26, k: 0x00 }, // X = 0x0100
        Instr::Ldi { d: Reg::R27, k: 0x01 },
        Instr::Ldi { d: Reg::R16, k: 0xaa },
        Instr::St { ptr: Ptr::X, mode: PtrMode::PostInc, r: Reg::R16 },
        Instr::St { ptr: Ptr::X, mode: PtrMode::PostInc, r: Reg::R16 },
        Instr::Ld { d: Reg::R17, ptr: Ptr::X, mode: PtrMode::PreDec },
        Instr::Ldi { d: Reg::R28, k: 0x04 }, // Y = 0x0104
        Instr::Ldi { d: Reg::R29, k: 0x01 },
        Instr::Std { ptr: Ptr::Y, q: 3, r: Reg::R17 },
        Instr::Ldd { d: Reg::R18, ptr: Ptr::Y, q: 3 },
        Instr::Break,
    ];
    let out = lockstep(&prog, 100);
    assert_eq!(out, Ok(Step::Break));
}

#[test]
fn timer_interrupts_and_sleep_are_lockstep_identical() {
    // Vector at 0 jumps over the handler; handler increments r20 and RETIs;
    // main enables I, sleeps repeatedly, so every wake-up path (IRQ dispatch
    // + SLEEP fast-forward) runs through both engines.
    let prog = [
        Instr::Jmp { k: 4 }, // reset -> main (word 4)
        Instr::Nop,          // word 2: irq vector
        Instr::Inc { d: Reg::R20 },
        Instr::Reti,
        // main (word 4):
        Instr::Bset { s: 7 }, // sei
        Instr::Sleep,
        Instr::Sleep,
        Instr::Sleep,
        Instr::Break,
    ];
    let mk = || {
        let mut env = PlainEnv::new();
        env.load_program(0, &prog);
        env.timer = Some(Timer::new(50, 2));
        Cpu::new(env)
    };
    let mut reference = mk();
    let mut turbo_cpu = mk();
    let mut turbo = TurboEngine::new();
    for n in 0..500 {
        let r = reference.step();
        let t = turbo.step(&mut turbo_cpu, 0);
        assert_eq!(r, t, "step {n}");
        assert_same_state(&reference, &turbo_cpu, &format!("step {n}"));
        if r == Ok(Step::Break) {
            assert!(reference.reg(Reg::R20) >= 3, "handler ran per sleep");
            return;
        }
    }
    panic!("did not reach break");
}

#[test]
fn illegal_opcode_faults_identically() {
    let mut env_a = PlainEnv::new();
    env_a.load_program(0, &[Instr::Nop]);
    env_a.flash.set_word(1, 0x0001); // reserved encoding
    let env_b = env_a.clone();
    let mut reference = Cpu::new(env_a);
    let mut turbo_cpu = Cpu::new(env_b);
    let mut turbo = TurboEngine::new();
    assert_eq!(reference.step(), Ok(Step::Continue));
    assert_eq!(turbo.step(&mut turbo_cpu, 0), Ok(Step::Continue));
    let r = reference.step();
    let t = turbo.step(&mut turbo_cpu, 0);
    assert_eq!(r, Err(Fault::IllegalOpcode { pc: 1, word: 0x0001 }));
    assert_eq!(t, r, "fault verdict diverged");
    assert_same_state(&reference, &turbo_cpu, "after fault");
}

#[test]
fn generation_bump_invalidates_cached_code() {
    // Execute a loop, then patch flash host-side and bump the generation:
    // the engine must see the new code immediately (stale blocks dropped).
    let prog = [Instr::Ldi { d: Reg::R16, k: 1 }, Instr::Rjmp { k: -2 }];
    let mut cpu = machine(&prog);
    let mut turbo = TurboEngine::new();
    for _ in 0..8 {
        turbo.step(&mut cpu, 1).unwrap();
    }
    assert!(turbo.stats().blocks_built >= 1);
    // Host rewrites word 0 to a BREAK, bumps the generation.
    cpu.env.flash.load_program(0, &[Instr::Break]);
    cpu.pc = 0;
    let out = turbo.step(&mut cpu, 2).unwrap();
    assert_eq!(out, Step::Break, "engine executed the patched instruction");
    assert!(turbo.stats().invalidations >= 2, "generation change invalidated the cache");
}

#[test]
fn run_to_break_matches_reference_cycle_limit_behaviour() {
    let prog = [Instr::Ldi { d: Reg::R16, k: 1 }, Instr::Rjmp { k: -2 }];
    let mut reference = machine(&prog);
    let mut turbo_cpu = machine(&prog);
    let mut turbo = TurboEngine::new();
    let r = reference.run_to_break(1000);
    let t = turbo.run_to_break(&mut turbo_cpu, 0, 1000);
    assert!(matches!(r, Err(Fault::CycleLimit { .. })));
    assert_eq!(r, t, "cycle-limit fault diverged");
    assert_same_state(&reference, &turbo_cpu, "after cycle limit");
}

#[test]
fn run_to_pc_matches_reference() {
    let prog = [
        Instr::Ldi { d: Reg::R16, k: 3 },
        Instr::Dec { d: Reg::R16 },
        Instr::Brbc { s: 1, k: -2 },
        Instr::Break,
    ];
    let mut reference = machine(&prog);
    let mut turbo_cpu = machine(&prog);
    let mut turbo = TurboEngine::new();
    let r = reference.run_to_pc(3, 10_000);
    let t = turbo.run_to_pc(&mut turbo_cpu, 0, 3, 10_000);
    assert_eq!(r, t);
    assert_same_state(&reference, &turbo_cpu, "at stop pc");
}
