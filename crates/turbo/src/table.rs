//! The 64k-entry decode table: every possible first opcode word, predecoded.
//!
//! The reference interpreter decodes each fetched word through
//! [`avr_core::isa::decode`]'s nested match chain. The table replaces that
//! with one array index: for one-word instructions the slot holds the fully
//! decoded [`Instr`]; for the four two-word instructions (`JMP`, `CALL`,
//! `LDS`, `STS`) it holds the operand fields that come from the first word,
//! and [`DecodeTable::decode`] patches in the second word. The table is
//! built once per process (first use) from the reference decoder itself, so
//! it cannot diverge from the oracle — and an exhaustive unit test proves
//! slot-for-slot equivalence anyway.

use avr_core::isa::{self, Instr, Reg};
use std::sync::OnceLock;

/// One predecoded table slot.
#[derive(Debug, Clone, Copy)]
enum Slot {
    /// A complete one-word instruction.
    One(Instr),
    /// `JMP` with the first word's address bits already shifted into place;
    /// the full target is `hi | w1`.
    Jmp { hi: u32 },
    /// `CALL`, same split as [`Slot::Jmp`].
    Call { hi: u32 },
    /// `LDS Rd, k` — `k` is the second word verbatim.
    Lds { d: Reg },
    /// `STS k, Rr` — `k` is the second word verbatim.
    Sts { r: Reg },
    /// Reserved or unsupported encoding.
    Illegal,
}

/// The full 64k-entry predecode table. Build it once with
/// [`DecodeTable::global`] and share it across every engine (it is immutable
/// after construction, so one static serves a whole fleet).
#[derive(Debug)]
pub struct DecodeTable {
    slots: Vec<Slot>,
}

impl DecodeTable {
    fn build() -> DecodeTable {
        let mut slots = Vec::with_capacity(0x1_0000);
        for w0 in 0..=0xffffu16 {
            let slot = if isa::is_two_word(w0) {
                // Decode with a zero second word, then remember which fields
                // the second word supplies.
                match isa::decode(w0, Some(0)) {
                    Ok(Instr::Jmp { k }) => Slot::Jmp { hi: k },
                    Ok(Instr::Call { k }) => Slot::Call { hi: k },
                    Ok(Instr::Lds { d, .. }) => Slot::Lds { d },
                    Ok(Instr::Sts { r, .. }) => Slot::Sts { r },
                    _ => Slot::Illegal,
                }
            } else {
                match isa::decode(w0, None) {
                    Ok(i) => Slot::One(i),
                    Err(_) => Slot::Illegal,
                }
            };
            slots.push(slot);
        }
        DecodeTable { slots }
    }

    /// The process-wide table, built on first use.
    pub fn global() -> &'static DecodeTable {
        static TABLE: OnceLock<DecodeTable> = OnceLock::new();
        TABLE.get_or_init(DecodeTable::build)
    }

    /// Whether `w0` begins a two-word instruction (table-driven
    /// [`isa::is_two_word`]).
    #[inline]
    pub fn is_two_word(&self, w0: u16) -> bool {
        matches!(
            self.slots[w0 as usize],
            Slot::Jmp { .. } | Slot::Call { .. } | Slot::Lds { .. } | Slot::Sts { .. }
        )
    }

    /// Table-driven decode: the instruction and its word count, or `None`
    /// for a reserved encoding. `w1` is ignored for one-word instructions,
    /// so callers may pass anything when `is_two_word` is false.
    #[inline]
    pub fn decode(&self, w0: u16, w1: u16) -> Option<(Instr, u8)> {
        match self.slots[w0 as usize] {
            Slot::One(i) => Some((i, 1)),
            Slot::Jmp { hi } => Some((Instr::Jmp { k: hi | w1 as u32 }, 2)),
            Slot::Call { hi } => Some((Instr::Call { k: hi | w1 as u32 }, 2)),
            Slot::Lds { d } => Some((Instr::Lds { d, k: w1 }, 2)),
            Slot::Sts { r } => Some((Instr::Sts { k: w1, r }, 2)),
            Slot::Illegal => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The table must agree with the reference decoder on every first word,
    /// for several second words exercising all operand bits.
    #[test]
    fn exhaustive_equivalence_with_reference_decoder() {
        let t = DecodeTable::global();
        for w0 in 0..=0xffffu16 {
            assert_eq!(t.is_two_word(w0), isa::is_two_word(w0), "is_two_word({w0:#06x})");
            for w1 in [0x0000u16, 0xffff, 0x1234, 0x8001] {
                let reference = if isa::is_two_word(w0) {
                    isa::decode(w0, Some(w1)).ok()
                } else {
                    isa::decode(w0, None).ok()
                };
                let table = t.decode(w0, w1).map(|(i, _)| i);
                assert_eq!(table, reference, "decode({w0:#06x}, {w1:#06x})");
                if !isa::is_two_word(w0) {
                    break; // w1 is irrelevant; one probe suffices
                }
            }
        }
    }

    #[test]
    fn word_counts_match_the_isa() {
        let t = DecodeTable::global();
        for w0 in 0..=0xffffu16 {
            if let Some((i, words)) = t.decode(w0, 0) {
                assert_eq!(words as u32, i.words(), "words({w0:#06x})");
            }
        }
    }
}
