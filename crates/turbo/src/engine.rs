//! The turbo engine: a generation-keyed predecoded-page cache over the
//! decode table, stepping the reference CPU without per-instruction
//! fetch/decode work.
//!
//! # Cycle-identity contract
//!
//! Every [`TurboEngine::step`] performs *exactly* the reference
//! [`Cpu::step`] sequence, with cached decode substituted for fetch+decode:
//!
//! 1. [`Cpu::begin_step`] — cycle latch into the environment, then interrupt
//!    dispatch (identical to the reference; the page lookup simply restarts
//!    at the vector).
//! 2. The fetch-side protection check, in one of two equivalent forms:
//!    * a cached **whole-page grant** — [`Env::check_fetch_range`] proved
//!      once, under the current [`Env::cfi_epoch`], that every word of the
//!      256-word page passes [`Env::check_fetch`]; granted checks are
//!      side-effect free, so skipping their re-execution is unobservable;
//!    * otherwise, per-word [`Env::check_fetch`] on the instruction's first
//!      word — and on its second word for two-word instructions — in the
//!      same order the reference `fetch` calls would run, so a protection
//!      environment raises the same CFI fault at the same word with the
//!      same trace events.
//! 3. [`Cpu::exec_decoded`] with the cached instruction — the same execute
//!    match, cycle accounting and counters as the reference.
//!
//! Anything the cache cannot serve (an environment without
//! [`Env::code_word`], a reserved encoding) falls back to
//! [`Cpu::step_tail`], the literal reference tail, so faults like
//! [`Fault::IllegalOpcode`] are byte-identical too. Per-store MMC checks,
//! safe-stack arbitration and I/O side effects all still run through the
//! environment on every instruction — only fetch/decode bookkeeping is
//! hoisted out of the per-instruction path.
//!
//! # Cache organisation
//!
//! Decoded code lives in 256-word **pages** (a flat `pc → instruction`
//! array, so a lookup is two dependent loads with no tag compare). A
//! freshly built system may be [`TurboEngine::prime`]d with a complete
//! decoded image, which is shared behind an `Arc`: a fleet clones one
//! prototype to hundreds of nodes, and every node then reads the *same*
//! cache-hot image instead of carrying its own copy. A node whose flash
//! diverges (OTA install, hot load) drops to a private, lazily decoded
//! page table.
//!
//! # Invalidation
//!
//! Flash is only mutable host-side (the simulated CPU has no `SPM`), so a
//! single generation counter — bumped by the host on every flash write, see
//! `SosSystem::flash_generation` — is a sufficient invalidation signal: the
//! engine drops its pages whenever the caller's generation differs from the
//! one they were decoded under. Fetch-check state changes (a domain switch,
//! an `OUT` to the UMPU config ports) are tracked separately and more
//! cheaply, through [`Env::cfi_epoch`]: they expire the cached page grants,
//! not the decoded pages.

use crate::table::DecodeTable;
use avr_core::exec::{Cpu, Env, Step};
use avr_core::isa::Instr;
use avr_core::mem::FLASH_WORDS;
use avr_core::{Fault, WordAddr};
use std::sync::Arc;

/// log2 of the page size, in words.
const PAGE_SHIFT: usize = 8;
/// Decoded-page size in words.
const PAGE_WORDS: usize = 1 << PAGE_SHIFT;
/// Number of pages covering the 64k-word flash.
const PAGES: usize = FLASH_WORDS >> PAGE_SHIFT;

/// One predecoded flash word. `words == 0` marks an unservable slot (a
/// reserved encoding, or no raw code view) that must take the reference
/// fallback path. `elide` carries the store-elision bit
/// ([`Env::store_certified`] at build time) so a proven store pays zero
/// per-step lookup cost: the bit rides in the slot the step loads anyway.
#[derive(Debug, Clone, Copy)]
struct Slot {
    instr: Instr,
    words: u8,
    elide: bool,
}

const EMPTY_SLOT: Slot = Slot { instr: Instr::Nop, words: 0, elide: false };

/// A decoded 256-word span of flash. Every slot holds the instruction that
/// would execute if the PC landed on that word — including "middle" words
/// of two-word instructions, which decode exactly as the reference would
/// decode a jump into them.
type Page = [Slot; PAGE_WORDS];

/// A complete decoded flash image at one generation, shared (`Arc`) across
/// every engine cloned from the same prototype.
#[derive(Debug)]
struct SharedImage {
    generation: u64,
    // Fixed-size, so a lookup indexed by `(pc & 0xffff) >> PAGE_SHIFT` is
    // provably in bounds — no per-step bounds check.
    pages: Box<[Page; PAGES]>,
}

/// Running totals for the engine (test/bench introspection).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TurboStats {
    /// Instructions served from the decoded-page cache.
    pub cached: u64,
    /// Instructions executed through the reference fallback path.
    pub fallback: u64,
    /// Pages decoded (256 per primed image, plus lazy rebuilds after
    /// invalidation).
    pub blocks_built: u64,
    /// Whole-cache invalidations caused by a generation change.
    pub invalidations: u64,
}

/// The fast-path execution engine. One per CPU; the decode table behind it
/// is a process-wide static shared by every engine, and a primed engine
/// additionally shares its decoded image with every clone.
#[derive(Debug, Clone)]
pub struct TurboEngine {
    /// Complete decoded image from [`TurboEngine::prime`], if the flash has
    /// not diverged from it since.
    shared: Option<Arc<SharedImage>>,
    /// Lazily decoded private pages (used when there is no shared image).
    private: Box<[Option<Box<Page>>; PAGES]>,
    /// Cached whole-page fetch grants: `cfi_epoch + 1` at grant time, so 0
    /// means "not granted". A stale stamp re-runs the range check.
    page_grant: Box<[u64; PAGES]>,
    generation: u64,
    stats: TurboStats,
}

impl Default for TurboEngine {
    fn default() -> Self {
        TurboEngine::new()
    }
}

impl TurboEngine {
    /// Creates an engine with a cold cache (and forces the global decode
    /// table to exist, so first-step latency is table-free).
    pub fn new() -> TurboEngine {
        DecodeTable::global();
        TurboEngine {
            shared: None,
            private: Box::new([const { None }; PAGES]),
            page_grant: Box::new([0; PAGES]),
            generation: 0,
            stats: TurboStats::default(),
        }
    }

    /// Cache/bookkeeping counters so far.
    pub const fn stats(&self) -> TurboStats {
        self.stats
    }

    /// Eagerly decodes the environment's entire flash into a shared image
    /// tagged with `generation`. Clones of a primed engine (fleet prototype
    /// cloning) share the image behind an `Arc`, so a 512-node fleet reads
    /// one cache-hot copy instead of decoding — and carrying — 512. A
    /// no-op for environments without a raw code view.
    pub fn prime<E: Env>(&mut self, env: &E, generation: u64) {
        if env.code_word(0).is_none() {
            return;
        }
        let Ok(pages) = Box::<[Page; PAGES]>::try_from(
            (0..PAGES).map(|pi| build_page(env, pi)).collect::<Vec<Page>>().into_boxed_slice(),
        ) else {
            unreachable!("one page per flash page");
        };
        self.stats.blocks_built += PAGES as u64;
        self.generation = generation;
        self.shared = Some(Arc::new(SharedImage { generation, pages }));
        for p in self.private.iter_mut() {
            *p = None;
        }
    }

    /// Drops every cached page if `generation` differs from the one the
    /// cache was decoded under (the host bumps its generation on any flash
    /// write; see the module docs). A primed engine whose image is from an
    /// older generation falls back to private lazy decoding.
    pub fn sync_generation(&mut self, generation: u64) {
        if self.generation != generation {
            self.generation = generation;
            if self.shared.as_ref().is_some_and(|img| img.generation != generation) {
                self.shared = None;
            }
            for p in self.private.iter_mut() {
                *p = None;
            }
            self.stats.invalidations += 1;
        }
    }

    /// Executes exactly one reference step (see the module docs for the
    /// sequence). `generation` is the caller's current flash generation.
    ///
    /// # Errors
    ///
    /// Exactly the faults [`Cpu::step`] would raise, with identical CPU
    /// state, cycle counts and protection-event streams.
    pub fn step<E: Env>(&mut self, cpu: &mut Cpu<E>, generation: u64) -> Result<Step, Fault> {
        self.sync_generation(generation);
        self.step_synced(cpu)
    }

    /// Runs until `BREAK`/`SLEEP`, mirroring [`Cpu::run_to_break`] (including
    /// its post-step cycle-limit check).
    ///
    /// # Errors
    ///
    /// As [`Cpu::run_to_break`].
    pub fn run_to_break<E: Env>(
        &mut self,
        cpu: &mut Cpu<E>,
        generation: u64,
        max_cycles: u64,
    ) -> Result<Step, Fault> {
        self.sync_generation(generation);
        let limit = cpu.cycles().saturating_add(max_cycles);
        // Pin the shared image for the whole run (flash only mutates
        // host-side, between runs), so the per-step path is a direct page
        // lookup with no `Option` dispatch or pointer re-chasing.
        if let Some(img) = self.shared.clone() {
            let pages: &[Page; PAGES] = &img.pages;
            loop {
                match self.step_with_image(cpu, pages)? {
                    Step::Continue => {}
                    s => return Ok(s),
                }
                if cpu.cycles() > limit {
                    return Err(Fault::CycleLimit { cycles: cpu.cycles() });
                }
            }
        }
        loop {
            match self.step_synced(cpu)? {
                Step::Continue => {}
                s => return Ok(s),
            }
            if cpu.cycles() > limit {
                return Err(Fault::CycleLimit { cycles: cpu.cycles() });
            }
        }
    }

    /// Runs until the PC reaches `stop_pc`, mirroring [`Cpu::run_to_pc`].
    ///
    /// # Errors
    ///
    /// As [`Cpu::run_to_pc`].
    pub fn run_to_pc<E: Env>(
        &mut self,
        cpu: &mut Cpu<E>,
        generation: u64,
        stop_pc: WordAddr,
        max_cycles: u64,
    ) -> Result<Step, Fault> {
        self.sync_generation(generation);
        let limit = cpu.cycles().saturating_add(max_cycles);
        if let Some(img) = self.shared.clone() {
            let pages: &[Page; PAGES] = &img.pages;
            while cpu.pc != stop_pc {
                match self.step_with_image(cpu, pages)? {
                    Step::Continue => {}
                    s => return Ok(s),
                }
                if cpu.cycles() > limit {
                    return Err(Fault::CycleLimit { cycles: cpu.cycles() });
                }
            }
            return Ok(Step::Continue);
        }
        while cpu.pc != stop_pc {
            match self.step_synced(cpu)? {
                Step::Continue => {}
                s => return Ok(s),
            }
            if cpu.cycles() > limit {
                return Err(Fault::CycleLimit { cycles: cpu.cycles() });
            }
        }
        Ok(Step::Continue)
    }

    #[inline]
    fn step_synced<E: Env>(&mut self, cpu: &mut Cpu<E>) -> Result<Step, Fault> {
        cpu.begin_step()?;
        let pc = cpu.pc;
        // Flash wraps at 64k words (as `Flash::word` does), so the cache
        // index does too; `pc` itself stays raw, matching the reference.
        let idx = (pc as usize) & (FLASH_WORDS - 1);
        // Both indices are masked to their table sizes, so every lookup
        // below is provably in bounds.
        let (pi, off) = ((idx >> PAGE_SHIFT) & (PAGES - 1), idx & (PAGE_WORDS - 1));
        let slot = match &self.shared {
            Some(img) => img.pages[pi][off],
            None => match &mut self.private[pi] {
                Some(p) => p[off],
                p @ None => {
                    self.stats.blocks_built += 1;
                    p.insert(Box::new(build_page(&cpu.env, pi)))[off]
                }
            },
        };
        if slot.words == 0 {
            // Unservable word (no raw code view, or a reserved encoding):
            // run the literal reference tail so faults are byte-identical.
            self.stats.fallback += 1;
            return cpu.step_tail();
        }
        self.fetch_checked(cpu, pi, off, pc, slot.words)?;
        self.stats.cached += 1;
        cpu.set_store_hint(slot.elide);
        cpu.exec_decoded(pc, slot.instr)
    }

    /// [`TurboEngine::step_synced`] with the shared image pre-resolved by
    /// the caller's run loop: the page lookup is two dependent loads off a
    /// pinned data pointer, with no `Option` dispatch.
    #[inline(always)]
    fn step_with_image<E: Env>(
        &mut self,
        cpu: &mut Cpu<E>,
        pages: &[Page; PAGES],
    ) -> Result<Step, Fault> {
        cpu.begin_step()?;
        let pc = cpu.pc;
        let idx = (pc as usize) & (FLASH_WORDS - 1);
        let (pi, off) = ((idx >> PAGE_SHIFT) & (PAGES - 1), idx & (PAGE_WORDS - 1));
        let slot = pages[pi][off];
        if slot.words == 0 {
            self.stats.fallback += 1;
            return cpu.step_tail();
        }
        self.fetch_checked(cpu, pi, off, pc, slot.words)?;
        self.stats.cached += 1;
        cpu.set_store_hint(slot.elide);
        cpu.exec_decoded(pc, slot.instr)
    }

    /// Fetch-side protection for one cached instruction: a still-valid
    /// whole-page grant covers the check (granted checks have no observable
    /// effects); otherwise try to (re)establish one, and failing that,
    /// check word by word exactly as the reference fetch path would.
    #[inline(always)]
    fn fetch_checked<E: Env>(
        &mut self,
        cpu: &mut Cpu<E>,
        pi: usize,
        off: usize,
        pc: WordAddr,
        words: u8,
    ) -> Result<(), Fault> {
        let stamp = cpu.env.cfi_epoch().wrapping_add(1);
        if self.page_grant[pi] == stamp {
            if words == 2 && off == PAGE_WORDS - 1 {
                // Second word spills into the next page; check it alone.
                cpu.env.check_fetch(pc.wrapping_add(1))?;
            }
            return Ok(());
        }
        let start = (pi << PAGE_SHIFT) as WordAddr;
        if cpu.env.check_fetch_range(start, start + PAGE_WORDS as WordAddr) {
            self.page_grant[pi] = stamp;
            if words == 2 && off == PAGE_WORDS - 1 {
                cpu.env.check_fetch(pc.wrapping_add(1))?;
            }
        } else {
            cpu.env.check_fetch(pc)?;
            if words == 2 {
                cpu.env.check_fetch(pc.wrapping_add(1))?;
            }
        }
        Ok(())
    }
}

/// Decodes one 256-word page through the shared decode table. Slots the
/// table rejects (reserved encodings) — or that the environment offers no
/// raw view of — stay unservable and take the fallback path at run time.
fn build_page<E: Env>(env: &E, pi: usize) -> Page {
    let table = DecodeTable::global();
    let mut page = [EMPTY_SLOT; PAGE_WORDS];
    for (i, slot) in page.iter_mut().enumerate() {
        let pc = ((pi << PAGE_SHIFT) + i) as WordAddr;
        let Some(w0) = env.code_word(pc) else { continue };
        let w1 = if table.is_two_word(w0) {
            match env.code_word(pc.wrapping_add(1)) {
                Some(w1) => w1,
                None => continue,
            }
        } else {
            0
        };
        if let Some((instr, words)) = table.decode(w0, w1) {
            // Bake the elision bit only for store shapes: the bit is dead
            // weight elsewhere, and keeping it store-only means a stale
            // hint can never leak onto a non-store instruction.
            let elide = matches!(instr, Instr::St { .. } | Instr::Std { .. } | Instr::Sts { .. })
                && env.store_certified(pc);
            *slot = Slot { instr, words, elide };
        }
    }
    page
}
