//! harbor-turbo: a table-driven fast-path execution engine for `avr-core`.
//!
//! The reference interpreter ([`avr_core::exec::Cpu::step`]) fetches,
//! classifies and decodes every instruction through a match chain on every
//! step. This crate removes that per-instruction work without touching the
//! reference:
//!
//! * [`DecodeTable`] — a 64k-entry predecode table covering every possible
//!   first opcode word, built once per process from the reference decoder
//!   (so it cannot diverge) and shared by all engines;
//! * [`TurboEngine`] — a per-CPU cache of decoded 256-word flash pages,
//!   keyed on a **flash generation counter** supplied by the host (the
//!   simulated CPU cannot write flash, so host-side writes are the only
//!   invalidation source). A primed engine shares one complete decoded
//!   image behind an `Arc` with every clone — a fleet's worth of nodes
//!   reads a single cache-hot copy — and steps the reference CPU through
//!   [`avr_core::exec::Cpu::exec_decoded`].
//!
//! The engine is *cycle-identical* to the reference by construction: the
//! interrupt latch, per-store MMC arbitration and the execute match itself
//! are all the reference's own code — only the fetch/decode bookkeeping is
//! hoisted out of the per-instruction path. Fetch-side CFI is either
//! checked per word exactly as the reference would
//! ([`avr_core::exec::Env::check_fetch`]) or covered by a whole-page grant
//! proved under the current [`avr_core::exec::Env::cfi_epoch`] — and
//! granted checks are side-effect free, so skipping their re-execution is
//! unobservable. Nothing is batched that the paper's hardware would check
//! per access. See `DESIGN.md` §6 for the full argument and the lockstep
//! differential harness that enforces it.

#![warn(missing_docs)]

mod engine;
mod table;

pub use engine::{TurboEngine, TurboStats};
pub use table::DecodeTable;
