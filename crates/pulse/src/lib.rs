//! harbor-pulse: host-side performance observability for the fleet
//! pipeline.
//!
//! The guest side of this repository is thoroughly observed — scope traces,
//! blackbox postmortems, tower rollups — but the *host* simulator that must
//! scale to 100k+ nodes was a black box: `BENCH_fleet.json` showed parallel
//! stepping barely beating serial without saying where the wall-clock goes
//! or how much of it is wasted stepping nodes that had nothing to do. This
//! crate answers both questions, and its numbers are the acceptance
//! baseline for the planned event-driven fleet rearchitecture:
//!
//! * [`probe`] — the [`Pulse`] recorder: per-round, per-[`Phase`]
//!   wall-clock timers (deliver, step, collect, tower feed), per-worker
//!   busy/span/barrier-wait stats from the parallel step phase, and
//!   guest-cycles-per-host-microsecond throughput, all folded through
//!   `harbor-tower`'s [`QuantileSketch`](harbor_tower::QuantileSketch) so
//!   memory stays bounded no matter how many rounds a soak campaign runs;
//! * [`ledger`] — the idle-work ledger: per round, how many nodes had
//!   pending work ([`PendingWork`]: inbox non-empty, OTA chunks
//!   outstanding, kernel queue non-empty) versus how many were stepped
//!   anyway — a direct measurement of the event-driven-scheduling
//!   opportunity;
//! * [`report`] — the [`PulseReport`] snapshot: per-phase tables, the
//!   idle-fraction timeline, deterministic ledger JSON (byte-identical
//!   between serial and parallel runs of one seed), full JSON time series,
//!   and the [`PulseReport::reconcile`] invariant check CI gates on;
//! * [`export`] — Perfetto host-track export on the shared guest-cycle
//!   clock, so host phase spans interleave with the existing guest traces
//!   in one viewer document.
//!
//! Pulse is strictly observational: it reads node state (inbox length,
//! dissemination progress, kernel queue depth, cycle counters) and the
//! host clock, and never touches a machine, an RNG or the telemetry JSON —
//! a pulse-enabled run is byte-identical to a pulse-disabled run, which
//! the `harbor-pulse --check` CI gate asserts.

#![warn(missing_docs)]

pub mod export;
pub mod ledger;
pub mod probe;
pub mod report;

pub use export::chrome_trace;
pub use ledger::{LedgerTotals, PendingWork, RoundLedger};
pub use probe::{Phase, Pulse, RoundTiming, StepStats, WorkerStat};
pub use report::{PhaseStats, PulseReport, RoundRecord, SketchStats};
