//! Perfetto host-track export on the shared guest-cycle clock.
//!
//! Guest traces from `harbor-scope` stamp events in simulated cycles
//! (1 cycle = 1 viewer µs). Host wall time lives on a different clock, so
//! to interleave both in one Perfetto document each retained round's host
//! phase spans are mapped *proportionally* onto the guest-cycle interval
//! the round executed — `[frontier_start, frontier_end)` of the fleet's
//! cycle frontier. Inside a round, a phase that took 60% of the host wall
//! occupies 60% of the round's guest-cycle width; the real nanosecond
//! numbers ride along in the span `args` so nothing is lost to the
//! projection. Host tracks use pids ≥ [`HOST_PID_BASE`] (guest exporters
//! use node ids as pids), so
//! [`merge_chrome_traces`](harbor_scope::export::merge_chrome_traces)
//! can splice a host document with any node's guest trace without pid
//! collisions.

use crate::probe::Phase;
use crate::report::PulseReport;
use harbor_scope::export::{chrome_trace_tracks, TrackItem};

/// First pid used by host-side tracks; guest traces keep pids below this.
pub const HOST_PID_BASE: u32 = 1_000_000;

/// Maps a host-nanosecond offset within a round onto the round's
/// guest-cycle interval (u128 intermediate: `width * wall_ns` can
/// overflow u64 for long soak rounds).
fn project(frontier_start: u64, width: u64, off_ns: u64, wall_ns: u64) -> u64 {
    let wall = wall_ns.max(1) as u128;
    frontier_start + (width as u128 * off_ns as u128 / wall) as u64
}

/// Renders the retained timeline as a Chrome trace-event document:
///
/// * pid [`HOST_PID_BASE`] — `host pipeline`: one span per round (with the
///   ledger in `args`) and one nested-looking span per phase, laid out on
///   the guest-cycle clock;
/// * pid [`HOST_PID_BASE`]` + 1` — `host workers`: per-round spans for the
///   busiest and idlest worker's busy time, plus barrier-wait args.
///
/// Merge with a node's guest trace via
/// [`merge_chrome_traces`](harbor_scope::export::merge_chrome_traces).
pub fn chrome_trace(report: &PulseReport) -> String {
    let mut pipeline: Vec<TrackItem> = Vec::with_capacity(report.timeline.len() * 5);
    let mut workers: Vec<TrackItem> = Vec::with_capacity(report.timeline.len());
    for r in &report.timeline {
        let width = r.frontier_end - r.frontier_start;
        let wall = r.timing.wall_ns;
        pipeline.push(TrackItem::Span {
            ts: r.frontier_start,
            dur: width,
            name: format!("round {}", r.round),
            args: format!(
                "\"wall_ns\":{},\"cycles\":{},\"ledger\":{}",
                wall,
                r.cycles_delta,
                r.ledger.to_json()
            ),
        });
        let mut off = 0u64;
        for p in Phase::ALL {
            let ns = r.timing.phase_ns[p as usize];
            let ts = project(r.frontier_start, width, off, wall);
            let end = project(r.frontier_start, width, off + ns, wall);
            pipeline.push(TrackItem::Span {
                ts,
                dur: end - ts,
                name: p.name().to_string(),
                args: format!("\"ns\":{ns}"),
            });
            off += ns;
        }
        if let (Some(max), Some(min)) =
            (r.workers.iter().max_by_key(|w| w.busy_ns), r.workers.iter().min_by_key(|w| w.busy_ns))
        {
            let step_ns = r.timing.phase_ns[Phase::Step as usize];
            let first_out = r.workers.iter().map(|w| w.finish_ns).min().unwrap_or(step_ns);
            workers.push(TrackItem::Span {
                ts: r.frontier_start,
                dur: width,
                name: format!("{}w step", r.workers.len()),
                args: format!(
                    "\"busy_max_ns\":{},\"busy_min_ns\":{},\"barrier_max_ns\":{}",
                    max.busy_ns,
                    min.busy_ns,
                    step_ns.saturating_sub(first_out)
                ),
            });
        }
    }
    chrome_trace_tracks(&[
        (HOST_PID_BASE, "host pipeline".to_string(), pipeline),
        (HOST_PID_BASE + 1, "host workers".to_string(), workers),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::RoundLedger;
    use crate::probe::{RoundTiming, WorkerStat};
    use crate::report::RoundRecord;
    use harbor_tower::QuantileSketch;

    fn report_with(timeline: Vec<RoundRecord>) -> PulseReport {
        PulseReport {
            rounds: timeline.len() as u64,
            phase: std::array::from_fn(|_| QuantileSketch::new()),
            wall: QuantileSketch::new(),
            gap: QuantileSketch::new(),
            busy: QuantileSketch::new(),
            barrier: QuantileSketch::new(),
            imbalance_pm: QuantileSketch::new(),
            idle_pm: QuantileSketch::new(),
            throughput: QuantileSketch::new(),
            ledger: RoundLedger::default(),
            timeline,
        }
    }

    #[test]
    fn phases_project_proportionally_onto_frontier() {
        let r = RoundRecord {
            round: 7,
            // 1000 ns wall, phases 100/600/200/100 → 10%/60%/20%/10%.
            timing: RoundTiming { wall_ns: 1_000, phase_ns: [100, 600, 200, 100] },
            ledger: RoundLedger { stepped: 4, busy: 1, inbox: 1, ota: 0, queue: 0 },
            workers: vec![
                WorkerStat { nodes: 2, busy_ns: 500, span_ns: 550, finish_ns: 580 },
                WorkerStat { nodes: 2, busy_ns: 300, span_ns: 320, finish_ns: 590 },
            ],
            cycles_delta: 2_000,
            frontier_start: 10_000,
            frontier_end: 11_000,
        };
        let j = chrome_trace(&report_with(vec![r]));
        assert!(j.contains("\"name\":\"round 7\",\"ph\":\"X\",\"ts\":10000,\"dur\":1000"));
        assert!(j.contains("\"name\":\"deliver\",\"ph\":\"X\",\"ts\":10000,\"dur\":100"));
        assert!(j.contains("\"name\":\"step\",\"ph\":\"X\",\"ts\":10100,\"dur\":600"));
        assert!(j.contains("\"name\":\"collect\",\"ph\":\"X\",\"ts\":10700,\"dur\":200"));
        assert!(j.contains("\"name\":\"feed\",\"ph\":\"X\",\"ts\":10900,\"dur\":100"));
        // Ledger and raw nanoseconds survive in args.
        assert!(j.contains("\"ledger\":{\"stepped\":4,\"busy\":1,\"idle\":3"));
        assert!(j.contains("\"busy_max_ns\":500,\"busy_min_ns\":300,\"barrier_max_ns\":20"));
        assert!(j.contains(&format!("\"pid\":{HOST_PID_BASE}")));
        assert!(j.contains("\"name\":\"host pipeline\""));
        assert!(j.contains("\"name\":\"host workers\""));
    }

    #[test]
    fn projection_survives_huge_walls() {
        // width * wall_ns would overflow u64; the u128 path must not.
        let r = RoundRecord {
            round: 0,
            timing: RoundTiming {
                wall_ns: 40_000_000_000, // 40 s round
                phase_ns: [0, 40_000_000_000, 0, 0],
            },
            ledger: RoundLedger { stepped: 1, busy: 1, inbox: 0, ota: 0, queue: 1 },
            workers: vec![],
            cycles_delta: u64::MAX / 2,
            frontier_start: 0,
            frontier_end: u64::MAX / 2,
        };
        let j = chrome_trace(&report_with(vec![r]));
        assert!(j.contains(&format!(
            "\"name\":\"step\",\"ph\":\"X\",\"ts\":0,\"dur\":{}",
            u64::MAX / 2
        )));
    }

    #[test]
    fn empty_report_is_valid_and_mergeable() {
        let j = chrome_trace(&report_with(vec![]));
        assert!(j.ends_with("]}"));
        let merged = harbor_scope::export::merge_chrome_traces(&[&j, &j]);
        assert!(merged.contains("host pipeline"));
    }
}
