//! The [`PulseReport`] snapshot: tables, timelines, JSON, and the
//! invariant check CI gates on.
//!
//! A report is a value — cloned sketches plus the retained timeline — so
//! rendering and reconciling never race the recorder. Everything textual
//! is deterministic given the measurements: fixed key order, integer-only
//! arithmetic, no floats (fractions are carried in per-myriad like the
//! rest of the workspace).

use crate::ledger::{LedgerTotals, RoundLedger};
use crate::probe::{Phase, RoundTiming, WorkerStat};
use harbor_tower::QuantileSketch;

/// One retained round, verbatim. Older rounds survive only inside the
/// report's sketches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRecord {
    /// Fleet round number.
    pub round: u64,
    /// Phase-boundary timings.
    pub timing: RoundTiming,
    /// Idle-work ledger for the round.
    pub ledger: RoundLedger,
    /// Per-worker step-phase stats (one entry in serial runs).
    pub workers: Vec<WorkerStat>,
    /// Guest cycles executed fleet-wide this round.
    pub cycles_delta: u64,
    /// Guest-cycle frontier when the round began (shared Perfetto clock).
    pub frontier_start: u64,
    /// Guest-cycle frontier when the round ended; always `> frontier_start`.
    pub frontier_end: u64,
}

/// Integer summary of one sketch: the seven numbers every table column
/// and JSON leaf is built from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SketchStats {
    /// Observations folded in.
    pub count: u64,
    /// Exact sum of all observations.
    pub sum: u64,
    /// Exact integer mean (floor).
    pub mean: u64,
    /// Exact minimum (0 when empty).
    pub min: u64,
    /// Exact maximum.
    pub max: u64,
    /// Median estimate (lower bucket bound, ≤ ~6% relative error).
    pub p50: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

impl SketchStats {
    /// Summarises a sketch.
    pub fn of(s: &QuantileSketch) -> SketchStats {
        SketchStats {
            count: s.count(),
            sum: s.sum(),
            mean: s.mean(),
            min: s.min(),
            max: s.max(),
            p50: s.quantile(5_000),
            p99: s.quantile(9_900),
        }
    }

    /// Deterministic JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"sum\":{},\"mean\":{},\"min\":{},\"max\":{},\"p50\":{},\"p99\":{}}}",
            self.count, self.sum, self.mean, self.min, self.max, self.p50, self.p99
        )
    }
}

/// One row of the per-phase table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStats {
    /// Which phase.
    pub phase: Phase,
    /// Nanosecond stats over every recorded round.
    pub ns: SketchStats,
    /// Share of the total attributed time, per-myriad.
    pub share_pm: u64,
}

/// Snapshot of a [`crate::Pulse`] recorder.
#[derive(Debug, Clone)]
pub struct PulseReport {
    /// Rounds recorded.
    pub rounds: u64,
    /// Per-phase nanosecond sketches, indexed by [`Phase`] discriminant.
    pub phase: [QuantileSketch; Phase::COUNT],
    /// Whole-round wall-time sketch (independent stopwatch).
    pub wall: QuantileSketch,
    /// Unattributed gap per round: `wall - Σ phases`.
    pub gap: QuantileSketch,
    /// Per-worker busy nanoseconds (one observation per worker per round).
    pub busy: QuantileSketch,
    /// Per-worker barrier wait: step-phase wall minus the worker's finish.
    pub barrier: QuantileSketch,
    /// Load imbalance per round: busiest worker over mean busy, per-myriad
    /// (10000 = perfectly balanced; only recorded when workers > 1).
    pub imbalance_pm: QuantileSketch,
    /// Idle fraction per round, per-myriad.
    pub idle_pm: QuantileSketch,
    /// Guest cycles per host microsecond, per round.
    pub throughput: QuantileSketch,
    /// Whole-run ledger totals.
    pub ledger: LedgerTotals,
    /// Recent rounds, oldest first (bounded by
    /// [`RING_ROUNDS`](crate::probe::RING_ROUNDS)).
    pub timeline: Vec<RoundRecord>,
}

/// `123456789` → `"123,456,789"` (tables only; JSON stays bare).
fn commas(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Per-myriad → `"93.75%"` (two decimals, exact).
fn percent(pm: u64) -> String {
    format!("{}.{:02}%", pm / 100, pm % 100)
}

impl PulseReport {
    /// Per-phase rows in pipeline order, with each phase's share of the
    /// total attributed (non-gap) time.
    pub fn phase_stats(&self) -> [PhaseStats; Phase::COUNT] {
        let total: u64 = self.phase.iter().map(|s| s.sum()).sum();
        std::array::from_fn(|i| {
            let ns = SketchStats::of(&self.phase[i]);
            PhaseStats {
                phase: Phase::ALL[i],
                ns,
                share_pm: (ns.sum * 10_000).checked_div(total).unwrap_or(0),
            }
        })
    }

    /// The per-phase breakdown table plus the ledger and throughput
    /// summary lines — the default CLI output.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("rounds: {}\n", self.rounds));
        out.push_str(&format!(
            "{:<9} {:>7} {:>14} {:>12} {:>12} {:>12}\n",
            "phase", "share", "total ns", "mean ns", "p50 ns", "p99 ns"
        ));
        for row in self.phase_stats() {
            out.push_str(&format!(
                "{:<9} {:>7} {:>14} {:>12} {:>12} {:>12}\n",
                row.phase.name(),
                percent(row.share_pm),
                commas(row.ns.sum),
                commas(row.ns.mean),
                commas(row.ns.p50),
                commas(row.ns.p99),
            ));
        }
        let wall = SketchStats::of(&self.wall);
        let gap = SketchStats::of(&self.gap);
        out.push_str(&format!(
            "round wall: mean {} ns, p99 {} ns (unattributed gap mean {} ns)\n",
            commas(wall.mean),
            commas(wall.p99),
            commas(gap.mean)
        ));
        if self.barrier.count() > 0 {
            out.push_str(&format!(
                "worker busy: mean {} ns  barrier wait: mean {} ns, p99 {} ns\n",
                commas(self.busy.mean()),
                commas(self.barrier.mean()),
                commas(self.barrier.quantile(9_900))
            ));
        }
        if self.imbalance_pm.count() > 0 {
            out.push_str(&format!(
                "load imbalance (max/mean busy): p50 {}, p99 {}\n",
                percent(self.imbalance_pm.quantile(5_000)),
                percent(self.imbalance_pm.quantile(9_900))
            ));
        }
        out.push_str(&format!(
            "idle work: {} of {} node-steps idle ({}); inbox {}, ota {}, queue {}\n",
            commas(self.ledger.idle()),
            commas(self.ledger.stepped),
            percent(self.ledger.idle_per_myriad()),
            commas(self.ledger.inbox),
            commas(self.ledger.ota),
            commas(self.ledger.queue)
        ));
        out.push_str(&format!(
            "throughput: mean {} guest cycles per host µs (min {}, max {})\n",
            commas(self.throughput.mean()),
            commas(self.throughput.min()),
            commas(self.throughput.max())
        ));
        out
    }

    /// The idle-fraction timeline over the retained rounds: one line per
    /// round with a proportional bar, busy-reason counts and wall time.
    pub fn render_timeline(&self) -> String {
        const BAR: usize = 40;
        let mut out = String::new();
        out.push_str(&format!(
            "{:>7} {:<40} {:>7} {:>6} {:>6} {:>6} {:>12}\n",
            "round", "idle fraction", "idle%", "inbox", "ota", "queue", "wall ns"
        ));
        for r in &self.timeline {
            let pm = r.ledger.idle_per_myriad();
            let filled = (pm as usize * BAR) / 10_000;
            let mut bar = String::with_capacity(BAR);
            for i in 0..BAR {
                bar.push(if i < filled { '#' } else { '.' });
            }
            out.push_str(&format!(
                "{:>7} {:<40} {:>7} {:>6} {:>6} {:>6} {:>12}\n",
                r.round,
                bar,
                percent(pm),
                r.ledger.inbox,
                r.ledger.ota,
                r.ledger.queue,
                commas(r.timing.wall_ns)
            ));
        }
        out
    }

    /// Whole-run ledger totals as deterministic JSON. This is the string
    /// the serial≡parallel byte-identity test compares, so it must depend
    /// only on node state, never on timing.
    pub fn ledger_json(&self) -> String {
        self.ledger.to_json()
    }

    /// Full report as deterministic JSON (sketch summaries, ledger,
    /// retained timeline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"rounds\":{},", self.rounds));
        out.push_str("\"phases\":{");
        for (i, row) in self.phase_stats().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"share_pm\":{},\"ns\":{}}}",
                row.phase.name(),
                row.share_pm,
                row.ns.to_json()
            ));
        }
        out.push_str("},");
        out.push_str(&format!("\"wall_ns\":{},", SketchStats::of(&self.wall).to_json()));
        out.push_str(&format!("\"gap_ns\":{},", SketchStats::of(&self.gap).to_json()));
        out.push_str(&format!("\"worker_busy_ns\":{},", SketchStats::of(&self.busy).to_json()));
        out.push_str(&format!("\"barrier_ns\":{},", SketchStats::of(&self.barrier).to_json()));
        out.push_str(&format!(
            "\"imbalance_pm\":{},",
            SketchStats::of(&self.imbalance_pm).to_json()
        ));
        out.push_str(&format!("\"idle_pm\":{},", SketchStats::of(&self.idle_pm).to_json()));
        out.push_str(&format!(
            "\"cycles_per_us\":{},",
            SketchStats::of(&self.throughput).to_json()
        ));
        out.push_str(&format!("\"ledger\":{},", self.ledger.to_json()));
        out.push_str("\"timeline\":[");
        for (i, r) in self.timeline.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"round\":{},\"wall_ns\":{},\"phase_ns\":[{},{},{},{}],\
                 \"ledger\":{},\"workers\":{},\"cycles\":{},\
                 \"frontier\":[{},{}]}}",
                r.round,
                r.timing.wall_ns,
                r.timing.phase_ns[0],
                r.timing.phase_ns[1],
                r.timing.phase_ns[2],
                r.timing.phase_ns[3],
                r.ledger.to_json(),
                r.workers.len(),
                r.cycles_delta,
                r.frontier_start,
                r.frontier_end
            ));
        }
        out.push_str("]}");
        out
    }

    /// The timer-reconciliation and ledger-consistency invariants the
    /// `harbor-pulse --check` CI gate asserts. Returns every violation
    /// found (empty = pass).
    ///
    /// Hard invariants (guaranteed by construction; any violation is a
    /// recorder bug):
    /// * per round, `Σ phase_ns <= wall_ns` — the phase laps are
    ///   sub-intervals of the stopwatch interval on one monotonic clock;
    /// * per worker, `busy <= span <= finish <= step phase wall` — all
    ///   four are measured from the same phase anchor;
    /// * per round, `busy <= stepped` and `inbox + ota + queue >= busy` —
    ///   ledger counting identities;
    /// * per round, `frontier_start < frontier_end` — the shared Perfetto
    ///   clock always advances.
    ///
    /// Soft invariants (tolerance-gated; a violation means the
    /// instrumentation itself costs too much or the host was badly
    /// preempted between stamps):
    /// * mean unattributed gap ≤ max(5% of mean wall, 250 µs);
    /// * per retained round, gap ≤ max(50% of that round's wall, 5 ms).
    pub fn reconcile(&self) -> Vec<String> {
        let mut bad = Vec::new();
        for r in &self.timeline {
            let sum = r.timing.phase_sum();
            if sum > r.timing.wall_ns {
                bad.push(format!(
                    "round {}: phase sum {} ns exceeds wall {} ns",
                    r.round, sum, r.timing.wall_ns
                ));
            }
            let step_ns = r.timing.phase_ns[Phase::Step as usize];
            for (w, stat) in r.workers.iter().enumerate() {
                if !(stat.busy_ns <= stat.span_ns
                    && stat.span_ns <= stat.finish_ns
                    && stat.finish_ns <= step_ns)
                {
                    bad.push(format!(
                        "round {} worker {}: busy {} / span {} / finish {} / step {} not monotone",
                        r.round, w, stat.busy_ns, stat.span_ns, stat.finish_ns, step_ns
                    ));
                }
            }
            let l = &r.ledger;
            if l.busy > l.stepped || l.inbox + l.ota + l.queue < l.busy {
                bad.push(format!("round {}: inconsistent ledger {}", r.round, l.to_json()));
            }
            if r.frontier_start >= r.frontier_end {
                bad.push(format!(
                    "round {}: frontier did not advance ({} -> {})",
                    r.round, r.frontier_start, r.frontier_end
                ));
            }
            let gap = r.timing.wall_ns.saturating_sub(sum);
            let budget = (r.timing.wall_ns / 2).max(5_000_000);
            if gap > budget {
                bad.push(format!(
                    "round {}: unattributed gap {} ns exceeds {} ns",
                    r.round, gap, budget
                ));
            }
        }
        let l = &self.ledger;
        if l.busy > l.stepped || l.inbox + l.ota + l.queue < l.busy {
            bad.push(format!("totals: inconsistent ledger {}", l.to_json()));
        }
        if self.wall.count() > 0 {
            let budget = (self.wall.mean() / 20).max(250_000);
            if self.gap.mean() > budget {
                bad.push(format!(
                    "mean unattributed gap {} ns exceeds {} ns (mean wall {} ns)",
                    self.gap.mean(),
                    budget,
                    self.wall.mean()
                ));
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::PendingWork;
    use crate::probe::{Pulse, StepStats};

    fn sample_report() -> PulseReport {
        let mut p = Pulse::new();
        for round in 0..4u64 {
            let mut ledger = RoundLedger::default();
            for i in 0..8u64 {
                ledger.observe(PendingWork { inbox: i % 4 == 0, ..PendingWork::default() });
            }
            let stats = StepStats {
                workers: vec![
                    WorkerStat { nodes: 4, busy_ns: 700, span_ns: 800, finish_ns: 900 },
                    WorkerStat { nodes: 4, busy_ns: 500, span_ns: 600, finish_ns: 950 },
                ],
                ledger,
                cycles_total: (round + 1) * 4_000,
                cycles_frontier: (round + 1) * 500,
            };
            p.record_round(
                round,
                RoundTiming { wall_ns: 1_300, phase_ns: [100, 1_000, 150, 40] },
                stats,
            );
        }
        p.report()
    }

    #[test]
    fn shares_sum_close_to_whole() {
        let r = sample_report();
        let rows = r.phase_stats();
        let total_pm: u64 = rows.iter().map(|p| p.share_pm).sum();
        assert!((9_990..=10_000).contains(&total_pm), "shares sum to {total_pm}");
        assert_eq!(rows[Phase::Step as usize].ns.sum, 4_000);
        // Step dominates: 1000 of 1290 attributed ns.
        assert!(rows[Phase::Step as usize].share_pm > 7_000);
    }

    #[test]
    fn reconcile_passes_on_consistent_data() {
        let r = sample_report();
        let bad = r.reconcile();
        assert!(bad.is_empty(), "unexpected violations: {bad:?}");
    }

    #[test]
    fn reconcile_flags_phase_overflow_and_worker_order() {
        let mut r = sample_report();
        r.timeline[0].timing.wall_ns = 500; // phases sum to 1290
        r.timeline[1].workers[0].busy_ns = 10_000; // busy > span
        r.timeline[2].frontier_end = r.timeline[2].frontier_start;
        let bad = r.reconcile();
        assert_eq!(bad.len(), 3, "expected 3 violations: {bad:?}");
        assert!(bad[0].contains("exceeds wall"));
        assert!(bad[1].contains("not monotone"));
        assert!(bad[2].contains("frontier"));
    }

    #[test]
    fn reconcile_flags_excess_mean_gap() {
        let mut p = Pulse::new();
        for round in 0..3u64 {
            p.record_round(
                round,
                // 10 ms wall, only 1 ms attributed: gap 9 ms > max(5%, 250 µs)
                RoundTiming { wall_ns: 10_000_000, phase_ns: [0, 1_000_000, 0, 0] },
                StepStats {
                    workers: vec![WorkerStat {
                        nodes: 1,
                        busy_ns: 100,
                        span_ns: 100,
                        finish_ns: 100,
                    }],
                    ledger: RoundLedger { stepped: 1, busy: 0, inbox: 0, ota: 0, queue: 0 },
                    cycles_total: round * 100,
                    cycles_frontier: round * 100,
                },
            );
        }
        let bad = p.report().reconcile();
        assert!(
            bad.iter().any(|m| m.contains("mean unattributed gap")),
            "missing mean-gap violation: {bad:?}"
        );
        // Per-round soft gate also trips: 9 ms > max(50% of 10 ms, 5 ms).
        assert!(bad.iter().any(|m| m.contains("unattributed gap 9000000")));
    }

    #[test]
    fn json_and_tables_render() {
        let r = sample_report();
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"phases\":{\"deliver\":"));
        assert!(json.contains("\"ledger\":{\"stepped\":32,\"busy\":8,\"idle\":24"));
        assert!(json.contains("\"timeline\":[{\"round\":0,"));
        let table = r.render_table();
        assert!(table.contains("deliver"));
        assert!(table.contains("idle work: 24 of 32 node-steps idle (75.00%)"));
        let tl = r.render_timeline();
        assert_eq!(tl.lines().count(), 1 + 4);
        assert!(tl.contains("75.00%"));
    }
}
