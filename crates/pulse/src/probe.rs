//! The [`Pulse`] recorder: per-round, per-phase host timers folded into
//! bounded-memory sketches.
//!
//! The fleet's `step_round` is a fixed pipeline — deliver (serial radio
//! exchange), step (parallel node stepping), collect (serial outbox
//! drain), feed (serial tower ingestion) — and when pulse is attached the
//! fleet stamps the phase boundaries with one monotonic clock chain plus
//! an independent whole-round stopwatch. Because the chain's laps are
//! sub-intervals of the stopwatch's interval, `Σ phases <= wall` holds by
//! clock monotonicity, and the difference (the *unattributed gap*:
//! instrumentation overhead plus any preemption between stamps) is itself
//! recorded and gated by [`crate::PulseReport::reconcile`].
//!
//! Every per-round observation folds into a
//! [`QuantileSketch`](harbor_tower::QuantileSketch) — the same
//! bounded-memory, merge-exact sketch `harbor-tower` aggregates fleet
//! telemetry with — so a week-long soak campaign costs the same memory as
//! a 40-round bench. A small ring of recent rounds is kept verbatim for
//! the timeline table and the Perfetto export.

use crate::ledger::{LedgerTotals, RoundLedger};
use crate::report::{PulseReport, RoundRecord};
use harbor_tower::QuantileSketch;

/// One pipeline phase of `Fleet::step_round`, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Serial radio exchange: due packets move to inboxes, the seeder
    /// answers NACKs and re-advertises.
    Deliver = 0,
    /// Parallel node stepping (the phase worker threads fan out over).
    Step = 1,
    /// Serial outbox drain onto the radio, in node-id order.
    Collect = 2,
    /// Serial tower feed: per-node counter deltas, dumps and alerts.
    Feed = 3,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 4;

    /// Every phase, in pipeline order.
    pub const ALL: [Phase; Phase::COUNT] =
        [Phase::Deliver, Phase::Step, Phase::Collect, Phase::Feed];

    /// Stable snake_case name (JSON key vocabulary).
    pub const fn name(self) -> &'static str {
        match self {
            Phase::Deliver => "deliver",
            Phase::Step => "step",
            Phase::Collect => "collect",
            Phase::Feed => "feed",
        }
    }
}

/// One worker thread's account of one step phase. All times are
/// nanoseconds measured from the *phase anchor* (the instant the step
/// phase began), on the host's monotonic clock, so
/// `busy <= span <= finish <= phase wall` holds by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStat {
    /// Nodes this worker stepped.
    pub nodes: u64,
    /// Nanoseconds spent inside node batches (work attribution).
    pub busy_ns: u64,
    /// Nanoseconds from the worker's first grab to its last completed
    /// batch (includes cursor contention between batches).
    pub span_ns: u64,
    /// Nanoseconds from the phase anchor to the worker's exit — the
    /// phase wall minus this is the worker's barrier wait.
    pub finish_ns: u64,
}

/// Everything the step phase hands the recorder: per-worker stats, the
/// idle-work ledger, and the guest cycle counters read after stepping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StepStats {
    /// One entry per worker that stepped at least one batch.
    pub workers: Vec<WorkerStat>,
    /// This round's idle-work classification.
    pub ledger: RoundLedger,
    /// Sum over nodes of `sys.cycles()` after the step (the recorder
    /// differences consecutive rounds to get guest cycles per round).
    pub cycles_total: u64,
    /// Max over nodes of `sys.cycles()` after the step — the fleet-wide
    /// guest-cycle frontier, the shared clock the Perfetto export lays
    /// host spans on.
    pub cycles_frontier: u64,
}

/// The phase-boundary timings of one round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundTiming {
    /// Whole-round wall time from the independent stopwatch.
    pub wall_ns: u64,
    /// Per-phase lap times from the chained clock, indexed by
    /// [`Phase`] discriminant.
    pub phase_ns: [u64; Phase::COUNT],
}

impl RoundTiming {
    /// Sum of the phase laps. `<= wall_ns` by clock monotonicity when the
    /// fleet recorded the timing (the laps are sub-intervals of the
    /// stopwatch interval).
    pub fn phase_sum(&self) -> u64 {
        self.phase_ns.iter().sum()
    }
}

/// Rounds retained verbatim for the timeline and the Perfetto export;
/// everything older survives only inside the sketches.
pub const RING_ROUNDS: usize = 256;

/// The per-fleet recorder. Owned by the fleet when `FleetConfig::pulse`
/// is set; fed once per round; snapshot with [`Pulse::report`].
#[derive(Debug, Clone)]
pub struct Pulse {
    rounds: u64,
    phase: [QuantileSketch; Phase::COUNT],
    wall: QuantileSketch,
    gap: QuantileSketch,
    busy: QuantileSketch,
    barrier: QuantileSketch,
    imbalance_pm: QuantileSketch,
    idle_pm: QuantileSketch,
    throughput: QuantileSketch,
    ledger: LedgerTotals,
    cycles_prev: u64,
    frontier: u64,
    ring: std::collections::VecDeque<RoundRecord>,
}

impl Default for Pulse {
    fn default() -> Pulse {
        Pulse::new()
    }
}

impl Pulse {
    /// An empty recorder.
    pub fn new() -> Pulse {
        Pulse {
            rounds: 0,
            phase: std::array::from_fn(|_| QuantileSketch::new()),
            wall: QuantileSketch::new(),
            gap: QuantileSketch::new(),
            busy: QuantileSketch::new(),
            barrier: QuantileSketch::new(),
            imbalance_pm: QuantileSketch::new(),
            idle_pm: QuantileSketch::new(),
            throughput: QuantileSketch::new(),
            ledger: LedgerTotals::default(),
            cycles_prev: 0,
            frontier: 0,
            ring: std::collections::VecDeque::with_capacity(RING_ROUNDS),
        }
    }

    /// Folds one round's measurements into the sketches and the ring.
    pub fn record_round(&mut self, round: u64, timing: RoundTiming, stats: StepStats) {
        self.rounds += 1;
        for p in Phase::ALL {
            self.phase[p as usize].observe(timing.phase_ns[p as usize]);
        }
        self.wall.observe(timing.wall_ns);
        self.gap.observe(timing.wall_ns.saturating_sub(timing.phase_sum()));

        let step_ns = timing.phase_ns[Phase::Step as usize];
        let workers = stats.workers.len() as u64;
        let mut busy_sum = 0u64;
        let mut busy_max = 0u64;
        for w in &stats.workers {
            self.busy.observe(w.busy_ns);
            self.barrier.observe(step_ns.saturating_sub(w.finish_ns));
            busy_sum += w.busy_ns;
            busy_max = busy_max.max(w.busy_ns);
        }
        if workers > 1 && busy_sum > 0 {
            // Load imbalance: the busiest worker relative to the mean, in
            // per-myriad (10000 = perfectly balanced).
            self.imbalance_pm.observe(busy_max * 10_000 * workers / busy_sum);
        }

        self.idle_pm.observe(stats.ledger.idle_per_myriad());
        self.ledger.merge(&stats.ledger);

        // Guest cycles this round: the recorder differences the running
        // fleet-wide total (clones of a warm prototype start non-zero, so
        // the first round's delta is measured from attach, not from 0).
        let cycles_delta = stats.cycles_total.saturating_sub(self.cycles_prev);
        self.cycles_prev = stats.cycles_total;
        // Throughput in guest cycles per host microsecond.
        self.throughput.observe(cycles_delta.saturating_mul(1_000) / timing.wall_ns.max(1));

        let frontier_start = self.frontier;
        // A round where no node ran still gets a 1-cycle-wide interval so
        // the export has geometry to draw.
        self.frontier = stats.cycles_frontier.max(frontier_start + 1);
        if self.ring.len() == RING_ROUNDS {
            self.ring.pop_front();
        }
        self.ring.push_back(RoundRecord {
            round,
            timing,
            ledger: stats.ledger,
            workers: stats.workers,
            cycles_delta,
            frontier_start,
            frontier_end: self.frontier,
        });
    }

    /// Rounds recorded.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Whole-run ledger totals.
    pub fn ledger(&self) -> &LedgerTotals {
        &self.ledger
    }

    /// The retained recent rounds, oldest first.
    pub fn ring(&self) -> impl Iterator<Item = &RoundRecord> {
        self.ring.iter()
    }

    /// Snapshot everything into a [`PulseReport`].
    pub fn report(&self) -> PulseReport {
        PulseReport {
            rounds: self.rounds,
            phase: self.phase.clone(),
            wall: self.wall.clone(),
            gap: self.gap.clone(),
            busy: self.busy.clone(),
            barrier: self.barrier.clone(),
            imbalance_pm: self.imbalance_pm.clone(),
            idle_pm: self.idle_pm.clone(),
            throughput: self.throughput.clone(),
            ledger: self.ledger,
            timeline: self.ring.iter().cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::PendingWork;

    fn stats(busy: &[u64], step_ns: u64, idle_of: (u64, u64)) -> StepStats {
        let (idle, total) = idle_of;
        let mut ledger = RoundLedger::default();
        for i in 0..total {
            let w = if i < idle {
                PendingWork::default()
            } else {
                PendingWork { queue: true, ..PendingWork::default() }
            };
            ledger.observe(w);
        }
        StepStats {
            workers: busy
                .iter()
                .map(|&b| WorkerStat {
                    nodes: total / busy.len() as u64,
                    busy_ns: b,
                    span_ns: b,
                    finish_ns: b.min(step_ns),
                })
                .collect(),
            ledger,
            cycles_total: 1000,
            cycles_frontier: 500,
        }
    }

    fn timing(phases: [u64; 4], slack: u64) -> RoundTiming {
        RoundTiming { wall_ns: phases.iter().sum::<u64>() + slack, phase_ns: phases }
    }

    #[test]
    fn record_folds_phases_and_ledger() {
        let mut p = Pulse::new();
        p.record_round(0, timing([10, 100, 20, 5], 3), stats(&[60, 40], 100, (3, 4)));
        p.record_round(1, timing([12, 90, 18, 6], 2), stats(&[50, 40], 90, (4, 4)));
        assert_eq!(p.rounds(), 2);
        assert_eq!(p.ledger().stepped, 8);
        assert_eq!(p.ledger().idle(), 7);
        let r = p.report();
        assert_eq!(r.phase[Phase::Deliver as usize].count(), 2);
        assert_eq!(r.phase[Phase::Step as usize].sum(), 190);
        assert_eq!(r.gap.sum(), 5);
        assert_eq!(r.busy.count(), 4);
        // Imbalance recorded for both rounds (2 workers each).
        assert_eq!(r.imbalance_pm.count(), 2);
        assert_eq!(r.timeline.len(), 2);
    }

    #[test]
    fn ring_is_bounded_and_frontier_monotone() {
        let mut p = Pulse::new();
        for round in 0..(RING_ROUNDS as u64 + 10) {
            let mut s = stats(&[10], 10, (1, 1));
            s.cycles_total = round * 100;
            s.cycles_frontier = round * 100;
            p.record_round(round, timing([1, 10, 1, 1], 0), s);
        }
        assert_eq!(p.rounds(), RING_ROUNDS as u64 + 10);
        let records: Vec<_> = p.ring().collect();
        assert_eq!(records.len(), RING_ROUNDS);
        assert_eq!(records[0].round, 10);
        for pair in records.windows(2) {
            assert_eq!(pair[0].frontier_end, pair[1].frontier_start);
            assert!(pair[0].frontier_start < pair[0].frontier_end);
        }
        // Round 0 executed no new cycles (frontier 0) yet still got a
        // non-empty interval.
        assert!(p.report().throughput.count() > 0);
    }

    #[test]
    fn throughput_differences_consecutive_totals() {
        let mut p = Pulse::new();
        let mut s = stats(&[10], 10, (0, 1));
        s.cycles_total = 5_000;
        p.record_round(0, RoundTiming { wall_ns: 1_000, phase_ns: [0, 1_000, 0, 0] }, s.clone());
        s.cycles_total = 9_000;
        p.record_round(1, RoundTiming { wall_ns: 2_000, phase_ns: [0, 2_000, 0, 0] }, s);
        // Round 0: 5000 cycles / 1 µs; round 1: 4000 cycles / 2 µs.
        assert_eq!(p.report().throughput.max(), 5_000);
        assert_eq!(p.report().throughput.min(), 2_000);
    }
}
