//! The idle-work ledger: who had pending work, who was stepped anyway.
//!
//! The fleet's round-lockstep scheduler steps *every* node *every* round.
//! Dissemination quiesces, so in steady state most nodes have nothing to
//! do — no packets in the inbox, no OTA reassembly in flight, no kernel
//! messages queued — and the step is pure overhead. The ledger counts that
//! overhead exactly: each round, every node is classified *before* it is
//! stepped, and the per-flag counts are summed. Classification is a pure
//! function of node state (never of the thread schedule or the host
//! clock), so serial and parallel runs of one seed produce identical
//! ledgers — regression-tested in `tests/fleet_pulse.rs`.

/// Why a node counts as busy this round. A node may have several reasons
/// at once; it is *idle* only when all three are false.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PendingWork {
    /// Packets were delivered to the node's inbox this round.
    pub inbox: bool,
    /// An OTA dissemination is mid-reassembly (chunks outstanding): the
    /// node may NACK this round and must watch for chunks.
    pub ota: bool,
    /// The kernel message queue is non-empty: the CPU has handler work.
    pub queue: bool,
}

impl PendingWork {
    /// Whether any work is pending.
    #[inline]
    pub fn any(self) -> bool {
        self.inbox || self.ota || self.queue
    }
}

/// One round's ledger counts. Nodes are counted once in `busy`/`stepped`
/// and once per raised flag, so `inbox + ota + queue >= busy` and
/// `busy <= stepped` always.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundLedger {
    /// Nodes stepped this round (the lockstep scheduler steps them all).
    pub stepped: u64,
    /// Nodes with at least one pending-work flag.
    pub busy: u64,
    /// Nodes whose inbox was non-empty.
    pub inbox: u64,
    /// Nodes with an OTA reassembly outstanding.
    pub ota: u64,
    /// Nodes with a non-empty kernel queue.
    pub queue: u64,
}

impl RoundLedger {
    /// Classifies one node into the counts.
    #[inline]
    pub fn observe(&mut self, w: PendingWork) {
        self.stepped += 1;
        self.busy += u64::from(w.any());
        self.inbox += u64::from(w.inbox);
        self.ota += u64::from(w.ota);
        self.queue += u64::from(w.queue);
    }

    /// Element-wise merge (parallel workers each keep a partial ledger;
    /// the sum is schedule-independent because every node is counted by
    /// exactly one worker).
    pub fn merge(&mut self, other: &RoundLedger) {
        self.stepped += other.stepped;
        self.busy += other.busy;
        self.inbox += other.inbox;
        self.ota += other.ota;
        self.queue += other.queue;
    }

    /// Nodes stepped with no pending work — the wasted steps an
    /// event-driven scheduler would skip.
    pub fn idle(&self) -> u64 {
        self.stepped - self.busy
    }

    /// Idle fraction in per-myriad (10000 = every stepped node was idle).
    pub fn idle_per_myriad(&self) -> u64 {
        (self.idle() * 10_000).checked_div(self.stepped).unwrap_or(0)
    }

    /// Deterministic JSON object (fixed key order, integers only).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"stepped\":{},\"busy\":{},\"idle\":{},\"inbox\":{},\"ota\":{},\"queue\":{}}}",
            self.stepped,
            self.busy,
            self.idle(),
            self.inbox,
            self.ota,
            self.queue
        )
    }
}

/// Whole-run ledger totals: the per-round counts summed over every round.
pub type LedgerTotals = RoundLedger;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_counts_every_flag() {
        let mut l = RoundLedger::default();
        l.observe(PendingWork::default());
        l.observe(PendingWork { inbox: true, ..PendingWork::default() });
        l.observe(PendingWork { inbox: true, queue: true, ..PendingWork::default() });
        l.observe(PendingWork { ota: true, ..PendingWork::default() });
        assert_eq!(l.stepped, 4);
        assert_eq!(l.busy, 3);
        assert_eq!(l.idle(), 1);
        assert_eq!((l.inbox, l.ota, l.queue), (2, 1, 1));
        assert_eq!(l.idle_per_myriad(), 2_500);
        assert!(l.inbox + l.ota + l.queue >= l.busy);
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = RoundLedger { stepped: 2, busy: 1, inbox: 1, ota: 0, queue: 0 };
        let b = RoundLedger { stepped: 3, busy: 2, inbox: 0, ota: 1, queue: 2 };
        a.merge(&b);
        assert_eq!(a, RoundLedger { stepped: 5, busy: 3, inbox: 1, ota: 1, queue: 2 });
    }

    #[test]
    fn json_is_stable() {
        let l = RoundLedger { stepped: 8, busy: 3, inbox: 2, ota: 1, queue: 1 };
        assert_eq!(
            l.to_json(),
            "{\"stepped\":8,\"busy\":3,\"idle\":5,\"inbox\":2,\"ota\":1,\"queue\":1}"
        );
        assert_eq!(RoundLedger::default().idle_per_myriad(), 0);
    }
}
