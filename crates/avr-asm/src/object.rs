//! Assembled output: machine words plus a symbol table.

use std::collections::BTreeMap;

/// The result of assembling one unit: a contiguous run of words placed at an
/// origin, with every label resolved to an absolute word address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Object {
    origin: u32,
    words: Vec<u16>,
    symbols: BTreeMap<String, u32>,
}

impl Object {
    pub(crate) fn new(origin: u32, words: Vec<u16>, symbols: BTreeMap<String, u32>) -> Object {
        Object { origin, words, symbols }
    }

    /// Builds an object from raw parts — for pre-assembled images that
    /// arrive over a transport (e.g. radio module dissemination) rather
    /// than from the assembler.
    pub fn from_parts(origin: u32, words: Vec<u16>, symbols: BTreeMap<String, u32>) -> Object {
        Object { origin, words, symbols }
    }

    /// Word address the unit was assembled at.
    pub fn origin(&self) -> u32 {
        self.origin
    }

    /// The machine-code words.
    pub fn words(&self) -> &[u16] {
        &self.words
    }

    /// First word address past the unit.
    pub fn end(&self) -> u32 {
        self.origin + self.words.len() as u32
    }

    /// Size in bytes (the FLASH cost of the unit).
    pub fn size_bytes(&self) -> u32 {
        self.words.len() as u32 * 2
    }

    /// Absolute word address of `label`, if defined.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Absolute word address of `label`.
    ///
    /// # Panics
    ///
    /// Panics if the label was never bound — a static programming error in
    /// the image builder.
    pub fn require(&self, name: &str) -> u32 {
        match self.symbol(name) {
            Some(a) => a,
            None => panic!("symbol `{name}` not defined in object"),
        }
    }

    /// All symbols, name → absolute word address.
    pub fn symbols(&self) -> &BTreeMap<String, u32> {
        &self.symbols
    }

    /// Copies the unit into a flash image.
    pub fn load_into(&self, flash: &mut avr_core::mem::Flash) {
        flash.load_words(self.origin, &self.words);
    }
}
