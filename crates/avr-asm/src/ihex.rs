//! Intel HEX import/export, the interchange format of real AVR toolchains
//! (`avr-objcopy -O ihex`, avrdude, bootloaders).
//!
//! AVR flash is presented byte-addressed and little-endian within each
//! 16-bit word, matching `avr-objcopy`'s output for `.text`.

use crate::object::Object;
use std::fmt;

/// A malformed Intel HEX input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IhexError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for IhexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for IhexError {}

fn checksum(bytes: &[u8]) -> u8 {
    0u8.wrapping_sub(bytes.iter().fold(0u8, |a, &b| a.wrapping_add(b)))
}

/// Serialises `(byte_addr, data)` chunks as Intel HEX with 16-byte records
/// and a terminating EOF record.
pub fn encode(chunks: &[(u32, &[u8])]) -> String {
    let mut out = String::new();
    for &(base, data) in chunks {
        for (i, rec) in data.chunks(16).enumerate() {
            let addr = base + i as u32 * 16;
            assert!(addr <= 0xffff, "extended addressing not needed for 128 KiB images");
            let mut bytes = Vec::with_capacity(4 + rec.len());
            bytes.push(rec.len() as u8);
            bytes.push((addr >> 8) as u8);
            bytes.push(addr as u8);
            bytes.push(0x00); // data record
            bytes.extend_from_slice(rec);
            out.push(':');
            for b in &bytes {
                out.push_str(&format!("{b:02X}"));
            }
            out.push_str(&format!("{:02X}\n", checksum(&bytes)));
        }
    }
    out.push_str(":00000001FF\n");
    out
}

/// Parses Intel HEX into `(byte_addr, data)` chunks (one per contiguous
/// run).
///
/// # Errors
///
/// [`IhexError`] on syntax, checksum or record-type problems.
pub fn decode(src: &str) -> Result<Vec<(u32, Vec<u8>)>, IhexError> {
    let mut chunks: Vec<(u32, Vec<u8>)> = Vec::new();
    let err = |line: usize, message: &str| IhexError { line, message: message.to_string() };
    for (i, raw) in src.lines().enumerate() {
        let line = i + 1;
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let Some(hex) = raw.strip_prefix(':') else {
            return Err(err(line, "record must start with ':'"));
        };
        if hex.len() % 2 != 0 || hex.len() < 10 {
            return Err(err(line, "truncated record"));
        }
        let bytes: Vec<u8> = (0..hex.len() / 2)
            .map(|j| u8::from_str_radix(&hex[j * 2..j * 2 + 2], 16))
            .collect::<Result<_, _>>()
            .map_err(|_| err(line, "non-hex digit"))?;
        let (body, check) = bytes.split_at(bytes.len() - 1);
        if checksum(body) != check[0] {
            return Err(err(line, "checksum mismatch"));
        }
        let count = body[0] as usize;
        if body.len() != count + 4 {
            return Err(err(line, "length field disagrees with record size"));
        }
        let addr = ((body[1] as u32) << 8) | body[2] as u32;
        match body[3] {
            0x00 => {
                let data = &body[4..];
                match chunks.last_mut() {
                    Some((base, buf)) if *base + buf.len() as u32 == addr => {
                        buf.extend_from_slice(data);
                    }
                    _ => chunks.push((addr, data.to_vec())),
                }
            }
            0x01 => return Ok(chunks),
            other => return Err(err(line, &format!("unsupported record type {other:#04x}"))),
        }
    }
    Err(IhexError { line: 0, message: "missing EOF record".to_string() })
}

impl Object {
    /// Exports the object as Intel HEX (byte addresses; AVR little-endian
    /// word order).
    pub fn to_ihex(&self) -> String {
        let bytes: Vec<u8> =
            self.words().iter().flat_map(|w| [*w as u8, (*w >> 8) as u8]).collect();
        encode(&[(self.origin() * 2, &bytes)])
    }
}

/// Loads Intel HEX into a flash image.
///
/// # Errors
///
/// [`IhexError`] on malformed input or odd (non-word-aligned) chunks.
pub fn load_into_flash(src: &str, flash: &mut avr_core::mem::Flash) -> Result<(), IhexError> {
    for (addr, data) in decode(src)? {
        for (i, &b) in data.iter().enumerate() {
            flash.set_byte(addr + i as u32, b);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Asm;
    use avr_core::isa::Reg;
    use avr_core::mem::Flash;

    fn sample_object() -> Object {
        let mut a = Asm::new();
        let l = a.here("loop");
        a.ldi(Reg::R16, 0x42);
        a.sts(0x0100, Reg::R16);
        a.rjmp(l);
        a.assemble(0x0040).unwrap()
    }

    #[test]
    fn object_round_trips_through_ihex() {
        let obj = sample_object();
        let hex = obj.to_ihex();
        assert!(hex.starts_with(':'));
        assert!(hex.ends_with(":00000001FF\n"));
        let chunks = decode(&hex).unwrap();
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].0, 0x0040 * 2);
        let words: Vec<u16> =
            chunks[0].1.chunks(2).map(|p| p[0] as u16 | ((p[1] as u16) << 8)).collect();
        assert_eq!(words, obj.words());
    }

    #[test]
    fn flash_loading_matches_direct_load() {
        let obj = sample_object();
        let mut direct = Flash::new();
        obj.load_into(&mut direct);
        let mut via_hex = Flash::new();
        load_into_flash(&obj.to_ihex(), &mut via_hex).unwrap();
        for w in 0x0040..0x0048u32 {
            assert_eq!(direct.word(w), via_hex.word(w), "word {w:#06x}");
        }
    }

    #[test]
    fn known_record_format() {
        // One 4-byte record at 0x0010: classic fixture.
        let hex = encode(&[(0x0010, &[0x12, 0x34, 0x56, 0x78])]);
        assert_eq!(hex, ":0400100012345678D8\n:00000001FF\n");
    }

    #[test]
    fn rejects_corruption() {
        let good = encode(&[(0, &[1, 2, 3, 4])]);
        // Flip a data nibble: checksum must catch it.
        let bad = good.replacen("01", "02", 1);
        assert!(decode(&bad).is_err());
        assert!(decode("no colon\n").is_err());
        assert!(decode(":000000").is_err(), "truncated");
        assert!(decode(":0400100012345678D8\n").is_err(), "missing EOF");
    }

    #[test]
    fn multiple_chunks_and_gaps() {
        let hex = encode(&[(0x0000, &[0xaa; 20]), (0x0100, &[0xbb; 3])]);
        let chunks = decode(&hex).unwrap();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].1.len(), 20, "split records merge back into one chunk");
        assert_eq!(chunks[1], (0x0100, vec![0xbb; 3]));
    }
}
