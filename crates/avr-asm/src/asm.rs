//! The builder-style assembler.

use crate::object::Object;
use avr_core::isa::{self, EncodeError, Instr, IwPair, Ptr, PtrMode, Reg};
use std::collections::BTreeMap;
use std::fmt;

/// A handle to a symbol: either a label bound to a position in the unit, or
/// an absolute constant (see [`Asm::constant`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Assembly-time errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// An instruction's operands violate its encoding (see
    /// [`EncodeError`]).
    Encode(EncodeError),
    /// A referenced label was never bound.
    Unbound {
        /// The label's name.
        name: String,
    },
    /// A label was bound twice.
    DuplicateBind {
        /// The label's name.
        name: String,
    },
    /// A relative jump/branch target is out of the instruction's reach.
    RelativeOutOfRange {
        /// Mnemonic of the instruction.
        mnemonic: &'static str,
        /// Word address of the instruction.
        at: u32,
        /// Resolved target word address.
        target: u32,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::Encode(e) => write!(f, "{e}"),
            AsmError::Unbound { name } => write!(f, "label `{name}` was never bound"),
            AsmError::DuplicateBind { name } => write!(f, "label `{name}` bound twice"),
            AsmError::RelativeOutOfRange { mnemonic, at, target } => {
                write!(f, "{mnemonic} at {at:#06x} cannot reach {target:#06x}")
            }
        }
    }
}

impl std::error::Error for AsmError {}

impl From<EncodeError> for AsmError {
    fn from(e: EncodeError) -> Self {
        AsmError::Encode(e)
    }
}

#[derive(Debug, Clone, Copy)]
enum RelOp {
    Rjmp,
    Rcall,
    Brbs(u8),
    Brbc(u8),
}

#[derive(Debug, Clone, Copy)]
enum AbsOp {
    Jmp,
    Call,
}

#[derive(Debug, Clone, Copy)]
enum SymPart {
    Lo8,
    Hi8,
}

#[derive(Debug, Clone)]
enum Item {
    Fixed(Instr),
    Bind(usize),
    Rel { op: RelOp, label: usize },
    Abs { op: AbsOp, label: usize },
    LdiSym { d: Reg, label: usize, part: SymPart },
    LdsSym { d: Reg, label: usize },
    StsSym { label: usize, r: Reg },
    Words(Vec<u16>),
}

impl Item {
    fn words(&self) -> u32 {
        match self {
            Item::Fixed(i) => i.words(),
            Item::Bind(_) => 0,
            Item::Rel { .. } | Item::LdiSym { .. } => 1,
            Item::Abs { .. } | Item::LdsSym { .. } | Item::StsSym { .. } => 2,
            Item::Words(w) => w.len() as u32,
        }
    }
}

#[derive(Debug, Clone)]
struct Sym {
    name: String,
    value: Option<u32>,
    is_const: bool,
}

/// The assembler: accumulate instructions and labels, then
/// [`assemble`](Asm::assemble).
///
/// Every mnemonic method appends one instruction. Common aliases are
/// provided (`clr`, `tst`, `lsl`, `rol`, `breq`, `sei`, …) alongside the
/// canonical forms, and [`Asm::emit`] accepts any prebuilt [`Instr`].
#[derive(Debug, Clone, Default)]
pub struct Asm {
    items: Vec<Item>,
    syms: Vec<Sym>,
}

impl Asm {
    /// Creates an empty unit.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Declares a label (bind it later with [`Asm::bind`]).
    pub fn label(&mut self, name: &str) -> Label {
        self.syms.push(Sym { name: name.to_string(), value: None, is_const: false });
        Label(self.syms.len() - 1)
    }

    /// Declares and immediately binds a label at the current position.
    pub fn here(&mut self, name: &str) -> Label {
        let l = self.label(name);
        self.bind(l);
        l
    }

    /// Declares a symbol with an absolute value (a data address, a jump-table
    /// word address, a port number…). Usable anywhere a label is.
    pub fn constant(&mut self, name: &str, value: u32) -> Label {
        self.syms.push(Sym { name: name.to_string(), value: Some(value), is_const: true });
        Label(self.syms.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// Double binds are reported by [`Asm::assemble`].
    pub fn bind(&mut self, label: Label) {
        self.items.push(Item::Bind(label.0));
    }

    /// Appends a prebuilt instruction.
    pub fn emit(&mut self, i: Instr) {
        self.items.push(Item::Fixed(i));
    }

    /// Appends raw words (data tables, deliberately odd encodings).
    pub fn words(&mut self, w: &[u16]) {
        self.items.push(Item::Words(w.to_vec()));
    }

    /// Current size of the unit in words (labels bound after this many
    /// words).
    pub fn len_words(&self) -> u32 {
        self.items.iter().map(Item::words).sum()
    }

    // ── two-register ALU ────────────────────────────────────────────────
    /// `add Rd, Rr`
    pub fn add(&mut self, d: Reg, r: Reg) {
        self.emit(Instr::Add { d, r });
    }
    /// `adc Rd, Rr`
    pub fn adc(&mut self, d: Reg, r: Reg) {
        self.emit(Instr::Adc { d, r });
    }
    /// `sub Rd, Rr`
    pub fn sub(&mut self, d: Reg, r: Reg) {
        self.emit(Instr::Sub { d, r });
    }
    /// `sbc Rd, Rr`
    pub fn sbc(&mut self, d: Reg, r: Reg) {
        self.emit(Instr::Sbc { d, r });
    }
    /// `and Rd, Rr`
    pub fn and(&mut self, d: Reg, r: Reg) {
        self.emit(Instr::And { d, r });
    }
    /// `or Rd, Rr`
    pub fn or(&mut self, d: Reg, r: Reg) {
        self.emit(Instr::Or { d, r });
    }
    /// `eor Rd, Rr`
    pub fn eor(&mut self, d: Reg, r: Reg) {
        self.emit(Instr::Eor { d, r });
    }
    /// `mov Rd, Rr`
    pub fn mov(&mut self, d: Reg, r: Reg) {
        self.emit(Instr::Mov { d, r });
    }
    /// `movw Rd+1:Rd, Rr+1:Rr`
    pub fn movw(&mut self, d: Reg, r: Reg) {
        self.emit(Instr::Movw { d, r });
    }
    /// `cp Rd, Rr`
    pub fn cp(&mut self, d: Reg, r: Reg) {
        self.emit(Instr::Cp { d, r });
    }
    /// `cpc Rd, Rr`
    pub fn cpc(&mut self, d: Reg, r: Reg) {
        self.emit(Instr::Cpc { d, r });
    }
    /// `cpse Rd, Rr`
    pub fn cpse(&mut self, d: Reg, r: Reg) {
        self.emit(Instr::Cpse { d, r });
    }
    /// `mul Rd, Rr`
    pub fn mul(&mut self, d: Reg, r: Reg) {
        self.emit(Instr::Mul { d, r });
    }
    /// `clr Rd` (alias of `eor Rd, Rd`)
    pub fn clr(&mut self, d: Reg) {
        self.eor(d, d);
    }
    /// `tst Rd` (alias of `and Rd, Rd`)
    pub fn tst(&mut self, d: Reg) {
        self.and(d, d);
    }
    /// `lsl Rd` (alias of `add Rd, Rd`)
    pub fn lsl(&mut self, d: Reg) {
        self.add(d, d);
    }
    /// `rol Rd` (alias of `adc Rd, Rd`)
    pub fn rol(&mut self, d: Reg) {
        self.adc(d, d);
    }

    // ── immediates ──────────────────────────────────────────────────────
    /// `ldi Rd, k` (`Rd` in r16..r31)
    pub fn ldi(&mut self, d: Reg, k: u8) {
        self.emit(Instr::Ldi { d, k });
    }
    /// `ser Rd` (alias of `ldi Rd, 0xff`)
    pub fn ser(&mut self, d: Reg) {
        self.ldi(d, 0xff);
    }
    /// `subi Rd, k`
    pub fn subi(&mut self, d: Reg, k: u8) {
        self.emit(Instr::Subi { d, k });
    }
    /// `sbci Rd, k`
    pub fn sbci(&mut self, d: Reg, k: u8) {
        self.emit(Instr::Sbci { d, k });
    }
    /// `andi Rd, k`
    pub fn andi(&mut self, d: Reg, k: u8) {
        self.emit(Instr::Andi { d, k });
    }
    /// `ori Rd, k`
    pub fn ori(&mut self, d: Reg, k: u8) {
        self.emit(Instr::Ori { d, k });
    }
    /// `cpi Rd, k`
    pub fn cpi(&mut self, d: Reg, k: u8) {
        self.emit(Instr::Cpi { d, k });
    }
    /// `ldi Rd, lo8(sym)`
    pub fn ldi_lo8(&mut self, d: Reg, sym: Label) {
        self.items.push(Item::LdiSym { d, label: sym.0, part: SymPart::Lo8 });
    }
    /// `ldi Rd, hi8(sym)`
    pub fn ldi_hi8(&mut self, d: Reg, sym: Label) {
        self.items.push(Item::LdiSym { d, label: sym.0, part: SymPart::Hi8 });
    }
    /// Loads a 16-bit immediate into the pair whose low register is `lo`
    /// (both registers must be in r16..r31): `ldi lo, low(k)` +
    /// `ldi lo+1, high(k)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo` is `r31` (no high partner register exists).
    pub fn ldi16(&mut self, lo: Reg, k: u16) {
        let hi = Reg::new(lo.index() + 1).expect("pair has a high register");
        self.ldi(lo, (k & 0xff) as u8);
        self.ldi(hi, (k >> 8) as u8);
    }

    /// `adiw p, k`
    pub fn adiw(&mut self, p: IwPair, k: u8) {
        self.emit(Instr::Adiw { p, k });
    }
    /// `sbiw p, k`
    pub fn sbiw(&mut self, p: IwPair, k: u8) {
        self.emit(Instr::Sbiw { p, k });
    }

    // ── one-register ALU ────────────────────────────────────────────────
    /// `com Rd`
    pub fn com(&mut self, d: Reg) {
        self.emit(Instr::Com { d });
    }
    /// `neg Rd`
    pub fn neg(&mut self, d: Reg) {
        self.emit(Instr::Neg { d });
    }
    /// `swap Rd`
    pub fn swap(&mut self, d: Reg) {
        self.emit(Instr::Swap { d });
    }
    /// `inc Rd`
    pub fn inc(&mut self, d: Reg) {
        self.emit(Instr::Inc { d });
    }
    /// `dec Rd`
    pub fn dec(&mut self, d: Reg) {
        self.emit(Instr::Dec { d });
    }
    /// `asr Rd`
    pub fn asr(&mut self, d: Reg) {
        self.emit(Instr::Asr { d });
    }
    /// `lsr Rd`
    pub fn lsr(&mut self, d: Reg) {
        self.emit(Instr::Lsr { d });
    }
    /// `ror Rd`
    pub fn ror(&mut self, d: Reg) {
        self.emit(Instr::Ror { d });
    }

    // ── control flow ────────────────────────────────────────────────────
    /// `rjmp label`
    pub fn rjmp(&mut self, l: Label) {
        self.items.push(Item::Rel { op: RelOp::Rjmp, label: l.0 });
    }
    /// `rcall label`
    pub fn rcall(&mut self, l: Label) {
        self.items.push(Item::Rel { op: RelOp::Rcall, label: l.0 });
    }
    /// `jmp label` (two words)
    pub fn jmp(&mut self, l: Label) {
        self.items.push(Item::Abs { op: AbsOp::Jmp, label: l.0 });
    }
    /// `call label` (two words)
    pub fn call(&mut self, l: Label) {
        self.items.push(Item::Abs { op: AbsOp::Call, label: l.0 });
    }
    /// `jmp` to an absolute word address
    pub fn jmp_abs(&mut self, k: u32) {
        self.emit(Instr::Jmp { k });
    }
    /// `call` to an absolute word address
    pub fn call_abs(&mut self, k: u32) {
        self.emit(Instr::Call { k });
    }
    /// `ijmp`
    pub fn ijmp(&mut self) {
        self.emit(Instr::Ijmp);
    }
    /// `icall`
    pub fn icall(&mut self) {
        self.emit(Instr::Icall);
    }
    /// `ret`
    pub fn ret(&mut self) {
        self.emit(Instr::Ret);
    }
    /// `reti`
    pub fn reti(&mut self) {
        self.emit(Instr::Reti);
    }
    /// `brbs s, label`
    pub fn brbs(&mut self, s: u8, l: Label) {
        self.items.push(Item::Rel { op: RelOp::Brbs(s), label: l.0 });
    }
    /// `brbc s, label`
    pub fn brbc(&mut self, s: u8, l: Label) {
        self.items.push(Item::Rel { op: RelOp::Brbc(s), label: l.0 });
    }
    /// `breq label`
    pub fn breq(&mut self, l: Label) {
        self.brbs(isa::flags::Z, l);
    }
    /// `brne label`
    pub fn brne(&mut self, l: Label) {
        self.brbc(isa::flags::Z, l);
    }
    /// `brcs label` / `brlo label`
    pub fn brcs(&mut self, l: Label) {
        self.brbs(isa::flags::C, l);
    }
    /// `brcc label` / `brsh label`
    pub fn brcc(&mut self, l: Label) {
        self.brbc(isa::flags::C, l);
    }
    /// `brlo label` (unsigned <; alias of `brcs`)
    pub fn brlo(&mut self, l: Label) {
        self.brcs(l);
    }
    /// `brsh label` (unsigned >=; alias of `brcc`)
    pub fn brsh(&mut self, l: Label) {
        self.brcc(l);
    }
    /// `brmi label`
    pub fn brmi(&mut self, l: Label) {
        self.brbs(isa::flags::N, l);
    }
    /// `brpl label`
    pub fn brpl(&mut self, l: Label) {
        self.brbc(isa::flags::N, l);
    }
    /// `brge label` (signed >=)
    pub fn brge(&mut self, l: Label) {
        self.brbc(isa::flags::S, l);
    }
    /// `brlt label` (signed <)
    pub fn brlt(&mut self, l: Label) {
        self.brbs(isa::flags::S, l);
    }
    /// `sbrc Rr, b`
    pub fn sbrc(&mut self, r: Reg, b: u8) {
        self.emit(Instr::Sbrc { r, b });
    }
    /// `sbrs Rr, b`
    pub fn sbrs(&mut self, r: Reg, b: u8) {
        self.emit(Instr::Sbrs { r, b });
    }
    /// `sbic a, b`
    pub fn sbic(&mut self, a: u8, b: u8) {
        self.emit(Instr::Sbic { a, b });
    }
    /// `sbis a, b`
    pub fn sbis(&mut self, a: u8, b: u8) {
        self.emit(Instr::Sbis { a, b });
    }

    // ── data transfer ───────────────────────────────────────────────────
    /// `ld Rd, {X,Y,Z}[+/-]`
    pub fn ld(&mut self, d: Reg, ptr: Ptr, mode: PtrMode) {
        self.emit(Instr::Ld { d, ptr, mode });
    }
    /// `st {X,Y,Z}[+/-], Rr`
    pub fn st(&mut self, ptr: Ptr, mode: PtrMode, r: Reg) {
        self.emit(Instr::St { ptr, mode, r });
    }
    /// `ldd Rd, Y/Z+q`
    pub fn ldd(&mut self, d: Reg, ptr: Ptr, q: u8) {
        self.emit(Instr::Ldd { d, ptr, q });
    }
    /// `std Y/Z+q, Rr`
    pub fn std(&mut self, ptr: Ptr, q: u8, r: Reg) {
        self.emit(Instr::Std { ptr, q, r });
    }
    /// `lds Rd, addr`
    pub fn lds(&mut self, d: Reg, addr: u16) {
        self.emit(Instr::Lds { d, k: addr });
    }
    /// `sts addr, Rr`
    pub fn sts(&mut self, addr: u16, r: Reg) {
        self.emit(Instr::Sts { k: addr, r });
    }
    /// `lds Rd, sym`
    pub fn lds_sym(&mut self, d: Reg, sym: Label) {
        self.items.push(Item::LdsSym { d, label: sym.0 });
    }
    /// `sts sym, Rr`
    pub fn sts_sym(&mut self, sym: Label, r: Reg) {
        self.items.push(Item::StsSym { label: sym.0, r });
    }
    /// `lpm Rd, Z[+]`
    pub fn lpm(&mut self, d: Reg, inc: bool) {
        self.emit(Instr::Lpm { d, inc });
    }
    /// `in Rd, a` (`in` is a keyword, hence the underscore)
    pub fn in_(&mut self, d: Reg, a: u8) {
        self.emit(Instr::In { d, a });
    }
    /// `out a, Rr`
    pub fn out(&mut self, a: u8, r: Reg) {
        self.emit(Instr::Out { a, r });
    }
    /// `push Rr`
    pub fn push(&mut self, r: Reg) {
        self.emit(Instr::Push { r });
    }
    /// `pop Rd`
    pub fn pop(&mut self, d: Reg) {
        self.emit(Instr::Pop { d });
    }

    // ── bit operations & MCU control ────────────────────────────────────
    /// `bset s`
    pub fn bset(&mut self, s: u8) {
        self.emit(Instr::Bset { s });
    }
    /// `bclr s`
    pub fn bclr(&mut self, s: u8) {
        self.emit(Instr::Bclr { s });
    }
    /// `sei`
    pub fn sei(&mut self) {
        self.bset(isa::flags::I);
    }
    /// `cli`
    pub fn cli(&mut self) {
        self.bclr(isa::flags::I);
    }
    /// `sec`
    pub fn sec(&mut self) {
        self.bset(isa::flags::C);
    }
    /// `clc`
    pub fn clc(&mut self) {
        self.bclr(isa::flags::C);
    }
    /// `sbi a, b`
    pub fn sbi(&mut self, a: u8, b: u8) {
        self.emit(Instr::Sbi { a, b });
    }
    /// `cbi a, b`
    pub fn cbi(&mut self, a: u8, b: u8) {
        self.emit(Instr::Cbi { a, b });
    }
    /// `bst Rd, b`
    pub fn bst(&mut self, d: Reg, b: u8) {
        self.emit(Instr::Bst { d, b });
    }
    /// `bld Rd, b`
    pub fn bld(&mut self, d: Reg, b: u8) {
        self.emit(Instr::Bld { d, b });
    }
    /// `nop`
    pub fn nop(&mut self) {
        self.emit(Instr::Nop);
    }
    /// `sleep`
    pub fn sleep(&mut self) {
        self.emit(Instr::Sleep);
    }
    /// `wdr`
    pub fn wdr(&mut self) {
        self.emit(Instr::Wdr);
    }
    /// `break` (`break` is a keyword, hence `brk`)
    pub fn brk(&mut self) {
        self.emit(Instr::Break);
    }

    // ── assembly ────────────────────────────────────────────────────────

    /// Resolves labels and encodes the unit at word address `origin`.
    ///
    /// # Errors
    ///
    /// [`AsmError::Unbound`] / [`AsmError::DuplicateBind`] for label
    /// problems, [`AsmError::RelativeOutOfRange`] for unreachable relative
    /// targets, [`AsmError::Encode`] for invalid operands.
    pub fn assemble(&self, origin: u32) -> Result<Object, AsmError> {
        // Pass 1: bind labels.
        let mut values: Vec<Option<u32>> = self.syms.iter().map(|s| s.value).collect();
        let mut pos = origin;
        for item in &self.items {
            if let Item::Bind(id) = item {
                let sym = &self.syms[*id];
                if values[*id].is_some() && !sym.is_const {
                    return Err(AsmError::DuplicateBind { name: sym.name.clone() });
                }
                if sym.is_const {
                    return Err(AsmError::DuplicateBind { name: sym.name.clone() });
                }
                values[*id] = Some(pos);
            } else {
                pos += item.words();
            }
        }

        let resolve = |id: usize| -> Result<u32, AsmError> {
            values[id].ok_or_else(|| AsmError::Unbound { name: self.syms[id].name.clone() })
        };

        // Pass 2: encode.
        let mut words: Vec<u16> = Vec::new();
        let mut pos = origin;
        for item in &self.items {
            match item {
                Item::Bind(_) => continue,
                Item::Fixed(i) => {
                    words.extend_from_slice(isa::encode(*i)?.as_slice());
                }
                Item::Words(w) => words.extend_from_slice(w),
                Item::Rel { op, label } => {
                    let target = resolve(*label)?;
                    let k = target as i64 - (pos as i64 + 1);
                    let (instr, mnemonic, lo, hi): (Instr, _, i64, i64) = match op {
                        RelOp::Rjmp => (Instr::Rjmp { k: k as i16 }, "rjmp", -2048, 2047),
                        RelOp::Rcall => (Instr::Rcall { k: k as i16 }, "rcall", -2048, 2047),
                        RelOp::Brbs(s) => (Instr::Brbs { s: *s, k: k as i8 }, "brbs", -64, 63),
                        RelOp::Brbc(s) => (Instr::Brbc { s: *s, k: k as i8 }, "brbc", -64, 63),
                    };
                    if k < lo || k > hi {
                        return Err(AsmError::RelativeOutOfRange { mnemonic, at: pos, target });
                    }
                    words.extend_from_slice(isa::encode(instr)?.as_slice());
                }
                Item::Abs { op, label } => {
                    let k = resolve(*label)?;
                    let i = match op {
                        AbsOp::Jmp => Instr::Jmp { k },
                        AbsOp::Call => Instr::Call { k },
                    };
                    words.extend_from_slice(isa::encode(i)?.as_slice());
                }
                Item::LdiSym { d, label, part } => {
                    let v = resolve(*label)?;
                    let k = match part {
                        SymPart::Lo8 => v as u8,
                        SymPart::Hi8 => (v >> 8) as u8,
                    };
                    words.extend_from_slice(isa::encode(Instr::Ldi { d: *d, k })?.as_slice());
                }
                Item::LdsSym { d, label } => {
                    let v = resolve(*label)? as u16;
                    words.extend_from_slice(isa::encode(Instr::Lds { d: *d, k: v })?.as_slice());
                }
                Item::StsSym { label, r } => {
                    let v = resolve(*label)? as u16;
                    words.extend_from_slice(isa::encode(Instr::Sts { k: v, r: *r })?.as_slice());
                }
            }
            pos += item.words();
        }

        let mut symbols = BTreeMap::new();
        for (sym, value) in self.syms.iter().zip(values) {
            if let Some(v) = value {
                symbols.insert(sym.name.clone(), v);
            }
        }
        Ok(Object::new(origin, words, symbols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avr_core::isa::decode;

    #[test]
    fn forward_and_backward_references() {
        let mut a = Asm::new();
        let fwd = a.label("fwd");
        let back = a.here("back");
        a.nop(); // word 0 ... wait, `here` binds at 0; nop at 0
        a.rjmp(fwd);
        a.rjmp(back);
        a.bind(fwd);
        a.ret();
        let obj = a.assemble(0).unwrap();
        assert_eq!(obj.symbol("back"), Some(0));
        assert_eq!(obj.symbol("fwd"), Some(3));
        // rjmp fwd at word 1: k = 3 - 2 = 1
        assert_eq!(decode(obj.words()[1], None).unwrap(), Instr::Rjmp { k: 1 });
        // rjmp back at word 2: k = 0 - 3 = -3
        assert_eq!(decode(obj.words()[2], None).unwrap(), Instr::Rjmp { k: -3 });
    }

    #[test]
    fn origin_affects_absolute_but_not_relative() {
        let mut a = Asm::new();
        let l = a.label("f");
        a.call(l);
        a.ret();
        a.bind(l);
        a.nop();
        let obj = a.assemble(0x100).unwrap();
        assert_eq!(obj.symbol("f"), Some(0x103));
        assert_eq!(obj.words()[1], 0x0103, "call's second word is absolute");
    }

    #[test]
    fn constants_resolve_in_ldi_and_sts() {
        let mut a = Asm::new();
        let var = a.constant("kernel_var", 0x0123);
        a.ldi_lo8(Reg::R30, var);
        a.ldi_hi8(Reg::R31, var);
        a.sts_sym(var, Reg::R16);
        a.lds_sym(Reg::R17, var);
        let obj = a.assemble(0).unwrap();
        assert_eq!(decode(obj.words()[0], None).unwrap(), Instr::Ldi { d: Reg::R30, k: 0x23 });
        assert_eq!(decode(obj.words()[1], None).unwrap(), Instr::Ldi { d: Reg::R31, k: 0x01 });
        assert_eq!(
            decode(obj.words()[2], Some(obj.words()[3])).unwrap(),
            Instr::Sts { k: 0x0123, r: Reg::R16 }
        );
        assert_eq!(
            decode(obj.words()[4], Some(obj.words()[5])).unwrap(),
            Instr::Lds { d: Reg::R17, k: 0x0123 }
        );
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Asm::new();
        let l = a.label("nowhere");
        a.rjmp(l);
        assert_eq!(a.assemble(0), Err(AsmError::Unbound { name: "nowhere".into() }));
    }

    #[test]
    fn duplicate_bind_is_an_error() {
        let mut a = Asm::new();
        let l = a.label("twice");
        a.bind(l);
        a.nop();
        a.bind(l);
        assert_eq!(a.assemble(0), Err(AsmError::DuplicateBind { name: "twice".into() }));
    }

    #[test]
    fn binding_a_constant_is_an_error() {
        let mut a = Asm::new();
        let c = a.constant("c", 1);
        a.bind(c);
        assert!(matches!(a.assemble(0), Err(AsmError::DuplicateBind { .. })));
    }

    #[test]
    fn branch_out_of_range_is_detected() {
        let mut a = Asm::new();
        let far = a.label("far");
        a.breq(far);
        for _ in 0..100 {
            a.nop();
        }
        a.bind(far);
        a.ret();
        assert!(matches!(
            a.assemble(0),
            Err(AsmError::RelativeOutOfRange { mnemonic: "brbs", .. })
        ));
    }

    #[test]
    fn aliases_encode_canonically() {
        let mut a = Asm::new();
        a.clr(Reg::R16);
        a.lsl(Reg::R17);
        a.ser(Reg::R18);
        let obj = a.assemble(0).unwrap();
        assert_eq!(decode(obj.words()[0], None).unwrap(), Instr::Eor { d: Reg::R16, r: Reg::R16 });
        assert_eq!(decode(obj.words()[1], None).unwrap(), Instr::Add { d: Reg::R17, r: Reg::R17 });
        assert_eq!(decode(obj.words()[2], None).unwrap(), Instr::Ldi { d: Reg::R18, k: 0xff });
    }

    #[test]
    fn ldi16_loads_a_pair() {
        let mut a = Asm::new();
        a.ldi16(Reg::R26, 0x1234);
        let obj = a.assemble(0).unwrap();
        assert_eq!(decode(obj.words()[0], None).unwrap(), Instr::Ldi { d: Reg::R26, k: 0x34 });
        assert_eq!(decode(obj.words()[1], None).unwrap(), Instr::Ldi { d: Reg::R27, k: 0x12 });
    }

    #[test]
    fn raw_words_pass_through() {
        let mut a = Asm::new();
        a.words(&[0xdead, 0xbeef]);
        let obj = a.assemble(0).unwrap();
        assert_eq!(obj.words(), &[0xdead, 0xbeef]);
        assert_eq!(obj.size_bytes(), 4);
    }
}
