//! Flash-image disassembly, the front end of the SFI binary rewriter.

use avr_core::isa::{self, Instr};
use avr_core::WordAddr;

/// One disassembled slot: a decoded instruction or a raw word that failed to
/// decode (data, or an unsupported opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisasmItem {
    /// A decoded instruction at the given word address.
    Instr {
        /// Word address of the first word.
        addr: WordAddr,
        /// The instruction.
        instr: Instr,
    },
    /// A word that is not a valid opcode.
    Raw {
        /// Word address.
        addr: WordAddr,
        /// The raw word.
        word: u16,
    },
}

impl DisasmItem {
    /// Word address of the item.
    pub fn addr(&self) -> WordAddr {
        match *self {
            DisasmItem::Instr { addr, .. } | DisasmItem::Raw { addr, .. } => addr,
        }
    }

    /// Size in words (raw words count as 1).
    pub fn words(&self) -> u32 {
        match self {
            DisasmItem::Instr { instr, .. } => instr.words(),
            DisasmItem::Raw { .. } => 1,
        }
    }
}

/// Disassembles one instruction from `words` at index `idx`, returning the
/// item and the number of words consumed.
pub fn disasm_one(base: WordAddr, words: &[u16], idx: usize) -> (DisasmItem, usize) {
    let addr = base + idx as u32;
    let w0 = words[idx];
    let w1 = words.get(idx + 1).copied();
    match isa::decode(w0, w1) {
        Ok(instr) => (DisasmItem::Instr { addr, instr }, instr.words() as usize),
        Err(_) => (DisasmItem::Raw { addr, word: w0 }, 1),
    }
}

/// Linearly disassembles a word slice located at word address `base`.
///
/// Straight-line sweep (no control-flow recovery): exactly what the on-node
/// verifier and the binary rewriter do, since sandboxed modules must be
/// fully decodable — any raw word is itself a verification failure.
pub fn disasm(base: WordAddr, words: &[u16]) -> Vec<DisasmItem> {
    let mut out = Vec::new();
    let mut idx = 0;
    while idx < words.len() {
        let (item, used) = disasm_one(base, words, idx);
        out.push(item);
        idx += used;
    }
    out
}

/// Formats a word slice as a human-readable disassembly listing
/// (`addr: instruction` per line, raw words as `.word`).
pub fn listing(base: WordAddr, words: &[u16]) -> String {
    let mut out = String::new();
    for item in disasm(base, words) {
        match item {
            DisasmItem::Instr { addr, instr } => {
                out.push_str(&format!("{addr:#06x}: {instr}\n"));
            }
            DisasmItem::Raw { addr, word } => {
                out.push_str(&format!("{addr:#06x}: .word {word:#06x}\n"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use avr_core::isa::Reg;

    #[test]
    fn mixed_stream() {
        let words = [
            isa::encode(Instr::Ldi { d: Reg::R16, k: 1 }).unwrap().word0(),
            0x940e, // call ...
            0x0123, // ... target
            0x9508, // ret
        ];
        let items = disasm(0x100, &words);
        assert_eq!(items.len(), 3);
        assert_eq!(
            items[0],
            DisasmItem::Instr { addr: 0x100, instr: Instr::Ldi { d: Reg::R16, k: 1 } }
        );
        assert_eq!(items[1], DisasmItem::Instr { addr: 0x101, instr: Instr::Call { k: 0x123 } });
        assert_eq!(items[2], DisasmItem::Instr { addr: 0x103, instr: Instr::Ret });
    }

    #[test]
    fn raw_words_survive() {
        let items = disasm(0, &[0x0001, 0x0000]);
        assert_eq!(items[0], DisasmItem::Raw { addr: 0, word: 0x0001 });
        assert_eq!(items[1], DisasmItem::Instr { addr: 1, instr: Instr::Nop });
    }

    #[test]
    fn two_word_instruction_at_end_without_operand() {
        // A CALL opcode as the last word cannot fetch its target; it decodes
        // as raw.
        let items = disasm(0, &[0x940e]);
        assert_eq!(items, vec![DisasmItem::Raw { addr: 0, word: 0x940e }]);
    }
}
