//! Programmatic AVR assembler, text assembler and disassembler for the
//! [`avr-core`](avr_core) simulator.
//!
//! The Harbor reproduction writes its trusted kernel, run-time check
//! routines and application modules directly in AVR machine code; this crate
//! makes that tractable:
//!
//! * [`Asm`] — a builder-style assembler with labels, forward references,
//!   absolute constants, and a method per mnemonic (including the usual
//!   aliases: `clr`, `lsl`, `breq`, `sei`, …);
//! * [`Object`] — the assembled output: words at an origin plus a symbol
//!   table;
//! * [`disasm()`](fn@disasm) — a flash-image disassembler used by the SFI binary
//!   rewriter and for debugging;
//! * [`text`] — a line-oriented text assembler for examples and tests.
//!
//! # Example
//!
//! ```
//! use avr_asm::Asm;
//! use avr_core::isa::Reg;
//!
//! # fn main() -> Result<(), avr_asm::AsmError> {
//! let mut a = Asm::new();
//! let loop_ = a.label("loop");
//! a.ldi(Reg::R16, 5);
//! a.bind(loop_);
//! a.dec(Reg::R16);
//! a.brne(loop_);
//! a.ret();
//! let obj = a.assemble(0x100)?;
//! assert_eq!(obj.symbol("loop"), Some(0x101));
//! assert_eq!(obj.words().len(), 4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod asm;
pub mod disasm;
pub mod ihex;
mod object;
pub mod text;

pub use asm::{Asm, AsmError, Label};
pub use disasm::{disasm, disasm_one, listing, DisasmItem};
pub use object::Object;
