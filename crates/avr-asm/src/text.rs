//! A line-oriented text assembler over [`Asm`].
//!
//! Supports the conventional AVR syntax used in examples and tests:
//!
//! ```text
//! ; a comment
//! .equ VAR = 0x0123        ; absolute constant
//! start:
//!     ldi r16, 42
//!     ldi r30, lo8(table)  ; symbol halves
//!     st  X+, r16
//!     ldd r17, Y+5
//!     breq start
//!     .word 0xdead         ; raw data
//! ```

use crate::asm::{Asm, AsmError, Label};
use crate::object::Object;
use avr_core::isa::{IwPair, Ptr, PtrMode, Reg};
use std::collections::HashMap;
use std::fmt;

/// A text-assembly error with its line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextAsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TextAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TextAsmError {}

/// Assembles AVR source text at word address `origin`.
///
/// # Example
///
/// ```
/// let obj = avr_asm::text::assemble_str("start:\n  ldi r16, 1\n  rjmp start\n", 0x40)
///     .unwrap();
/// assert_eq!(obj.symbol("start"), Some(0x40));
/// assert_eq!(obj.words().len(), 2);
/// ```
///
/// # Errors
///
/// [`TextAsmError`] with the offending line for syntax problems, or wrapping
/// the underlying [`AsmError`] for resolution/encoding problems.
pub fn assemble_str(src: &str, origin: u32) -> Result<Object, TextAsmError> {
    let mut p = Parser { asm: Asm::new(), labels: HashMap::new() };
    for (i, raw) in src.lines().enumerate() {
        let line = i + 1;
        p.parse_line(raw).map_err(|message| TextAsmError { line, message })?;
    }
    p.asm.assemble(origin).map_err(|e: AsmError| TextAsmError { line: 0, message: e.to_string() })
}

struct Parser {
    asm: Asm,
    labels: HashMap<String, Label>,
}

impl Parser {
    fn sym(&mut self, name: &str) -> Label {
        if let Some(&l) = self.labels.get(name) {
            return l;
        }
        let l = self.asm.label(name);
        self.labels.insert(name.to_string(), l);
        l
    }

    fn parse_line(&mut self, raw: &str) -> Result<(), String> {
        let mut line = raw;
        if let Some(pos) = line.find(';') {
            line = &line[..pos];
        }
        let mut line = line.trim();
        if line.is_empty() {
            return Ok(());
        }
        // Leading label(s).
        while let Some(pos) = line.find(':') {
            let (name, rest) = line.split_at(pos);
            let name = name.trim();
            if !is_ident(name) {
                return Err(format!("invalid label name `{name}`"));
            }
            let l = self.sym(name);
            self.asm.bind(l);
            line = rest[1..].trim();
            if line.is_empty() {
                return Ok(());
            }
        }
        let (mnemonic, rest) = match line.find(char::is_whitespace) {
            Some(pos) => (&line[..pos], line[pos..].trim()),
            None => (line, ""),
        };
        let ops: Vec<String> = if rest.is_empty() { Vec::new() } else { split_operands(rest) };
        self.dispatch(&mnemonic.to_ascii_lowercase(), &ops)
    }

    fn dispatch(&mut self, m: &str, ops: &[String]) -> Result<(), String> {
        macro_rules! need {
            ($n:expr) => {
                if ops.len() != $n {
                    return Err(format!("`{m}` expects {} operand(s), got {}", $n, ops.len()));
                }
            };
        }
        let a = &mut self.asm;
        match m {
            ".equ" => {
                need!(1);
                let (name, value) = ops[0]
                    .split_once('=')
                    .ok_or_else(|| ".equ expects NAME = VALUE".to_string())?;
                let name = name.trim();
                let value = parse_num(value.trim())?;
                if self.labels.contains_key(name) {
                    return Err(format!("symbol `{name}` already defined"));
                }
                let l = self.asm.constant(name, value);
                self.labels.insert(name.to_string(), l);
                return Ok(());
            }
            ".word" => {
                let words: Result<Vec<u16>, String> =
                    ops.iter().map(|o| parse_num(o).map(|v| v as u16)).collect();
                self.asm.words(&words?);
                return Ok(());
            }
            _ => {}
        }

        match m {
            // two-register
            "add" | "adc" | "sub" | "sbc" | "and" | "or" | "eor" | "mov" | "movw" | "cp"
            | "cpc" | "cpse" | "mul" => {
                need!(2);
                let d = parse_reg(&ops[0])?;
                let r = parse_reg(&ops[1])?;
                match m {
                    "add" => a.add(d, r),
                    "adc" => a.adc(d, r),
                    "sub" => a.sub(d, r),
                    "sbc" => a.sbc(d, r),
                    "and" => a.and(d, r),
                    "or" => a.or(d, r),
                    "eor" => a.eor(d, r),
                    "mov" => a.mov(d, r),
                    "movw" => a.movw(d, r),
                    "cp" => a.cp(d, r),
                    "cpc" => a.cpc(d, r),
                    "cpse" => a.cpse(d, r),
                    _ => a.mul(d, r),
                }
            }
            // one-register
            "clr" | "tst" | "lsl" | "rol" | "ser" | "com" | "neg" | "swap" | "inc" | "dec"
            | "asr" | "lsr" | "ror" | "push" | "pop" => {
                need!(1);
                let d = parse_reg(&ops[0])?;
                match m {
                    "clr" => a.clr(d),
                    "tst" => a.tst(d),
                    "lsl" => a.lsl(d),
                    "rol" => a.rol(d),
                    "ser" => a.ser(d),
                    "com" => a.com(d),
                    "neg" => a.neg(d),
                    "swap" => a.swap(d),
                    "inc" => a.inc(d),
                    "dec" => a.dec(d),
                    "asr" => a.asr(d),
                    "lsr" => a.lsr(d),
                    "ror" => a.ror(d),
                    "push" => a.push(d),
                    _ => a.pop(d),
                }
            }
            // register, immediate (with lo8/hi8 support on ldi)
            "ldi" | "subi" | "sbci" | "andi" | "ori" | "cpi" => {
                need!(2);
                let d = parse_reg(&ops[0])?;
                let imm = &ops[1];
                if m == "ldi" {
                    if let Some(name) = imm.strip_prefix("lo8(").and_then(|s| s.strip_suffix(')')) {
                        let l = self.sym(name.trim());
                        self.asm.ldi_lo8(d, l);
                        return Ok(());
                    }
                    if let Some(name) = imm.strip_prefix("hi8(").and_then(|s| s.strip_suffix(')')) {
                        let l = self.sym(name.trim());
                        self.asm.ldi_hi8(d, l);
                        return Ok(());
                    }
                }
                let k = parse_num(imm)? as u8;
                match m {
                    "ldi" => a.ldi(d, k),
                    "subi" => a.subi(d, k),
                    "sbci" => a.sbci(d, k),
                    "andi" => a.andi(d, k),
                    "ori" => a.ori(d, k),
                    _ => a.cpi(d, k),
                }
            }
            "adiw" | "sbiw" => {
                need!(2);
                let p = parse_iw(&ops[0])?;
                let k = parse_num(&ops[1])? as u8;
                if m == "adiw" {
                    a.adiw(p, k)
                } else {
                    a.sbiw(p, k)
                }
            }
            // flow with label operand (numeric absolute targets allowed
            // for jmp/call)
            "rjmp" | "rcall" | "jmp" | "call" | "breq" | "brne" | "brcs" | "brcc" | "brlo"
            | "brsh" | "brmi" | "brpl" | "brge" | "brlt" => {
                need!(1);
                if let Ok(addr) = parse_num(&ops[0]) {
                    match m {
                        "jmp" => {
                            self.asm.jmp_abs(addr);
                            return Ok(());
                        }
                        "call" => {
                            self.asm.call_abs(addr);
                            return Ok(());
                        }
                        _ => return Err(format!("`{m}` takes a label, not a numeric address")),
                    }
                }
                let l = self.sym(&ops[0]);
                let a = &mut self.asm;
                match m {
                    "rjmp" => a.rjmp(l),
                    "rcall" => a.rcall(l),
                    "jmp" => a.jmp(l),
                    "call" => a.call(l),
                    "breq" => a.breq(l),
                    "brne" => a.brne(l),
                    "brcs" => a.brcs(l),
                    "brcc" => a.brcc(l),
                    "brlo" => a.brlo(l),
                    "brsh" => a.brsh(l),
                    "brmi" => a.brmi(l),
                    "brpl" => a.brpl(l),
                    "brge" => a.brge(l),
                    _ => a.brlt(l),
                }
            }
            "ijmp" => {
                need!(0);
                a.ijmp()
            }
            "icall" => {
                need!(0);
                a.icall()
            }
            "ret" => {
                need!(0);
                a.ret()
            }
            "reti" => {
                need!(0);
                a.reti()
            }
            "sbrc" | "sbrs" | "bst" | "bld" => {
                need!(2);
                let r = parse_reg(&ops[0])?;
                let b = parse_num(&ops[1])? as u8;
                match m {
                    "sbrc" => a.sbrc(r, b),
                    "sbrs" => a.sbrs(r, b),
                    "bst" => a.bst(r, b),
                    _ => a.bld(r, b),
                }
            }
            "sbic" | "sbis" | "sbi" | "cbi" => {
                need!(2);
                let port = parse_num(&ops[0])? as u8;
                let b = parse_num(&ops[1])? as u8;
                match m {
                    "sbic" => a.sbic(port, b),
                    "sbis" => a.sbis(port, b),
                    "sbi" => a.sbi(port, b),
                    _ => a.cbi(port, b),
                }
            }
            "ld" => {
                need!(2);
                let d = parse_reg(&ops[0])?;
                match parse_mem(&ops[1])? {
                    Mem::Ptr(ptr, mode) => a.ld(d, ptr, mode),
                    Mem::Disp(ptr, q) => a.ldd(d, ptr, q),
                }
            }
            "ldd" => {
                need!(2);
                let d = parse_reg(&ops[0])?;
                match parse_mem(&ops[1])? {
                    Mem::Disp(ptr, q) => a.ldd(d, ptr, q),
                    Mem::Ptr(..) => return Err("ldd needs a Y+q/Z+q operand".into()),
                }
            }
            "st" => {
                need!(2);
                let r = parse_reg(&ops[1])?;
                match parse_mem(&ops[0])? {
                    Mem::Ptr(ptr, mode) => a.st(ptr, mode, r),
                    Mem::Disp(ptr, q) => a.std(ptr, q, r),
                }
            }
            "std" => {
                need!(2);
                let r = parse_reg(&ops[1])?;
                match parse_mem(&ops[0])? {
                    Mem::Disp(ptr, q) => a.std(ptr, q, r),
                    Mem::Ptr(..) => return Err("std needs a Y+q/Z+q operand".into()),
                }
            }
            "lds" => {
                need!(2);
                let d = parse_reg(&ops[0])?;
                if let Ok(addr) = parse_num(&ops[1]) {
                    a.lds(d, addr as u16)
                } else {
                    let l = self.sym(&ops[1]);
                    self.asm.lds_sym(d, l)
                }
            }
            "sts" => {
                need!(2);
                let r = parse_reg(&ops[1])?;
                if let Ok(addr) = parse_num(&ops[0]) {
                    a.sts(addr as u16, r)
                } else {
                    let l = self.sym(&ops[0]);
                    self.asm.sts_sym(l, r)
                }
            }
            "lpm" => {
                need!(2);
                let d = parse_reg(&ops[0])?;
                match ops[1].as_str() {
                    "Z" | "z" => a.lpm(d, false),
                    "Z+" | "z+" => a.lpm(d, true),
                    other => return Err(format!("lpm operand must be Z or Z+, got `{other}`")),
                }
            }
            "in" => {
                need!(2);
                let d = parse_reg(&ops[0])?;
                let port = parse_num(&ops[1])? as u8;
                a.in_(d, port)
            }
            "out" => {
                need!(2);
                let port = parse_num(&ops[0])? as u8;
                let r = parse_reg(&ops[1])?;
                a.out(port, r)
            }
            "bset" | "bclr" => {
                need!(1);
                let s = parse_num(&ops[0])? as u8;
                if m == "bset" {
                    a.bset(s)
                } else {
                    a.bclr(s)
                }
            }
            "sei" => {
                need!(0);
                a.sei()
            }
            "cli" => {
                need!(0);
                a.cli()
            }
            "sec" => {
                need!(0);
                a.sec()
            }
            "clc" => {
                need!(0);
                a.clc()
            }
            "nop" => {
                need!(0);
                a.nop()
            }
            "sleep" => {
                need!(0);
                a.sleep()
            }
            "wdr" => {
                need!(0);
                a.wdr()
            }
            "break" => {
                need!(0);
                a.brk()
            }
            other => return Err(format!("unknown mnemonic `{other}`")),
        }
        Ok(())
    }
}

enum Mem {
    Ptr(Ptr, PtrMode),
    Disp(Ptr, u8),
}

fn parse_mem(s: &str) -> Result<Mem, String> {
    let s = s.trim();
    let base = |c: char| match c.to_ascii_uppercase() {
        'X' => Ok(Ptr::X),
        'Y' => Ok(Ptr::Y),
        'Z' => Ok(Ptr::Z),
        other => Err(format!("unknown pointer register `{other}`")),
    };
    if let Some(rest) = s.strip_prefix('-') {
        let mut chars = rest.chars();
        let p = base(chars.next().ok_or("empty pointer operand")?)?;
        if chars.next().is_some() {
            return Err(format!("malformed pointer operand `{s}`"));
        }
        return Ok(Mem::Ptr(p, PtrMode::PreDec));
    }
    let mut chars = s.chars();
    let p = base(chars.next().ok_or("empty pointer operand")?)?;
    let rest: String = chars.collect();
    if rest.is_empty() {
        Ok(Mem::Ptr(p, PtrMode::Plain))
    } else if rest == "+" {
        Ok(Mem::Ptr(p, PtrMode::PostInc))
    } else if let Some(q) = rest.strip_prefix('+') {
        Ok(Mem::Disp(p, parse_num(q)? as u8))
    } else {
        Err(format!("malformed pointer operand `{s}`"))
    }
}

fn parse_reg(s: &str) -> Result<Reg, String> {
    let s = s.trim();
    let lower = s.to_ascii_lowercase();
    match lower.as_str() {
        "xl" => return Ok(Reg::XL),
        "xh" => return Ok(Reg::XH),
        "yl" => return Ok(Reg::YL),
        "yh" => return Ok(Reg::YH),
        "zl" => return Ok(Reg::ZL),
        "zh" => return Ok(Reg::ZH),
        _ => {}
    }
    let n: u8 = lower
        .strip_prefix('r')
        .ok_or_else(|| format!("expected register, got `{s}`"))?
        .parse()
        .map_err(|_| format!("expected register, got `{s}`"))?;
    Reg::new(n).ok_or_else(|| format!("register number out of range in `{s}`"))
}

fn parse_iw(s: &str) -> Result<IwPair, String> {
    match s.trim().to_ascii_uppercase().as_str() {
        "X" | "R27:R26" => Ok(IwPair::X),
        "Y" | "R29:R28" => Ok(IwPair::Y),
        "Z" | "R31:R30" => Ok(IwPair::Z),
        "W" | "R25:R24" | "R24" => Ok(IwPair::W),
        other => Err(format!("expected word pair (W/X/Y/Z), got `{other}`")),
    }
}

fn parse_num(s: &str) -> Result<u32, String> {
    let s = s.trim();
    let (neg, s) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16)
    } else if let Some(bin) = s.strip_prefix("0b").or_else(|| s.strip_prefix("0B")) {
        u32::from_str_radix(bin, 2)
    } else {
        s.parse()
    }
    .map_err(|_| format!("expected a number, got `{s}`"))?;
    Ok(if neg { v.wrapping_neg() } else { v })
}

fn split_operands(s: &str) -> Vec<String> {
    s.split(',').map(|o| o.trim().to_string()).collect()
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == '.')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

#[cfg(test)]
mod tests {
    use super::*;
    use avr_core::exec::Cpu;
    use avr_core::mem::PlainEnv;

    #[test]
    fn assemble_and_run_a_text_program() {
        let src = r"
            ; sum 1..5 into r16, store to VAR
            .equ VAR = 0x0100
            start:
                clr r16
                ldi r17, 5
            loop:
                add r16, r17
                dec r17
                brne loop
                sts VAR, r16
                break
        ";
        let obj = assemble_str(src, 0).unwrap();
        let mut env = PlainEnv::new();
        obj.load_into(&mut env.flash);
        let mut cpu = Cpu::new(env);
        cpu.run_to_break(1000).unwrap();
        assert_eq!(cpu.env.sram_byte(0x0100), 15);
    }

    #[test]
    fn pointer_operand_forms() {
        let src = "
            ld r0, X
            ld r1, X+
            ld r2, -Y
            ldd r3, Z+5
            st Y+, r4
            std Z+63, r5
        ";
        let obj = assemble_str(src, 0).unwrap();
        assert_eq!(obj.words().len(), 6);
    }

    #[test]
    fn lo8_hi8_and_symbolic_lds() {
        let src = "
            .equ BUF = 0x0234
            ldi r30, lo8(BUF)
            ldi r31, hi8(BUF)
            lds r16, BUF
            sts BUF, r16
        ";
        let obj = assemble_str(src, 0).unwrap();
        use avr_core::isa::{decode, Instr};
        assert_eq!(decode(obj.words()[0], None).unwrap(), Instr::Ldi { d: Reg::R30, k: 0x34 });
        assert_eq!(decode(obj.words()[1], None).unwrap(), Instr::Ldi { d: Reg::R31, k: 0x02 });
        assert_eq!(
            decode(obj.words()[2], Some(obj.words()[3])).unwrap(),
            Instr::Lds { d: Reg::R16, k: 0x0234 }
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble_str("nop\nbogus r1\n", 0).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn unknown_register_is_an_error() {
        assert!(assemble_str("mov r1, r40", 0).is_err());
        assert!(assemble_str("ldi r5, 1", 0).is_err(), "ldi needs r16..r31");
    }

    #[test]
    fn numeric_call_and_jmp_targets() {
        use avr_core::isa::{decode, Instr};
        let obj = assemble_str("call 0x800\njmp 64\n", 0).unwrap();
        assert_eq!(decode(obj.words()[0], Some(obj.words()[1])).unwrap(), Instr::Call { k: 0x800 });
        assert_eq!(decode(obj.words()[2], Some(obj.words()[3])).unwrap(), Instr::Jmp { k: 64 });
        assert!(assemble_str("rjmp 0x10\n", 0).is_err(), "relative forms need labels");
    }

    #[test]
    fn word_directive_and_labels_on_own_line() {
        let src = "
            table:
            .word 0x1234, 0xabcd
            rjmp table
        ";
        let obj = assemble_str(src, 0x10).unwrap();
        assert_eq!(obj.symbol("table"), Some(0x10));
        assert_eq!(&obj.words()[..2], &[0x1234, 0xabcd]);
    }
}
