//! The SFI kernel's memory layout: where the protection state variables and
//! tables live. Mirrors [`umpu::UmpuConfig`]'s reference layout so the same
//! workloads run under either implementation.

/// Addresses of the SFI run-time's state variables and tables.
///
/// All protection state lives in the kernel-globals region (below the
/// protected range), which rewritten modules can never write: the store
/// checks themselves forbid it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SfiLayout {
    /// Active-domain variable (1 byte) — the software analogue of the
    /// UMPU status register.
    pub cur_dom: u16,
    /// Stack-bound variable (2 bytes, little endian).
    pub stack_bound: u16,
    /// Safe-stack pointer variable (2 bytes, little endian).
    pub safe_stack_ptr: u16,
    /// Safe-stack base (underflow limit).
    pub safe_stack_base: u16,
    /// Safe-stack limit (exclusive; overflow faults here).
    pub safe_stack_limit: u16,
    /// Base address of the memory-map table in RAM.
    pub mem_map_base: u16,
    /// Inclusive lower bound of memory-map-protected space.
    pub prot_bottom: u16,
    /// Exclusive upper bound of memory-map-protected space.
    pub prot_top: u16,
    /// Jump-table base (word address).
    pub jt_base: u16,
    /// Number of domains with jump tables.
    pub jt_domains: u8,
    /// Per-domain code-bounds table: 8 entries × 4 bytes
    /// (start_lo, start_hi, end_lo, end_hi; word addresses, end exclusive).
    pub code_bounds: u16,
    /// log2 of the protection block size (3 = the paper's 8-byte blocks).
    pub block_log2: u8,
}

impl SfiLayout {
    /// The reference layout (matches `umpu::UmpuConfig::default_layout`):
    ///
    /// ```text
    /// 0x0062           cur_dom
    /// 0x0063..0x0064   stack_bound
    /// 0x0065..0x0066   safe_stack_ptr
    /// 0x0070..0x0170   memory-map table
    /// 0x0170..0x0190   per-domain code-bounds table
    /// 0x0200..0x0d00   heap        ┐ protected
    /// 0x0d00..0x0e00   safe stack  ┘
    /// 0x0e00..=0x0fff  run-time stack
    /// jump tables at word 0x0800, 8 domains
    /// ```
    pub const fn default_layout() -> SfiLayout {
        SfiLayout {
            cur_dom: 0x0062,
            stack_bound: 0x0063,
            safe_stack_ptr: 0x0065,
            safe_stack_base: 0x0d00,
            safe_stack_limit: 0x0e00,
            mem_map_base: 0x0070,
            prot_bottom: 0x0200,
            prot_top: 0x0e00,
            jt_base: 0x0800,
            jt_domains: 8,
            code_bounds: 0x0170,
            block_log2: 3,
        }
    }

    /// The reference layout with a different protection block size.
    pub const fn with_block_log2(block_log2: u8) -> SfiLayout {
        let mut l = SfiLayout::default_layout();
        l.block_log2 = block_log2;
        l
    }

    /// First word address past the last jump table.
    pub const fn jt_end(&self) -> u16 {
        self.jt_base + self.jt_domains as u16 * 128
    }
}

impl Default for SfiLayout {
    fn default() -> Self {
        SfiLayout::default_layout()
    }
}
