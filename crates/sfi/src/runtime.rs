//! The trusted run-time check routines, generated as real AVR machine code.
//!
//! Every routine lives in the kernel (trusted) domain; sandboxed modules
//! reach them only through the calls the rewriter plants. Violations write a
//! [`harbor::fault_code`] to the simulator panic port.
//!
//! Register discipline (this codebase's kernel ABI, a slight simplification
//! of avr-gcc's): `r0`, `r1`, `X` (r27:r26) and `Z` (r31:r30) are scratch at
//! call/return boundaries; `r1` reads as zero at module level and is
//! restored by any routine that dirties it. Store-check stubs additionally
//! preserve *everything* (including SREG) except the architectural effect of
//! the store they emulate, because the rewriter plants them at arbitrary
//! program points.

use crate::layout::SfiLayout;
use avr_asm::{Asm, Label, Object};
use avr_core::isa::{flags, IwPair, Ptr, PtrMode, Reg};
use avr_core::mem::{DataMem, Flash, PORT_PANIC, RAMEND};
use harbor::{fault_code, DomainId, MemMapConfig, MemoryMap, ProtectionFault};
use std::collections::BTreeMap;

const R0: Reg = Reg::R0;
const R1: Reg = Reg::R1;
const R24: Reg = Reg::R24;
const R25: Reg = Reg::R25;
const R26: Reg = Reg::R26;
const R27: Reg = Reg::R27;
const R30: Reg = Reg::R30;
const R31: Reg = Reg::R31;
const SREG_PORT: u8 = 0x3f;
const SPL_PORT: u8 = 0x3d;
const SPH_PORT: u8 = 0x3e;

/// The generated run-time: the assembled object plus the layout it was
/// built for.
#[derive(Debug, Clone)]
pub struct SfiRuntime {
    layout: SfiLayout,
    object: Object,
    stubs: BTreeMap<&'static str, u32>,
}

/// Names of the store-check stubs, indexed by pointer register and mode.
pub fn store_stub_name(ptr: Ptr, mode: PtrMode) -> &'static str {
    match (ptr, mode) {
        (Ptr::X, PtrMode::Plain) => "harbor_st_x",
        (Ptr::X, PtrMode::PostInc) => "harbor_st_x_inc",
        (Ptr::X, PtrMode::PreDec) => "harbor_st_x_dec",
        (Ptr::Y, PtrMode::Plain) => "harbor_st_y",
        (Ptr::Y, PtrMode::PostInc) => "harbor_st_y_inc",
        (Ptr::Y, PtrMode::PreDec) => "harbor_st_y_dec",
        (Ptr::Z, PtrMode::Plain) => "harbor_st_z",
        (Ptr::Z, PtrMode::PostInc) => "harbor_st_z_inc",
        (Ptr::Z, PtrMode::PreDec) => "harbor_st_z_dec",
    }
}

impl SfiRuntime {
    /// Generates and assembles the run-time at word address `origin`
    /// (conventionally below the jump tables, inside kernel flash).
    ///
    /// # Panics
    ///
    /// Panics if the generated assembly fails to encode — a bug in this
    /// generator, not in user input.
    pub fn build(layout: SfiLayout, origin: u32) -> SfiRuntime {
        let mut a = Asm::new();
        let mut b = Builder::new(&mut a, layout);
        b.emit_all();
        let object = a.assemble(origin).expect("runtime assembles");
        let stubs = STUB_TABLE.iter().map(|&(n, _)| (n, object.require(n))).collect();
        SfiRuntime { layout, object, stubs }
    }

    /// The layout the run-time was generated for.
    pub const fn layout(&self) -> &SfiLayout {
        &self.layout
    }

    /// The assembled object.
    pub const fn object(&self) -> &Object {
        &self.object
    }

    /// Word address of a stub by name.
    ///
    /// # Panics
    ///
    /// Panics on an unknown stub name.
    pub fn stub(&self, name: &str) -> u32 {
        *self.stubs.get(name).unwrap_or_else(|| panic!("unknown stub `{name}`"))
    }

    /// Word address of the store-check stub for an addressing mode.
    pub fn store_stub(&self, ptr: Ptr, mode: PtrMode) -> u32 {
        self.stub(store_stub_name(ptr, mode))
    }

    /// Word address of the displaced-store stub for Y or Z.
    ///
    /// # Panics
    ///
    /// Panics if `ptr` is X (no displacement mode exists).
    pub fn displaced_store_stub(&self, ptr: Ptr) -> u32 {
        match ptr {
            Ptr::Y => self.stub("harbor_std_y"),
            Ptr::Z => self.stub("harbor_std_z"),
            Ptr::X => panic!("X has no displacement addressing"),
        }
    }

    /// All stub entry addresses (for the verifier's allow-list).
    pub fn stub_addresses(&self) -> Vec<u32> {
        self.stubs.values().copied().collect()
    }

    /// Every stub's entry address with its module-visibility role — the
    /// single classification table both the linear and the CFG verifier
    /// derive their allow-lists from.
    pub fn stub_roles(&self) -> Vec<(u32, StubRole)> {
        STUB_TABLE.iter().map(|&(n, role)| (self.stub(n), role)).collect()
    }

    /// Role of the stub whose entry is at word address `addr`, if any.
    pub fn stub_role_at(&self, addr: u32) -> Option<StubRole> {
        STUB_TABLE.iter().find(|&&(n, _)| self.stub(n) == addr).map(|&(_, role)| role)
    }

    /// Profiler classification of the run-time's flash: non-overlapping
    /// `(start, end, mechanism)` word-address regions covering the whole
    /// assembled object. The cross-domain gates (`harbor_xdom_*`) classify
    /// as [`harbor_scope::Mechanism::Crossing`]; every other stub — store
    /// checks, safe-stack return redirection, icall/ijmp checks and the
    /// shared check core — as [`harbor_scope::Mechanism::Check`]. Under SFI
    /// the checks are real instructions executed from this region, so this
    /// is what lets one profiler produce the paper's Table-5 breakdown for
    /// both builds.
    pub fn scope_regions(&self) -> Vec<(u32, u32, harbor_scope::Mechanism)> {
        use harbor_scope::Mechanism;
        let mut entries = self.stub_roles();
        entries.sort_unstable_by_key(|&(addr, _)| addr);
        let end = self.object.end();
        let mut out = Vec::with_capacity(entries.len() + 1);
        // Internal code ahead of the first named stub (the shared check
        // core) is check machinery too.
        let first = entries.first().map_or(end, |&(addr, _)| addr);
        if self.object.origin() < first {
            out.push((self.object.origin(), first, Mechanism::Check));
        }
        for (i, &(addr, role)) in entries.iter().enumerate() {
            let stop = entries.get(i + 1).map_or(end, |&(next, _)| next);
            let mech = match role {
                StubRole::XdomCall | StubRole::XdomCallZ | StubRole::XdomRet => Mechanism::Crossing,
                _ => Mechanism::Check,
            };
            if addr < stop {
                out.push((addr, stop, mech));
            }
        }
        out
    }

    /// Loads the run-time into flash and initialises the protection state
    /// in RAM: trusted domain active, stack bound at `RAMEND`, safe stack
    /// empty, memory map all-free, code-bounds table cleared.
    pub fn install(&self, flash: &mut Flash, data: &mut DataMem) {
        self.object.load_into(flash);
        let l = &self.layout;
        data.write(l.cur_dom, DomainId::TRUSTED.index()).unwrap();
        data.write(l.stack_bound, (RAMEND & 0xff) as u8).unwrap();
        data.write(l.stack_bound + 1, (RAMEND >> 8) as u8).unwrap();
        data.write(l.safe_stack_ptr, (l.safe_stack_base & 0xff) as u8).unwrap();
        data.write(l.safe_stack_ptr + 1, (l.safe_stack_base >> 8) as u8).unwrap();
        let map = MemoryMap::new(self.memmap_config());
        for (i, &byte) in map.as_bytes().iter().enumerate() {
            data.write(l.mem_map_base + i as u16, byte).unwrap();
        }
        for i in 0..32 {
            data.write(l.code_bounds + i, 0).unwrap();
        }
    }

    /// The memory-map geometry of this layout (multi-domain, block size
    /// from the layout).
    pub fn memmap_config(&self) -> MemMapConfig {
        MemMapConfig::new(
            harbor::DomainMode::Multi,
            harbor::BlockSize::new(1 << self.layout.block_log2).expect("valid block size"),
            self.layout.prot_bottom,
            self.layout.prot_top,
        )
        .expect("layout bounds are block aligned")
    }

    /// Host-side: registers `dom`'s code region in the kernel's bounds
    /// table (what the module loader does).
    pub fn set_code_bounds(&self, data: &mut DataMem, dom: DomainId, start: u16, end: u16) {
        let at = self.layout.code_bounds + dom.index() as u16 * 4;
        data.write(at, (start & 0xff) as u8).unwrap();
        data.write(at + 1, (start >> 8) as u8).unwrap();
        data.write(at + 2, (end & 0xff) as u8).unwrap();
        data.write(at + 3, (end >> 8) as u8).unwrap();
    }

    /// Host-side: golden-model view of the RAM-resident memory map.
    pub fn memory_map_view(&self, data: &DataMem) -> MemoryMap {
        let cfg = self.memmap_config();
        let bytes = (0..cfg.map_size_bytes())
            .map(|i| data.read(self.layout.mem_map_base + i).unwrap())
            .collect();
        MemoryMap::from_raw(cfg, bytes)
    }

    /// Host-side: allocates a segment in the RAM-resident memory map (what
    /// the kernel's `malloc` does in software).
    ///
    /// # Errors
    ///
    /// See [`MemoryMap::set_segment`].
    pub fn host_set_segment(
        &self,
        data: &mut DataMem,
        owner: DomainId,
        addr: u16,
        len: u16,
    ) -> Result<(), ProtectionFault> {
        let mut map = self.memory_map_view(data);
        map.set_segment(owner, addr, len)?;
        for (i, &b) in map.as_bytes().iter().enumerate() {
            data.write(self.layout.mem_map_base + i as u16, b).unwrap();
        }
        Ok(())
    }

    /// Host-side: sets the active domain variable.
    pub fn set_current_domain(&self, data: &mut DataMem, dom: DomainId) {
        data.write(self.layout.cur_dom, dom.index()).unwrap();
    }

    /// Host-side: reads the active domain variable.
    pub fn current_domain(&self, data: &DataMem) -> DomainId {
        DomainId::new(data.read(self.layout.cur_dom).unwrap() & 7).unwrap()
    }
}

/// How sandboxed module code may reference a run-time stub. This is the
/// single source of truth for the verifiers' allow-lists: a stub is a legal
/// `call` target iff [`StubRole::module_may_call`], a legal `jmp` target iff
/// [`StubRole::module_may_jump`], and never module-visible otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StubRole {
    /// A plain store-check stub (`harbor_st_*`): called with the value
    /// staged in `r0`.
    StoreCheck,
    /// A displaced store-check stub (`harbor_std_y`/`_z`): called with the
    /// value in `r0` and the displacement in `r24`.
    DisplacedStoreCheck,
    /// `harbor_save_ret`: called as the first instruction of every
    /// rewritten function.
    SaveRet,
    /// `harbor_restore_ret`: jumped to in place of `ret`.
    RestoreRet,
    /// `harbor_xdom_call`: called with an inline jump-table operand word.
    XdomCall,
    /// `harbor_xdom_call_z`: trusted kernel dispatch — never reachable
    /// from module code.
    XdomCallZ,
    /// `harbor_xdom_ret`: the return gate — never reachable from module
    /// code.
    XdomRet,
    /// `harbor_icall_check`: called in place of `icall`.
    IcallCheck,
    /// `harbor_ijmp_check`: jumped to in place of `ijmp`.
    IjmpCheck,
}

impl StubRole {
    /// May module code `call`/`rcall` a stub of this role?
    pub const fn module_may_call(self) -> bool {
        matches!(
            self,
            StubRole::StoreCheck
                | StubRole::DisplacedStoreCheck
                | StubRole::SaveRet
                | StubRole::XdomCall
                | StubRole::IcallCheck
        )
    }

    /// May module code `jmp` to a stub of this role?
    pub const fn module_may_jump(self) -> bool {
        matches!(self, StubRole::RestoreRet | StubRole::IjmpCheck)
    }

    /// Is this a store-check stub of either flavour?
    pub const fn is_store_check(self) -> bool {
        matches!(self, StubRole::StoreCheck | StubRole::DisplacedStoreCheck)
    }
}

/// Every run-time stub, with its module-visibility classification.
pub const STUB_TABLE: &[(&str, StubRole)] = &[
    ("harbor_st_x", StubRole::StoreCheck),
    ("harbor_st_x_inc", StubRole::StoreCheck),
    ("harbor_st_x_dec", StubRole::StoreCheck),
    ("harbor_st_y", StubRole::StoreCheck),
    ("harbor_st_y_inc", StubRole::StoreCheck),
    ("harbor_st_y_dec", StubRole::StoreCheck),
    ("harbor_st_z", StubRole::StoreCheck),
    ("harbor_st_z_inc", StubRole::StoreCheck),
    ("harbor_st_z_dec", StubRole::StoreCheck),
    ("harbor_std_y", StubRole::DisplacedStoreCheck),
    ("harbor_std_z", StubRole::DisplacedStoreCheck),
    ("harbor_save_ret", StubRole::SaveRet),
    ("harbor_restore_ret", StubRole::RestoreRet),
    ("harbor_xdom_call", StubRole::XdomCall),
    ("harbor_xdom_call_z", StubRole::XdomCallZ),
    ("harbor_xdom_ret", StubRole::XdomRet),
    ("harbor_icall_check", StubRole::IcallCheck),
    ("harbor_ijmp_check", StubRole::IjmpCheck),
];

/// Stateful emitter for the runtime stubs.
struct Builder<'a> {
    a: &'a mut Asm,
    l: SfiLayout,
    check_core: Label,
    xdom_call_z: Option<Label>,
}

impl<'a> Builder<'a> {
    fn new(a: &'a mut Asm, l: SfiLayout) -> Builder<'a> {
        let check_core = a.label("harbor_check_core");
        Builder { a, l, check_core, xdom_call_z: None }
    }

    /// `brlo if_lt` when `r27:r26 < k`, falls through when `>= k`.
    /// Clobbers no registers (uses two `cpi`s).
    fn branch_if_x_below(&mut self, k: u16, if_lt: Label) {
        let ge = self.a.label("x_ge");
        self.a.cpi(R27, (k >> 8) as u8);
        self.a.brlo(if_lt);
        self.a.brne(ge);
        self.a.cpi(R26, (k & 0xff) as u8);
        self.a.brlo(if_lt);
        self.a.bind(ge);
    }

    fn panic(&mut self, code: u16, reg: Reg) {
        self.a.ldi(reg, code as u8);
        self.a.out(PORT_PANIC, reg);
    }

    fn emit_all(&mut self) {
        self.emit_check_core();
        self.emit_store_stubs();
        self.emit_save_restore();
        self.emit_xdom();
        self.emit_computed_check();
    }

    /// The software memory-map checker core. Input: effective address in X.
    /// Preserves `r24` (and everything but X and r25); assumes the caller
    /// already saved SREG. Panics (never returns) on violation.
    fn emit_check_core(&mut self) {
        let l = self.l;
        let ok = self.a.label("cc_ok");
        let mapped = self.a.label("cc_mapped");
        let stack_chk = self.a.label("cc_stack");
        let kernel_viol = self.a.label("cc_kernel_viol");
        let mmap_viol = self.a.label("cc_mmap_viol");
        let bound_viol = self.a.label("cc_bound_viol");
        let no_swap = self.a.label("cc_no_swap");
        let cc_cur_dom = self.a.constant("cc_cur_dom", l.cur_dom as u32);

        let cc = self.check_core;
        self.a.bind(cc);
        self.a.push(R24);
        self.a.lds_sym(R24, cc_cur_dom);
        self.a.cpi(R24, DomainId::TRUSTED.index());
        self.a.breq(ok);
        // addr < prot_bottom → kernel-space violation.
        self.branch_if_x_below(l.prot_bottom, kernel_viol);
        // addr < prot_top → mapped region, else run-time stack.
        self.branch_if_x_below(l.prot_top, mapped);
        self.a.rjmp(stack_chk);

        // ── mapped: translate and compare owner ─────────────────────────
        self.a.bind(mapped);
        self.a.subi(R26, (l.prot_bottom & 0xff) as u8);
        self.a.sbci(R27, (l.prot_bottom >> 8) as u8);
        for _ in 0..l.block_log2 {
            // offset >> log2(block size) = block number
            self.a.lsr(R27);
            self.a.ror(R26);
        }
        self.a.bst(R26, 0); // record-select bit → T
        self.a.lsr(R27); // block >> 1 = table byte index
        self.a.ror(R26);
        let neg_base = 0u16.wrapping_sub(l.mem_map_base);
        self.a.subi(R26, (neg_base & 0xff) as u8); // X += mem_map_base
        self.a.sbci(R27, (neg_base >> 8) as u8);
        self.a.ld(R25, Ptr::X, PtrMode::Plain); // table byte
        self.a.brbc(flags::T, no_swap);
        self.a.swap(R25);
        self.a.bind(no_swap);
        self.a.andi(R25, 0x0f);
        self.a.lsr(R25); // owner = record >> 1
        self.a.cp(R25, R24); // owner == cur_dom ?
        self.a.breq(ok);
        self.a.rjmp(mmap_viol);

        // ── run-time stack: addr <= stack_bound ─────────────────────────
        self.a.bind(stack_chk);
        let sb_lo = self.a.constant("cc_bound_lo", self.l.stack_bound as u32);
        let sb_hi = self.a.constant("cc_bound_hi", self.l.stack_bound as u32 + 1);
        self.a.lds_sym(R25, sb_lo);
        self.a.cp(R26, R25);
        self.a.lds_sym(R25, sb_hi);
        self.a.cpc(R27, R25);
        self.a.brlo(ok);
        self.a.breq(ok);
        self.a.rjmp(bound_viol);

        self.a.bind(ok);
        self.a.pop(R24);
        self.a.ret();

        self.a.bind(kernel_viol);
        self.panic(fault_code::KERNEL_SPACE, R25);
        self.a.bind(mmap_viol);
        self.panic(fault_code::MEM_MAP, R25);
        self.a.bind(bound_viol);
        self.panic(fault_code::STACK_BOUND, R25);
    }

    /// Emits one store-check stub for `(ptr, mode)`. Value in `r0`.
    fn emit_store_stub(&mut self, ptr: Ptr, mode: PtrMode) {
        let name = store_stub_name(ptr, mode);
        let entry = self.a.label(name);
        self.a.bind(entry);
        // Prologue: save SREG (flags are live at arbitrary store sites).
        self.a.push(R25);
        self.a.in_(R25, SREG_PORT);
        self.a.push(R25);
        // Pre-decrement happens before the check (the store address is the
        // decremented pointer).
        if mode == PtrMode::PreDec {
            match ptr {
                Ptr::X => self.a.sbiw(IwPair::X, 1),
                Ptr::Y => self.a.sbiw(IwPair::Y, 1),
                Ptr::Z => self.a.sbiw(IwPair::Z, 1),
            }
        }
        // Effective address into X (saving the module's X).
        self.a.push(R26);
        self.a.push(R27);
        match ptr {
            Ptr::X => {}
            Ptr::Y => self.a.movw(R26, Reg::R28),
            Ptr::Z => self.a.movw(R26, R30),
        }
        self.a.rcall(self.check_core);
        self.a.pop(R27);
        self.a.pop(R26);
        // The architectural store (post-increment via the real pointer).
        match (ptr, mode) {
            (Ptr::X, PtrMode::PostInc) => self.a.st(Ptr::X, PtrMode::PostInc, R0),
            (Ptr::X, _) => self.a.st(Ptr::X, PtrMode::Plain, R0),
            (p, PtrMode::PostInc) => self.a.st(p, PtrMode::PostInc, R0),
            (p, _) => self.a.st(p, PtrMode::Plain, R0),
        }
        self.a.pop(R25);
        self.a.out(SREG_PORT, R25);
        self.a.pop(R25);
        self.a.ret();
    }

    /// Displaced-store stub (`STD Y/Z+q`): displacement in `r24`, value in
    /// `r0`. Preserves everything.
    fn emit_displaced_stub(&mut self, ptr: Ptr) {
        let name = match ptr {
            Ptr::Y => "harbor_std_y",
            Ptr::Z => "harbor_std_z",
            Ptr::X => unreachable!(),
        };
        let entry = self.a.label(name);
        self.a.bind(entry);
        self.a.push(R25);
        self.a.in_(R25, SREG_PORT);
        self.a.push(R25);
        self.a.push(R26);
        self.a.push(R27);
        let base = if ptr == Ptr::Y { Reg::R28 } else { R30 };
        // X = base + q (q in r24; check_core preserves r24).
        self.a.movw(R26, base);
        self.a.clr(R25);
        self.a.add(R26, R24);
        self.a.adc(R27, R25);
        self.a.rcall(self.check_core);
        // Recompute the effective address (check_core clobbered X) and
        // store through it; the module's pointer register is untouched.
        self.a.movw(R26, base);
        self.a.clr(R25);
        self.a.add(R26, R24);
        self.a.adc(R27, R25);
        self.a.st(Ptr::X, PtrMode::Plain, R0);
        self.a.pop(R27);
        self.a.pop(R26);
        self.a.pop(R25);
        self.a.out(SREG_PORT, R25);
        self.a.pop(R25);
        self.a.ret();
    }

    fn emit_store_stubs(&mut self) {
        for ptr in [Ptr::X, Ptr::Y, Ptr::Z] {
            for mode in [PtrMode::Plain, PtrMode::PostInc, PtrMode::PreDec] {
                self.emit_store_stub(ptr, mode);
            }
        }
        self.emit_displaced_stub(Ptr::Y);
        self.emit_displaced_stub(Ptr::Z);
    }

    /// `harbor_save_ret` / `harbor_restore_ret`: the software safe stack
    /// for function return addresses (Table 3: 38 cycles each).
    fn emit_save_restore(&mut self) {
        let l = self.l;
        // save_ret: called as the first instruction of every rewritten
        // function. Moves the caller's return address from the run-time
        // stack to the safe stack, then continues into the function.
        let save = self.a.label("harbor_save_ret");
        let sr_ok = self.a.label("sr_ok");
        let sr_ovf = self.a.label("sr_ovf");
        self.a.bind(save);
        self.a.pop(R31); // own return (continue point) hi
        self.a.pop(R30); // lo
        let ssp_lo = self.a.constant("ssp_lo", l.safe_stack_ptr as u32);
        let ssp_hi = self.a.constant("ssp_hi", l.safe_stack_ptr as u32 + 1);
        self.a.lds_sym(R26, ssp_lo);
        self.a.lds_sym(R27, ssp_hi);
        // Overflow if ssp >= limit - 1 (room for 2 bytes).
        self.branch_if_x_below(l.safe_stack_limit - 1, sr_ok);
        self.a.bind(sr_ovf);
        self.panic(fault_code::SAFE_STACK_OVERFLOW, R26);
        self.a.bind(sr_ok);
        self.a.pop(R0); // caller ret hi
        self.a.pop(R1); // caller ret lo
        self.a.st(Ptr::X, PtrMode::PostInc, R1);
        self.a.st(Ptr::X, PtrMode::PostInc, R0);
        self.a.sts_sym(ssp_lo, R26);
        self.a.sts_sym(ssp_hi, R27);
        self.a.clr(R1);
        self.a.ijmp();

        // restore_ret: jumped to in place of `ret`. Pops the return address
        // from the safe stack and continues there.
        let restore = self.a.label("harbor_restore_ret");
        let rr_ok = self.a.label("rr_ok");
        let rr_under = self.a.label("rr_under");
        self.a.bind(restore);
        self.a.lds_sym(R26, ssp_lo);
        self.a.lds_sym(R27, ssp_hi);
        // Underflow if ssp < base + 2.
        self.branch_if_x_below(l.safe_stack_base + 2, rr_under);
        self.a.rjmp(rr_ok);
        self.a.bind(rr_under);
        self.panic(fault_code::SAFE_STACK_UNDERFLOW, R26);
        self.a.bind(rr_ok);
        self.a.ld(R31, Ptr::X, PtrMode::PreDec); // hi
        self.a.ld(R30, Ptr::X, PtrMode::PreDec); // lo
        self.a.sts_sym(ssp_lo, R26);
        self.a.sts_sym(ssp_hi, R27);
        self.a.ijmp();
    }

    /// `harbor_xdom_call` (rewritten `call <jump-table entry>`; the target
    /// word follows the call in flash), `harbor_xdom_call_z` (trusted
    /// kernel dispatch: target already in Z) and `harbor_xdom_ret` (the
    /// return gate).
    fn emit_xdom(&mut self) {
        let l = self.l;
        let xc = self.a.label("harbor_xdom_call");
        let xc_z = self.a.label("harbor_xdom_call_z");
        self.xdom_call_z = Some(xc_z);
        let xc_common = self.a.label("xc_common");
        let xc_sub = self.a.label("xc_sub");
        let xc_bad = self.a.label("xc_bad");
        let xc_room = self.a.label("xc_room");
        let xc_ovf = self.a.label("xc_ovf");
        let gate = self.a.label("harbor_xdom_ret");

        self.a.bind(xc);
        // Fetch the inline target word; compute the real return address.
        self.a.pop(R31);
        self.a.pop(R30); // Z = word address of the inline operand
        self.a.lsl(R30);
        self.a.rol(R31); // byte address (modules live in the low 32 K words)
        self.a.lpm(R0, true); // target lo
        self.a.lpm(R1, false); // target hi
        self.a.adiw(IwPair::Z, 1);
        self.a.lsr(R31);
        self.a.ror(R30); // Z = word address after the operand = real return
        self.a.rjmp(xc_common);

        // Kernel entry: the (trusted) caller passes the jump-table target
        // in Z; the return address is the ordinary call return.
        self.a.bind(xc_z);
        self.a.mov(R0, R30);
        self.a.mov(R1, R31); // target → r1:r0
        self.a.pop(R31);
        self.a.pop(R30); // Z = real return address

        self.a.bind(xc_common);
        // Verify the target and derive the callee domain.
        self.a.mov(R26, R0);
        self.a.mov(R27, R1);
        self.branch_if_x_below(l.jt_base, xc_bad);
        self.a.bind(xc_sub);
        self.a.subi(R26, (l.jt_base & 0xff) as u8);
        self.a.sbci(R27, (l.jt_base >> 8) as u8);
        self.a.lsl(R26);
        self.a.rol(R27); // r27 = offset >> 7 = callee domain id
        self.a.cpi(R27, l.jt_domains);
        self.a.brsh(xc_bad);
        self.a.push(R27); // park the callee id on the run-time stack
                          // Push the 5-byte frame [ret, old bound, old dom] to the safe stack.
        let ssp_lo = self.a.constant("xc_ssp_lo", l.safe_stack_ptr as u32);
        let ssp_hi = self.a.constant("xc_ssp_hi", l.safe_stack_ptr as u32 + 1);
        let bound_lo = self.a.constant("xc_bound_lo", l.stack_bound as u32);
        let bound_hi = self.a.constant("xc_bound_hi", l.stack_bound as u32 + 1);
        let cur_dom = self.a.constant("xc_cur_dom", l.cur_dom as u32);
        self.a.lds_sym(R26, ssp_lo);
        self.a.lds_sym(R27, ssp_hi);
        self.branch_if_x_below(l.safe_stack_limit - 4, xc_room);
        self.a.bind(xc_ovf);
        self.panic(fault_code::SAFE_STACK_OVERFLOW, R26);
        self.a.bind(xc_room);
        self.a.st(Ptr::X, PtrMode::PostInc, R30); // ret lo
        self.a.st(Ptr::X, PtrMode::PostInc, R31); // ret hi
        self.a.lds_sym(R30, bound_lo);
        self.a.st(Ptr::X, PtrMode::PostInc, R30);
        self.a.lds_sym(R30, bound_hi);
        self.a.st(Ptr::X, PtrMode::PostInc, R30);
        self.a.lds_sym(R30, cur_dom);
        self.a.st(Ptr::X, PtrMode::PostInc, R30);
        self.a.sts_sym(ssp_lo, R26);
        self.a.sts_sym(ssp_hi, R27);
        // Switch domains and plant the return gate on the run-time stack.
        self.a.pop(R30); // callee id
        self.a.sts_sym(cur_dom, R30);
        self.a.ldi_lo8(R30, gate);
        self.a.push(R30);
        self.a.ldi_hi8(R30, gate);
        self.a.push(R30);
        // New stack bound = current SP.
        self.a.in_(R30, SPL_PORT);
        self.a.sts_sym(bound_lo, R30);
        self.a.in_(R30, SPH_PORT);
        self.a.sts_sym(bound_hi, R30);
        // Into the jump table.
        self.a.mov(R30, R0);
        self.a.mov(R31, R1);
        self.a.clr(R1);
        self.a.ijmp();
        self.a.bind(xc_bad);
        self.panic(fault_code::JUMP_TABLE, R26);

        // ── the return gate ─────────────────────────────────────────────
        let xr_ok = self.a.label("xr_ok");
        let xr_under = self.a.label("xr_under");
        self.a.bind(gate);
        self.a.lds_sym(R26, ssp_lo);
        self.a.lds_sym(R27, ssp_hi);
        self.branch_if_x_below(l.safe_stack_base + 5, xr_under);
        self.a.rjmp(xr_ok);
        self.a.bind(xr_under);
        self.panic(fault_code::SAFE_STACK_UNDERFLOW, R26);
        self.a.bind(xr_ok);
        self.a.ld(R0, Ptr::X, PtrMode::PreDec); // caller dom
        self.a.sts_sym(cur_dom, R0);
        self.a.ld(R0, Ptr::X, PtrMode::PreDec); // bound hi
        self.a.sts_sym(bound_hi, R0);
        self.a.ld(R0, Ptr::X, PtrMode::PreDec); // bound lo
        self.a.sts_sym(bound_lo, R0);
        self.a.ld(R31, Ptr::X, PtrMode::PreDec); // ret hi
        self.a.ld(R30, Ptr::X, PtrMode::PreDec); // ret lo
        self.a.sts_sym(ssp_lo, R26);
        self.a.sts_sym(ssp_hi, R27);
        self.a.ijmp();
    }

    /// The computed-transfer checks (target in Z):
    ///
    /// * `harbor_icall_check` — for rewritten `icall`. A target at or past
    ///   the jump-table base is a *dynamic cross-domain call* and forwards
    ///   to `harbor_xdom_call_z` (the return address the rewritten `call`
    ///   pushed is exactly what that stub expects); otherwise the target
    ///   must lie in the active domain's code region.
    /// * `harbor_ijmp_check` — for rewritten `ijmp`. Computed *jumps* may
    ///   never change domains (there is no return path to restore the
    ///   caller's context), so jump-table targets are CFI violations.
    fn emit_computed_check(&mut self) {
        let l = self.l;
        let icall_entry = self.a.label("harbor_icall_check");
        let ijmp_entry = self.a.label("harbor_ijmp_check");
        let local = self.a.label("ic_local");
        let bad = self.a.label("ic_bad");
        let xdom_z = self.xdom_call_z.expect("xdom stubs emitted first");

        // icall: a target inside the jump-table range is a dynamic
        // cross-domain call; anything else takes the local code-region
        // check (module slots sit *above* the tables, so both bounds
        // matter here, unlike the direct-call fast path).
        let go_xdom = self.a.label("ic_go_xdom");
        let ic_above_base = self.a.label("ic_above_base");
        self.a.bind(icall_entry);
        self.a.cpi(R31, (l.jt_base >> 8) as u8);
        self.a.brlo(local);
        self.a.brne(ic_above_base);
        self.a.cpi(R30, (l.jt_base & 0xff) as u8);
        self.a.brlo(local);
        self.a.bind(ic_above_base);
        let jt_end = l.jt_end();
        self.a.cpi(R31, (jt_end >> 8) as u8);
        self.a.brlo(go_xdom);
        self.a.brne(local);
        self.a.cpi(R30, (jt_end & 0xff) as u8);
        self.a.brsh(local);
        self.a.bind(go_xdom);
        self.a.jmp(xdom_z);

        // ijmp: jump-table targets are not allowed (a computed *jump* has
        // no return path to restore the caller); everything else takes the
        // local check.
        let ij_above_base = self.a.label("ij_above_base");
        self.a.bind(ijmp_entry);
        self.a.cpi(R31, (l.jt_base >> 8) as u8);
        self.a.brlo(local);
        self.a.brne(ij_above_base);
        self.a.cpi(R30, (l.jt_base & 0xff) as u8);
        self.a.brlo(local);
        self.a.bind(ij_above_base);
        self.a.cpi(R31, (jt_end >> 8) as u8);
        self.a.brlo(bad);
        self.a.brne(local);
        self.a.cpi(R30, (jt_end & 0xff) as u8);
        self.a.brsh(local);
        self.a.rjmp(bad);

        // Local: the target must be inside the active domain's code region.
        self.a.bind(local);
        let cur_dom = self.a.constant("ic_cur_dom", l.cur_dom as u32);
        self.a.lds_sym(R26, cur_dom);
        self.a.lsl(R26);
        self.a.lsl(R26); // dom * 4
        self.a.clr(R27);
        let neg = 0u16.wrapping_sub(l.code_bounds);
        self.a.subi(R26, (neg & 0xff) as u8);
        self.a.sbci(R27, (neg >> 8) as u8); // X = &code_bounds[dom]
        self.a.ld(R0, Ptr::X, PtrMode::PostInc); // start lo
        self.a.ld(R1, Ptr::X, PtrMode::PostInc); // start hi
        self.a.cp(R30, R0);
        self.a.cpc(R31, R1);
        self.a.brlo(bad); // target < start
        self.a.ld(R0, Ptr::X, PtrMode::PostInc); // end lo
        self.a.ld(R1, Ptr::X, PtrMode::PostInc); // end hi
        self.a.cp(R30, R0);
        self.a.cpc(R31, R1);
        self.a.brsh(bad); // target >= end
        self.a.clr(R1);
        self.a.ijmp();
        self.a.bind(bad);
        self.panic(fault_code::CFI, R26);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_assembles_with_all_stubs() {
        let rt = SfiRuntime::build(SfiLayout::default_layout(), 0x0040);
        for (name, _) in STUB_TABLE {
            assert!(rt.stub(name) >= 0x0040, "stub {name}");
        }
        assert!(
            rt.object().end() < SfiLayout::default_layout().jt_base as u32,
            "runtime must fit below the jump tables"
        );
    }

    #[test]
    fn install_initialises_state() {
        let rt = SfiRuntime::build(SfiLayout::default_layout(), 0x0040);
        let mut flash = Flash::new();
        let mut data = DataMem::new();
        rt.install(&mut flash, &mut data);
        let l = rt.layout();
        assert_eq!(data.read(l.cur_dom), Ok(7));
        assert_eq!(data.read(l.safe_stack_ptr), Ok(0x00));
        assert_eq!(data.read(l.safe_stack_ptr + 1), Ok(0x0d));
        assert_eq!(data.read(l.stack_bound), Ok(0xff));
        assert_eq!(data.read(l.stack_bound + 1), Ok(0x0f));
        assert_eq!(data.read(l.mem_map_base), Ok(0xff), "map starts all-free");
        // Flash contains the runtime.
        assert_ne!(flash.word(rt.stub("harbor_st_x")), 0xffff);
    }

    #[test]
    fn stub_roles_partition_the_stub_set() {
        let rt = SfiRuntime::build(SfiLayout::default_layout(), 0x0040);
        let roles = rt.stub_roles();
        assert_eq!(roles.len(), STUB_TABLE.len());
        for (addr, role) in roles {
            // No stub is both a call target and a jump target, and the
            // role is recoverable from the address alone.
            assert!(!(role.module_may_call() && role.module_may_jump()), "{role:?}");
            assert_eq!(rt.stub_role_at(addr), Some(role));
        }
        assert_eq!(rt.stub_role_at(0), None);
    }

    #[test]
    fn scope_regions_cover_the_object_without_gaps() {
        let rt = SfiRuntime::build(SfiLayout::default_layout(), 0x0040);
        let regions = rt.scope_regions();
        // Contiguous cover from origin to end, in order, no overlaps.
        let mut cursor = rt.object().origin();
        for &(start, end, _) in &regions {
            assert_eq!(start, cursor, "gap before {start:#x}");
            assert!(start < end);
            cursor = end;
        }
        assert_eq!(cursor, rt.object().end());
        // The cross-domain gates classify as Crossing, store checks as Check.
        let mech_at = |addr: u32| {
            regions.iter().find(|&&(s, e, _)| addr >= s && addr < e).map(|&(_, _, m)| m).unwrap()
        };
        assert_eq!(mech_at(rt.stub("harbor_xdom_call")), harbor_scope::Mechanism::Crossing);
        assert_eq!(mech_at(rt.stub("harbor_xdom_ret")), harbor_scope::Mechanism::Crossing);
        assert_eq!(mech_at(rt.stub("harbor_st_x")), harbor_scope::Mechanism::Check);
        assert_eq!(mech_at(rt.stub("harbor_save_ret")), harbor_scope::Mechanism::Check);
    }

    #[test]
    fn host_segment_helpers_round_trip() {
        let rt = SfiRuntime::build(SfiLayout::default_layout(), 0x0040);
        let mut flash = Flash::new();
        let mut data = DataMem::new();
        rt.install(&mut flash, &mut data);
        let d2 = DomainId::num(2);
        rt.host_set_segment(&mut data, d2, 0x0200, 16).unwrap();
        let view = rt.memory_map_view(&data);
        assert_eq!(view.owner_of(0x0200).unwrap(), d2);
        assert_eq!(view.owner_of(0x0210).unwrap(), DomainId::TRUSTED);
    }
}
