//! The binary rewriter: sandboxes a compiled AVR module by replacing every
//! potentially unsafe operation with a call into the trusted run-time
//! (Section 4 of the paper).
//!
//! Transformations applied:
//!
//! * `ST`/`STD`/`STS` → glue + call to the per-addressing-mode store check
//!   (value in `r0`, displacement in `r24`, direct address materialised in
//!   `X`);
//! * `CALL`/`RCALL` into a jump table → `call harbor_xdom_call` followed by
//!   the target as an inline flash word;
//! * `RET`/`RETI` → `jmp harbor_restore_ret`;
//! * `ICALL`/`IJMP` → the computed-target check;
//! * every function entry (declared entry points plus all local call
//!   targets) gains a `call harbor_save_ret` prologue;
//! * conditional branches are rebuilt as an inverted branch over a `jmp`
//!   (the rewritten code is longer, so ±64-word offsets cannot be assumed
//!   to survive);
//! * skip instructions (`CPSE`/`SBRC`/`SBRS`/`SBIC`/`SBIS`) are rebuilt so
//!   they skip the *rewritten* next instruction, whatever its length.
//!
//! Correctness of the system never depends on this rewriter: the
//! [verifier](crate::verifier) independently checks its output.

use crate::runtime::SfiRuntime;
use avr_asm::{disasm, Asm, AsmError, DisasmItem, Label, Object};
use avr_core::isa::{Instr, Ptr, Reg};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Rewriting failed; the module cannot be sandboxed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// A word in the module is not a decodable instruction (modules must be
    /// pure code).
    Undecodable {
        /// Word address of the offending word.
        addr: u32,
        /// The raw word.
        word: u16,
    },
    /// A direct call targets neither the module itself nor a jump table.
    CallOutsideModule {
        /// Word address of the call.
        addr: u32,
        /// The target.
        target: u32,
    },
    /// A direct jump or branch leaves the module.
    JumpOutsideModule {
        /// Word address of the jump.
        addr: u32,
        /// The target.
        target: u32,
    },
    /// A control-flow target lands inside another instruction.
    MisalignedTarget {
        /// Word address of the transfer.
        addr: u32,
        /// The target.
        target: u32,
    },
    /// The module manipulates the stack pointer directly (`out SPL/SPH`),
    /// which the run-time cannot police.
    StackPointerWrite {
        /// Word address of the `out`.
        addr: u32,
    },
    /// A skip instruction is the last instruction (nothing to skip).
    DanglingSkip {
        /// Word address of the skip.
        addr: u32,
    },
    /// Relayout failed (e.g. the rewritten module grew past a relative
    /// reach) — wraps the assembler error.
    Asm(String),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use RewriteError::*;
        match self {
            Undecodable { addr, word } => {
                write!(f, "word {word:#06x} at {addr:#06x} is not an instruction")
            }
            CallOutsideModule { addr, target } => write!(
                f,
                "call at {addr:#06x} targets {target:#06x}, outside the module and jump tables"
            ),
            JumpOutsideModule { addr, target } => {
                write!(f, "jump at {addr:#06x} leaves the module (target {target:#06x})")
            }
            MisalignedTarget { addr, target } => write!(
                f,
                "transfer at {addr:#06x} targets {target:#06x}, inside another instruction"
            ),
            StackPointerWrite { addr } => {
                write!(f, "direct stack-pointer write at {addr:#06x}")
            }
            DanglingSkip { addr } => write!(f, "skip at {addr:#06x} has nothing to skip"),
            Asm(e) => write!(f, "relayout failed: {e}"),
        }
    }
}

impl std::error::Error for RewriteError {}

impl From<AsmError> for RewriteError {
    fn from(e: AsmError) -> Self {
        RewriteError::Asm(e.to_string())
    }
}

/// A sandboxed module ready to load.
#[derive(Debug, Clone)]
pub struct RewrittenModule {
    /// The rewritten machine code.
    pub object: Object,
    /// Maps original instruction addresses to their rewritten addresses
    /// (in particular for the declared entry points).
    pub entry_map: BTreeMap<u32, u32>,
}

impl RewrittenModule {
    /// Rewritten address of an original instruction.
    ///
    /// # Panics
    ///
    /// Panics if `src_addr` was not an instruction boundary in the source.
    pub fn translated(&self, src_addr: u32) -> u32 {
        self.entry_map[&src_addr]
    }
}

fn is_skip(i: Instr) -> bool {
    matches!(
        i,
        Instr::Cpse { .. }
            | Instr::Sbrc { .. }
            | Instr::Sbrs { .. }
            | Instr::Sbic { .. }
            | Instr::Sbis { .. }
    )
}

/// Rewrites (sandboxes) a module.
///
/// * `words` — the module's machine code, located at word address
///   `src_origin`;
/// * `entry_points` — word addresses (absolute, in the source image) of the
///   module's exported functions;
/// * `dst_origin` — where the rewritten module will be placed;
/// * `runtime` — the trusted run-time to link the checks against.
///
/// # Errors
///
/// See [`RewriteError`]. The rewriter is conservative: anything it cannot
/// prove rewritable is rejected.
pub fn rewrite(
    words: &[u16],
    src_origin: u32,
    entry_points: &[u32],
    dst_origin: u32,
    runtime: &SfiRuntime,
) -> Result<RewrittenModule, RewriteError> {
    rewrite_with_elision(words, src_origin, entry_points, dst_origin, runtime, &BTreeSet::new())
}

/// [`rewrite`] with store-check elision: source-image store instructions
/// whose addresses appear in `elide` are emitted *verbatim* instead of
/// being expanded into a store-check-stub construct, on the strength of a
/// static store certificate (`harbor-flow`'s dataflow pass) proving they
/// land inside the module's own state segment. The verifier must then be
/// run with the matching [`crate::VerifierConfig::certified_raw_stores`]
/// allow-list — derived independently, never from the set passed here
/// (correctness "depends only upon the correctness of the verifier", and
/// elision keeps it that way).
///
/// # Errors
///
/// See [`RewriteError`].
pub fn rewrite_with_elision(
    words: &[u16],
    src_origin: u32,
    entry_points: &[u32],
    dst_origin: u32,
    runtime: &SfiRuntime,
    elide: &BTreeSet<u32>,
) -> Result<RewrittenModule, RewriteError> {
    let items = disasm(src_origin, words);
    let src_end = src_origin + words.len() as u32;

    // Reject raw words and build the instruction-boundary set.
    let mut boundaries = BTreeSet::new();
    for item in &items {
        match *item {
            DisasmItem::Raw { addr, word } => return Err(RewriteError::Undecodable { addr, word }),
            DisasmItem::Instr { addr, .. } => {
                boundaries.insert(addr);
            }
        }
    }

    // Collect function entries: declared entry points plus local call
    // targets (they all need the save-ret prologue).
    let mut entries: BTreeSet<u32> = entry_points.iter().copied().collect();
    for item in &items {
        if let DisasmItem::Instr { addr, instr } = *item {
            let target = match instr {
                Instr::Call { k } => Some(k),
                Instr::Rcall { k } => Some((addr + 1).wrapping_add(k as i32 as u32) & 0xffff),
                _ => None,
            };
            if let Some(t) = target {
                if (src_origin..src_end).contains(&t) {
                    entries.insert(t);
                }
            }
        }
    }
    for &e in &entries {
        if !boundaries.contains(&e) {
            return Err(RewriteError::MisalignedTarget { addr: e, target: e });
        }
    }

    let mut rw = Rewriter {
        a: Asm::new(),
        labels: BTreeMap::new(),
        runtime,
        src_origin,
        src_end,
        boundaries: &boundaries,
        entries: &entries,
        elide,
        stubs: StubConsts::default(),
        scratch: 0,
    };
    rw.init_stub_consts();

    let mut idx = 0;
    while idx < items.len() {
        idx = rw.translate(&items, idx)?;
    }
    // Bind the module-end label (skip landings off the last instruction).
    let end_label = rw.label_at(src_end);
    rw.a.bind(end_label);

    let object = rw.a.assemble(dst_origin)?;
    let mut entry_map = BTreeMap::new();
    for &addr in &boundaries {
        if let Some(dst) = object.symbol(&loc_name(addr)) {
            entry_map.insert(addr, dst);
        }
    }
    Ok(RewrittenModule { object, entry_map })
}

fn loc_name(addr: u32) -> String {
    format!("L_{addr:05x}")
}

#[derive(Default)]
struct StubConsts {
    save_ret: Option<Label>,
    restore_ret: Option<Label>,
    xdom_call: Option<Label>,
    icall_check: Option<Label>,
    ijmp_check: Option<Label>,
}

struct Rewriter<'r> {
    a: Asm,
    labels: BTreeMap<u32, Label>,
    runtime: &'r SfiRuntime,
    src_origin: u32,
    src_end: u32,
    boundaries: &'r BTreeSet<u32>,
    entries: &'r BTreeSet<u32>,
    elide: &'r BTreeSet<u32>,
    stubs: StubConsts,
    scratch: u32,
}

impl Rewriter<'_> {
    fn init_stub_consts(&mut self) {
        self.stubs.save_ret =
            Some(self.a.constant("harbor_save_ret", self.runtime.stub("harbor_save_ret")));
        self.stubs.restore_ret =
            Some(self.a.constant("harbor_restore_ret", self.runtime.stub("harbor_restore_ret")));
        self.stubs.xdom_call =
            Some(self.a.constant("harbor_xdom_call", self.runtime.stub("harbor_xdom_call")));
        self.stubs.icall_check =
            Some(self.a.constant("harbor_icall_check", self.runtime.stub("harbor_icall_check")));
        self.stubs.ijmp_check =
            Some(self.a.constant("harbor_ijmp_check", self.runtime.stub("harbor_ijmp_check")));
    }

    fn label_at(&mut self, addr: u32) -> Label {
        if let Some(&l) = self.labels.get(&addr) {
            return l;
        }
        let l = self.a.label(&loc_name(addr));
        self.labels.insert(addr, l);
        l
    }

    fn fresh(&mut self, base: &str) -> Label {
        self.scratch += 1;
        let name = format!("{base}_{}", self.scratch);
        self.a.label(&name)
    }

    fn stub_const(&mut self, addr: u32) -> Label {
        self.scratch += 1;
        self.a.constant(&format!("stub_{}", self.scratch), addr)
    }

    fn in_module(&self, t: u32) -> bool {
        (self.src_origin..self.src_end).contains(&t)
    }

    fn in_jump_tables(&self, t: u32) -> bool {
        let l = self.runtime.layout();
        (l.jt_base as u32..l.jt_end() as u32).contains(&t)
    }

    /// Translates the item at `idx`, returning the next index.
    fn translate(&mut self, items: &[DisasmItem], idx: usize) -> Result<usize, RewriteError> {
        let DisasmItem::Instr { addr, instr } = items[idx] else {
            unreachable!("raw words rejected up front");
        };
        // Bind this instruction's location label; plant the prologue at
        // function entries.
        let l = self.label_at(addr);
        self.a.bind(l);
        if self.entries.contains(&addr) {
            let save = self.stubs.save_ret.expect("stub consts initialised");
            self.a.call(save);
        }

        if is_skip(instr) {
            // skip + next → skip over an rjmp-to-next, then jmp to the
            // original landing point:
            //     <skip>            (unchanged, now skips the rjmp)
            //     rjmp do_next      (taken when the original would NOT skip)
            //     jmp L_<landing>   (reached when the original WOULD skip)
            //   do_next:
            //     <rewritten next>
            //
            // The landing target is the *original* address right past the
            // next instruction (its label is bound wherever that
            // instruction's translation begins — crucially, when the next
            // instruction is itself a skip, the landing is the skip alone,
            // not its whole rewritten construct).
            if idx + 1 >= items.len() {
                return Err(RewriteError::DanglingSkip { addr });
            }
            let next_addr = items[idx + 1].addr();
            let landing = next_addr + items[idx + 1].words();
            if landing != self.src_end && !self.boundaries.contains(&landing) {
                return Err(RewriteError::MisalignedTarget { addr, target: landing });
            }
            let do_next = self.fresh("do_next");
            let landing_label = self.label_at(landing);
            self.a.emit(instr);
            self.a.rjmp(do_next);
            self.a.jmp(landing_label);
            self.a.bind(do_next);
            return self.translate(items, idx + 1);
        }

        match instr {
            // ── stores ──────────────────────────────────────────────────
            // A certificate-elided store keeps its original one-word form;
            // every other store expands into its check-stub construct.
            Instr::St { .. } | Instr::Std { .. } | Instr::Sts { .. }
                if self.elide.contains(&addr) =>
            {
                self.a.emit(instr);
            }
            Instr::St { ptr, mode, r } => {
                let stub = self.stub_const(self.runtime.store_stub(ptr, mode));
                self.a.push(Reg::R0);
                self.a.mov(Reg::R0, r);
                self.a.call(stub);
                self.a.pop(Reg::R0);
            }
            Instr::Std { ptr, q, r } => {
                let stub = self.stub_const(self.runtime.displaced_store_stub(ptr));
                self.a.push(Reg::R0);
                self.a.mov(Reg::R0, r);
                self.a.push(Reg::R24);
                self.a.ldi(Reg::R24, q);
                self.a.call(stub);
                self.a.pop(Reg::R24);
                self.a.pop(Reg::R0);
            }
            Instr::Sts { k, r } => {
                let stub =
                    self.stub_const(self.runtime.store_stub(Ptr::X, avr_core::isa::PtrMode::Plain));
                self.a.push(Reg::R0);
                self.a.mov(Reg::R0, r);
                self.a.push(Reg::R26);
                self.a.push(Reg::R27);
                self.a.ldi(Reg::R26, (k & 0xff) as u8);
                self.a.ldi(Reg::R27, (k >> 8) as u8);
                self.a.call(stub);
                self.a.pop(Reg::R27);
                self.a.pop(Reg::R26);
                self.a.pop(Reg::R0);
            }

            // ── calls & returns ─────────────────────────────────────────
            Instr::Call { k } => self.rewrite_call(addr, k)?,
            Instr::Rcall { k } => {
                let target = (addr + 1).wrapping_add(k as i32 as u32) & 0xffff;
                self.rewrite_call(addr, target)?;
            }
            Instr::Ret | Instr::Reti => {
                let restore = self.stubs.restore_ret.expect("stub consts initialised");
                self.a.jmp(restore);
            }
            Instr::Icall => {
                let check = self.stubs.icall_check.expect("stub consts initialised");
                self.a.call(check);
            }
            Instr::Ijmp => {
                let check = self.stubs.ijmp_check.expect("stub consts initialised");
                self.a.jmp(check);
            }

            // ── jumps & branches ────────────────────────────────────────
            Instr::Jmp { k } => {
                if !self.in_module(k) {
                    return Err(RewriteError::JumpOutsideModule { addr, target: k });
                }
                self.check_aligned(addr, k)?;
                let l = self.label_at(k);
                self.a.jmp(l);
            }
            Instr::Rjmp { k } => {
                let target = (addr + 1).wrapping_add(k as i32 as u32) & 0xffff;
                if !self.in_module(target) {
                    return Err(RewriteError::JumpOutsideModule { addr, target });
                }
                self.check_aligned(addr, target)?;
                let l = self.label_at(target);
                self.a.jmp(l);
            }
            Instr::Brbs { s, k } | Instr::Brbc { s, k } => {
                let target = (addr + 1).wrapping_add(k as i32 as u32) & 0xffff;
                if !self.in_module(target) {
                    return Err(RewriteError::JumpOutsideModule { addr, target });
                }
                self.check_aligned(addr, target)?;
                let over = self.fresh("br_over");
                let dest = self.label_at(target);
                // Inverted branch over an absolute jump.
                if matches!(instr, Instr::Brbs { .. }) {
                    self.a.brbc(s, over);
                } else {
                    self.a.brbs(s, over);
                }
                self.a.jmp(dest);
                self.a.bind(over);
            }

            // ── stack-pointer writes are not sandboxable ────────────────
            Instr::Out { a: port, .. } if port == 0x3d || port == 0x3e => {
                return Err(RewriteError::StackPointerWrite { addr });
            }

            // ── everything else is safe as-is ───────────────────────────
            other => self.a.emit(other),
        }
        Ok(idx + 1)
    }

    fn check_aligned(&self, addr: u32, target: u32) -> Result<(), RewriteError> {
        if self.boundaries.contains(&target) {
            Ok(())
        } else {
            Err(RewriteError::MisalignedTarget { addr, target })
        }
    }

    fn rewrite_call(&mut self, addr: u32, target: u32) -> Result<(), RewriteError> {
        if self.in_module(target) {
            self.check_aligned(addr, target)?;
            let l = self.label_at(target);
            self.a.call(l);
        } else if self.in_jump_tables(target) {
            let xdom = self.stubs.xdom_call.expect("stub consts initialised");
            self.a.call(xdom);
            self.a.words(&[target as u16]);
        } else {
            return Err(RewriteError::CallOutsideModule { addr, target });
        }
        Ok(())
    }
}
