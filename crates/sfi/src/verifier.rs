//! The on-node verifier: independently validates a (supposedly) sandboxed
//! module before the loader accepts it.
//!
//! Harbor's safety argument rests here: "correctness depends only upon the
//! correctness of the verifier and the Harbor runtime, and not on the
//! rewriter". The verifier is a two-pass linear scan with constant
//! per-instruction state — the "simple verifier" the paper describes.
//!
//! Accepted modules satisfy:
//!
//! * every word decodes (the only data words are the inline jump-table
//!   operands following `call harbor_xdom_call`, and those must point into
//!   the jump tables);
//! * no raw stores (`ST`/`STD`/`STS`), no bare `RET`/`RETI`, no raw
//!   `ICALL`/`IJMP`, no stack-pointer writes;
//! * every direct call targets the module itself (on an instruction
//!   boundary) or an allow-listed run-time stub;
//! * every jump/branch stays inside the module on instruction boundaries
//!   (or exits through `harbor_restore_ret`/`harbor_ijmp_check`);
//! * skip instructions land on instruction boundaries (in particular they
//!   cannot skip into an inline operand).

use crate::runtime::SfiRuntime;
use avr_core::isa::{self, Instr};
use std::collections::BTreeSet;
use std::fmt;

/// What the verifier enforces; derive it from the installed run-time with
/// [`VerifierConfig::for_runtime`].
#[derive(Debug, Clone)]
pub struct VerifierConfig {
    /// First word address of the jump tables.
    pub jt_base: u32,
    /// First word address past the jump tables.
    pub jt_end: u32,
    /// Stubs a module may `call` (store checks, `harbor_save_ret`,
    /// `harbor_icall_check`).
    pub allowed_call_stubs: BTreeSet<u32>,
    /// Stubs a module may `jmp` to (`harbor_restore_ret`,
    /// `harbor_ijmp_check`).
    pub allowed_jump_stubs: BTreeSet<u32>,
    /// The cross-domain call stub (whose calls carry an inline operand).
    pub xdom_call_stub: u32,
    /// Word addresses of store instructions allowed to remain *raw*
    /// (un-rewritten) because a static store certificate proves them to
    /// land inside the module's own state segment (`DESIGN.md` §7). Empty
    /// — the default — restores the paper's "no raw stores" rule verbatim.
    /// The loader only populates this from a certificate it re-derived
    /// itself, never from a rewriter's claim.
    pub certified_raw_stores: BTreeSet<u32>,
}

impl VerifierConfig {
    /// Builds the configuration matching a generated run-time. The
    /// allow-lists derive from the runtime's single stub classification
    /// table ([`crate::runtime::STUB_TABLE`]), so every verifier enforces
    /// the same module-visibility policy.
    pub fn for_runtime(rt: &SfiRuntime) -> VerifierConfig {
        let l = rt.layout();
        let mut allowed_call_stubs = BTreeSet::new();
        let mut allowed_jump_stubs = BTreeSet::new();
        for (addr, role) in rt.stub_roles() {
            if role.module_may_call() {
                allowed_call_stubs.insert(addr);
            }
            if role.module_may_jump() {
                allowed_jump_stubs.insert(addr);
            }
        }
        VerifierConfig {
            jt_base: l.jt_base as u32,
            jt_end: l.jt_end() as u32,
            allowed_call_stubs,
            allowed_jump_stubs,
            xdom_call_stub: rt.stub("harbor_xdom_call"),
            certified_raw_stores: BTreeSet::new(),
        }
    }
}

/// A verification failure (the module is rejected).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyError {
    /// A word does not decode and is not a sanctioned inline operand.
    Undecodable {
        /// Word address.
        addr: u32,
        /// The raw word.
        word: u16,
    },
    /// A raw store instruction survived (not rewritten).
    RawStore {
        /// Word address.
        addr: u32,
    },
    /// A raw `ICALL`/`IJMP` survived.
    ComputedTransfer {
        /// Word address.
        addr: u32,
    },
    /// A bare `RET`/`RETI` survived.
    BareReturn {
        /// Word address.
        addr: u32,
    },
    /// A direct write to the stack pointer.
    StackPointerWrite {
        /// Word address.
        addr: u32,
    },
    /// A call target outside the module and the stub allow-list.
    IllegalCallTarget {
        /// Word address of the call.
        addr: u32,
        /// The target.
        target: u32,
    },
    /// A jump target outside the module and the jump allow-list.
    IllegalJumpTarget {
        /// Word address of the jump.
        addr: u32,
        /// The target.
        target: u32,
    },
    /// A control transfer (or skip landing) does not hit an instruction
    /// boundary.
    MisalignedTarget {
        /// Word address of the transfer.
        addr: u32,
        /// The target.
        target: u32,
    },
    /// The inline operand of a cross-domain call points outside the jump
    /// tables.
    BadInlineOperand {
        /// Word address of the operand.
        addr: u32,
        /// Its value.
        value: u16,
    },
    /// A cross-domain call at the end of the module has no operand word.
    MissingInlineOperand {
        /// Word address of the call.
        addr: u32,
    },
    /// A path reaches a store-check stub call without staging the checked
    /// value first — some branch lands directly on the `call`, bypassing
    /// the `push r0; mov r0, …` setup the rewriter plants. Only the
    /// flow-sensitive verifier detects this.
    StoreCheckBypass {
        /// Word address of the store-check call.
        addr: u32,
    },
    /// An intra-module call targets a function whose first instruction is
    /// not `call harbor_save_ret` — its return address would stay on the
    /// unprotected run-time stack. Only the flow-sensitive verifier
    /// detects this.
    MissingSaveRetPrologue {
        /// Word address of the offending call (or of the entry itself).
        addr: u32,
        /// The callee entry address.
        target: u32,
    },
    /// A reachable path runs off the end of the module image (straight-line
    /// fall-through or a skip landing exactly on the end). Only the
    /// flow-sensitive verifier detects this.
    FallsOffEnd {
        /// Word address of the last instruction on the offending path.
        addr: u32,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use VerifyError::*;
        match *self {
            Undecodable { addr, word } => {
                write!(f, "undecodable word {word:#06x} at {addr:#06x}")
            }
            RawStore { addr } => write!(f, "raw store at {addr:#06x}"),
            ComputedTransfer { addr } => write!(f, "raw computed transfer at {addr:#06x}"),
            BareReturn { addr } => write!(f, "bare return at {addr:#06x}"),
            StackPointerWrite { addr } => write!(f, "stack-pointer write at {addr:#06x}"),
            IllegalCallTarget { addr, target } => {
                write!(f, "illegal call target {target:#06x} at {addr:#06x}")
            }
            IllegalJumpTarget { addr, target } => {
                write!(f, "illegal jump target {target:#06x} at {addr:#06x}")
            }
            MisalignedTarget { addr, target } => {
                write!(f, "misaligned transfer target {target:#06x} at {addr:#06x}")
            }
            BadInlineOperand { addr, value } => {
                write!(f, "inline operand {value:#06x} at {addr:#06x} is outside the jump tables")
            }
            MissingInlineOperand { addr } => {
                write!(f, "cross-domain call at {addr:#06x} lacks its inline operand")
            }
            StoreCheckBypass { addr } => {
                write!(f, "path reaches store-check call at {addr:#06x} without staging r0")
            }
            MissingSaveRetPrologue { addr, target } => {
                write!(
                    f,
                    "call at {addr:#06x} targets {target:#06x} which lacks the save-ret prologue"
                )
            }
            FallsOffEnd { addr } => {
                write!(f, "reachable path falls off the module end after {addr:#06x}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a module image located at word address `origin`.
///
/// This is the host-friendly implementation: it materialises the decoded
/// instruction list (O(n) extra memory) for fast boundary checks. The
/// on-node variant is [`verify_constant_memory`]; the two accept exactly
/// the same binaries (see the `verifier_design_space` tests).
///
/// # Errors
///
/// The first [`VerifyError`] encountered; a rejected module must not be
/// loaded.
pub fn verify(words: &[u16], origin: u32, cfg: &VerifierConfig) -> Result<(), VerifyError> {
    let end = origin + words.len() as u32;
    let in_module = |t: u32| (origin..end).contains(&t);

    // Pass 1: decode, separating inline operands, and record boundaries.
    let mut instrs: Vec<(u32, Instr)> = Vec::new();
    let mut boundaries: BTreeSet<u32> = BTreeSet::new();
    let mut idx = 0usize;
    while idx < words.len() {
        let addr = origin + idx as u32;
        let w0 = words[idx];
        let w1 = words.get(idx + 1).copied();
        let instr = match isa::decode(w0, w1) {
            Ok(i) => i,
            Err(_) => return Err(VerifyError::Undecodable { addr, word: w0 }),
        };
        boundaries.insert(addr);
        instrs.push((addr, instr));
        idx += instr.words() as usize;
        // A cross-domain call carries one inline data word.
        if let Instr::Call { k } = instr {
            if k == cfg.xdom_call_stub {
                let Some(&operand) = words.get(idx) else {
                    return Err(VerifyError::MissingInlineOperand { addr });
                };
                let oaddr = origin + idx as u32;
                if !(cfg.jt_base..cfg.jt_end).contains(&(operand as u32)) {
                    return Err(VerifyError::BadInlineOperand { addr: oaddr, value: operand });
                }
                idx += 1; // the operand is data, not an instruction
            }
        }
    }

    // Pass 2: per-instruction rules.
    for (pos, &(addr, instr)) in instrs.iter().enumerate() {
        match instr {
            Instr::St { .. } | Instr::Std { .. } | Instr::Sts { .. }
                if !cfg.certified_raw_stores.contains(&addr) =>
            {
                return Err(VerifyError::RawStore { addr });
            }
            Instr::St { .. } | Instr::Std { .. } | Instr::Sts { .. } => {}
            Instr::Icall | Instr::Ijmp => return Err(VerifyError::ComputedTransfer { addr }),
            Instr::Ret | Instr::Reti => return Err(VerifyError::BareReturn { addr }),
            Instr::Out { a, .. } if a == 0x3d || a == 0x3e => {
                return Err(VerifyError::StackPointerWrite { addr })
            }
            Instr::Call { .. } | Instr::Rcall { .. } => {
                let target = match instr {
                    Instr::Call { k } => k,
                    Instr::Rcall { k } => (addr + 1).wrapping_add(k as i32 as u32) & 0xffff,
                    _ => unreachable!(),
                };
                if target == cfg.xdom_call_stub {
                    // Operand validated in pass 1.
                } else if in_module(target) {
                    if !boundaries.contains(&target) {
                        return Err(VerifyError::MisalignedTarget { addr, target });
                    }
                } else if !cfg.allowed_call_stubs.contains(&target) {
                    return Err(VerifyError::IllegalCallTarget { addr, target });
                }
            }
            Instr::Jmp { k } => {
                if in_module(k) {
                    if !boundaries.contains(&k) {
                        return Err(VerifyError::MisalignedTarget { addr, target: k });
                    }
                } else if !cfg.allowed_jump_stubs.contains(&k) {
                    return Err(VerifyError::IllegalJumpTarget { addr, target: k });
                }
            }
            Instr::Rjmp { k } => {
                let target = (addr + 1).wrapping_add(k as i32 as u32) & 0xffff;
                if !in_module(target) {
                    return Err(VerifyError::IllegalJumpTarget { addr, target });
                }
                if !boundaries.contains(&target) {
                    return Err(VerifyError::MisalignedTarget { addr, target });
                }
            }
            Instr::Brbs { k, .. } | Instr::Brbc { k, .. } => {
                let target = (addr + 1).wrapping_add(k as i32 as u32) & 0xffff;
                if !in_module(target) {
                    return Err(VerifyError::IllegalJumpTarget { addr, target });
                }
                if !boundaries.contains(&target) {
                    return Err(VerifyError::MisalignedTarget { addr, target });
                }
            }
            Instr::Cpse { .. }
            | Instr::Sbrc { .. }
            | Instr::Sbrs { .. }
            | Instr::Sbic { .. }
            | Instr::Sbis { .. } => {
                // The skip lands past the *next* instruction; it must hit a
                // boundary (in particular, not an inline operand).
                let Some(&(next_addr, next)) = instrs.get(pos + 1) else {
                    return Err(VerifyError::MisalignedTarget { addr, target: addr + 1 });
                };
                let landing = next_addr + next.words();
                if landing < end && !boundaries.contains(&landing) {
                    return Err(VerifyError::MisalignedTarget { addr, target: landing });
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// Word addresses of every raw store instruction (`st`/`std`/`sts`) in the
/// image, walking instruction boundaries exactly as the verifier does
/// (two-word instructions and cross-domain inline operands are skipped).
/// The walk stops at the first undecodable word — [`verify`] rejects such
/// an image outright, so nothing past it can ever execute as accepted code.
pub fn raw_stores(words: &[u16], origin: u32, cfg: &VerifierConfig) -> Vec<u32> {
    let mut out = Vec::new();
    let mut idx = 0usize;
    while idx < words.len() {
        let addr = origin + idx as u32;
        let Ok(instr) = isa::decode(words[idx], words.get(idx + 1).copied()) else { break };
        if matches!(instr, Instr::St { .. } | Instr::Std { .. } | Instr::Sts { .. }) {
            out.push(addr);
        }
        idx += instr.words() as usize;
        if let Instr::Call { k } = instr {
            if k == cfg.xdom_call_stub {
                idx += 1; // the inline operand is data
            }
        }
    }
    out
}

// ─────────────────────────────────────────────────────────────────────────
// The constant-memory variant — the paper's open design-space question.
// ─────────────────────────────────────────────────────────────────────────

/// Walks the image from its start, returning `true` iff `target` is an
/// instruction boundary (respecting two-word instructions and the inline
/// operand that follows every cross-domain call). O(n) time, O(1) memory.
fn is_boundary_by_walk(words: &[u16], origin: u32, target: u32, cfg: &VerifierConfig) -> bool {
    let mut idx = 0usize;
    while idx < words.len() {
        let addr = origin + idx as u32;
        if addr == target {
            return true;
        }
        if addr > target {
            return false;
        }
        let w0 = words[idx];
        let w1 = words.get(idx + 1).copied();
        let Ok(instr) = isa::decode(w0, w1) else { return false };
        idx += instr.words() as usize;
        if let Instr::Call { k } = instr {
            if k == cfg.xdom_call_stub {
                idx += 1; // the inline operand is data
            }
        }
    }
    origin + words.len() as u32 == target
}

/// Verifies a module with **constant extra memory** — the variant a 4 KiB
/// mote can actually run on-node, where the host implementation's decoded
/// instruction list would not fit.
///
/// The paper: "we have designed a simple verifier that requires constant
/// state information for a binary. Exploring the design space of verifiers
/// and evaluating their impact on performance is a challenge that remains
/// to be addressed." This function is one point in that space: it trades
/// memory for time by re-walking the image to answer each
/// is-this-a-boundary query, giving O(1) memory at O(n·t) time (t =
/// control transfers). [`verify`] is the opposite point: O(n) memory,
/// O(n + t) time. Both accept exactly the same binaries.
///
/// # Errors
///
/// The same [`VerifyError`]s as [`verify`], though when a module has
/// several problems the two variants may report different (equally valid)
/// first findings.
pub fn verify_constant_memory(
    words: &[u16],
    origin: u32,
    cfg: &VerifierConfig,
) -> Result<(), VerifyError> {
    let end = origin + words.len() as u32;
    let in_module = |t: u32| (origin..end).contains(&t);
    let boundary = |t: u32| is_boundary_by_walk(words, origin, t, cfg);

    let mut idx = 0usize;
    while idx < words.len() {
        let addr = origin + idx as u32;
        let w0 = words[idx];
        let w1 = words.get(idx + 1).copied();
        let instr = match isa::decode(w0, w1) {
            Ok(i) => i,
            Err(_) => return Err(VerifyError::Undecodable { addr, word: w0 }),
        };
        idx += instr.words() as usize;

        match instr {
            Instr::St { .. } | Instr::Std { .. } | Instr::Sts { .. }
                if !cfg.certified_raw_stores.contains(&addr) =>
            {
                return Err(VerifyError::RawStore { addr });
            }
            Instr::St { .. } | Instr::Std { .. } | Instr::Sts { .. } => {}
            Instr::Icall | Instr::Ijmp => return Err(VerifyError::ComputedTransfer { addr }),
            Instr::Ret | Instr::Reti => return Err(VerifyError::BareReturn { addr }),
            Instr::Out { a, .. } if a == 0x3d || a == 0x3e => {
                return Err(VerifyError::StackPointerWrite { addr })
            }
            Instr::Call { .. } | Instr::Rcall { .. } => {
                let target = match instr {
                    Instr::Call { k } => k,
                    Instr::Rcall { k } => (addr + 1).wrapping_add(k as i32 as u32) & 0xffff,
                    _ => unreachable!(),
                };
                if target == cfg.xdom_call_stub {
                    let Some(&operand) = words.get(idx) else {
                        return Err(VerifyError::MissingInlineOperand { addr });
                    };
                    let oaddr = origin + idx as u32;
                    if !(cfg.jt_base..cfg.jt_end).contains(&(operand as u32)) {
                        return Err(VerifyError::BadInlineOperand { addr: oaddr, value: operand });
                    }
                    idx += 1;
                } else if in_module(target) {
                    if !boundary(target) {
                        return Err(VerifyError::MisalignedTarget { addr, target });
                    }
                } else if !cfg.allowed_call_stubs.contains(&target) {
                    return Err(VerifyError::IllegalCallTarget { addr, target });
                }
            }
            Instr::Jmp { k } => {
                if in_module(k) {
                    if !boundary(k) {
                        return Err(VerifyError::MisalignedTarget { addr, target: k });
                    }
                } else if !cfg.allowed_jump_stubs.contains(&k) {
                    return Err(VerifyError::IllegalJumpTarget { addr, target: k });
                }
            }
            Instr::Rjmp { .. } | Instr::Brbs { .. } | Instr::Brbc { .. } => {
                let target = match instr {
                    Instr::Rjmp { k } => (addr + 1).wrapping_add(k as i32 as u32) & 0xffff,
                    Instr::Brbs { k, .. } | Instr::Brbc { k, .. } => {
                        (addr + 1).wrapping_add(k as i32 as u32) & 0xffff
                    }
                    _ => unreachable!(),
                };
                if !in_module(target) {
                    return Err(VerifyError::IllegalJumpTarget { addr, target });
                }
                if !boundary(target) {
                    return Err(VerifyError::MisalignedTarget { addr, target });
                }
            }
            Instr::Cpse { .. }
            | Instr::Sbrc { .. }
            | Instr::Sbrs { .. }
            | Instr::Sbic { .. }
            | Instr::Sbis { .. } => {
                // Landing = past the next instruction.
                let next_addr = origin + idx as u32;
                let Some(&nw0) = words.get(idx) else {
                    return Err(VerifyError::MisalignedTarget { addr, target: next_addr });
                };
                let nw1 = words.get(idx + 1).copied();
                let Ok(next) = isa::decode(nw0, nw1) else {
                    return Err(VerifyError::Undecodable { addr: next_addr, word: nw0 });
                };
                let landing = next_addr + next.words();
                if landing < end && !boundary(landing) {
                    return Err(VerifyError::MisalignedTarget { addr, target: landing });
                }
            }
            _ => {}
        }
    }
    Ok(())
}
