//! Harbor SFI: software-based fault isolation for AVR modules — the
//! software-only implementation of the paper's protection system
//! (Sections 1.2 and 4, and the "AVR Binary Rewrite" column of Table 3).
//!
//! Three cooperating pieces:
//!
//! * [`SfiRuntime`] — the trusted run-time check routines, generated as real
//!   AVR machine code and resident in the kernel domain: per-addressing-mode
//!   store checks (the software memory-map checker), the cross-domain
//!   call/return stubs, the save/restore-return-address stubs that maintain
//!   the software safe stack, and the computed-call/jump checks;
//! * [`rewriter`] — the **binary rewriter** that sandboxes a compiled
//!   module: every store becomes a call into the corresponding check, every
//!   `ret` exits through the restore stub, every jump-table call goes
//!   through the cross-domain stub, and skip instructions are rebuilt so
//!   the expanded code preserves the original semantics;
//! * [`verifier`] — the **on-node verifier** that independently validates a
//!   rewritten binary with constant state, so Harbor's safety depends only
//!   on the verifier and run-time, never on the rewriter.
//!
//! A third, flow-sensitive verifier (`harbor_flow::CfgVerifier`, in
//! `crates/flow`) layers CFG reconstruction and abstract interpretation on
//! top of this crate; it shares the [`VerifyError`] surface and derives its
//! allow-lists from the same [`StubRole`] table as the linear verifiers.
//!
//! Violations detected at run time are reported by writing the
//! [`harbor::fault_code`] to the simulator panic port
//! ([`avr_core::mem::PORT_PANIC`]), the software analogue of the UMPU
//! exception signal.

#![warn(missing_docs)]

mod layout;
pub mod rewriter;
mod runtime;
pub mod verifier;

pub use layout::SfiLayout;
pub use rewriter::{rewrite, rewrite_with_elision, RewriteError, RewrittenModule};
pub use runtime::{store_stub_name, SfiRuntime, StubRole, STUB_TABLE};
pub use verifier::{raw_stores, verify, verify_constant_memory, VerifierConfig, VerifyError};
