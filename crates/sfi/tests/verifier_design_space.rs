//! The verifier design space (the paper's stated open question): the
//! O(n)-memory host verifier and the O(1)-memory on-node verifier must
//! accept/reject exactly the same binaries.

use avr_asm::Asm;
use avr_core::isa::{Ptr, PtrMode, Reg};
use harbor_sfi::{rewrite, verify, verify_constant_memory, SfiLayout, SfiRuntime, VerifierConfig};
use proptest::prelude::*;

const ORIGIN: u32 = 0x1000;

fn runtime() -> SfiRuntime {
    SfiRuntime::build(SfiLayout::default_layout(), 0x0040)
}

/// A small generator of module shapes covering all the verifier's rules.
fn sample_module(variant: u8) -> Asm {
    let mut a = Asm::new();
    match variant % 6 {
        0 => {
            a.ldi(Reg::R16, 1);
            a.sts(0x0300, Reg::R16);
            a.ret();
        }
        1 => {
            let l = a.label("l");
            a.bind(l);
            a.st(Ptr::X, PtrMode::PostInc, Reg::R0);
            a.dec(Reg::R16);
            a.brne(l);
            a.ret();
        }
        2 => {
            a.sbrc(Reg::R16, 3);
            a.std(Ptr::Z, 9, Reg::R17);
            a.ret();
        }
        3 => {
            let f = a.label("f");
            a.rcall(f);
            a.ret();
            a.bind(f);
            a.cpse(Reg::R0, Reg::R1);
            a.rjmp(f);
            a.ret();
        }
        4 => {
            // Cross-domain call into domain 3's jump table.
            let jt = SfiLayout::default_layout().jt_base as u32 + 3 * 128;
            a.call_abs(jt);
            a.ret();
        }
        _ => {
            a.ldi(Reg::R30, 0);
            a.ldi(Reg::R31, 0x10);
            a.icall();
            a.ret();
        }
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Equivalence over valid modules, and over the same modules with one
    /// word randomly mutated (the tampering the verifier exists to catch).
    #[test]
    fn both_verifiers_agree(variant in 0u8..6, mutate_at in any::<u16>(), mutate_to in any::<u16>()) {
        let rt = runtime();
        let cfg = VerifierConfig::for_runtime(&rt);
        let original = sample_module(variant).assemble(ORIGIN).unwrap();
        let rewritten = rewrite(original.words(), ORIGIN, &[ORIGIN], ORIGIN, &rt).unwrap();

        // Clean rewriter output: both must accept.
        let clean = rewritten.object.words().to_vec();
        prop_assert!(verify(&clean, ORIGIN, &cfg).is_ok());
        prop_assert!(verify_constant_memory(&clean, ORIGIN, &cfg).is_ok());

        // Mutated binary: both must agree on accept/reject.
        let mut mutated = clean.clone();
        let at = (mutate_at as usize) % mutated.len();
        mutated[at] = mutate_to;
        let fast = verify(&mutated, ORIGIN, &cfg).is_ok();
        let small = verify_constant_memory(&mutated, ORIGIN, &cfg).is_ok();
        prop_assert_eq!(
            fast, small,
            "verdicts diverge on mutation at {} -> {:#06x}", at, mutate_to
        );
    }
}

#[test]
fn constant_memory_variant_rejects_the_attack_battery() {
    let rt = runtime();
    let cfg = VerifierConfig::for_runtime(&rt);

    // Raw store.
    let mut a = Asm::new();
    a.ldi(Reg::R16, 1);
    a.sts(0x0300, Reg::R16);
    let obj = a.assemble(ORIGIN).unwrap();
    assert!(verify_constant_memory(obj.words(), ORIGIN, &cfg).is_err());

    // Bare return.
    let mut a = Asm::new();
    a.ret();
    let obj = a.assemble(ORIGIN).unwrap();
    assert!(verify_constant_memory(obj.words(), ORIGIN, &cfg).is_err());

    // Escaping call.
    let mut a = Asm::new();
    a.call_abs(0);
    let obj = a.assemble(ORIGIN).unwrap();
    assert!(verify_constant_memory(obj.words(), ORIGIN, &cfg).is_err());

    // Misaligned branch (into the middle of a 2-word call): hand-build.
    let mut a = Asm::new();
    let mid = a.constant("mid", ORIGIN + 3); // the call·s operand word
    a.jmp(mid);
    a.call_abs(rt.stub("harbor_save_ret"));
    let obj = a.assemble(ORIGIN).unwrap();
    assert!(matches!(
        verify_constant_memory(obj.words(), ORIGIN, &cfg),
        Err(harbor_sfi::VerifyError::MisalignedTarget { .. })
    ));
}
