//! Turbo-engine lockstep over SFI-sandboxed code. SFI's protection is
//! *inline instructions* (check stubs the rewriter splices into the module),
//! so the turbo engine needs no special handling: caching the decode of a
//! check stub still executes the check. These tests prove it — the
//! sandboxed store path, the cross-domain unwind and the software fault
//! path are instruction-identical under turbo.

use avr_asm::Asm;
use avr_core::exec::{Cpu, Step};
use avr_core::isa::{Ptr, PtrMode, Reg};
use avr_core::mem::PlainEnv;
use avr_core::Fault;
use harbor::{fault_code, DomainId};
use harbor_sfi::{rewrite, verify, SfiLayout, SfiRuntime, VerifierConfig};
use harbor_turbo::TurboEngine;

const RT_ORIGIN: u32 = 0x0040;
const MOD_ORIGIN: u32 = 0x1000;
const DOM: u8 = 2;
const SEG: u16 = 0x0300;

/// Builds the sandboxed machine from `sandbox.rs` (runtime + rewritten
/// module + jump table + kernel driver), returning just the CPU.
fn machine(body: impl FnOnce(&mut Asm)) -> Cpu<PlainEnv> {
    let rt = SfiRuntime::build(SfiLayout::default_layout(), RT_ORIGIN);
    let mut env = PlainEnv::new();
    rt.install(&mut env.flash, &mut env.data);

    let mut m = Asm::new();
    body(&mut m);
    let original = m.assemble(MOD_ORIGIN).unwrap();
    let rewritten = rewrite(original.words(), MOD_ORIGIN, &[MOD_ORIGIN], MOD_ORIGIN, &rt)
        .expect("module rewrites");
    verify(rewritten.object.words(), MOD_ORIGIN, &VerifierConfig::for_runtime(&rt))
        .expect("rewriter output verifies");
    rewritten.object.load_into(&mut env.flash);

    let entry = rewritten.translated(MOD_ORIGIN);
    rt.set_code_bounds(
        &mut env.data,
        DomainId::num(DOM),
        MOD_ORIGIN as u16,
        rewritten.object.end() as u16,
    );
    let jt_entry = rt.layout().jt_base + DOM as u16 * 128;
    let mut jt = Asm::new();
    let t = jt.constant("entry", entry);
    jt.rjmp(t);
    jt.assemble(jt_entry as u32).unwrap().load_into(&mut env.flash);

    let mut k = Asm::new();
    let xdom = k.constant("xdom", rt.stub("harbor_xdom_call"));
    k.call(xdom);
    k.words(&[jt_entry]);
    k.brk();
    k.assemble(0).unwrap().load_into(&mut env.flash);

    rt.host_set_segment(&mut env.data, DomainId::num(DOM), SEG, 32).unwrap();
    Cpu::new(env)
}

fn assert_same_state(a: &Cpu<PlainEnv>, b: &Cpu<PlainEnv>, what: &str) {
    assert_eq!(a.pc, b.pc, "{what}: pc");
    assert_eq!(a.sp, b.sp, "{what}: sp");
    assert_eq!(a.sreg, b.sreg, "{what}: sreg");
    assert_eq!(a.regs, b.regs, "{what}: register file");
    assert_eq!(a.cycles(), b.cycles(), "{what}: cycles");
    assert_eq!(a.instructions(), b.instructions(), "{what}: instructions");
    assert_eq!(a.env.data.sram(), b.env.data.sram(), "{what}: sram");
}

/// Steps both machines through the whole cross-domain round trip (driver →
/// stub → rewritten module → unwind → BREAK), comparing after every single
/// instruction: every check stub, every run-time routine, lockstep.
#[test]
fn sandboxed_round_trip_is_lockstep_identical() {
    let mk = || {
        machine(|a| {
            a.ldi(Reg::R16, 0x42);
            a.ldi(Reg::R26, (SEG & 0xff) as u8);
            a.ldi(Reg::R27, (SEG >> 8) as u8);
            a.st(Ptr::X, PtrMode::PostInc, Reg::R16);
            a.inc(Reg::R16);
            a.st(Ptr::X, PtrMode::Plain, Reg::R16);
            a.ret();
        })
    };
    let mut reference = mk();
    let mut turbo_cpu = mk();
    let mut turbo = TurboEngine::new();
    for n in 0..100_000 {
        let r = reference.step();
        let t = turbo.step(&mut turbo_cpu, 0);
        assert_eq!(r, t, "step {n}: outcome diverged");
        assert_same_state(&reference, &turbo_cpu, &format!("step {n}"));
        match r {
            Ok(Step::Continue) => {}
            Ok(Step::Break) => {
                assert_eq!(reference.env.sram_byte(SEG), 0x42);
                assert_eq!(reference.env.sram_byte(SEG + 1), 0x43);
                assert!(turbo.stats().cached > 0, "fast path served instructions");
                return;
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    panic!("did not reach break");
}

/// The software fault path (a store the inline check rejects, escalated
/// through the run-time's panic port) faults at the same instruction with
/// the same code and machine state under turbo.
#[test]
fn software_fault_is_identical_under_turbo() {
    let mk = || {
        machine(|a| {
            a.ldi(Reg::R16, 1);
            a.sts(SEG + 0x80, Reg::R16); // free (trusted-owned) block
            a.ret();
        })
    };
    let mut reference = mk();
    let mut turbo_cpu = mk();
    let mut turbo = TurboEngine::new();
    let r = reference.run_to_break(1_000_000);
    let t = turbo.run_to_break(&mut turbo_cpu, 0, 1_000_000);
    match &r {
        Err(Fault::Env(e)) => assert_eq!(e.code, fault_code::MEM_MAP),
        other => panic!("expected MEM_MAP fault, got {other:?}"),
    }
    assert_eq!(r, t, "fault verdict diverged");
    assert_same_state(&reference, &turbo_cpu, "at fault");
    assert_eq!(reference.env.sram_byte(SEG + 0x80), 0, "store blocked in both");
}
