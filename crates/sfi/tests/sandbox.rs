//! End-to-end SFI tests: modules are written as ordinary (unsafe) AVR code,
//! passed through the binary rewriter, accepted by the verifier, and run on
//! a stock (hardware-protection-free) simulator where the trusted run-time
//! enforces the Harbor rules in software.

use avr_asm::Asm;
use avr_core::exec::Cpu;
use avr_core::isa::{Ptr, PtrMode, Reg};
use avr_core::mem::{PlainEnv, RAMEND};
use avr_core::Fault;
use harbor::{fault_code, DomainId};
use harbor_sfi::{rewrite, verify, RewrittenModule, SfiLayout, SfiRuntime, VerifierConfig};

const RT_ORIGIN: u32 = 0x0040;
const MOD_ORIGIN: u32 = 0x1000;
const DOM: u8 = 2;
/// A heap address granted to the module's domain in most tests.
const SEG: u16 = 0x0300;

struct Machine {
    cpu: Cpu<PlainEnv>,
    rt: SfiRuntime,
}

/// Builds the standard test machine: runtime installed, module (built by
/// `body`) assembled at `MOD_ORIGIN`, rewritten in place, verified, loaded,
/// its jump-table entry planted, and a kernel driver that cross-domain-calls
/// entry 0 and BREAKs.
fn machine(body: impl FnOnce(&mut Asm)) -> (Machine, RewrittenModule) {
    let rt = SfiRuntime::build(SfiLayout::default_layout(), RT_ORIGIN);
    let mut env = PlainEnv::new();
    rt.install(&mut env.flash, &mut env.data);

    // The module, as a compiler would emit it (stores, plain ret).
    let mut m = Asm::new();
    body(&mut m);
    let original = m.assemble(MOD_ORIGIN).unwrap();

    // Sandbox it.
    let rewritten = rewrite(original.words(), MOD_ORIGIN, &[MOD_ORIGIN], MOD_ORIGIN, &rt)
        .expect("module rewrites");
    verify(rewritten.object.words(), MOD_ORIGIN, &VerifierConfig::for_runtime(&rt))
        .expect("rewriter output verifies");
    rewritten.object.load_into(&mut env.flash);

    // Loader bookkeeping: code bounds + jump-table entry 0 for the domain.
    let entry = rewritten.translated(MOD_ORIGIN);
    rt.set_code_bounds(
        &mut env.data,
        DomainId::num(DOM),
        MOD_ORIGIN as u16,
        rewritten.object.end() as u16,
    );
    let jt_entry = rt.layout().jt_base + DOM as u16 * 128;
    let mut jt = Asm::new();
    let t = jt.constant("entry", entry);
    jt.rjmp(t);
    jt.assemble(jt_entry as u32).unwrap().load_into(&mut env.flash);

    // Kernel driver: cross-domain call into the module, then BREAK.
    let mut k = Asm::new();
    let xdom = k.constant("xdom", rt.stub("harbor_xdom_call"));
    k.call(xdom);
    k.words(&[jt_entry]);
    k.brk();
    k.assemble(0).unwrap().load_into(&mut env.flash);

    // Grant the module a heap segment at SEG.
    rt.host_set_segment(&mut env.data, DomainId::num(DOM), SEG, 32).unwrap();

    (Machine { cpu: Cpu::new(env), rt }, rewritten)
}

fn expect_fault(m: &mut Machine, code: u16) {
    match m.cpu.run_to_break(1_000_000) {
        Err(Fault::Env(e)) => assert_eq!(e.code, code, "fault code"),
        other => panic!("expected fault {code}, got {other:?}"),
    }
}

#[test]
fn sandboxed_store_to_own_segment_works() {
    let (mut m, _) = machine(|a| {
        a.ldi(Reg::R16, 0x42);
        a.ldi(Reg::R26, (SEG & 0xff) as u8);
        a.ldi(Reg::R27, (SEG >> 8) as u8);
        a.st(Ptr::X, PtrMode::PostInc, Reg::R16);
        a.inc(Reg::R16);
        a.st(Ptr::X, PtrMode::Plain, Reg::R16);
        a.ret();
    });
    m.cpu.run_to_break(1_000_000).unwrap();
    assert_eq!(m.cpu.env.sram_byte(SEG), 0x42);
    assert_eq!(m.cpu.env.sram_byte(SEG + 1), 0x43);
    // Unwound: trusted domain active again, stack balanced.
    assert_eq!(m.rt.current_domain(&m.cpu.env.data).index(), 7);
    assert_eq!(m.cpu.sp, RAMEND);
}

#[test]
fn sandboxed_store_to_foreign_block_faults() {
    let (mut m, _) = machine(|a| {
        a.ldi(Reg::R16, 1);
        a.sts(SEG + 0x80, Reg::R16); // a free (trusted-owned) block
        a.ret();
    });
    expect_fault(&mut m, fault_code::MEM_MAP);
    assert_eq!(m.cpu.env.sram_byte(SEG + 0x80), 0, "store was blocked");
}

#[test]
fn sandboxed_store_to_kernel_globals_faults() {
    let layout = SfiLayout::default_layout();
    let (mut m, _) = machine(move |a| {
        a.ldi(Reg::R16, 0xff);
        a.sts(layout.cur_dom, Reg::R16); // try to corrupt the domain id!
        a.ret();
    });
    expect_fault(&mut m, fault_code::KERNEL_SPACE);
}

#[test]
fn sandboxed_store_above_stack_bound_faults() {
    let (mut m, _) = machine(|a| {
        a.ldi(Reg::R16, 0xee);
        a.sts(RAMEND, Reg::R16); // the caller's stack area
        a.ret();
    });
    expect_fault(&mut m, fault_code::STACK_BOUND);
}

#[test]
fn sandboxed_push_and_pop_work() {
    // PUSH/POP through SP are below the bound: legal and untouched by the
    // rewriter.
    let (mut m, _) = machine(|a| {
        a.ldi(Reg::R16, 0x5a);
        a.push(Reg::R16);
        a.pop(Reg::R17);
        a.sts(SEG, Reg::R17);
        a.ret();
    });
    m.cpu.run_to_break(1_000_000).unwrap();
    assert_eq!(m.cpu.env.sram_byte(SEG), 0x5a);
}

#[test]
fn local_calls_inside_module_work() {
    let (mut m, _) = machine(|a| {
        let helper = a.label("helper");
        a.ldi(Reg::R16, 10);
        a.rcall(helper);
        a.rcall(helper);
        a.sts(SEG, Reg::R16);
        a.ret();
        a.bind(helper);
        a.inc(Reg::R16);
        a.ret();
    });
    m.cpu.run_to_break(1_000_000).unwrap();
    assert_eq!(m.cpu.env.sram_byte(SEG), 12, "helper ran twice");
}

#[test]
fn return_addresses_live_on_the_safe_stack() {
    // The module runs with an empty run-time-stack frame; the only place
    // its return address can survive is the software safe stack, and the
    // module cannot overwrite it (it's in protected memory).
    let layout = SfiLayout::default_layout();
    let (mut m, _) = machine(move |a| {
        a.ldi(Reg::R16, 0x99);
        a.sts(layout.safe_stack_base, Reg::R16); // attack the safe stack
        a.ret();
    });
    expect_fault(&mut m, fault_code::MEM_MAP);
}

#[test]
fn branch_rewriting_preserves_loop_semantics() {
    let (mut m, _) = machine(|a| {
        let l = a.label("loop");
        a.clr(Reg::R16);
        a.ldi(Reg::R17, 5);
        a.bind(l);
        a.add(Reg::R16, Reg::R17);
        a.dec(Reg::R17);
        a.brne(l);
        a.sts(SEG, Reg::R16);
        a.ret();
    });
    m.cpu.run_to_break(1_000_000).unwrap();
    assert_eq!(m.cpu.env.sram_byte(SEG), 15, "5+4+3+2+1");
}

#[test]
fn skip_rewriting_preserves_semantics() {
    let (mut m, _) = machine(|a| {
        // r16 bit0 set → the store executes; bit1 clear → second store
        // skipped. Both "next" instructions are stores, which expand.
        a.ldi(Reg::R16, 0b01);
        a.ldi(Reg::R17, 0xaa);
        a.sbrs(Reg::R16, 0); // bit set → skip next
        a.sts(SEG, Reg::R17); // skipped
        a.sbrs(Reg::R16, 1); // bit clear → execute next
        a.sts(SEG + 1, Reg::R17); // executed
        a.ret();
    });
    m.cpu.run_to_break(1_000_000).unwrap();
    assert_eq!(m.cpu.env.sram_byte(SEG), 0, "first store skipped");
    assert_eq!(m.cpu.env.sram_byte(SEG + 1), 0xaa, "second store executed");
}

#[test]
fn cpse_skip_rewriting() {
    let (mut m, _) = machine(|a| {
        a.ldi(Reg::R16, 7);
        a.ldi(Reg::R17, 7);
        a.ldi(Reg::R18, 1);
        a.cpse(Reg::R16, Reg::R17); // equal → skip
        a.ldi(Reg::R18, 0xff); // skipped
        a.sts(SEG, Reg::R18);
        a.ret();
    });
    m.cpu.run_to_break(1_000_000).unwrap();
    assert_eq!(m.cpu.env.sram_byte(SEG), 1);
}

#[test]
fn displaced_store_rewriting() {
    let (mut m, _) = machine(|a| {
        a.ldi(Reg::R28, (SEG & 0xff) as u8);
        a.ldi(Reg::R29, (SEG >> 8) as u8);
        a.ldi(Reg::R16, 0x31);
        a.std(Ptr::Y, 5, Reg::R16);
        a.ldd(Reg::R17, Ptr::Y, 5);
        a.inc(Reg::R17);
        a.std(Ptr::Y, 6, Reg::R17);
        a.ret();
    });
    m.cpu.run_to_break(1_000_000).unwrap();
    assert_eq!(m.cpu.env.sram_byte(SEG + 5), 0x31);
    assert_eq!(m.cpu.env.sram_byte(SEG + 6), 0x32);
    assert_eq!(m.cpu.reg16(Reg::R28), SEG, "Y preserved by the stub");
}

#[test]
fn pre_decrement_store_checks_the_decremented_address() {
    // X starts just past the foreign region boundary: st -X must check the
    // decremented address (inside the module's segment → OK).
    let (mut m, _) = machine(|a| {
        a.ldi(Reg::R16, 0x11);
        a.ldi(Reg::R26, ((SEG + 1) & 0xff) as u8);
        a.ldi(Reg::R27, ((SEG + 1) >> 8) as u8);
        a.st(Ptr::X, PtrMode::PreDec, Reg::R16);
        // Capture X before returning (X is call-clobbered by the ABI, so
        // asserting it after `ret` would be meaningless).
        a.sts(SEG + 2, Reg::R26);
        a.sts(SEG + 3, Reg::R27);
        a.ret();
    });
    m.cpu.run_to_break(1_000_000).unwrap();
    assert_eq!(m.cpu.env.sram_byte(SEG), 0x11);
    let x_after =
        m.cpu.env.sram_byte(SEG + 2) as u16 | ((m.cpu.env.sram_byte(SEG + 3) as u16) << 8);
    assert_eq!(x_after, SEG, "X ends decremented");
}

#[test]
fn module_sees_its_own_domain_id() {
    let layout = SfiLayout::default_layout();
    let (mut m, _) = machine(move |a| {
        a.lds(Reg::R16, layout.cur_dom); // reads are unrestricted
        a.sts(SEG, Reg::R16);
        a.ret();
    });
    m.cpu.run_to_break(1_000_000).unwrap();
    assert_eq!(m.cpu.env.sram_byte(SEG), DOM);
}

#[test]
fn icall_within_module_is_allowed() {
    let (mut m, rewritten) = machine(|a| {
        let f = a.label("f");
        let fc = a.constant("f_addr", 0); // patched below via Z computation
        let _ = fc;
        // Compute the target with lo8/hi8 of the label (position after
        // rewriting differs, but the rewriter maps icall through the
        // runtime check, which validates the *rewritten* bounds — so the
        // module must load the rewritten address. We cheat: the original
        // module loads its own label, and since src==dst origin the
        // rewritten entry_map supplies the real target at load time...
        // Simplest correct pattern: icall through a label in the same
        // module, materialised by the loader. Here we hand-assemble:
        a.ldi_lo8(Reg::R30, f);
        a.ldi_hi8(Reg::R31, f);
        a.icall();
        a.sts(SEG, Reg::R16);
        a.ret();
        a.bind(f);
        a.ldi(Reg::R16, 0x77);
        a.ret();
    });
    let _ = rewritten;
    // The ldi lo8/hi8 baked the ORIGINAL address of `f`; after rewriting,
    // `f` moved. The module would icall a stale address — which the
    // computed-check may reject or accept-but-misbehave. This documents the
    // limitation: icall targets must be rewriter-translated. We accept
    // either a clean run with the translated semantics or a CFI fault, but
    // never silent corruption of other domains.
    match m.cpu.run_to_break(1_000_000) {
        Ok(_) => {}
        Err(Fault::Env(e)) => assert_eq!(e.code, fault_code::CFI),
        other => panic!("unexpected outcome {other:?}"),
    }
}

#[test]
fn icall_outside_module_faults() {
    let (mut m, _) = machine(|a| {
        a.ldi(Reg::R30, 0x40); // the runtime itself!
        a.ldi(Reg::R31, 0x00);
        a.icall();
        a.ret();
    });
    expect_fault(&mut m, fault_code::CFI);
}

#[test]
fn verifier_rejects_hand_injected_raw_store() {
    let rt = SfiRuntime::build(SfiLayout::default_layout(), RT_ORIGIN);
    let mut a = Asm::new();
    a.ldi(Reg::R16, 1);
    a.sts(SEG, Reg::R16); // raw store, never rewritten
    a.ret();
    let obj = a.assemble(MOD_ORIGIN).unwrap();
    let err = verify(obj.words(), MOD_ORIGIN, &VerifierConfig::for_runtime(&rt)).unwrap_err();
    assert!(matches!(err, harbor_sfi::VerifyError::RawStore { .. }));
}

#[test]
fn verifier_rejects_bare_ret_and_escaping_call() {
    let rt = SfiRuntime::build(SfiLayout::default_layout(), RT_ORIGIN);
    let cfg = VerifierConfig::for_runtime(&rt);

    let mut a = Asm::new();
    a.ret();
    let obj = a.assemble(MOD_ORIGIN).unwrap();
    assert!(matches!(
        verify(obj.words(), MOD_ORIGIN, &cfg).unwrap_err(),
        harbor_sfi::VerifyError::BareReturn { .. }
    ));

    let mut a = Asm::new();
    a.call_abs(0x0000); // kernel!
    let obj = a.assemble(MOD_ORIGIN).unwrap();
    assert!(matches!(
        verify(obj.words(), MOD_ORIGIN, &cfg).unwrap_err(),
        harbor_sfi::VerifyError::IllegalCallTarget { target: 0, .. }
    ));
}

#[test]
fn verifier_rejects_tampered_inline_operand() {
    // Take a legitimately rewritten module and corrupt the jump-table
    // operand to point at kernel code.
    let rt = SfiRuntime::build(SfiLayout::default_layout(), RT_ORIGIN);
    let jt_entry = rt.layout().jt_base + 3 * 128;
    let mut a = Asm::new();
    a.call_abs(jt_entry as u32);
    a.ret();
    let original = a.assemble(MOD_ORIGIN).unwrap();
    let rewritten = rewrite(original.words(), MOD_ORIGIN, &[MOD_ORIGIN], MOD_ORIGIN, &rt).unwrap();
    let cfg = VerifierConfig::for_runtime(&rt);
    verify(rewritten.object.words(), MOD_ORIGIN, &cfg).unwrap();

    let mut words = rewritten.object.words().to_vec();
    // Find the inline operand (the word equal to the jump-table entry).
    let pos = words.iter().position(|&w| w == jt_entry).expect("operand present");
    words[pos] = 0x0000; // retarget to the kernel
    assert!(matches!(
        verify(&words, MOD_ORIGIN, &cfg).unwrap_err(),
        harbor_sfi::VerifyError::BadInlineOperand { value: 0, .. }
    ));
}

#[test]
fn verifier_rejects_computed_transfers_and_sp_writes() {
    let rt = SfiRuntime::build(SfiLayout::default_layout(), RT_ORIGIN);
    let cfg = VerifierConfig::for_runtime(&rt);

    let mut a = Asm::new();
    a.ijmp();
    let obj = a.assemble(MOD_ORIGIN).unwrap();
    assert!(matches!(
        verify(obj.words(), MOD_ORIGIN, &cfg).unwrap_err(),
        harbor_sfi::VerifyError::ComputedTransfer { .. }
    ));

    let mut a = Asm::new();
    a.out(0x3d, Reg::R16);
    let obj = a.assemble(MOD_ORIGIN).unwrap();
    assert!(matches!(
        verify(obj.words(), MOD_ORIGIN, &cfg).unwrap_err(),
        harbor_sfi::VerifyError::StackPointerWrite { .. }
    ));
}

#[test]
fn verifier_accepts_every_rewritten_test_module() {
    // Re-run the rewriter over a battery of module shapes and insist the
    // verifier accepts each (rewriter-independence property).
    let rt = SfiRuntime::build(SfiLayout::default_layout(), RT_ORIGIN);
    let cfg = VerifierConfig::for_runtime(&rt);
    type Body = Box<dyn Fn(&mut Asm)>;
    let bodies: Vec<Body> = vec![
        Box::new(|a: &mut Asm| {
            a.ldi(Reg::R16, 1);
            a.sts(SEG, Reg::R16);
            a.ret();
        }),
        Box::new(|a: &mut Asm| {
            let l = a.label("l");
            a.bind(l);
            a.st(Ptr::X, PtrMode::PostInc, Reg::R0);
            a.dec(Reg::R16);
            a.brne(l);
            a.ret();
        }),
        Box::new(|a: &mut Asm| {
            a.sbrc(Reg::R16, 3);
            a.std(Ptr::Z, 9, Reg::R17);
            a.ret();
        }),
        Box::new(|a: &mut Asm| {
            let f = a.label("f");
            a.rcall(f);
            a.ret();
            a.bind(f);
            a.cpse(Reg::R0, Reg::R1);
            a.rjmp(f);
            a.ret();
        }),
    ];
    for (i, body) in bodies.iter().enumerate() {
        let mut a = Asm::new();
        body(&mut a);
        let original = a.assemble(MOD_ORIGIN).unwrap();
        let rewritten =
            rewrite(original.words(), MOD_ORIGIN, &[MOD_ORIGIN], MOD_ORIGIN, &rt).unwrap();
        verify(rewritten.object.words(), MOD_ORIGIN, &cfg)
            .unwrap_or_else(|e| panic!("module {i}: verifier rejected rewriter output: {e}"));
    }
}

#[test]
fn rewriter_rejects_unsafe_inputs() {
    let rt = SfiRuntime::build(SfiLayout::default_layout(), RT_ORIGIN);

    // Call outside module & jump tables.
    let mut a = Asm::new();
    a.call_abs(0x0010);
    let obj = a.assemble(MOD_ORIGIN).unwrap();
    assert!(matches!(
        rewrite(obj.words(), MOD_ORIGIN, &[], MOD_ORIGIN, &rt).unwrap_err(),
        harbor_sfi::RewriteError::CallOutsideModule { .. }
    ));

    // Raw data word.
    let words = [0x0001u16];
    assert!(matches!(
        rewrite(&words, MOD_ORIGIN, &[], MOD_ORIGIN, &rt).unwrap_err(),
        harbor_sfi::RewriteError::Undecodable { .. }
    ));

    // Stack-pointer write.
    let mut a = Asm::new();
    a.out(0x3e, Reg::R16);
    let obj = a.assemble(MOD_ORIGIN).unwrap();
    assert!(matches!(
        rewrite(obj.words(), MOD_ORIGIN, &[], MOD_ORIGIN, &rt).unwrap_err(),
        harbor_sfi::RewriteError::StackPointerWrite { .. }
    ));
}

#[test]
fn dynamic_cross_domain_icall_works() {
    // The module computes a jump-table target at run time and `icall`s it —
    // SOS-style dynamic dispatch. The rewritten icall routes through the
    // icall check, which recognises the jump-table range and performs a
    // full cross-domain call (frame, domain switch, return gate).
    let rt = SfiRuntime::build(SfiLayout::default_layout(), RT_ORIGIN);
    let mut env = PlainEnv::new();
    rt.install(&mut env.flash, &mut env.data);

    // Callee module in domain 3 at 0x0d80: returns 0x66 in r24.
    let mut b = Asm::new();
    b.ldi(Reg::R24, 0x66);
    b.ret();
    let b_obj = b.assemble(0x0d80).unwrap();
    let b_rw = rewrite(b_obj.words(), 0x0d80, &[0x0d80], 0x0d80, &rt).unwrap();
    b_rw.object.load_into(&mut env.flash);
    rt.set_code_bounds(&mut env.data, DomainId::num(3), 0x0d80, b_rw.object.end() as u16);

    // Jump-table entry 0 for domain 3.
    let jt_entry = rt.layout().jt_base + 3 * 128;
    let mut jt = Asm::new();
    let t = jt.constant("b", b_rw.translated(0x0d80));
    jt.rjmp(t);
    jt.assemble(jt_entry as u32).unwrap().load_into(&mut env.flash);

    // Caller module in domain 2: computes Z = jt_entry from two immediates
    // (as a dispatch table would), icalls, stores the result.
    let mut a = Asm::new();
    a.ldi(Reg::R30, (jt_entry & 0xff) as u8);
    a.ldi(Reg::R31, (jt_entry >> 8) as u8);
    a.icall();
    a.sts(SEG, Reg::R24);
    a.ret();
    let a_obj = a.assemble(MOD_ORIGIN).unwrap();
    let a_rw = rewrite(a_obj.words(), MOD_ORIGIN, &[MOD_ORIGIN], MOD_ORIGIN, &rt).unwrap();
    verify(a_rw.object.words(), MOD_ORIGIN, &VerifierConfig::for_runtime(&rt)).unwrap();
    a_rw.object.load_into(&mut env.flash);
    rt.set_code_bounds(
        &mut env.data,
        DomainId::num(DOM),
        MOD_ORIGIN as u16,
        a_rw.object.end() as u16,
    );
    rt.host_set_segment(&mut env.data, DomainId::num(DOM), SEG, 32).unwrap();

    // Kernel driver: cross-domain call into module A's jump-table entry.
    let a_jt = rt.layout().jt_base + DOM as u16 * 128;
    let mut jt = Asm::new();
    let t = jt.constant("a", a_rw.translated(MOD_ORIGIN));
    jt.rjmp(t);
    jt.assemble(a_jt as u32).unwrap().load_into(&mut env.flash);
    let mut k = Asm::new();
    let xdom = k.constant("xdom", rt.stub("harbor_xdom_call"));
    k.call(xdom);
    k.words(&[a_jt]);
    k.brk();
    k.assemble(0).unwrap().load_into(&mut env.flash);

    let mut cpu = Cpu::new(env);
    cpu.run_to_break(1_000_000).unwrap();
    assert_eq!(cpu.env.sram_byte(SEG), 0x66, "dom2 dynamically dispatched into dom3");
    assert_eq!(rt.current_domain(&cpu.env.data).index(), 7, "fully unwound");
    assert_eq!(cpu.sp, RAMEND, "run-time stack balanced");
}

#[test]
fn ijmp_into_jump_table_is_rejected_at_runtime() {
    let (mut m, _) = machine(|a| {
        let jt = SfiLayout::default_layout().jt_base;
        a.ldi(Reg::R30, (jt & 0xff) as u8);
        a.ldi(Reg::R31, (jt >> 8) as u8);
        a.ijmp(); // tail-calling across domains is not allowed
        a.ret();
    });
    expect_fault(&mut m, fault_code::CFI);
}
