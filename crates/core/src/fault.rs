//! Protection faults and their compact numeric codes.

use std::fmt;

/// A violation detected by the Harbor protection mechanisms.
///
/// Hardware (UMPU) and software (SFI) implementations raise the same faults;
/// [`fault_code`] gives each a stable numeric code for transport through the
/// simulator's compact environment-fault channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ProtectionFault {
    /// A store into memory-map-protected space hit a block the active domain
    /// does not own.
    MemMapViolation {
        /// The write address.
        addr: u16,
        /// The active domain that attempted the write.
        domain: u8,
        /// The owner recorded in the memory map.
        owner: u8,
    },
    /// A store into the run-time stack above the current stack bound (i.e.
    /// into the caller's frames).
    StackBoundViolation {
        /// The write address.
        addr: u16,
        /// The active stack bound.
        bound: u16,
    },
    /// A store by an untrusted domain below the protected region (kernel
    /// globals / reserved space).
    KernelSpaceViolation {
        /// The write address.
        addr: u16,
        /// The active domain.
        domain: u8,
    },
    /// A cross-domain call targeted the jump-table region but fell past the
    /// last domain's table ("the target domain identifier exceeds the
    /// maximum number of domains").
    JumpTableOverflow {
        /// The call target (word address).
        target: u16,
    },
    /// Control flow left the active domain's code region other than through
    /// the jump table (fetch-decoder check).
    CfiViolation {
        /// The offending program counter (word address).
        pc: u16,
        /// The active domain.
        domain: u8,
    },
    /// The safe stack grew into the run-time stack (or its configured
    /// capacity).
    SafeStackOverflow {
        /// Safe-stack pointer at the time of the push.
        ptr: u16,
    },
    /// A return was attempted with an empty (or mismatched) safe stack.
    SafeStackUnderflow,
    /// Cross-domain call nesting exceeded the tracker's hardware depth.
    TrackerDepthExceeded {
        /// The depth that was requested.
        depth: u16,
    },
    /// An untrusted domain wrote a protection configuration register.
    ConfigAccessViolation {
        /// The I/O port written.
        port: u8,
        /// The active domain.
        domain: u8,
    },
    /// A domain id outside `0..=7` was supplied.
    InvalidDomain {
        /// The rejected id.
        id: u8,
    },
    /// An address or length did not satisfy the memory map's alignment or
    /// range requirements.
    BadSegment {
        /// The offending address.
        addr: u16,
        /// The requested length.
        len: u16,
    },
    /// An operation on memory not owned by the requesting domain (e.g. `free`
    /// or `change_own` by a non-owner).
    NotOwner {
        /// Address of the segment.
        addr: u16,
        /// The requesting domain.
        domain: u8,
        /// The recorded owner.
        owner: u8,
    },
    /// An address fell outside the memory-map-protected range where a mapped
    /// address was required.
    OutOfProtectedRange {
        /// The offending address.
        addr: u16,
    },
}

impl fmt::Display for ProtectionFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ProtectionFault::*;
        match *self {
            MemMapViolation { addr, domain, owner } => {
                write!(f, "memory-map violation: dom{domain} wrote {addr:#06x} owned by dom{owner}")
            }
            StackBoundViolation { addr, bound } => {
                write!(f, "stack-bound violation: write to {addr:#06x} above bound {bound:#06x}")
            }
            KernelSpaceViolation { addr, domain } => write!(
                f,
                "kernel-space violation: dom{domain} wrote {addr:#06x} below the protected region"
            ),
            JumpTableOverflow { target } => {
                write!(f, "call target {target:#06x} is past the last jump table")
            }
            CfiViolation { pc, domain } => write!(
                f,
                "control-flow violation: dom{domain} fetched {pc:#06x} outside its code region"
            ),
            SafeStackOverflow { ptr } => {
                write!(f, "safe stack overflow at {ptr:#06x}")
            }
            SafeStackUnderflow => f.write_str("safe stack underflow"),
            TrackerDepthExceeded { depth } => {
                write!(f, "cross-domain nesting depth {depth} exceeds tracker capacity")
            }
            ConfigAccessViolation { port, domain } => {
                write!(f, "dom{domain} wrote protection config port {port:#04x} (trusted only)")
            }
            InvalidDomain { id } => write!(f, "invalid domain id {id}"),
            BadSegment { addr, len } => {
                write!(f, "bad segment: addr {addr:#06x} len {len}")
            }
            NotOwner { addr, domain, owner } => {
                write!(f, "dom{domain} is not the owner of {addr:#06x} (owner dom{owner})")
            }
            OutOfProtectedRange { addr } => {
                write!(f, "address {addr:#06x} is outside the protected range")
            }
        }
    }
}

impl std::error::Error for ProtectionFault {}

/// Stable numeric codes for transporting faults through compact channels
/// (the simulator's [`EnvFault`](https://docs.rs/avr-core) `code` field and
/// the kernel's software exception register).
pub mod fault_code {
    /// [`MemMapViolation`](super::ProtectionFault::MemMapViolation).
    pub const MEM_MAP: u16 = 1;
    /// [`StackBoundViolation`](super::ProtectionFault::StackBoundViolation).
    pub const STACK_BOUND: u16 = 2;
    /// [`KernelSpaceViolation`](super::ProtectionFault::KernelSpaceViolation).
    pub const KERNEL_SPACE: u16 = 3;
    /// [`JumpTableOverflow`](super::ProtectionFault::JumpTableOverflow).
    pub const JUMP_TABLE: u16 = 4;
    /// [`CfiViolation`](super::ProtectionFault::CfiViolation).
    pub const CFI: u16 = 5;
    /// [`SafeStackOverflow`](super::ProtectionFault::SafeStackOverflow).
    pub const SAFE_STACK_OVERFLOW: u16 = 6;
    /// [`SafeStackUnderflow`](super::ProtectionFault::SafeStackUnderflow).
    pub const SAFE_STACK_UNDERFLOW: u16 = 7;
    /// [`TrackerDepthExceeded`](super::ProtectionFault::TrackerDepthExceeded).
    pub const TRACKER_DEPTH: u16 = 8;
    /// [`ConfigAccessViolation`](super::ProtectionFault::ConfigAccessViolation).
    pub const CONFIG_ACCESS: u16 = 9;
    /// [`InvalidDomain`](super::ProtectionFault::InvalidDomain).
    pub const INVALID_DOMAIN: u16 = 10;
    /// [`BadSegment`](super::ProtectionFault::BadSegment).
    pub const BAD_SEGMENT: u16 = 11;
    /// [`NotOwner`](super::ProtectionFault::NotOwner).
    pub const NOT_OWNER: u16 = 12;
    /// [`OutOfProtectedRange`](super::ProtectionFault::OutOfProtectedRange).
    pub const OUT_OF_RANGE: u16 = 13;
}

impl ProtectionFault {
    /// The fault's stable numeric code (see [`fault_code`]).
    pub const fn code(&self) -> u16 {
        use ProtectionFault::*;
        match self {
            MemMapViolation { .. } => fault_code::MEM_MAP,
            StackBoundViolation { .. } => fault_code::STACK_BOUND,
            KernelSpaceViolation { .. } => fault_code::KERNEL_SPACE,
            JumpTableOverflow { .. } => fault_code::JUMP_TABLE,
            CfiViolation { .. } => fault_code::CFI,
            SafeStackOverflow { .. } => fault_code::SAFE_STACK_OVERFLOW,
            SafeStackUnderflow => fault_code::SAFE_STACK_UNDERFLOW,
            TrackerDepthExceeded { .. } => fault_code::TRACKER_DEPTH,
            ConfigAccessViolation { .. } => fault_code::CONFIG_ACCESS,
            InvalidDomain { .. } => fault_code::INVALID_DOMAIN,
            BadSegment { .. } => fault_code::BAD_SEGMENT,
            NotOwner { .. } => fault_code::NOT_OWNER,
            OutOfProtectedRange { .. } => fault_code::OUT_OF_RANGE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_distinct() {
        let faults = [
            ProtectionFault::MemMapViolation { addr: 0, domain: 0, owner: 1 },
            ProtectionFault::StackBoundViolation { addr: 0, bound: 0 },
            ProtectionFault::KernelSpaceViolation { addr: 0, domain: 0 },
            ProtectionFault::JumpTableOverflow { target: 0 },
            ProtectionFault::CfiViolation { pc: 0, domain: 0 },
            ProtectionFault::SafeStackOverflow { ptr: 0 },
            ProtectionFault::SafeStackUnderflow,
            ProtectionFault::TrackerDepthExceeded { depth: 0 },
            ProtectionFault::ConfigAccessViolation { port: 0, domain: 0 },
            ProtectionFault::InvalidDomain { id: 9 },
            ProtectionFault::BadSegment { addr: 0, len: 0 },
            ProtectionFault::NotOwner { addr: 0, domain: 0, owner: 0 },
            ProtectionFault::OutOfProtectedRange { addr: 0 },
        ];
        let mut codes: Vec<u16> = faults.iter().map(|f| f.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), faults.len(), "fault codes must be unique");
    }

    #[test]
    fn display_is_informative() {
        let f = ProtectionFault::MemMapViolation { addr: 0x123, domain: 2, owner: 5 };
        let s = f.to_string();
        assert!(s.contains("dom2") && s.contains("0x0123") && s.contains("dom5"));
    }
}
