//! Per-domain jump-table geometry for cross-domain linking (Section 3).
//!
//! Each domain owns one flash page of jump instructions; all pages are
//! co-located starting at a fixed base. This makes the call-target check a
//! single compare against the base, with the upper bound deferred to the
//! domain-id range check — exactly the paper's optimization.

use crate::domain::DomainId;
use crate::fault::ProtectionFault;

/// Geometry of the co-located per-domain jump tables in flash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct JumpTableLayout {
    base: u16,
    entries_per_domain: u16,
    domains: u8,
}

impl JumpTableLayout {
    /// One flash page (256 B) of one-word `rjmp` entries per domain — the
    /// paper's AVR configuration, giving 128 exportable functions per domain.
    pub const ENTRIES_PER_PAGE: u16 = 128;

    /// Creates the layout: `domains` consecutive pages of
    /// [`ENTRIES_PER_PAGE`](Self::ENTRIES_PER_PAGE) entries starting at word
    /// address `base`.
    pub const fn new(base: u16, domains: u8) -> JumpTableLayout {
        JumpTableLayout { base, entries_per_domain: Self::ENTRIES_PER_PAGE, domains }
    }

    /// Creates a layout with a custom per-domain entry count ("this limit can
    /// be easily extended by allocating more space").
    pub const fn with_entries(base: u16, domains: u8, entries_per_domain: u16) -> JumpTableLayout {
        JumpTableLayout { base, entries_per_domain, domains }
    }

    /// Word address of the first (domain 0) table.
    pub const fn base(&self) -> u16 {
        self.base
    }

    /// Entries per domain.
    pub const fn entries_per_domain(&self) -> u16 {
        self.entries_per_domain
    }

    /// Number of domains with tables.
    pub const fn domains(&self) -> u8 {
        self.domains
    }

    /// First word address past the last table.
    pub const fn end(&self) -> u16 {
        self.base + self.total_words()
    }

    /// Total size in words.
    pub const fn total_words(&self) -> u16 {
        self.entries_per_domain * self.domains as u16
    }

    /// Total size in bytes — the flash cost reported in Table 5 of the paper
    /// (2048 B for 8 domains × 128 one-word entries).
    pub const fn total_bytes(&self) -> u16 {
        self.total_words() * 2
    }

    /// Word address of `entry` in `domain`'s table.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is out of range (static linking error).
    pub fn entry_addr(&self, domain: DomainId, entry: u16) -> u16 {
        assert!(entry < self.entries_per_domain, "jump table entry out of range");
        self.base + domain.index() as u16 * self.entries_per_domain + entry
    }

    /// Whether `target` (a word address) lies anywhere at or past the table
    /// base — the single compare the hardware performs first.
    pub const fn is_candidate(&self, target: u16) -> bool {
        target >= self.base
    }

    /// Classifies a call target: `Ok(None)` for an ordinary (local) call
    /// below the table base, `Ok(Some((domain, entry)))` for a cross-domain
    /// call through the table.
    ///
    /// # Example
    ///
    /// ```
    /// use harbor::{DomainId, JumpTableLayout};
    ///
    /// # fn main() -> Result<(), harbor::ProtectionFault> {
    /// let jt = JumpTableLayout::new(0x0800, 8);
    /// assert_eq!(jt.classify(0x0100)?, None); // local call
    /// assert_eq!(jt.classify(0x0885)?, Some((DomainId::new(1)?, 5)));
    /// assert!(jt.classify(0x0c00).is_err()); // past the last table
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// [`ProtectionFault::JumpTableOverflow`] when the computed domain id
    /// falls past the last table (the deferred upper-bound check).
    pub fn classify(&self, target: u16) -> Result<Option<(DomainId, u16)>, ProtectionFault> {
        if target < self.base {
            return Ok(None);
        }
        let off = target - self.base;
        let dom = off / self.entries_per_domain;
        if dom >= self.domains as u16 {
            return Err(ProtectionFault::JumpTableOverflow { target });
        }
        let entry = off % self.entries_per_domain;
        Ok(Some((DomainId::num(dom as u8), entry)))
    }

    /// [`JumpTableLayout::classify`] with trace emission: a target landing
    /// in a table records a [`harbor_scope::Event::JumpTableDispatch`]
    /// (local calls and overflows emit nothing — the tracker reports those).
    ///
    /// # Errors
    ///
    /// Exactly as [`JumpTableLayout::classify`].
    pub fn classify_traced(
        &self,
        target: u16,
        cycles: u64,
        sink: &mut dyn harbor_scope::TraceSink,
    ) -> Result<Option<(DomainId, u16)>, ProtectionFault> {
        let r = self.classify(target);
        if let Ok(Some((dom, entry))) = &r {
            sink.record(&harbor_scope::Event::JumpTableDispatch {
                cycles,
                domain: dom.index(),
                entry: *entry,
                target,
            });
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_flash_cost() {
        let jt = JumpTableLayout::new(0x0800, 8);
        assert_eq!(jt.total_bytes(), 2048, "Table 5: jump table FLASH cost");
        assert_eq!(jt.total_words(), 1024);
        assert_eq!(jt.end(), 0x0c00);
    }

    #[test]
    fn entry_addresses() {
        let jt = JumpTableLayout::new(0x0800, 8);
        assert_eq!(jt.entry_addr(DomainId::num(0), 0), 0x0800);
        assert_eq!(jt.entry_addr(DomainId::num(0), 127), 0x087f);
        assert_eq!(jt.entry_addr(DomainId::num(1), 0), 0x0880);
        assert_eq!(jt.entry_addr(DomainId::TRUSTED, 5), 0x0800 + 7 * 128 + 5);
    }

    #[test]
    #[should_panic(expected = "entry out of range")]
    fn entry_addr_bounds() {
        JumpTableLayout::new(0x0800, 8).entry_addr(DomainId::num(0), 128);
    }

    #[test]
    fn classify_targets() {
        let jt = JumpTableLayout::new(0x0800, 8);
        assert_eq!(jt.classify(0x0100).unwrap(), None, "below base: local call");
        assert_eq!(jt.classify(0x0800).unwrap(), Some((DomainId::num(0), 0)));
        assert_eq!(jt.classify(0x0885).unwrap(), Some((DomainId::num(1), 5)));
        assert_eq!(
            jt.classify(0x0bff).unwrap(),
            Some((DomainId::TRUSTED, 127)),
            "last entry of the trusted table"
        );
        assert!(matches!(
            jt.classify(0x0c00),
            Err(ProtectionFault::JumpTableOverflow { target: 0x0c00 })
        ));
    }

    #[test]
    fn custom_entry_count() {
        let jt = JumpTableLayout::with_entries(0x0400, 4, 32);
        assert_eq!(jt.total_bytes(), 4 * 32 * 2);
        assert_eq!(jt.classify(0x0400 + 33).unwrap(), Some((DomainId::num(1), 1)));
    }

    #[test]
    fn traced_classify_emits_only_on_dispatch() {
        use harbor_scope::{Event, ScopeSink};
        let jt = JumpTableLayout::new(0x0800, 8);
        let mut sink = ScopeSink::stream();
        assert_eq!(jt.classify_traced(0x0100, 1, &mut sink), jt.classify(0x0100));
        assert_eq!(jt.classify_traced(0x0885, 2, &mut sink), jt.classify(0x0885));
        assert_eq!(jt.classify_traced(0x0c00, 3, &mut sink), jt.classify(0x0c00));
        assert_eq!(
            sink.events(),
            vec![Event::JumpTableDispatch { cycles: 2, domain: 1, entry: 5, target: 0x0885 }]
        );
    }
}
