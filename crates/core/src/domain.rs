//! Protection-domain identifiers.

use crate::fault::ProtectionFault;
use std::fmt;

/// A protection-domain identifier.
///
/// Harbor supports eight domains: user domains `0..=6` and the **trusted**
/// domain `7` (the kernel), whose identifier doubles as the "free" owner in
/// the memory map (Table 1 of the paper: `1111` = free or trusted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(
    feature = "serde",
    derive(serde::Serialize, serde::Deserialize),
    serde(into = "u8", try_from = "u8")
)]
pub struct DomainId(u8);

impl TryFrom<u8> for DomainId {
    type Error = ProtectionFault;

    fn try_from(n: u8) -> Result<DomainId, ProtectionFault> {
        DomainId::new(n)
    }
}

impl From<DomainId> for u8 {
    fn from(d: DomainId) -> u8 {
        d.index()
    }
}

impl DomainId {
    /// The trusted (kernel) domain. It may write anywhere and is the only
    /// domain allowed to program the protection hardware.
    pub const TRUSTED: DomainId = DomainId(7);

    /// Number of domains in the multi-domain configuration.
    pub const COUNT: u8 = 8;

    /// Creates a domain id.
    ///
    /// # Errors
    ///
    /// [`ProtectionFault::InvalidDomain`] if `n > 7`.
    pub const fn new(n: u8) -> Result<DomainId, ProtectionFault> {
        if n < Self::COUNT {
            Ok(DomainId(n))
        } else {
            Err(ProtectionFault::InvalidDomain { id: n })
        }
    }

    /// Creates a domain id, panicking on overflow — for static tables.
    ///
    /// # Panics
    ///
    /// Panics if `n > 7`.
    pub const fn num(n: u8) -> DomainId {
        match Self::new(n) {
            Ok(d) => d,
            Err(_) => panic!("domain id out of range"),
        }
    }

    /// The numeric id, `0..=7`.
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the trusted (kernel) domain.
    pub const fn is_trusted(self) -> bool {
        self.0 == Self::TRUSTED.0
    }

    /// Iterates over the seven user domains (`0..=6`).
    pub fn user_domains() -> impl Iterator<Item = DomainId> {
        (0..7).map(DomainId)
    }

    /// Iterates over all eight domains.
    pub fn all() -> impl Iterator<Item = DomainId> {
        (0..Self::COUNT).map(DomainId)
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_trusted() {
            f.write_str("trusted")
        } else {
            write!(f, "dom{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_bounds() {
        assert_eq!(DomainId::new(0).unwrap().index(), 0);
        assert_eq!(DomainId::new(7).unwrap(), DomainId::TRUSTED);
        assert!(DomainId::new(8).is_err());
        assert!(DomainId::TRUSTED.is_trusted());
        assert!(!DomainId::num(3).is_trusted());
    }

    #[test]
    fn iterators() {
        assert_eq!(DomainId::user_domains().count(), 7);
        assert!(DomainId::user_domains().all(|d| !d.is_trusted()));
        assert_eq!(DomainId::all().count(), 8);
    }

    #[test]
    fn display() {
        assert_eq!(DomainId::num(2).to_string(), "dom2");
        assert_eq!(DomainId::TRUSTED.to_string(), "trusted");
    }
}
