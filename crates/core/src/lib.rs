//! Harbor: coarse-grained memory protection for tiny embedded processors.
//!
//! This crate is the *golden model* of the protection system described in
//! "A System For Coarse Grained Memory Protection In Tiny Embedded
//! Processors" (DAC 2007): a host-level, dependency-free implementation of
//! every Harbor primitive, usable directly as a library and as the reference
//! against which the simulated implementations (the `umpu` hardware model
//! and the `harbor-sfi` software run-time) are differentially tested.
//!
//! # The protection model
//!
//! A single data address space is divided into up to eight [protection
//! domains](DomainId): seven user domains plus one **trusted** domain (the
//! kernel). The fault model is *cross-domain corruption*: code in one domain
//! must not be able to write memory owned by another. Four mechanisms
//! enforce it:
//!
//! * a [`MemoryMap`] records, per fixed-size block, which domain owns the
//!   block and whether it starts a logical segment;
//! * [stack bounds](ProtectionModel) protect the shared run-time stack: on
//!   every cross-domain call the stack pointer is latched, and the callee may
//!   only write below the latch;
//! * a [`SafeStack`] keeps return addresses (and cross-domain frames) in
//!   trusted memory, preserving control-flow integrity even when a module
//!   corrupts its own stack frames;
//! * a [`DomainTracker`] arbitrates cross-domain calls through per-domain
//!   [jump tables](JumpTableLayout) and tracks the active domain.
//!
//! [`ProtectionModel`] composes all of the above into the complete
//! write-permission rule of the paper.
//!
//! # Example
//!
//! ```
//! use harbor::{DomainId, MemMapConfig, MemoryMap, ProtectionFault};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = MemMapConfig::multi_domain(0x0100, 0x0f00)?; // protect 0x0100..0x0f00
//! let mut map = MemoryMap::new(cfg);
//!
//! let app = DomainId::new(2)?;
//! map.set_segment(app, 0x0100, 64)?;             // give domain 2 a 64-byte segment
//! assert_eq!(map.owner_of(0x0120)?, app);
//! assert!(map.check_write(app, 0x0120).is_ok());
//! assert!(matches!(
//!     map.check_write(DomainId::new(3)?, 0x0120),
//!     Err(ProtectionFault::MemMapViolation { .. })
//! ));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod domain;
mod fault;
mod jumptable;
mod memmap;
mod model;
mod safestack;
mod tracker;

pub use domain::DomainId;
pub use fault::{fault_code, ProtectionFault};
pub use jumptable::JumpTableLayout;
pub use memmap::{BlockSize, DomainMode, MapLookup, MemMapConfig, MemoryMap, Record};
pub use model::{MemoryLayout, ProtectionModel, RegionClass, WriteVerdict};
pub use safestack::{SafeStack, SafeStackEntry, CROSS_DOMAIN_FRAME_BYTES, RET_ADDR_BYTES};
pub use tracker::{CallResolution, DomainTracker, RetResolution};
