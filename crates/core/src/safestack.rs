//! The safe stack: return addresses and cross-domain frames in trusted
//! memory (Sections 3.2–3.4 of the paper).
//!
//! The safe stack lives at the end of global data and grows *up*, toward the
//! run-time stack growing down — the two approach one another. Plain entries
//! are 2-byte return addresses; cross-domain frames additionally save the
//! caller's domain id and stack bound (5 bytes total, pushed one byte per
//! cycle by the hardware unit).

use crate::domain::DomainId;
use crate::fault::ProtectionFault;

/// Bytes used by a plain return-address entry.
pub const RET_ADDR_BYTES: u16 = 2;
/// Bytes used by a cross-domain frame: return address (2) + stack bound
/// (2) + caller domain id (1). Matches the paper's "five bytes … one byte
/// per clock cycle" overhead accounting.
pub const CROSS_DOMAIN_FRAME_BYTES: u16 = 5;

/// One entry on the safe stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SafeStackEntry {
    /// A local-call return address (word address).
    RetAddr(u16),
    /// A cross-domain frame saving the caller's context.
    CrossDomain {
        /// The calling domain to restore on return.
        caller: DomainId,
        /// The caller's stack bound to restore on return.
        stack_bound: u16,
        /// The return address in the caller (word address).
        ret_addr: u16,
    },
}

impl SafeStackEntry {
    /// Size of the entry on the byte-level safe stack.
    pub const fn byte_len(&self) -> u16 {
        match self {
            SafeStackEntry::RetAddr(_) => RET_ADDR_BYTES,
            SafeStackEntry::CrossDomain { .. } => CROSS_DOMAIN_FRAME_BYTES,
        }
    }

    /// The entry's byte-level layout, in ascending address order. This is
    /// the format the UMPU safe-stack unit writes to RAM (and the kernel's
    /// SFI stubs replicate), so differential tests can compare raw memory.
    pub fn to_bytes(&self) -> Vec<u8> {
        match *self {
            SafeStackEntry::RetAddr(r) => vec![r as u8, (r >> 8) as u8],
            SafeStackEntry::CrossDomain { caller, stack_bound, ret_addr } => vec![
                ret_addr as u8,
                (ret_addr >> 8) as u8,
                stack_bound as u8,
                (stack_bound >> 8) as u8,
                caller.index(),
            ],
        }
    }
}

/// Golden model of the safe stack: typed entries with a byte-accurate
/// pointer.
///
/// The hardware keeps only `safe_stack_ptr`; the typed entry list here is
/// the *specification* of what those bytes mean.
///
/// # Example
///
/// ```
/// use harbor::{SafeStack, SafeStackEntry};
///
/// # fn main() -> Result<(), harbor::ProtectionFault> {
/// let mut s = SafeStack::new(0x0d00, 256);
/// s.push(SafeStackEntry::RetAddr(0x0123))?;
/// assert_eq!(s.ptr(), 0x0d02, "two bytes consumed; the pointer grows up");
/// assert_eq!(s.pop()?, SafeStackEntry::RetAddr(0x0123));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SafeStack {
    base: u16,
    capacity: u16,
    entries: Vec<SafeStackEntry>,
    used: u16,
}

impl SafeStack {
    /// Creates an empty safe stack at data address `base` with room for
    /// `capacity` bytes.
    pub fn new(base: u16, capacity: u16) -> SafeStack {
        SafeStack { base, capacity, entries: Vec::new(), used: 0 }
    }

    /// The base address (`safe_stack_ptr`'s reset value).
    pub const fn base(&self) -> u16 {
        self.base
    }

    /// The configured capacity in bytes.
    pub const fn capacity(&self) -> u16 {
        self.capacity
    }

    /// Current byte usage.
    pub const fn used_bytes(&self) -> u16 {
        self.used
    }

    /// The current `safe_stack_ptr` value (next free byte; grows up).
    pub const fn ptr(&self) -> u16 {
        self.base + self.used
    }

    /// Number of entries.
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries, bottom to top.
    pub fn entries(&self) -> &[SafeStackEntry] {
        &self.entries
    }

    /// Peeks at the top entry.
    pub fn top(&self) -> Option<&SafeStackEntry> {
        self.entries.last()
    }

    /// Pushes an entry.
    ///
    /// # Errors
    ///
    /// [`ProtectionFault::SafeStackOverflow`] if it would exceed capacity.
    pub fn push(&mut self, e: SafeStackEntry) -> Result<(), ProtectionFault> {
        let len = e.byte_len();
        if self.used + len > self.capacity {
            return Err(ProtectionFault::SafeStackOverflow { ptr: self.ptr() });
        }
        self.used += len;
        self.entries.push(e);
        Ok(())
    }

    /// Pops the top entry.
    ///
    /// # Errors
    ///
    /// [`ProtectionFault::SafeStackUnderflow`] if empty.
    pub fn pop(&mut self) -> Result<SafeStackEntry, ProtectionFault> {
        let e = self.entries.pop().ok_or(ProtectionFault::SafeStackUnderflow)?;
        self.used -= e.byte_len();
        Ok(e)
    }

    /// [`SafeStack::push`] with trace emission: a successful push records a
    /// [`harbor_scope::Event::SafeStackPush`] (with the post-push pointer),
    /// an overflow records [`harbor_scope::Event::SafeStackOverflow`].
    ///
    /// # Errors
    ///
    /// Exactly as [`SafeStack::push`].
    pub fn push_traced(
        &mut self,
        e: SafeStackEntry,
        cycles: u64,
        sink: &mut dyn harbor_scope::TraceSink,
    ) -> Result<(), ProtectionFault> {
        let frame = matches!(e, SafeStackEntry::CrossDomain { .. });
        let r = self.push(e);
        match r {
            Ok(()) => {
                sink.record(&harbor_scope::Event::SafeStackPush { cycles, frame, ptr: self.ptr() })
            }
            Err(_) => {
                sink.record(&harbor_scope::Event::SafeStackOverflow { cycles, ptr: self.ptr() })
            }
        }
        r
    }

    /// [`SafeStack::pop`] with trace emission: a successful pop records a
    /// [`harbor_scope::Event::SafeStackPop`] with the post-pop pointer.
    ///
    /// # Errors
    ///
    /// Exactly as [`SafeStack::pop`].
    pub fn pop_traced(
        &mut self,
        cycles: u64,
        sink: &mut dyn harbor_scope::TraceSink,
    ) -> Result<SafeStackEntry, ProtectionFault> {
        let r = self.pop();
        if let Ok(e) = &r {
            sink.record(&harbor_scope::Event::SafeStackPop {
                cycles,
                frame: matches!(e, SafeStackEntry::CrossDomain { .. }),
                ptr: self.ptr(),
            });
        }
        r
    }

    /// Serialises the whole stack to bytes, bottom to top — the exact RAM
    /// image at [`SafeStack::base`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.used as usize);
        for e in &self.entries {
            out.extend_from_slice(&e.to_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_sizes_match_paper() {
        assert_eq!(SafeStackEntry::RetAddr(0).byte_len(), 2);
        assert_eq!(
            SafeStackEntry::CrossDomain { caller: DomainId::num(1), stack_bound: 0, ret_addr: 0 }
                .byte_len(),
            5,
            "the 5 bytes pushed in 5 cycles (Table 3)"
        );
    }

    #[test]
    fn push_pop_and_pointer() {
        let mut s = SafeStack::new(0x0200, 64);
        assert_eq!(s.ptr(), 0x0200);
        s.push(SafeStackEntry::RetAddr(0x1234)).unwrap();
        assert_eq!(s.ptr(), 0x0202);
        s.push(SafeStackEntry::CrossDomain {
            caller: DomainId::num(2),
            stack_bound: 0x0f00,
            ret_addr: 0x0456,
        })
        .unwrap();
        assert_eq!(s.ptr(), 0x0207);
        assert_eq!(s.depth(), 2);
        let top = s.pop().unwrap();
        assert!(matches!(top, SafeStackEntry::CrossDomain { stack_bound: 0x0f00, .. }));
        assert_eq!(s.pop().unwrap(), SafeStackEntry::RetAddr(0x1234));
        assert_eq!(s.pop(), Err(ProtectionFault::SafeStackUnderflow));
    }

    #[test]
    fn overflow_detected() {
        let mut s = SafeStack::new(0x0200, 5);
        s.push(SafeStackEntry::RetAddr(1)).unwrap();
        s.push(SafeStackEntry::RetAddr(2)).unwrap();
        assert_eq!(
            s.push(SafeStackEntry::RetAddr(3)),
            Err(ProtectionFault::SafeStackOverflow { ptr: 0x0204 })
        );
        assert_eq!(s.depth(), 2, "failed push leaves state intact");
    }

    #[test]
    fn byte_layout() {
        let mut s = SafeStack::new(0x0300, 32);
        s.push(SafeStackEntry::RetAddr(0xbbaa)).unwrap();
        s.push(SafeStackEntry::CrossDomain {
            caller: DomainId::num(3),
            stack_bound: 0x0fee,
            ret_addr: 0x1122,
        })
        .unwrap();
        assert_eq!(
            s.to_bytes(),
            vec![0xaa, 0xbb, 0x22, 0x11, 0xee, 0x0f, 3],
            "ret-addr little endian, then frame: ret, bound, caller"
        );
    }

    #[test]
    fn traced_push_pop_emit_and_match_untraced() {
        use harbor_scope::{Event, ScopeSink};
        let mut s = SafeStack::new(0x0300, 7);
        let mut sink = ScopeSink::stream();
        s.push_traced(SafeStackEntry::RetAddr(0x10), 1, &mut sink).unwrap();
        s.push_traced(
            SafeStackEntry::CrossDomain {
                caller: DomainId::num(1),
                stack_bound: 0xf00,
                ret_addr: 0x20,
            },
            2,
            &mut sink,
        )
        .unwrap();
        // Full: a further push overflows and reports the failed pointer.
        assert!(s.push_traced(SafeStackEntry::RetAddr(0x30), 3, &mut sink).is_err());
        let popped = s.pop_traced(4, &mut sink).unwrap();
        assert!(matches!(popped, SafeStackEntry::CrossDomain { .. }));
        assert_eq!(
            sink.events(),
            vec![
                Event::SafeStackPush { cycles: 1, frame: false, ptr: 0x0302 },
                Event::SafeStackPush { cycles: 2, frame: true, ptr: 0x0307 },
                Event::SafeStackOverflow { cycles: 3, ptr: 0x0307 },
                Event::SafeStackPop { cycles: 4, frame: true, ptr: 0x0302 },
            ]
        );
    }
}
