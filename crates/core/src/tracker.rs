//! The cross-domain state machine: domain tracking across calls and returns
//! (Section 3.2 of the paper).

use crate::domain::DomainId;
use crate::fault::ProtectionFault;
use crate::jumptable::JumpTableLayout;
use crate::safestack::{SafeStack, SafeStackEntry};

/// How the tracker resolved a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallResolution {
    /// An ordinary call within the current domain; the return address went
    /// to the safe stack at zero extra cost (bus steal).
    Local,
    /// A cross-domain call through the jump table: a 5-byte frame was
    /// pushed (5 stall cycles) and the active domain switched.
    CrossDomain {
        /// The domain now active.
        callee: DomainId,
        /// Jump-table entry index used.
        entry: u16,
    },
}

impl CallResolution {
    /// Stall cycles the hardware version charges (Table 3: 0 local, 5
    /// cross-domain).
    pub const fn hw_stall_cycles(&self) -> u8 {
        match self {
            CallResolution::Local => 0,
            CallResolution::CrossDomain { .. } => 5,
        }
    }
}

/// How the tracker resolved a return.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetResolution {
    /// Where execution resumes (word address).
    pub target: u16,
    /// Whether this popped a cross-domain frame (restoring domain + bound).
    pub cross_domain: bool,
}

impl RetResolution {
    /// Stall cycles the hardware version charges (Table 3: 0 local, 5
    /// cross-domain).
    pub const fn hw_stall_cycles(&self) -> u8 {
        if self.cross_domain {
            5
        } else {
            0
        }
    }
}

/// Golden model of the UMPU domain tracker + safe-stack unit pair.
///
/// Tracks the active domain and stack bound, arbitrates every call/return,
/// and owns the [`SafeStack`]. The maximum cross-domain nesting depth models
/// the small hardware LIFO inside the tracker state machine (a modelling
/// choice documented in `DESIGN.md`; the paper's frames are 5 bytes and
/// carry no frame-link, so the hardware needs *some* way to recognise a
/// cross-domain return — we give it a bounded depth memory).
///
/// # Example
///
/// ```
/// use harbor::{DomainId, DomainTracker, JumpTableLayout, SafeStack};
///
/// # fn main() -> Result<(), harbor::ProtectionFault> {
/// let jt = JumpTableLayout::new(0x0800, 8);
/// let mut t = DomainTracker::new(jt, SafeStack::new(0x0d00, 256), 0x0fff);
///
/// // A call into domain 2's jump table switches domains and latches the
/// // stack bound from SP.
/// t.on_call(jt.entry_addr(DomainId::new(2)?, 0), 0x0042, 0x0f80)?;
/// assert_eq!(t.current_domain(), DomainId::new(2)?);
/// assert_eq!(t.stack_bound(), 0x0f80);
///
/// // The matching return restores the caller's context.
/// let ret = t.on_ret()?;
/// assert_eq!(ret.target, 0x0042);
/// assert!(t.current_domain().is_trusted());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainTracker {
    jt: JumpTableLayout,
    safe_stack: SafeStack,
    current: DomainId,
    stack_bound: u16,
    max_xdom_depth: u16,
    xdom_depth: u16,
}

impl DomainTracker {
    /// Default cross-domain nesting capacity of the hardware state machine.
    pub const DEFAULT_MAX_DEPTH: u16 = 16;

    /// Creates a tracker starting in the trusted domain with the given
    /// initial stack bound (normally `RAMEND`).
    pub fn new(jt: JumpTableLayout, safe_stack: SafeStack, initial_bound: u16) -> DomainTracker {
        DomainTracker {
            jt,
            safe_stack,
            current: DomainId::TRUSTED,
            stack_bound: initial_bound,
            max_xdom_depth: Self::DEFAULT_MAX_DEPTH,
            xdom_depth: 0,
        }
    }

    /// Overrides the cross-domain nesting capacity.
    pub fn with_max_depth(mut self, depth: u16) -> DomainTracker {
        self.max_xdom_depth = depth;
        self
    }

    /// The active domain (the paper's status-register field).
    pub const fn current_domain(&self) -> DomainId {
        self.current
    }

    /// The active stack bound.
    pub const fn stack_bound(&self) -> u16 {
        self.stack_bound
    }

    /// The jump-table geometry.
    pub const fn jump_table(&self) -> &JumpTableLayout {
        &self.jt
    }

    /// The safe stack.
    pub const fn safe_stack(&self) -> &SafeStack {
        &self.safe_stack
    }

    /// Current cross-domain nesting depth.
    pub const fn cross_domain_depth(&self) -> u16 {
        self.xdom_depth
    }

    /// Forces the active domain (kernel boot / test setup only).
    pub fn set_current_domain(&mut self, d: DomainId) {
        self.current = d;
    }

    /// Arbitrates a call to word address `target` with return address
    /// `ret_addr` while the stack pointer is `sp`.
    ///
    /// A target below the jump-table base is a local call: the return
    /// address is pushed to the safe stack. A target inside the tables is a
    /// cross-domain call: the caller's `(domain, stack bound, return
    /// address)` frame is pushed, the callee becomes active, and the stack
    /// bound is latched from `sp`.
    ///
    /// # Errors
    ///
    /// [`ProtectionFault::JumpTableOverflow`] past the last table,
    /// [`ProtectionFault::SafeStackOverflow`] if the safe stack is full,
    /// [`ProtectionFault::TrackerDepthExceeded`] past the nesting capacity.
    pub fn on_call(
        &mut self,
        target: u16,
        ret_addr: u16,
        sp: u16,
    ) -> Result<CallResolution, ProtectionFault> {
        match self.jt.classify(target)? {
            None => {
                self.safe_stack.push(SafeStackEntry::RetAddr(ret_addr))?;
                Ok(CallResolution::Local)
            }
            Some((callee, entry)) => {
                if self.xdom_depth + 1 > self.max_xdom_depth {
                    return Err(ProtectionFault::TrackerDepthExceeded {
                        depth: self.xdom_depth + 1,
                    });
                }
                self.safe_stack.push(SafeStackEntry::CrossDomain {
                    caller: self.current,
                    stack_bound: self.stack_bound,
                    ret_addr,
                })?;
                self.xdom_depth += 1;
                self.current = callee;
                self.stack_bound = sp;
                Ok(CallResolution::CrossDomain { callee, entry })
            }
        }
    }

    /// [`DomainTracker::on_call`] with trace emission. A local call records
    /// a plain [`harbor_scope::Event::SafeStackPush`]; a cross-domain call
    /// records the [`harbor_scope::Event::JumpTableDispatch`], the frame
    /// push and the [`harbor_scope::Event::CrossDomainCall`] edge with the
    /// Table-3 stall. The arbitration itself is byte-for-byte the untraced
    /// method.
    ///
    /// # Errors
    ///
    /// Exactly as [`DomainTracker::on_call`].
    pub fn on_call_traced(
        &mut self,
        target: u16,
        ret_addr: u16,
        sp: u16,
        cycles: u64,
        sink: &mut dyn harbor_scope::TraceSink,
    ) -> Result<CallResolution, ProtectionFault> {
        let caller = self.current.index();
        let r = self.on_call(target, ret_addr, sp);
        match &r {
            Ok(CallResolution::Local) => sink.record(&harbor_scope::Event::SafeStackPush {
                cycles,
                frame: false,
                ptr: self.safe_stack.ptr(),
            }),
            Ok(CallResolution::CrossDomain { callee, entry }) => {
                sink.record(&harbor_scope::Event::JumpTableDispatch {
                    cycles,
                    domain: callee.index(),
                    entry: *entry,
                    target,
                });
                sink.record(&harbor_scope::Event::SafeStackPush {
                    cycles,
                    frame: true,
                    ptr: self.safe_stack.ptr(),
                });
                sink.record(&harbor_scope::Event::CrossDomainCall {
                    cycles,
                    caller,
                    callee: callee.index(),
                    target,
                    stall: 5,
                });
            }
            Err(_) => {}
        }
        r
    }

    /// Arbitrates a `RET`: pops the top safe-stack entry. A cross-domain
    /// frame restores the caller's domain and stack bound.
    ///
    /// # Errors
    ///
    /// [`ProtectionFault::SafeStackUnderflow`] on an empty safe stack.
    pub fn on_ret(&mut self) -> Result<RetResolution, ProtectionFault> {
        match self.safe_stack.pop()? {
            SafeStackEntry::RetAddr(target) => Ok(RetResolution { target, cross_domain: false }),
            SafeStackEntry::CrossDomain { caller, stack_bound, ret_addr } => {
                self.current = caller;
                self.stack_bound = stack_bound;
                self.xdom_depth -= 1;
                Ok(RetResolution { target: ret_addr, cross_domain: true })
            }
        }
    }

    /// [`DomainTracker::on_ret`] with trace emission: the pop is recorded
    /// as a [`harbor_scope::Event::SafeStackPop`], and unwinding a
    /// cross-domain frame additionally records the
    /// [`harbor_scope::Event::CrossDomainRet`] edge with the Table-3 stall.
    ///
    /// # Errors
    ///
    /// Exactly as [`DomainTracker::on_ret`].
    pub fn on_ret_traced(
        &mut self,
        cycles: u64,
        sink: &mut dyn harbor_scope::TraceSink,
    ) -> Result<RetResolution, ProtectionFault> {
        let from = self.current.index();
        let r = self.on_ret();
        if let Ok(res) = &r {
            sink.record(&harbor_scope::Event::SafeStackPop {
                cycles,
                frame: res.cross_domain,
                ptr: self.safe_stack.ptr(),
            });
            if res.cross_domain {
                sink.record(&harbor_scope::Event::CrossDomainRet {
                    cycles,
                    from,
                    to: self.current.index(),
                    target: res.target,
                    stall: 5,
                });
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> DomainTracker {
        let jt = JumpTableLayout::new(0x0800, 8);
        let ss = SafeStack::new(0x0200, 256);
        DomainTracker::new(jt, ss, 0x0fff)
    }

    #[test]
    fn local_call_pushes_ret_addr_only() {
        let mut t = tracker();
        let r = t.on_call(0x0100, 0x0042, 0x0f80).unwrap();
        assert_eq!(r, CallResolution::Local);
        assert_eq!(r.hw_stall_cycles(), 0, "Table 3: save ret addr = 0 cycles");
        assert_eq!(t.current_domain(), DomainId::TRUSTED);
        assert_eq!(t.stack_bound(), 0x0fff, "bound unchanged on local call");
        let ret = t.on_ret().unwrap();
        assert_eq!(ret.target, 0x0042);
        assert!(!ret.cross_domain);
    }

    #[test]
    fn cross_domain_call_switches_and_latches_bound() {
        let mut t = tracker();
        // Call into domain 2's jump table (entry 5).
        let target = 0x0800 + 2 * 128 + 5;
        let r = t.on_call(target, 0x0042, 0x0f80).unwrap();
        assert_eq!(r, CallResolution::CrossDomain { callee: DomainId::num(2), entry: 5 });
        assert_eq!(r.hw_stall_cycles(), 5, "Table 3: cross-domain call = 5 cycles");
        assert_eq!(t.current_domain(), DomainId::num(2));
        assert_eq!(t.stack_bound(), 0x0f80, "bound latched from SP");
        assert_eq!(t.cross_domain_depth(), 1);

        let ret = t.on_ret().unwrap();
        assert!(ret.cross_domain);
        assert_eq!(ret.hw_stall_cycles(), 5);
        assert_eq!(ret.target, 0x0042);
        assert_eq!(t.current_domain(), DomainId::TRUSTED);
        assert_eq!(t.stack_bound(), 0x0fff, "bound restored");
        assert_eq!(t.cross_domain_depth(), 0);
    }

    #[test]
    fn chained_cross_domain_calls_restore_in_order() {
        // Paper: "cross domain calls can be chained: domain A calls domain B
        // which in turn calls domain C."
        let mut t = tracker();
        t.on_call(0x0800, 0x0010, 0x0fe0).unwrap(); // trusted -> dom0
        t.on_call(0x0880, 0x0020, 0x0fc0).unwrap(); // dom0 -> dom1
        t.on_call(0x0900, 0x0030, 0x0fa0).unwrap(); // dom1 -> dom2
        assert_eq!(t.current_domain(), DomainId::num(2));
        assert_eq!(t.stack_bound(), 0x0fa0);

        let r = t.on_ret().unwrap();
        assert_eq!(
            (r.target, t.current_domain(), t.stack_bound()),
            (0x0030, DomainId::num(1), 0x0fc0)
        );
        let r = t.on_ret().unwrap();
        assert_eq!(
            (r.target, t.current_domain(), t.stack_bound()),
            (0x0020, DomainId::num(0), 0x0fe0)
        );
        let r = t.on_ret().unwrap();
        assert_eq!(
            (r.target, t.current_domain(), t.stack_bound()),
            (0x0010, DomainId::TRUSTED, 0x0fff)
        );
    }

    #[test]
    fn mixed_local_and_cross_calls_interleave() {
        let mut t = tracker();
        t.on_call(0x0800, 0x0010, 0x0fe0).unwrap(); // -> dom0
        t.on_call(0x0123, 0x0020, 0x0fd0).unwrap(); // local in dom0
        assert_eq!(t.current_domain(), DomainId::num(0));
        let r = t.on_ret().unwrap();
        assert!(!r.cross_domain);
        assert_eq!(t.current_domain(), DomainId::num(0), "local ret keeps domain");
        let r = t.on_ret().unwrap();
        assert!(r.cross_domain);
        assert_eq!(t.current_domain(), DomainId::TRUSTED);
    }

    #[test]
    fn jump_table_overflow_faults() {
        let mut t = tracker();
        let past_end = 0x0800 + 8 * 128;
        assert!(matches!(
            t.on_call(past_end, 0, 0),
            Err(ProtectionFault::JumpTableOverflow { .. })
        ));
    }

    #[test]
    fn ret_on_empty_safe_stack_underflows() {
        let mut t = tracker();
        assert_eq!(t.on_ret(), Err(ProtectionFault::SafeStackUnderflow));
    }

    #[test]
    fn depth_limit() {
        let jt = JumpTableLayout::new(0x0800, 8);
        let ss = SafeStack::new(0x0200, 1024);
        let mut t = DomainTracker::new(jt, ss, 0x0fff).with_max_depth(2);
        t.on_call(0x0800, 0, 0x0fe0).unwrap();
        t.on_call(0x0880, 0, 0x0fd0).unwrap();
        assert!(matches!(
            t.on_call(0x0900, 0, 0x0fc0),
            Err(ProtectionFault::TrackerDepthExceeded { depth: 3 })
        ));
    }

    #[test]
    fn traced_call_ret_emit_edges_and_match_untraced() {
        use harbor_scope::{Event, EventKind, ScopeSink};
        let mut traced = tracker();
        let mut plain = tracker();
        let mut sink = ScopeSink::stream();

        // Local call: push only.
        let r1 = traced.on_call_traced(0x0100, 0x0042, 0x0f80, 5, &mut sink).unwrap();
        assert_eq!(r1, plain.on_call(0x0100, 0x0042, 0x0f80).unwrap());
        // Cross-domain call into domain 2's table, entry 3.
        let r2 = traced.on_call_traced(0x0903, 0x0050, 0x0f70, 9, &mut sink).unwrap();
        assert_eq!(r2, plain.on_call(0x0903, 0x0050, 0x0f70).unwrap());
        // Unwind both.
        assert_eq!(traced.on_ret_traced(14, &mut sink).unwrap(), plain.on_ret().unwrap());
        assert_eq!(traced.on_ret_traced(15, &mut sink).unwrap(), plain.on_ret().unwrap());
        assert_eq!(traced, plain, "tracing must not change tracker state");

        let evs = sink.events();
        assert_eq!(
            evs.iter().map(|e| e.kind()).collect::<Vec<_>>(),
            vec![
                EventKind::SafeStackPush,
                EventKind::JumpTableDispatch,
                EventKind::SafeStackPush,
                EventKind::CrossDomainCall,
                EventKind::SafeStackPop,
                EventKind::CrossDomainRet,
                EventKind::SafeStackPop,
            ]
        );
        assert!(evs.contains(&Event::CrossDomainCall {
            cycles: 9,
            caller: 7,
            callee: 2,
            target: 0x0903,
            stall: 5
        }));
        assert!(evs.contains(&Event::CrossDomainRet {
            cycles: 14,
            from: 2,
            to: 7,
            target: 0x0050,
            stall: 5
        }));
    }
}
