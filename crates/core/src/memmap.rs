//! The memory map: per-block ownership and layout records for the protected
//! address range (Section 2 of the paper).

use crate::domain::DomainId;
use crate::fault::ProtectionFault;
use std::fmt;

/// A power-of-two protection block size in bytes (`2..=256`; the paper's
/// running example and the kernel default is 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(
    feature = "serde",
    derive(serde::Serialize, serde::Deserialize),
    serde(into = "u16", try_from = "u16")
)]
pub struct BlockSize(u8); // stored as log2

impl TryFrom<u16> for BlockSize {
    type Error = ProtectionFault;

    fn try_from(bytes: u16) -> Result<BlockSize, ProtectionFault> {
        BlockSize::new(bytes)
    }
}

impl From<BlockSize> for u16 {
    fn from(b: BlockSize) -> u16 {
        b.bytes()
    }
}

impl BlockSize {
    /// The paper's default block size, 8 bytes.
    pub const DEFAULT: BlockSize = BlockSize(3);

    /// Creates a block size from a byte count.
    ///
    /// # Errors
    ///
    /// [`ProtectionFault::BadSegment`] if `bytes` is not a power of two in
    /// `2..=256`.
    pub const fn new(bytes: u16) -> Result<BlockSize, ProtectionFault> {
        if bytes.is_power_of_two() && bytes >= 2 && bytes <= 256 {
            Ok(BlockSize(bytes.trailing_zeros() as u8))
        } else {
            Err(ProtectionFault::BadSegment { addr: 0, len: bytes })
        }
    }

    /// The block size in bytes.
    pub const fn bytes(self) -> u16 {
        1 << self.0
    }

    /// log2 of the block size (the shift used in address translation).
    pub const fn log2(self) -> u8 {
        self.0
    }
}

impl Default for BlockSize {
    fn default() -> Self {
        BlockSize::DEFAULT
    }
}

impl fmt::Display for BlockSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} B", self.bytes())
    }
}

/// How many domains the map distinguishes, which sets the record width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DomainMode {
    /// Kernel/user protection: 2-bit records (owner bit + start bit). The
    /// only user domain is domain 0.
    Two,
    /// Full multi-domain protection: 4-bit records per Table 1 of the paper
    /// (3-bit owner + start bit, owner 7 = trusted/free).
    Multi,
}

impl DomainMode {
    /// Record width in bits (2 or 4).
    pub const fn bits_per_record(self) -> u8 {
        match self {
            DomainMode::Two => 2,
            DomainMode::Multi => 4,
        }
    }

    /// Records packed per memory-map byte (4 or 2).
    pub const fn records_per_byte(self) -> u8 {
        8 / self.bits_per_record()
    }
}

/// One memory-map record: who owns a block and whether it begins a segment.
///
/// The paper's Table 1 encoding: `owner << 1 | start`, with owner 7 meaning
/// trusted-or-free (`1111` = free / start of trusted segment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Record {
    /// Owning domain ([`DomainId::TRUSTED`] also means "free").
    pub owner: DomainId,
    /// Whether this block starts a logical segment of allocation.
    pub start: bool,
}

impl Record {
    /// The record marking a free block (`1111`).
    pub const FREE: Record = Record { owner: DomainId::TRUSTED, start: true };

    /// Encodes to the 4-bit form of Table 1.
    pub const fn to_nibble(self) -> u8 {
        (self.owner.index() << 1) | self.start as u8
    }

    /// Decodes from the 4-bit form of Table 1.
    pub const fn from_nibble(n: u8) -> Record {
        Record { owner: DomainId::num((n >> 1) & 0x7), start: n & 1 != 0 }
    }

    /// Encodes to the 2-bit two-domain form (owner bit: 1 = trusted/free,
    /// 0 = user domain 0).
    pub const fn to_two_bit(self) -> u8 {
        let owner_bit = if self.owner.is_trusted() { 1 } else { 0 };
        (owner_bit << 1) | self.start as u8
    }

    /// Decodes from the 2-bit two-domain form.
    pub const fn from_two_bit(n: u8) -> Record {
        Record {
            owner: if (n >> 1) & 1 != 0 { DomainId::TRUSTED } else { DomainId::num(0) },
            start: n & 1 != 0,
        }
    }
}

/// Result of translating a write address to its memory-map record location
/// (Figure 4b of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MapLookup {
    /// Block number within the protected range.
    pub block: u16,
    /// Byte index into the memory-map table.
    pub byte_index: u16,
    /// Bit shift of the record within that byte (even blocks at shift 0).
    pub shift: u8,
}

/// Memory-map geometry: protected range, block size and domain mode.
///
/// Mirrors the paper's configuration registers: `mem_prot_bot`,
/// `mem_prot_top` and `mem_map_config` (block size + domain count).
#[cfg_attr(
    feature = "serde",
    derive(serde::Serialize, serde::Deserialize),
    serde(try_from = "RawMemMapConfig", into = "RawMemMapConfig")
)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemMapConfig {
    block_size: BlockSize,
    mode: DomainMode,
    prot_bottom: u16,
    prot_top: u16, // exclusive
}

impl MemMapConfig {
    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// [`ProtectionFault::BadSegment`] if the bounds are not block-aligned
    /// or `bottom >= top`.
    pub fn new(
        mode: DomainMode,
        block_size: BlockSize,
        prot_bottom: u16,
        prot_top: u16,
    ) -> Result<MemMapConfig, ProtectionFault> {
        let bs = block_size.bytes();
        if prot_bottom >= prot_top
            || !prot_bottom.is_multiple_of(bs)
            || !prot_top.is_multiple_of(bs)
        {
            return Err(ProtectionFault::BadSegment {
                addr: prot_bottom,
                len: prot_top.wrapping_sub(prot_bottom),
            });
        }
        Ok(MemMapConfig { block_size, mode, prot_bottom, prot_top })
    }

    /// Multi-domain protection with the default 8-byte blocks.
    ///
    /// # Errors
    ///
    /// See [`MemMapConfig::new`].
    pub fn multi_domain(prot_bottom: u16, prot_top: u16) -> Result<MemMapConfig, ProtectionFault> {
        MemMapConfig::new(DomainMode::Multi, BlockSize::DEFAULT, prot_bottom, prot_top)
    }

    /// Two-domain (kernel/user) protection with the default 8-byte blocks.
    ///
    /// # Errors
    ///
    /// See [`MemMapConfig::new`].
    pub fn two_domain(prot_bottom: u16, prot_top: u16) -> Result<MemMapConfig, ProtectionFault> {
        MemMapConfig::new(DomainMode::Two, BlockSize::DEFAULT, prot_bottom, prot_top)
    }

    /// The block size.
    pub const fn block_size(&self) -> BlockSize {
        self.block_size
    }

    /// The domain mode.
    pub const fn mode(&self) -> DomainMode {
        self.mode
    }

    /// Inclusive lower bound of the protected range (`mem_prot_bot`).
    pub const fn prot_bottom(&self) -> u16 {
        self.prot_bottom
    }

    /// Exclusive upper bound of the protected range (`mem_prot_top`).
    pub const fn prot_top(&self) -> u16 {
        self.prot_top
    }

    /// Whether `addr` falls in the protected range.
    pub const fn contains(&self, addr: u16) -> bool {
        addr >= self.prot_bottom && addr < self.prot_top
    }

    /// Number of protection blocks covered.
    pub const fn num_blocks(&self) -> u16 {
        (self.prot_top - self.prot_bottom) >> self.block_size.log2()
    }

    /// Size of the memory-map table in bytes — the RAM cost of protection
    /// (Table 5 / Section 6.2 of the paper).
    pub const fn map_size_bytes(&self) -> u16 {
        let per = self.mode.records_per_byte() as u16;
        self.num_blocks().div_ceil(per)
    }

    /// Translates a protected address to its record location (Figure 4b).
    ///
    /// # Errors
    ///
    /// [`ProtectionFault::OutOfProtectedRange`] outside the range.
    pub fn lookup(&self, addr: u16) -> Result<MapLookup, ProtectionFault> {
        if !self.contains(addr) {
            return Err(ProtectionFault::OutOfProtectedRange { addr });
        }
        let offset = addr - self.prot_bottom;
        let block = offset >> self.block_size.log2();
        let per = self.mode.records_per_byte() as u16;
        let bits = self.mode.bits_per_record();
        Ok(MapLookup { block, byte_index: block / per, shift: (block % per) as u8 * bits })
    }

    /// First data address of block number `block`.
    pub const fn block_addr(&self, block: u16) -> u16 {
        self.prot_bottom + (block << self.block_size.log2())
    }
}

/// Serde-facing mirror of [`MemMapConfig`] (validates on deserialize).
#[cfg(feature = "serde")]
#[derive(serde::Serialize, serde::Deserialize)]
struct RawMemMapConfig {
    mode: DomainMode,
    block_size: BlockSize,
    prot_bottom: u16,
    prot_top: u16,
}

#[cfg(feature = "serde")]
impl TryFrom<RawMemMapConfig> for MemMapConfig {
    type Error = ProtectionFault;

    fn try_from(r: RawMemMapConfig) -> Result<MemMapConfig, ProtectionFault> {
        MemMapConfig::new(r.mode, r.block_size, r.prot_bottom, r.prot_top)
    }
}

#[cfg(feature = "serde")]
impl From<MemMapConfig> for RawMemMapConfig {
    fn from(c: MemMapConfig) -> RawMemMapConfig {
        RawMemMapConfig {
            mode: c.mode,
            block_size: c.block_size,
            prot_bottom: c.prot_bottom,
            prot_top: c.prot_top,
        }
    }
}

/// Serde-facing mirror of [`MemoryMap`] (validates the table length).
#[cfg(feature = "serde")]
#[derive(serde::Serialize, serde::Deserialize)]
struct RawMemoryMap {
    cfg: MemMapConfig,
    bytes: Vec<u8>,
}

#[cfg(feature = "serde")]
impl TryFrom<RawMemoryMap> for MemoryMap {
    type Error = ProtectionFault;

    fn try_from(r: RawMemoryMap) -> Result<MemoryMap, ProtectionFault> {
        if r.bytes.len() != r.cfg.map_size_bytes() as usize {
            return Err(ProtectionFault::BadSegment {
                addr: r.cfg.prot_bottom(),
                len: r.bytes.len() as u16,
            });
        }
        Ok(MemoryMap { cfg: r.cfg, bytes: r.bytes })
    }
}

#[cfg(feature = "serde")]
impl From<MemoryMap> for RawMemoryMap {
    fn from(m: MemoryMap) -> RawMemoryMap {
        RawMemoryMap { cfg: m.cfg, bytes: m.bytes }
    }
}

/// The memory map itself: the packed record table plus its geometry.
///
/// The kernel keeps this table in trusted RAM; the MMC hardware (or the SFI
/// check routine) consults it on every store. This host-level model owns its
/// bytes; [`MemoryMap::as_bytes`] exposes them so tests can compare against
/// the table maintained in simulated kernel RAM.
///
/// # Example
///
/// ```
/// use harbor::{DomainId, MemMapConfig, MemoryMap};
///
/// # fn main() -> Result<(), harbor::ProtectionFault> {
/// let mut map = MemoryMap::new(MemMapConfig::multi_domain(0x0200, 0x0400)?);
/// let app = DomainId::new(2)?;
/// map.set_segment(app, 0x0200, 24)?;            // 3 blocks
/// assert!(map.check_write(app, 0x0210).is_ok());
/// assert_eq!(map.segment_blocks(0x0200)?, 3);
/// map.change_own(app, 0x0200, DomainId::new(5)?)?;
/// assert!(map.check_write(app, 0x0210).is_err(), "old owner locked out");
/// # Ok(())
/// # }
/// ```
#[cfg_attr(
    feature = "serde",
    derive(serde::Serialize, serde::Deserialize),
    serde(try_from = "RawMemoryMap", into = "RawMemoryMap")
)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryMap {
    cfg: MemMapConfig,
    bytes: Vec<u8>,
}

impl MemoryMap {
    /// Creates a map with every block free.
    pub fn new(cfg: MemMapConfig) -> MemoryMap {
        // Free is `1111` (multi) / `11` (two): all-ones either way.
        MemoryMap { cfg, bytes: vec![0xff; cfg.map_size_bytes() as usize] }
    }

    /// Rebuilds a map from raw table bytes (e.g. read out of simulated RAM).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not exactly [`MemMapConfig::map_size_bytes`] long.
    pub fn from_raw(cfg: MemMapConfig, bytes: Vec<u8>) -> MemoryMap {
        assert_eq!(bytes.len(), cfg.map_size_bytes() as usize, "raw table size mismatch");
        MemoryMap { cfg, bytes }
    }

    /// The geometry.
    pub const fn config(&self) -> &MemMapConfig {
        &self.cfg
    }

    /// The packed record table.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Reads the record for block number `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range (internal indexing error).
    pub fn record(&self, block: u16) -> Record {
        let per = self.cfg.mode.records_per_byte() as u16;
        let bits = self.cfg.mode.bits_per_record();
        let byte = self.bytes[(block / per) as usize];
        let raw = (byte >> ((block % per) as u8 * bits)) & ((1 << bits) - 1);
        match self.cfg.mode {
            DomainMode::Two => Record::from_two_bit(raw),
            DomainMode::Multi => Record::from_nibble(raw),
        }
    }

    fn set_record(&mut self, block: u16, rec: Record) {
        let per = self.cfg.mode.records_per_byte() as u16;
        let bits = self.cfg.mode.bits_per_record();
        let raw = match self.cfg.mode {
            DomainMode::Two => rec.to_two_bit(),
            DomainMode::Multi => rec.to_nibble(),
        };
        let shift = (block % per) as u8 * bits;
        let mask = ((1u8 << bits) - 1) << shift;
        let b = &mut self.bytes[(block / per) as usize];
        *b = (*b & !mask) | (raw << shift);
    }

    /// Record for the block containing `addr`.
    ///
    /// # Errors
    ///
    /// [`ProtectionFault::OutOfProtectedRange`] outside the range.
    pub fn record_at(&self, addr: u16) -> Result<Record, ProtectionFault> {
        Ok(self.record(self.cfg.lookup(addr)?.block))
    }

    /// Owner of the block containing `addr` ([`DomainId::TRUSTED`] for free
    /// blocks).
    ///
    /// # Errors
    ///
    /// [`ProtectionFault::OutOfProtectedRange`] outside the range.
    pub fn owner_of(&self, addr: u16) -> Result<DomainId, ProtectionFault> {
        Ok(self.record_at(addr)?.owner)
    }

    /// Whether `addr`'s block starts a logical segment.
    ///
    /// # Errors
    ///
    /// [`ProtectionFault::OutOfProtectedRange`] outside the range.
    pub fn is_segment_start(&self, addr: u16) -> Result<bool, ProtectionFault> {
        Ok(self.record_at(addr)?.start)
    }

    /// The memory-map checker's core rule: may `domain` store to `addr`?
    /// The trusted domain may always write.
    ///
    /// # Errors
    ///
    /// [`ProtectionFault::MemMapViolation`] if the block belongs to another
    /// domain, [`ProtectionFault::OutOfProtectedRange`] outside the range.
    pub fn check_write(&self, domain: DomainId, addr: u16) -> Result<(), ProtectionFault> {
        if domain.is_trusted() {
            return Ok(());
        }
        let owner = self.owner_of(addr)?;
        if owner == domain {
            Ok(())
        } else {
            Err(ProtectionFault::MemMapViolation {
                addr,
                domain: domain.index(),
                owner: owner.index(),
            })
        }
    }

    /// [`MemoryMap::check_write`] with trace emission: the decision is
    /// recorded as a [`harbor_scope::Event::MemMapCheck`] stamped with
    /// `cycles` (stall 1, the hardware checker's extra bus cycle). The
    /// arbitration itself is byte-for-byte the untraced method.
    ///
    /// # Errors
    ///
    /// Exactly as [`MemoryMap::check_write`].
    pub fn check_write_traced(
        &self,
        domain: DomainId,
        addr: u16,
        cycles: u64,
        sink: &mut dyn harbor_scope::TraceSink,
    ) -> Result<(), ProtectionFault> {
        let r = self.check_write(domain, addr);
        sink.record(&harbor_scope::Event::MemMapCheck {
            cycles,
            domain: domain.index(),
            addr,
            granted: r.is_ok(),
            stall: 1,
        });
        r
    }

    /// Marks `len` bytes starting at block-aligned `addr` as a segment owned
    /// by `owner` (the first block gets the start flag). `len` is rounded up
    /// to whole blocks.
    ///
    /// # Errors
    ///
    /// [`ProtectionFault::BadSegment`] for unaligned/zero/out-of-range
    /// segments; [`ProtectionFault::InvalidDomain`] if `owner` is a user
    /// domain other than 0 in two-domain mode.
    pub fn set_segment(
        &mut self,
        owner: DomainId,
        addr: u16,
        len: u16,
    ) -> Result<(), ProtectionFault> {
        let blocks = self.segment_block_range(addr, len)?;
        if self.cfg.mode == DomainMode::Two && !owner.is_trusted() && owner.index() != 0 {
            return Err(ProtectionFault::InvalidDomain { id: owner.index() });
        }
        for (i, block) in blocks.enumerate() {
            self.set_record(block, Record { owner, start: i == 0 });
        }
        Ok(())
    }

    /// Frees the segment starting at `addr`, enforcing the paper's ownership
    /// rule: only the block owner (or the trusted domain) may free it.
    /// Returns the number of blocks freed.
    ///
    /// # Errors
    ///
    /// [`ProtectionFault::NotOwner`] if `requester` does not own the
    /// segment; [`ProtectionFault::BadSegment`] if `addr` is not a segment
    /// start.
    pub fn free_segment(&mut self, requester: DomainId, addr: u16) -> Result<u16, ProtectionFault> {
        let blocks = self.owned_segment(requester, addr)?;
        let n = blocks.len() as u16;
        for b in blocks {
            self.set_record(b, Record::FREE);
        }
        Ok(n)
    }

    /// Transfers ownership of the segment starting at `addr` to `new_owner`,
    /// enforcing that only the current owner (or trusted) may transfer.
    /// Returns the number of blocks transferred.
    ///
    /// # Errors
    ///
    /// As [`MemoryMap::free_segment`], plus [`ProtectionFault::InvalidDomain`]
    /// for an illegal `new_owner` in two-domain mode.
    pub fn change_own(
        &mut self,
        requester: DomainId,
        addr: u16,
        new_owner: DomainId,
    ) -> Result<u16, ProtectionFault> {
        if self.cfg.mode == DomainMode::Two && !new_owner.is_trusted() && new_owner.index() != 0 {
            return Err(ProtectionFault::InvalidDomain { id: new_owner.index() });
        }
        let blocks = self.owned_segment(requester, addr)?;
        let n = blocks.len() as u16;
        for (i, b) in blocks.into_iter().enumerate() {
            self.set_record(b, Record { owner: new_owner, start: i == 0 });
        }
        Ok(n)
    }

    /// Length in blocks of the segment starting at `addr` (a start block
    /// followed by its continuation blocks).
    ///
    /// # Errors
    ///
    /// [`ProtectionFault::BadSegment`] if `addr` is not a segment start.
    pub fn segment_blocks(&self, addr: u16) -> Result<u16, ProtectionFault> {
        Ok(self.collect_segment(addr)?.len() as u16)
    }

    /// Frees **every** block owned by `owner` (the kernel's cleanup when a
    /// module is unloaded) and returns the segments reclaimed as
    /// `(start address, blocks)` pairs.
    ///
    /// A no-op for the trusted domain (its records also encode "free", and
    /// kernel memory is never bulk-reclaimed).
    pub fn free_all_owned(&mut self, owner: DomainId) -> Vec<(u16, u16)> {
        if owner.is_trusted() {
            return Vec::new();
        }
        let mut reclaimed = Vec::new();
        let total = self.cfg.num_blocks();
        let mut b = 0u16;
        while b < total {
            let rec = self.record(b);
            if rec.owner == owner && rec.start {
                let addr = self.cfg.block_addr(b);
                let n = self.free_segment(DomainId::TRUSTED, addr).expect("start block frees");
                reclaimed.push((addr, n));
                b += n;
            } else {
                b += 1;
            }
        }
        reclaimed
    }

    fn owned_segment(&self, requester: DomainId, addr: u16) -> Result<Vec<u16>, ProtectionFault> {
        let blocks = self.collect_segment(addr)?;
        let owner = self.record(blocks[0]).owner;
        if requester.is_trusted() || owner == requester {
            Ok(blocks)
        } else {
            Err(ProtectionFault::NotOwner { addr, domain: requester.index(), owner: owner.index() })
        }
    }

    fn collect_segment(&self, addr: u16) -> Result<Vec<u16>, ProtectionFault> {
        let first = self.cfg.lookup(addr)?.block;
        let rec = self.record(first);
        if !rec.start {
            return Err(ProtectionFault::BadSegment { addr, len: 0 });
        }
        let mut blocks = vec![first];
        let total = self.cfg.num_blocks();
        let mut b = first + 1;
        while b < total {
            let r = self.record(b);
            if r.start || r.owner != rec.owner {
                break;
            }
            blocks.push(b);
            b += 1;
        }
        Ok(blocks)
    }

    fn segment_block_range(
        &self,
        addr: u16,
        len: u16,
    ) -> Result<std::ops::Range<u16>, ProtectionFault> {
        let bs = self.cfg.block_size.bytes();
        if len == 0 || !addr.is_multiple_of(bs) {
            return Err(ProtectionFault::BadSegment { addr, len });
        }
        let first = self.cfg.lookup(addr)?.block;
        let nblocks = len.div_ceil(bs);
        let last = first + nblocks - 1;
        if last >= self.cfg.num_blocks() {
            return Err(ProtectionFault::BadSegment { addr, len });
        }
        Ok(first..first + nblocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MemMapConfig {
        MemMapConfig::multi_domain(0x0100, 0x0200).unwrap()
    }

    #[test]
    fn block_size_validation() {
        assert_eq!(BlockSize::new(8).unwrap().bytes(), 8);
        assert_eq!(BlockSize::new(8).unwrap().log2(), 3);
        assert_eq!(BlockSize::new(256).unwrap().bytes(), 256);
        assert!(BlockSize::new(0).is_err());
        assert!(BlockSize::new(1).is_err(), "1-byte blocks are not supported");
        assert!(BlockSize::new(12).is_err(), "non-power-of-two");
        assert!(BlockSize::new(512).is_err());
    }

    #[test]
    fn table1_nibble_encoding() {
        // 1111 = free / start of trusted.
        assert_eq!(Record::FREE.to_nibble(), 0b1111);
        // 1110 = later portion of trusted.
        assert_eq!(Record { owner: DomainId::TRUSTED, start: false }.to_nibble(), 0b1110);
        // xxx1 = start of domain segment.
        let d3 = DomainId::num(3);
        assert_eq!(Record { owner: d3, start: true }.to_nibble(), 0b0111);
        assert_eq!(Record { owner: d3, start: false }.to_nibble(), 0b0110);
        for n in 0..16u8 {
            assert_eq!(Record::from_nibble(n).to_nibble(), n, "nibble {n} round-trips");
        }
        for n in 0..4u8 {
            assert_eq!(Record::from_two_bit(n).to_two_bit(), n);
        }
    }

    #[test]
    fn config_validation_and_sizes() {
        assert!(MemMapConfig::multi_domain(0x101, 0x200).is_err(), "unaligned bottom");
        assert!(MemMapConfig::multi_domain(0x200, 0x100).is_err(), "inverted");
        let c = cfg();
        assert_eq!(c.num_blocks(), 32);
        assert_eq!(c.map_size_bytes(), 16);
        // Paper numbers: 4 KiB space, 8-byte blocks, multi-domain = 256 B.
        let paper = MemMapConfig::multi_domain(0x0000, 0x1000).unwrap();
        assert_eq!(paper.map_size_bytes(), 256);
        // Heap + safe stack only (2240 B) = 140 B multi, 70 B two-domain.
        let heap = MemMapConfig::multi_domain(0x0100, 0x0100 + 2240).unwrap();
        assert_eq!(heap.map_size_bytes(), 140);
        let two = MemMapConfig::two_domain(0x0100, 0x0100 + 2240).unwrap();
        assert_eq!(two.map_size_bytes(), 70);
    }

    #[test]
    fn address_translation() {
        let c = cfg();
        let l = c.lookup(0x0100).unwrap();
        assert_eq!((l.block, l.byte_index, l.shift), (0, 0, 0));
        let l = c.lookup(0x0108).unwrap();
        assert_eq!((l.block, l.byte_index, l.shift), (1, 0, 4));
        let l = c.lookup(0x0117).unwrap();
        assert_eq!((l.block, l.byte_index, l.shift), (2, 1, 0));
        assert!(c.lookup(0x00ff).is_err());
        assert!(c.lookup(0x0200).is_err(), "top is exclusive");
        assert_eq!(c.block_addr(2), 0x0110);
    }

    #[test]
    fn two_domain_translation_packs_four_per_byte() {
        let c = MemMapConfig::two_domain(0x0100, 0x0200).unwrap();
        let l = c.lookup(0x0100 + 3 * 8).unwrap();
        assert_eq!((l.block, l.byte_index, l.shift), (3, 0, 6));
        let l = c.lookup(0x0100 + 4 * 8).unwrap();
        assert_eq!((l.block, l.byte_index, l.shift), (4, 1, 0));
    }

    #[test]
    fn fresh_map_is_all_free() {
        let m = MemoryMap::new(cfg());
        assert!(m.as_bytes().iter().all(|&b| b == 0xff));
        assert_eq!(m.owner_of(0x0100).unwrap(), DomainId::TRUSTED);
        assert!(m.is_segment_start(0x0100).unwrap());
    }

    #[test]
    fn set_segment_and_ownership() {
        let mut m = MemoryMap::new(cfg());
        let d2 = DomainId::num(2);
        m.set_segment(d2, 0x0110, 20).unwrap(); // 20 B -> 3 blocks
        assert_eq!(m.owner_of(0x0110).unwrap(), d2);
        assert_eq!(m.owner_of(0x0120).unwrap(), d2);
        assert_eq!(m.owner_of(0x0128).unwrap(), DomainId::TRUSTED, "past the segment");
        assert!(m.is_segment_start(0x0110).unwrap());
        assert!(!m.is_segment_start(0x0118).unwrap());
        assert_eq!(m.segment_blocks(0x0110).unwrap(), 3);
    }

    #[test]
    fn set_segment_validation() {
        let mut m = MemoryMap::new(cfg());
        let d = DomainId::num(0);
        assert!(m.set_segment(d, 0x0111, 8).is_err(), "unaligned");
        assert!(m.set_segment(d, 0x0110, 0).is_err(), "zero length");
        assert!(m.set_segment(d, 0x01f8, 16).is_err(), "runs past the top");
        assert!(m.set_segment(d, 0x01f8, 8).is_ok(), "last block exactly");
    }

    #[test]
    fn check_write_rules() {
        let mut m = MemoryMap::new(cfg());
        let d1 = DomainId::num(1);
        let d2 = DomainId::num(2);
        m.set_segment(d1, 0x0100, 8).unwrap();
        assert!(m.check_write(d1, 0x0107).is_ok());
        assert!(m.check_write(DomainId::TRUSTED, 0x0107).is_ok(), "trusted writes anywhere");
        let err = m.check_write(d2, 0x0107).unwrap_err();
        assert!(matches!(
            err,
            ProtectionFault::MemMapViolation { addr: 0x0107, domain: 2, owner: 1 }
        ));
        // Free blocks belong to trusted: user writes are violations.
        assert!(m.check_write(d2, 0x0180).is_err());
    }

    #[test]
    fn free_requires_ownership() {
        let mut m = MemoryMap::new(cfg());
        let d1 = DomainId::num(1);
        let d2 = DomainId::num(2);
        m.set_segment(d1, 0x0120, 24).unwrap();
        assert!(matches!(m.free_segment(d2, 0x0120), Err(ProtectionFault::NotOwner { .. })));
        assert!(m.free_segment(d1, 0x0128).is_err(), "not a segment start");
        assert_eq!(m.free_segment(d1, 0x0120).unwrap(), 3);
        assert_eq!(m.owner_of(0x0120).unwrap(), DomainId::TRUSTED);
        assert!(m.is_segment_start(0x0128).unwrap(), "freed blocks read as free");
    }

    #[test]
    fn trusted_can_free_anything() {
        let mut m = MemoryMap::new(cfg());
        m.set_segment(DomainId::num(4), 0x0130, 8).unwrap();
        assert_eq!(m.free_segment(DomainId::TRUSTED, 0x0130).unwrap(), 1);
    }

    #[test]
    fn change_own_transfers_segment() {
        let mut m = MemoryMap::new(cfg());
        let d1 = DomainId::num(1);
        let d5 = DomainId::num(5);
        m.set_segment(d1, 0x0140, 16).unwrap();
        assert!(matches!(m.change_own(d5, 0x0140, d5), Err(ProtectionFault::NotOwner { .. })));
        assert_eq!(m.change_own(d1, 0x0140, d5).unwrap(), 2);
        assert_eq!(m.owner_of(0x0140).unwrap(), d5);
        assert_eq!(m.owner_of(0x0148).unwrap(), d5);
        assert!(m.is_segment_start(0x0140).unwrap());
        assert!(!m.is_segment_start(0x0148).unwrap());
        assert!(m.check_write(d1, 0x0140).is_err(), "old owner lost access");
    }

    #[test]
    fn adjacent_segments_same_owner_stay_distinct() {
        let mut m = MemoryMap::new(cfg());
        let d = DomainId::num(3);
        m.set_segment(d, 0x0150, 8).unwrap();
        m.set_segment(d, 0x0158, 8).unwrap();
        assert_eq!(m.segment_blocks(0x0150).unwrap(), 1, "start flag delimits");
        assert_eq!(m.segment_blocks(0x0158).unwrap(), 1);
        assert_eq!(m.free_segment(d, 0x0150).unwrap(), 1);
        assert_eq!(m.owner_of(0x0158).unwrap(), d, "neighbour survives");
    }

    #[test]
    fn two_domain_mode_restricts_owners() {
        let mut m = MemoryMap::new(MemMapConfig::two_domain(0x0100, 0x0200).unwrap());
        let d0 = DomainId::num(0);
        assert!(m.set_segment(DomainId::num(1), 0x0100, 8).is_err());
        m.set_segment(d0, 0x0100, 8).unwrap();
        assert_eq!(m.owner_of(0x0100).unwrap(), d0);
        assert!(m.check_write(d0, 0x0100).is_ok());
        assert!(m.change_own(d0, 0x0100, DomainId::num(2)).is_err());
        assert_eq!(m.change_own(d0, 0x0100, DomainId::TRUSTED).unwrap(), 1);
    }

    #[test]
    fn from_raw_round_trips() {
        let mut m = MemoryMap::new(cfg());
        m.set_segment(DomainId::num(2), 0x0100, 32).unwrap();
        let clone = MemoryMap::from_raw(*m.config(), m.as_bytes().to_vec());
        assert_eq!(clone, m);
    }

    #[test]
    fn traced_check_matches_untraced_and_emits() {
        use harbor_scope::{Event, ScopeSink};
        let mut m = MemoryMap::new(cfg());
        let d2 = DomainId::num(2);
        m.set_segment(d2, 0x0110, 8).unwrap();
        let mut sink = ScopeSink::stream();
        let ok = m.check_write_traced(d2, 0x0112, 10, &mut sink);
        assert_eq!(ok, m.check_write(d2, 0x0112));
        let denied = m.check_write_traced(DomainId::num(3), 0x0112, 11, &mut sink);
        assert_eq!(denied, m.check_write(DomainId::num(3), 0x0112));
        assert_eq!(
            sink.events(),
            vec![
                Event::MemMapCheck { cycles: 10, domain: 2, addr: 0x0112, granted: true, stall: 1 },
                Event::MemMapCheck {
                    cycles: 11,
                    domain: 3,
                    addr: 0x0112,
                    granted: false,
                    stall: 1
                },
            ]
        );
    }
}
