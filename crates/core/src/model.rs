//! The complete write-permission rule: memory map + stack bound + region
//! layout, composed the way the MMC hardware (or the SFI check routine)
//! evaluates it.

use crate::fault::ProtectionFault;
use crate::memmap::MemoryMap;
use crate::tracker::DomainTracker;

/// The kernel's data-memory layout, one concrete instance of the paper's
/// flexible scheme:
///
/// ```text
/// sram_base ── kernel globals (trusted only)
///           ── protected range [prot_bottom, prot_top): heap + safe stack,
///              covered by the memory map
///           ── run-time stack, growing down from stack_top,
///              guarded by the stack bound
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemoryLayout {
    /// First SRAM address (kernel globals start here).
    pub sram_base: u16,
    /// Start of the memory-map-protected range (`mem_prot_bot`).
    pub prot_bottom: u16,
    /// End (exclusive) of the protected range (`mem_prot_top`).
    pub prot_top: u16,
    /// Highest stack address (`RAMEND`; the run-time stack grows down).
    pub stack_top: u16,
}

/// Coarse classification of a data address under a [`MemoryLayout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RegionClass {
    /// The memory-mapped register file (`0x00..=0x1f`).
    Registers,
    /// The I/O ports (`0x20..=0x5f`).
    Io,
    /// Kernel globals below the protected range — trusted writes only.
    KernelData,
    /// The memory-map-protected range (heap + safe stack).
    Protected,
    /// The shared run-time stack — guarded by the stack bound.
    RuntimeStack,
    /// Beyond `stack_top` (unimplemented memory).
    OutOfRange,
}

impl MemoryLayout {
    /// Classifies a data-space address.
    pub const fn classify(&self, addr: u16) -> RegionClass {
        if addr < 0x20 {
            RegionClass::Registers
        } else if addr < 0x60 {
            RegionClass::Io
        } else if addr < self.prot_bottom {
            RegionClass::KernelData
        } else if addr < self.prot_top {
            RegionClass::Protected
        } else if addr <= self.stack_top {
            RegionClass::RuntimeStack
        } else {
            RegionClass::OutOfRange
        }
    }
}

/// Verdict for an allowed store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteVerdict {
    /// Stall cycles the MMC hardware charges (1 for memory-map-checked
    /// stores — Table 3; 0 for stack-bound-only and trusted-region stores,
    /// whose comparisons happen in parallel registers).
    pub mmc_stall_cycles: u8,
    /// Which region the store hit.
    pub region: RegionClass,
}

/// The full Harbor protection state: memory map, domain tracker and layout.
///
/// This is the specification the `umpu` hardware model and the `harbor-sfi`
/// run-time both implement; differential tests drive all three with the same
/// operation streams.
#[derive(Debug, Clone)]
pub struct ProtectionModel {
    map: MemoryMap,
    tracker: DomainTracker,
    layout: MemoryLayout,
}

impl ProtectionModel {
    /// Assembles the model. The memory map's protected range must match the
    /// layout's.
    ///
    /// # Panics
    ///
    /// Panics if the map geometry disagrees with the layout (construction
    /// bug, not a runtime fault).
    pub fn new(map: MemoryMap, tracker: DomainTracker, layout: MemoryLayout) -> ProtectionModel {
        assert_eq!(map.config().prot_bottom(), layout.prot_bottom);
        assert_eq!(map.config().prot_top(), layout.prot_top);
        ProtectionModel { map, tracker, layout }
    }

    /// The memory map.
    pub const fn map(&self) -> &MemoryMap {
        &self.map
    }

    /// Mutable memory map (kernel allocator operations).
    pub fn map_mut(&mut self) -> &mut MemoryMap {
        &mut self.map
    }

    /// The domain tracker.
    pub const fn tracker(&self) -> &DomainTracker {
        &self.tracker
    }

    /// Mutable tracker (call/return arbitration).
    pub fn tracker_mut(&mut self) -> &mut DomainTracker {
        &mut self.tracker
    }

    /// The layout.
    pub const fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// The paper's complete store-permission rule, evaluated for the active
    /// domain:
    ///
    /// 1. trusted stores are always allowed;
    /// 2. stores in the protected range must hit a block the domain owns
    ///    (memory-map check; 1 stall cycle);
    /// 3. stores in the run-time stack must be at or below the stack bound;
    /// 4. stores to kernel globals are denied;
    /// 5. register/I/O destinations are outside the MMC's purview (allowed;
    ///    protection-configuration ports are guarded separately).
    ///
    /// # Errors
    ///
    /// The corresponding [`ProtectionFault`] for rules 2–4.
    pub fn check_store(&self, addr: u16) -> Result<WriteVerdict, ProtectionFault> {
        let dom = self.tracker.current_domain();
        let region = self.layout.classify(addr);
        // The MMC steals the bus for one cycle whenever the store address
        // falls inside the mapped range, regardless of outcome or domain.
        let stall = if matches!(region, RegionClass::Protected) { 1 } else { 0 };
        if dom.is_trusted() {
            return Ok(WriteVerdict { mmc_stall_cycles: stall, region });
        }
        match region {
            RegionClass::Registers | RegionClass::Io => {
                Ok(WriteVerdict { mmc_stall_cycles: 0, region })
            }
            RegionClass::KernelData => {
                Err(ProtectionFault::KernelSpaceViolation { addr, domain: dom.index() })
            }
            RegionClass::Protected => {
                self.map.check_write(dom, addr)?;
                Ok(WriteVerdict { mmc_stall_cycles: 1, region })
            }
            RegionClass::RuntimeStack => {
                if addr <= self.tracker.stack_bound() {
                    Ok(WriteVerdict { mmc_stall_cycles: 0, region })
                } else {
                    Err(ProtectionFault::StackBoundViolation {
                        addr,
                        bound: self.tracker.stack_bound(),
                    })
                }
            }
            RegionClass::OutOfRange => Err(ProtectionFault::OutOfProtectedRange { addr }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainId;
    use crate::jumptable::JumpTableLayout;
    use crate::memmap::MemMapConfig;
    use crate::safestack::SafeStack;

    fn model() -> ProtectionModel {
        let cfg = MemMapConfig::multi_domain(0x0200, 0x0e00).unwrap();
        let map = MemoryMap::new(cfg);
        let jt = JumpTableLayout::new(0x0800, 8);
        let ss = SafeStack::new(0x0d00, 256);
        let tracker = DomainTracker::new(jt, ss, 0x0fff);
        let layout = MemoryLayout {
            sram_base: 0x0060,
            prot_bottom: 0x0200,
            prot_top: 0x0e00,
            stack_top: 0x0fff,
        };
        ProtectionModel::new(map, tracker, layout)
    }

    #[test]
    fn region_classification() {
        let l = model().layout().to_owned();
        assert_eq!(l.classify(0x0010), RegionClass::Registers);
        assert_eq!(l.classify(0x0030), RegionClass::Io);
        assert_eq!(l.classify(0x0100), RegionClass::KernelData);
        assert_eq!(l.classify(0x0200), RegionClass::Protected);
        assert_eq!(l.classify(0x0dff), RegionClass::Protected);
        assert_eq!(l.classify(0x0e00), RegionClass::RuntimeStack);
        assert_eq!(l.classify(0x0fff), RegionClass::RuntimeStack);
        assert_eq!(l.classify(0x1000), RegionClass::OutOfRange);
    }

    #[test]
    fn trusted_writes_anywhere() {
        let m = model();
        for addr in [0x0070u16, 0x0200, 0x0d80, 0x0f00] {
            assert!(m.check_store(addr).is_ok(), "trusted store to {addr:#06x}");
        }
        // Stores in the mapped range stall 1 cycle even for trusted code.
        assert_eq!(m.check_store(0x0200).unwrap().mmc_stall_cycles, 1);
        assert_eq!(m.check_store(0x0f00).unwrap().mmc_stall_cycles, 0);
    }

    #[test]
    fn user_domain_rules() {
        let mut m = model();
        let d1 = DomainId::num(1);
        m.map_mut().set_segment(d1, 0x0300, 64).unwrap();
        m.tracker_mut().set_current_domain(d1);

        // Own heap segment: allowed, 1 stall.
        let v = m.check_store(0x0320).unwrap();
        assert_eq!(v.mmc_stall_cycles, 1);
        // Someone else's (free) heap: memory-map violation.
        assert!(matches!(m.check_store(0x0400), Err(ProtectionFault::MemMapViolation { .. })));
        // Kernel globals: denied.
        assert!(matches!(m.check_store(0x0100), Err(ProtectionFault::KernelSpaceViolation { .. })));
        // Run-time stack below the bound: allowed (bound = 0x0fff initially).
        assert!(m.check_store(0x0f00).is_ok());
        // I/O: outside the MMC's purview.
        assert!(m.check_store(0x0030).is_ok());
    }

    #[test]
    fn stack_bound_enforced_after_cross_domain_call() {
        let mut m = model();
        // trusted calls into domain 1 with SP = 0x0f80.
        m.tracker_mut().on_call(0x0880, 0x0042, 0x0f80).unwrap();
        assert_eq!(m.tracker().current_domain(), DomainId::num(1));
        // Callee may write its own frames (<= bound)...
        assert!(m.check_store(0x0f80).is_ok());
        assert!(m.check_store(0x0f10).is_ok());
        // ...but not the caller's frames above the bound.
        assert!(matches!(
            m.check_store(0x0f81),
            Err(ProtectionFault::StackBoundViolation { addr: 0x0f81, bound: 0x0f80 })
        ));
        // After the return the bound is restored.
        m.tracker_mut().on_ret().unwrap();
        assert!(m.check_store(0x0f81).is_ok());
    }

    #[test]
    fn safe_stack_region_is_trusted_owned() {
        let mut m = model();
        m.tracker_mut().set_current_domain(DomainId::num(0));
        // The safe stack lives in the protected range and its blocks are
        // free (trusted-owned), so user stores fault.
        assert!(matches!(m.check_store(0x0d00), Err(ProtectionFault::MemMapViolation { .. })));
    }
}
