//! Property-based tests of the golden-model invariants: the memory map
//! under random operation sequences, the safe stack, and the cross-domain
//! tracker.

use harbor::{DomainId, JumpTableLayout, MemMapConfig, MemoryMap, SafeStack, SafeStackEntry};
use proptest::prelude::*;
use std::collections::BTreeMap;

const BOTTOM: u16 = 0x0200;
const TOP: u16 = 0x0600; // 128 blocks

#[derive(Debug, Clone, Copy)]
enum MapOp {
    Set { block: u16, blocks: u16, owner: u8 },
    Free { block: u16, requester: u8 },
    ChangeOwn { block: u16, requester: u8, new_owner: u8 },
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (0u16..120, 1u16..8, 0u8..8).prop_map(|(block, blocks, owner)| MapOp::Set {
            block,
            blocks,
            owner
        }),
        (0u16..128, 0u8..8).prop_map(|(block, requester)| MapOp::Free { block, requester }),
        (0u16..128, 0u8..8, 0u8..8).prop_map(|(block, requester, new_owner)| {
            MapOp::ChangeOwn { block, requester, new_owner }
        }),
    ]
}

/// A naive model: a BTreeMap of block → (owner, start).
#[derive(Default)]
struct NaiveMap {
    records: BTreeMap<u16, (u8, bool)>,
}

impl NaiveMap {
    fn owner(&self, block: u16) -> u8 {
        self.records.get(&block).map_or(7, |r| r.0)
    }

    fn start(&self, block: u16) -> bool {
        self.records.get(&block).is_none_or(|r| r.1)
    }

    fn segment(&self, block: u16) -> Option<Vec<u16>> {
        if !self.start(block) {
            return None;
        }
        let owner = self.owner(block);
        let mut blocks = vec![block];
        let mut b = block + 1;
        while b < 128 && !self.start(b) && self.owner(b) == owner {
            blocks.push(b);
            b += 1;
        }
        Some(blocks)
    }

    fn apply(&mut self, op: MapOp) {
        match op {
            MapOp::Set { block, blocks, owner } => {
                if block + blocks > 128 {
                    return; // golden rejects this too
                }
                for (i, b) in (block..block + blocks).enumerate() {
                    self.records.insert(b, (owner, i == 0));
                }
            }
            MapOp::Free { block, requester } => {
                let Some(seg) = self.segment(block) else { return };
                let owner = self.owner(block);
                if requester != 7 && requester != owner {
                    return;
                }
                for b in seg {
                    self.records.remove(&b);
                }
            }
            MapOp::ChangeOwn { block, requester, new_owner } => {
                let Some(seg) = self.segment(block) else { return };
                let owner = self.owner(block);
                if requester != 7 && requester != owner {
                    return;
                }
                for (i, b) in seg.into_iter().enumerate() {
                    self.records.insert(b, (new_owner, i == 0));
                }
            }
        }
    }
}

fn addr_of(block: u16) -> u16 {
    BOTTOM + block * 8
}

proptest! {
    /// The packed-nibble MemoryMap agrees with a naive per-block model
    /// across arbitrary operation sequences.
    #[test]
    fn memory_map_matches_naive_model(ops in proptest::collection::vec(map_op(), 0..40)) {
        let cfg = MemMapConfig::multi_domain(BOTTOM, TOP).unwrap();
        let mut map = MemoryMap::new(cfg);
        let mut naive = NaiveMap::default();
        for op in ops {
            match op {
                MapOp::Set { block, blocks, owner } => {
                    let _ = map.set_segment(
                        DomainId::num(owner),
                        addr_of(block),
                        blocks * 8,
                    );
                }
                MapOp::Free { block, requester } => {
                    let _ = map.free_segment(DomainId::num(requester), addr_of(block));
                }
                MapOp::ChangeOwn { block, requester, new_owner } => {
                    let _ = map.change_own(
                        DomainId::num(requester),
                        addr_of(block),
                        DomainId::num(new_owner),
                    );
                }
            }
            naive.apply(op);
        }
        for block in 0..128u16 {
            let addr = addr_of(block);
            prop_assert_eq!(
                map.owner_of(addr).unwrap().index(),
                naive.owner(block),
                "owner of block {}", block
            );
            prop_assert_eq!(
                map.is_segment_start(addr).unwrap(),
                naive.start(block),
                "start flag of block {}", block
            );
        }
    }

    /// check_write is exactly "trusted, or owner" — for every domain and
    /// block, after arbitrary operations.
    #[test]
    fn check_write_is_owner_or_trusted(ops in proptest::collection::vec(map_op(), 0..24)) {
        let cfg = MemMapConfig::multi_domain(BOTTOM, TOP).unwrap();
        let mut map = MemoryMap::new(cfg);
        for op in ops {
            match op {
                MapOp::Set { block, blocks, owner } => {
                    let _ = map.set_segment(DomainId::num(owner), addr_of(block), blocks * 8);
                }
                MapOp::Free { block, requester } => {
                    let _ = map.free_segment(DomainId::num(requester), addr_of(block));
                }
                MapOp::ChangeOwn { block, requester, new_owner } => {
                    let _ = map.change_own(
                        DomainId::num(requester),
                        addr_of(block),
                        DomainId::num(new_owner),
                    );
                }
            }
        }
        for block in (0..128u16).step_by(7) {
            let addr = addr_of(block) + 3; // mid-block address
            let owner = map.owner_of(addr).unwrap();
            for dom in DomainId::all() {
                let allowed = map.check_write(dom, addr).is_ok();
                prop_assert_eq!(allowed, dom.is_trusted() || dom == owner);
            }
        }
    }

    /// Safe-stack push/pop is LIFO and byte-exact.
    #[test]
    fn safe_stack_is_lifo(entries in proptest::collection::vec(
        prop_oneof![
            any::<u16>().prop_map(SafeStackEntry::RetAddr),
            (0u8..8, any::<u16>(), any::<u16>()).prop_map(|(d, b, r)| {
                SafeStackEntry::CrossDomain {
                    caller: DomainId::num(d),
                    stack_bound: b,
                    ret_addr: r,
                }
            }),
        ],
        0..40
    )) {
        let mut s = SafeStack::new(0x0d00, 4096);
        for &e in &entries {
            s.push(e).unwrap();
        }
        let expected_bytes: usize = entries.iter().map(|e| e.byte_len() as usize).sum();
        prop_assert_eq!(s.used_bytes() as usize, expected_bytes);
        prop_assert_eq!(s.to_bytes().len(), expected_bytes);
        for &e in entries.iter().rev() {
            prop_assert_eq!(s.pop().unwrap(), e);
        }
        prop_assert!(s.is_empty());
    }

    /// The tracker's domain/bound state is restored exactly by returns, for
    /// arbitrary interleavings of local and cross-domain calls.
    #[test]
    fn tracker_unwinds_exactly(
        calls in proptest::collection::vec((any::<bool>(), 0u8..8, any::<u16>()), 1..12)
    ) {
        let jt = JumpTableLayout::new(0x0800, 8);
        let ss = SafeStack::new(0x0d00, 4096);
        let mut t = harbor::DomainTracker::new(jt, ss, 0x0fff);
        let mut expected: Vec<(DomainId, u16)> = Vec::new();
        for (i, &(cross, dom, sp)) in calls.iter().enumerate() {
            let ret_addr = 0x100 + i as u16;
            if cross {
                expected.push((t.current_domain(), t.stack_bound()));
                t.on_call(jt.entry_addr(DomainId::num(dom), 0), ret_addr, sp).unwrap();
                prop_assert_eq!(t.current_domain(), DomainId::num(dom));
                prop_assert_eq!(t.stack_bound(), sp);
            } else {
                t.on_call(0x0100, ret_addr, sp).unwrap(); // below the tables
            }
        }
        for i in (0..calls.len()).rev() {
            let (cross, ..) = calls[i];
            let before = (t.current_domain(), t.stack_bound());
            let r = t.on_ret().unwrap();
            prop_assert_eq!(r.target, 0x100 + i as u16, "returns unwind in order");
            prop_assert_eq!(r.cross_domain, cross);
            if cross {
                let (dom, bound) = expected.pop().unwrap();
                prop_assert_eq!(t.current_domain(), dom);
                prop_assert_eq!(t.stack_bound(), bound);
            } else {
                prop_assert_eq!((t.current_domain(), t.stack_bound()), before);
            }
        }
        prop_assert!(t.safe_stack().is_empty());
    }
}
