//! Serde round-trip tests (only built with `--features serde`).
#![cfg(feature = "serde")]

use harbor::{
    BlockSize, DomainId, JumpTableLayout, MemMapConfig, MemoryMap, ProtectionFault, Record,
    SafeStackEntry,
};

#[test]
fn memory_map_round_trips_through_json() {
    let cfg = MemMapConfig::multi_domain(0x0200, 0x0400).unwrap();
    let mut map = MemoryMap::new(cfg);
    map.set_segment(DomainId::num(2), 0x0200, 40).unwrap();
    map.set_segment(DomainId::num(5), 0x0300, 16).unwrap();

    let json = serde_json::to_string(&map).unwrap();
    let back: MemoryMap = serde_json::from_str(&json).unwrap();
    assert_eq!(back, map);
    assert_eq!(back.owner_of(0x0210).unwrap(), DomainId::num(2));
}

#[test]
fn invalid_payloads_are_rejected() {
    // Domain id out of range.
    assert!(serde_json::from_str::<DomainId>("9").is_err());
    assert!(serde_json::from_str::<DomainId>("7").is_ok());
    // Non-power-of-two block size.
    assert!(serde_json::from_str::<BlockSize>("12").is_err());
    assert!(serde_json::from_str::<BlockSize>("16").is_ok());
    // Misaligned config.
    let bad = r#"{"mode":"Multi","block_size":8,"prot_bottom":513,"prot_top":1024}"#;
    assert!(serde_json::from_str::<MemMapConfig>(bad).is_err());
    // Truncated memory-map table.
    let cfg = MemMapConfig::multi_domain(0x0200, 0x0400).unwrap();
    let bad_map = serde_json::json!({ "cfg": cfg, "bytes": [255, 255] });
    assert!(serde_json::from_value::<MemoryMap>(bad_map).is_err());
}

#[test]
fn plain_data_types_round_trip() {
    let rec = Record { owner: DomainId::num(3), start: true };
    let back: Record = serde_json::from_str(&serde_json::to_string(&rec).unwrap()).unwrap();
    assert_eq!(back, rec);

    let jt = JumpTableLayout::new(0x0800, 8);
    let back: JumpTableLayout = serde_json::from_str(&serde_json::to_string(&jt).unwrap()).unwrap();
    assert_eq!(back, jt);

    let e = SafeStackEntry::CrossDomain {
        caller: DomainId::num(1),
        stack_bound: 0x0f00,
        ret_addr: 0x42,
    };
    let back: SafeStackEntry = serde_json::from_str(&serde_json::to_string(&e).unwrap()).unwrap();
    assert_eq!(back, e);

    let f = ProtectionFault::MemMapViolation { addr: 0x300, domain: 1, owner: 2 };
    let back: ProtectionFault = serde_json::from_str(&serde_json::to_string(&f).unwrap()).unwrap();
    assert_eq!(back, f);
}
