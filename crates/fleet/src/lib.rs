//! harbor-fleet: a parallel multi-node sensor-network simulator.
//!
//! The paper's deployment context is a *sensor network*: modules like Surge
//! and Tree Routing are distributed over the radio and hot-loaded on
//! MMU-less nodes, and the motivating war story is a cross-domain corruption
//! that took down a real deployment. The rest of this repository reproduces
//! all of that on a single node; this crate scales it to a population:
//!
//! * [`net`] — a deterministic, seed-driven packet network with
//!   configurable loss and latency, carrying a chunked module-dissemination
//!   protocol with NACK-based retransmission and exponential backoff;
//! * [`image`] — the over-the-air wire format for pre-assembled modules
//!   (chunking, checksums, reassembly back into the loader's
//!   [`LoadedModule`](mini_sos::loader::LoadedModule) path);
//! * [`node`] — one sensor node: a [`SosSystem`](mini_sos::SosSystem)
//!   wrapped with an inbox, the dissemination state machine, and per-node
//!   telemetry;
//! * [`fleet`] — round-based stepping of hundreds of nodes across
//!   `std::thread` workers, with dynamic work-stealing over node batches;
//!   serial and parallel execution produce byte-identical telemetry;
//! * [`telemetry`] — per-node and aggregate counters exported as JSON;
//! * [`campaign`] — fleet-scale fault-injection campaigns measuring
//!   containment and recovery under the three protection builds.
//!
//! With [`FleetConfig::tower`] set, every round also streams per-node
//! counter deltas, postmortem dumps and watchdog alerts into a
//! `harbor-tower` aggregation pipeline; [`Fleet::tower_rollup`] serves the
//! merged per-cohort rollup (time series, health scores, top-K offenders,
//! dump index) that the `harbor-tower` CLI renders and gates on.
//!
//! With [`FleetConfig::pulse`] set, the fleet also profiles *itself*: a
//! `harbor-pulse` recorder times every pipeline phase (deliver, step,
//! collect, tower feed), accounts per-worker busy/barrier time, and keeps
//! an idle-work ledger of nodes stepped with nothing to do —
//! [`Fleet::pulse_report`] serves the snapshot the `harbor-pulse` CLI
//! renders and gates on. Pulse reads state and the host clock only; a
//! pulse-enabled run's telemetry is byte-identical to a disabled run's.
//!
//! Everything is reproducible from a single `u64` seed: the radio, every
//! node and every campaign derive their generators from it, and no ambient
//! entropy exists anywhere in the crate.
//!
//! # Example
//!
//! Disseminate Tree Routing to a small fleet through a 20 % lossy radio:
//!
//! ```
//! use harbor_fleet::{Fleet, FleetConfig, ModuleImage, NetConfig};
//! use mini_sos::{modules, Protection};
//!
//! let cfg = FleetConfig {
//!     nodes: 8,
//!     protection: Protection::Umpu,
//!     seed: 7,
//!     net: NetConfig { loss: 0.2, ..NetConfig::default() },
//!     ..FleetConfig::default()
//! };
//! let mut fleet = Fleet::new(&cfg, &[modules::surge(1, 3)]).unwrap();
//! let image = ModuleImage::assemble(&modules::tree_routing(3), &fleet.layout(), cfg.protection)
//!     .unwrap();
//! fleet.disseminate(&image);
//! fleet.run_until_converged(400).unwrap();
//! assert!(fleet.converged());
//! ```

#![warn(missing_docs)]

pub mod campaign;
pub mod fleet;
pub mod image;
pub mod net;
pub mod node;
pub mod telemetry;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport};
pub use fleet::{BlackboxConfig, Fleet, FleetConfig};
pub use harbor_pulse::{PendingWork, Pulse, PulseReport};
pub use harbor_tower::{FleetRollup, HealthConfig, TowerConfig};
pub use image::{ImageError, ModuleImage};
pub use net::{Envelope, NetConfig, Packet, Radio, BROADCAST, SEEDER};
pub use node::Node;
pub use telemetry::{FleetTelemetry, NodeTelemetry, ScopeAggregate};
