//! Per-node and fleet-aggregate counters, exported as JSON.
//!
//! The JSON is rendered by hand into a deterministic byte string (fixed key
//! order, no maps, no floats from iteration order) so a serial and a
//! parallel run of the same seed can be compared byte-for-byte.

/// Counters for one node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeTelemetry {
    /// Node id.
    pub id: u32,
    /// Total simulated cycles executed by the node's CPU.
    pub cycles: u64,
    /// Cycles the CPU spent asleep.
    pub idle_cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Packets received from the radio.
    pub rx: u64,
    /// Packets handed to the radio.
    pub tx: u64,
    /// Application messages accepted into the kernel queue.
    pub messages: u64,
    /// Application messages dropped because the queue was full.
    pub queue_drops: u64,
    /// Faults raised while running handlers.
    pub faults: u64,
    /// Faults that were protection violations (contained by Harbor).
    pub contained: u64,
    /// Times the kernel's exception path restored a clean trusted context.
    pub recoveries: u64,
    /// Dissemination chunks received (first copies, duplicates excluded).
    pub chunks: u64,
    /// Retransmission requests sent.
    pub requests: u64,
    /// Disseminated images rejected by the load policy's admission gate.
    pub quarantined: u64,
    /// Round at which the disseminated module was installed, if it was.
    pub installed_round: Option<u64>,
}

impl NodeTelemetry {
    /// Renders this node's counters as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"id\":{},\"cycles\":{},\"idle_cycles\":{},\"instructions\":{},\
             \"rx\":{},\"tx\":{},\"messages\":{},\"queue_drops\":{},\
             \"faults\":{},\"contained\":{},\"recoveries\":{},\
             \"chunks\":{},\"requests\":{},\"quarantined\":{},\"installed_round\":{}}}",
            self.id,
            self.cycles,
            self.idle_cycles,
            self.instructions,
            self.rx,
            self.tx,
            self.messages,
            self.queue_drops,
            self.faults,
            self.contained,
            self.recoveries,
            self.chunks,
            self.requests,
            self.quarantined,
            match self.installed_round {
                Some(r) => r.to_string(),
                None => "null".to_string(),
            },
        )
    }
}

/// Aggregate counters for a whole fleet run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetTelemetry {
    /// Fleet seed.
    pub seed: u64,
    /// Protection build, as a string (`"None"`, `"Umpu"`, `"Sfi"`).
    pub protection: String,
    /// Node count.
    pub nodes: usize,
    /// Rounds stepped.
    pub rounds: u64,
    /// Worker threads used for the run (1 = serial).
    pub threads: usize,
    /// Round by which every node had installed the disseminated module.
    pub convergence_round: Option<u64>,
    /// Packets offered to the radio (after broadcast fan-out).
    pub packets_sent: u64,
    /// Packets delivered.
    pub packets_delivered: u64,
    /// Packets the lossy channel dropped.
    pub packets_dropped: u64,
    /// Per-node counters, in node-id order.
    pub per_node: Vec<NodeTelemetry>,
}

impl FleetTelemetry {
    /// Sum of a per-node counter across the fleet.
    pub fn total<F: Fn(&NodeTelemetry) -> u64>(&self, f: F) -> u64 {
        self.per_node.iter().map(f).sum()
    }

    /// Renders the whole fleet's counters as one deterministic JSON object.
    /// `threads` is deliberately excluded from the digest-relevant body via
    /// the `comparable_json` helper; this full form includes it.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.per_node.len() * 160);
        s.push_str(&format!(
            "{{\"seed\":{},\"protection\":\"{}\",\"nodes\":{},\"rounds\":{},\
             \"threads\":{},\"convergence_round\":{},\
             \"packets_sent\":{},\"packets_delivered\":{},\"packets_dropped\":{},\
             \"total_cycles\":{},\"total_instructions\":{},\
             \"total_faults\":{},\"total_contained\":{},\"total_recoveries\":{},\
             \"per_node\":[",
            self.seed,
            self.protection,
            self.nodes,
            self.rounds,
            self.threads,
            match self.convergence_round {
                Some(r) => r.to_string(),
                None => "null".to_string(),
            },
            self.packets_sent,
            self.packets_delivered,
            self.packets_dropped,
            self.total(|n| n.cycles),
            self.total(|n| n.instructions),
            self.total(|n| n.faults),
            self.total(|n| n.contained),
            self.total(|n| n.recoveries),
        ));
        for (i, n) in self.per_node.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&n.to_json());
        }
        s.push_str("]}");
        s
    }

    /// The JSON with the `threads` field normalized out — two runs of the
    /// same seed must produce identical `comparable_json` regardless of how
    /// many workers stepped the nodes.
    pub fn comparable_json(&self) -> String {
        let mut clone = self.clone();
        clone.threads = 0;
        clone.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_stable_and_null_renders() {
        let mut t = FleetTelemetry {
            seed: 5,
            protection: "Umpu".to_string(),
            nodes: 1,
            ..FleetTelemetry::default()
        };
        t.per_node.push(NodeTelemetry { id: 0, ..NodeTelemetry::default() });
        let j = t.to_json();
        assert!(j.contains("\"convergence_round\":null"));
        assert!(j.contains("\"installed_round\":null"));
        assert!(j.contains("\"quarantined\":0"));
        assert_eq!(j, t.clone().to_json());
        let mut parallel = t.clone();
        parallel.threads = 8;
        assert_eq!(t.comparable_json(), parallel.comparable_json());
        assert_ne!(t.to_json(), parallel.to_json());
    }
}
