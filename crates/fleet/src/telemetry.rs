//! Per-node and fleet-aggregate counters, exported as JSON.
//!
//! The JSON is rendered by hand into a deterministic byte string (fixed key
//! order, no maps, no floats from iteration order) so a serial and a
//! parallel run of the same seed can be compared byte-for-byte.
//!
//! Protection-relevant counters (faults, containment, recoveries,
//! quarantines) live in a per-node [`MetricsRegistry`] rather than as
//! hand-rolled struct fields — the same registry harbor-scope traces feed —
//! and are exposed through accessors so the rendered JSON is unchanged.

use harbor_scope::{EventKind, MetricsRegistry};

/// Counters for one node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeTelemetry {
    /// Node id.
    pub id: u32,
    /// Total simulated cycles executed by the node's CPU.
    pub cycles: u64,
    /// Cycles the CPU spent asleep.
    pub idle_cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Packets received from the radio.
    pub rx: u64,
    /// Packets handed to the radio.
    pub tx: u64,
    /// Application messages accepted into the kernel queue.
    pub messages: u64,
    /// Application messages dropped because the queue was full.
    pub queue_drops: u64,
    /// Dissemination chunks received (first copies, duplicates excluded).
    pub chunks: u64,
    /// Retransmission requests sent.
    pub requests: u64,
    /// Event bodies this node's trace ring shed under pressure (0 with no
    /// sink attached) — nonzero means postmortems on this node are losing
    /// history.
    pub ring_dropped: u64,
    /// Watchdog alerts this node has raised (0 with no blackbox attached).
    /// Alert decisions are a pure function of the node's own counters, so
    /// the count is schedule-independent like everything else here.
    pub alerts: u64,
    /// Round at which the disseminated module was installed, if it was.
    pub installed_round: Option<u64>,
    /// Named counters + histograms for everything protection-related.
    pub metrics: MetricsRegistry,
}

impl NodeTelemetry {
    /// Faults raised while running handlers (`fleet.faults`).
    pub fn faults(&self) -> u64 {
        self.metrics.counter("fleet.faults")
    }

    /// Faults that were protection violations, contained by Harbor
    /// (`fleet.contained`).
    pub fn contained(&self) -> u64 {
        self.metrics.counter("fleet.contained")
    }

    /// Times the kernel's exception path restored a clean trusted context
    /// (`fleet.recoveries`).
    pub fn recoveries(&self) -> u64 {
        self.metrics.counter("fleet.recoveries")
    }

    /// Disseminated images rejected by the load policy's admission gate
    /// (`fleet.quarantined`).
    pub fn quarantined(&self) -> u64 {
        self.metrics.counter("fleet.quarantined")
    }

    /// Renders this node's counters as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"id\":{},\"cycles\":{},\"idle_cycles\":{},\"instructions\":{},\
             \"rx\":{},\"tx\":{},\"messages\":{},\"queue_drops\":{},\
             \"faults\":{},\"contained\":{},\"recoveries\":{},\
             \"chunks\":{},\"requests\":{},\"ring_dropped\":{},\"alerts\":{},\
             \"quarantined\":{},\"installed_round\":{}}}",
            self.id,
            self.cycles,
            self.idle_cycles,
            self.instructions,
            self.rx,
            self.tx,
            self.messages,
            self.queue_drops,
            self.faults(),
            self.contained(),
            self.recoveries(),
            self.chunks,
            self.requests,
            self.ring_dropped,
            self.alerts,
            self.quarantined(),
            match self.installed_round {
                Some(r) => r.to_string(),
                None => "null".to_string(),
            },
        )
    }
}

/// Fleet-level reduction of the per-node trace sinks, present only when the
/// run attached sinks ([`crate::FleetConfig::scope`]): per-kind event sums
/// plus the sum/max/p99 of events recorded per node. Everything is an
/// integer and ordering is fixed (kind discriminant order), so the JSON
/// stays byte-identical between serial and parallel runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScopeAggregate {
    /// Events recorded across all nodes (including dropped bodies).
    pub recorded: u64,
    /// Event bodies shed by ring sinks under pressure, fleet-wide.
    pub dropped: u64,
    /// Largest per-node recorded count.
    pub max_recorded: u64,
    /// p99 of the per-node recorded counts (bucket-granular).
    pub p99_recorded: u64,
    /// Fleet-wide event count per kind, indexed by [`EventKind::index`].
    pub kinds: [u64; EventKind::COUNT],
}

impl ScopeAggregate {
    /// Renders the aggregate as one JSON object; kinds with zero events are
    /// omitted (order is still fixed by the kind discriminant).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"recorded\":{},\"dropped\":{},\"max_recorded\":{},\"p99_recorded\":{},\
             \"kinds\":{{",
            self.recorded, self.dropped, self.max_recorded, self.p99_recorded,
        );
        let mut first = true;
        for kind in EventKind::ALL {
            let n = self.kinds[kind.index()];
            if n == 0 {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!("\"{}\":{n}", kind.name()));
        }
        s.push_str("}}");
        s
    }
}

/// Aggregate counters for a whole fleet run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetTelemetry {
    /// Fleet seed.
    pub seed: u64,
    /// Protection build, as a string (`"None"`, `"Umpu"`, `"Sfi"`).
    pub protection: String,
    /// Node count.
    pub nodes: usize,
    /// Rounds stepped.
    pub rounds: u64,
    /// Worker threads used for the run (1 = serial).
    pub threads: usize,
    /// Round by which every node had installed the disseminated module.
    pub convergence_round: Option<u64>,
    /// Packets offered to the radio (after broadcast fan-out).
    pub packets_sent: u64,
    /// Packets delivered.
    pub packets_delivered: u64,
    /// Packets the lossy channel dropped.
    pub packets_dropped: u64,
    /// Trace-sink reduction; `Some` only when the run attached sinks.
    pub scope: Option<ScopeAggregate>,
    /// Per-node counters, in node-id order.
    pub per_node: Vec<NodeTelemetry>,
}

impl FleetTelemetry {
    /// Sum of a per-node counter across the fleet.
    pub fn total<F: Fn(&NodeTelemetry) -> u64>(&self, f: F) -> u64 {
        self.per_node.iter().map(f).sum()
    }

    /// All per-node metrics registries folded into one.
    pub fn merged_metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        for n in &self.per_node {
            m.merge(&n.metrics);
        }
        m
    }

    /// Renders the whole fleet's counters as one deterministic JSON object.
    /// `threads` is deliberately excluded from the digest-relevant body via
    /// the `comparable_json` helper; this full form includes it. The
    /// `scope` key appears only when the run attached trace sinks, so runs
    /// without them render exactly as before.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.per_node.len() * 160);
        s.push_str(&format!(
            "{{\"seed\":{},\"protection\":\"{}\",\"nodes\":{},\"rounds\":{},\
             \"threads\":{},\"convergence_round\":{},\
             \"packets_sent\":{},\"packets_delivered\":{},\"packets_dropped\":{},\
             \"total_cycles\":{},\"total_instructions\":{},\
             \"total_faults\":{},\"total_contained\":{},\"total_recoveries\":{},\
             \"total_ring_dropped\":{},\"total_alerts\":{},",
            self.seed,
            self.protection,
            self.nodes,
            self.rounds,
            self.threads,
            match self.convergence_round {
                Some(r) => r.to_string(),
                None => "null".to_string(),
            },
            self.packets_sent,
            self.packets_delivered,
            self.packets_dropped,
            self.total(|n| n.cycles),
            self.total(|n| n.instructions),
            self.total(NodeTelemetry::faults),
            self.total(NodeTelemetry::contained),
            self.total(NodeTelemetry::recoveries),
            self.total(|n| n.ring_dropped),
            self.total(|n| n.alerts),
        ));
        if let Some(scope) = &self.scope {
            s.push_str(&format!("\"scope\":{},", scope.to_json()));
        }
        s.push_str("\"per_node\":[");
        for (i, n) in self.per_node.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&n.to_json());
        }
        s.push_str("]}");
        s
    }

    /// The JSON with the `threads` field normalized out — two runs of the
    /// same seed must produce identical `comparable_json` regardless of how
    /// many workers stepped the nodes.
    pub fn comparable_json(&self) -> String {
        let mut clone = self.clone();
        clone.threads = 0;
        clone.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_stable_and_null_renders() {
        let mut t = FleetTelemetry {
            seed: 5,
            protection: "Umpu".to_string(),
            nodes: 1,
            ..FleetTelemetry::default()
        };
        t.per_node.push(NodeTelemetry { id: 0, ..NodeTelemetry::default() });
        let j = t.to_json();
        assert!(j.contains("\"convergence_round\":null"));
        assert!(j.contains("\"installed_round\":null"));
        assert!(j.contains("\"quarantined\":0"));
        assert!(j.contains("\"total_ring_dropped\":0"));
        assert!(j.contains("\"total_alerts\":0"));
        assert!(j.contains("\"ring_dropped\":0,\"alerts\":0"));
        assert!(!j.contains("\"scope\""), "no sink attached, no scope key");
        assert_eq!(j, t.clone().to_json());
        let mut parallel = t.clone();
        parallel.threads = 8;
        assert_eq!(t.comparable_json(), parallel.comparable_json());
        assert_ne!(t.to_json(), parallel.to_json());
    }

    #[test]
    fn node_counters_route_through_metrics() {
        let mut n = NodeTelemetry { id: 3, ..NodeTelemetry::default() };
        n.metrics.inc("fleet.faults", 2);
        n.metrics.inc("fleet.contained", 1);
        n.metrics.inc("fleet.recoveries", 2);
        n.metrics.inc("fleet.quarantined", 4);
        assert_eq!((n.faults(), n.contained(), n.recoveries(), n.quarantined()), (2, 1, 2, 4));
        let j = n.to_json();
        assert!(j.contains("\"faults\":2,\"contained\":1,\"recoveries\":2"));
        assert!(j.contains("\"quarantined\":4"));
    }

    #[test]
    fn scope_aggregate_renders_nonzero_kinds_in_order() {
        let mut a = ScopeAggregate { recorded: 10, dropped: 2, ..ScopeAggregate::default() };
        a.max_recorded = 7;
        a.p99_recorded = 7;
        a.kinds[EventKind::Fault.index()] = 3;
        a.kinds[EventKind::MemMapCheck.index()] = 7;
        assert_eq!(
            a.to_json(),
            "{\"recorded\":10,\"dropped\":2,\"max_recorded\":7,\"p99_recorded\":7,\
             \"kinds\":{\"memmap_check\":7,\"fault\":3}}"
        );
        let mut t = FleetTelemetry { scope: Some(a), ..FleetTelemetry::default() };
        assert!(t.to_json().contains("\"scope\":{\"recorded\":10,"));
        t.scope = None;
        assert!(!t.to_json().contains("\"scope\""));
    }
}
