//! One sensor node: a [`SosSystem`] wrapped with a radio inbox/outbox, the
//! dissemination state machine and per-node telemetry.
//!
//! A node only ever touches its own state during the fleet's parallel phase
//! — incoming packets are staged into `inbox` by the serial deliver phase,
//! and outgoing packets accumulate in `outbox` until the serial collect
//! phase drains them onto the radio. That discipline is what lets hundreds
//! of nodes step on worker threads while staying bit-identical to a serial
//! run.

use crate::image::ModuleImage;
use crate::net::{Envelope, NodeId, Packet, SEEDER};
use crate::telemetry::NodeTelemetry;
use avr_core::Fault;
use harbor::DomainId;
use harbor_blackbox::{
    CausalKind, CausalLog, CausalRecord, FlightRecorder, LamportClock, Watchdog,
};
use harbor_scope::ScopeSink;
use mini_sos::SosSystem;
use rand::{Rng, SeedableRng, StdRng};
use std::collections::BTreeMap;

/// Most chunk indices listed in a single retransmission request.
const MAX_REQUEST: usize = 16;

/// Retransmission backoff cap, in rounds.
const MAX_BACKOFF: u64 = 32;

/// In-progress reassembly of one disseminated image.
#[derive(Debug, Clone)]
struct Dissem {
    module: u16,
    chunks: Vec<Option<Vec<u8>>>,
    have: usize,
    backoff: u64,
    next_request: u64,
}

impl Dissem {
    fn new(module: u16, total: u16, round: u64) -> Dissem {
        Dissem {
            module,
            chunks: vec![None; total as usize],
            have: 0,
            backoff: 1,
            next_request: round + 2,
        }
    }

    fn missing(&self) -> Vec<u16> {
        self.chunks
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(i, _)| i as u16)
            .take(MAX_REQUEST)
            .collect()
    }
}

/// One simulated sensor node.
#[derive(Debug)]
pub struct Node {
    /// Node id (also its radio address).
    pub id: u32,
    /// Cohort tag for fleet rollups (assigned by the fleet at build:
    /// `id % cohorts`). Purely observational — nodes in different cohorts
    /// run identical code; the tag only groups their telemetry.
    pub cohort: u32,
    /// The node's simulated processor + kernel + modules.
    pub sys: SosSystem,
    /// This node's counters.
    pub telemetry: NodeTelemetry,
    /// Frames delivered this round (staged by the fleet's serial phase).
    pub inbox: Vec<Envelope>,
    /// Frames to transmit (drained by the fleet's serial phase).
    pub outbox: Vec<(NodeId, Envelope)>,
    /// The node's Lamport clock: ticks on send, max-merges on receive, so
    /// every stamp respects happens-before across the whole fleet.
    pub clock: LamportClock,
    /// Causal log of every send, receive and local milestone on this node.
    pub causal: CausalLog,
    /// Optional flight recorder (set by the fleet's blackbox config).
    pub recorder: Option<FlightRecorder>,
    /// Optional anomaly watchdog (set by the fleet's blackbox config).
    pub watchdog: Option<Watchdog>,
    seq: u64,
    /// Plain mirror of the `fleet.faults` metric: the watchdog reads this
    /// every round, and a string-keyed counter lookup is too slow for that
    /// path.
    faults: u64,
    // Elided-store total already mirrored into the metrics registry (the
    // env counter is cumulative; the metric is fed by delta so clones of a
    // warm prototype start clean).
    elided_seen: u64,
    // Cumulative totals already fed to the tower (delta baseline) plus
    // high-water marks for dump/alert routing. All zero until the fleet's
    // feed phase touches them; a tower-less run never does.
    tower_prev: harbor_tower::CounterSet,
    dumps_fed: usize,
    alerts_fed: usize,
    dissem: Option<Dissem>,
    installed: Vec<u16>,
    quarantined: Vec<u16>,
    // Rollout gate: image id → eligibility under the current stage grant.
    // Managed host-side by the fleet's rollout APIs (never over the radio),
    // so an ungated fleet behaves byte-identically to one with no
    // controller attached. An ineligible entry makes the node ignore the
    // image's adverts and chunks until a later stage grants it.
    gate: BTreeMap<u16, bool>,
    // Pre-flash checkpoint of the whole machine, taken immediately before
    // a gated rollout image is burned. Restoring it is what makes
    // auto-rollback land on the *exact* pre-rollout flash generation.
    checkpoint: Option<(u16, Box<SosSystem>)>,
    rng: StdRng,
}

impl Node {
    /// Wraps a booted system as node `id`. The node's private generator
    /// (request jitter) derives from `(fleet_seed, id)` only.
    pub fn new(id: u32, fleet_seed: u64, sys: SosSystem) -> Node {
        Node {
            id,
            cohort: 0,
            sys,
            telemetry: NodeTelemetry { id, ..NodeTelemetry::default() },
            inbox: Vec::new(),
            outbox: Vec::new(),
            clock: LamportClock::new(),
            causal: CausalLog::new(id),
            recorder: None,
            watchdog: None,
            seq: 0,
            faults: 0,
            elided_seen: 0,
            tower_prev: harbor_tower::CounterSet::default(),
            dumps_fed: 0,
            alerts_fed: 0,
            dissem: None,
            installed: Vec::new(),
            quarantined: Vec::new(),
            gate: BTreeMap::new(),
            checkpoint: None,
            rng: StdRng::seed_from_u64(
                fleet_seed ^ (id as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ),
        }
    }

    /// Whether the node has installed disseminated image `module`.
    pub fn has_installed(&self, module: u16) -> bool {
        self.installed.contains(&module)
    }

    /// Whether the node rejected disseminated image `module` under its
    /// load policy (the image completed reassembly but was never burned).
    pub fn has_quarantined(&self, module: u16) -> bool {
        self.quarantined.contains(&module)
    }

    /// An image the node is done with — installed *or* quarantined — is
    /// never re-downloaded.
    fn has_resolved(&self, module: u16) -> bool {
        self.has_installed(module) || self.has_quarantined(module)
    }

    /// Whether a rollout gate exists for `module` and marks this node
    /// ineligible — adverts and chunks for the image are then ignored, so
    /// a staged canary never reaches cohorts outside its grant.
    fn rollout_blocked(&self, module: u16) -> bool {
        self.gate.get(&module).is_some_and(|&eligible| !eligible)
    }

    /// Registers (or widens) a rollout gate for `module`. `eligible`
    /// nodes may download and flash the image — a flip from ineligible to
    /// eligible is a stage grant and counts toward `helm.stages_promoted`.
    /// Gates never narrow: once granted, a node stays eligible.
    pub(crate) fn arm_rollout(&mut self, module: u16, eligible: bool) {
        let was = self.gate.get(&module).copied().unwrap_or(false);
        if eligible && !was {
            self.telemetry.metrics.inc("helm.stages_promoted", 1);
        }
        self.gate.insert(module, was || eligible);
    }

    /// Rolls back rollout image `module`: restores the pre-flash
    /// checkpoint (if this node burned the image), quarantines the id so
    /// still-circulating chunks are never reassembled, and drops any
    /// in-progress download. Restoring the checkpoint rewinds the whole
    /// machine — flash, flash generation, cycle counters — to the instant
    /// before the install.
    pub(crate) fn rollback_rollout(&mut self, module: u16) {
        if self.dissem.as_ref().is_some_and(|d| d.module == module) {
            self.dissem = None;
        }
        self.gate.remove(&module);
        if !self.quarantined.contains(&module) {
            self.quarantined.push(module);
        }
        if self.checkpoint.as_ref().is_some_and(|(id, _)| *id == module) {
            let (_, sys) = self.checkpoint.take().expect("checkpoint present");
            self.sys = *sys;
            self.installed.retain(|&m| m != module);
            self.telemetry.installed_round = None;
            self.telemetry.metrics.inc("helm.rollbacks", 1);
        }
    }

    /// Commits rollout image `module`: the checkpoint (and the gate) are
    /// no longer needed — the image is the fleet's known-good.
    pub(crate) fn commit_rollout(&mut self, module: u16) {
        self.gate.remove(&module);
        if self.checkpoint.as_ref().is_some_and(|(id, _)| *id == module) {
            self.checkpoint = None;
        }
    }

    /// Host-side message injection (a local sensor event): posts `msg` to
    /// `dom`'s handler, counting queue overflow instead of panicking.
    pub fn post(&mut self, dom: DomainId, msg: u8) {
        if self.sys.try_post(dom, msg) {
            self.telemetry.messages += 1;
        } else {
            self.telemetry.queue_drops += 1;
        }
    }

    /// Queues a packet for transmission: ticks the Lamport clock, stamps
    /// the envelope with this node's next `(from, seq)` message identity,
    /// logs the send in the causal log, and counts it.
    fn transmit(&mut self, round: u64, to: NodeId, packet: Packet) {
        self.telemetry.tx += 1;
        let lamport = self.clock.tick();
        let seq = self.seq;
        self.seq += 1;
        self.causal.push(CausalRecord {
            lamport,
            round,
            kind: CausalKind::Send,
            peer: to,
            from: self.id,
            seq,
            label: packet.label(),
        });
        self.outbox.push((to, Envelope { from: self.id, seq, lamport, packet }));
    }

    /// Classifies this node's pending work for the idle-work ledger — a
    /// pure function of node state (inbox, OTA reassembly, kernel queue),
    /// never of the schedule, so serial and parallel runs classify
    /// identically. The fleet calls this immediately before
    /// [`Node::step`] when pulse is attached.
    pub fn pending_work(&self) -> harbor_pulse::PendingWork {
        harbor_pulse::PendingWork {
            inbox: !self.inbox.is_empty(),
            ota: self.dissem.is_some(),
            queue: self.sys.queue_len() > 0,
        }
    }

    /// One simulation round: consume the inbox, advance dissemination
    /// (NACK missing chunks with exponential backoff), and run the node's
    /// CPU for up to `cycle_budget` cycles if work is queued. Faults are
    /// recovered kernel-side, mirroring the paper's clean-restart story.
    pub fn step(&mut self, round: u64, cycle_budget: u64) {
        for env in std::mem::take(&mut self.inbox) {
            self.telemetry.rx += 1;
            let lamport = self.clock.observe(env.lamport);
            self.causal.push(CausalRecord {
                lamport,
                round,
                kind: CausalKind::Recv,
                peer: env.from,
                from: env.from,
                seq: env.seq,
                label: env.packet.label(),
            });
            self.receive(round, env.packet);
        }

        // NACK phase: if reassembly has stalled, ask the seeder for what is
        // still missing, backing off exponentially (with per-node jitter so
        // a whole fleet does not synchronize its requests).
        if let Some(d) = &mut self.dissem {
            if round >= d.next_request {
                let missing = d.missing();
                if !missing.is_empty() {
                    let module = d.module;
                    d.backoff = (d.backoff * 2).min(MAX_BACKOFF);
                    let jitter = self.rng.gen_range(0..d.backoff / 2 + 1);
                    d.next_request = round + d.backoff + jitter;
                    self.telemetry.requests += 1;
                    self.transmit(round, SEEDER, Packet::Request { module, missing });
                }
            }
        }

        if self.sys.queue_len() > 0 {
            match self.sys.run_slice(cycle_budget) {
                Ok(_) => {}
                Err(fault) => {
                    self.faults += 1;
                    self.telemetry.metrics.inc("fleet.faults", 1);
                    if matches!(fault, Fault::Env(_)) {
                        self.telemetry.metrics.inc("fleet.contained", 1);
                    }
                    // Freeze the postmortem *before* recovery, while the
                    // architectural state still shows the fault; the fault
                    // is also a local milestone on the causal trace.
                    let lamport = self.clock.tick();
                    self.causal.push(CausalRecord {
                        lamport,
                        round,
                        kind: CausalKind::Local,
                        peer: self.id,
                        from: self.id,
                        seq: 0,
                        label: "fault",
                    });
                    if let Some(rec) = &mut self.recorder {
                        rec.freeze(&self.sys, self.id, round, lamport);
                    }
                    self.sys.recover_from_fault();
                    self.telemetry.metrics.inc("fleet.recoveries", 1);
                }
            }
        }

        if let Some(rec) = &mut self.recorder {
            rec.poll(&self.sys);
        }
        self.telemetry.cycles = self.sys.cycles();
        self.telemetry.idle_cycles = self.sys.idle_cycles();
        self.telemetry.instructions = self.sys.instructions();
        self.telemetry.ring_dropped = self.sys.scope().map_or(0, ScopeSink::dropped);
        // Mirror the env's elided-store total into the metrics registry by
        // delta; the key only ever appears once a store actually elides, so
        // non-prove runs keep an unchanged registry.
        let elided = self.sys.stores_elided();
        if elided > self.elided_seen {
            self.telemetry.metrics.inc("umpu.stores_elided", elided - self.elided_seen);
            self.elided_seen = elided;
        }
        if let Some(wd) = &mut self.watchdog {
            wd.observe(round, self.faults, self.telemetry.requests, self.telemetry.ring_dropped);
            self.telemetry.alerts = wd.alerts().len() as u64;
        }
    }

    /// Snapshot of this node's cumulative totals in tower vocabulary.
    fn tower_totals(&self) -> harbor_tower::CounterSet {
        harbor_tower::CounterSet {
            samples: 0, // set by the delta taker
            cycles: self.telemetry.cycles,
            idle_cycles: self.telemetry.idle_cycles,
            instructions: self.telemetry.instructions,
            rx: self.telemetry.rx,
            tx: self.telemetry.tx,
            messages: self.telemetry.messages,
            queue_drops: self.telemetry.queue_drops,
            chunks: self.telemetry.chunks,
            retransmits: self.telemetry.requests,
            faults: self.faults,
            contained: self.telemetry.contained(),
            recoveries: self.telemetry.recoveries(),
            quarantined: self.telemetry.quarantined(),
            installs: self.sys.modules_installed(),
            unloads: self.sys.modules_unloaded(),
            alerts: self.telemetry.alerts,
            dumps: self.recorder.as_ref().map_or(0, |r| r.dumps().len() as u64),
            ring_dropped: self.telemetry.ring_dropped,
            stores_elided: self.elided_seen,
            images_admitted: self.telemetry.metrics.counter("helm.images_admitted"),
            stages_promoted: self.telemetry.metrics.counter("helm.stages_promoted"),
            rollbacks: self.telemetry.metrics.counter("helm.rollbacks"),
        }
    }

    /// One [`harbor_tower::RoundSample`] for the fleet's feed phase: the
    /// delta of every cumulative counter since the previous sample. Pass
    /// `is_round: false` for a residual drain after the last round (counts
    /// host-side posts that landed after stepping; contributes no sample).
    pub fn tower_sample(&mut self, round: u64, is_round: bool) -> harbor_tower::RoundSample {
        let totals = self.tower_totals();
        let mut deltas = totals.delta(&self.tower_prev);
        self.tower_prev = totals;
        deltas.samples = u64::from(is_round);
        harbor_tower::RoundSample {
            node: self.id,
            cohort: self.cohort,
            round,
            deltas,
            faults_total: self.faults,
            alerts_total: self.telemetry.alerts,
        }
    }

    /// Postmortem dumps frozen since the last feed (tower routing).
    pub fn unrouted_dumps(&mut self) -> Vec<harbor_blackbox::Postmortem> {
        let Some(rec) = &self.recorder else { return Vec::new() };
        let dumps = rec.dumps();
        let fresh = dumps[self.dumps_fed.min(dumps.len())..].to_vec();
        self.dumps_fed = dumps.len();
        fresh
    }

    /// Watchdog alerts raised since the last feed (tower routing).
    pub fn unrouted_alerts(&mut self) -> Vec<harbor_blackbox::Alert> {
        let Some(wd) = &self.watchdog else { return Vec::new() };
        let alerts = wd.alerts();
        let fresh = alerts[self.alerts_fed.min(alerts.len())..].to_vec();
        self.alerts_fed = alerts.len();
        fresh
    }

    fn receive(&mut self, round: u64, packet: Packet) {
        match packet {
            Packet::Advert { module, total } => {
                if self.rollout_blocked(module) {
                    return;
                }
                if !self.has_resolved(module) && self.dissem.is_none() && total > 0 {
                    self.dissem = Some(Dissem::new(module, total, round));
                }
            }
            Packet::Chunk { module, seq, total, payload } => {
                if self.has_resolved(module) || self.rollout_blocked(module) {
                    return;
                }
                if self.dissem.is_none() && total > 0 {
                    self.dissem = Some(Dissem::new(module, total, round));
                }
                let Some(d) = &mut self.dissem else { return };
                if d.module != module || seq as usize >= d.chunks.len() {
                    return;
                }
                if d.chunks[seq as usize].is_none() {
                    d.chunks[seq as usize] = Some(payload);
                    d.have += 1;
                    self.telemetry.chunks += 1;
                    // Progress: restart the backoff clock.
                    d.backoff = 1;
                    d.next_request = round + 2;
                    if d.have == d.chunks.len() {
                        self.finish_dissemination(round);
                    }
                }
            }
            // Only the seeder answers retransmission requests.
            Packet::Request { .. } => {}
            Packet::Msg { dom, msg } => self.post(DomainId::num(dom), msg),
        }
    }

    /// All chunks present: reassemble, verify the checksum and install via
    /// the loader's normal path. A corrupted image restarts reassembly.
    fn finish_dissemination(&mut self, round: u64) {
        let d = self.dissem.as_mut().expect("dissemination in progress");
        let bytes: Vec<u8> =
            d.chunks.iter().flat_map(|c| c.as_deref().expect("complete")).copied().collect();
        match ModuleImage::from_bytes(&bytes) {
            Ok(image) => {
                let module = d.module;
                self.dissem = None;
                let dom = DomainId::num(image.domain);
                let loaded = image.to_loaded();
                // Admission gate: the node's load policy sees the image
                // *before* flash — a module whose certified stack bound
                // exceeds the allotment is quarantined, not installed.
                if self.sys.admit_module(&loaded).is_err() {
                    self.quarantined.push(module);
                    self.telemetry.metrics.inc("fleet.quarantined", 1);
                    return;
                }
                if self.sys.modules.iter().all(|m| m.domain != dom) {
                    // A gated rollout image checkpoints the machine before
                    // flash is touched: rollback restores this clone, so
                    // the node lands back on the exact pre-rollout flash
                    // generation.
                    if self.gate.contains_key(&module) {
                        self.checkpoint = Some((module, Box::new(self.sys.clone())));
                        self.telemetry.metrics.inc("helm.images_admitted", 1);
                    }
                    self.sys.install_module(loaded);
                }
                self.installed.push(module);
                self.telemetry.installed_round = Some(round);
            }
            Err(_) => {
                // The radio only drops packets, so this is defensive — but
                // a node must never burn a corrupted image into flash.
                for c in &mut d.chunks {
                    *c = None;
                }
                d.have = 0;
                d.backoff = 1;
                d.next_request = round + 1;
            }
        }
    }
}
