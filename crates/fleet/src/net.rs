//! The simulated radio: a deterministic, seed-driven packet network with
//! configurable loss and latency.
//!
//! All randomness (drops, delivery delays) comes from one generator owned by
//! the radio and consumed in a fixed order by the fleet's serial phases, so
//! a run is bit-reproducible from the fleet seed no matter how many worker
//! threads step the nodes.

use rand::{Rng, SeedableRng, StdRng};
use std::collections::BTreeMap;

/// Node address on the radio.
pub type NodeId = u32;

/// Send-to-everyone address (every node draws its own loss sample).
pub const BROADCAST: NodeId = u32::MAX;

/// The base station seeding module dissemination.
pub const SEEDER: NodeId = u32::MAX - 1;

/// Radio channel parameters.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Per-destination probability that a packet is lost.
    pub loss: f64,
    /// Minimum delivery latency in rounds (≥ 1: nothing arrives within the
    /// round it was sent).
    pub latency_min: u32,
    /// Maximum delivery latency in rounds (inclusive).
    pub latency_max: u32,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig { loss: 0.0, latency_min: 1, latency_max: 1 }
    }
}

/// A radio frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// Seeder announcement: a module image of `total` chunks is available.
    Advert {
        /// Image identifier.
        module: u16,
        /// Total chunk count.
        total: u16,
    },
    /// One dissemination chunk.
    Chunk {
        /// Image identifier.
        module: u16,
        /// Chunk index.
        seq: u16,
        /// Total chunk count.
        total: u16,
        /// Chunk bytes.
        payload: Vec<u8>,
    },
    /// NACK: a node asks the seeder to retransmit the listed chunks.
    Request {
        /// Image identifier.
        module: u16,
        /// Missing chunk indices (capped per request).
        missing: Vec<u16>,
    },
    /// An application message for a module's handler (what a real radio
    /// stack delivers to the kernel's message queue).
    Msg {
        /// Destination domain.
        dom: u8,
        /// Message type.
        msg: u8,
    },
}

impl Packet {
    /// Short stable label (causal-trace vocabulary).
    pub const fn label(&self) -> &'static str {
        match self {
            Packet::Advert { .. } => "advert",
            Packet::Chunk { .. } => "chunk",
            Packet::Request { .. } => "request",
            Packet::Msg { .. } => "msg",
        }
    }
}

/// A stamped radio frame: the packet plus the causal identity every
/// message on the air carries for fleet-wide happens-before tracing.
/// `(from, seq)` identifies the message (a broadcast is one message
/// received many times); `lamport` is the sender's clock at send time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Originating node ([`SEEDER`] for the base station).
    pub from: NodeId,
    /// Per-origin send sequence number.
    pub seq: u64,
    /// Lamport stamp taken at send time.
    pub lamport: u64,
    /// The payload.
    pub packet: Packet,
}

/// The packet network.
#[derive(Debug)]
pub struct Radio {
    cfg: NetConfig,
    rng: StdRng,
    node_count: u32,
    /// round → (destination, envelope) deliveries due that round.
    in_flight: BTreeMap<u64, Vec<(NodeId, Envelope)>>,
    /// Packets offered to the channel (one per destination after broadcast
    /// fan-out).
    pub sent: u64,
    /// Packets the channel dropped.
    pub dropped: u64,
    /// Packets delivered to an inbox.
    pub delivered: u64,
}

impl Radio {
    /// A radio over `node_count` nodes, seeded deterministically.
    pub fn new(seed: u64, node_count: u32, cfg: NetConfig) -> Radio {
        assert!((0.0..1.0).contains(&cfg.loss), "loss must be in [0, 1)");
        assert!(cfg.latency_min >= 1, "latency_min must be at least 1 round");
        assert!(cfg.latency_max >= cfg.latency_min, "latency range inverted");
        Radio {
            cfg,
            rng: StdRng::seed_from_u64(seed ^ 0x7261_6469_6f21_0000), // "radio!"
            node_count,
            in_flight: BTreeMap::new(),
            sent: 0,
            dropped: 0,
            delivered: 0,
        }
    }

    /// Offers a stamped frame to the channel at `now`. `BROADCAST` fans
    /// out to every node with an independent loss draw per destination
    /// (radio reception is per-receiver) — the fan-out copies share the
    /// envelope's causal identity, as one broadcast is one message; loss
    /// and latency are sampled from the radio's seeded generator.
    pub fn send(&mut self, now: u64, to: NodeId, env: Envelope) {
        if to == BROADCAST {
            for dest in 0..self.node_count {
                self.send_one(now, dest, env.clone());
            }
        } else {
            self.send_one(now, to, env);
        }
    }

    fn send_one(&mut self, now: u64, to: NodeId, env: Envelope) {
        self.sent += 1;
        if self.cfg.loss > 0.0 && self.rng.gen_bool(self.cfg.loss) {
            self.dropped += 1;
            return;
        }
        let delay = if self.cfg.latency_min == self.cfg.latency_max {
            self.cfg.latency_min
        } else {
            self.rng.gen_range(self.cfg.latency_min..self.cfg.latency_max + 1)
        };
        self.in_flight.entry(now + delay as u64).or_default().push((to, env));
    }

    /// Removes and returns every delivery due at `round`, in send order.
    pub fn take_due(&mut self, round: u64) -> Vec<(NodeId, Envelope)> {
        let due = self.in_flight.remove(&round).unwrap_or_default();
        self.delivered += due.len() as u64;
        due
    }

    /// Packets still in flight.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.values().map(Vec::len).sum()
    }

    /// Round of the earliest pending delivery, `None` when the channel is
    /// drained (used by `harbor-pulse` to script quiescence exactly).
    pub fn next_due(&self) -> Option<u64> {
        self.in_flight.keys().next().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(from: NodeId, seq: u64, packet: Packet) -> Envelope {
        Envelope { from, seq, lamport: seq + 1, packet }
    }

    #[test]
    fn same_seed_same_channel() {
        let mk = || {
            let mut r = Radio::new(9, 4, NetConfig { loss: 0.3, latency_min: 1, latency_max: 3 });
            for round in 0..50u64 {
                r.send(round, BROADCAST, env(0, round * 2, Packet::Msg { dom: 0, msg: 1 }));
                r.send(round, 2, env(0, round * 2 + 1, Packet::Msg { dom: 1, msg: 1 }));
            }
            let mut log = Vec::new();
            for round in 0..60u64 {
                log.push(r.take_due(round));
            }
            (r.sent, r.dropped, r.delivered, log)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn loss_drops_roughly_the_configured_fraction() {
        let mut r = Radio::new(1, 1, NetConfig { loss: 0.2, latency_min: 1, latency_max: 1 });
        for round in 0..10_000u64 {
            r.send(round, 0, env(1, round, Packet::Msg { dom: 0, msg: 0 }));
        }
        assert!((1_500..2_500).contains(&(r.dropped as u32)), "dropped {}", r.dropped);
    }

    #[test]
    fn nothing_arrives_in_the_send_round() {
        let mut r = Radio::new(3, 2, NetConfig::default());
        r.send(5, 0, env(1, 0, Packet::Msg { dom: 0, msg: 0 }));
        assert!(r.take_due(5).is_empty());
        let due = r.take_due(6);
        assert_eq!(due.len(), 1);
        // The envelope's causal identity survives the channel.
        assert_eq!(due[0].1.from, 1);
        assert_eq!(due[0].1.lamport, 1);
    }

    #[test]
    fn broadcast_copies_share_one_causal_identity() {
        let mut r = Radio::new(4, 3, NetConfig::default());
        r.send(0, BROADCAST, env(SEEDER, 9, Packet::Advert { module: 1, total: 4 }));
        let due = r.take_due(1);
        assert_eq!(due.len(), 3);
        for (_, e) in &due {
            assert_eq!((e.from, e.seq), (SEEDER, 9));
        }
    }
}
