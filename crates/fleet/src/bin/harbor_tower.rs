//! `harbor-tower`: the fleet-telemetry query surface — per-cohort
//! fault-rate tables, health scores, top-K unhealthy nodes, dump lookup
//! with causal-trace retrieval, JSON + Perfetto export, and a CI gate.
//!
//! ```sh
//! # Built-in demo: a cohorted fleet with one crash-looping cohort;
//! # prints the tables and writes rollup.json + tower_trace.json under
//! # target/tower/.
//! cargo run -p harbor-fleet --bin harbor-tower
//!
//! # Machine-readable rollup on stdout.
//! cargo run -p harbor-fleet --bin harbor-tower -- --json
//!
//! # Postmortem + causal context for one dump id from the demo fleet.
//! cargo run -p harbor-fleet --bin harbor-tower -- --trace n2-r9-c257121
//!
//! # CI invariants.
//! cargo run -p harbor-fleet --bin harbor-tower -- --check
//! ```
//!
//! `--check` validates the pipeline end to end: (1) serial and parallel
//! stepping produce byte-identical rollups; (2) the rollup is independent
//! of the shard count; (3) every counter reconciles *exactly* against raw
//! [`NodeTelemetry`] totals (no sampling, no loss); (4) turbo execution
//! changes nothing and prove changes exactly the `stores_elided` counter;
//! (5) a seeded 512-node crash-loop campaign flags the faulted cohort —
//! and only that cohort — as unhealthy, with the offender list, dump
//! index and causal retrieval all agreeing. Exits non-zero on any
//! violation.

mod cli;

use harbor::DomainId;
use harbor_blackbox::reconstruct;
use harbor_fleet::{
    BlackboxConfig, Fleet, FleetConfig, FleetRollup, ModuleImage, NetConfig, NodeTelemetry,
    TowerConfig,
};
use harbor_tower::{chrome_trace, query, CounterSet};
use mini_sos::kernel::MSG_TIMER;
use mini_sos::{modules, Protection};
use std::process::ExitCode;

/// Cohorts in both scenarios; the crash loop lands on [`BAD_COHORT`].
const COHORTS: u32 = 8;

/// The cohort whose members get the faulting workload.
const BAD_COHORT: u32 = 2;

/// Round the crash loop starts.
const LOOP_START: u64 = 8;

/// Rounds of the identity scenario (small) and the campaign (512 nodes).
const ROUNDS: u64 = 28;

/// Surge (without Tree Routing, so its timer handler faults) lives here.
const SURGE_DOM: u8 = 3;

fn seed() -> u64 {
    match std::env::var("HARBOR_SEED") {
        Ok(v) => v.parse().expect("HARBOR_SEED must be a u64"),
        Err(_) => 0x70_3e_12,
    }
}

/// A cohorted fleet with the blackbox and tower attached: Blink ticks on
/// every node, the bad cohort's Surge timer crash-loops from
/// [`LOOP_START`], and (when `disseminate` is set) Tree Routing is pushed
/// over the radio mid-run to exercise the install/lifecycle counters.
fn run_scenario(
    nodes: usize,
    threads: usize,
    shards: u32,
    turbo: bool,
    prove: bool,
    disseminate: bool,
) -> Fleet {
    let cfg = FleetConfig {
        nodes,
        protection: Protection::Umpu,
        seed: seed(),
        net: NetConfig { loss: 0.1, ..NetConfig::default() },
        threads,
        blackbox: Some(BlackboxConfig::default()),
        turbo,
        prove,
        cohorts: COHORTS,
        tower: Some(TowerConfig { shards, ..TowerConfig::default() }),
        ..FleetConfig::default()
    };
    let mut fleet =
        Fleet::new(&cfg, &[modules::blink(0), modules::surge(SURGE_DOM, 2)]).expect("fleet builds");
    let image = disseminate.then(|| {
        ModuleImage::assemble(&modules::tree_routing(5), &fleet.layout(), cfg.protection)
            .expect("image assembles")
    });
    for round in 0..ROUNDS {
        fleet.post_all(DomainId::num(0), MSG_TIMER);
        if round >= LOOP_START {
            for victim in (BAD_COHORT as usize..nodes).step_by(COHORTS as usize) {
                fleet.post(victim, DomainId::num(SURGE_DOM), MSG_TIMER);
            }
        }
        if round == 4 {
            if let Some(image) = &image {
                fleet.disseminate(image);
            }
        }
        fleet.step_round();
    }
    fleet
}

fn main() -> ExitCode {
    let cli = cli::Cli::parse();
    if cli.flag("--check") {
        run_checks()
    } else if cli.flag("--json") {
        let mut fleet = run_scenario(64, 0, 4, false, false, true);
        println!("{}", fleet.tower_rollup().expect("tower attached").to_json());
        ExitCode::SUCCESS
    } else if cli.flag("--trace") {
        let Some(id) = cli.value("--trace") else {
            eprintln!("harbor-tower: --trace needs a dump id (n<node>-r<round>-c<cycles>)");
            return ExitCode::FAILURE;
        };
        run_trace(id)
    } else {
        run_demo()
    }
}

/// Demo: tables on stdout, rollup JSON + Perfetto timeline on disk.
fn run_demo() -> ExitCode {
    let mut fleet = run_scenario(64, 0, 4, false, false, true);
    let rollup = fleet.tower_rollup().expect("tower attached");
    println!("── cohorts ──");
    print!("{}", query::cohort_table(&rollup));
    println!("\n── top offenders ──");
    print!("{}", query::top_nodes_table(&rollup));
    println!("\n── dumps (query any id with --trace) ──");
    print!("{}", query::dump_table(&rollup));
    let out_dir = std::path::Path::new("target").join("tower");
    std::fs::create_dir_all(&out_dir).expect("create target/tower");
    std::fs::write(out_dir.join("rollup.json"), rollup.to_json()).expect("write rollup");
    std::fs::write(out_dir.join("tower_trace.json"), chrome_trace(&rollup)).expect("write trace");
    println!("\nrollup.json and tower_trace.json (Perfetto) written under {}", out_dir.display());
    ExitCode::SUCCESS
}

/// Dump-id query: the indexed reference, the reconstructed postmortem
/// timeline, and the node's causal-log context around the fault.
fn run_trace(id: &str) -> ExitCode {
    let mut fleet = run_scenario(64, 0, 4, false, false, true);
    let rollup = fleet.tower_rollup().expect("tower attached");
    let Some(dump_ref) = rollup.find_dump(id) else {
        eprintln!("harbor-tower: no dump {id}; known ids:");
        for d in &rollup.dumps {
            eprintln!("  {}", d.id);
        }
        return ExitCode::FAILURE;
    };
    println!("{}", dump_ref.to_json());
    let dumps = fleet.dumps();
    let dump = dumps
        .iter()
        .find(|d| d.node == dump_ref.node && d.fault.cycles == dump_ref.cycles)
        .expect("indexed dump exists");
    println!("timeline:");
    print!("{}", reconstruct(dump).render());
    println!(
        "causal context (node {}, rounds {}..={}):",
        dump.node,
        dump.round.saturating_sub(2),
        dump.round
    );
    for log in fleet.causal_logs() {
        if log.node != dump.node {
            continue;
        }
        for rec in &log.records {
            if rec.round + 2 >= dump.round && rec.round <= dump.round {
                println!(
                    "  lamport {:>4} round {:>3} {:?} peer {} [{}]",
                    rec.lamport, rec.round, rec.kind, rec.peer, rec.label
                );
            }
        }
    }
    ExitCode::SUCCESS
}

/// Sum of a counter over every node's `SosSystem` (lifecycle counters do
/// not appear in `NodeTelemetry`, so reconciliation reads them directly).
fn sys_total(fleet: &mut Fleet, f: impl Fn(&mini_sos::SosSystem) -> u64) -> u64 {
    (0..fleet.len()).map(|i| fleet.with_node(i, |n| f(&n.sys))).sum()
}

fn run_checks() -> ExitCode {
    let failures = std::cell::Cell::new(0u32);
    let fail = |msg: String| {
        eprintln!("FAIL: {msg}");
        failures.set(failures.get() + 1);
    };

    // ── identity legs (small fleet, dissemination included) ──
    let mut serial = run_scenario(24, 1, 4, false, false, true);
    let reference = serial.tower_rollup().expect("tower attached").to_json();

    let parallel = run_scenario(24, 4, 4, false, false, true).tower_rollup().unwrap().to_json();
    if parallel != reference {
        fail("serial and parallel rollups differ".to_string());
    }
    for shards in [1u32, 7] {
        let other =
            run_scenario(24, 4, shards, false, false, true).tower_rollup().unwrap().to_json();
        if other != reference {
            fail(format!("{shards}-shard rollup differs from the 4-shard reference"));
        }
    }
    let turbo = run_scenario(24, 4, 4, true, false, true).tower_rollup().unwrap().to_json();
    if turbo != reference {
        fail("turbo rollup differs from the reference".to_string());
    }

    // Prove changes exactly one counter: stores_elided. Everything else —
    // cycles, faults, radio traffic, dump ids — must match the reference
    // field for field.
    let mut prove_fleet = run_scenario(24, 4, 4, false, true, true);
    let prove_rollup = prove_fleet.tower_rollup().unwrap();
    let ref_rollup = serial.tower_rollup().unwrap();
    let (ref_totals, prove_totals) = (ref_rollup.totals(), prove_rollup.totals());
    // `HARBOR_PROVE=1` enables elision on the reference run too, in which
    // case the two runs must agree on every field including the counter.
    let env_prove = std::env::var_os("HARBOR_PROVE").is_some_and(|v| v == "1");
    for (name, (r, p)) in
        CounterSet::FIELDS.iter().zip(ref_totals.values().into_iter().zip(prove_totals.values()))
    {
        let agree = if *name == "stores_elided" && !env_prove { p > r } else { p == r };
        if !agree {
            fail(format!("prove leg: {name} diverged (reference {r}, prove {p})"));
        }
    }
    let elided_metric = prove_fleet.telemetry().merged_metrics().counter("umpu.stores_elided");
    let elided_sys = sys_total(&mut prove_fleet, mini_sos::SosSystem::stores_elided);
    if prove_totals.stores_elided != elided_metric || elided_metric != elided_sys {
        fail(format!(
            "stores_elided disagrees: rollup {} metric {elided_metric} env {elided_sys}",
            prove_totals.stores_elided
        ));
    }

    // ── exact reconciliation against raw NodeTelemetry ──
    failures.set(failures.get() + reconcile(&mut serial, &ref_rollup));

    // ── the 512-node crash-loop campaign ──
    let mut campaign = run_scenario(512, 4, 4, false, false, false);
    let rollup = campaign.tower_rollup().expect("tower attached");
    let campaign_serial =
        run_scenario(512, 1, 4, false, false, false).tower_rollup().unwrap().to_json();
    if rollup.to_json() != campaign_serial {
        fail("512-node campaign: serial and parallel rollups differ".to_string());
    }
    if rollup.unhealthy() != vec![BAD_COHORT] {
        fail(format!(
            "campaign flagged cohorts {:?}, expected exactly [{BAD_COHORT}]",
            rollup.unhealthy()
        ));
    }
    let bad_health = rollup.health.iter().find(|h| h.cohort == BAD_COHORT).expect("cohort scored");
    if bad_health.regressed_at.is_none_or(|w| w < LOOP_START) {
        fail(format!(
            "regression edge at {:?}, expected at or after round {LOOP_START}",
            bad_health.regressed_at
        ));
    }
    if rollup.top_nodes.is_empty() {
        fail("campaign produced no top offenders".to_string());
    }
    for n in &rollup.top_nodes {
        if n.cohort != BAD_COHORT {
            fail(format!("offender node {} is in cohort {}, not {BAD_COHORT}", n.node, n.cohort));
        }
    }
    if rollup.dumps.is_empty() {
        fail("campaign indexed no dumps".to_string());
    }
    let frozen = campaign.dumps();
    for d in &rollup.dumps {
        if rollup.find_dump(&d.id).is_none() {
            fail(format!("dump {} not findable by its own id", d.id));
        }
        // Causal retrieval: every indexed dump resolves back to a frozen
        // postmortem whose reconstructed timeline ends at the fault.
        match frozen.iter().find(|f| f.node == d.node && f.fault.cycles == d.cycles) {
            None => fail(format!("dump {} has no frozen postmortem", d.id)),
            Some(f) => {
                if !reconstruct(f).ends_at_fault(f) {
                    fail(format!("dump {}: timeline does not end at the fault", d.id));
                }
            }
        }
    }
    failures.set(failures.get() + reconcile(&mut campaign, &rollup));

    if failures.get() == 0 {
        println!(
            "harbor-tower --check: all invariants hold \
             ({} cohorts, {} dumps indexed, cohort {BAD_COHORT} unhealthy at score {})",
            rollup.cohorts.len(),
            rollup.dumps.len(),
            bad_health.score,
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("harbor-tower --check: {} failure(s)", failures.get());
        ExitCode::FAILURE
    }
}

/// Exact reconciliation: every rollup counter equals the corresponding
/// raw telemetry total. Returns the number of mismatches.
fn reconcile(fleet: &mut Fleet, rollup: &FleetRollup) -> u32 {
    let mut failures = 0u32;
    let mut check = |name: &str, rolled: u64, raw: u64| {
        if rolled != raw {
            eprintln!("FAIL: reconciliation: {name} rolled up {rolled}, telemetry says {raw}");
            failures += 1;
        }
    };
    let telemetry = fleet.telemetry();
    let totals = rollup.totals();
    check("samples", totals.samples, telemetry.nodes as u64 * telemetry.rounds);
    check("cycles", totals.cycles, telemetry.total(|n| n.cycles));
    check("idle_cycles", totals.idle_cycles, telemetry.total(|n| n.idle_cycles));
    check("instructions", totals.instructions, telemetry.total(|n| n.instructions));
    check("rx", totals.rx, telemetry.total(|n| n.rx));
    check("tx", totals.tx, telemetry.total(|n| n.tx));
    check("messages", totals.messages, telemetry.total(|n| n.messages));
    check("queue_drops", totals.queue_drops, telemetry.total(|n| n.queue_drops));
    check("chunks", totals.chunks, telemetry.total(|n| n.chunks));
    check("retransmits", totals.retransmits, telemetry.total(|n| n.requests));
    check("faults", totals.faults, telemetry.total(NodeTelemetry::faults));
    check("contained", totals.contained, telemetry.total(NodeTelemetry::contained));
    check("recoveries", totals.recoveries, telemetry.total(NodeTelemetry::recoveries));
    check("quarantined", totals.quarantined, telemetry.total(NodeTelemetry::quarantined));
    check("alerts", totals.alerts, telemetry.total(|n| n.alerts));
    check("ring_dropped", totals.ring_dropped, telemetry.total(|n| n.ring_dropped));
    check("installs", totals.installs, sys_total(fleet, mini_sos::SosSystem::modules_installed));
    check("unloads", totals.unloads, sys_total(fleet, mini_sos::SosSystem::modules_unloaded));
    check(
        "stores_elided",
        totals.stores_elided,
        sys_total(fleet, mini_sos::SosSystem::stores_elided),
    );
    check("dumps", totals.dumps, fleet.dumps().len() as u64);
    check("ingested", rollup.ingested, telemetry.nodes as u64 * telemetry.rounds);
    // The per-cohort fold invariant, end to end.
    for c in &rollup.cohorts {
        let mut sum = c.folded;
        for w in &c.windows {
            sum.add(&w.counters);
        }
        if sum != c.totals {
            eprintln!("FAIL: reconciliation: cohort {} fold invariant broke", c.cohort);
            failures += 1;
        }
    }
    failures
}
