//! `harbor-postmortem`: load flight-recorder crash dumps, reconstruct the
//! cross-domain call timeline that led to each fault, and render a
//! human-readable report — the field-debugging story the paper's protection
//! model enables.
//!
//! ```sh
//! # Built-in demo: fault Surge on a fleet, freeze dumps, print reports
//! # (dump JSONs and the fleet causal trace land in target/blackbox/).
//! cargo run -p harbor-fleet --bin harbor-postmortem
//!
//! # Report previously written dumps (--json for machine-readable output).
//! cargo run -p harbor-fleet --bin harbor-postmortem -- target/blackbox/*.json
//!
//! # CI invariants.
//! cargo run -p harbor-fleet --bin harbor-postmortem -- --check
//! ```
//!
//! `--check` runs the built-in fleet scenario serially and in parallel and
//! validates: (1) every fault a node raised froze exactly one dump; (2)
//! each dump's reconstructed timeline ends at the faulting store recorded
//! in its `FaultRecord`; (3) serial and parallel runs produce byte-identical
//! dump JSON; (4) Lamport stamps are strictly monotone along every
//! happens-before edge of the fleet's causal DAG; (5) every dump survives a
//! JSON round-trip unchanged. Exits non-zero on any violation.

mod cli;

use harbor::DomainId;
use harbor_blackbox::{check_monotone, reconstruct, Postmortem};
use harbor_fleet::{BlackboxConfig, Fleet, FleetConfig, NetConfig};
use mini_sos::kernel::MSG_TIMER;
use mini_sos::{modules, Protection};
use std::process::ExitCode;

/// Fleet size of the built-in scenario.
const NODES: usize = 16;

/// Every 4th node gets the faulting Surge workload.
const VICTIM_STRIDE: usize = 4;

/// Rounds in which the victims' Surge timer fires (each firing faults, so
/// this must stay within the recorder's `max_dumps`).
const FAULT_ROUNDS: [u64; 2] = [8, 16];

/// Total rounds of the scenario.
const ROUNDS: u64 = 24;

fn seed() -> u64 {
    match std::env::var("HARBOR_SEED") {
        Ok(v) => v.parse().expect("HARBOR_SEED must be a u64"),
        Err(_) => 0x5c09e,
    }
}

/// The built-in crash scenario: every node runs Blink plus Surge-without-
/// Tree-Routing (whose timer handler dereferences the 0xff error return);
/// victims get their Surge timer posted in [`FAULT_ROUNDS`], fault, and
/// freeze a postmortem each time.
fn run_scenario(threads: usize) -> Fleet {
    let cfg = FleetConfig {
        nodes: NODES,
        protection: Protection::Umpu,
        seed: seed(),
        net: NetConfig { loss: 0.1, ..NetConfig::default() },
        threads,
        blackbox: Some(BlackboxConfig::default()),
        ..FleetConfig::default()
    };
    let mut fleet =
        Fleet::new(&cfg, &[modules::blink(0), modules::surge(3, 2)]).expect("fleet builds");
    for round in 0..ROUNDS {
        fleet.post_all(DomainId::num(0), MSG_TIMER);
        if FAULT_ROUNDS.contains(&round) {
            for victim in (0..NODES).step_by(VICTIM_STRIDE) {
                fleet.post(victim, DomainId::num(3), MSG_TIMER);
            }
        }
        fleet.step_round();
    }
    fleet
}

/// Renders one dump the way the report prints it.
fn report(dump: &Postmortem) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "═══ node {} · round {} · lamport {} · {} build ═══\n",
        dump.node, dump.round, dump.lamport, dump.protection
    ));
    out.push_str(&format!(
        "fault: code {} at {:#06x} (info {}) on cycle {}\n",
        dump.fault.code, dump.fault.addr, dump.fault.info, dump.fault.cycles
    ));
    out.push_str(&format!(
        "at fault: pc={:#x} sp={:#x} domain={} stack_bound={:#x} safe_stack={:#x}..{:#x} (ptr {:#x})\n",
        dump.at_fault.pc,
        dump.at_fault.sp,
        dump.at_fault.domain,
        dump.at_fault.stack_bound,
        dump.at_fault.safe_stack_base,
        dump.at_fault.safe_stack_limit,
        dump.at_fault.safe_stack_ptr,
    ));
    let owned: Vec<String> = dump
        .ownership
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(d, &n)| format!("dom{d}:{n}"))
        .collect();
    out.push_str(&format!(
        "memory map: {} blocks owned [{}] · {} snapshots · {} safe-stack bytes\n",
        dump.ownership.iter().map(|&n| u64::from(n)).sum::<u64>(),
        owned.join(" "),
        dump.snapshots.len(),
        dump.safe_stack.len(),
    ));
    out.push_str("timeline:\n");
    out.push_str(&reconstruct(dump).render());
    out
}

fn load_dump(path: &str) -> Result<Postmortem, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Postmortem::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let cli = cli::Cli::parse();
    let files = cli.free(&[]);
    if cli.flag("--check") {
        run_checks()
    } else if files.is_empty() {
        run_demo()
    } else {
        let mut dumps = Vec::with_capacity(files.len());
        for path in &files {
            match load_dump(path) {
                Ok(dump) => dumps.push(dump),
                Err(e) => {
                    eprintln!("harbor-postmortem: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        // Report in (node, fault cycle) order, not argv/discovery order:
        // the rendering is diffable no matter how the shell globbed the
        // dump files.
        dumps.sort_by_key(|d| (d.node, d.fault.cycles));
        if cli.flag("--json") {
            let body: Vec<String> = dumps.iter().map(Postmortem::to_json).collect();
            println!("[{}]", body.join(","));
        } else {
            for dump in &dumps {
                println!("{}", report(dump));
            }
        }
        ExitCode::SUCCESS
    }
}

fn run_demo() -> ExitCode {
    let out_dir = std::path::Path::new("target").join("blackbox");
    std::fs::create_dir_all(&out_dir).expect("create target/blackbox");
    let mut fleet = run_scenario(1);
    let dumps = fleet.dumps();
    for (i, dump) in dumps.iter().enumerate() {
        let path = out_dir.join(format!("dump_node{}_{i}.json", dump.node));
        std::fs::write(&path, dump.to_json()).expect("write dump");
        println!("{}", report(dump));
    }
    let trace_path = out_dir.join("causal_trace.json");
    std::fs::write(&trace_path, fleet.causal_trace()).expect("write causal trace");
    println!(
        "{} dumps and the fleet causal trace written under {}",
        dumps.len(),
        out_dir.display()
    );
    ExitCode::SUCCESS
}

fn run_checks() -> ExitCode {
    let mut failures = 0u32;
    let mut fail = |msg: String| {
        eprintln!("FAIL: {msg}");
        failures += 1;
    };

    let mut serial = run_scenario(1);
    let mut parallel = run_scenario(4);
    let dumps = serial.dumps();

    // (1) Every fault froze exactly one dump (the scenario stays within
    // the recorder's dump budget).
    let telemetry = serial.telemetry();
    let faults = telemetry.total(harbor_fleet::NodeTelemetry::faults);
    if faults == 0 {
        fail("scenario raised no faults".to_string());
    }
    if faults != dumps.len() as u64 {
        fail(format!("{faults} faults but {} dumps", dumps.len()));
    }

    for dump in &dumps {
        let tag = format!("node {} round {}", dump.node, dump.round);

        // (2) The reconstructed timeline ends at the faulting store.
        let timeline = reconstruct(dump);
        if !timeline.ends_at_fault(dump) {
            fail(format!("{tag}: timeline does not end at the recorded fault"));
        }
        if timeline.steps.is_empty() {
            fail(format!("{tag}: empty timeline"));
        }

        // (5) Deterministic JSON round-trip.
        let json = dump.to_json();
        match Postmortem::from_json(&json) {
            Ok(back) => {
                if back != *dump {
                    fail(format!("{tag}: JSON round-trip changed the dump"));
                }
                if back.to_json() != json {
                    fail(format!("{tag}: re-rendered JSON differs"));
                }
            }
            Err(e) => fail(format!("{tag}: dump JSON does not parse: {e}")),
        }
    }

    // (3) Serial and parallel runs freeze byte-identical dumps.
    let serial_bytes: Vec<String> = dumps.iter().map(Postmortem::to_json).collect();
    let parallel_bytes: Vec<String> = parallel.dumps().iter().map(Postmortem::to_json).collect();
    if serial_bytes != parallel_bytes {
        fail("serial and parallel dumps differ".to_string());
    }

    // (4) Lamport monotonicity over the whole happens-before DAG.
    if let Err(e) = check_monotone(&serial.causal_logs()) {
        fail(e);
    }
    if let Err(e) = check_monotone(&parallel.causal_logs()) {
        fail(e);
    }

    if failures == 0 {
        println!(
            "harbor-postmortem --check: all invariants hold ({faults} faults, {} dumps)",
            dumps.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("harbor-postmortem --check: {failures} failure(s)");
        ExitCode::FAILURE
    }
}
