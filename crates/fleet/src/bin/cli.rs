//! Minimal shared flag parsing for the `harbor-*` binaries.
//!
//! Every CLI in this workspace takes the same shape of command line —
//! boolean flags (`--check`, `--json`), a few valued flags
//! (`--trace <id>`), and free arguments (dump files) — and each binary
//! used to hand-roll its own `args.iter().any(...)` scan. This module is
//! the one copy, included per-binary with `mod cli;` (or
//! `#[path] mod cli;` from crates that cannot depend on `harbor-fleet`),
//! deliberately not a library export: it is CLI plumbing, not API.

// Included by several binaries, none of which uses every helper.
#![allow(dead_code)]

/// Parsed command line: the arguments after the program name.
pub struct Cli {
    args: Vec<String>,
}

impl Cli {
    /// Parses the process's command line.
    pub fn parse() -> Cli {
        Cli { args: std::env::args().skip(1).collect() }
    }

    /// Whether boolean flag `name` (e.g. `"--json"`) is present.
    pub fn flag(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    /// The operand of valued flag `name` (e.g. `--trace <id>`), if the
    /// flag is present and has one.
    pub fn value(&self, name: &str) -> Option<&str> {
        let pos = self.args.iter().position(|a| a == name)?;
        self.args.get(pos + 1).map(String::as_str)
    }

    /// Whether valued flag `name` is present but missing its operand.
    pub fn value_missing(&self, name: &str) -> bool {
        self.flag(name) && self.value(name).is_none()
    }

    /// Free (non-flag) arguments, skipping the operands of the listed
    /// valued flags.
    pub fn free(&self, valued: &[&str]) -> Vec<&str> {
        let mut out = Vec::new();
        let mut skip = false;
        for a in &self.args {
            if skip {
                skip = false;
                continue;
            }
            if valued.contains(&a.as_str()) {
                skip = true;
                continue;
            }
            if !a.starts_with("--") {
                out.push(a.as_str());
            }
        }
        out
    }
}
