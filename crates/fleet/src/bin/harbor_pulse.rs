//! `harbor-pulse`: host-side pipeline profiling for the fleet simulator —
//! per-phase wall-clock breakdown, idle-work accounting, worker
//! load-imbalance stats, Perfetto host-track export on the shared
//! guest-cycle clock, and a CI gate.
//!
//! ```sh
//! # Built-in demo: disseminate an image to 512 nodes, quiesce, and print
//! # the per-phase table + idle-fraction timeline (pulse.json and a
//! # merged host+guest Perfetto trace land in target/pulse/).
//! cargo run -p harbor-fleet --bin harbor-pulse
//!
//! # Machine-readable report on stdout; --nodes resizes the fleet (the
//! # idle-work scaling curve in EXPERIMENTS.md is four of these).
//! cargo run -p harbor-fleet --bin harbor-pulse -- --json --nodes 128
//!
//! # CI invariants.
//! cargo run -p harbor-fleet --bin harbor-pulse -- --check
//! ```
//!
//! `--check` validates the profiler end to end: (1) timer reconciliation —
//! per-phase laps sum to at most the round wall and the unattributed gap
//! stays within tolerance, on every recorded round of every scenario; (2)
//! idle-ledger exactness — on a radio-silent fleet the ledger equals a
//! host-side census of pending work, round by round; (3) the scripted
//! quiescing dissemination at 512 nodes reports ≥ 90% idle over the
//! post-quiescence window, with the ledger's inbox count reconciling
//! exactly against radio deliveries; (4) pulse is free when disabled and
//! invisible when enabled — serial, parallel, pulse-on and pulse-off runs
//! of one seed produce byte-identical fleet telemetry, and serial and
//! parallel ledgers match byte for byte. Exits non-zero on any violation.

mod cli;

use harbor::DomainId;
use harbor_fleet::{Fleet, FleetConfig, ModuleImage, NetConfig};
use harbor_pulse::{LedgerTotals, PulseReport, RoundRecord};
use mini_sos::kernel::MSG_TIMER;
use mini_sos::{modules, Protection};
use std::process::ExitCode;

/// Post-quiescence observation window (rounds). Two advert periods, so
/// the window always contains re-advert deliveries — the idle fraction is
/// measured against real (sparse) traffic, not dead air.
const WINDOW: u64 = 32;

/// Convergence deadline for the dissemination scenario.
const MAX_ROUNDS: u64 = 600;

/// Node count of the headline scenario (matches the acceptance gate).
const NODES: usize = 512;

fn seed() -> u64 {
    match std::env::var("HARBOR_SEED") {
        Ok(v) => v.parse().expect("HARBOR_SEED must be a u64"),
        Err(_) => 0x9a15e,
    }
}

fn config(nodes: usize, threads: usize, pulse: bool) -> FleetConfig {
    FleetConfig {
        nodes,
        protection: Protection::Umpu,
        seed: seed(),
        net: NetConfig { loss: 0.1, ..NetConfig::default() },
        threads,
        pulse,
        ..FleetConfig::default()
    }
}

/// Facts about one quiescing-dissemination run the checks assert on.
struct Quiesced {
    fleet: Fleet,
    /// Round the fleet converged.
    converged_at: u64,
    /// First round of the post-quiescence window.
    window_start: u64,
    /// `radio delivered` totals at the window's start and end.
    delivered: (u64, u64),
}

/// The headline scenario: disseminate Tree Routing over a 10%-lossy radio,
/// run to convergence, drain the channel, then observe [`WINDOW`] rounds
/// of steady state (only the seeder's periodic re-adverts arrive).
fn quiesce_scenario(nodes: usize, threads: usize, pulse: bool) -> Quiesced {
    let cfg = config(nodes, threads, pulse);
    let mut fleet = Fleet::new(&cfg, &[modules::blink(0)]).expect("fleet builds");
    let image = ModuleImage::assemble(&modules::tree_routing(3), &fleet.layout(), cfg.protection)
        .expect("image assembles");
    fleet.disseminate(&image);
    let converged_at = fleet.run_until_converged(MAX_ROUNDS).expect("fleet converges");
    // Drain stragglers so the window starts with an empty channel (the
    // seeder's next advert is the only future traffic).
    for _ in 0..64 {
        if fleet.radio_stats().3 == 0 {
            break;
        }
        fleet.step_round();
    }
    assert_eq!(fleet.radio_stats().3, 0, "channel did not drain");
    let delivered_start = fleet.radio_stats().1;
    let window_start = fleet.round();
    fleet.run_rounds(WINDOW);
    let delivered_end = fleet.radio_stats().1;
    Quiesced { fleet, converged_at, window_start, delivered: (delivered_start, delivered_end) }
}

/// The retained records of the post-quiescence window.
fn window_records(report: &PulseReport, window_start: u64) -> Vec<&RoundRecord> {
    report.timeline.iter().filter(|r| r.round >= window_start).collect()
}

/// Ledger summed over the window records.
fn window_ledger(records: &[&RoundRecord]) -> LedgerTotals {
    let mut total = LedgerTotals::default();
    for r in records {
        total.merge(&r.ledger);
    }
    total
}

fn main() -> ExitCode {
    let cli = cli::Cli::parse();
    let nodes = match cli.value("--nodes") {
        Some(v) => match v.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("harbor-pulse: --nodes must be a positive integer");
                return ExitCode::FAILURE;
            }
        },
        None => {
            if cli.value_missing("--nodes") {
                eprintln!("harbor-pulse: --nodes needs a fleet size");
                return ExitCode::FAILURE;
            }
            NODES
        }
    };
    if cli.flag("--check") {
        run_checks()
    } else if cli.flag("--json") {
        let q = quiesce_scenario(nodes, 0, true);
        println!("{}", q.fleet.pulse_report().expect("pulse attached").to_json());
        ExitCode::SUCCESS
    } else {
        run_demo(nodes)
    }
}

/// Demo: tables on stdout; report JSON and a merged host+guest Perfetto
/// document on disk.
fn run_demo(nodes: usize) -> ExitCode {
    let cfg =
        FleetConfig { scope: Some(harbor_scope::SinkSpec::Ring(512)), ..config(nodes, 0, true) };
    let mut fleet = Fleet::new(&cfg, &[modules::blink(0)]).expect("fleet builds");
    let image = ModuleImage::assemble(&modules::tree_routing(3), &fleet.layout(), cfg.protection)
        .expect("image assembles");
    fleet.disseminate(&image);
    let converged = fleet.run_until_converged(MAX_ROUNDS).expect("fleet converges");
    // Steady state after convergence, with a burst of host-side timer load
    // every 8th round — the timeline below shows both faces: fully-busy
    // rounds (every node has queued work) and the quiescent rounds between
    // them where only the periodic re-advert interrupts the idling.
    for i in 0..WINDOW {
        if i % 8 == 0 {
            fleet.post_all(DomainId::num(0), MSG_TIMER);
        }
        fleet.step_round();
    }
    let report = fleet.pulse_report().expect("pulse attached");

    println!(
        "── pipeline ({} nodes, {} threads, converged at round {converged}) ──",
        fleet.len(),
        fleet.threads()
    );
    print!("{}", report.render_table());
    println!("\n── idle-work timeline (last 24 rounds) ──");
    let tail = PulseReport {
        timeline: report.timeline[report.timeline.len().saturating_sub(24)..].to_vec(),
        ..report.clone()
    };
    print!("{}", tail.render_timeline());

    let out_dir = std::path::Path::new("target").join("pulse");
    std::fs::create_dir_all(&out_dir).expect("create target/pulse");
    std::fs::write(out_dir.join("pulse.json"), report.to_json()).expect("write report");
    // Interleave the host phase spans with node 0's guest trace: both
    // documents are stamped on the guest-cycle clock (host spans are
    // projected onto the cycle frontier), and host pids start at
    // 1,000,000 so the tracks never collide.
    let host_doc = harbor_pulse::chrome_trace(&report);
    let guest_events =
        fleet.with_node(0, |n| n.sys.scope().map(|s| s.events()).unwrap_or_default());
    let guest_doc = harbor_scope::export::chrome_trace(&guest_events);
    let merged = harbor_scope::export::merge_chrome_traces(&[&host_doc, &guest_doc]);
    std::fs::write(out_dir.join("pulse_trace.json"), merged).expect("write trace");
    println!(
        "\npulse.json and pulse_trace.json (Perfetto, host + node 0 guest tracks) \
         written under {}",
        out_dir.display()
    );
    ExitCode::SUCCESS
}

fn run_checks() -> ExitCode {
    let failures = std::cell::Cell::new(0u32);
    let fail = |msg: String| {
        eprintln!("FAIL: {msg}");
        failures.set(failures.get() + 1);
    };

    // ── (2) idle-ledger exactness on a radio-silent fleet ──
    // No seeder, no traffic: a node's pending work before `step_round` is
    // exactly what the ledger must classify (the deliver phase has nothing
    // to add), so a host-side census must match round by round.
    for threads in [1usize, 4] {
        let cfg = config(64, threads, true);
        let mut fleet = Fleet::new(&cfg, &[modules::blink(0)]).expect("fleet builds");
        let mut census = Vec::new();
        for round in 0..8u64 {
            if round == 0 || round == 3 {
                fleet.post_all(DomainId::num(0), MSG_TIMER);
            }
            let busy = (0..fleet.len())
                .filter(|&i| fleet.with_node(i, |n| n.pending_work().any()))
                .count() as u64;
            census.push(busy);
            fleet.step_round();
        }
        let report = fleet.pulse_report().expect("pulse attached");
        for (r, &expect) in report.timeline.iter().zip(&census) {
            let l = &r.ledger;
            if l.busy != expect || l.queue != expect || l.inbox != 0 || l.ota != 0 {
                fail(format!(
                    "census ({threads} threads) round {}: ledger {} but census counted {expect}",
                    r.round,
                    l.to_json()
                ));
            }
        }
        if report.ledger.stepped != 8 * 64 {
            fail(format!(
                "census ({threads} threads): {} node-steps recorded, expected {}",
                report.ledger.stepped,
                8 * 64
            ));
        }
        failures.set(failures.get() + reconcile("census", &report));
    }

    // ── (3) the quiescing dissemination at 512 nodes ──
    let q = quiesce_scenario(NODES, 4, true);
    let report = q.fleet.pulse_report().expect("pulse attached");
    failures.set(failures.get() + reconcile("dissemination", &report));
    let records = window_records(&report, q.window_start);
    if records.len() != WINDOW as usize {
        fail(format!(
            "window: {} retained records, expected {WINDOW} (timeline ring too small?)",
            records.len()
        ));
    }
    let win = window_ledger(&records);
    if win.idle_per_myriad() < 9_000 {
        fail(format!(
            "post-quiescence window is only {}‱ idle ({}), expected >= 9000‱",
            win.idle_per_myriad(),
            win.to_json()
        ));
    }
    // Exactness of the window's busy accounting: post-quiescence the only
    // traffic is the seeder's broadcast re-advert — at most one packet
    // per node per round — so nodes-with-inbox must equal packets
    // delivered, and nothing else may be pending.
    let delivered = q.delivered.1 - q.delivered.0;
    if win.inbox != delivered {
        fail(format!(
            "window inbox count {} != radio deliveries {delivered} over the window",
            win.inbox
        ));
    }
    if win.ota != 0 || win.queue != 0 || win.busy != win.inbox {
        fail(format!("window has phantom pending work: {}", win.to_json()));
    }
    if delivered == 0 {
        fail("window saw no re-advert deliveries; the idle gate proved nothing".to_string());
    }

    // ── (4) identity: pulse is invisible on and free off ──
    let mut on_serial = quiesce_scenario(64, 1, true);
    let mut on_parallel = quiesce_scenario(64, 4, true);
    let mut off_serial = quiesce_scenario(64, 1, false);
    let mut off_parallel = quiesce_scenario(64, 4, false);
    let reference = on_serial.fleet.telemetry().comparable_json();
    for (name, fleet) in [
        ("pulse-on parallel", &mut on_parallel.fleet),
        ("pulse-off serial", &mut off_serial.fleet),
        ("pulse-off parallel", &mut off_parallel.fleet),
    ] {
        if fleet.telemetry().comparable_json() != reference {
            fail(format!("{name} telemetry differs from the pulse-on serial reference"));
        }
    }
    if off_serial.fleet.pulse_report().is_some() {
        fail("pulse-off fleet served a pulse report".to_string());
    }
    if on_serial.converged_at != off_serial.converged_at {
        fail("pulse changed the convergence round".to_string());
    }
    let serial_report = on_serial.fleet.pulse_report().expect("pulse attached");
    let parallel_report = on_parallel.fleet.pulse_report().expect("pulse attached");
    if serial_report.ledger_json() != parallel_report.ledger_json() {
        fail(format!(
            "serial and parallel ledgers differ: {} vs {}",
            serial_report.ledger_json(),
            parallel_report.ledger_json()
        ));
    }
    // The per-round ledgers must agree too, not just the totals.
    for (s, p) in serial_report.timeline.iter().zip(&parallel_report.timeline) {
        if s.ledger != p.ledger {
            fail(format!(
                "round {}: serial ledger {} != parallel ledger {}",
                s.round,
                s.ledger.to_json(),
                p.ledger.to_json()
            ));
        }
    }
    failures.set(failures.get() + reconcile("identity serial", &serial_report));
    failures.set(failures.get() + reconcile("identity parallel", &parallel_report));

    if failures.get() == 0 {
        println!(
            "harbor-pulse --check: all invariants hold \
             ({NODES} nodes converged at round {}, window {}\u{2031} idle, \
             {delivered} re-advert deliveries reconciled)",
            q.converged_at,
            win.idle_per_myriad(),
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("harbor-pulse --check: {} failure(s)", failures.get());
        ExitCode::FAILURE
    }
}

/// (1) Timer reconciliation on one report; returns the violation count.
fn reconcile(name: &str, report: &PulseReport) -> u32 {
    let bad = report.reconcile();
    for msg in &bad {
        eprintln!("FAIL: {name}: {msg}");
    }
    bad.len() as u32
}
