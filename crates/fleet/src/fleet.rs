//! Round-based parallel stepping of a whole fleet of nodes.
//!
//! Each round has three phases:
//!
//! 1. **deliver** (serial): packets due this round move from the radio to
//!    node inboxes and the seeder; the seeder answers retransmission
//!    requests and re-advertises. All radio RNG draws happen here, in a
//!    fixed order.
//! 2. **step** (parallel): every node consumes its inbox and runs its CPU.
//!    Nodes touch only their own state, so the phase is embarrassingly
//!    parallel — worker threads grab batches of nodes from a shared cursor
//!    (dynamic work stealing), and a `threads = 1` run visits the same
//!    nodes in the same per-node order.
//! 3. **collect** (serial): node outboxes drain onto the radio in node-id
//!    order.
//!
//! Because every RNG is owned (radio, per-node) and consumed in a
//! schedule-independent order, serial and parallel runs of one seed produce
//! byte-identical telemetry.

use crate::image::ModuleImage;
use crate::net::{Envelope, NetConfig, Packet, Radio, BROADCAST, SEEDER};
use crate::node::Node;
use crate::telemetry::FleetTelemetry;
use harbor::DomainId;
use harbor_blackbox::{
    Alert, CausalKind, CausalLog, CausalRecord, FlightRecorder, LamportClock, Postmortem,
    RecorderConfig, Watchdog, WatchdogConfig, SEEDER_ID,
};
use harbor_pulse::{Phase, Pulse, PulseReport, RoundLedger, RoundTiming, StepStats, WorkerStat};
use harbor_tower::{FleetRollup, Tower, TowerConfig};
use mini_sos::loader::{LoadError, ModuleSource};
use mini_sos::{Protection, SosLayout, SosSystem};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Nodes a worker claims per grab of the shared cursor.
const BATCH: usize = 4;

/// Rounds between seeder re-adverts.
const ADVERT_PERIOD: u64 = 16;

/// Most chunks the seeder rebroadcasts per round.
const MAX_REBROADCAST: usize = 64;

/// Fleet parameters.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Node count.
    pub nodes: usize,
    /// Protection build every node boots with.
    pub protection: Protection,
    /// Master seed; every generator in the run derives from it.
    pub seed: u64,
    /// Radio channel parameters.
    pub net: NetConfig,
    /// Cycle budget per node per round.
    pub cycle_budget: u64,
    /// Worker threads for the step phase; `0` = one per available core.
    pub threads: usize,
    /// Dissemination chunk payload size in bytes.
    pub chunk_bytes: usize,
    /// Optional admission policy every node applies to disseminated
    /// modules (SFI builds only): an image whose certified stack bound
    /// exceeds the allotment is quarantined instead of installed.
    pub load_policy: Option<mini_sos::LoadPolicy>,
    /// Optional per-node trace sink. When set, every node carries a sink of
    /// this shape (typically a small `Ring` — bounded memory per node) and
    /// [`Fleet::telemetry`] includes the fleet-wide
    /// [`crate::ScopeAggregate`]. Tracing is observational: attaching sinks
    /// leaves the simulated machines byte-identical.
    pub scope: Option<harbor_scope::SinkSpec>,
    /// Optional blackbox wiring. When set, every node carries a
    /// [`FlightRecorder`] (whose masked ring becomes the node's trace sink
    /// unless `scope` is set explicitly) and a [`Watchdog`] fed from the
    /// node's own telemetry each round. Like `scope`, the blackbox is
    /// observational: the simulated machines stay byte-identical.
    pub blackbox: Option<BlackboxConfig>,
    /// Run every node through the `harbor-turbo` fast-path engine.
    /// Execution is cycle-, state- and telemetry-identical either way
    /// (regression-tested in `tests/fleet_turbo.rs`); turbo only removes
    /// per-instruction fetch/decode work, so large fleets step faster.
    pub turbo: bool,
    /// Enable certified store-check elision (`harbor-prove`) on every node.
    /// Under the UMPU build, admission derives a `harbor-flow` store
    /// certificate per module and statically proven stores skip the
    /// memory-map-checker walk. Execution is cycle-, state- and
    /// telemetry-identical either way (regression-tested in
    /// `tests/fleet_prove.rs`); a no-op under the other builds.
    pub prove: bool,
    /// Cohort count for telemetry grouping: node `i` is tagged cohort
    /// `i % cohorts`. Purely observational (a stand-in for a rollout ring
    /// or hardware batch); `1` puts the whole fleet in cohort 0.
    pub cohorts: u32,
    /// Optional telemetry-aggregation pipeline. When set, the fleet feeds
    /// every node's per-round counter deltas, postmortem dumps and
    /// watchdog alerts into a [`harbor_tower::Tower`] and
    /// [`Fleet::tower_rollup`] serves the merged per-cohort rollup.
    /// Observational like `scope`/`blackbox`: the simulated machines stay
    /// byte-identical.
    pub tower: Option<TowerConfig>,
    /// Attach the `harbor-pulse` host-side profiler: per-round per-phase
    /// wall-clock timers, per-worker step stats and the idle-work ledger,
    /// served by [`Fleet::pulse_report`]. Strictly observational — pulse
    /// reads node state and the host clock and never touches a machine,
    /// an RNG or the telemetry JSON (regression-tested in
    /// `tests/fleet_pulse.rs`) — and when `false` the step path is the
    /// exact uninstrumented loop, not a timer that discards its reads.
    pub pulse: bool,
}

/// Blackbox sizing for every node in the fleet: flight-recorder depth and
/// watchdog budgets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlackboxConfig {
    /// Per-node flight-recorder sizing.
    pub recorder: RecorderConfig,
    /// Per-node anomaly-detector budgets.
    pub watchdog: WatchdogConfig,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            nodes: 64,
            protection: Protection::Umpu,
            seed: 0x4852_4252, // "HRBR"
            net: NetConfig::default(),
            cycle_budget: 250_000,
            threads: 0,
            chunk_bytes: 32,
            load_policy: None,
            scope: None,
            blackbox: None,
            turbo: false,
            prove: false,
            cohorts: 1,
            tower: None,
            pulse: false,
        }
    }
}

/// The base station: holds the chunk store for one disseminated image and
/// answers retransmission requests.
#[derive(Debug)]
struct Seeder {
    image_id: u16,
    chunks: Vec<Vec<u8>>,
    inbox: Vec<Envelope>,
    pending: BTreeSet<u16>,
    announced: bool,
    clock: LamportClock,
    causal: CausalLog,
    seq: u64,
}

impl Seeder {
    /// Broadcasts `packet` under the seeder's causal identity
    /// ([`SEEDER_ID`]): tick, stamp, log, send.
    fn send(&mut self, round: u64, radio: &mut Radio, packet: Packet) {
        let lamport = self.clock.tick();
        let seq = self.seq;
        self.seq += 1;
        self.causal.push(CausalRecord {
            lamport,
            round,
            kind: CausalKind::Send,
            peer: BROADCAST,
            from: SEEDER_ID,
            seq,
            label: packet.label(),
        });
        radio.send(round, BROADCAST, Envelope { from: SEEDER_ID, seq, lamport, packet });
    }

    fn step(&mut self, round: u64, radio: &mut Radio) {
        for env in std::mem::take(&mut self.inbox) {
            let lamport = self.clock.observe(env.lamport);
            self.causal.push(CausalRecord {
                lamport,
                round,
                kind: CausalKind::Recv,
                peer: env.from,
                from: env.from,
                seq: env.seq,
                label: env.packet.label(),
            });
            if let Packet::Request { module, missing } = env.packet {
                if module == self.image_id {
                    self.pending
                        .extend(missing.into_iter().filter(|&s| (s as usize) < self.chunks.len()));
                }
            }
        }
        let total = self.chunks.len() as u16;
        if !self.announced {
            // Initial push: advert plus the full image, once.
            self.send(round, radio, Packet::Advert { module: self.image_id, total });
            for seq in 0..self.chunks.len() {
                let chunk = Packet::Chunk {
                    module: self.image_id,
                    seq: seq as u16,
                    total,
                    payload: self.chunks[seq].clone(),
                };
                self.send(round, radio, chunk);
            }
            self.announced = true;
            return;
        }
        if round.is_multiple_of(ADVERT_PERIOD) {
            self.send(round, radio, Packet::Advert { module: self.image_id, total });
        }
        // NACK-driven repair: rebroadcast what anyone asked for, lowest
        // sequence first, bounded per round.
        for _ in 0..MAX_REBROADCAST {
            let Some(seq) = self.pending.pop_first() else { break };
            let chunk = Packet::Chunk {
                module: self.image_id,
                seq,
                total,
                payload: self.chunks[seq as usize].clone(),
            };
            self.send(round, radio, chunk);
        }
    }
}

/// A population of simulated sensor nodes on a shared lossy radio.
#[derive(Debug)]
pub struct Fleet {
    cfg: FleetConfig,
    threads: usize,
    layout: SosLayout,
    nodes: Vec<Mutex<Node>>,
    radio: Radio,
    seeder: Option<Seeder>,
    // Causal identity (clock, log, sequence counter) of a seeder retired
    // by a rollout commit/rollback, so a later dissemination never reuses
    // `(SEEDER_ID, seq)` identities or rewinds the Lamport clock.
    retired_seeder: Option<(LamportClock, CausalLog, u64)>,
    // Images retained for rollout management: the one in flight (so a
    // stage extension can re-seed it) and the last committed known-good.
    rollouts: BTreeMap<u16, ModuleImage>,
    known_good: Option<u16>,
    tower: Option<Tower>,
    pulse: Option<Pulse>,
    next_image_id: u16,
    round: u64,
}

/// Marks a phase boundary on the chained lap clock: returns the
/// nanoseconds since the previous boundary and advances the chain. The
/// laps partition one interval on the monotonic clock, so their sum can
/// never exceed a stopwatch started before the chain and read after it.
fn lap(chain: &mut Option<Instant>) -> u64 {
    match chain {
        Some(prev) => {
            let now = Instant::now();
            let ns = now.duration_since(*prev).as_nanos() as u64;
            *chain = Some(now);
            ns
        }
        None => 0,
    }
}

impl Fleet {
    /// Builds and boots `cfg.nodes` identical nodes, each running `sources`
    /// under `cfg.protection`. One prototype system is built and booted,
    /// then cloned per node — machine state is a plain value, so every node
    /// starts bit-identical.
    ///
    /// # Errors
    ///
    /// [`LoadError`] if a module cannot be sandboxed or does not fit.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.nodes` is zero or the prototype fails to boot.
    pub fn new(cfg: &FleetConfig, sources: &[ModuleSource]) -> Result<Fleet, LoadError> {
        assert!(cfg.nodes > 0, "a fleet needs at least one node");
        let mut proto = SosSystem::build(cfg.protection, sources, |a, api| {
            api.run_scheduler(a);
            a.brk();
        })?;
        proto.boot().expect("prototype boots");
        proto.set_load_policy(cfg.load_policy);
        // Enable on the *prototype*, before cloning: priming decodes the
        // flash image once, and every node then shares it behind an `Arc`.
        // Only ever enable here — a system built under `HARBOR_TURBO=1`
        // already carries an engine, so the CI matrix leg covers the fleet
        // path too.
        // Prove before turbo: the decoded pages bake the elision bit, so
        // the map must be published before the engine primes.
        if cfg.prove && !proto.prove_enabled() {
            proto.set_prove(true);
        }
        if cfg.turbo && !proto.turbo_enabled() {
            proto.set_turbo(true);
        }
        let layout = proto.layout;
        let nodes = (0..cfg.nodes)
            .map(|i| {
                let mut sys = proto.clone();
                if let Some(spec) = cfg.scope {
                    sys.attach_scope(spec.build());
                }
                let mut node = Node::new(i as u32, cfg.seed, sys);
                node.cohort = i as u32 % cfg.cohorts.max(1);
                if let Some(bb) = cfg.blackbox {
                    let recorder = FlightRecorder::new(bb.recorder);
                    // An explicit scope spec wins; otherwise the recorder
                    // brings its own masked ring.
                    if cfg.scope.is_none() {
                        node.sys.attach_scope(recorder.sink());
                    }
                    node.recorder = Some(recorder);
                    node.watchdog = Some(Watchdog::new(i as u32, bb.watchdog));
                }
                Mutex::new(node)
            })
            .collect();
        let threads = match cfg.threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            t => t,
        };
        Ok(Fleet {
            cfg: *cfg,
            threads,
            layout,
            nodes,
            radio: Radio::new(cfg.seed, cfg.nodes as u32, cfg.net),
            seeder: None,
            retired_seeder: None,
            rollouts: BTreeMap::new(),
            known_good: None,
            tower: cfg.tower.as_ref().map(Tower::new),
            pulse: cfg.pulse.then(Pulse::new),
            next_image_id: 1,
            round: 0,
        })
    }

    /// The layout shared by every node (for assembling images at the base
    /// station).
    pub fn layout(&self) -> SosLayout {
        self.layout
    }

    /// Protection build every node boots with.
    pub fn protection(&self) -> Protection {
        self.cfg.protection
    }

    /// The admission policy every node applies to disseminated modules.
    pub fn load_policy(&self) -> Option<mini_sos::LoadPolicy> {
        self.cfg.load_policy
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the fleet is empty (never true — `new` requires a node).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Rounds stepped so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Worker threads the step phase uses (resolved from the config).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Starts disseminating `image` from the base station: the seeder
    /// adverts + pushes the full chunked image next round, then serves
    /// NACK-driven retransmissions until the fleet converges. Returns the
    /// image id nodes will report.
    pub fn disseminate(&mut self, image: &ModuleImage) -> u16 {
        let id = self.next_image_id;
        self.next_image_id += 1;
        self.seed_image(id, image);
        id
    }

    /// Points the base station at `image` under an existing id. The
    /// seeder's causal identity (clock, log, sequence counter) outlives
    /// any one dissemination — a later image must not reuse
    /// `(SEEDER_ID, seq)` message identities or rewind the clock.
    fn seed_image(&mut self, id: u16, image: &ModuleImage) {
        let (clock, causal, seq) = match self.seeder.take() {
            Some(s) => (s.clock, s.causal, s.seq),
            None => match self.retired_seeder.take() {
                Some(identity) => identity,
                None => (LamportClock::new(), CausalLog::new(SEEDER_ID), 0),
            },
        };
        self.seeder = Some(Seeder {
            image_id: id,
            chunks: image.chunks(self.cfg.chunk_bytes),
            inbox: Vec::new(),
            pending: BTreeSet::new(),
            announced: false,
            clock,
            causal,
            seq,
        });
    }

    /// Quiesces the base station, preserving its causal identity for the
    /// next dissemination. Called when a rollout commits (the fleet has
    /// the image) or rolls back (nobody should keep downloading it).
    fn retire_seeder(&mut self) {
        if let Some(s) = self.seeder.take() {
            self.retired_seeder = Some((s.clock, s.causal, s.seq));
        }
    }

    /// Starts a *staged* dissemination of `image`: only nodes in
    /// `cohorts` may download and flash it; every other node is gated
    /// ineligible and ignores the image's adverts and chunks. Each
    /// eligible node checkpoints its machine immediately before flashing,
    /// so [`Fleet::rollback_rollout`] can restore the exact pre-rollout
    /// state. Returns the image id. Gating is host-side management (not
    /// radio traffic): an ungated fleet run is byte-identical to one that
    /// never used rollouts.
    pub fn begin_rollout(&mut self, image: &ModuleImage, cohorts: &[u32]) -> u16 {
        let id = self.disseminate(image);
        self.rollouts.insert(id, image.clone());
        for n in &mut self.nodes {
            let node = n.get_mut().expect("node lock");
            let eligible = cohorts.contains(&node.cohort);
            node.arm_rollout(id, eligible);
        }
        id
    }

    /// Widens rollout `id` to `cohorts` (a stage promotion): newly
    /// eligible nodes get their stage grant, and the base station
    /// re-pushes the full image so they hear an advert without waiting
    /// for the periodic re-advert.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a retained rollout image.
    pub fn extend_rollout(&mut self, id: u16, cohorts: &[u32]) {
        for n in &mut self.nodes {
            let node = n.get_mut().expect("node lock");
            if cohorts.contains(&node.cohort) {
                node.arm_rollout(id, true);
            }
        }
        match &mut self.seeder {
            Some(s) if s.image_id == id => s.announced = false,
            _ => {
                let image = self.rollouts.get(&id).expect("rollout image retained").clone();
                self.seed_image(id, &image);
            }
        }
    }

    /// Rolls back rollout `id` fleet-wide: the seeder stops serving the
    /// image, every node that flashed it restores its pre-flash
    /// checkpoint (landing on the exact pre-rollout flash generation),
    /// and every node quarantines the id so still-circulating chunks are
    /// never reassembled.
    pub fn rollback_rollout(&mut self, id: u16) {
        if self.seeder.as_ref().is_some_and(|s| s.image_id == id) {
            self.retire_seeder();
        }
        for n in &mut self.nodes {
            n.get_mut().expect("node lock").rollback_rollout(id);
        }
        self.rollouts.remove(&id);
    }

    /// Commits rollout `id` as the fleet's known-good image: checkpoints
    /// and gates are dropped, the seeder retires, and the image is
    /// retained for future reference ([`Fleet::known_good_image`]).
    pub fn commit_rollout(&mut self, id: u16) {
        if self.seeder.as_ref().is_some_and(|s| s.image_id == id) {
            self.retire_seeder();
        }
        for n in &mut self.nodes {
            n.get_mut().expect("node lock").commit_rollout(id);
        }
        if let Some(prev) = self.known_good.replace(id) {
            if prev != id {
                self.rollouts.remove(&prev);
            }
        }
    }

    /// The last committed rollout image id, if any rollout ever committed.
    pub fn known_good(&self) -> Option<u16> {
        self.known_good
    }

    /// The last committed rollout image (retained at commit).
    pub fn known_good_image(&self) -> Option<&ModuleImage> {
        self.known_good.and_then(|id| self.rollouts.get(&id))
    }

    /// Cohort count the fleet was built with (≥ 1).
    pub fn cohorts(&self) -> u32 {
        self.cfg.cohorts.max(1)
    }

    /// Whether every node has installed the image under dissemination
    /// (vacuously true with no seeder).
    pub fn converged(&self) -> bool {
        let Some(seeder) = &self.seeder else { return true };
        self.nodes.iter().all(|n| n.lock().expect("node lock").has_installed(seeder.image_id))
    }

    /// Host-side message injection on one node (a local sensor event).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn post(&mut self, node: usize, dom: DomainId, msg: u8) {
        self.nodes[node].get_mut().expect("node lock").post(dom, msg);
    }

    /// Host-side message injection on every node.
    pub fn post_all(&mut self, dom: DomainId, msg: u8) {
        for n in &mut self.nodes {
            n.get_mut().expect("node lock").post(dom, msg);
        }
    }

    /// Runs `f` against one node (host-side inspection or injection).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn with_node<R>(&mut self, node: usize, f: impl FnOnce(&mut Node) -> R) -> R {
        f(self.nodes[node].get_mut().expect("node lock"))
    }

    /// One simulation round: deliver → step (parallel) → collect.
    pub fn step_round(&mut self) {
        let round = self.round;
        // Pulse timing: a whole-round stopwatch anchored *before* the lap
        // chain starts and read *after* its last boundary, so
        // `Σ phase_ns <= wall_ns` holds by clock monotonicity — the gap is
        // the unattributed slack `harbor-pulse --check` gates on.
        let wall = self.pulse.as_ref().map(|_| Instant::now());
        let mut chain = wall.map(|_| Instant::now());
        let mut phase_ns = [0u64; Phase::COUNT];

        // Phase 1 (serial): deliveries and the seeder's transmissions.
        for (dest, env) in self.radio.take_due(round) {
            if dest == SEEDER {
                if let Some(seeder) = &mut self.seeder {
                    seeder.inbox.push(env);
                }
            } else if let Some(node) = self.nodes.get_mut(dest as usize) {
                node.get_mut().expect("node lock").inbox.push(env);
            }
        }
        if let Some(seeder) = &mut self.seeder {
            seeder.step(round, &mut self.radio);
        }
        phase_ns[Phase::Deliver as usize] = lap(&mut chain);

        // Phase 2 (parallel): step every node.
        let stats = self.step_nodes(round);
        phase_ns[Phase::Step as usize] = lap(&mut chain);

        // Phase 3 (serial): collect outboxes in node-id order so the
        // radio's RNG sees a schedule-independent draw order.
        for node in &mut self.nodes {
            let node = node.get_mut().expect("node lock");
            for (to, env) in std::mem::take(&mut node.outbox) {
                self.radio.send(round, to, env);
            }
        }
        phase_ns[Phase::Collect as usize] = lap(&mut chain);

        // Phase 4 (serial): feed the tower in node-id order. Ingestion is
        // order-insensitive within a round (every aggregate is a sum), but
        // a fixed order keeps the phase schedule-independent by
        // construction, like phase 3.
        if self.tower.is_some() {
            self.feed_tower(round, true);
        }
        phase_ns[Phase::Feed as usize] = lap(&mut chain);

        if let (Some(pulse), Some(wall)) = (&mut self.pulse, wall) {
            let wall_ns = wall.elapsed().as_nanos() as u64;
            pulse.record_round(round, RoundTiming { wall_ns, phase_ns }, stats.unwrap_or_default());
        }

        self.round += 1;
    }

    /// Streams every node's counter deltas, fresh postmortem dumps and
    /// fresh watchdog alerts into the tower. `is_round` marks a real
    /// round boundary; a residual drain (host posts after the last round)
    /// adjusts totals without counting as a node-round sample.
    fn feed_tower(&mut self, round: u64, is_round: bool) {
        let Some(tower) = &mut self.tower else { return };
        for n in &mut self.nodes {
            let node = n.get_mut().expect("node lock");
            let sample = node.tower_sample(round, is_round);
            if is_round || !sample.deltas.is_zero() {
                tower.ingest(&sample);
            }
            for dump in node.unrouted_dumps() {
                tower.ingest_dump(node.cohort, &dump);
            }
            for alert in node.unrouted_alerts() {
                tower.ingest_alert(alert.node, node.cohort, alert.kind.index());
            }
        }
    }

    fn step_nodes(&mut self, round: u64) -> Option<StepStats> {
        let budget = self.cfg.cycle_budget;
        let workers = self.threads.min(self.nodes.len());
        if self.pulse.is_some() {
            return Some(self.step_nodes_pulsed(round, budget, workers));
        }
        if workers <= 1 {
            for node in &mut self.nodes {
                node.get_mut().expect("node lock").step(round, budget);
            }
            return None;
        }
        let cursor = AtomicUsize::new(0);
        let nodes = &self.nodes;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let start = cursor.fetch_add(BATCH, Ordering::Relaxed);
                    if start >= nodes.len() {
                        break;
                    }
                    let end = (start + BATCH).min(nodes.len());
                    for node in &nodes[start..end] {
                        node.lock().expect("node lock").step(round, budget);
                    }
                });
            }
        });
        None
    }

    /// The step phase with pulse probes: identical node visitation (same
    /// batch cursor, same per-node order within a batch), plus busy
    /// timing at the coarsest grain that still answers the question —
    /// serial runs time the whole phase once (busy = span = finish by
    /// definition when there is no barrier), parallel workers time one
    /// clock read pair per [`BATCH`] nodes, not per node. That grain is
    /// what keeps the measured overhead within the ≤3% budget
    /// `BENCH_pulse.json` tracks. Each worker classifies every node's
    /// [`Node::pending_work`] *before* stepping it, accumulates a
    /// partial [`RoundLedger`] (element-wise mergeable, so the total is
    /// schedule-independent), and reads the node's cycle counter after.
    fn step_nodes_pulsed(&mut self, round: u64, budget: u64, workers: usize) -> StepStats {
        // All worker times are measured from this shared phase anchor,
        // taken after the deliver-phase lap boundary — so every worker's
        // `finish_ns` is bounded by the step-phase lap by construction.
        let anchor = Instant::now();
        let step_batch = |nodes: &mut dyn Iterator<Item = &Mutex<Node>>,
                          stat: &mut WorkerStat,
                          ledger: &mut RoundLedger,
                          cycles: &mut (u64, u64)| {
            let t0 = Instant::now();
            for node in nodes {
                let mut node = node.lock().expect("node lock");
                ledger.observe(node.pending_work());
                node.step(round, budget);
                let c = node.sys.cycles();
                cycles.0 += c;
                cycles.1 = cycles.1.max(c);
                stat.nodes += 1;
            }
            stat.busy_ns += t0.elapsed().as_nanos() as u64;
        };
        if workers <= 1 {
            // One worker, no barrier: busy, span and finish are all the
            // same interval — the whole step phase — so the serial path
            // needs no per-batch clock reads (or locks; `get_mut` like
            // the uninstrumented loop) to stay inside the overhead
            // budget at small fleet sizes.
            let mut stat = WorkerStat::default();
            let mut ledger = RoundLedger::default();
            let mut cycles = (0u64, 0u64);
            for node in &mut self.nodes {
                let node = node.get_mut().expect("node lock");
                ledger.observe(node.pending_work());
                node.step(round, budget);
                let c = node.sys.cycles();
                cycles.0 += c;
                cycles.1 = cycles.1.max(c);
                stat.nodes += 1;
            }
            stat.finish_ns = anchor.elapsed().as_nanos() as u64;
            stat.span_ns = stat.finish_ns;
            stat.busy_ns = stat.finish_ns;
            return StepStats {
                workers: vec![stat],
                ledger,
                cycles_total: cycles.0,
                cycles_frontier: cycles.1,
            };
        }
        let cursor = AtomicUsize::new(0);
        let nodes = &self.nodes;
        let parts: Mutex<Vec<(WorkerStat, RoundLedger, u64, u64)>> =
            Mutex::new(Vec::with_capacity(workers));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut stat = WorkerStat::default();
                    let mut ledger = RoundLedger::default();
                    let mut cycles = (0u64, 0u64);
                    let mut first_grab: Option<u64> = None;
                    let mut last_done = 0u64;
                    loop {
                        let start = cursor.fetch_add(BATCH, Ordering::Relaxed);
                        if start >= nodes.len() {
                            break;
                        }
                        if first_grab.is_none() {
                            first_grab = Some(anchor.elapsed().as_nanos() as u64);
                        }
                        let end = (start + BATCH).min(nodes.len());
                        step_batch(
                            &mut nodes[start..end].iter(),
                            &mut stat,
                            &mut ledger,
                            &mut cycles,
                        );
                        last_done = anchor.elapsed().as_nanos() as u64;
                    }
                    // Batch busy intervals are disjoint sub-intervals of
                    // [first_grab, last_done], so busy <= span; the exit
                    // stamp comes last, so span <= finish.
                    stat.span_ns = last_done.saturating_sub(first_grab.unwrap_or(last_done));
                    stat.finish_ns = anchor.elapsed().as_nanos() as u64;
                    if stat.nodes > 0 {
                        parts.lock().expect("pulse parts").push((stat, ledger, cycles.0, cycles.1));
                    }
                });
            }
        });
        let mut stats = StepStats::default();
        for (stat, ledger, sum, max) in parts.into_inner().expect("pulse parts") {
            stats.workers.push(stat);
            stats.ledger.merge(&ledger);
            stats.cycles_total += sum;
            stats.cycles_frontier = stats.cycles_frontier.max(max);
        }
        stats
    }

    /// Steps `rounds` rounds.
    pub fn run_rounds(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step_round();
        }
    }

    /// Steps until the fleet converges, up to `max_rounds`. Returns the
    /// round count at convergence.
    ///
    /// # Errors
    ///
    /// The fleet state (rounds stepped, nodes still missing the image) if
    /// the deadline passes without convergence.
    pub fn run_until_converged(&mut self, max_rounds: u64) -> Result<u64, String> {
        let deadline = self.round + max_rounds;
        while !self.converged() {
            if self.round >= deadline {
                let missing = self
                    .seeder
                    .as_ref()
                    .map(|s| {
                        self.nodes
                            .iter()
                            .filter(|n| !n.lock().expect("node lock").has_installed(s.image_id))
                            .count()
                    })
                    .unwrap_or(0);
                return Err(format!(
                    "dissemination did not converge within {max_rounds} rounds \
                     ({missing}/{} nodes missing the image)",
                    self.nodes.len()
                ));
            }
            self.step_round();
        }
        Ok(self.round)
    }

    /// Snapshot of every counter in the run. When the config attached
    /// trace sinks, the per-node sinks are reduced into a fleet-wide
    /// [`crate::ScopeAggregate`] (per-kind sums plus sum/max/p99 of events
    /// recorded per node).
    pub fn telemetry(&mut self) -> FleetTelemetry {
        let traced = self.cfg.scope.is_some() || self.cfg.blackbox.is_some();
        let scope = traced.then(|| {
            let mut agg = crate::ScopeAggregate::default();
            let mut per_node_recorded = harbor_scope::CycleHistogram::new();
            for n in &mut self.nodes {
                let node = n.get_mut().expect("node lock");
                let Some(sink) = node.sys.scope() else { continue };
                agg.recorded += sink.recorded();
                agg.dropped += sink.dropped();
                agg.max_recorded = agg.max_recorded.max(sink.recorded());
                per_node_recorded.observe(sink.recorded());
                for (total, n) in agg.kinds.iter_mut().zip(sink.kind_counts().as_array()) {
                    *total += n;
                }
            }
            agg.p99_recorded = per_node_recorded.quantile(9900);
            agg
        });
        let per_node: Vec<_> = self
            .nodes
            .iter_mut()
            .map(|n| n.get_mut().expect("node lock").telemetry.clone())
            .collect();
        let convergence_round = if self.seeder.is_some() && self.converged() {
            per_node.iter().filter_map(|n| n.installed_round).max()
        } else {
            None
        };
        FleetTelemetry {
            seed: self.cfg.seed,
            protection: format!("{:?}", self.cfg.protection),
            nodes: self.nodes.len(),
            rounds: self.round,
            threads: self.threads,
            convergence_round,
            packets_sent: self.radio.sent,
            packets_delivered: self.radio.delivered,
            packets_dropped: self.radio.dropped,
            scope,
            per_node,
        }
    }

    /// The merged telemetry rollup: per-cohort time series, health
    /// scores, top-K offenders and the dump index. `None` unless the
    /// config attached a tower. Drains any residual counter movement
    /// first (host-side posts after the last round), so the rollup's
    /// totals reconcile exactly against [`Fleet::telemetry`] at any
    /// point, not just on a round boundary.
    pub fn tower_rollup(&mut self) -> Option<FleetRollup> {
        self.tower.is_some().then(|| {
            let round = self.round;
            self.feed_tower(round, false);
            self.tower.as_ref().expect("tower attached").rollup()
        })
    }

    /// Snapshot of the pulse profiler: per-phase sketches, worker stats,
    /// the idle-work ledger and the retained round timeline. `None`
    /// unless the config set [`FleetConfig::pulse`].
    pub fn pulse_report(&self) -> Option<PulseReport> {
        self.pulse.as_ref().map(Pulse::report)
    }

    /// Channel counters without building full telemetry:
    /// `(sent, delivered, dropped, in_flight)`. `harbor-pulse` cross-checks
    /// the ledger's inbox counts against deliveries with this.
    pub fn radio_stats(&self) -> (u64, u64, u64, usize) {
        (self.radio.sent, self.radio.delivered, self.radio.dropped, self.radio.in_flight_count())
    }

    /// Every postmortem dump the fleet's flight recorders froze, sorted
    /// by `(node, fault cycle stamp)` — a total order independent of
    /// discovery order, so reports built from it are diffable. Empty
    /// unless the config enabled the blackbox.
    pub fn dumps(&mut self) -> Vec<Postmortem> {
        let mut dumps: Vec<Postmortem> = self
            .nodes
            .iter_mut()
            .flat_map(|n| {
                let node = n.get_mut().expect("node lock");
                node.recorder.as_ref().map_or(Vec::new(), |r| r.dumps().to_vec())
            })
            .collect();
        dumps.sort_by_key(|d| (d.node, d.fault.cycles));
        dumps
    }

    /// Every causal log in the run: the nodes in id order, then the
    /// seeder's (if one disseminated). Feed to
    /// [`harbor_blackbox::check_monotone`] or
    /// [`harbor_blackbox::chrome_trace`].
    pub fn causal_logs(&mut self) -> Vec<CausalLog> {
        let mut logs: Vec<CausalLog> =
            self.nodes.iter_mut().map(|n| n.get_mut().expect("node lock").causal.clone()).collect();
        if let Some(seeder) = &self.seeder {
            logs.push(seeder.causal.clone());
        } else if let Some((_, causal, _)) = &self.retired_seeder {
            logs.push(causal.clone());
        }
        logs
    }

    /// The fleet's happens-before DAG rendered as one multi-track Perfetto
    /// chrome-trace document with flow arrows on the message edges.
    pub fn causal_trace(&mut self) -> String {
        harbor_blackbox::chrome_trace(&self.causal_logs())
    }

    /// Every watchdog alert raised so far, in node-id order (each node's
    /// alerts in round order). Empty unless the config enabled the
    /// blackbox.
    pub fn alerts(&mut self) -> Vec<Alert> {
        self.nodes
            .iter_mut()
            .flat_map(|n| {
                let node = n.get_mut().expect("node lock");
                node.watchdog.as_ref().map_or(Vec::new(), |w| w.alerts().to_vec())
            })
            .collect()
    }
}
