//! Fleet-scale fault-injection campaigns.
//!
//! The paper's deployment story is statistical: one buggy module, many
//! nodes, and a network that degrades as corruption spreads. A campaign
//! reproduces that at fleet scale — every node runs a healthy workload
//! (Blink + Tree Routing), a seeded subset of nodes gets a rogue module
//! whose timer handler performs a wild write into Tree Routing's state, and
//! the report counts, per protection build, how many victims were contained
//! (state intact, fault trapped), how many were silently corrupted, and how
//! many kept operating afterwards.

use crate::fleet::{BlackboxConfig, Fleet, FleetConfig};
use crate::telemetry::FleetTelemetry;
use avr_core::isa::Reg;
use harbor::DomainId;
use harbor_blackbox::Alert;
use mini_sos::kernel::MSG_TIMER;
use mini_sos::loader::ModuleSource;
use mini_sos::{modules, Protection};
use rand::{Rng, SeedableRng, StdRng};
use std::collections::BTreeSet;

/// Domain the rogue module is injected into.
const ROGUE_DOM: u8 = 2;

/// Domain running Tree Routing (the victim state the rogue clobbers).
const TREE_DOM: u8 = 3;

/// Domain running Blink (the liveness probe).
const BLINK_DOM: u8 = 0;

/// The byte the rogue writes — recognizably wrong for Tree Routing's
/// parent field.
const POISON: u8 = 0xee;

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Fleet shape (node count, seed, radio, threads). The campaign
    /// overrides the protection per run.
    pub fleet: FleetConfig,
    /// Number of nodes to inject the rogue module into.
    pub victims: usize,
    /// Healthy rounds before injection.
    pub warmup_rounds: u64,
    /// Rounds after injection (the strike lands in the first of these).
    pub after_rounds: u64,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            fleet: FleetConfig::default(),
            victims: 8,
            warmup_rounds: 8,
            after_rounds: 8,
        }
    }
}

/// What one campaign run observed.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Protection build, as a string (`"None"`, `"Umpu"`, `"Sfi"`).
    pub protection: String,
    /// Fleet size.
    pub nodes: usize,
    /// Victims injected.
    pub injected: usize,
    /// Faults raised fleet-wide (protected builds trap the wild write).
    pub faults_raised: u64,
    /// Victims whose Tree Routing state stayed intact.
    pub contained: usize,
    /// Victims whose Tree Routing state was silently clobbered.
    pub corrupted: usize,
    /// Victims whose Blink workload kept advancing after the strike.
    pub recovered: usize,
    /// Non-victim nodes whose Tree Routing state ended up corrupted
    /// (must stay zero: the radio carries messages, not memory).
    pub bystanders_corrupted: usize,
    /// Postmortem dumps the per-node flight recorders froze (campaigns
    /// always run with the blackbox enabled).
    pub dumps_captured: usize,
    /// Watchdog alerts raised during the run, in node-id order.
    pub alerts: Vec<Alert>,
    /// Full fleet counters at the end of the run.
    pub telemetry: FleetTelemetry,
}

impl CampaignReport {
    /// One-word health verdict from the online watchdogs: `"healthy"` when
    /// no detector tripped, `"degraded"` otherwise.
    pub fn health(&self) -> &'static str {
        if self.alerts.is_empty() {
            "healthy"
        } else {
            "degraded"
        }
    }
    /// Fraction of victims contained (1.0 when nothing was injected).
    pub fn containment_rate(&self) -> f64 {
        if self.injected == 0 {
            1.0
        } else {
            self.contained as f64 / self.injected as f64
        }
    }

    /// Deterministic JSON summary (fleet telemetry nested).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"protection\":\"{}\",\"nodes\":{},\"injected\":{},\
             \"faults_raised\":{},\"contained\":{},\"corrupted\":{},\
             \"recovered\":{},\"bystanders_corrupted\":{},\
             \"dumps_captured\":{},\"alerts_raised\":{},\"health\":\"{}\",\
             \"telemetry\":{}}}",
            self.protection,
            self.nodes,
            self.injected,
            self.faults_raised,
            self.contained,
            self.corrupted,
            self.recovered,
            self.bystanders_corrupted,
            self.dumps_captured,
            self.alerts.len(),
            self.health(),
            self.telemetry.to_json(),
        )
    }
}

/// The injected malware: a module whose timer handler stores [`POISON`] at
/// `target` — the same wild-write shape as the repo's fault-injection
/// matrix, here aimed at Tree Routing's live state.
fn rogue(target: u16) -> ModuleSource {
    ModuleSource {
        name: "rogue",
        domain: DomainId::num(ROGUE_DOM),
        entries: vec!["rogue_handler"],
        build: Box::new(move |a, _ctx| {
            let done = a.label("rogue_done");
            a.here("rogue_handler");
            a.cpi(Reg::R24, MSG_TIMER);
            a.brne(done);
            a.ldi(Reg::R16, POISON);
            a.sts(target, Reg::R16);
            a.bind(done);
            a.ret();
        }),
    }
}

/// Runs one campaign under `protection`.
///
/// # Panics
///
/// Panics if the fleet cannot be built (static module set — a programming
/// error, not an input condition).
pub fn run_campaign(protection: Protection, cfg: &CampaignConfig) -> CampaignReport {
    let mut fleet_cfg = cfg.fleet;
    fleet_cfg.protection = protection;
    // Campaigns always fly with the blackbox: every fault a victim raises
    // freezes a postmortem, and the watchdogs feed the health verdict.
    fleet_cfg.blackbox.get_or_insert_with(BlackboxConfig::default);
    let mut fleet =
        Fleet::new(&fleet_cfg, &[modules::blink(BLINK_DOM), modules::tree_routing(TREE_DOM)])
            .expect("campaign fleet builds");

    let blink_state = fleet.layout().state_addr(BLINK_DOM);
    let tree_state = fleet.layout().state_addr(TREE_DOM);

    // Healthy warm-up: every node samples on a timer each round.
    for _ in 0..cfg.warmup_rounds {
        fleet.post_all(DomainId::num(BLINK_DOM), MSG_TIMER);
        fleet.step_round();
    }

    // Seeded victim pick — distinct nodes, order-independent.
    let mut rng = StdRng::seed_from_u64(fleet_cfg.seed ^ 0x6361_6d70_6169_676e); // "campaign"
    let wanted = cfg.victims.min(fleet.len());
    let mut victims = BTreeSet::new();
    while victims.len() < wanted {
        victims.insert(rng.gen_range(0..fleet.len()));
    }

    // Inject: hot-load the rogue and arm its timer. Its wild write fires in
    // the first post-injection round.
    let rogue_src = |_: usize| rogue(tree_state);
    let mut blink_before = Vec::new();
    for &v in &victims {
        fleet.with_node(v, |node| {
            node.sys.load_module(&rogue_src(v)).expect("rogue loads");
            node.post(DomainId::num(ROGUE_DOM), MSG_TIMER);
        });
        blink_before.push(fleet.with_node(v, |node| node.sys.sram(blink_state)));
    }

    // Aftermath: keep the healthy workload running.
    for _ in 0..cfg.after_rounds {
        fleet.post_all(DomainId::num(BLINK_DOM), MSG_TIMER);
        fleet.step_round();
    }

    // Score.
    let mut contained = 0;
    let mut corrupted = 0;
    let mut recovered = 0;
    for (i, &v) in victims.iter().enumerate() {
        let (tree, blink) =
            fleet.with_node(v, |node| (node.sys.sram(tree_state), node.sys.sram(blink_state)));
        if tree == POISON {
            corrupted += 1;
        } else {
            contained += 1;
        }
        if blink.wrapping_sub(blink_before[i]) > 0 {
            recovered += 1;
        }
    }
    let mut bystanders_corrupted = 0;
    for n in 0..fleet.len() {
        if !victims.contains(&n) && fleet.with_node(n, |node| node.sys.sram(tree_state)) == POISON {
            bystanders_corrupted += 1;
        }
    }

    let dumps_captured = fleet.dumps().len();
    let alerts = fleet.alerts();
    let telemetry = fleet.telemetry();
    CampaignReport {
        protection: format!("{protection:?}"),
        nodes: fleet.len(),
        injected: victims.len(),
        faults_raised: telemetry.total(crate::NodeTelemetry::faults),
        contained,
        corrupted,
        recovered,
        bystanders_corrupted,
        dumps_captured,
        alerts,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(protection: Protection) -> CampaignReport {
        let cfg = CampaignConfig {
            fleet: FleetConfig { nodes: 10, seed: 11, threads: 1, ..FleetConfig::default() },
            victims: 4,
            warmup_rounds: 3,
            after_rounds: 4,
        };
        run_campaign(protection, &cfg)
    }

    #[test]
    fn protected_builds_contain_every_victim() {
        for p in [Protection::Umpu, Protection::Sfi] {
            let r = small(p);
            assert_eq!(r.injected, 4, "{p:?}");
            assert_eq!(r.contained, r.injected, "{p:?}: {r:?}");
            assert_eq!(r.corrupted, 0, "{p:?}");
            assert_eq!(r.recovered, r.injected, "{p:?}: nodes keep running");
            assert!(r.faults_raised >= r.injected as u64, "{p:?}");
            assert_eq!(r.bystanders_corrupted, 0, "{p:?}");
            assert!((r.containment_rate() - 1.0).abs() < f64::EPSILON);
            // Every victim's fault froze a postmortem dump.
            assert!(r.dumps_captured >= r.injected, "{p:?}: {r:?}");
            assert!(r.to_json().contains("\"dumps_captured\""), "{p:?}");
        }
    }

    #[test]
    fn unprotected_build_is_silently_corrupted() {
        let r = small(Protection::None);
        assert_eq!(r.corrupted, r.injected, "{r:?}");
        assert_eq!(r.contained, 0);
        assert_eq!(r.faults_raised, 0, "no trap fires without protection");
        assert_eq!(r.bystanders_corrupted, 0);
        // Silent corruption is the whole point: no fault, no dump, and the
        // watchdogs see nothing wrong.
        assert_eq!(r.dumps_captured, 0);
        assert_eq!(r.health(), "healthy");
    }
}
