//! The over-the-air module wire format.
//!
//! A module is assembled (and, under SFI, rewritten + verified) **once** at
//! the base station, then shipped as bytes: nodes must not need the
//! assembler or the rewriter at run time, mirroring SOS's distribution of
//! pre-built binary modules. The wire image carries exactly what the
//! loader's install path needs — the flash object and the jump-table entry
//! addresses — plus a checksum so a corrupted reassembly is rejected rather
//! than burned into flash.

use mini_sos::loader::{load_module, LoadedModule, ModuleSource};
use mini_sos::{Protection, SosLayout};
use std::collections::BTreeMap;
use std::fmt;

const MAGIC: [u8; 4] = *b"HBRF";
const VERSION: u8 = 1;

/// A pre-assembled module in transportable form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleImage {
    /// Human-readable module name.
    pub name: String,
    /// Destination domain (0..=6).
    pub domain: u8,
    /// Flash slot origin the object was assembled for (word address).
    pub origin: u32,
    /// The machine-code words (post-rewrite under SFI).
    pub words: Vec<u16>,
    /// Absolute word addresses of the exported entries.
    pub entry_addrs: Vec<u32>,
}

/// A wire image failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageError {
    /// Missing or wrong magic/version header.
    BadHeader,
    /// The byte stream ended mid-field.
    Truncated,
    /// The checksum over the payload did not match.
    BadChecksum,
    /// The domain byte is outside 0..=6.
    BadDomain,
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::BadHeader => write!(f, "bad module image header"),
            ImageError::Truncated => write!(f, "truncated module image"),
            ImageError::BadChecksum => write!(f, "module image checksum mismatch"),
            ImageError::BadDomain => write!(f, "module image domain out of range"),
        }
    }
}

impl std::error::Error for ImageError {}

impl ModuleImage {
    /// Assembles `src` for `protection` under `layout` — the base-station
    /// half of dissemination. Under SFI this builds the same run-time the
    /// nodes boot with, so the rewritten object is bit-identical to what a
    /// node-local load would produce.
    ///
    /// # Errors
    ///
    /// [`mini_sos::loader::LoadError`] if the module cannot be sandboxed or
    /// does not fit its slot.
    pub fn assemble(
        src: &ModuleSource,
        layout: &SosLayout,
        protection: Protection,
    ) -> Result<ModuleImage, mini_sos::loader::LoadError> {
        let runtime = match protection {
            Protection::Sfi => {
                Some(harbor_sfi::SfiRuntime::build(layout.prot, layout.runtime_origin))
            }
            _ => None,
        };
        let loaded = load_module(src, layout, protection, runtime.as_ref())?;
        Ok(ModuleImage {
            name: loaded.name.to_string(),
            domain: loaded.domain.index(),
            origin: loaded.object.origin(),
            words: loaded.object.words().to_vec(),
            entry_addrs: loaded.entry_addrs,
        })
    }

    /// Converts back into the loader's install form (the node half; see
    /// [`mini_sos::SosSystem::install_module`]).
    pub fn to_loaded(&self) -> LoadedModule {
        // Module names are `&'static str` throughout the loader; wire
        // images reconstruct them once per distinct module, so the leak is
        // bounded and harmless in a simulator.
        let name: &'static str = Box::leak(self.name.clone().into_boxed_str());
        LoadedModule {
            name,
            domain: harbor::DomainId::num(self.domain),
            object: avr_asm::Object::from_parts(self.origin, self.words.clone(), BTreeMap::new()),
            entry_addrs: self.entry_addrs.clone(),
        }
    }

    /// Serializes to the wire format (little-endian fields, trailing FNV-1a
    /// checksum).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.name.len() + self.words.len() * 2);
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.domain);
        let name = self.name.as_bytes();
        out.push(name.len().min(255) as u8);
        out.extend_from_slice(&name[..name.len().min(255)]);
        out.extend_from_slice(&self.origin.to_le_bytes());
        out.push(self.entry_addrs.len().min(255) as u8);
        for &e in &self.entry_addrs {
            out.extend_from_slice(&e.to_le_bytes());
        }
        out.extend_from_slice(&(self.words.len() as u16).to_le_bytes());
        for &w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parses the wire format.
    ///
    /// # Errors
    ///
    /// [`ImageError`] on any malformed, truncated or corrupted stream.
    pub fn from_bytes(bytes: &[u8]) -> Result<ModuleImage, ImageError> {
        if bytes.len() < MAGIC.len() + 2 + 8 {
            return Err(ImageError::Truncated);
        }
        let (payload, sum_bytes) = bytes.split_at(bytes.len() - 8);
        let sum = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
        if fnv1a(payload) != sum {
            return Err(ImageError::BadChecksum);
        }
        let mut r = Reader { buf: payload, at: 0 };
        if r.take(4)? != MAGIC || r.u8()? != VERSION {
            return Err(ImageError::BadHeader);
        }
        let domain = r.u8()?;
        if domain > 6 {
            return Err(ImageError::BadDomain);
        }
        let name_len = r.u8()? as usize;
        let name = String::from_utf8_lossy(r.take(name_len)?).into_owned();
        let origin = r.u32()?;
        let n_entries = r.u8()? as usize;
        let entry_addrs = (0..n_entries).map(|_| r.u32()).collect::<Result<_, _>>()?;
        let n_words = r.u16()? as usize;
        let words = (0..n_words).map(|_| r.u16()).collect::<Result<_, _>>()?;
        if r.at != r.buf.len() {
            return Err(ImageError::BadHeader);
        }
        Ok(ModuleImage { name, domain, origin, words, entry_addrs })
    }

    /// Splits the wire bytes into dissemination chunks of `chunk_bytes`
    /// (the last chunk may be shorter).
    pub fn chunks(&self, chunk_bytes: usize) -> Vec<Vec<u8>> {
        assert!(chunk_bytes > 0, "chunk size must be positive");
        self.to_bytes().chunks(chunk_bytes).map(<[u8]>::to_vec).collect()
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ImageError> {
        let end = self.at.checked_add(n).ok_or(ImageError::Truncated)?;
        if end > self.buf.len() {
            return Err(ImageError::Truncated);
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ImageError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ImageError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, ImageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use mini_sos::modules;

    #[test]
    fn wire_round_trip() {
        let layout = SosLayout::default_layout();
        for p in [Protection::None, Protection::Umpu, Protection::Sfi] {
            let img = ModuleImage::assemble(&modules::tree_routing(3), &layout, p).unwrap();
            let back = ModuleImage::from_bytes(&img.to_bytes()).unwrap();
            assert_eq!(back, img, "{p:?}");
        }
    }

    #[test]
    fn corruption_is_rejected() {
        let layout = SosLayout::default_layout();
        let img = ModuleImage::assemble(&modules::blink(0), &layout, Protection::Umpu).unwrap();
        let mut bytes = img.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert_eq!(ModuleImage::from_bytes(&bytes), Err(ImageError::BadChecksum));
        assert_eq!(ModuleImage::from_bytes(&bytes[..8]), Err(ImageError::Truncated));
    }

    #[test]
    fn chunks_reassemble() {
        let layout = SosLayout::default_layout();
        let img = ModuleImage::assemble(&modules::surge(1, 3), &layout, Protection::Sfi).unwrap();
        let chunks = img.chunks(32);
        let glued: Vec<u8> = chunks.concat();
        assert_eq!(ModuleImage::from_bytes(&glued).unwrap(), img);
    }
}
