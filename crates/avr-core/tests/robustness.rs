//! Robustness: executing *arbitrary* flash contents must never panic the
//! simulator — every outcome is a clean `Step` or a typed `Fault`. This is
//! the substrate guarantee the protection work sits on.

use avr_core::exec::{Cpu, Step};
use avr_core::isa::{flags, Instr, Reg};
use avr_core::mem::{PlainEnv, Timer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Random flash, random entry state: step a few hundred instructions.
    #[test]
    fn random_flash_never_panics(
        words in proptest::collection::vec(any::<u16>(), 1..256),
        sp in any::<u16>(),
        sreg in any::<u8>(),
        regs in proptest::collection::vec(any::<u8>(), 32),
    ) {
        let mut env = PlainEnv::new();
        env.flash.load_words(0, &words);
        let mut cpu = Cpu::new(env);
        cpu.sp = sp;
        cpu.sreg = sreg & !(1 << flags::I); // no interrupt source anyway
        cpu.regs.copy_from_slice(&regs);
        for _ in 0..300 {
            match cpu.step() {
                Ok(Step::Continue) => {}
                Ok(_) => break,
                Err(_) => break, // typed fault: fine
            }
        }
    }

}

#[test]
fn elpm_reads_high_flash_through_rampz() {
    let mut env = PlainEnv::new();
    // Place a byte beyond the 64 KiB byte horizon: word 0x9000 → byte 0x12000.
    env.flash.set_byte(0x1_2003, 0xcd);
    env.load_program(
        0,
        &[
            Instr::Ldi { d: Reg::R30, k: 0x03 },
            Instr::Ldi { d: Reg::R31, k: 0x20 }, // Z = 0x2003
            Instr::Ldi { d: Reg::R16, k: 1 },
            Instr::Sts { k: 0x005b, r: Reg::R16 }, // RAMPZ (port 0x3b) via data space
            Instr::Elpm { d: Reg::R17, inc: true },
            Instr::Break,
        ],
    );
    let mut cpu = Cpu::new(env);
    cpu.run_to_break(100).unwrap();
    assert_eq!(cpu.reg(Reg::R17), 0xcd);
    assert_eq!(cpu.reg16(Reg::R30), 0x2004, "ELPM Z+ incremented Z");
    assert_eq!(cpu.rampz, 1);
}

#[test]
fn stack_pointer_writable_through_io_and_data_space() {
    let mut env = PlainEnv::new();
    env.load_program(
        0,
        &[
            Instr::Ldi { d: Reg::R16, k: 0x34 },
            Instr::Out { a: 0x3d, r: Reg::R16 }, // SPL
            Instr::Ldi { d: Reg::R16, k: 0x0a },
            Instr::Out { a: 0x3e, r: Reg::R16 }, // SPH
            Instr::In { d: Reg::R20, a: 0x3d },
            Instr::Sts { k: 0x005e, r: Reg::R16 }, // SPH via data space (0x20+0x3e)
            Instr::Break,
        ],
    );
    let mut cpu = Cpu::new(env);
    cpu.run_to_break(100).unwrap();
    assert_eq!(cpu.sp & 0xff, 0x34);
    assert_eq!(cpu.reg(Reg::R20), 0x34);
    assert_eq!(cpu.sp >> 8, 0x0a);
}

#[test]
fn sleep_without_a_wake_source_is_terminal() {
    // No interrupt source, or interrupts masked: SLEEP halts for good.
    let mut env = PlainEnv::new();
    env.load_program(0, &[Instr::Sleep, Instr::Break]);
    let mut cpu = Cpu::new(env.clone());
    cpu.set_flag(flags::I, true);
    assert_eq!(cpu.run_to_break(1000).unwrap(), Step::Sleep);

    env.timer = Some(Timer::new(10, 4));
    let mut cpu = Cpu::new(env);
    // Timer armed but I clear: still terminal.
    assert_eq!(cpu.run_to_break(1000).unwrap(), Step::Sleep);
}

#[test]
fn sleep_wakes_on_the_timer_and_accounts_idle_cycles() {
    // main: sei-equivalent via set_flag; sleep; after the ISR runs,
    // execution resumes past the SLEEP.
    let mut env = PlainEnv::new();
    env.load_program(
        0,
        &[
            Instr::Sleep,                     // 0: idles until the timer
            Instr::Ldi { d: Reg::R20, k: 7 }, // 1: runs after wake
            Instr::Break,                     // 2
        ],
    );
    env.load_program(8, &[Instr::Inc { d: Reg::R21 }, Instr::Reti]);
    env.timer = Some(Timer::new(1000, 8));
    let mut cpu = Cpu::new(env);
    cpu.set_flag(flags::I, true);
    cpu.run_to_break(10_000).unwrap();
    assert_eq!(cpu.reg(Reg::R21), 1, "the ISR ran once");
    assert_eq!(cpu.reg(Reg::R20), 7, "execution resumed after SLEEP");
    assert!(cpu.idle_cycles() > 950, "nearly the whole wait was idle");
    assert!(cpu.cycles() >= 1000, "wall-clock includes the sleep");
    // Duty cycle: active cycles are a tiny fraction.
    let active = cpu.cycles() - cpu.idle_cycles();
    assert!(active < 30, "active {active}");
}
