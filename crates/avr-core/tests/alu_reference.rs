//! Differential ALU testing: the CPU's flag semantics (implemented from the
//! datasheet's boolean carry formulas) are checked against an independent
//! reference that derives every flag from wide arithmetic instead.

use avr_core::exec::Cpu;
use avr_core::isa::{flags, Instr, IwPair, Reg};
use avr_core::mem::PlainEnv;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RefFlags {
    c: bool,
    z: bool,
    n: bool,
    v: bool,
    s: bool,
    h: bool,
}

fn ref_add(d: u8, r: u8, cin: bool) -> (u8, RefFlags) {
    let c = cin as u16;
    let wide = d as u16 + r as u16 + c;
    let res = wide as u8;
    let carry = wide > 0xff;
    let h = (d & 0x0f) as u16 + (r & 0x0f) as u16 + c > 0x0f;
    // Overflow: operands share a sign that differs from the result's.
    let v = ((d ^ res) & (r ^ res) & 0x80) != 0;
    let n = res & 0x80 != 0;
    let z = res == 0;
    (res, RefFlags { c: carry, z, n, v, s: n ^ v, h })
}

fn ref_sub(d: u8, r: u8, cin: bool, z_prev: bool, chain_z: bool) -> (u8, RefFlags) {
    let c = cin as u16;
    let res = d.wrapping_sub(r).wrapping_sub(c as u8);
    let borrow = (r as u16 + c) > d as u16;
    let h = ((r & 0x0f) as u16 + c) > (d & 0x0f) as u16;
    // Overflow: operand signs differ, and the result's sign differs from d's.
    let v = ((d ^ r) & (d ^ res) & 0x80) != 0;
    let n = res & 0x80 != 0;
    let z = if chain_z { (res == 0) && z_prev } else { res == 0 };
    (res, RefFlags { c: borrow, z, n, v, s: n ^ v, h })
}

/// Runs one two-register ALU instruction with the given inputs and returns
/// (destination register value, flags).
fn run_alu(instr: Instr, d: u8, r: u8, carry_in: bool, z_in: bool) -> (u8, RefFlags) {
    let mut env = PlainEnv::new();
    env.load_program(0, &[instr, Instr::Break]);
    let mut cpu = Cpu::new(env);
    cpu.set_reg(Reg::R16, d);
    cpu.set_reg(Reg::R17, r);
    cpu.set_flag(flags::C, carry_in);
    cpu.set_flag(flags::Z, z_in);
    cpu.run_to_break(100).unwrap();
    (
        cpu.reg(Reg::R16),
        RefFlags {
            c: cpu.flag(flags::C),
            z: cpu.flag(flags::Z),
            n: cpu.flag(flags::N),
            v: cpu.flag(flags::V),
            s: cpu.flag(flags::S),
            h: cpu.flag(flags::H),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn add_matches_reference(d in any::<u8>(), r in any::<u8>(), c in any::<bool>()) {
        let (res, f) = run_alu(Instr::Add { d: Reg::R16, r: Reg::R17 }, d, r, c, false);
        let (eres, ef) = ref_add(d, r, false);
        prop_assert_eq!((res, f), (eres, ef));
    }

    #[test]
    fn adc_matches_reference(d in any::<u8>(), r in any::<u8>(), c in any::<bool>()) {
        let (res, f) = run_alu(Instr::Adc { d: Reg::R16, r: Reg::R17 }, d, r, c, false);
        let (eres, ef) = ref_add(d, r, c);
        prop_assert_eq!((res, f), (eres, ef));
    }

    #[test]
    fn sub_matches_reference(d in any::<u8>(), r in any::<u8>(), c in any::<bool>()) {
        let (res, f) = run_alu(Instr::Sub { d: Reg::R16, r: Reg::R17 }, d, r, c, true);
        let (eres, ef) = ref_sub(d, r, false, true, false);
        prop_assert_eq!((res, f), (eres, ef));
    }

    #[test]
    fn sbc_matches_reference(
        d in any::<u8>(), r in any::<u8>(), c in any::<bool>(), z in any::<bool>()
    ) {
        let (res, f) = run_alu(Instr::Sbc { d: Reg::R16, r: Reg::R17 }, d, r, c, z);
        let (eres, ef) = ref_sub(d, r, c, z, true);
        prop_assert_eq!((res, f), (eres, ef));
    }

    #[test]
    fn cp_is_sub_without_writeback(d in any::<u8>(), r in any::<u8>()) {
        let (res, f) = run_alu(Instr::Cp { d: Reg::R16, r: Reg::R17 }, d, r, false, true);
        let (_, ef) = ref_sub(d, r, false, true, false);
        prop_assert_eq!(res, d, "cp must not write the register");
        prop_assert_eq!(f, ef);
    }

    #[test]
    fn cpc_chains_zero(
        d in any::<u8>(), r in any::<u8>(), c in any::<bool>(), z in any::<bool>()
    ) {
        let (res, f) = run_alu(Instr::Cpc { d: Reg::R16, r: Reg::R17 }, d, r, c, z);
        let (_, ef) = ref_sub(d, r, c, z, true);
        prop_assert_eq!(res, d);
        prop_assert_eq!(f, ef);
    }

    #[test]
    fn subi_matches_reference(d in any::<u8>(), k in any::<u8>()) {
        let (res, f) = run_alu(Instr::Subi { d: Reg::R16, k }, d, 0, false, true);
        let (eres, ef) = ref_sub(d, k, false, true, false);
        prop_assert_eq!((res, f), (eres, ef));
    }

    #[test]
    fn neg_is_sub_from_zero(d in any::<u8>()) {
        let (res, f) = run_alu(Instr::Neg { d: Reg::R16 }, d, 0, false, false);
        // NEG's datasheet flags: C = res != 0, V = res == 0x80, H = R3|Rd3.
        let eres = 0u8.wrapping_sub(d);
        prop_assert_eq!(res, eres);
        prop_assert_eq!(f.c, eres != 0);
        prop_assert_eq!(f.v, eres == 0x80);
        prop_assert_eq!(f.z, eres == 0);
        prop_assert_eq!(f.n, eres & 0x80 != 0);
        prop_assert_eq!(f.h, ((eres | d) & 0x08) != 0);
    }

    #[test]
    fn adiw_matches_wide_reference(v in any::<u16>(), k in 0u8..64) {
        let mut env = PlainEnv::new();
        env.load_program(0, &[Instr::Adiw { p: IwPair::W, k }, Instr::Break]);
        let mut cpu = Cpu::new(env);
        cpu.set_reg16(Reg::R24, v);
        cpu.run_to_break(100).unwrap();
        let wide = v as u32 + k as u32;
        prop_assert_eq!(cpu.reg16(Reg::R24), wide as u16);
        prop_assert_eq!(cpu.flag(flags::C), wide > 0xffff);
        prop_assert_eq!(cpu.flag(flags::Z), wide as u16 == 0);
        prop_assert_eq!(cpu.flag(flags::N), wide as u16 & 0x8000 != 0);
        // V: positive-to-negative rollover only.
        prop_assert_eq!(
            cpu.flag(flags::V),
            (v & 0x8000 == 0) && (wide as u16 & 0x8000 != 0)
        );
    }

    #[test]
    fn sbiw_matches_wide_reference(v in any::<u16>(), k in 0u8..64) {
        let mut env = PlainEnv::new();
        env.load_program(0, &[Instr::Sbiw { p: IwPair::W, k }, Instr::Break]);
        let mut cpu = Cpu::new(env);
        cpu.set_reg16(Reg::R24, v);
        cpu.run_to_break(100).unwrap();
        let res = v.wrapping_sub(k as u16);
        prop_assert_eq!(cpu.reg16(Reg::R24), res);
        prop_assert_eq!(cpu.flag(flags::C), (k as u16) > v);
        prop_assert_eq!(cpu.flag(flags::Z), res == 0);
        prop_assert_eq!(
            cpu.flag(flags::V),
            (v & 0x8000 != 0) && (res & 0x8000 == 0)
        );
    }

    #[test]
    fn mul_matches_wide_reference(d in any::<u8>(), r in any::<u8>()) {
        let mut env = PlainEnv::new();
        env.load_program(0, &[Instr::Mul { d: Reg::R16, r: Reg::R17 }, Instr::Break]);
        let mut cpu = Cpu::new(env);
        cpu.set_reg(Reg::R16, d);
        cpu.set_reg(Reg::R17, r);
        cpu.run_to_break(100).unwrap();
        let wide = d as u16 * r as u16;
        prop_assert_eq!(cpu.reg16(Reg::R0), wide);
        prop_assert_eq!(cpu.flag(flags::C), wide & 0x8000 != 0);
        prop_assert_eq!(cpu.flag(flags::Z), wide == 0);
    }

    #[test]
    fn muls_matches_wide_reference(d in any::<u8>(), r in any::<u8>()) {
        let mut env = PlainEnv::new();
        env.load_program(0, &[Instr::Muls { d: Reg::R16, r: Reg::R17 }, Instr::Break]);
        let mut cpu = Cpu::new(env);
        cpu.set_reg(Reg::R16, d);
        cpu.set_reg(Reg::R17, r);
        cpu.run_to_break(100).unwrap();
        let wide = (d as i8 as i16).wrapping_mul(r as i8 as i16) as u16;
        prop_assert_eq!(cpu.reg16(Reg::R0), wide);
        prop_assert_eq!(cpu.flag(flags::C), wide & 0x8000 != 0);
        prop_assert_eq!(cpu.flag(flags::Z), wide == 0);
    }

    #[test]
    fn logic_ops_clear_v_and_set_nz(d in any::<u8>(), r in any::<u8>()) {
        for instr in [
            Instr::And { d: Reg::R16, r: Reg::R17 },
            Instr::Or { d: Reg::R16, r: Reg::R17 },
            Instr::Eor { d: Reg::R16, r: Reg::R17 },
        ] {
            let (res, f) = run_alu(instr, d, r, true, false);
            let expect = match instr {
                Instr::And { .. } => d & r,
                Instr::Or { .. } => d | r,
                _ => d ^ r,
            };
            prop_assert_eq!(res, expect);
            prop_assert!(!f.v, "logic ops clear V");
            prop_assert_eq!(f.n, expect & 0x80 != 0);
            prop_assert_eq!(f.z, expect == 0);
            prop_assert_eq!(f.s, f.n);
            prop_assert!(f.c, "carry untouched by logic ops");
        }
    }

    #[test]
    fn shifts_match_reference(d in any::<u8>(), c in any::<bool>()) {
        // LSR
        let (res, f) = run_alu(Instr::Lsr { d: Reg::R16 }, d, 0, c, false);
        prop_assert_eq!(res, d >> 1);
        prop_assert_eq!(f.c, d & 1 != 0);
        prop_assert!(!f.n);
        // ROR rotates the old carry in.
        let (res, f) = run_alu(Instr::Ror { d: Reg::R16 }, d, 0, c, false);
        prop_assert_eq!(res, (d >> 1) | ((c as u8) << 7));
        prop_assert_eq!(f.c, d & 1 != 0);
        // ASR preserves the sign bit.
        let (res, _) = run_alu(Instr::Asr { d: Reg::R16 }, d, 0, c, false);
        prop_assert_eq!(res, ((d as i8) >> 1) as u8);
    }
}
