//! Property-based encode/decode round-trip over the whole instruction set.

use avr_core::isa::{self, Instr, IwPair, Ptr, PtrMode, Reg};
use proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::num)
}

fn high_reg() -> impl Strategy<Value = Reg> {
    (16u8..32).prop_map(Reg::num)
}

fn mid_reg() -> impl Strategy<Value = Reg> {
    (16u8..24).prop_map(Reg::num)
}

fn even_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(|n| Reg::num(n * 2))
}

fn any_ptr() -> impl Strategy<Value = Ptr> {
    prop_oneof![Just(Ptr::X), Just(Ptr::Y), Just(Ptr::Z)]
}

fn yz_ptr() -> impl Strategy<Value = Ptr> {
    prop_oneof![Just(Ptr::Y), Just(Ptr::Z)]
}

fn any_mode() -> impl Strategy<Value = PtrMode> {
    prop_oneof![Just(PtrMode::Plain), Just(PtrMode::PostInc), Just(PtrMode::PreDec)]
}

fn any_iw() -> impl Strategy<Value = IwPair> {
    prop_oneof![Just(IwPair::W), Just(IwPair::X), Just(IwPair::Y), Just(IwPair::Z)]
}

/// Every canonical instruction (aliased encodings like `LDD q=0` are
/// generated only in canonical form, so decode(encode(i)) == i exactly).
fn any_instr() -> impl Strategy<Value = Instr> {
    fn two_reg() -> impl Strategy<Value = (Reg, Reg)> {
        (any_reg(), any_reg())
    }
    fn imm() -> impl Strategy<Value = (Reg, u8)> {
        (high_reg(), any::<u8>())
    }
    prop_oneof![
        two_reg().prop_map(|(d, r)| Instr::Add { d, r }),
        two_reg().prop_map(|(d, r)| Instr::Adc { d, r }),
        two_reg().prop_map(|(d, r)| Instr::Sub { d, r }),
        two_reg().prop_map(|(d, r)| Instr::Sbc { d, r }),
        two_reg().prop_map(|(d, r)| Instr::And { d, r }),
        two_reg().prop_map(|(d, r)| Instr::Or { d, r }),
        two_reg().prop_map(|(d, r)| Instr::Eor { d, r }),
        two_reg().prop_map(|(d, r)| Instr::Mov { d, r }),
        two_reg().prop_map(|(d, r)| Instr::Cp { d, r }),
        two_reg().prop_map(|(d, r)| Instr::Cpc { d, r }),
        two_reg().prop_map(|(d, r)| Instr::Cpse { d, r }),
        two_reg().prop_map(|(d, r)| Instr::Mul { d, r }),
        (high_reg(), high_reg()).prop_map(|(d, r)| Instr::Muls { d, r }),
        (mid_reg(), mid_reg()).prop_map(|(d, r)| Instr::Mulsu { d, r }),
        (mid_reg(), mid_reg()).prop_map(|(d, r)| Instr::Fmul { d, r }),
        (mid_reg(), mid_reg()).prop_map(|(d, r)| Instr::Fmuls { d, r }),
        (mid_reg(), mid_reg()).prop_map(|(d, r)| Instr::Fmulsu { d, r }),
        (even_reg(), even_reg()).prop_map(|(d, r)| Instr::Movw { d, r }),
        imm().prop_map(|(d, k)| Instr::Subi { d, k }),
        imm().prop_map(|(d, k)| Instr::Sbci { d, k }),
        imm().prop_map(|(d, k)| Instr::Andi { d, k }),
        imm().prop_map(|(d, k)| Instr::Ori { d, k }),
        imm().prop_map(|(d, k)| Instr::Cpi { d, k }),
        imm().prop_map(|(d, k)| Instr::Ldi { d, k }),
        (any_iw(), 0u8..64).prop_map(|(p, k)| Instr::Adiw { p, k }),
        (any_iw(), 0u8..64).prop_map(|(p, k)| Instr::Sbiw { p, k }),
        any_reg().prop_map(|d| Instr::Com { d }),
        any_reg().prop_map(|d| Instr::Neg { d }),
        any_reg().prop_map(|d| Instr::Swap { d }),
        any_reg().prop_map(|d| Instr::Inc { d }),
        any_reg().prop_map(|d| Instr::Asr { d }),
        any_reg().prop_map(|d| Instr::Lsr { d }),
        any_reg().prop_map(|d| Instr::Ror { d }),
        any_reg().prop_map(|d| Instr::Dec { d }),
        (-2048i16..2048).prop_map(|k| Instr::Rjmp { k }),
        (-2048i16..2048).prop_map(|k| Instr::Rcall { k }),
        (0u32..0x40_0000).prop_map(|k| Instr::Jmp { k }),
        (0u32..0x40_0000).prop_map(|k| Instr::Call { k }),
        Just(Instr::Ijmp),
        Just(Instr::Icall),
        Just(Instr::Ret),
        Just(Instr::Reti),
        (0u8..8, -64i8..64).prop_map(|(s, k)| Instr::Brbs { s, k }),
        (0u8..8, -64i8..64).prop_map(|(s, k)| Instr::Brbc { s, k }),
        (any_reg(), 0u8..8).prop_map(|(r, b)| Instr::Sbrc { r, b }),
        (any_reg(), 0u8..8).prop_map(|(r, b)| Instr::Sbrs { r, b }),
        (0u8..32, 0u8..8).prop_map(|(a, b)| Instr::Sbic { a, b }),
        (0u8..32, 0u8..8).prop_map(|(a, b)| Instr::Sbis { a, b }),
        (any_reg(), any_ptr(), any_mode()).prop_map(|(d, ptr, mode)| Instr::Ld { d, ptr, mode }),
        (any_reg(), any_ptr(), any_mode()).prop_map(|(r, ptr, mode)| Instr::St { ptr, mode, r }),
        (any_reg(), yz_ptr(), 1u8..64).prop_map(|(d, ptr, q)| Instr::Ldd { d, ptr, q }),
        (any_reg(), yz_ptr(), 1u8..64).prop_map(|(r, ptr, q)| Instr::Std { ptr, q, r }),
        (any_reg(), any::<u16>()).prop_map(|(d, k)| Instr::Lds { d, k }),
        (any_reg(), any::<u16>()).prop_map(|(r, k)| Instr::Sts { k, r }),
        Just(Instr::Lpm0),
        (any_reg(), any::<bool>()).prop_map(|(d, inc)| Instr::Lpm { d, inc }),
        Just(Instr::Elpm0),
        (any_reg(), any::<bool>()).prop_map(|(d, inc)| Instr::Elpm { d, inc }),
        (any_reg(), 0u8..64).prop_map(|(d, a)| Instr::In { d, a }),
        (any_reg(), 0u8..64).prop_map(|(r, a)| Instr::Out { a, r }),
        any_reg().prop_map(|r| Instr::Push { r }),
        any_reg().prop_map(|d| Instr::Pop { d }),
        (0u8..8).prop_map(|s| Instr::Bset { s }),
        (0u8..8).prop_map(|s| Instr::Bclr { s }),
        (0u8..32, 0u8..8).prop_map(|(a, b)| Instr::Sbi { a, b }),
        (0u8..32, 0u8..8).prop_map(|(a, b)| Instr::Cbi { a, b }),
        (any_reg(), 0u8..8).prop_map(|(d, b)| Instr::Bst { d, b }),
        (any_reg(), 0u8..8).prop_map(|(d, b)| Instr::Bld { d, b }),
        Just(Instr::Nop),
        Just(Instr::Sleep),
        Just(Instr::Wdr),
        Just(Instr::Break),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    /// decode(encode(i)) == i for every canonical instruction.
    #[test]
    fn encode_decode_roundtrip(i in any_instr()) {
        let e = isa::encode(i).expect("generated instruction must encode");
        let back = isa::decode(e.word0(), e.word1()).expect("must decode");
        prop_assert_eq!(back, i);
    }

    /// The encoded word count matches `Instr::words`, and `is_two_word`
    /// agrees with it.
    #[test]
    fn word_count_consistency(i in any_instr()) {
        let e = isa::encode(i).unwrap();
        prop_assert_eq!(e.len(), i.words());
        prop_assert_eq!(isa::is_two_word(e.word0()), i.words() == 2);
    }

    /// Display never panics and is non-empty (C-DEBUG-NONEMPTY analogue).
    #[test]
    fn display_is_total(i in any_instr()) {
        prop_assert!(!i.to_string().is_empty());
    }

    /// Decoding an arbitrary word either fails or yields an instruction that
    /// re-encodes to the same word (the decoder never invents state).
    #[test]
    fn decode_is_left_inverse_of_encode(w0 in any::<u16>(), w1 in any::<u16>()) {
        if let Ok(i) = isa::decode(w0, Some(w1)) {
            let e = isa::encode(i).expect("decoded instruction must re-encode");
            prop_assert_eq!(e.word0(), w0);
            if let Some(second) = e.word1() {
                prop_assert_eq!(second, w1);
            }
        }
    }
}
