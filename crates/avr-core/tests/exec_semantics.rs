//! Per-instruction semantics and cycle-count tests for the AVR CPU.

use avr_core::exec::{Cpu, Step};
use avr_core::isa::{flags, Instr, IwPair, Ptr, PtrMode, Reg};
use avr_core::mem::{PlainEnv, RAMEND, SRAM_BASE};
use avr_core::Fault;

/// Runs `prog` (with an appended BREAK) from PC 0 and returns the CPU.
fn run(prog: &[Instr]) -> Cpu<PlainEnv> {
    run_with(prog, |_| {})
}

/// Runs `prog` after applying `setup` to the fresh CPU.
fn run_with(prog: &[Instr], setup: impl FnOnce(&mut Cpu<PlainEnv>)) -> Cpu<PlainEnv> {
    let mut env = PlainEnv::new();
    let mut full = prog.to_vec();
    full.push(Instr::Break);
    env.load_program(0, &full);
    let mut cpu = Cpu::new(env);
    setup(&mut cpu);
    match cpu.run_to_break(100_000) {
        Ok(Step::Break) => cpu,
        other => panic!("program did not BREAK cleanly: {other:?}"),
    }
}

/// Cycles excluding the trailing BREAK.
fn body_cycles(cpu: &Cpu<PlainEnv>) -> u64 {
    cpu.cycles() - 1
}

#[test]
fn add_sets_carry_and_zero() {
    let cpu = run(&[
        Instr::Ldi { d: Reg::R16, k: 0xf0 },
        Instr::Ldi { d: Reg::R17, k: 0x10 },
        Instr::Add { d: Reg::R16, r: Reg::R17 },
    ]);
    assert_eq!(cpu.reg(Reg::R16), 0x00);
    assert!(cpu.flag(flags::C));
    assert!(cpu.flag(flags::Z));
    assert!(!cpu.flag(flags::N));
    assert!(!cpu.flag(flags::V));
}

#[test]
fn add_signed_overflow() {
    let cpu = run(&[
        Instr::Ldi { d: Reg::R16, k: 0x7f },
        Instr::Ldi { d: Reg::R17, k: 0x01 },
        Instr::Add { d: Reg::R16, r: Reg::R17 },
    ]);
    assert_eq!(cpu.reg(Reg::R16), 0x80);
    assert!(cpu.flag(flags::V), "0x7f + 1 overflows signed");
    assert!(cpu.flag(flags::N));
    assert!(!cpu.flag(flags::S), "S = N ^ V");
    assert!(!cpu.flag(flags::C));
}

#[test]
fn add_half_carry() {
    let cpu = run(&[
        Instr::Ldi { d: Reg::R16, k: 0x0f },
        Instr::Ldi { d: Reg::R17, k: 0x01 },
        Instr::Add { d: Reg::R16, r: Reg::R17 },
    ]);
    assert_eq!(cpu.reg(Reg::R16), 0x10);
    assert!(cpu.flag(flags::H));
}

#[test]
fn adc_chains_16_bit_addition() {
    // 0x00ff + 0x0001 = 0x0100 done as two byte adds.
    let cpu = run(&[
        Instr::Ldi { d: Reg::R16, k: 0xff }, // low(a)
        Instr::Ldi { d: Reg::R17, k: 0x00 }, // high(a)
        Instr::Ldi { d: Reg::R18, k: 0x01 }, // low(b)
        Instr::Ldi { d: Reg::R19, k: 0x00 }, // high(b)
        Instr::Add { d: Reg::R16, r: Reg::R18 },
        Instr::Adc { d: Reg::R17, r: Reg::R19 },
    ]);
    assert_eq!(cpu.reg(Reg::R16), 0x00);
    assert_eq!(cpu.reg(Reg::R17), 0x01);
}

#[test]
fn sub_borrow_flags() {
    let cpu = run(&[
        Instr::Ldi { d: Reg::R16, k: 0x00 },
        Instr::Ldi { d: Reg::R17, k: 0x01 },
        Instr::Sub { d: Reg::R16, r: Reg::R17 },
    ]);
    assert_eq!(cpu.reg(Reg::R16), 0xff);
    assert!(cpu.flag(flags::C), "borrow sets carry");
    assert!(cpu.flag(flags::N));
    assert!(!cpu.flag(flags::Z));
}

#[test]
fn sbc_preserves_zero_for_multibyte_compare() {
    // 16-bit value 0x0100 minus 0x0100: low sub sets Z, high sbc keeps it.
    let cpu = run(&[
        Instr::Ldi { d: Reg::R16, k: 0x00 },
        Instr::Ldi { d: Reg::R17, k: 0x01 },
        Instr::Ldi { d: Reg::R18, k: 0x00 },
        Instr::Ldi { d: Reg::R19, k: 0x01 },
        Instr::Sub { d: Reg::R16, r: Reg::R18 },
        Instr::Sbc { d: Reg::R17, r: Reg::R19 },
    ]);
    assert!(cpu.flag(flags::Z), "16-bit result is zero");
    // And a non-zero low byte must clear it even if the high result is 0.
    let cpu = run(&[
        Instr::Ldi { d: Reg::R16, k: 0x01 },
        Instr::Ldi { d: Reg::R17, k: 0x01 },
        Instr::Ldi { d: Reg::R18, k: 0x00 },
        Instr::Ldi { d: Reg::R19, k: 0x01 },
        Instr::Sub { d: Reg::R16, r: Reg::R18 },
        Instr::Sbc { d: Reg::R17, r: Reg::R19 },
    ]);
    assert!(!cpu.flag(flags::Z));
}

#[test]
fn logic_ops() {
    let cpu = run(&[
        Instr::Ldi { d: Reg::R16, k: 0b1100 },
        Instr::Ldi { d: Reg::R17, k: 0b1010 },
        Instr::And { d: Reg::R16, r: Reg::R17 },
    ]);
    assert_eq!(cpu.reg(Reg::R16), 0b1000);
    let cpu = run(&[Instr::Ldi { d: Reg::R16, k: 0b1100 }, Instr::Ori { d: Reg::R16, k: 0b0011 }]);
    assert_eq!(cpu.reg(Reg::R16), 0b1111);
    let cpu = run(&[
        Instr::Ldi { d: Reg::R16, k: 0xaa },
        Instr::Ldi { d: Reg::R17, k: 0xaa },
        Instr::Eor { d: Reg::R16, r: Reg::R17 },
    ]);
    assert_eq!(cpu.reg(Reg::R16), 0);
    assert!(cpu.flag(flags::Z));
}

#[test]
fn com_neg_inc_dec() {
    let cpu = run(&[Instr::Ldi { d: Reg::R16, k: 0x55 }, Instr::Com { d: Reg::R16 }]);
    assert_eq!(cpu.reg(Reg::R16), 0xaa);
    assert!(cpu.flag(flags::C), "COM always sets carry");

    let cpu = run(&[Instr::Ldi { d: Reg::R16, k: 0x01 }, Instr::Neg { d: Reg::R16 }]);
    assert_eq!(cpu.reg(Reg::R16), 0xff);
    assert!(cpu.flag(flags::C));

    let cpu = run(&[Instr::Ldi { d: Reg::R16, k: 0x7f }, Instr::Inc { d: Reg::R16 }]);
    assert_eq!(cpu.reg(Reg::R16), 0x80);
    assert!(cpu.flag(flags::V), "INC 0x7f overflows");

    let cpu = run(&[Instr::Ldi { d: Reg::R16, k: 0x00 }, Instr::Dec { d: Reg::R16 }]);
    assert_eq!(cpu.reg(Reg::R16), 0xff);
    assert!(!cpu.flag(flags::C), "DEC never touches carry");
}

#[test]
fn shifts_and_rotates() {
    let cpu = run(&[Instr::Ldi { d: Reg::R16, k: 0x81 }, Instr::Lsr { d: Reg::R16 }]);
    assert_eq!(cpu.reg(Reg::R16), 0x40);
    assert!(cpu.flag(flags::C));

    let cpu = run(&[Instr::Ldi { d: Reg::R16, k: 0x82 }, Instr::Asr { d: Reg::R16 }]);
    assert_eq!(cpu.reg(Reg::R16), 0xc1, "ASR keeps the sign bit");

    // ROR rotates carry in: set C via COM first.
    let cpu = run(&[
        Instr::Ldi { d: Reg::R17, k: 0 },
        Instr::Com { d: Reg::R17 }, // sets C
        Instr::Ldi { d: Reg::R16, k: 0x02 },
        Instr::Ror { d: Reg::R16 },
    ]);
    assert_eq!(cpu.reg(Reg::R16), 0x81);

    let cpu = run(&[Instr::Ldi { d: Reg::R16, k: 0xab }, Instr::Swap { d: Reg::R16 }]);
    assert_eq!(cpu.reg(Reg::R16), 0xba);
}

#[test]
fn adiw_sbiw() {
    let cpu = run(&[
        Instr::Ldi { d: Reg::R26, k: 0xff },
        Instr::Ldi { d: Reg::R27, k: 0x00 },
        Instr::Adiw { p: IwPair::X, k: 2 },
    ]);
    assert_eq!(cpu.reg16(Reg::XL), 0x0101);
    assert_eq!(body_cycles(&cpu), 1 + 1 + 2);

    let cpu = run(&[
        Instr::Ldi { d: Reg::R24, k: 0x00 },
        Instr::Ldi { d: Reg::R25, k: 0x01 },
        Instr::Sbiw { p: IwPair::W, k: 1 },
    ]);
    assert_eq!(cpu.reg16(Reg::R24), 0x00ff);
}

#[test]
fn mul_family() {
    let cpu = run(&[
        Instr::Ldi { d: Reg::R16, k: 200 },
        Instr::Ldi { d: Reg::R17, k: 100 },
        Instr::Mul { d: Reg::R16, r: Reg::R17 },
    ]);
    assert_eq!(cpu.reg16(Reg::R0), 20_000);
    assert!(!cpu.flag(flags::C));

    // muls: -2 * 100 = -200 = 0xff38
    let cpu = run(&[
        Instr::Ldi { d: Reg::R16, k: 0xfe },
        Instr::Ldi { d: Reg::R17, k: 100 },
        Instr::Muls { d: Reg::R16, r: Reg::R17 },
    ]);
    assert_eq!(cpu.reg16(Reg::R0), (-200i16) as u16);
    assert!(cpu.flag(flags::C), "C is bit 15 of the product");
}

#[test]
fn mov_and_movw() {
    let cpu = run(&[
        Instr::Ldi { d: Reg::R30, k: 0x34 },
        Instr::Ldi { d: Reg::R31, k: 0x12 },
        Instr::Movw { d: Reg::R24, r: Reg::R30 },
        Instr::Mov { d: Reg::R0, r: Reg::R24 },
    ]);
    assert_eq!(cpu.reg16(Reg::R24), 0x1234);
    assert_eq!(cpu.reg(Reg::R0), 0x34);
}

#[test]
fn load_store_indirect_modes() {
    let base = SRAM_BASE + 0x40;
    let cpu = run(&[
        Instr::Ldi { d: Reg::XL, k: (base & 0xff) as u8 },
        Instr::Ldi { d: Reg::XH, k: (base >> 8) as u8 },
        Instr::Ldi { d: Reg::R16, k: 0x11 },
        Instr::Ldi { d: Reg::R17, k: 0x22 },
        Instr::St { ptr: Ptr::X, mode: PtrMode::PostInc, r: Reg::R16 },
        Instr::St { ptr: Ptr::X, mode: PtrMode::Plain, r: Reg::R17 },
        Instr::Ld { d: Reg::R20, ptr: Ptr::X, mode: PtrMode::Plain },
        Instr::Ld { d: Reg::R21, ptr: Ptr::X, mode: PtrMode::PreDec },
    ]);
    assert_eq!(cpu.env.sram_byte(base), 0x11);
    assert_eq!(cpu.env.sram_byte(base + 1), 0x22);
    assert_eq!(cpu.reg(Reg::R20), 0x22);
    assert_eq!(cpu.reg(Reg::R21), 0x11, "pre-decrement reads the first byte");
    assert_eq!(cpu.reg16(Reg::XL), base);
}

#[test]
fn load_store_displacement() {
    let base = SRAM_BASE + 0x80;
    let cpu = run(&[
        Instr::Ldi { d: Reg::YL, k: (base & 0xff) as u8 },
        Instr::Ldi { d: Reg::YH, k: (base >> 8) as u8 },
        Instr::Ldi { d: Reg::R16, k: 0x99 },
        Instr::Std { ptr: Ptr::Y, q: 5, r: Reg::R16 },
        Instr::Ldd { d: Reg::R17, ptr: Ptr::Y, q: 5 },
    ]);
    assert_eq!(cpu.env.sram_byte(base + 5), 0x99);
    assert_eq!(cpu.reg(Reg::R17), 0x99);
    assert_eq!(cpu.reg16(Reg::YL), base, "displacement does not update Y");
}

#[test]
fn lds_sts_direct() {
    let cpu = run(&[
        Instr::Ldi { d: Reg::R16, k: 0x5a },
        Instr::Sts { k: 0x0200, r: Reg::R16 },
        Instr::Lds { d: Reg::R17, k: 0x0200 },
    ]);
    assert_eq!(cpu.reg(Reg::R17), 0x5a);
    assert_eq!(body_cycles(&cpu), 1 + 2 + 2);
}

#[test]
fn st_to_low_addresses_hits_registers_and_io() {
    // Storing to data address 5 writes r5 (the register file is mapped at
    // 0x00..0x1f).
    let cpu = run(&[Instr::Ldi { d: Reg::R16, k: 0x7e }, Instr::Sts { k: 0x0005, r: Reg::R16 }]);
    assert_eq!(cpu.reg(Reg::R5), 0x7e);

    // Storing to 0x20 + port hits the I/O file.
    let cpu = run(&[
        Instr::Ldi { d: Reg::R16, k: 0x31 },
        Instr::Sts { k: 0x0020 + 0x12, r: Reg::R16 },
        Instr::In { d: Reg::R17, a: 0x12 },
    ]);
    assert_eq!(cpu.reg(Reg::R17), 0x31);
}

#[test]
fn push_pop_and_sp() {
    let cpu = run(&[
        Instr::Ldi { d: Reg::R16, k: 0xaa },
        Instr::Push { r: Reg::R16 },
        Instr::Pop { d: Reg::R17 },
    ]);
    assert_eq!(cpu.reg(Reg::R17), 0xaa);
    assert_eq!(cpu.sp, RAMEND);
    assert_eq!(body_cycles(&cpu), 1 + 2 + 2);
}

#[test]
fn sp_accessible_via_io() {
    let cpu = run(&[Instr::In { d: Reg::R16, a: 0x3d }, Instr::In { d: Reg::R17, a: 0x3e }]);
    assert_eq!(cpu.reg(Reg::R16), (RAMEND & 0xff) as u8);
    assert_eq!(cpu.reg(Reg::R17), (RAMEND >> 8) as u8);
}

#[test]
fn lpm_reads_flash() {
    let mut env = PlainEnv::new();
    env.load_program(
        0,
        &[
            Instr::Ldi { d: Reg::ZL, k: 0x10 }, // byte address 0x0010 = word 8
            Instr::Ldi { d: Reg::ZH, k: 0x00 },
            Instr::Lpm { d: Reg::R16, inc: true },
            Instr::Lpm { d: Reg::R17, inc: false },
            Instr::Break,
        ],
    );
    env.flash.set_word(8, 0xbbaa);
    let mut cpu = Cpu::new(env);
    cpu.run_to_break(1000).unwrap();
    assert_eq!(cpu.reg(Reg::R16), 0xaa);
    assert_eq!(cpu.reg(Reg::R17), 0xbb);
    assert_eq!(cpu.reg16(Reg::ZL), 0x11);
}

#[test]
fn rjmp_and_branch_cycles() {
    // rjmp over a nop: 2 cycles, nop skipped.
    let cpu = run(&[
        Instr::Rjmp { k: 1 },
        Instr::Ldi { d: Reg::R16, k: 1 }, // skipped
        Instr::Ldi { d: Reg::R17, k: 2 },
    ]);
    assert_eq!(cpu.reg(Reg::R16), 0);
    assert_eq!(cpu.reg(Reg::R17), 2);
    assert_eq!(body_cycles(&cpu), 2 + 1);
}

#[test]
fn branch_taken_costs_two_not_taken_one() {
    // Z set -> breq taken.
    let cpu = run(&[
        Instr::Ldi { d: Reg::R16, k: 0 },
        Instr::Cpi { d: Reg::R16, k: 0 },
        Instr::Brbs { s: flags::Z, k: 1 },   // taken
        Instr::Ldi { d: Reg::R17, k: 0xee }, // skipped
    ]);
    assert_eq!(cpu.reg(Reg::R17), 0);
    assert_eq!(body_cycles(&cpu), 1 + 1 + 2);

    let cpu = run(&[
        Instr::Ldi { d: Reg::R16, k: 1 },
        Instr::Cpi { d: Reg::R16, k: 0 },
        Instr::Brbs { s: flags::Z, k: 1 }, // not taken
        Instr::Ldi { d: Reg::R17, k: 0xee },
    ]);
    assert_eq!(cpu.reg(Reg::R17), 0xee);
    assert_eq!(body_cycles(&cpu), 1 + 1 + 1 + 1);
}

#[test]
fn skip_instructions_account_for_skipped_size() {
    // sbrs over a 2-word sts: skip costs 2 extra cycles.
    let cpu = run(&[
        Instr::Ldi { d: Reg::R16, k: 0xff },
        Instr::Sbrs { r: Reg::R16, b: 3 },
        Instr::Sts { k: 0x0100, r: Reg::R16 }, // skipped, 2 words
        Instr::Ldi { d: Reg::R17, k: 7 },
    ]);
    assert_eq!(cpu.env.sram_byte(0x0100), 0);
    assert_eq!(cpu.reg(Reg::R17), 7);
    assert_eq!(body_cycles(&cpu), 1 + (1 + 2) + 1);

    // cpse with equal registers skips a 1-word instr: +1.
    let cpu = run(&[
        Instr::Cpse { d: Reg::R0, r: Reg::R1 },
        Instr::Ldi { d: Reg::R16, k: 0xff }, // skipped
        Instr::Nop,
    ]);
    assert_eq!(cpu.reg(Reg::R16), 0);
    assert_eq!(body_cycles(&cpu), (1 + 1) + 1);
}

#[test]
fn call_ret_roundtrip_and_cycles() {
    // call 5 ; break至 ... layout:
    // 0: call 4   (2 words)
    // 2: break
    // 3: nop (padding)
    // 4: ldi r16, 9 ; ret
    let mut env = PlainEnv::new();
    env.load_program(
        0,
        &[
            Instr::Call { k: 4 },
            Instr::Break,
            Instr::Nop,
            Instr::Ldi { d: Reg::R16, k: 9 },
            Instr::Ret,
        ],
    );
    let mut cpu = Cpu::new(env);
    cpu.run_to_break(1000).unwrap();
    assert_eq!(cpu.reg(Reg::R16), 9);
    assert_eq!(cpu.sp, RAMEND, "SP balanced after call/ret");
    assert_eq!(cpu.cycles(), 4 + 1 + 4 + 1); // call + ldi + ret + break
}

#[test]
fn rcall_and_icall() {
    let mut env = PlainEnv::new();
    // 0: rcall +2  -> target 3
    // 1: break
    // 2: nop
    // 3: ldi r16,5 ; ret
    env.load_program(
        0,
        &[
            Instr::Rcall { k: 2 },
            Instr::Break,
            Instr::Nop,
            Instr::Ldi { d: Reg::R16, k: 5 },
            Instr::Ret,
        ],
    );
    let mut cpu = Cpu::new(env);
    cpu.run_to_break(1000).unwrap();
    assert_eq!(cpu.reg(Reg::R16), 5);

    let mut env = PlainEnv::new();
    // icall via Z = 5
    env.load_program(
        0,
        &[
            Instr::Ldi { d: Reg::ZL, k: 5 },
            Instr::Ldi { d: Reg::ZH, k: 0 },
            Instr::Icall,
            Instr::Break,
            Instr::Nop,
            Instr::Ldi { d: Reg::R16, k: 6 },
            Instr::Ret,
        ],
    );
    let mut cpu = Cpu::new(env);
    cpu.run_to_break(1000).unwrap();
    assert_eq!(cpu.reg(Reg::R16), 6);
}

#[test]
fn nested_calls_return_in_order() {
    // main calls f, f calls g; registers record the order.
    let mut env = PlainEnv::new();
    env.load_program(
        0,
        &[
            Instr::Call { k: 5 },             // 0..=1
            Instr::Ldi { d: Reg::R18, k: 3 }, // 2: after f returns
            Instr::Break,                     // 3
            Instr::Nop,                       // 4
            // f at 5:
            Instr::Ldi { d: Reg::R16, k: 1 }, // 5
            Instr::Call { k: 10 },            // 6..=7
            Instr::Ldi { d: Reg::R19, k: 4 }, // 8: after g returns
            Instr::Ret,                       // 9
            // g at 10:
            Instr::Ldi { d: Reg::R17, k: 2 }, // 10
            Instr::Ret,                       // 11
        ],
    );
    let mut cpu = Cpu::new(env);
    cpu.run_to_break(1000).unwrap();
    assert_eq!(
        (cpu.reg(Reg::R16), cpu.reg(Reg::R17), cpu.reg(Reg::R19), cpu.reg(Reg::R18)),
        (1, 2, 4, 3)
    );
    assert_eq!(cpu.sp, RAMEND);
}

#[test]
fn ijmp_jumps_through_z() {
    let mut env = PlainEnv::new();
    env.load_program(
        0,
        &[
            Instr::Ldi { d: Reg::ZL, k: 4 },
            Instr::Ldi { d: Reg::ZH, k: 0 },
            Instr::Ijmp,
            Instr::Ldi { d: Reg::R16, k: 0xbb }, // skipped
            Instr::Ldi { d: Reg::R17, k: 0xcc }, // word 4
            Instr::Break,
        ],
    );
    let mut cpu = Cpu::new(env);
    cpu.run_to_break(1000).unwrap();
    assert_eq!(cpu.reg(Reg::R16), 0);
    assert_eq!(cpu.reg(Reg::R17), 0xcc);
}

#[test]
fn sbi_cbi_sbic_sbis() {
    let cpu = run(&[
        Instr::Sbi { a: 0x10, b: 2 },
        Instr::Sbic { a: 0x10, b: 2 }, // bit set -> no skip
        Instr::Ldi { d: Reg::R16, k: 1 },
        Instr::Cbi { a: 0x10, b: 2 },
        Instr::Sbic { a: 0x10, b: 2 },    // bit clear -> skip
        Instr::Ldi { d: Reg::R17, k: 1 }, // skipped
        Instr::Sbis { a: 0x10, b: 2 },    // clear -> no skip
        Instr::Ldi { d: Reg::R18, k: 1 },
    ]);
    assert_eq!((cpu.reg(Reg::R16), cpu.reg(Reg::R17), cpu.reg(Reg::R18)), (1, 0, 1));
}

#[test]
fn bst_bld_transfer_bits() {
    let cpu = run(&[
        Instr::Ldi { d: Reg::R16, k: 0b0000_1000 },
        Instr::Bst { d: Reg::R16, b: 3 },
        Instr::Ldi { d: Reg::R17, k: 0 },
        Instr::Bld { d: Reg::R17, b: 7 },
    ]);
    assert_eq!(cpu.reg(Reg::R17), 0x80);
    assert!(cpu.flag(flags::T));
}

#[test]
fn bset_bclr_sei_cli() {
    let cpu = run(&[Instr::Bset { s: flags::I }]);
    assert!(cpu.flag(flags::I));
    let cpu = run(&[Instr::Bset { s: flags::I }, Instr::Bclr { s: flags::I }]);
    assert!(!cpu.flag(flags::I));
}

#[test]
fn sreg_readable_via_io() {
    let cpu = run(&[
        Instr::Bset { s: flags::C },
        Instr::Bset { s: flags::T },
        Instr::In { d: Reg::R16, a: 0x3f },
    ]);
    assert_eq!(cpu.reg(Reg::R16), (1 << flags::C) | (1 << flags::T));
}

#[test]
fn out_to_debug_port_is_captured() {
    let cpu = run(&[
        Instr::Ldi { d: Reg::R16, k: b'h' },
        Instr::Out { a: avr_core::mem::PORT_DEBUG, r: Reg::R16 },
        Instr::Ldi { d: Reg::R16, k: b'i' },
        Instr::Out { a: avr_core::mem::PORT_DEBUG, r: Reg::R16 },
    ]);
    assert_eq!(cpu.env.debug_out, b"hi");
}

#[test]
fn loop_timing_matches_hand_count() {
    // Classic delay loop: ldi r16,10 ; L: dec r16 ; brne L
    // cycles = 1 + 10*(1+2) - 1 (last brne not taken costs 1, not 2)
    let cpu = run(&[
        Instr::Ldi { d: Reg::R16, k: 10 },
        Instr::Dec { d: Reg::R16 },
        Instr::Brbc { s: flags::Z, k: -2 },
    ]);
    assert_eq!(cpu.reg(Reg::R16), 0);
    assert_eq!(body_cycles(&cpu), 1 + 10 * 3 - 1);
}

#[test]
fn sleep_halts() {
    let mut env = PlainEnv::new();
    env.load_program(0, &[Instr::Sleep, Instr::Ldi { d: Reg::R16, k: 1 }]);
    let mut cpu = Cpu::new(env);
    assert_eq!(cpu.run_to_break(100), Ok(Step::Sleep));
    assert_eq!(cpu.reg(Reg::R16), 0);
}

#[test]
fn illegal_opcode_faults() {
    let mut env = PlainEnv::new();
    env.flash.set_word(0, 0x0001); // reserved
    let mut cpu = Cpu::new(env);
    assert_eq!(cpu.step(), Err(Fault::IllegalOpcode { pc: 0, word: 0x0001 }));
}

#[test]
fn store_outside_sram_faults() {
    let mut env = PlainEnv::new();
    env.load_program(0, &[Instr::Ldi { d: Reg::R16, k: 1 }, Instr::Sts { k: 0x2000, r: Reg::R16 }]);
    let mut cpu = Cpu::new(env);
    assert_eq!(cpu.run_to_break(100), Err(Fault::BadDataAddress { addr: 0x2000 }));
}

#[test]
fn cycle_limit_enforced() {
    let mut env = PlainEnv::new();
    env.load_program(0, &[Instr::Rjmp { k: -1 }]);
    let mut cpu = Cpu::new(env);
    assert!(matches!(cpu.run_to_break(100), Err(Fault::CycleLimit { .. })));
}

#[test]
fn run_to_pc_times_a_span() {
    let mut env = PlainEnv::new();
    env.load_program(
        0,
        &[
            Instr::Ldi { d: Reg::R16, k: 3 },
            Instr::Dec { d: Reg::R16 },
            Instr::Brbc { s: flags::Z, k: -2 },
            Instr::Break,
        ],
    );
    let mut cpu = Cpu::new(env);
    cpu.run_to_pc(3, 1000).unwrap();
    assert_eq!(cpu.pc, 3);
    assert_eq!(cpu.cycles(), 1 + 3 * 3 - 1);
}
