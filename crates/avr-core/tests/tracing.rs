//! Tests for the execution-trace facility and the timer interrupt source.

use avr_core::exec::{Cpu, Step};
use avr_core::isa::{flags, Instr, Reg};
use avr_core::mem::{PlainEnv, Timer, RAMEND};

#[test]
fn trace_records_every_retired_instruction_with_cycles() {
    let mut env = PlainEnv::new();
    env.load_program(
        0,
        &[
            Instr::Ldi { d: Reg::R16, k: 3 },
            Instr::Sts { k: 0x0100, r: Reg::R16 },
            Instr::Rjmp { k: 0 },
            Instr::Break,
        ],
    );
    let mut cpu = Cpu::new(env);
    let mut trace = Vec::new();
    let step = cpu.run_traced(100, &mut trace).unwrap();
    assert_eq!(step, Step::Break);
    let pcs: Vec<u32> = trace.iter().map(|t| t.pc).collect();
    assert_eq!(pcs, vec![0, 1, 3, 4]);
    assert_eq!(trace[0].instr, Instr::Ldi { d: Reg::R16, k: 3 });
    // Per-instruction cycle deltas: ldi 1, sts 2, rjmp 2, break 1.
    let cycles: Vec<u64> = trace.iter().map(|t| t.cycles_after).collect();
    assert_eq!(cycles, vec![1, 3, 5, 6]);
}

#[test]
fn trace_step_limit_stops_cleanly() {
    let mut env = PlainEnv::new();
    env.load_program(0, &[Instr::Rjmp { k: -1 }]);
    let mut cpu = Cpu::new(env);
    let mut trace = Vec::new();
    let step = cpu.run_traced(10, &mut trace).unwrap();
    assert_eq!(step, Step::Continue, "limit reached, no terminal instruction");
    assert_eq!(trace.len(), 10);
}

#[test]
fn timer_fires_only_with_interrupts_enabled() {
    // ISR at word 8 increments r20 and returns; main spins.
    let mut env = PlainEnv::new();
    env.load_program(
        0,
        &[
            Instr::Ldi { d: Reg::R20, k: 0 },   // 0
            Instr::Nop,                         // 1 (spin target)
            Instr::Cpi { d: Reg::R20, k: 3 },   // 2
            Instr::Brbc { s: flags::Z, k: -3 }, // 3 → back to 1
            Instr::Break,                       // 4
        ],
    );
    env.load_program(8, &[Instr::Ldi { d: Reg::R20, k: 0 }]); // placeholder
                                                              // Real ISR: inc r20 ; reti
    env.load_program(8, &[Instr::Inc { d: Reg::R20 }, Instr::Reti]);
    env.timer = Some(Timer::new(50, 8));

    // Without I set: the loop must spin forever (cycle limit).
    let mut cpu = Cpu::new(env.clone());
    assert!(cpu.run_to_break(2_000).is_err(), "no interrupts, no progress");

    // With I set: three timer fires break the loop.
    let mut cpu = Cpu::new(env);
    cpu.set_flag(flags::I, true);
    cpu.run_to_break(100_000).unwrap();
    assert_eq!(cpu.reg(Reg::R20), 3);
    assert_eq!(cpu.sp, RAMEND, "interrupt stack usage balanced");
    assert!(cpu.flag(flags::I), "reti re-enabled interrupts");
}

#[test]
fn interrupt_preserves_interrupted_context() {
    // Main increments r16 in a tight loop; ISR touches only r21 (saved by
    // pushing). After N interrupts the main loop result must be exact.
    let mut env = PlainEnv::new();
    env.load_program(
        0,
        &[
            Instr::Ldi { d: Reg::R16, k: 0 },   // 0
            Instr::Inc { d: Reg::R16 },         // 1
            Instr::Cpi { d: Reg::R16, k: 200 }, // 2
            Instr::Brbc { s: flags::Z, k: -3 }, // 3
            Instr::Break,                       // 4
        ],
    );
    env.load_program(
        8,
        &[
            Instr::Push { r: Reg::R21 },
            Instr::Ldi { d: Reg::R21, k: 0xff },
            Instr::Pop { d: Reg::R21 },
            Instr::Reti,
        ],
    );
    env.timer = Some(Timer::new(37, 8));
    let mut cpu = Cpu::new(env);
    cpu.set_flag(flags::I, true);
    cpu.run_to_break(1_000_000).unwrap();
    assert_eq!(cpu.reg(Reg::R16), 200, "main loop unperturbed");
    assert_eq!(cpu.reg(Reg::R21), 0, "ISR restored its scratch");
}

#[test]
fn timer_poll_coalesces_missed_periods() {
    let mut t = Timer::new(100, 4);
    assert_eq!(t.poll(50), None);
    assert_eq!(t.poll(100), Some(4));
    // A long stall past several periods yields one fire, then re-arms
    // relative to now.
    assert_eq!(t.poll(750), Some(4));
    assert_eq!(t.poll(800), None);
    assert_eq!(t.poll(850), Some(4));
}
