//! ATmega103-class memory system: flash, SRAM, I/O space and the plain
//! (protection-free) execution environment.

use crate::exec::{CallEvent, CallOutcome, Env, RetOutcome};
use crate::isa::{encode, Instr};
use crate::{Fault, WordAddr};

/// Flash size in 16-bit words (128 KiB).
pub const FLASH_WORDS: usize = 0x1_0000;
/// First data-space address of the I/O ports.
pub const IO_BASE: u16 = 0x20;
/// Number of I/O ports.
pub const IO_PORTS: usize = 64;
/// First data-space address of internal SRAM.
pub const SRAM_BASE: u16 = 0x60;
/// Internal SRAM size in bytes (ATmega103: 4000 B).
pub const SRAM_SIZE: usize = 4000;
/// Highest valid data-space address (`0x0fff`).
pub const RAMEND: u16 = SRAM_BASE + SRAM_SIZE as u16 - 1;
/// Flash page size in bytes — the allocation unit for jump tables.
pub const FLASH_PAGE_BYTES: usize = 256;

/// Simulator debug port: bytes written here are captured by the environment
/// (a poor man's UART for tests and examples). Unused on a real ATmega103.
pub const PORT_DEBUG: u8 = 0x1a;

/// Simulator panic port: writing byte `v` aborts execution with an
/// environment fault of code `v`. Trusted software (the SFI run-time, the
/// kernel's exception handler) uses this to signal protection violations to
/// the harness, mirroring how the UMPU hardware reports faults.
pub const PORT_PANIC: u8 = 0x19;

/// 128 KiB of program flash, word-addressed.
#[derive(Debug, Clone)]
pub struct Flash {
    words: Vec<u16>,
}

impl Default for Flash {
    fn default() -> Self {
        Flash::new()
    }
}

impl Flash {
    /// Creates erased (all-ones, like real flash) program memory.
    pub fn new() -> Flash {
        Flash { words: vec![0xffff; FLASH_WORDS] }
    }

    /// Reads the word at `addr` (wraps at the flash size, like the PC does).
    pub fn word(&self, addr: WordAddr) -> u16 {
        self.words[addr as usize % FLASH_WORDS]
    }

    /// Writes one word (host-side loader operation; the simulated CPU cannot
    /// write flash — modules "are not allowed to directly write to flash").
    pub fn set_word(&mut self, addr: WordAddr, w: u16) {
        self.words[addr as usize % FLASH_WORDS] = w;
    }

    /// Reads a byte using LPM addressing (byte address; bit 0 selects the
    /// low/high byte of the word).
    pub fn byte(&self, byte_addr: u32) -> u8 {
        let w = self.word(byte_addr >> 1);
        if byte_addr & 1 == 0 {
            w as u8
        } else {
            (w >> 8) as u8
        }
    }

    /// Writes a byte using LPM addressing (host-side loader operation).
    pub fn set_byte(&mut self, byte_addr: u32, v: u8) {
        let w = self.word(byte_addr >> 1);
        let w = if byte_addr & 1 == 0 {
            (w & 0xff00) | v as u16
        } else {
            (w & 0x00ff) | ((v as u16) << 8)
        };
        self.set_word(byte_addr >> 1, w);
    }

    /// Copies `words` into flash starting at word address `addr`.
    pub fn load_words(&mut self, addr: WordAddr, words: &[u16]) {
        for (i, &w) in words.iter().enumerate() {
            self.set_word(addr + i as u32, w);
        }
    }

    /// Encodes and loads a straight-line instruction sequence at `addr`,
    /// returning the first word address after it.
    ///
    /// # Panics
    ///
    /// Panics if an instruction has out-of-range operands; test/bench
    /// programs are static, so this is a programming error.
    pub fn load_program(&mut self, addr: WordAddr, prog: &[Instr]) -> WordAddr {
        let mut at = addr;
        for &i in prog {
            let e = encode(i).expect("load_program: invalid instruction operands");
            for w in e.as_slice() {
                self.set_word(at, *w);
                at += 1;
            }
        }
        at
    }
}

/// 4000 bytes of internal SRAM plus the 64-port I/O register file.
#[derive(Debug, Clone)]
pub struct DataMem {
    sram: Vec<u8>,
    io: [u8; IO_PORTS],
}

impl Default for DataMem {
    fn default() -> Self {
        DataMem::new()
    }
}

impl DataMem {
    /// Creates zeroed SRAM and I/O space.
    pub fn new() -> DataMem {
        DataMem { sram: vec![0; SRAM_SIZE], io: [0; IO_PORTS] }
    }

    /// Reads a byte at data-space address `addr` (must be ≥ [`SRAM_BASE`]).
    ///
    /// # Errors
    ///
    /// [`Fault::BadDataAddress`] above [`RAMEND`].
    pub fn read(&self, addr: u16) -> Result<u8, Fault> {
        self.sram
            .get(addr.wrapping_sub(SRAM_BASE) as usize)
            .copied()
            .ok_or(Fault::BadDataAddress { addr })
    }

    /// Writes a byte at data-space address `addr` (must be ≥ [`SRAM_BASE`]).
    ///
    /// # Errors
    ///
    /// [`Fault::BadDataAddress`] above [`RAMEND`].
    pub fn write(&mut self, addr: u16, v: u8) -> Result<(), Fault> {
        match self.sram.get_mut(addr.wrapping_sub(SRAM_BASE) as usize) {
            Some(b) => {
                *b = v;
                Ok(())
            }
            None => Err(Fault::BadDataAddress { addr }),
        }
    }

    /// Raw I/O port byte (CPU-internal ports like SP/SREG live in the CPU,
    /// not here).
    pub fn io(&self, port: u8) -> u8 {
        self.io[port as usize % IO_PORTS]
    }

    /// Sets a raw I/O port byte.
    pub fn set_io(&mut self, port: u8, v: u8) {
        self.io[port as usize % IO_PORTS] = v;
    }

    /// The SRAM contents (index 0 is data-space address [`SRAM_BASE`]).
    pub fn sram(&self) -> &[u8] {
        &self.sram
    }

    /// Mutable SRAM contents.
    pub fn sram_mut(&mut self) -> &mut [u8] {
        &mut self.sram
    }
}

/// A periodic timer interrupt source (a minimal Timer0-in-CTC-mode model):
/// raises its vector every `period` cycles while armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timer {
    period: u64,
    vector: WordAddr,
    next_fire: u64,
}

impl Timer {
    /// A timer firing every `period` cycles, dispatching to the vector at
    /// word address `vector`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: u64, vector: WordAddr) -> Timer {
        assert!(period > 0, "timer period must be positive");
        Timer { period, vector, next_fire: period }
    }

    /// The configured period in cycles.
    pub const fn period(&self) -> u64 {
        self.period
    }

    /// Cycle count of the next pending fire.
    pub const fn next_fire(&self) -> u64 {
        self.next_fire
    }

    /// Polls the timer at the current cycle count; returns the vector when
    /// it fires. Missed periods coalesce into one interrupt (the interrupt
    /// flag is a single bit in hardware).
    pub fn poll(&mut self, cycles: u64) -> Option<WordAddr> {
        if cycles >= self.next_fire {
            self.next_fire = cycles + self.period;
            Some(self.vector)
        } else {
            None
        }
    }
}

/// The protection-free environment: a stock ATmega103.
///
/// Used directly for baseline ("unprotected") runs and as the machine under
/// the SFI run-time (where all checks are software in the trusted kernel).
/// Writes to [`PORT_DEBUG`] are captured in [`PlainEnv::debug_out`].
#[derive(Debug, Clone, Default)]
pub struct PlainEnv {
    /// Program flash.
    pub flash: Flash,
    /// SRAM and I/O.
    pub data: DataMem,
    /// Bytes written to the debug port, in order.
    pub debug_out: Vec<u8>,
    /// Optional periodic timer interrupt source.
    pub timer: Option<Timer>,
}

impl PlainEnv {
    /// Creates a fresh machine with erased flash and zeroed RAM.
    pub fn new() -> PlainEnv {
        PlainEnv::default()
    }

    /// Loads an instruction sequence into flash (see [`Flash::load_program`]).
    pub fn load_program(&mut self, addr: WordAddr, prog: &[Instr]) -> WordAddr {
        self.flash.load_program(addr, prog)
    }

    /// Convenience accessor for one SRAM byte by absolute data address.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside SRAM.
    pub fn sram_byte(&self, addr: u16) -> u8 {
        self.data.read(addr).expect("address outside SRAM")
    }

    /// Sets one SRAM byte by absolute data address.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside SRAM.
    pub fn set_sram_byte(&mut self, addr: u16, v: u8) {
        self.data.write(addr, v).expect("address outside SRAM");
    }
}

impl Env for PlainEnv {
    fn fetch(&mut self, pc: WordAddr) -> Result<u16, Fault> {
        Ok(self.flash.word(pc))
    }

    fn flash_byte(&mut self, byte_addr: u32) -> u8 {
        self.flash.byte(byte_addr)
    }

    fn sram_read(&mut self, addr: u16) -> Result<u8, Fault> {
        self.data.read(addr)
    }

    fn sram_write(&mut self, addr: u16, v: u8) -> Result<u8, Fault> {
        self.data.write(addr, v)?;
        Ok(0)
    }

    fn io_read(&mut self, port: u8) -> u8 {
        self.data.io(port)
    }

    fn io_write(&mut self, port: u8, v: u8) -> Result<u8, Fault> {
        if port == PORT_DEBUG {
            self.debug_out.push(v);
        }
        if port == PORT_PANIC {
            return Err(Fault::Env(crate::EnvFault { code: v as u16, addr: 0, info: 0 }));
        }
        self.data.set_io(port, v);
        Ok(0)
    }

    fn on_call(&mut self, ev: CallEvent) -> Result<CallOutcome, Fault> {
        // Push the 16-bit return word address, low byte first (so the high
        // byte ends up at the lower address), then SP -= 2 in the CPU.
        let ret = ev.ret_addr as u16;
        self.data.write(ev.sp, ret as u8)?;
        self.data.write(ev.sp.wrapping_sub(1), (ret >> 8) as u8)?;
        Ok(CallOutcome { target: ev.target, extra_cycles: 0 })
    }

    fn on_ret(&mut self, sp: u16) -> Result<RetOutcome, Fault> {
        let hi = self.data.read(sp.wrapping_add(1))?;
        let lo = self.data.read(sp.wrapping_add(2))?;
        Ok(RetOutcome { target: ((hi as u32) << 8) | lo as u32, extra_cycles: 0 })
    }

    fn poll_irq(&mut self, cycles: u64) -> Option<crate::WordAddr> {
        self.timer.as_mut().and_then(|t| t.poll(cycles))
    }

    fn next_irq_at(&self) -> Option<u64> {
        self.timer.as_ref().map(Timer::next_fire)
    }

    // `check_fetch` keeps the never-faulting default: `fetch` cannot fail.
    // That also makes every range trivially fetchable, forever (the epoch
    // keeps its constant default).
    fn check_fetch_range(&self, _start: WordAddr, _end: WordAddr) -> bool {
        true
    }

    fn code_word(&self, pc: WordAddr) -> Option<u16> {
        Some(self.flash.word(pc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Reg;

    #[test]
    fn flash_bytes_and_words() {
        let mut f = Flash::new();
        assert_eq!(f.word(0), 0xffff, "erased flash reads all ones");
        f.set_word(0x10, 0xbeef);
        assert_eq!(f.byte(0x20), 0xef, "even byte address is the low byte");
        assert_eq!(f.byte(0x21), 0xbe);
        f.set_byte(0x21, 0x12);
        assert_eq!(f.word(0x10), 0x12ef);
    }

    #[test]
    fn sram_bounds() {
        let mut m = DataMem::new();
        assert!(m.write(SRAM_BASE, 1).is_ok());
        assert!(m.write(RAMEND, 2).is_ok());
        assert_eq!(m.read(SRAM_BASE), Ok(1));
        assert_eq!(m.read(RAMEND), Ok(2));
        assert_eq!(m.write(RAMEND + 1, 0), Err(Fault::BadDataAddress { addr: RAMEND + 1 }));
        assert!(m.read(0x5f).is_err(), "I/O space is not SRAM");
    }

    #[test]
    fn load_program_packs_words() {
        let mut f = Flash::new();
        let end = f.load_program(4, &[Instr::Ldi { d: Reg::R16, k: 1 }, Instr::Jmp { k: 0x40 }]);
        assert_eq!(end, 4 + 1 + 2);
        assert_eq!(f.word(4), 0xe001);
        assert_eq!(f.word(5), 0x940c);
        assert_eq!(f.word(6), 0x0040);
    }

    #[test]
    fn ramend_is_0x0fff() {
        assert_eq!(RAMEND, 0x0fff);
    }
}
