//! The cycle-accurate CPU and the [`Env`] trait that hosts it.
//!
//! The CPU is a pure AVR state machine (registers, PC, SP, SREG, RAMPZ).
//! Everything outside the register file — flash, SRAM, I/O, and crucially the
//! *arbitration* of stores and call/return micro-operations — is delegated to
//! an [`Env`] implementation. The attachment points mirror where the UMPU
//! hardware extensions sit in the paper's design:
//!
//! * [`Env::fetch`] — the fetch decoder (control-flow integrity checks);
//! * [`Env::sram_write`] — the memory-map checker (MMC), which may stall the
//!   CPU (returned extra cycles) or fault;
//! * [`Env::on_call`] / [`Env::on_ret`] — the safe-stack unit and domain
//!   tracker (return-address redirection, cross-domain frames).

use crate::isa::{self, flags, Instr, Ptr, PtrMode, Reg};
use crate::{Fault, WordAddr};

/// A call micro-operation about to execute, as seen by the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallEvent {
    /// Which call instruction triggered this.
    pub kind: CallKind,
    /// Word address of the call instruction itself.
    pub from_pc: WordAddr,
    /// Word address the call targets.
    pub target: WordAddr,
    /// Word address of the instruction after the call (the return address).
    pub ret_addr: WordAddr,
    /// Stack pointer *before* the call pushes anything.
    pub sp: u16,
}

/// The flavour of call instruction in a [`CallEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallKind {
    /// `RCALL` — relative call.
    Rcall,
    /// `CALL` — absolute call.
    Call,
    /// `ICALL` — indirect call through `Z`.
    Icall,
    /// Hardware interrupt dispatch (the return address is the interrupted
    /// instruction; a protection environment switches to the trusted
    /// domain and restores on `RETI`).
    Interrupt,
}

/// Environment's resolution of a call micro-operation.
///
/// The environment is responsible for storing the return address (to the
/// run-time stack, or redirected to a safe stack); the CPU then performs the
/// architectural `SP -= 2` and jumps to `target`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallOutcome {
    /// Where execution continues (normally the event's `target`; a hardware
    /// unit may redirect).
    pub target: WordAddr,
    /// Stall cycles to add on top of the instruction's base cycles
    /// (e.g. 5 for a UMPU cross-domain call).
    pub extra_cycles: u8,
}

/// Environment's resolution of a `RET`/`RETI` micro-operation.
///
/// The environment reads the return address from wherever it keeps it; the
/// CPU then performs the architectural `SP += 2` and jumps to `target`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetOutcome {
    /// Word address to return to.
    pub target: WordAddr,
    /// Stall cycles to add on top of `RET`'s base cycles.
    pub extra_cycles: u8,
}

/// The machine environment: memories plus (optionally) protection hardware.
///
/// See [`crate::mem::PlainEnv`] for the stock, protection-free machine; the
/// `umpu` crate provides the protected one.
pub trait Env {
    /// Fetches the instruction word at `pc`. A protection environment uses
    /// this as the fetch-decoder hook for control-flow integrity checks.
    ///
    /// # Errors
    ///
    /// An environment fault aborts execution of the current instruction.
    fn fetch(&mut self, pc: WordAddr) -> Result<u16, Fault>;

    /// Reads a flash byte for `LPM`/`ELPM` (byte address).
    fn flash_byte(&mut self, byte_addr: u32) -> u8;

    /// Reads a data-space byte at `addr ≥ 0x60` (SRAM).
    ///
    /// # Errors
    ///
    /// [`Fault::BadDataAddress`] outside implemented SRAM.
    fn sram_read(&mut self, addr: u16) -> Result<u8, Fault>;

    /// Writes a data-space byte at `addr ≥ 0x60`, returning stall cycles
    /// (the MMC hook: a protected store costs one extra cycle in UMPU).
    ///
    /// # Errors
    ///
    /// A protection environment faults here on illegal writes.
    fn sram_write(&mut self, addr: u16, v: u8) -> Result<u8, Fault>;

    /// Reads an I/O port other than the CPU-internal `SPL`/`SPH`/`SREG`/
    /// `RAMPZ`.
    fn io_read(&mut self, port: u8) -> u8;

    /// Writes an I/O port, returning stall cycles.
    ///
    /// # Errors
    ///
    /// A protection environment faults on untrusted writes to its
    /// configuration ports.
    fn io_write(&mut self, port: u8, v: u8) -> Result<u8, Fault>;

    /// Arbitrates a call micro-operation (safe-stack redirection, domain
    /// tracking) and stores the return address.
    ///
    /// # Errors
    ///
    /// A protection environment faults on illegal cross-domain targets.
    fn on_call(&mut self, ev: CallEvent) -> Result<CallOutcome, Fault>;

    /// Arbitrates a `RET`/`RETI`: produces the return target (from the
    /// run-time stack, safe stack, or a cross-domain frame). `sp` is the
    /// stack pointer before the architectural `SP += 2`.
    ///
    /// # Errors
    ///
    /// A protection environment faults on safe-stack underflow or a
    /// corrupted cross-domain frame.
    fn on_ret(&mut self, sp: u16) -> Result<RetOutcome, Fault>;

    /// Polls for a pending interrupt before each instruction (only
    /// consulted while SREG `I` is set). Returns the vector's word address.
    /// Environments without interrupt sources keep the default.
    fn poll_irq(&mut self, _cycles: u64) -> Option<WordAddr> {
        None
    }

    /// The cycle count at which the next interrupt source will fire, if
    /// any — lets `SLEEP` fast-forward through idle time instead of being
    /// terminal. Environments without interrupt sources keep the default.
    fn next_irq_at(&self) -> Option<u64> {
        None
    }

    /// Observes the CPU's cycle counter at the start of each step — the
    /// trace-instrumentation hook: an environment that stamps protection
    /// events (see the `harbor-scope` crate) latches this value so events
    /// raised from bus hooks carry the cycle of the instruction that caused
    /// them. Purely observational; the default keeps nothing.
    fn set_now(&mut self, _cycles: u64) {}

    /// Arbitrates a fetch from `pc` *without* reading the word — the
    /// fast-path (harbor-turbo) CFI hook. An implementation must fault (and
    /// emit exactly the same protection events) in precisely the cases where
    /// [`Env::fetch`] would fault, so that a fast path calling
    /// `check_fetch` + cached decode is indistinguishable from `fetch` +
    /// decode. The default never faults, matching environments whose
    /// `fetch` cannot fail.
    ///
    /// # Errors
    ///
    /// Exactly when [`Env::fetch`] at the same `pc` would fault.
    fn check_fetch(&mut self, _pc: WordAddr) -> Result<(), Fault> {
        Ok(())
    }

    /// Raw flash word at `pc`, bypassing all protection checks — the
    /// fast-path block builder's unprivileged view of code memory (used only
    /// to *decode ahead*, never to execute unchecked). `None` (the default)
    /// opts the environment out of fast-path execution entirely.
    fn code_word(&self, _pc: WordAddr) -> Option<u16> {
        None
    }

    /// A stamp over every piece of state [`Env::check_fetch`] consults.
    /// An implementation must return a *different* value whenever a state
    /// change could alter any `check_fetch` outcome (domain switch,
    /// code-region or jump-table reconfiguration, protection enable bit).
    /// The fast path uses this to cache [`Env::check_fetch_range`] grants:
    /// while the epoch holds, a granted range needs no per-word re-check.
    /// The default (a constant) is correct for environments whose
    /// `check_fetch` can never fault.
    fn cfi_epoch(&self) -> u64 {
        0
    }

    /// Whether *every* word address in `start..end` would pass
    /// [`Env::check_fetch`] under the current state — with **no** observable
    /// side effects (no faults raised, no events emitted). `true` lets a
    /// fast path skip the per-word checks for the whole range until
    /// [`Env::cfi_epoch`] changes; `false` means "not provable as a range"
    /// and the caller must fall back to exact per-word `check_fetch` calls
    /// (preserving the faulting word address and event order). The
    /// conservative default is `false`.
    fn check_fetch_range(&self, _start: WordAddr, _end: WordAddr) -> bool {
        false
    }

    /// [`Env::sram_write`] with the word address of the *store instruction*
    /// attached — the check-elision hook. `certified` is `true` when the
    /// caller already knows `pc` holds a statically certified store (a
    /// fast-path slot whose elision bit is baked in); an environment with a
    /// store certificate may then skip its memory-map walk, but must remain
    /// byte-identical to the full check (same result, same stall cycles,
    /// same protection events). The default ignores the extra context.
    ///
    /// # Errors
    ///
    /// Exactly when [`Env::sram_write`] at the same `addr` would fault.
    fn sram_write_at(
        &mut self,
        pc: WordAddr,
        addr: u16,
        v: u8,
        certified: bool,
    ) -> Result<u8, Fault> {
        let _ = (pc, certified);
        self.sram_write(addr, v)
    }

    /// Whether the store instruction at `pc` is covered by a static store
    /// certificate under the current protection state. Fast-path page
    /// builders bake this into decoded slots; the stamp discipline is the
    /// same as for fetch grants — pages are rebuilt when the backing state
    /// changes. The default (`false`) opts out of elision.
    fn store_certified(&self, _pc: WordAddr) -> bool {
        false
    }
}

/// One retired instruction, as recorded by [`Cpu::step_traced`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Word address the instruction was fetched from.
    pub pc: WordAddr,
    /// The instruction.
    pub instr: Instr,
    /// Cycle counter after it retired (deltas give per-instruction cost,
    /// including protection stalls).
    pub cycles_after: u64,
}

/// What a single [`Cpu::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// An ordinary instruction retired.
    Continue,
    /// A `BREAK` retired — the program signals completion to the harness.
    Break,
    /// A `SLEEP` retired — with no interrupt model, the CPU is idle forever.
    Sleep,
}

/// The AVR CPU bound to an environment `E`.
///
/// Architectural state is public for inspection and test setup; cycle and
/// instruction counters are read through [`Cpu::cycles`] /
/// [`Cpu::instructions`].
#[derive(Debug, Clone)]
pub struct Cpu<E> {
    /// General-purpose registers `r0`–`r31`.
    pub regs: [u8; 32],
    /// Program counter, in words.
    pub pc: WordAddr,
    /// Stack pointer (byte address; initialise to `RAMEND`).
    pub sp: u16,
    /// Status register.
    pub sreg: u8,
    /// RAMPZ extended-addressing register (for `ELPM`).
    pub rampz: u8,
    /// The machine environment.
    pub env: E,
    cycles: u64,
    instrs: u64,
    idle_cycles: u64,
    store_hint: bool,
}

impl<E: Env> Cpu<E> {
    /// Creates a CPU with zeroed registers, `PC = 0` and
    /// `SP = `[`RAMEND`](crate::mem::RAMEND).
    pub fn new(env: E) -> Cpu<E> {
        Cpu {
            regs: [0; 32],
            pc: 0,
            sp: crate::mem::RAMEND,
            sreg: 0,
            rampz: 0,
            env,
            cycles: 0,
            instrs: 0,
            idle_cycles: 0,
            store_hint: false,
        }
    }

    /// Marks the *next* store executed by [`Cpu::exec_decoded`] as
    /// statically certified: its SRAM write is routed to
    /// [`Env::sram_write_at`] with `certified = true`. Consumed (reset to
    /// `false`) by the next data-space write; a fast path sets it from the
    /// decoded slot's elision bit immediately before dispatch.
    #[inline]
    pub fn set_store_hint(&mut self, certified: bool) {
        self.store_hint = certified;
    }

    /// Total cycles executed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Cycles spent asleep waiting for interrupts (included in
    /// [`Cpu::cycles`]) — the complement of the node's duty cycle.
    pub fn idle_cycles(&self) -> u64 {
        self.idle_cycles
    }

    /// Total instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.instrs
    }

    /// Reads register `r`.
    #[inline]
    pub fn reg(&self, r: Reg) -> u8 {
        self.regs[r.index() as usize]
    }

    /// Writes register `r`.
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u8) {
        self.regs[r.index() as usize] = v;
    }

    /// Reads the 16-bit pair whose low register is `lo`.
    #[inline]
    pub fn reg16(&self, lo: Reg) -> u16 {
        let i = lo.index() as usize;
        (self.regs[i + 1] as u16) << 8 | self.regs[i] as u16
    }

    /// Writes the 16-bit pair whose low register is `lo`.
    #[inline]
    pub fn set_reg16(&mut self, lo: Reg, v: u16) {
        let i = lo.index() as usize;
        self.regs[i] = v as u8;
        self.regs[i + 1] = (v >> 8) as u8;
    }

    /// Reads SREG flag `f` (use the [`flags`] constants).
    #[inline]
    pub fn flag(&self, f: u8) -> bool {
        self.sreg & (1 << f) != 0
    }

    /// Sets or clears SREG flag `f`.
    #[inline]
    pub fn set_flag(&mut self, f: u8, v: bool) {
        if v {
            self.sreg |= 1 << f;
        } else {
            self.sreg &= !(1 << f);
        }
    }

    // ── data-space routing ──────────────────────────────────────────────

    #[inline]
    fn data_read(&mut self, addr: u16) -> Result<u8, Fault> {
        match addr {
            0x00..=0x1f => Ok(self.regs[addr as usize]),
            0x20..=0x5f => Ok(self.io_in((addr - 0x20) as u8)),
            _ => self.env.sram_read(addr),
        }
    }

    /// Returns stall cycles contributed by the environment.
    #[inline]
    fn data_write(&mut self, addr: u16, v: u8) -> Result<u8, Fault> {
        match addr {
            0x00..=0x1f => {
                self.regs[addr as usize] = v;
                Ok(0)
            }
            0x20..=0x5f => self.io_out((addr - 0x20) as u8, v),
            _ => self.env.sram_write(addr, v),
        }
    }

    /// [`Cpu::data_write`] for the store instructions (`st`/`std`/`sts`),
    /// carrying the instruction's own word address and the pending
    /// certification hint down to the environment.
    #[inline]
    fn data_write_at(&mut self, pc: WordAddr, addr: u16, v: u8) -> Result<u8, Fault> {
        let certified = core::mem::take(&mut self.store_hint);
        match addr {
            0x00..=0x1f => {
                self.regs[addr as usize] = v;
                Ok(0)
            }
            0x20..=0x5f => self.io_out((addr - 0x20) as u8, v),
            _ => self.env.sram_write_at(pc, addr, v, certified),
        }
    }

    #[inline]
    fn io_in(&mut self, port: u8) -> u8 {
        match port {
            0x3d => self.sp as u8,
            0x3e => (self.sp >> 8) as u8,
            0x3f => self.sreg,
            0x3b => self.rampz,
            p => self.env.io_read(p),
        }
    }

    #[inline]
    fn io_out(&mut self, port: u8, v: u8) -> Result<u8, Fault> {
        match port {
            0x3d => {
                self.sp = (self.sp & 0xff00) | v as u16;
                Ok(0)
            }
            0x3e => {
                self.sp = (self.sp & 0x00ff) | ((v as u16) << 8);
                Ok(0)
            }
            0x3f => {
                self.sreg = v;
                Ok(0)
            }
            0x3b => {
                self.rampz = v;
                Ok(0)
            }
            p => self.env.io_write(p, v),
        }
    }

    // ── flag helpers ────────────────────────────────────────────────────

    #[inline]
    fn logic_flags(&mut self, res: u8) {
        self.set_flag(flags::V, false);
        self.set_flag(flags::N, res & 0x80 != 0);
        self.set_flag(flags::S, self.flag(flags::N));
        self.set_flag(flags::Z, res == 0);
    }

    #[inline]
    fn add_flags(&mut self, d: u8, r: u8, res: u8) {
        let (d, r, res) = (d as u16, r as u16, res as u16);
        let carries = (d & r) | (r & !res) | (!res & d);
        self.set_flag(flags::H, carries & 0x08 != 0);
        self.set_flag(flags::C, carries & 0x80 != 0);
        let v = (d & r & !res) | (!d & !r & res);
        self.set_flag(flags::V, v & 0x80 != 0);
        self.set_flag(flags::N, res & 0x80 != 0);
        self.set_flag(flags::S, self.flag(flags::N) != self.flag(flags::V));
        self.set_flag(flags::Z, res & 0xff == 0);
    }

    #[inline]
    fn sub_flags(&mut self, d: u8, r: u8, res: u8, preserve_z: bool) {
        let (d, r, res) = (d as u16, r as u16, res as u16);
        let borrows = (!d & r) | (r & res) | (res & !d);
        self.set_flag(flags::H, borrows & 0x08 != 0);
        self.set_flag(flags::C, borrows & 0x80 != 0);
        let v = (d & !r & !res) | (!d & r & res);
        self.set_flag(flags::V, v & 0x80 != 0);
        self.set_flag(flags::N, res & 0x80 != 0);
        self.set_flag(flags::S, self.flag(flags::N) != self.flag(flags::V));
        let z = res & 0xff == 0;
        if preserve_z {
            let zc = self.flag(flags::Z) && z;
            self.set_flag(flags::Z, zc);
        } else {
            self.set_flag(flags::Z, z);
        }
    }

    #[inline]
    fn shift_right_flags(&mut self, d: u8, res: u8) {
        self.set_flag(flags::C, d & 1 != 0);
        self.set_flag(flags::N, res & 0x80 != 0);
        self.set_flag(flags::V, self.flag(flags::N) != self.flag(flags::C));
        self.set_flag(flags::S, self.flag(flags::N) != self.flag(flags::V));
        self.set_flag(flags::Z, res == 0);
    }

    // ── pointer helpers ─────────────────────────────────────────────────

    /// Resolves the effective address of an indirect access and applies the
    /// pointer update, returning the address to access.
    #[inline]
    fn ptr_access(&mut self, ptr: Ptr, mode: PtrMode) -> u16 {
        let lo = ptr.lo();
        match mode {
            PtrMode::Plain => self.reg16(lo),
            PtrMode::PostInc => {
                let a = self.reg16(lo);
                self.set_reg16(lo, a.wrapping_add(1));
                a
            }
            PtrMode::PreDec => {
                let a = self.reg16(lo).wrapping_sub(1);
                self.set_reg16(lo, a);
                a
            }
        }
    }

    // ── execution ───────────────────────────────────────────────────────

    /// Fetches, decodes and executes one instruction, updating cycle and
    /// instruction counters.
    ///
    /// # Errors
    ///
    /// Any [`Fault`] from decode, the data bus, or the environment. The CPU
    /// state is left as of the start of the faulting instruction's commit —
    /// suitable for inspection by an exception handler in the harness.
    pub fn step(&mut self) -> Result<Step, Fault> {
        self.begin_step()?;
        self.step_tail()
    }

    /// Everything [`Cpu::step`] does before the fetch: latches the cycle
    /// counter into the environment and dispatches a pending interrupt if
    /// SREG `I` is set. Returns whether an interrupt dispatched (in which
    /// case the PC has moved to the vector). Exposed so a fast-path engine
    /// (harbor-turbo) can interleave the exact reference step sequence with
    /// its own cached decode.
    ///
    /// # Errors
    ///
    /// A [`Fault`] from the environment's interrupt-dispatch arbitration.
    #[inline]
    pub fn begin_step(&mut self) -> Result<bool, Fault> {
        self.env.set_now(self.cycles);
        // Interrupt dispatch: between instructions, with I set.
        if self.flag(flags::I) {
            if let Some(vector) = self.env.poll_irq(self.cycles) {
                let ev = CallEvent {
                    kind: CallKind::Interrupt,
                    from_pc: self.pc,
                    target: vector,
                    ret_addr: self.pc,
                    sp: self.sp,
                };
                let out = self.env.on_call(ev)?;
                self.sp = self.sp.wrapping_sub(2);
                self.pc = out.target & 0xffff;
                self.set_flag(flags::I, false);
                // AVR interrupt response time: 4 cycles + any unit stalls.
                self.cycles += 4 + out.extra_cycles as u64;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Everything [`Cpu::step`] does after interrupt dispatch: fetch,
    /// decode, execute. The fast-path engine falls back to this whenever
    /// its cache cannot serve the current PC.
    ///
    /// # Errors
    ///
    /// As [`Cpu::step`].
    #[inline]
    pub fn step_tail(&mut self) -> Result<Step, Fault> {
        let pc0 = self.pc;
        let w0 = self.env.fetch(pc0)?;
        let w1 =
            if isa::is_two_word(w0) { Some(self.env.fetch(pc0.wrapping_add(1))?) } else { None };
        let instr = isa::decode(w0, w1).map_err(|_| Fault::IllegalOpcode { pc: pc0, word: w0 })?;
        self.exec_decoded(pc0, instr)
    }

    /// Executes an already-decoded `instr` that was fetched from `pc0`,
    /// advancing the PC and updating cycle/instruction counters exactly as
    /// [`Cpu::step`] would. The caller is responsible for the fetch-side
    /// protection checks ([`Env::check_fetch`] on every word the reference
    /// `fetch` path would touch) — harbor-turbo does this per instruction.
    ///
    /// # Errors
    ///
    /// As [`Cpu::step`].
    pub fn exec_decoded(&mut self, pc0: WordAddr, instr: Instr) -> Result<Step, Fault> {
        let words = instr.words();
        self.pc = pc0.wrapping_add(words);
        let mut extra: u8 = 0;
        let mut step = Step::Continue;

        use Instr::*;
        match instr {
            Add { d, r } => {
                let dv = self.reg(d);
                let rv = self.reg(r);
                let res = dv.wrapping_add(rv);
                self.add_flags(dv, rv, res);
                self.set_reg(d, res);
            }
            Adc { d, r } => {
                let c = self.flag(flags::C) as u8;
                let dv = self.reg(d);
                let rv = self.reg(r);
                let res = dv.wrapping_add(rv).wrapping_add(c);
                self.add_flags(dv, rv, res);
                self.set_reg(d, res);
            }
            Sub { d, r } => {
                let dv = self.reg(d);
                let rv = self.reg(r);
                let res = dv.wrapping_sub(rv);
                self.sub_flags(dv, rv, res, false);
                self.set_reg(d, res);
            }
            Sbc { d, r } => {
                let c = self.flag(flags::C) as u8;
                let dv = self.reg(d);
                let rv = self.reg(r);
                let res = dv.wrapping_sub(rv).wrapping_sub(c);
                self.sub_flags(dv, rv, res, true);
                self.set_reg(d, res);
            }
            Subi { d, k } => {
                let dv = self.reg(d);
                let res = dv.wrapping_sub(k);
                self.sub_flags(dv, k, res, false);
                self.set_reg(d, res);
            }
            Sbci { d, k } => {
                let c = self.flag(flags::C) as u8;
                let dv = self.reg(d);
                let res = dv.wrapping_sub(k).wrapping_sub(c);
                self.sub_flags(dv, k, res, true);
                self.set_reg(d, res);
            }
            Cp { d, r } => {
                let dv = self.reg(d);
                let rv = self.reg(r);
                let res = dv.wrapping_sub(rv);
                self.sub_flags(dv, rv, res, false);
            }
            Cpc { d, r } => {
                let c = self.flag(flags::C) as u8;
                let dv = self.reg(d);
                let rv = self.reg(r);
                let res = dv.wrapping_sub(rv).wrapping_sub(c);
                self.sub_flags(dv, rv, res, true);
            }
            Cpi { d, k } => {
                let dv = self.reg(d);
                let res = dv.wrapping_sub(k);
                self.sub_flags(dv, k, res, false);
            }
            And { d, r } => {
                let res = self.reg(d) & self.reg(r);
                self.logic_flags(res);
                self.set_reg(d, res);
            }
            Or { d, r } => {
                let res = self.reg(d) | self.reg(r);
                self.logic_flags(res);
                self.set_reg(d, res);
            }
            Eor { d, r } => {
                let res = self.reg(d) ^ self.reg(r);
                self.logic_flags(res);
                self.set_reg(d, res);
            }
            Andi { d, k } => {
                let res = self.reg(d) & k;
                self.logic_flags(res);
                self.set_reg(d, res);
            }
            Ori { d, k } => {
                let res = self.reg(d) | k;
                self.logic_flags(res);
                self.set_reg(d, res);
            }
            Mov { d, r } => {
                let v = self.reg(r);
                self.set_reg(d, v);
            }
            Movw { d, r } => {
                let v = self.reg16(r);
                self.set_reg16(d, v);
            }
            Ldi { d, k } => self.set_reg(d, k),
            Com { d } => {
                let res = !self.reg(d);
                self.logic_flags(res);
                self.set_flag(flags::C, true);
                self.set_reg(d, res);
            }
            Neg { d } => {
                let dv = self.reg(d);
                let res = 0u8.wrapping_sub(dv);
                self.set_flag(flags::H, (res | dv) & 0x08 != 0);
                self.set_flag(flags::V, res == 0x80);
                self.set_flag(flags::C, res != 0);
                self.set_flag(flags::N, res & 0x80 != 0);
                self.set_flag(flags::S, self.flag(flags::N) != self.flag(flags::V));
                self.set_flag(flags::Z, res == 0);
                self.set_reg(d, res);
            }
            Swap { d } => {
                let v = self.reg(d);
                self.set_reg(d, v.rotate_right(4));
            }
            Inc { d } => {
                let dv = self.reg(d);
                let res = dv.wrapping_add(1);
                self.set_flag(flags::V, dv == 0x7f);
                self.set_flag(flags::N, res & 0x80 != 0);
                self.set_flag(flags::S, self.flag(flags::N) != self.flag(flags::V));
                self.set_flag(flags::Z, res == 0);
                self.set_reg(d, res);
            }
            Dec { d } => {
                let dv = self.reg(d);
                let res = dv.wrapping_sub(1);
                self.set_flag(flags::V, dv == 0x80);
                self.set_flag(flags::N, res & 0x80 != 0);
                self.set_flag(flags::S, self.flag(flags::N) != self.flag(flags::V));
                self.set_flag(flags::Z, res == 0);
                self.set_reg(d, res);
            }
            Asr { d } => {
                let dv = self.reg(d);
                let res = ((dv as i8) >> 1) as u8;
                self.shift_right_flags(dv, res);
                self.set_reg(d, res);
            }
            Lsr { d } => {
                let dv = self.reg(d);
                let res = dv >> 1;
                self.shift_right_flags(dv, res);
                self.set_reg(d, res);
            }
            Ror { d } => {
                let dv = self.reg(d);
                let res = (dv >> 1) | if self.flag(flags::C) { 0x80 } else { 0 };
                self.shift_right_flags(dv, res);
                self.set_reg(d, res);
            }
            Adiw { p, k } => {
                let dv = self.reg16(p.lo());
                let res = dv.wrapping_add(k as u16);
                self.set_flag(flags::V, (!dv & res) & 0x8000 != 0);
                self.set_flag(flags::C, (!res & dv) & 0x8000 != 0);
                self.set_flag(flags::N, res & 0x8000 != 0);
                self.set_flag(flags::S, self.flag(flags::N) != self.flag(flags::V));
                self.set_flag(flags::Z, res == 0);
                self.set_reg16(p.lo(), res);
            }
            Sbiw { p, k } => {
                let dv = self.reg16(p.lo());
                let res = dv.wrapping_sub(k as u16);
                self.set_flag(flags::V, (dv & !res) & 0x8000 != 0);
                self.set_flag(flags::C, (res & !dv) & 0x8000 != 0);
                self.set_flag(flags::N, res & 0x8000 != 0);
                self.set_flag(flags::S, self.flag(flags::N) != self.flag(flags::V));
                self.set_flag(flags::Z, res == 0);
                self.set_reg16(p.lo(), res);
            }
            Mul { d, r } => {
                let res = self.reg(d) as u16 * self.reg(r) as u16;
                self.mul_commit(res);
            }
            Muls { d, r } => {
                let res = (self.reg(d) as i8 as i16 * self.reg(r) as i8 as i16) as u16;
                self.mul_commit(res);
            }
            Mulsu { d, r } => {
                let res = (self.reg(d) as i8 as i16).wrapping_mul(self.reg(r) as i16) as u16;
                self.mul_commit(res);
            }
            Fmul { d, r } => {
                let prod = self.reg(d) as u16 * self.reg(r) as u16;
                self.fmul_commit(prod);
            }
            Fmuls { d, r } => {
                let prod = (self.reg(d) as i8 as i16 * self.reg(r) as i8 as i16) as u16;
                self.fmul_commit(prod);
            }
            Fmulsu { d, r } => {
                let prod = (self.reg(d) as i8 as i16).wrapping_mul(self.reg(r) as i16) as u16;
                self.fmul_commit(prod);
            }

            // ── control flow ────────────────────────────────────────────
            Rjmp { k } => {
                self.pc = self.pc.wrapping_add(k as i32 as u32) & 0xffff;
            }
            Jmp { k } => {
                self.pc = k & 0xffff;
            }
            Ijmp => {
                self.pc = self.reg16(Reg::ZL) as u32;
            }
            Rcall { k } => {
                let target = self.pc.wrapping_add(k as i32 as u32) & 0xffff;
                extra = self.do_call(CallKind::Rcall, pc0, target)?;
            }
            Call { k } => {
                extra = self.do_call(CallKind::Call, pc0, k & 0xffff)?;
            }
            Icall => {
                let target = self.reg16(Reg::ZL) as u32;
                extra = self.do_call(CallKind::Icall, pc0, target)?;
            }
            Ret => {
                let out = self.env.on_ret(self.sp)?;
                self.sp = self.sp.wrapping_add(2);
                self.pc = out.target & 0xffff;
                extra = out.extra_cycles;
            }
            Reti => {
                let out = self.env.on_ret(self.sp)?;
                self.sp = self.sp.wrapping_add(2);
                self.pc = out.target & 0xffff;
                extra = out.extra_cycles;
                self.set_flag(flags::I, true);
            }
            Brbs { s, k } => {
                if self.flag(s) {
                    self.pc = self.pc.wrapping_add(k as i32 as u32) & 0xffff;
                    extra = 1;
                }
            }
            Brbc { s, k } => {
                if !self.flag(s) {
                    self.pc = self.pc.wrapping_add(k as i32 as u32) & 0xffff;
                    extra = 1;
                }
            }
            Cpse { d, r } => {
                if self.reg(d) == self.reg(r) {
                    extra = self.do_skip()?;
                }
            }
            Sbrc { r, b } => {
                if self.reg(r) & (1 << b) == 0 {
                    extra = self.do_skip()?;
                }
            }
            Sbrs { r, b } => {
                if self.reg(r) & (1 << b) != 0 {
                    extra = self.do_skip()?;
                }
            }
            Sbic { a, b } => {
                if self.io_in(a) & (1 << b) == 0 {
                    extra = self.do_skip()?;
                }
            }
            Sbis { a, b } => {
                if self.io_in(a) & (1 << b) != 0 {
                    extra = self.do_skip()?;
                }
            }

            // ── data transfer ───────────────────────────────────────────
            Ld { d, ptr, mode } => {
                let addr = self.ptr_access(ptr, mode);
                let v = self.data_read(addr)?;
                self.set_reg(d, v);
            }
            St { ptr, mode, r } => {
                let v = self.reg(r);
                let addr = self.ptr_access(ptr, mode);
                extra = self.data_write_at(pc0, addr, v)?;
            }
            Ldd { d, ptr, q } => {
                let addr = self.reg16(ptr.lo()).wrapping_add(q as u16);
                let v = self.data_read(addr)?;
                self.set_reg(d, v);
            }
            Std { ptr, q, r } => {
                let v = self.reg(r);
                let addr = self.reg16(ptr.lo()).wrapping_add(q as u16);
                extra = self.data_write_at(pc0, addr, v)?;
            }
            Lds { d, k } => {
                let v = self.data_read(k)?;
                self.set_reg(d, v);
            }
            Sts { k, r } => {
                let v = self.reg(r);
                extra = self.data_write_at(pc0, k, v)?;
            }
            Lpm0 => {
                let v = self.env.flash_byte(self.reg16(Reg::ZL) as u32);
                self.set_reg(Reg::R0, v);
            }
            Lpm { d, inc } => {
                let z = self.reg16(Reg::ZL);
                let v = self.env.flash_byte(z as u32);
                self.set_reg(d, v);
                if inc {
                    self.set_reg16(Reg::ZL, z.wrapping_add(1));
                }
            }
            Elpm0 => {
                let a = ((self.rampz as u32) << 16) | self.reg16(Reg::ZL) as u32;
                let v = self.env.flash_byte(a);
                self.set_reg(Reg::R0, v);
            }
            Elpm { d, inc } => {
                let a = ((self.rampz as u32) << 16) | self.reg16(Reg::ZL) as u32;
                let v = self.env.flash_byte(a);
                self.set_reg(d, v);
                if inc {
                    let a = a.wrapping_add(1);
                    self.rampz = (a >> 16) as u8;
                    self.set_reg16(Reg::ZL, a as u16);
                }
            }
            In { d, a } => {
                let v = self.io_in(a);
                self.set_reg(d, v);
            }
            Out { a, r } => {
                let v = self.reg(r);
                extra = self.io_out(a, v)?;
            }
            Push { r } => {
                let v = self.reg(r);
                extra = self.data_write(self.sp, v)?;
                self.sp = self.sp.wrapping_sub(1);
            }
            Pop { d } => {
                self.sp = self.sp.wrapping_add(1);
                let v = self.data_read(self.sp)?;
                self.set_reg(d, v);
            }

            // ── bit operations ──────────────────────────────────────────
            Bset { s } => self.set_flag(s, true),
            Bclr { s } => self.set_flag(s, false),
            Sbi { a, b } => {
                let v = self.io_in(a) | (1 << b);
                extra = self.io_out(a, v)?;
            }
            Cbi { a, b } => {
                let v = self.io_in(a) & !(1 << b);
                extra = self.io_out(a, v)?;
            }
            Bst { d, b } => {
                let t = self.reg(d) & (1 << b) != 0;
                self.set_flag(flags::T, t);
            }
            Bld { d, b } => {
                let v = if self.flag(flags::T) {
                    self.reg(d) | (1 << b)
                } else {
                    self.reg(d) & !(1 << b)
                };
                self.set_reg(d, v);
            }

            // ── MCU control ─────────────────────────────────────────────
            Nop | Wdr => {}
            Sleep => {
                // Real AVR sleep: idle until an interrupt wakes the core.
                // With interrupts enabled and a scheduled source, fast-
                // forward the clock to the wake-up (accounted as idle
                // cycles); otherwise sleep is terminal.
                match self.env.next_irq_at() {
                    Some(at) if self.flag(flags::I) => {
                        let now = self.cycles + instr.base_cycles() as u64;
                        if at > now {
                            self.idle_cycles += at - now;
                            self.cycles = at - instr.base_cycles() as u64;
                        }
                        // The pending interrupt dispatches on the next
                        // step(); execution resumes after the SLEEP.
                    }
                    _ => step = Step::Sleep,
                }
            }
            Break => step = Step::Break,
        }

        self.cycles += instr.base_cycles() as u64 + extra as u64;
        self.instrs += 1;
        Ok(step)
    }

    #[inline]
    fn mul_commit(&mut self, res: u16) {
        self.set_flag(flags::C, res & 0x8000 != 0);
        self.set_flag(flags::Z, res == 0);
        self.set_reg(Reg::R0, res as u8);
        self.set_reg(Reg::R1, (res >> 8) as u8);
    }

    #[inline]
    fn fmul_commit(&mut self, prod: u16) {
        let res = prod << 1;
        self.set_flag(flags::C, prod & 0x8000 != 0);
        self.set_flag(flags::Z, res == 0);
        self.set_reg(Reg::R0, res as u8);
        self.set_reg(Reg::R1, (res >> 8) as u8);
    }

    fn do_call(
        &mut self,
        kind: CallKind,
        from_pc: WordAddr,
        target: WordAddr,
    ) -> Result<u8, Fault> {
        let ev = CallEvent {
            kind,
            from_pc,
            target,
            ret_addr: self.pc, // already advanced past the call instruction
            sp: self.sp,
        };
        let out = self.env.on_call(ev)?;
        self.sp = self.sp.wrapping_sub(2);
        self.pc = out.target & 0xffff;
        Ok(out.extra_cycles)
    }

    /// Skips the next instruction; returns the extra cycles (its word count).
    fn do_skip(&mut self) -> Result<u8, Fault> {
        let w = self.env.fetch(self.pc)?;
        let len = if isa::is_two_word(w) { 2 } else { 1 };
        self.pc = self.pc.wrapping_add(len);
        Ok(len as u8)
    }

    /// Executes one instruction and records what ran: the pre-execution PC,
    /// the decoded instruction and the cycle counter afterwards. The fetch
    /// for decoding is repeated through the environment, so environment
    /// fetch checks (CFI) behave identically to [`Cpu::step`].
    ///
    /// Intended for interrupt-free analysis: if an interrupt dispatches
    /// inside this step, the recorded PC is the pre-dispatch one.
    ///
    /// # Errors
    ///
    /// As [`Cpu::step`].
    pub fn step_traced(&mut self) -> Result<(Step, TraceEntry), Fault> {
        // Decode first, while the active domain still matches the PC (a
        // protection environment's fetch check is domain-sensitive).
        let pc = self.pc;
        let w0 = self.env.fetch(pc)?;
        let w1 = if isa::is_two_word(w0) { Some(self.env.fetch(pc + 1)?) } else { None };
        let instr = isa::decode(w0, w1).map_err(|_| Fault::IllegalOpcode { pc, word: w0 })?;
        let step = self.step()?;
        Ok((step, TraceEntry { pc, instr, cycles_after: self.cycles }))
    }

    /// Runs up to `max_steps` instructions, appending a [`TraceEntry`] per
    /// retired instruction, until a `BREAK`/`SLEEP` or the step limit.
    ///
    /// # Errors
    ///
    /// As [`Cpu::step`]; entries retired before the fault are kept.
    pub fn run_traced(
        &mut self,
        max_steps: usize,
        trace: &mut Vec<TraceEntry>,
    ) -> Result<Step, Fault> {
        for _ in 0..max_steps {
            let (step, entry) = self.step_traced()?;
            trace.push(entry);
            if step != Step::Continue {
                return Ok(step);
            }
        }
        Ok(Step::Continue)
    }

    /// Runs until a `BREAK` or `SLEEP` retires.
    ///
    /// # Errors
    ///
    /// Any execution [`Fault`], or [`Fault::CycleLimit`] once more than
    /// `max_cycles` have elapsed.
    pub fn run_to_break(&mut self, max_cycles: u64) -> Result<Step, Fault> {
        let limit = self.cycles.saturating_add(max_cycles);
        loop {
            match self.step()? {
                Step::Continue => {}
                s => return Ok(s),
            }
            if self.cycles > limit {
                return Err(Fault::CycleLimit { cycles: self.cycles });
            }
        }
    }

    /// Runs until the PC reaches `stop_pc` (useful for timing code spans).
    ///
    /// # Errors
    ///
    /// Any execution [`Fault`], or [`Fault::CycleLimit`] once more than
    /// `max_cycles` have elapsed. A `BREAK`/`SLEEP` before `stop_pc` also
    /// stops (returning the step kind).
    pub fn run_to_pc(&mut self, stop_pc: WordAddr, max_cycles: u64) -> Result<Step, Fault> {
        let limit = self.cycles.saturating_add(max_cycles);
        while self.pc != stop_pc {
            match self.step()? {
                Step::Continue => {}
                s => return Ok(s),
            }
            if self.cycles > limit {
                return Err(Fault::CycleLimit { cycles: self.cycles });
            }
        }
        Ok(Step::Continue)
    }
}
