//! Cycle-accurate simulator for an ATmega103-class 8-bit AVR microcontroller.
//!
//! This crate is the hardware substrate for the Harbor / UMPU memory-protection
//! reproduction (DAC 2007). It models:
//!
//! * the classic AVR instruction set with **real opcode encodings**
//!   ([`Instr`], [`isa::decode`], [`isa::encode`]), so binary
//!   rewriting tools operate on genuine machine code;
//! * **datasheet cycle counts** for every instruction, so measured overheads
//!   are directly comparable to the paper's ModelSim numbers;
//! * an ATmega103-like memory system: 128 KiB flash, 64 I/O ports and 4000 B
//!   of internal SRAM in a single data address space ([`mem`]);
//! * a pluggable [`Env`] trait through which a host environment
//!   observes and arbitrates stores, call/return micro-operations and
//!   instruction fetches — precisely the attachment points used by the UMPU
//!   hardware extensions (memory-map checker, safe-stack unit, domain
//!   tracker, fetch-decoder extension).
//!
//! The CPU itself is protection-agnostic: all Harbor/UMPU semantics live in
//! the `umpu` crate's [`Env`] implementation.
//!
//! # Example
//!
//! Assemble-by-hand a three-instruction program and run it:
//!
//! ```
//! use avr_core::{exec::Cpu, isa::{Instr, Reg}, mem::PlainEnv};
//!
//! # fn main() -> Result<(), avr_core::Fault> {
//! let mut env = PlainEnv::new();
//! // ldi r16, 42 ; sts 0x0100, r16 ; break
//! env.load_program(0, &[
//!     Instr::Ldi { d: Reg::R16, k: 42 },
//!     Instr::Sts { k: 0x0100, r: Reg::R16 },
//!     Instr::Break,
//! ]);
//! let mut cpu = Cpu::new(env);
//! cpu.run_to_break(1_000)?;
//! assert_eq!(cpu.env.sram_byte(0x0100), 42);
//! assert_eq!(cpu.cycles(), 1 + 2 + 1); // ldi: 1, sts: 2, break: 1
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod exec;
pub mod isa;
pub mod mem;

pub use exec::{Cpu, Env};
pub use isa::{Instr, Reg};

use std::fmt;

/// Word (16-bit) program-counter address into flash.
pub type WordAddr = u32;

/// Reason the simulated processor stopped or trapped.
///
/// Protection-specific causes raised by an [`Env`] implementation
/// are carried as an [`EnvFault`] so this crate stays independent of the
/// protection model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The fetched word (plus optional second word) is not a valid opcode.
    IllegalOpcode {
        /// Word address of the offending instruction.
        pc: WordAddr,
        /// The raw 16-bit word that failed to decode.
        word: u16,
    },
    /// A data-space access fell outside the implemented address space.
    BadDataAddress {
        /// The offending byte address.
        addr: u16,
    },
    /// The program counter left the implemented flash.
    BadProgramAddress {
        /// The offending word address.
        pc: WordAddr,
    },
    /// The cycle budget given to a `run_*` helper was exhausted.
    CycleLimit {
        /// Cycle count at which execution was abandoned.
        cycles: u64,
    },
    /// A fault raised by the execution environment (e.g. a UMPU protection
    /// violation). See [`EnvFault`].
    Env(EnvFault),
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::IllegalOpcode { pc, word } => {
                write!(f, "illegal opcode {word:#06x} at word address {pc:#06x}")
            }
            Fault::BadDataAddress { addr } => {
                write!(f, "data access outside implemented memory at {addr:#06x}")
            }
            Fault::BadProgramAddress { pc } => {
                write!(f, "program counter left flash at word address {pc:#06x}")
            }
            Fault::CycleLimit { cycles } => {
                write!(f, "cycle budget exhausted after {cycles} cycles")
            }
            Fault::Env(e) => write!(f, "environment fault: {e}"),
        }
    }
}

impl std::error::Error for Fault {}

impl From<EnvFault> for Fault {
    fn from(e: EnvFault) -> Self {
        Fault::Env(e)
    }
}

/// Compact description of a fault raised by the execution environment.
///
/// The numeric `code` namespace belongs to the environment; the `umpu` crate
/// maps its protection faults onto codes and keeps richer diagnostics on the
/// side. `addr` and `info` carry the two most useful 16-bit operands (for a
/// store violation: the write address and the active domain id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EnvFault {
    /// Environment-defined fault code.
    pub code: u16,
    /// Primary operand (typically the offending address).
    pub addr: u16,
    /// Secondary operand (typically the active domain or a bound).
    pub info: u16,
}

impl fmt::Display for EnvFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "code {} (addr {:#06x}, info {:#06x})", self.code, self.addr, self.info)
    }
}
