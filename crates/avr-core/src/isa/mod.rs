//! The AVR instruction set: operand types, the [`Instr`] enum, real opcode
//! encodings and datasheet cycle counts.
//!
//! The instruction inventory is the classic megaAVR set implemented by the
//! ATmega103 plus the enhanced-core `MOVW`/`MUL` family (useful for
//! hand-written runtime routines; the decoder accepts them and the assembler
//! can be told to reject them for strict ATmega103 builds).
//!
//! Aliases that share an encoding with a canonical instruction (`LSL d` =
//! `ADD d,d`, `TST d` = `AND d,d`, `CLR d` = `EOR d,d`, `ROL d` = `ADC d,d`,
//! `SER d` = `LDI d,0xFF`, `SEC` = `BSET 0`, `BREQ k` = `BRBS 1,k`, …) decode
//! to the canonical form; the assembler provides the alias mnemonics.

//! # Example
//!
//! ```
//! use avr_core::isa::{decode, encode, Instr, Reg};
//!
//! let instr = Instr::Ldi { d: Reg::R16, k: 42 };
//! let words = encode(instr).unwrap();
//! assert_eq!(words.word0(), 0xe20a);
//! assert_eq!(decode(words.word0(), None).unwrap(), instr);
//! ```

mod decode;
mod display;
mod encode;

pub use decode::{decode, is_two_word, DecodeError};
pub use encode::{encode, EncodeError, Encoded};

use std::fmt;

/// One of the 32 general-purpose registers `r0`–`r31`.
///
/// The upper half (`r16`–`r31`) is addressable by immediate instructions;
/// constructors for immediate forms validate this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

#[allow(missing_docs)]
impl Reg {
    pub const R0: Reg = Reg(0);
    pub const R1: Reg = Reg(1);
    pub const R2: Reg = Reg(2);
    pub const R3: Reg = Reg(3);
    pub const R4: Reg = Reg(4);
    pub const R5: Reg = Reg(5);
    pub const R6: Reg = Reg(6);
    pub const R7: Reg = Reg(7);
    pub const R8: Reg = Reg(8);
    pub const R9: Reg = Reg(9);
    pub const R10: Reg = Reg(10);
    pub const R11: Reg = Reg(11);
    pub const R12: Reg = Reg(12);
    pub const R13: Reg = Reg(13);
    pub const R14: Reg = Reg(14);
    pub const R15: Reg = Reg(15);
    pub const R16: Reg = Reg(16);
    pub const R17: Reg = Reg(17);
    pub const R18: Reg = Reg(18);
    pub const R19: Reg = Reg(19);
    pub const R20: Reg = Reg(20);
    pub const R21: Reg = Reg(21);
    pub const R22: Reg = Reg(22);
    pub const R23: Reg = Reg(23);
    pub const R24: Reg = Reg(24);
    pub const R25: Reg = Reg(25);
    pub const R26: Reg = Reg(26);
    pub const R27: Reg = Reg(27);
    pub const R28: Reg = Reg(28);
    pub const R29: Reg = Reg(29);
    pub const R30: Reg = Reg(30);
    pub const R31: Reg = Reg(31);

    /// Low byte of the X pointer (`r26`).
    pub const XL: Reg = Reg(26);
    /// High byte of the X pointer (`r27`).
    pub const XH: Reg = Reg(27);
    /// Low byte of the Y pointer (`r28`).
    pub const YL: Reg = Reg(28);
    /// High byte of the Y pointer (`r29`).
    pub const YH: Reg = Reg(29);
    /// Low byte of the Z pointer (`r30`).
    pub const ZL: Reg = Reg(30);
    /// High byte of the Z pointer (`r31`).
    pub const ZH: Reg = Reg(31);
}

impl Reg {
    /// Creates a register from its number.
    ///
    /// Returns `None` if `n > 31`.
    pub const fn new(n: u8) -> Option<Reg> {
        if n <= 31 {
            Some(Reg(n))
        } else {
            None
        }
    }

    /// Creates a register from its number without bounds checking the value.
    ///
    /// # Panics
    ///
    /// Panics if `n > 31`.
    pub const fn num(n: u8) -> Reg {
        match Reg::new(n) {
            Some(r) => r,
            None => panic!("register number out of range"),
        }
    }

    /// The register number, `0..=31`.
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Whether this register can appear in an immediate-operand instruction
    /// (`LDI`, `SUBI`, …), i.e. it is one of `r16`–`r31`.
    pub const fn is_high(self) -> bool {
        self.0 >= 16
    }

    /// Iterates over all 32 registers in order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One of the three 16-bit pointer register pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ptr {
    /// `X` = `r27:r26`.
    X,
    /// `Y` = `r29:r28`.
    Y,
    /// `Z` = `r31:r30`.
    Z,
}

impl Ptr {
    /// The register holding the low byte of the pointer.
    pub const fn lo(self) -> Reg {
        match self {
            Ptr::X => Reg::XL,
            Ptr::Y => Reg::YL,
            Ptr::Z => Reg::ZL,
        }
    }

    /// The register holding the high byte of the pointer.
    pub const fn hi(self) -> Reg {
        match self {
            Ptr::X => Reg::XH,
            Ptr::Y => Reg::YH,
            Ptr::Z => Reg::ZH,
        }
    }
}

impl fmt::Display for Ptr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Ptr::X => "X",
            Ptr::Y => "Y",
            Ptr::Z => "Z",
        })
    }
}

/// Addressing mode of an indirect load/store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PtrMode {
    /// `LD Rd, X` — use the pointer unchanged.
    Plain,
    /// `LD Rd, X+` — use the pointer, then increment it.
    PostInc,
    /// `LD Rd, -X` — decrement the pointer, then use it.
    PreDec,
}

/// Register pairs usable by `ADIW`/`SBIW` (`r25:r24`, `X`, `Y`, `Z`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IwPair {
    /// `r25:r24`.
    W,
    /// `X` = `r27:r26`.
    X,
    /// `Y` = `r29:r28`.
    Y,
    /// `Z` = `r31:r30`.
    Z,
}

impl IwPair {
    /// Register holding the low byte of the pair.
    pub const fn lo(self) -> Reg {
        match self {
            IwPair::W => Reg::R24,
            IwPair::X => Reg::XL,
            IwPair::Y => Reg::YL,
            IwPair::Z => Reg::ZL,
        }
    }

    /// Register holding the high byte of the pair.
    pub const fn hi(self) -> Reg {
        match self {
            IwPair::W => Reg::R25,
            IwPair::X => Reg::XH,
            IwPair::Y => Reg::YH,
            IwPair::Z => Reg::ZH,
        }
    }

    const fn code(self) -> u16 {
        match self {
            IwPair::W => 0,
            IwPair::X => 1,
            IwPair::Y => 2,
            IwPair::Z => 3,
        }
    }

    const fn from_code(c: u16) -> IwPair {
        match c & 3 {
            0 => IwPair::W,
            1 => IwPair::X,
            2 => IwPair::Y,
            _ => IwPair::Z,
        }
    }
}

impl fmt::Display for IwPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IwPair::W => "r25:r24",
            IwPair::X => "X",
            IwPair::Y => "Y",
            IwPair::Z => "Z",
        })
    }
}

/// A decoded AVR instruction.
///
/// Field conventions follow the instruction-set manual: `d` is the
/// destination register, `r` the source register, `k` an immediate or
/// address, `a` an I/O port, `b` a bit number, `s` an SREG flag number and
/// `q` a displacement.
///
/// Offsets of relative jumps/branches (`Rjmp`, `Rcall`, `Brbs`, `Brbc`) are
/// in **words relative to the following instruction**, as in the manual.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // field meanings are given by the conventions above
pub enum Instr {
    // ── two-register ALU ────────────────────────────────────────────────
    Add {
        d: Reg,
        r: Reg,
    },
    Adc {
        d: Reg,
        r: Reg,
    },
    Sub {
        d: Reg,
        r: Reg,
    },
    Sbc {
        d: Reg,
        r: Reg,
    },
    And {
        d: Reg,
        r: Reg,
    },
    Or {
        d: Reg,
        r: Reg,
    },
    Eor {
        d: Reg,
        r: Reg,
    },
    Mov {
        d: Reg,
        r: Reg,
    },
    Cp {
        d: Reg,
        r: Reg,
    },
    Cpc {
        d: Reg,
        r: Reg,
    },
    Cpse {
        d: Reg,
        r: Reg,
    },
    Mul {
        d: Reg,
        r: Reg,
    },
    /// `MULS Rd,Rr` — both registers in `r16..=r31`.
    Muls {
        d: Reg,
        r: Reg,
    },
    /// `MULSU Rd,Rr` — both registers in `r16..=r23`.
    Mulsu {
        d: Reg,
        r: Reg,
    },
    Fmul {
        d: Reg,
        r: Reg,
    },
    Fmuls {
        d: Reg,
        r: Reg,
    },
    Fmulsu {
        d: Reg,
        r: Reg,
    },
    /// `MOVW Rd+1:Rd, Rr+1:Rr` — `d` and `r` are the even low registers.
    Movw {
        d: Reg,
        r: Reg,
    },

    // ── register-immediate ALU (d in r16..=r31) ─────────────────────────
    Subi {
        d: Reg,
        k: u8,
    },
    Sbci {
        d: Reg,
        k: u8,
    },
    Andi {
        d: Reg,
        k: u8,
    },
    Ori {
        d: Reg,
        k: u8,
    },
    Cpi {
        d: Reg,
        k: u8,
    },
    Ldi {
        d: Reg,
        k: u8,
    },

    /// `ADIW p,k` — add immediate (`0..=63`) to word pair.
    Adiw {
        p: IwPair,
        k: u8,
    },
    /// `SBIW p,k` — subtract immediate (`0..=63`) from word pair.
    Sbiw {
        p: IwPair,
        k: u8,
    },

    // ── single-register ALU ─────────────────────────────────────────────
    Com {
        d: Reg,
    },
    Neg {
        d: Reg,
    },
    Swap {
        d: Reg,
    },
    Inc {
        d: Reg,
    },
    Asr {
        d: Reg,
    },
    Lsr {
        d: Reg,
    },
    Ror {
        d: Reg,
    },
    Dec {
        d: Reg,
    },

    // ── control flow ────────────────────────────────────────────────────
    /// Relative jump, offset in words (−2048..=2047).
    Rjmp {
        k: i16,
    },
    /// Relative call, offset in words (−2048..=2047).
    Rcall {
        k: i16,
    },
    /// Absolute jump to word address `k`.
    Jmp {
        k: u32,
    },
    /// Absolute call to word address `k`.
    Call {
        k: u32,
    },
    /// Indirect jump to the word address in `Z`.
    Ijmp,
    /// Indirect call to the word address in `Z`.
    Icall,
    Ret,
    Reti,
    /// Branch (offset −64..=63 words) if SREG flag `s` is set.
    Brbs {
        s: u8,
        k: i8,
    },
    /// Branch (offset −64..=63 words) if SREG flag `s` is clear.
    Brbc {
        s: u8,
        k: i8,
    },
    /// Skip next instruction if bit `b` of `Rr` is clear.
    Sbrc {
        r: Reg,
        b: u8,
    },
    /// Skip next instruction if bit `b` of `Rr` is set.
    Sbrs {
        r: Reg,
        b: u8,
    },
    /// Skip next instruction if bit `b` of I/O port `a` (`0..=31`) is clear.
    Sbic {
        a: u8,
        b: u8,
    },
    /// Skip next instruction if bit `b` of I/O port `a` (`0..=31`) is set.
    Sbis {
        a: u8,
        b: u8,
    },

    // ── data transfer ───────────────────────────────────────────────────
    /// Indirect load `LD Rd, {X,Y,Z}[+/-]`.
    Ld {
        d: Reg,
        ptr: Ptr,
        mode: PtrMode,
    },
    /// Indirect store `ST {X,Y,Z}[+/-], Rr`.
    St {
        ptr: Ptr,
        mode: PtrMode,
        r: Reg,
    },
    /// Load with displacement `LDD Rd, Y/Z+q` (`q` in `0..=63`, Y or Z only).
    Ldd {
        d: Reg,
        ptr: Ptr,
        q: u8,
    },
    /// Store with displacement `STD Y/Z+q, Rr` (`q` in `0..=63`, Y or Z only).
    Std {
        ptr: Ptr,
        q: u8,
        r: Reg,
    },
    /// Direct load from data address `k`.
    Lds {
        d: Reg,
        k: u16,
    },
    /// Direct store to data address `k`.
    Sts {
        k: u16,
        r: Reg,
    },
    /// `LPM` — load `r0` from flash byte address in `Z`.
    Lpm0,
    /// `LPM Rd, Z[+]`.
    Lpm {
        d: Reg,
        inc: bool,
    },
    /// `ELPM` — load `r0` from flash byte address `RAMPZ:Z`.
    Elpm0,
    /// `ELPM Rd, Z[+]`.
    Elpm {
        d: Reg,
        inc: bool,
    },
    /// `IN Rd, A` — read I/O port `a` (`0..=63`).
    In {
        d: Reg,
        a: u8,
    },
    /// `OUT A, Rr` — write I/O port `a` (`0..=63`).
    Out {
        a: u8,
        r: Reg,
    },
    Push {
        r: Reg,
    },
    Pop {
        d: Reg,
    },

    // ── bit and bit-test ────────────────────────────────────────────────
    /// Set SREG flag `s` (`0..=7`). `SEC`/`SEZ`/…/`SEI` are aliases.
    Bset {
        s: u8,
    },
    /// Clear SREG flag `s` (`0..=7`). `CLC`/`CLZ`/…/`CLI` are aliases.
    Bclr {
        s: u8,
    },
    /// Set bit `b` of I/O port `a` (`0..=31`).
    Sbi {
        a: u8,
        b: u8,
    },
    /// Clear bit `b` of I/O port `a` (`0..=31`).
    Cbi {
        a: u8,
        b: u8,
    },
    /// Store bit `b` of `Rd` into SREG `T`.
    Bst {
        d: Reg,
        b: u8,
    },
    /// Load bit `b` of `Rd` from SREG `T`.
    Bld {
        d: Reg,
        b: u8,
    },

    // ── MCU control ─────────────────────────────────────────────────────
    Nop,
    Sleep,
    Wdr,
    Break,
}

impl Instr {
    /// Size of the instruction in 16-bit flash words (1 or 2).
    pub const fn words(self) -> u32 {
        match self {
            Instr::Jmp { .. } | Instr::Call { .. } | Instr::Lds { .. } | Instr::Sts { .. } => 2,
            _ => 1,
        }
    }

    /// Base execution time in CPU cycles, per the megaAVR data sheet
    /// (16-bit-PC devices such as the ATmega103).
    ///
    /// Conditional extra cycles are *not* included:
    /// taken branches add 1; a taken skip (`CPSE`/`SBRC`/`SBRS`/`SBIC`/
    /// `SBIS`) adds the word count of the skipped instruction.
    pub const fn base_cycles(self) -> u8 {
        use Instr::*;
        match self {
            Adiw { .. } | Sbiw { .. } => 2,
            Mul { .. }
            | Muls { .. }
            | Mulsu { .. }
            | Fmul { .. }
            | Fmuls { .. }
            | Fmulsu { .. } => 2,
            Rjmp { .. } | Ijmp => 2,
            Rcall { .. } | Icall => 3,
            Jmp { .. } => 3,
            Call { .. } => 4,
            Ret | Reti => 4,
            Ld { .. } | St { .. } | Ldd { .. } | Std { .. } | Lds { .. } | Sts { .. } => 2,
            Push { .. } | Pop { .. } => 2,
            Lpm0 | Lpm { .. } | Elpm0 | Elpm { .. } => 3,
            Sbi { .. } | Cbi { .. } => 2,
            _ => 1,
        }
    }

    /// Whether this instruction writes data memory through a computed or
    /// direct address (the instruction class the Harbor rewriter must
    /// sandbox). `PUSH` is excluded: it writes through SP, which is protected
    /// by the stack bound, not the memory map.
    pub const fn is_store(self) -> bool {
        matches!(self, Instr::St { .. } | Instr::Std { .. } | Instr::Sts { .. })
    }

    /// Whether this instruction can transfer control to a computed address
    /// (the class requiring a control-flow check under SFI).
    pub const fn is_computed_transfer(self) -> bool {
        matches!(self, Instr::Ijmp | Instr::Icall)
    }
}

/// SREG flag bit numbers, for use with [`Instr::Bset`], [`Instr::Brbs`], etc.
pub mod flags {
    /// Carry.
    pub const C: u8 = 0;
    /// Zero.
    pub const Z: u8 = 1;
    /// Negative.
    pub const N: u8 = 2;
    /// Two's-complement overflow.
    pub const V: u8 = 3;
    /// Sign (`N ^ V`).
    pub const S: u8 = 4;
    /// Half-carry.
    pub const H: u8 = 5;
    /// Bit-transfer.
    pub const T: u8 = 6;
    /// Global interrupt enable.
    pub const I: u8 = 7;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_constructors_and_bounds() {
        assert_eq!(Reg::new(0), Some(Reg::R0));
        assert_eq!(Reg::new(31), Some(Reg::R31));
        assert_eq!(Reg::new(32), None);
        assert_eq!(Reg::num(17).index(), 17);
        assert!(Reg::R16.is_high());
        assert!(!Reg::R15.is_high());
        assert_eq!(Reg::all().count(), 32);
    }

    #[test]
    fn pointer_pairs() {
        assert_eq!(Ptr::X.lo(), Reg::R26);
        assert_eq!(Ptr::X.hi(), Reg::R27);
        assert_eq!(Ptr::Y.lo(), Reg::R28);
        assert_eq!(Ptr::Z.hi(), Reg::R31);
        assert_eq!(IwPair::W.lo(), Reg::R24);
        assert_eq!(IwPair::Z.hi(), Reg::R31);
        for c in 0..4u16 {
            assert_eq!(IwPair::from_code(c).code(), c);
        }
    }

    #[test]
    fn word_sizes() {
        assert_eq!(Instr::Nop.words(), 1);
        assert_eq!(Instr::Jmp { k: 0x100 }.words(), 2);
        assert_eq!(Instr::Call { k: 0x100 }.words(), 2);
        assert_eq!(Instr::Lds { d: Reg::R0, k: 0x60 }.words(), 2);
        assert_eq!(Instr::Sts { k: 0x60, r: Reg::R0 }.words(), 2);
        assert_eq!(Instr::Rjmp { k: -1 }.words(), 1);
    }

    #[test]
    fn datasheet_cycle_counts() {
        assert_eq!(Instr::Add { d: Reg::R0, r: Reg::R1 }.base_cycles(), 1);
        assert_eq!(Instr::Adiw { p: IwPair::W, k: 1 }.base_cycles(), 2);
        assert_eq!(Instr::Rjmp { k: 0 }.base_cycles(), 2);
        assert_eq!(Instr::Jmp { k: 0 }.base_cycles(), 3);
        assert_eq!(Instr::Call { k: 0 }.base_cycles(), 4);
        assert_eq!(Instr::Rcall { k: 0 }.base_cycles(), 3);
        assert_eq!(Instr::Icall.base_cycles(), 3);
        assert_eq!(Instr::Ret.base_cycles(), 4);
        assert_eq!(Instr::St { ptr: Ptr::X, mode: PtrMode::Plain, r: Reg::R0 }.base_cycles(), 2);
        assert_eq!(Instr::Push { r: Reg::R0 }.base_cycles(), 2);
        assert_eq!(Instr::Lpm0.base_cycles(), 3);
        assert_eq!(Instr::Sbi { a: 0, b: 0 }.base_cycles(), 2);
    }

    #[test]
    fn store_classification() {
        assert!(Instr::St { ptr: Ptr::X, mode: PtrMode::PostInc, r: Reg::R1 }.is_store());
        assert!(Instr::Std { ptr: Ptr::Y, q: 3, r: Reg::R1 }.is_store());
        assert!(Instr::Sts { k: 0x100, r: Reg::R1 }.is_store());
        assert!(!Instr::Push { r: Reg::R1 }.is_store());
        assert!(!Instr::Ld { d: Reg::R1, ptr: Ptr::X, mode: PtrMode::Plain }.is_store());
        assert!(Instr::Ijmp.is_computed_transfer());
        assert!(Instr::Icall.is_computed_transfer());
        assert!(!Instr::Ret.is_computed_transfer());
    }
}
