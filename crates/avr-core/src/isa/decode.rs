//! Machine-code → instruction decoding (the inverse of [`encode`]).
//!
//! [`encode`]: super::encode

use super::{Instr, IwPair, Ptr, PtrMode, Reg};
use std::fmt;

/// A word failed to decode into an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The word is not a (supported) AVR opcode. `EIJMP`/`EICALL`/`SPM` are
    /// deliberately unsupported on this ATmega103-class model and decode to
    /// this error.
    Illegal(u16),
    /// The first word begins a two-word instruction (`JMP`, `CALL`, `LDS`,
    /// `STS`) but no second word was supplied.
    MissingSecondWord(u16),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Illegal(w) => write!(f, "illegal opcode word {w:#06x}"),
            DecodeError::MissingSecondWord(w) => {
                write!(f, "opcode word {w:#06x} needs a second word")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Whether an opcode's first word implies a two-word instruction, without
/// fully decoding it. Useful for walking raw flash.
pub fn is_two_word(w0: u16) -> bool {
    // JMP/CALL: 1001 010x xxxx 11xx ; LDS: 1001 000d dddd 0000 ;
    // STS: 1001 001d dddd 0000.
    (w0 & 0xfe0c) == 0x940c || (w0 & 0xfe0f) == 0x9000 || (w0 & 0xfe0f) == 0x9200
}

fn d5(w: u16) -> Reg {
    Reg::num(((w >> 4) & 0x1f) as u8)
}

fn r5(w: u16) -> Reg {
    Reg::num((((w >> 5) & 0x10) | (w & 0x0f)) as u8)
}

fn d4h(w: u16) -> Reg {
    Reg::num(16 + ((w >> 4) & 0x0f) as u8)
}

fn k8(w: u16) -> u8 {
    (((w >> 4) & 0xf0) | (w & 0x0f)) as u8
}

fn sext(v: u16, bits: u32) -> i16 {
    let shift = 16 - bits;
    ((v << shift) as i16) >> shift
}

fn need(w0: u16, w1: Option<u16>) -> Result<u16, DecodeError> {
    w1.ok_or(DecodeError::MissingSecondWord(w0))
}

/// Decodes one instruction from its first word `w0`, consulting `w1` for
/// two-word instructions.
///
/// Encoding aliases decode to their canonical instruction: `LSL d` comes back
/// as `ADD d,d`, `LD Rd,Y` (which shares the `LDD Rd,Y+0` encoding) comes
/// back as [`Instr::Ld`] with [`PtrMode::Plain`], and so on.
///
/// # Errors
///
/// [`DecodeError::Illegal`] for reserved or unsupported opcodes,
/// [`DecodeError::MissingSecondWord`] if `w0` begins a `JMP`/`CALL`/`LDS`/
/// `STS` and `w1` is `None`.
pub fn decode(w0: u16, w1: Option<u16>) -> Result<Instr, DecodeError> {
    use Instr::*;
    let ill = Err(DecodeError::Illegal(w0));

    match w0 >> 12 {
        0x0 => match (w0 >> 8) & 0x0f {
            0x0 => {
                if w0 == 0 {
                    Ok(Nop)
                } else {
                    ill
                }
            }
            0x1 => Ok(Movw {
                d: Reg::num((((w0 >> 4) & 0x0f) * 2) as u8),
                r: Reg::num(((w0 & 0x0f) * 2) as u8),
            }),
            0x2 => Ok(Muls { d: d4h(w0), r: Reg::num(16 + (w0 & 0x0f) as u8) }),
            0x3 => {
                let d = Reg::num(16 + ((w0 >> 4) & 0x07) as u8);
                let r = Reg::num(16 + (w0 & 0x07) as u8);
                match ((w0 >> 7) & 1, (w0 >> 3) & 1) {
                    (0, 0) => Ok(Mulsu { d, r }),
                    (0, 1) => Ok(Fmul { d, r }),
                    (1, 0) => Ok(Fmuls { d, r }),
                    _ => Ok(Fmulsu { d, r }),
                }
            }
            _ => match w0 >> 10 {
                0b000001 => Ok(Cpc { d: d5(w0), r: r5(w0) }),
                0b000010 => Ok(Sbc { d: d5(w0), r: r5(w0) }),
                0b000011 => Ok(Add { d: d5(w0), r: r5(w0) }),
                _ => ill,
            },
        },
        0x1 => match w0 >> 10 {
            0b000100 => Ok(Cpse { d: d5(w0), r: r5(w0) }),
            0b000101 => Ok(Cp { d: d5(w0), r: r5(w0) }),
            0b000110 => Ok(Sub { d: d5(w0), r: r5(w0) }),
            _ => Ok(Adc { d: d5(w0), r: r5(w0) }),
        },
        0x2 => match w0 >> 10 {
            0b001000 => Ok(And { d: d5(w0), r: r5(w0) }),
            0b001001 => Ok(Eor { d: d5(w0), r: r5(w0) }),
            0b001010 => Ok(Or { d: d5(w0), r: r5(w0) }),
            _ => Ok(Mov { d: d5(w0), r: r5(w0) }),
        },
        0x3 => Ok(Cpi { d: d4h(w0), k: k8(w0) }),
        0x4 => Ok(Sbci { d: d4h(w0), k: k8(w0) }),
        0x5 => Ok(Subi { d: d4h(w0), k: k8(w0) }),
        0x6 => Ok(Ori { d: d4h(w0), k: k8(w0) }),
        0x7 => Ok(Andi { d: d4h(w0), k: k8(w0) }),
        0x8 | 0xa => {
            // LDD/STD space: 10q0 qqsd dddd yqqq (s = store, y = Y pointer)
            let q = (((w0 >> 13) & 1) << 5 | ((w0 >> 10) & 3) << 3 | (w0 & 7)) as u8;
            let reg = d5(w0);
            let ptr = if w0 & 0x0008 != 0 { Ptr::Y } else { Ptr::Z };
            let store = w0 & 0x0200 != 0;
            Ok(match (store, q) {
                (false, 0) => Ld { d: reg, ptr, mode: PtrMode::Plain },
                (true, 0) => St { ptr, mode: PtrMode::Plain, r: reg },
                (false, q) => Ldd { d: reg, ptr, q },
                (true, q) => Std { ptr, q, r: reg },
            })
        }
        0x9 => decode_9xxx(w0, w1),
        0xb => {
            let a = (((w0 >> 5) & 0x30) | (w0 & 0x0f)) as u8;
            if w0 & 0x0800 == 0 {
                Ok(In { d: d5(w0), a })
            } else {
                Ok(Out { a, r: d5(w0) })
            }
        }
        0xc => Ok(Rjmp { k: sext(w0 & 0x0fff, 12) }),
        0xd => Ok(Rcall { k: sext(w0 & 0x0fff, 12) }),
        0xe => Ok(Ldi { d: d4h(w0), k: k8(w0) }),
        0xf => {
            let b = (w0 & 7) as u8;
            match (w0 >> 9) & 7 {
                0 | 1 => Ok(Brbs { s: b, k: sext((w0 >> 3) & 0x7f, 7) as i8 }),
                2 | 3 => Ok(Brbc { s: b, k: sext((w0 >> 3) & 0x7f, 7) as i8 }),
                4 if w0 & 8 == 0 => Ok(Bld { d: d5(w0), b }),
                5 if w0 & 8 == 0 => Ok(Bst { d: d5(w0), b }),
                6 if w0 & 8 == 0 => Ok(Sbrc { r: d5(w0), b }),
                7 if w0 & 8 == 0 => Ok(Sbrs { r: d5(w0), b }),
                _ => ill,
            }
        }
        _ => ill,
    }
}

fn decode_9xxx(w0: u16, w1: Option<u16>) -> Result<Instr, DecodeError> {
    use Instr::*;
    let ill = Err(DecodeError::Illegal(w0));
    match (w0 >> 8) & 0x0f {
        0x0 | 0x1 => {
            // loads / LPM / POP
            let d = d5(w0);
            match w0 & 0x0f {
                0x0 => Ok(Lds { d, k: need(w0, w1)? }),
                0x1 => Ok(Ld { d, ptr: Ptr::Z, mode: PtrMode::PostInc }),
                0x2 => Ok(Ld { d, ptr: Ptr::Z, mode: PtrMode::PreDec }),
                0x4 => Ok(Lpm { d, inc: false }),
                0x5 => Ok(Lpm { d, inc: true }),
                0x6 => Ok(Elpm { d, inc: false }),
                0x7 => Ok(Elpm { d, inc: true }),
                0x9 => Ok(Ld { d, ptr: Ptr::Y, mode: PtrMode::PostInc }),
                0xa => Ok(Ld { d, ptr: Ptr::Y, mode: PtrMode::PreDec }),
                0xc => Ok(Ld { d, ptr: Ptr::X, mode: PtrMode::Plain }),
                0xd => Ok(Ld { d, ptr: Ptr::X, mode: PtrMode::PostInc }),
                0xe => Ok(Ld { d, ptr: Ptr::X, mode: PtrMode::PreDec }),
                0xf => Ok(Pop { d }),
                _ => ill,
            }
        }
        0x2 | 0x3 => {
            // stores / PUSH
            let r = d5(w0);
            match w0 & 0x0f {
                0x0 => Ok(Sts { k: need(w0, w1)?, r }),
                0x1 => Ok(St { ptr: Ptr::Z, mode: PtrMode::PostInc, r }),
                0x2 => Ok(St { ptr: Ptr::Z, mode: PtrMode::PreDec, r }),
                0x9 => Ok(St { ptr: Ptr::Y, mode: PtrMode::PostInc, r }),
                0xa => Ok(St { ptr: Ptr::Y, mode: PtrMode::PreDec, r }),
                0xc => Ok(St { ptr: Ptr::X, mode: PtrMode::Plain, r }),
                0xd => Ok(St { ptr: Ptr::X, mode: PtrMode::PostInc, r }),
                0xe => Ok(St { ptr: Ptr::X, mode: PtrMode::PreDec, r }),
                0xf => Ok(Push { r }),
                _ => ill,
            }
        }
        0x4 | 0x5 => {
            // one-operand ALU, flag ops, zero-operand ops, JMP/CALL
            match w0 & 0x0f {
                0x0 => Ok(Com { d: d5(w0) }),
                0x1 => Ok(Neg { d: d5(w0) }),
                0x2 => Ok(Swap { d: d5(w0) }),
                0x3 => Ok(Inc { d: d5(w0) }),
                0x5 => Ok(Asr { d: d5(w0) }),
                0x6 => Ok(Lsr { d: d5(w0) }),
                0x7 => Ok(Ror { d: d5(w0) }),
                0xa => Ok(Dec { d: d5(w0) }),
                0x8 => match w0 {
                    0x9508 => Ok(Ret),
                    0x9518 => Ok(Reti),
                    0x9588 => Ok(Sleep),
                    0x9598 => Ok(Break),
                    0x95a8 => Ok(Wdr),
                    0x95c8 => Ok(Lpm0),
                    0x95d8 => Ok(Elpm0),
                    w if w & 0xff8f == 0x9408 => Ok(Bset { s: ((w >> 4) & 7) as u8 }),
                    w if w & 0xff8f == 0x9488 => Ok(Bclr { s: ((w >> 4) & 7) as u8 }),
                    _ => ill,
                },
                0x9 => match w0 {
                    0x9409 => Ok(Ijmp),
                    0x9509 => Ok(Icall),
                    _ => ill, // EIJMP/EICALL unsupported
                },
                0xc..=0xf => {
                    let hi = ((((w0 >> 4) & 0x1f) << 1) | (w0 & 1)) as u32;
                    let k = (hi << 16) | need(w0, w1)? as u32;
                    if w0 & 0x0002 == 0 {
                        Ok(Jmp { k })
                    } else {
                        Ok(Call { k })
                    }
                }
                _ => ill,
            }
        }
        0x6 => Ok(Adiw { p: IwPair::from_code((w0 >> 4) & 3), k: iw_k(w0) }),
        0x7 => Ok(Sbiw { p: IwPair::from_code((w0 >> 4) & 3), k: iw_k(w0) }),
        0x8 => Ok(Cbi { a: io5(w0), b: (w0 & 7) as u8 }),
        0x9 => Ok(Sbic { a: io5(w0), b: (w0 & 7) as u8 }),
        0xa => Ok(Sbi { a: io5(w0), b: (w0 & 7) as u8 }),
        0xb => Ok(Sbis { a: io5(w0), b: (w0 & 7) as u8 }),
        _ => Ok(Mul { d: d5(w0), r: r5(w0) }),
    }
}

fn iw_k(w0: u16) -> u8 {
    (((w0 >> 2) & 0x30) | (w0 & 0x0f)) as u8
}

fn io5(w0: u16) -> u8 {
    ((w0 >> 3) & 0x1f) as u8
}

#[cfg(test)]
mod tests {
    use super::super::encode;
    use super::*;

    #[test]
    fn decode_known_words() {
        assert_eq!(decode(0x0000, None), Ok(Instr::Nop));
        assert_eq!(decode(0x9508, None), Ok(Instr::Ret));
        assert_eq!(decode(0x9409, None), Ok(Instr::Ijmp));
        assert_eq!(
            decode(0xcfff, None),
            Ok(Instr::Rjmp { k: -1 }),
            "rjmp .-2 decodes to offset -1"
        );
        assert_eq!(decode(0x940c, Some(0x1234)), Ok(Instr::Jmp { k: 0x1234 }));
        assert_eq!(
            decode(0x2700, None),
            Ok(Instr::Eor { d: Reg::R16, r: Reg::R16 }),
            "clr r16 alias decodes to canonical eor"
        );
    }

    #[test]
    fn two_word_detection() {
        assert!(is_two_word(0x940c)); // jmp
        assert!(is_two_word(0x940e)); // call
        assert!(is_two_word(0x9000)); // lds r0
        assert!(is_two_word(0x9110)); // lds r17
        assert!(is_two_word(0x9200)); // sts r0
        assert!(!is_two_word(0x9508)); // ret
        assert!(!is_two_word(0x0000)); // nop
        assert!(!is_two_word(0x920f)); // push r0
        assert!(!is_two_word(0x9409)); // ijmp
    }

    #[test]
    fn missing_second_word_is_reported() {
        assert_eq!(decode(0x940c, None), Err(DecodeError::MissingSecondWord(0x940c)));
        assert_eq!(decode(0x9000, None), Err(DecodeError::MissingSecondWord(0x9000)));
    }

    #[test]
    fn reserved_words_are_illegal() {
        for w in [0x0001u16, 0x9419, 0x9519, 0x95e8, 0x9003, 0x9203, 0xf808] {
            assert_eq!(decode(w, None), Err(DecodeError::Illegal(w)), "word {w:#06x}");
        }
    }

    #[test]
    fn ldd_q0_decodes_as_plain_ld() {
        // LDD Rd, Z+0 and LD Rd, Z share an encoding; the canonical decode is
        // the plain form.
        let e = encode(Instr::Ldd { d: Reg::R7, ptr: Ptr::Z, q: 0 }).unwrap();
        assert_eq!(
            decode(e.word0(), None),
            Ok(Instr::Ld { d: Reg::R7, ptr: Ptr::Z, mode: PtrMode::Plain })
        );
        let e = encode(Instr::Std { ptr: Ptr::Y, q: 0, r: Reg::R7 }).unwrap();
        assert_eq!(
            decode(e.word0(), None),
            Ok(Instr::St { ptr: Ptr::Y, mode: PtrMode::Plain, r: Reg::R7 })
        );
    }
}
