//! Textual (disassembly) form of instructions.

use super::{Instr, Ptr, PtrMode};
use std::fmt;

fn ptr_operand(ptr: Ptr, mode: PtrMode) -> String {
    match mode {
        PtrMode::Plain => format!("{ptr}"),
        PtrMode::PostInc => format!("{ptr}+"),
        PtrMode::PreDec => format!("-{ptr}"),
    }
}

impl fmt::Display for Instr {
    /// Formats the instruction in conventional AVR assembly syntax.
    ///
    /// Relative offsets are printed in bytes relative to the instruction's
    /// own address (`rjmp .-2`), matching `avr-objdump` output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        match *self {
            Add { d, r } => write!(f, "add {d}, {r}"),
            Adc { d, r } => write!(f, "adc {d}, {r}"),
            Sub { d, r } => write!(f, "sub {d}, {r}"),
            Sbc { d, r } => write!(f, "sbc {d}, {r}"),
            And { d, r } => write!(f, "and {d}, {r}"),
            Or { d, r } => write!(f, "or {d}, {r}"),
            Eor { d, r } => write!(f, "eor {d}, {r}"),
            Mov { d, r } => write!(f, "mov {d}, {r}"),
            Cp { d, r } => write!(f, "cp {d}, {r}"),
            Cpc { d, r } => write!(f, "cpc {d}, {r}"),
            Cpse { d, r } => write!(f, "cpse {d}, {r}"),
            Mul { d, r } => write!(f, "mul {d}, {r}"),
            Muls { d, r } => write!(f, "muls {d}, {r}"),
            Mulsu { d, r } => write!(f, "mulsu {d}, {r}"),
            Fmul { d, r } => write!(f, "fmul {d}, {r}"),
            Fmuls { d, r } => write!(f, "fmuls {d}, {r}"),
            Fmulsu { d, r } => write!(f, "fmulsu {d}, {r}"),
            Movw { d, r } => write!(
                f,
                "movw r{}:r{}, r{}:r{}",
                d.index() + 1,
                d.index(),
                r.index() + 1,
                r.index()
            ),
            Subi { d, k } => write!(f, "subi {d}, {k:#04x}"),
            Sbci { d, k } => write!(f, "sbci {d}, {k:#04x}"),
            Andi { d, k } => write!(f, "andi {d}, {k:#04x}"),
            Ori { d, k } => write!(f, "ori {d}, {k:#04x}"),
            Cpi { d, k } => write!(f, "cpi {d}, {k:#04x}"),
            Ldi { d, k } => write!(f, "ldi {d}, {k:#04x}"),
            Adiw { p, k } => write!(f, "adiw {p}, {k}"),
            Sbiw { p, k } => write!(f, "sbiw {p}, {k}"),
            Com { d } => write!(f, "com {d}"),
            Neg { d } => write!(f, "neg {d}"),
            Swap { d } => write!(f, "swap {d}"),
            Inc { d } => write!(f, "inc {d}"),
            Asr { d } => write!(f, "asr {d}"),
            Lsr { d } => write!(f, "lsr {d}"),
            Ror { d } => write!(f, "ror {d}"),
            Dec { d } => write!(f, "dec {d}"),
            Rjmp { k } => write!(f, "rjmp .{:+}", (k as i32 + 1) * 2 - 2),
            Rcall { k } => write!(f, "rcall .{:+}", (k as i32 + 1) * 2 - 2),
            Jmp { k } => write!(f, "jmp {:#x}", k * 2),
            Call { k } => write!(f, "call {:#x}", k * 2),
            Ijmp => f.write_str("ijmp"),
            Icall => f.write_str("icall"),
            Ret => f.write_str("ret"),
            Reti => f.write_str("reti"),
            Brbs { s, k } => write!(f, "brbs {s}, .{:+}", (k as i32 + 1) * 2 - 2),
            Brbc { s, k } => write!(f, "brbc {s}, .{:+}", (k as i32 + 1) * 2 - 2),
            Sbrc { r, b } => write!(f, "sbrc {r}, {b}"),
            Sbrs { r, b } => write!(f, "sbrs {r}, {b}"),
            Sbic { a, b } => write!(f, "sbic {a:#04x}, {b}"),
            Sbis { a, b } => write!(f, "sbis {a:#04x}, {b}"),
            Ld { d, ptr, mode } => write!(f, "ld {d}, {}", ptr_operand(ptr, mode)),
            St { ptr, mode, r } => write!(f, "st {}, {r}", ptr_operand(ptr, mode)),
            Ldd { d, ptr, q } => write!(f, "ldd {d}, {ptr}+{q}"),
            Std { ptr, q, r } => write!(f, "std {ptr}+{q}, {r}"),
            Lds { d, k } => write!(f, "lds {d}, {k:#06x}"),
            Sts { k, r } => write!(f, "sts {k:#06x}, {r}"),
            Lpm0 => f.write_str("lpm"),
            Lpm { d, inc } => write!(f, "lpm {d}, Z{}", if inc { "+" } else { "" }),
            Elpm0 => f.write_str("elpm"),
            Elpm { d, inc } => write!(f, "elpm {d}, Z{}", if inc { "+" } else { "" }),
            In { d, a } => write!(f, "in {d}, {a:#04x}"),
            Out { a, r } => write!(f, "out {a:#04x}, {r}"),
            Push { r } => write!(f, "push {r}"),
            Pop { d } => write!(f, "pop {d}"),
            Bset { s } => write!(f, "bset {s}"),
            Bclr { s } => write!(f, "bclr {s}"),
            Sbi { a, b } => write!(f, "sbi {a:#04x}, {b}"),
            Cbi { a, b } => write!(f, "cbi {a:#04x}, {b}"),
            Bst { d, b } => write!(f, "bst {d}, {b}"),
            Bld { d, b } => write!(f, "bld {d}, {b}"),
            Nop => f.write_str("nop"),
            Sleep => f.write_str("sleep"),
            Wdr => f.write_str("wdr"),
            Break => f.write_str("break"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::Reg;
    use super::*;

    #[test]
    fn display_samples() {
        assert_eq!(Instr::Nop.to_string(), "nop");
        assert_eq!(Instr::Add { d: Reg::R1, r: Reg::R2 }.to_string(), "add r1, r2");
        assert_eq!(Instr::Rjmp { k: -1 }.to_string(), "rjmp .-2");
        assert_eq!(Instr::Rjmp { k: 0 }.to_string(), "rjmp .+0");
        assert_eq!(Instr::Brbs { s: 1, k: 4 }.to_string(), "brbs 1, .+8");
        assert_eq!(
            Instr::Ld { d: Reg::R0, ptr: Ptr::X, mode: PtrMode::PostInc }.to_string(),
            "ld r0, X+"
        );
        assert_eq!(
            Instr::St { ptr: Ptr::Y, mode: PtrMode::PreDec, r: Reg::R3 }.to_string(),
            "st -Y, r3"
        );
        assert_eq!(Instr::Jmp { k: 0x100 }.to_string(), "jmp 0x200");
        assert_eq!(Instr::Movw { d: Reg::R24, r: Reg::R30 }.to_string(), "movw r25:r24, r31:r30");
    }
}
