//! Instruction → machine-code encoding (the inverse of [`decode`]).
//!
//! [`decode`]: super::decode

use super::{Instr, Ptr, PtrMode, Reg};
use std::fmt;

/// The machine-code form of one instruction: one or two 16-bit words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Encoded {
    words: [u16; 2],
    len: u8,
}

impl Encoded {
    const fn one(w0: u16) -> Encoded {
        Encoded { words: [w0, 0], len: 1 }
    }

    const fn two(w0: u16, w1: u16) -> Encoded {
        Encoded { words: [w0, w1], len: 2 }
    }

    /// The encoded words as a slice of length 1 or 2.
    pub fn as_slice(&self) -> &[u16] {
        &self.words[..self.len as usize]
    }

    /// First (or only) word.
    pub const fn word0(&self) -> u16 {
        self.words[0]
    }

    /// Second word for two-word instructions.
    pub const fn word1(&self) -> Option<u16> {
        if self.len == 2 {
            Some(self.words[1])
        } else {
            None
        }
    }

    /// Number of words (1 or 2).
    pub const fn len(&self) -> u32 {
        self.len as u32
    }

    /// Always false: an encoding has at least one word.
    pub const fn is_empty(&self) -> bool {
        false
    }

    /// Copies the words into a vector (convenience for emitters).
    pub fn to_vec(&self) -> Vec<u16> {
        self.as_slice().to_vec()
    }
}

impl IntoIterator for Encoded {
    type Item = u16;
    type IntoIter = std::vec::IntoIter<u16>;

    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

/// An operand was out of range for the instruction's encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeError {
    /// Mnemonic of the instruction that failed to encode.
    pub mnemonic: &'static str,
    /// Description of the violated constraint.
    pub constraint: &'static str,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot encode {}: {}", self.mnemonic, self.constraint)
    }
}

impl std::error::Error for EncodeError {}

fn err(mnemonic: &'static str, constraint: &'static str) -> EncodeError {
    EncodeError { mnemonic, constraint }
}

/// `oooooo rd dddd rrrr` two-register format.
fn two_reg(op6: u16, d: Reg, r: Reg) -> u16 {
    let d = d.index() as u16;
    let r = r.index() as u16;
    (op6 << 10) | ((r & 0x10) << 5) | (d << 4) | (r & 0x0f)
}

/// `oooo KKKK dddd KKKK` immediate format; `d` must be r16..r31.
fn imm_reg(op4: u16, m: &'static str, d: Reg, k: u8) -> Result<u16, EncodeError> {
    if !d.is_high() {
        return Err(err(m, "destination register must be r16..r31"));
    }
    let d = (d.index() - 16) as u16;
    let k = k as u16;
    Ok((op4 << 12) | ((k & 0xf0) << 4) | (d << 4) | (k & 0x0f))
}

/// `1001 010d dddd oooo` one-register format.
fn one_reg(op4: u16, d: Reg) -> u16 {
    0x9400 | ((d.index() as u16) << 4) | op4
}

fn bit_in_range(m: &'static str, b: u8) -> Result<(), EncodeError> {
    if b > 7 {
        Err(err(m, "bit number must be 0..=7"))
    } else {
        Ok(())
    }
}

fn io_lo(m: &'static str, a: u8) -> Result<u16, EncodeError> {
    if a > 31 {
        Err(err(m, "I/O address must be 0..=31"))
    } else {
        Ok(a as u16)
    }
}

/// `LD`/`ST` low nibble for each pointer/mode combination (X plain = 0b1100…).
fn ldst_nibble(m: &'static str, ptr: Ptr, mode: PtrMode) -> Result<(u16, bool), EncodeError> {
    // Returns (low nibble, uses_0x8000_space) — plain Y/Z use the LDD/STD
    // opcode space with q = 0.
    match (ptr, mode) {
        (Ptr::Z, PtrMode::Plain) => Ok((0b0000, true)),
        (Ptr::Y, PtrMode::Plain) => Ok((0b1000, true)),
        (Ptr::Z, PtrMode::PostInc) => Ok((0b0001, false)),
        (Ptr::Z, PtrMode::PreDec) => Ok((0b0010, false)),
        (Ptr::Y, PtrMode::PostInc) => Ok((0b1001, false)),
        (Ptr::Y, PtrMode::PreDec) => Ok((0b1010, false)),
        (Ptr::X, PtrMode::Plain) => Ok((0b1100, false)),
        (Ptr::X, PtrMode::PostInc) => Ok((0b1101, false)),
        (Ptr::X, PtrMode::PreDec) => Ok((0b1110, false)),
        #[allow(unreachable_patterns)]
        _ => Err(err(m, "unsupported pointer/mode combination")),
    }
}

fn displaced(m: &'static str, store: bool, ptr: Ptr, q: u8, reg: Reg) -> Result<u16, EncodeError> {
    if q > 63 {
        return Err(err(m, "displacement must be 0..=63"));
    }
    let ybit = match ptr {
        Ptr::Y => 0b1000,
        Ptr::Z => 0,
        Ptr::X => return Err(err(m, "displacement addressing supports only Y and Z")),
    };
    let q = q as u16;
    let s = if store { 0x0200 } else { 0 };
    Ok(0x8000
        | s
        | ((q & 0x20) << 8)
        | ((q & 0x18) << 7)
        | ((reg.index() as u16) << 4)
        | ybit
        | (q & 0x07))
}

/// Encodes an instruction into its machine-code words.
///
/// # Errors
///
/// Returns [`EncodeError`] when an operand violates the encoding's range
/// constraints (immediate destination below `r16`, displacement above 63,
/// relative offset out of reach, odd `MOVW` register, …).
pub fn encode(i: Instr) -> Result<Encoded, EncodeError> {
    use Instr::*;
    Ok(match i {
        Cpc { d, r } => Encoded::one(two_reg(0b000001, d, r)),
        Sbc { d, r } => Encoded::one(two_reg(0b000010, d, r)),
        Add { d, r } => Encoded::one(two_reg(0b000011, d, r)),
        Cpse { d, r } => Encoded::one(two_reg(0b000100, d, r)),
        Cp { d, r } => Encoded::one(two_reg(0b000101, d, r)),
        Sub { d, r } => Encoded::one(two_reg(0b000110, d, r)),
        Adc { d, r } => Encoded::one(two_reg(0b000111, d, r)),
        And { d, r } => Encoded::one(two_reg(0b001000, d, r)),
        Eor { d, r } => Encoded::one(two_reg(0b001001, d, r)),
        Or { d, r } => Encoded::one(two_reg(0b001010, d, r)),
        Mov { d, r } => Encoded::one(two_reg(0b001011, d, r)),
        Mul { d, r } => Encoded::one(two_reg(0b100111, d, r)),

        Movw { d, r } => {
            if d.index() % 2 != 0 || r.index() % 2 != 0 {
                return Err(err("movw", "registers must be even (low half of a pair)"));
            }
            Encoded::one(0x0100 | (((d.index() / 2) as u16) << 4) | ((r.index() / 2) as u16))
        }
        Muls { d, r } => {
            if !d.is_high() || !r.is_high() {
                return Err(err("muls", "registers must be r16..r31"));
            }
            Encoded::one(0x0200 | (((d.index() - 16) as u16) << 4) | ((r.index() - 16) as u16))
        }
        Mulsu { d, r } | Fmul { d, r } | Fmuls { d, r } | Fmulsu { d, r } => {
            let (m, hi, lo) = match i {
                Mulsu { .. } => ("mulsu", 0u16, 0u16),
                Fmul { .. } => ("fmul", 0, 1),
                Fmuls { .. } => ("fmuls", 1, 0),
                _ => ("fmulsu", 1, 1),
            };
            let dr = d.index();
            let rr = r.index();
            if !(16..=23).contains(&dr) || !(16..=23).contains(&rr) {
                return Err(err(m, "registers must be r16..r23"));
            }
            Encoded::one(
                0x0300 | (hi << 7) | (((dr - 16) as u16) << 4) | (lo << 3) | ((rr - 16) as u16),
            )
        }

        Cpi { d, k } => Encoded::one(imm_reg(0b0011, "cpi", d, k)?),
        Sbci { d, k } => Encoded::one(imm_reg(0b0100, "sbci", d, k)?),
        Subi { d, k } => Encoded::one(imm_reg(0b0101, "subi", d, k)?),
        Ori { d, k } => Encoded::one(imm_reg(0b0110, "ori", d, k)?),
        Andi { d, k } => Encoded::one(imm_reg(0b0111, "andi", d, k)?),
        Ldi { d, k } => Encoded::one(imm_reg(0b1110, "ldi", d, k)?),

        Adiw { p, k } | Sbiw { p, k } => {
            if k > 63 {
                return Err(err("adiw/sbiw", "immediate must be 0..=63"));
            }
            let base: u16 = if matches!(i, Adiw { .. }) { 0x9600 } else { 0x9700 };
            let k = k as u16;
            Encoded::one(base | ((k & 0x30) << 2) | (p.code() << 4) | (k & 0x0f))
        }

        Com { d } => Encoded::one(one_reg(0b0000, d)),
        Neg { d } => Encoded::one(one_reg(0b0001, d)),
        Swap { d } => Encoded::one(one_reg(0b0010, d)),
        Inc { d } => Encoded::one(one_reg(0b0011, d)),
        Asr { d } => Encoded::one(one_reg(0b0101, d)),
        Lsr { d } => Encoded::one(one_reg(0b0110, d)),
        Ror { d } => Encoded::one(one_reg(0b0111, d)),
        Dec { d } => Encoded::one(one_reg(0b1010, d)),

        Rjmp { k } => {
            if !(-2048..=2047).contains(&k) {
                return Err(err("rjmp", "offset must be -2048..=2047 words"));
            }
            Encoded::one(0xc000 | ((k as u16) & 0x0fff))
        }
        Rcall { k } => {
            if !(-2048..=2047).contains(&k) {
                return Err(err("rcall", "offset must be -2048..=2047 words"));
            }
            Encoded::one(0xd000 | ((k as u16) & 0x0fff))
        }
        Jmp { k } | Call { k } => {
            if k > 0x3f_ffff {
                return Err(err("jmp/call", "target must fit in 22 bits"));
            }
            let tail: u16 = if matches!(i, Jmp { .. }) { 0b110 } else { 0b111 };
            let hi = (k >> 16) as u16; // upper 6 bits of the 22-bit address
            let w0 = 0x9400 | ((hi & 0x3e) << 3) | (tail << 1) | (hi & 1);
            Encoded::two(w0, (k & 0xffff) as u16)
        }
        Ijmp => Encoded::one(0x9409),
        Icall => Encoded::one(0x9509),
        Ret => Encoded::one(0x9508),
        Reti => Encoded::one(0x9518),

        Brbs { s, k } | Brbc { s, k } => {
            bit_in_range("brbs/brbc", s)?;
            if !(-64..=63).contains(&k) {
                return Err(err("brbs/brbc", "offset must be -64..=63 words"));
            }
            let base: u16 = if matches!(i, Brbs { .. }) { 0xf000 } else { 0xf400 };
            Encoded::one(base | (((k as u16) & 0x7f) << 3) | s as u16)
        }
        Sbrc { r, b } => {
            bit_in_range("sbrc", b)?;
            Encoded::one(0xfc00 | ((r.index() as u16) << 4) | b as u16)
        }
        Sbrs { r, b } => {
            bit_in_range("sbrs", b)?;
            Encoded::one(0xfe00 | ((r.index() as u16) << 4) | b as u16)
        }
        Sbic { a, b } => {
            bit_in_range("sbic", b)?;
            Encoded::one(0x9900 | (io_lo("sbic", a)? << 3) | b as u16)
        }
        Sbis { a, b } => {
            bit_in_range("sbis", b)?;
            Encoded::one(0x9b00 | (io_lo("sbis", a)? << 3) | b as u16)
        }

        Ld { d, ptr, mode } => {
            let (nib, disp_space) = ldst_nibble("ld", ptr, mode)?;
            if disp_space {
                Encoded::one(0x8000 | ((d.index() as u16) << 4) | nib)
            } else {
                Encoded::one(0x9000 | ((d.index() as u16) << 4) | nib)
            }
        }
        St { ptr, mode, r } => {
            let (nib, disp_space) = ldst_nibble("st", ptr, mode)?;
            if disp_space {
                Encoded::one(0x8200 | ((r.index() as u16) << 4) | nib)
            } else {
                Encoded::one(0x9200 | ((r.index() as u16) << 4) | nib)
            }
        }
        Ldd { d, ptr, q } => Encoded::one(displaced("ldd", false, ptr, q, d)?),
        Std { ptr, q, r } => Encoded::one(displaced("std", true, ptr, q, r)?),
        Lds { d, k } => Encoded::two(0x9000 | ((d.index() as u16) << 4), k),
        Sts { k, r } => Encoded::two(0x9200 | ((r.index() as u16) << 4), k),
        Lpm0 => Encoded::one(0x95c8),
        Lpm { d, inc } => {
            Encoded::one(0x9000 | ((d.index() as u16) << 4) | if inc { 0b0101 } else { 0b0100 })
        }
        Elpm0 => Encoded::one(0x95d8),
        Elpm { d, inc } => {
            Encoded::one(0x9000 | ((d.index() as u16) << 4) | if inc { 0b0111 } else { 0b0110 })
        }
        In { d, a } => {
            if a > 63 {
                return Err(err("in", "I/O address must be 0..=63"));
            }
            let a = a as u16;
            Encoded::one(0xb000 | ((a & 0x30) << 5) | ((d.index() as u16) << 4) | (a & 0x0f))
        }
        Out { a, r } => {
            if a > 63 {
                return Err(err("out", "I/O address must be 0..=63"));
            }
            let a = a as u16;
            Encoded::one(0xb800 | ((a & 0x30) << 5) | ((r.index() as u16) << 4) | (a & 0x0f))
        }
        Push { r } => Encoded::one(0x9200 | ((r.index() as u16) << 4) | 0x0f),
        Pop { d } => Encoded::one(0x9000 | ((d.index() as u16) << 4) | 0x0f),

        Bset { s } => {
            bit_in_range("bset", s)?;
            Encoded::one(0x9408 | ((s as u16) << 4))
        }
        Bclr { s } => {
            bit_in_range("bclr", s)?;
            Encoded::one(0x9488 | ((s as u16) << 4))
        }
        Sbi { a, b } => {
            bit_in_range("sbi", b)?;
            Encoded::one(0x9a00 | (io_lo("sbi", a)? << 3) | b as u16)
        }
        Cbi { a, b } => {
            bit_in_range("cbi", b)?;
            Encoded::one(0x9800 | (io_lo("cbi", a)? << 3) | b as u16)
        }
        Bst { d, b } => {
            bit_in_range("bst", b)?;
            Encoded::one(0xfa00 | ((d.index() as u16) << 4) | b as u16)
        }
        Bld { d, b } => {
            bit_in_range("bld", b)?;
            Encoded::one(0xf800 | ((d.index() as u16) << 4) | b as u16)
        }

        Nop => Encoded::one(0x0000),
        Sleep => Encoded::one(0x9588),
        Wdr => Encoded::one(0x95a8),
        Break => Encoded::one(0x9598),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_encodings_match_the_manual() {
        // Reference words cross-checked against the AVR instruction set manual.
        let cases: &[(Instr, u16)] = &[
            (Instr::Nop, 0x0000),
            (Instr::Add { d: Reg::R1, r: Reg::R2 }, 0x0c12),
            (Instr::Adc { d: Reg::R17, r: Reg::R30 }, 0x1f1e),
            (Instr::Sub { d: Reg::R0, r: Reg::R31 }, 0x1a0f),
            (Instr::Eor { d: Reg::R16, r: Reg::R16 }, 0x2700), // clr r16
            (Instr::Mov { d: Reg::R5, r: Reg::R6 }, 0x2c56),
            (Instr::Ldi { d: Reg::R16, k: 0xff }, 0xef0f), // ser r16
            (Instr::Ldi { d: Reg::R31, k: 0x12 }, 0xe1f2),
            (Instr::Cpi { d: Reg::R20, k: 0x34 }, 0x3344),
            (Instr::Adiw { p: super::super::IwPair::X, k: 1 }, 0x9611),
            (Instr::Sbiw { p: super::super::IwPair::W, k: 63 }, 0x97cf),
            (Instr::Com { d: Reg::R9 }, 0x9490),
            (Instr::Dec { d: Reg::R18 }, 0x952a),
            (Instr::Rjmp { k: -1 }, 0xcfff), // rjmp .-2 (infinite loop)
            (Instr::Rjmp { k: 0 }, 0xc000),
            (Instr::Rcall { k: 3 }, 0xd003),
            (Instr::Ijmp, 0x9409),
            (Instr::Icall, 0x9509),
            (Instr::Ret, 0x9508),
            (Instr::Reti, 0x9518),
            (Instr::Brbs { s: 1, k: -3 }, 0xf3e9), // breq .-6
            (Instr::Brbc { s: 0, k: 5 }, 0xf428),  // brcc .+10
            (Instr::Ld { d: Reg::R4, ptr: Ptr::X, mode: PtrMode::Plain }, 0x904c),
            (Instr::Ld { d: Reg::R4, ptr: Ptr::X, mode: PtrMode::PostInc }, 0x904d),
            (Instr::Ld { d: Reg::R4, ptr: Ptr::X, mode: PtrMode::PreDec }, 0x904e),
            (Instr::Ld { d: Reg::R4, ptr: Ptr::Y, mode: PtrMode::Plain }, 0x8048),
            (Instr::Ld { d: Reg::R4, ptr: Ptr::Z, mode: PtrMode::Plain }, 0x8040),
            (Instr::St { ptr: Ptr::X, mode: PtrMode::PostInc, r: Reg::R7 }, 0x927d),
            (Instr::St { ptr: Ptr::Z, mode: PtrMode::Plain, r: Reg::R1 }, 0x8210),
            (Instr::Ldd { d: Reg::R2, ptr: Ptr::Y, q: 1 }, 0x8029),
            (Instr::Std { ptr: Ptr::Z, q: 63, r: Reg::R3 }, 0xae37),
            (Instr::Push { r: Reg::R29 }, 0x93df),
            (Instr::Pop { d: Reg::R29 }, 0x91df),
            (Instr::In { d: Reg::R25, a: 0x3f }, 0xb79f), // in r25, SREG
            (Instr::Out { a: 0x3d, r: Reg::R28 }, 0xbfcd), // out SPL, r28
            (Instr::Lpm0, 0x95c8),
            (Instr::Lpm { d: Reg::R16, inc: true }, 0x9105),
            (Instr::Bset { s: 7 }, 0x9478), // sei
            (Instr::Bclr { s: 7 }, 0x94f8), // cli
            (Instr::Sbi { a: 5, b: 3 }, 0x9a2b),
            (Instr::Cbi { a: 5, b: 3 }, 0x982b),
            (Instr::Sbrc { r: Reg::R10, b: 4 }, 0xfca4),
            (Instr::Sbrs { r: Reg::R10, b: 4 }, 0xfea4),
            (Instr::Sbic { a: 9, b: 2 }, 0x994a),
            (Instr::Sbis { a: 9, b: 2 }, 0x9b4a),
            (Instr::Bst { d: Reg::R3, b: 6 }, 0xfa36),
            (Instr::Bld { d: Reg::R3, b: 6 }, 0xf836),
            (Instr::Movw { d: Reg::R24, r: Reg::R30 }, 0x01cf),
            (Instr::Mul { d: Reg::R4, r: Reg::R5 }, 0x9c45),
            (Instr::Muls { d: Reg::R17, r: Reg::R18 }, 0x0212),
            (Instr::Mulsu { d: Reg::R17, r: Reg::R18 }, 0x0312),
            (Instr::Sleep, 0x9588),
            (Instr::Wdr, 0x95a8),
            (Instr::Break, 0x9598),
        ];
        for &(instr, expect) in cases {
            let e = encode(instr).unwrap();
            assert_eq!(e.word0(), expect, "encoding {instr:?}");
            assert_eq!(e.len(), 1, "{instr:?} should be one word");
        }
    }

    #[test]
    fn two_word_encodings() {
        let e = encode(Instr::Jmp { k: 0x1234 }).unwrap();
        assert_eq!((e.word0(), e.word1()), (0x940c, Some(0x1234)));
        let e = encode(Instr::Call { k: 0x0056 }).unwrap();
        assert_eq!((e.word0(), e.word1()), (0x940e, Some(0x0056)));
        // 22-bit target exercises the split high bits.
        let e = encode(Instr::Jmp { k: 0x3f_ffff }).unwrap();
        assert_eq!((e.word0(), e.word1()), (0x95fd, Some(0xffff)));
        let e = encode(Instr::Lds { d: Reg::R17, k: 0x0fff }).unwrap();
        assert_eq!((e.word0(), e.word1()), (0x9110, Some(0x0fff)));
        let e = encode(Instr::Sts { k: 0x0060, r: Reg::R0 }).unwrap();
        assert_eq!((e.word0(), e.word1()), (0x9200, Some(0x0060)));
    }

    #[test]
    fn rejects_out_of_range_operands() {
        assert!(encode(Instr::Ldi { d: Reg::R0, k: 1 }).is_err());
        assert!(encode(Instr::Subi { d: Reg::R15, k: 1 }).is_err());
        assert!(encode(Instr::Adiw { p: super::super::IwPair::W, k: 64 }).is_err());
        assert!(encode(Instr::Rjmp { k: 2048 }).is_err());
        assert!(encode(Instr::Rjmp { k: -2049 }).is_err());
        assert!(encode(Instr::Brbs { s: 8, k: 0 }).is_err());
        assert!(encode(Instr::Brbs { s: 0, k: 64 }).is_err());
        assert!(encode(Instr::Ldd { d: Reg::R0, ptr: Ptr::Y, q: 64 }).is_err());
        assert!(encode(Instr::Ldd { d: Reg::R0, ptr: Ptr::X, q: 1 }).is_err());
        assert!(encode(Instr::Movw { d: Reg::R1, r: Reg::R2 }).is_err());
        assert!(encode(Instr::Muls { d: Reg::R1, r: Reg::R17 }).is_err());
        assert!(encode(Instr::Mulsu { d: Reg::R24, r: Reg::R17 }).is_err());
        assert!(encode(Instr::In { d: Reg::R0, a: 64 }).is_err());
        assert!(encode(Instr::Sbi { a: 32, b: 0 }).is_err());
        assert!(encode(Instr::Jmp { k: 0x40_0000 }).is_err());
    }
}
