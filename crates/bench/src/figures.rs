//! The non-table artefacts:
//!
//! * **Fig A** — the memory-map sizing sweep behind Section 6.2's prose
//!   (256 B full-space / 140 B heap+safe-stack / 70 B two-domain);
//! * **Macro** — end-to-end workload overhead of SFI vs UMPU vs
//!   unprotected, an extension beyond the paper's micro-benchmarks.

use harbor::{BlockSize, DomainMode, MemMapConfig};
use harbor::{DomainId, ProtectionFault};
use mini_sos::kernel::MSG_TIMER;
use mini_sos::{modules, Protection, SosSystem};

/// One point of the memory-map sizing sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapSizePoint {
    /// Scenario description.
    pub scenario: &'static str,
    /// Domain mode.
    pub mode: DomainMode,
    /// Block size in bytes.
    pub block: u16,
    /// Protected span in bytes.
    pub span: u16,
    /// Resulting table size in bytes.
    pub bytes: u16,
    /// The paper's figure for this point, when it reports one.
    pub paper: Option<u16>,
}

/// Regenerates the sizing sweep. The three paper data points appear as
/// rows with `paper: Some(..)`.
///
/// # Panics
///
/// Panics only on an internal configuration error.
pub fn memmap_sweep() -> Vec<MapSizePoint> {
    let mut out = Vec::new();
    let mut push = |scenario, mode, block: u16, bottom: u16, top: u16, paper| {
        let cfg = MemMapConfig::new(mode, BlockSize::new(block).unwrap(), bottom, top)
            .expect("valid sweep config");
        out.push(MapSizePoint {
            scenario,
            mode,
            block,
            span: top - bottom,
            bytes: cfg.map_size_bytes(),
            paper,
        });
    };

    // The paper's three data points (4 KiB AVR data space).
    push("entire 4 KiB space", DomainMode::Multi, 8, 0x0000, 0x1000, Some(256));
    push("heap + safe stack (2240 B)", DomainMode::Multi, 8, 0x0100, 0x0100 + 2240, Some(140));
    push("heap + safe stack, two-domain", DomainMode::Two, 8, 0x0100, 0x0100 + 2240, Some(70));

    // Block-size sweep over the full space (the `mem_map_config` knob).
    for block in [2u16, 4, 8, 16, 32, 64, 128, 256] {
        push("entire space, block sweep", DomainMode::Multi, block, 0x0000, 0x1000, None);
    }
    // Two-domain sweep.
    for block in [8u16, 16, 32] {
        push("entire space, two-domain", DomainMode::Two, block, 0x0000, 0x1000, None);
    }
    out
}

/// Macro-benchmark result for one protection build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacroPoint {
    /// The build.
    pub protection: Protection,
    /// Cycles for the whole workload (after boot).
    pub cycles: u64,
    /// Overhead relative to the unprotected build.
    pub overhead: f64,
}

/// Runs the Surge data-collection workload (`ticks` samples through
/// Tree Routing) under one build and returns post-boot cycles.
///
/// # Panics
///
/// Panics if the workload faults (it is bug-free by construction).
pub fn surge_workload_cycles(p: Protection, ticks: u32) -> u64 {
    let mods = [modules::tree_routing(3), modules::surge(1, 3), modules::blink(0)];
    let mut sys = SosSystem::build(p, &mods, |a, api| {
        api.run_scheduler(a);
        a.brk();
    })
    .expect("workload builds");
    sys.boot().expect("boot");
    let booted = sys.cycles();
    // Deliver the init messages first (the driver drains and breaks).
    sys.run_to_break(50_000_000).expect("init runs");
    let mut remaining = ticks;
    while remaining > 0 {
        // Respect the 16-entry queue (15 usable): feed in batches of 7
        // tick pairs, then re-enter the driver loop (it sits right after
        // the boot break) to drain them — a host-driven recurring timer.
        let batch = remaining.min(7);
        for _ in 0..batch {
            sys.post(DomainId::num(1), MSG_TIMER);
            sys.post(DomainId::num(0), MSG_TIMER);
        }
        sys.steer(sys.symbol("ker_boot_done") + 1);
        sys.run_to_break(50_000_000).expect("workload runs");
        remaining -= batch;
    }
    sys.cycles() - booted
}

/// Runs the macro comparison across all three builds.
pub fn macro_overhead(ticks: u32) -> Vec<MacroPoint> {
    let none = surge_workload_cycles(Protection::None, ticks);
    let umpu = surge_workload_cycles(Protection::Umpu, ticks);
    let sfi = surge_workload_cycles(Protection::Sfi, ticks);
    let ratio = |c: u64| c as f64 / none as f64;
    vec![
        MacroPoint { protection: Protection::None, cycles: none, overhead: 1.0 },
        MacroPoint { protection: Protection::Umpu, cycles: umpu, overhead: ratio(umpu) },
        MacroPoint { protection: Protection::Sfi, cycles: sfi, overhead: ratio(sfi) },
    ]
}

/// The Surge fault-detection demonstration (Section 1.2): returns what each
/// build does when Tree Routing is missing.
#[derive(Debug, Clone)]
pub enum SurgeOutcome {
    /// Stock AVR: the wild write landed silently at this address.
    SilentCorruption {
        /// The corrupted address.
        addr: u16,
    },
    /// Harbor: the violation was caught.
    Caught {
        /// The fault, when rich diagnostics exist (UMPU).
        fault: Option<ProtectionFault>,
        /// The compact fault code (all builds).
        code: u16,
    },
}

/// Runs the war-story scenario under one build.
///
/// # Panics
///
/// Panics only if the system fails to build or boot.
pub fn surge_war_story(p: Protection) -> SurgeOutcome {
    let mut sys = SosSystem::build(p, &[modules::surge(1, 3)], |a, api| {
        api.run_scheduler(a);
        a.brk();
    })
    .expect("builds");
    sys.boot().expect("boot");
    sys.post(DomainId::num(1), MSG_TIMER);
    match sys.run_to_break(10_000_000) {
        Ok(_) => {
            let buf = sys.sram16(sys.layout.state_addr(1));
            SurgeOutcome::SilentCorruption { addr: buf + 0xff }
        }
        Err(avr_core::Fault::Env(e)) => {
            SurgeOutcome::Caught { fault: sys.last_protection_fault(), code: e.code }
        }
        Err(other) => panic!("unexpected outcome: {other}"),
    }
}

/// Runs the buffer-handoff pipeline (`rounds` producer ticks; each one
/// malloc + change_own + post + consumer free) under one build and returns
/// post-boot cycles — the `change_own`-heavy macro workload.
///
/// # Panics
///
/// Panics if the pipeline misbehaves (it asserts the accumulated total).
pub fn pipeline_workload_cycles(p: Protection, rounds: u32) -> u64 {
    let mods = [modules::producer(1, 4), modules::consumer(4, 1)];
    let mut sys = SosSystem::build(p, &mods, |a, api| {
        api.run_scheduler(a);
        a.brk();
    })
    .expect("pipeline builds");
    sys.boot().expect("boot");
    let booted = sys.cycles();
    sys.run_to_break(50_000_000).expect("init runs");
    // One round per drain: the producer publishes exactly one pointer at a
    // time, and its consumer message must run before the next tick.
    for _ in 0..rounds {
        sys.post(DomainId::num(1), MSG_TIMER);
        sys.steer(sys.symbol("ker_boot_done") + 1);
        sys.run_to_break(50_000_000).expect("pipeline runs");
    }
    let cons_state = sys.layout.state_addr(4);
    assert_eq!(sys.sram(cons_state + 1) as u32, rounds, "{p:?}: every sample consumed");
    assert_eq!(sys.sram(cons_state + 2), 0, "{p:?}: every free succeeded");
    sys.cycles() - booted
}

/// The pipeline comparison across all three builds.
pub fn pipeline_overhead(rounds: u32) -> Vec<MacroPoint> {
    let none = pipeline_workload_cycles(Protection::None, rounds);
    let umpu = pipeline_workload_cycles(Protection::Umpu, rounds);
    let sfi = pipeline_workload_cycles(Protection::Sfi, rounds);
    let ratio = |c: u64| c as f64 / none as f64;
    vec![
        MacroPoint { protection: Protection::None, cycles: none, overhead: 1.0 },
        MacroPoint { protection: Protection::Umpu, cycles: umpu, overhead: ratio(umpu) },
        MacroPoint { protection: Protection::Sfi, cycles: sfi, overhead: ratio(sfi) },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_contains_the_papers_points() {
        let sweep = memmap_sweep();
        let paper: Vec<_> = sweep.iter().filter(|p| p.paper.is_some()).collect();
        assert_eq!(paper.len(), 3);
        for p in paper {
            assert_eq!(Some(p.bytes), p.paper, "{}", p.scenario);
        }
    }

    #[test]
    fn bigger_blocks_shrink_the_map() {
        let sweep = memmap_sweep();
        let sizes: Vec<u16> = sweep
            .iter()
            .filter(|p| p.scenario == "entire space, block sweep")
            .map(|p| p.bytes)
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] > w[1]), "monotone in block size");
    }

    #[test]
    fn war_story_outcomes() {
        assert!(matches!(surge_war_story(Protection::None), SurgeOutcome::SilentCorruption { .. }));
        for p in [Protection::Umpu, Protection::Sfi] {
            match surge_war_story(p) {
                SurgeOutcome::Caught { code, .. } => {
                    assert_eq!(code, harbor::fault_code::MEM_MAP, "{p:?}");
                }
                other => panic!("{p:?}: expected Caught, got {other:?}"),
            }
        }
    }
}
